#!/usr/bin/env bash
# ci.sh — tier-1 verification plus the parallel-harness race gate.
#
#   ./ci.sh         # format check, vet, build, tests, race tests
#
# The race run covers internal/harness and internal/experiments: the
# parallel experiment runner executes cells on concurrent workers, and the
# race detector proves cells share no state (each cell builds its own
# System; see DESIGN.md "Harness and tooling").
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel harness gate) =="
go test -race ./internal/harness/ ./internal/experiments/ .

echo "ci.sh: all checks passed"
