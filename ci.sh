#!/usr/bin/env bash
# ci.sh — tier-1 verification plus the parallel-harness race gate.
#
#   ./ci.sh         # format check, vet, build, tests, race tests
#
# The race run covers internal/harness and internal/experiments: the
# parallel experiment runner executes cells on concurrent workers, and the
# race detector proves cells share no state (each cell builds its own
# System; see DESIGN.md "Harness and tooling").
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel harness gate) =="
# harness/experiments: concurrent experiment cells must share no state.
# sim/core: the bound-weave engine's grant/yield handoff and the Tvarak
# controller under it are the hottest cross-goroutine surface; this now
# includes the TestShard* suite, which drives the sharded weave (SPSC
# rings, redundancy tickets, barrier merges) under the race detector.
# fault: campaign units run on the worker pool and app workers are wrapped
# with panic containment.
# obs: tracers and samplers are fed from concurrent cells' engines.
# cache/nvm/xsum/geom/pmem: the hot-path packages the performance pass
# rewrote with shift/mask arithmetic and scratch-buffer reuse; -race proves
# the reused buffers never leak across goroutines.
# -timeout 20m: the race detector slows the simulator ~10x and CI boxes are
# small; the long golden-table experiments additionally skip under -race
# (see race_test.go).
# live: the ops metrics registry and run board are scraped over HTTP
# concurrently with probe and lifecycle writes from simulating cells.
# soak (+ its cmd/tool mains): the soak supervisor appends ledger lines
# from pool workers while chaos children run, and its e2e tests re-exec
# the race-instrumented test binary as the worker.
# fleet: the gateway's lease table and drain path are hit by concurrent
# worker goroutines (and its tests run whole in-process fleets through a
# fault-injecting transport).
# swred: the async (Vilamb-family) daemon passes run on dedicated daemon
# cores concurrently with foreground mutators; the dirty-set property
# suite and epoch-aware verdict paths must hold under the race detector.
go test -race -timeout 20m ./internal/harness/ ./internal/experiments/ \
    ./internal/sim/ ./internal/core/ ./internal/fault/ ./internal/obs/ \
    ./internal/cache/ ./internal/nvm/ ./internal/xsum/ ./internal/geom/ \
    ./internal/pmem/ ./internal/live/ ./internal/soak/ ./internal/fleet/ \
    ./internal/swred/ ./cmd/tvarak-soak/ ./tools/soakcheck/ .

echo "== coverage floor (core + sim + fault + harness + fleet) =="
# Combined statement coverage of the central simulation packages plus the
# correctness machinery the soak loop leans on (the fault campaign and the
# crash-safe harness) and the fleet control plane. Floor is below the
# measured ~88% to absorb drift, high enough to catch a dead-code
# regression or a silently skipped suite.
covfloor=80
go test -coverprofile="$(pwd)/cover.out" \
    -coverpkg=tvarak/internal/core,tvarak/internal/sim,tvarak/internal/fault,tvarak/internal/harness,tvarak/internal/fleet \
    ./... >/dev/null
covpct=$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$NF); print $NF}')
rm -f cover.out
echo "core+sim+fault+harness+fleet combined coverage: ${covpct}% (floor ${covfloor}%)"
if awk -v p="$covpct" -v f="$covfloor" 'BEGIN{exit !(p<f)}'; then
    echo "coverage ${covpct}% fell below floor ${covfloor}%" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== fault-injection smoke campaign =="
# Short fixed-seed campaign across all apps and both designs: TVARAK must
# detect and recover everything, Baseline must miss at least one corruption
# the oracle confirms, and a same-seed rerun must produce a byte-identical
# report. Reproduce any failure with the same seed via
#   go run ./cmd/tvarak-fault -campaign -seed 7 -n 56 -report -
go build -o "$tmp/tvarak-fault" ./cmd/tvarak-fault
"$tmp/tvarak-fault" -campaign -seed 7 -n 56 -report "$tmp/a.jsonl" >/dev/null
"$tmp/tvarak-fault" -campaign -seed 7 -n 56 -report "$tmp/b.jsonl" >/dev/null
cmp "$tmp/a.jsonl" "$tmp/b.jsonl"
if tail -1 "$tmp/a.jsonl" | grep -q '"silentCorruptions":0'; then
    echo "smoke campaign: Baseline missed nothing — contrast gate broken" >&2
    exit 1
fi

echo "== telemetry export gate =="
# One small experiment cell through the full -metrics-out path, twice:
# the exports must be byte-identical (determinism), schema-valid, and match
# the committed golden (numbers regression). After an intentional behaviour
# change, regenerate the golden with: UPDATE_GOLDEN=1 ./ci.sh
go build -o "$tmp/tvarak-sim" ./cmd/tvarak-sim
gate=(-exp fig8-redis -scale 0.02 -designs baseline,tvarak -sample-every 100000)
"$tmp/tvarak-sim" "${gate[@]}" -metrics-out "$tmp/run1.json" >/dev/null
"$tmp/tvarak-sim" "${gate[@]}" -metrics-out "$tmp/run2.json" >/dev/null
cmp "$tmp/run1.json" "$tmp/run2.json"
"$tmp/tvarak-sim" -validate "$tmp/run1.json"
if [ "${UPDATE_GOLDEN:-0}" = "1" ]; then
    cp "$tmp/run1.json" testdata/ci-golden.json
    echo "regenerated testdata/ci-golden.json"
fi
"$tmp/tvarak-sim" -compare "testdata/ci-golden.json,$tmp/run1.json"

echo "== shard-determinism gate =="
# The weave phase sharded over 2 and 4 OS threads must leave the metrics
# export byte-identical to the serial run (DESIGN.md "Parallel weave").
# -parallel 1 keeps the run to one cell at a time so the shard workers,
# not cross-cell parallelism, are what executes concurrently.
sh=(-exp fig8-stream -scale 0.05 -designs baseline,tvarak -parallel 1)
"$tmp/tvarak-sim" "${sh[@]}" -shards 1 -metrics-out "$tmp/shard1.json" >/dev/null
"$tmp/tvarak-sim" "${sh[@]}" -shards 2 -metrics-out "$tmp/shard2.json" >/dev/null
"$tmp/tvarak-sim" "${sh[@]}" -shards 4 -metrics-out "$tmp/shard4.json" >/dev/null
cmp "$tmp/shard1.json" "$tmp/shard2.json"
cmp "$tmp/shard1.json" "$tmp/shard4.json"

echo "== live ops gate =="
# A run with the ops server + resource sampler attached must serve
# well-formed /metrics (Prometheus text exposition), /healthz and /runs
# mid-run, shut down leak-free (opscheck's goroutine gate on the ledger's
# first-vs-last sample), and leave the metrics export byte-identical to a
# detached run — the read-only contract of DESIGN.md §10.
go build -o "$tmp/opscheck" ./tools/opscheck
og=(-exp fig8-stream -scale 0.05 -designs baseline,tvarak -parallel 2)
"$tmp/tvarak-sim" "${og[@]}" -metrics-out "$tmp/ops-plain.json" >/dev/null
"$tmp/tvarak-sim" "${og[@]}" -metrics-out "$tmp/ops-live.json" \
    -ops-addr 127.0.0.1:0 -ops-addr-file "$tmp/ops.addr" \
    -ops-ledger "$tmp/ops-ledger.jsonl" -ops-sample 100ms >/dev/null 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    if [ -s "$tmp/ops.addr" ]; then addr=$(cat "$tmp/ops.addr"); break; fi
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "ops gate: listen address never appeared in $tmp/ops.addr" >&2
    exit 1
fi
curl -fsS "http://$addr/healthz" | grep -qx "ok"
curl -fsS "http://$addr/metrics" >"$tmp/ops-metrics.txt"
grep -q '^# TYPE tvarak_cells_started_total counter$' "$tmp/ops-metrics.txt"
grep -q '^tvarak_sim_accesses_total [0-9]' "$tmp/ops-metrics.txt"
grep -q '^tvarak_cell_seconds_bucket{le="+Inf"} [0-9]' "$tmp/ops-metrics.txt"
curl -fsS "http://$addr/runs" | grep -q '"cells"'
wait "$pid"
cmp "$tmp/ops-plain.json" "$tmp/ops-live.json"
"$tmp/opscheck" -ledger "$tmp/ops-ledger.jsonl" -checks goroutines >/dev/null

echo "== bench-regression gate =="
# Hot-path benchmark suite at fixed iteration counts, gated against the
# committed BENCH_6.json: allocs/op and B/op fail on a >10% increase,
# simulated cycles/accesses fail on ANY drift (they are deterministic), and
# wall-clock ns/op is reported but only enforced when BENCH_NS_TOL is set
# (e.g. BENCH_NS_TOL=0.10 on a quiet dedicated machine — wall-clock baselines
# do not transfer across machines; see DESIGN.md "Performance"). After an
# intentional perf-relevant change, regenerate with: UPDATE_BENCH=1 ./ci.sh
go build -o "$tmp/benchdiff" ./tools/benchdiff
if [ "${UPDATE_BENCH:-0}" = "1" ]; then
    "$tmp/benchdiff" -out BENCH_6.json >/dev/null
    echo "regenerated BENCH_6.json"
fi
"$tmp/benchdiff" -out "$tmp/bench.json" -baseline BENCH_6.json \
    -ns-tol "${BENCH_NS_TOL:-0}"

echo "== interrupt-and-resume gate =="
# A journaled run killed mid-flight must resume to output byte-identical to
# an uninterrupted run (DESIGN.md §7). SIGINT stops at the next phase
# boundary, flushes artifacts, and exits 130; a run that finishes before the
# signal lands (exit 0) is an acceptable race — the resume then just replays
# the complete journal, which exercises the same path.
res=(-exp fig8-stream -scale 0.05)
"$tmp/tvarak-sim" "${res[@]}" -metrics-out "$tmp/clean.json" >"$tmp/clean.txt"
"$tmp/tvarak-sim" "${res[@]}" -journal "$tmp/run.journal" \
    -metrics-out "$tmp/part.json" >/dev/null 2>&1 &
pid=$!
sleep 0.5
kill -INT "$pid" 2>/dev/null || true
rc=0; wait "$pid" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 130 ]; then
    echo "journaled run exited $rc, want 0 (finished) or 130 (interrupted)" >&2
    exit 1
fi
"$tmp/tvarak-sim" "${res[@]}" -resume -journal "$tmp/run.journal" \
    -metrics-out "$tmp/resumed.json" >"$tmp/resumed.txt" 2>/dev/null
cmp "$tmp/clean.json" "$tmp/resumed.json"
# Table output matches too, modulo the wall-clock timing header lines.
diff <(grep -v '^# ' "$tmp/clean.txt") <(grep -v '^# ' "$tmp/resumed.txt")

echo "== soak + chaos gate =="
# A bounded fixed-seed soak inside a hard 90s budget: 16 sampled units
# across every design with the oracle armed, chaos every 4th unit (the
# supervisor SIGKILLs its own worker child mid-unit and resumes it from
# the journal, asserting the resumed report is byte-identical), resource
# gates every 8 units, one fsync'd ledger line per unit. soakcheck must
# come back clean with at least one kill/resume cycle, and a same-seed
# rerun must reproduce the ledger's canonical projection byte-for-byte
# (DESIGN.md §11). Replay any flagged unit from its ledger line's seed and
# key — see EXPERIMENTS.md "Overnight soak".
go build -o "$tmp/tvarak-soak" ./cmd/tvarak-soak
go build -o "$tmp/soakcheck" ./tools/soakcheck
soak=(-seed 11 -units 16 -budget 90s -ops-sample 100ms)
"$tmp/tvarak-soak" "${soak[@]}" -ledger "$tmp/soak-a.jsonl" -workdir "$tmp/soak-wa" >/dev/null
"$tmp/soakcheck" -ledger "$tmp/soak-a.jsonl" -require-chaos 1
"$tmp/tvarak-soak" "${soak[@]}" -ledger "$tmp/soak-b.jsonl" -workdir "$tmp/soak-wb" >/dev/null
"$tmp/soakcheck" -ledger "$tmp/soak-a.jsonl" -canon >"$tmp/soak-a.canon"
"$tmp/soakcheck" -ledger "$tmp/soak-b.jsonl" -canon >"$tmp/soak-b.canon"
cmp "$tmp/soak-a.canon" "$tmp/soak-b.canon"

echo "== fleet sweep gate =="
# The same sweep the interrupt gate ran locally, now through a gateway and
# two localhost workers — with one worker SIGKILLed mid-sweep. The dead
# worker's lease must expire and be re-dispatched (>=1 redelivery in the
# summary), and the merged table and export must come out byte-identical
# to the local run's (DESIGN.md §12). -acquire-delay holds the victim
# between lease grant and unit start so the kill reliably orphans a lease.
go build -o "$tmp/tvarak-gateway" ./cmd/tvarak-gateway
go build -o "$tmp/tvarak-worker" ./cmd/tvarak-worker
"$tmp/tvarak-gateway" "${res[@]}" \
    -listen 127.0.0.1:0 -addr-file "$tmp/gw.addr" \
    -lease-ttl 2s -redeliver-backoff 100ms \
    -journal "$tmp/fleet.journal" -summary-file "$tmp/fleet-summary.json" \
    -metrics-out "$tmp/fleet.json" >"$tmp/fleet.txt" 2>/dev/null &
gwpid=$!
gwaddr=""
for _ in $(seq 1 100); do
    if [ -s "$tmp/gw.addr" ]; then gwaddr=$(cat "$tmp/gw.addr"); break; fi
    sleep 0.05
done
if [ -z "$gwaddr" ]; then
    echo "fleet gate: gateway address never appeared in $tmp/gw.addr" >&2
    exit 1
fi
"$tmp/tvarak-worker" -gateway "http://$gwaddr" -name victim \
    -acquire-delay 5s >/dev/null 2>&1 &
victim=$!
sleep 1
kill -9 "$victim" 2>/dev/null || true
"$tmp/tvarak-worker" -gateway "http://$gwaddr" -name survivor -slots 2 2>/dev/null
wait "$gwpid"
grep -Eq '"redelivered": *[1-9]' "$tmp/fleet-summary.json" || {
    echo "fleet gate: no redelivery after SIGKILLing a worker:" >&2
    cat "$tmp/fleet-summary.json" >&2
    exit 1
}
cmp "$tmp/clean.json" "$tmp/fleet.json"
diff <(grep -v '^# ' "$tmp/clean.txt") <(grep -v '^# ' "$tmp/fleet.txt")

echo "== vilamb fleet sweep gate =="
# The async-family reduced sweep (ext-async-mini: Baseline/TVARAK anchors
# plus epoch x granularity x battery Vilamb points, DESIGN.md §13) through
# the same kill-a-worker fleet: the async axes must survive the JobSpec
# round-trip and lease redelivery, and the merged table, both derived
# figure panels, and the export must come out byte-identical to a local
# tvarak-sim run of the same grid.
async=(-exp ext-async-mini -scale 0.02)
"$tmp/tvarak-sim" "${async[@]}" -metrics-out "$tmp/async-clean.json" >"$tmp/async-clean.txt"
"$tmp/tvarak-gateway" "${async[@]}" \
    -listen 127.0.0.1:0 -addr-file "$tmp/agw.addr" \
    -lease-ttl 2s -redeliver-backoff 100ms \
    -journal "$tmp/async-fleet.journal" -summary-file "$tmp/async-summary.json" \
    -metrics-out "$tmp/async-fleet.json" >"$tmp/async-fleet.txt" 2>/dev/null &
gwpid=$!
gwaddr=""
for _ in $(seq 1 100); do
    if [ -s "$tmp/agw.addr" ]; then gwaddr=$(cat "$tmp/agw.addr"); break; fi
    sleep 0.05
done
if [ -z "$gwaddr" ]; then
    echo "vilamb fleet gate: gateway address never appeared in $tmp/agw.addr" >&2
    exit 1
fi
"$tmp/tvarak-worker" -gateway "http://$gwaddr" -name victim \
    -acquire-delay 5s >/dev/null 2>&1 &
victim=$!
sleep 1
kill -9 "$victim" 2>/dev/null || true
"$tmp/tvarak-worker" -gateway "http://$gwaddr" -name survivor -slots 2 2>/dev/null
wait "$gwpid"
grep -Eq '"redelivered": *[1-9]' "$tmp/async-summary.json" || {
    echo "vilamb fleet gate: no redelivery after SIGKILLing a worker:" >&2
    cat "$tmp/async-summary.json" >&2
    exit 1
}
cmp "$tmp/async-clean.json" "$tmp/async-fleet.json"
diff <(grep -v '^# ' "$tmp/async-clean.txt") <(grep -v '^# ' "$tmp/async-fleet.txt")

echo "ci.sh: all checks passed"
