#!/usr/bin/env bash
# ci.sh — tier-1 verification plus the parallel-harness race gate.
#
#   ./ci.sh         # format check, vet, build, tests, race tests
#
# The race run covers internal/harness and internal/experiments: the
# parallel experiment runner executes cells on concurrent workers, and the
# race detector proves cells share no state (each cell builds its own
# System; see DESIGN.md "Harness and tooling").
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel harness gate) =="
go test -race ./internal/harness/ ./internal/experiments/ .

echo "== telemetry export gate =="
# One small experiment cell through the full -metrics-out path, twice:
# the exports must be byte-identical (determinism), schema-valid, and match
# the committed golden (numbers regression). After an intentional behaviour
# change, regenerate the golden with: UPDATE_GOLDEN=1 ./ci.sh
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/tvarak-sim" ./cmd/tvarak-sim
gate=(-exp fig8-redis -scale 0.02 -designs baseline,tvarak -sample-every 100000)
"$tmp/tvarak-sim" "${gate[@]}" -metrics-out "$tmp/run1.json" >/dev/null
"$tmp/tvarak-sim" "${gate[@]}" -metrics-out "$tmp/run2.json" >/dev/null
cmp "$tmp/run1.json" "$tmp/run2.json"
"$tmp/tvarak-sim" -validate "$tmp/run1.json"
if [ "${UPDATE_GOLDEN:-0}" = "1" ]; then
    cp "$tmp/run1.json" testdata/ci-golden.json
    echo "regenerated testdata/ci-golden.json"
fi
"$tmp/tvarak-sim" -compare "testdata/ci-golden.json,$tmp/run1.json"

echo "ci.sh: all checks passed"
