// Command opscheck analyzes an ops resource ledger (the JSONL file a
// tvarak-sim/tvarak-fault run appends with -ops-ledger) and flags
// long-horizon resource anomalies: monotonic heap growth, goroutine leaks,
// and throughput drift beyond a threshold. It exits 1 when any enabled
// check flags — these are the gates the soak mode reuses (ROADMAP
// "Continuous soak + chaos mode": flat RSS, zero leaked goroutines,
// steady throughput over 24h).
//
// Usage:
//
//	opscheck -ledger ops.jsonl                  # all checks, default thresholds
//	opscheck -ledger ops.jsonl -checks goroutines
//	opscheck -ledger ops.jsonl -heap 0.25 -drift 0.3 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tvarak/internal/live"
)

func main() {
	var (
		ledger     = flag.String("ledger", "", "ops resource ledger (JSONL) to analyze")
		checks     = flag.String("checks", "heap,goroutines,drift", "comma-separated checks to enable (heap,goroutines,drift)")
		heap       = flag.Float64("heap", 0, "heap-growth fraction threshold (0 = default)")
		goroutines = flag.Int("goroutines", 0, "goroutine slack over the first sample (0 = default)")
		drift      = flag.Float64("drift", 0, "throughput-drift fraction threshold (0 = default)")
		minSamples = flag.Int("min-samples", 0, "minimum samples for the heap and drift checks (0 = default)")
		verbose    = flag.Bool("v", false, "print the ledger summary even when clean")
	)
	flag.Parse()
	if *ledger == "" {
		fmt.Fprintln(os.Stderr, "opscheck: -ledger required")
		os.Exit(2)
	}

	cfg := live.DefaultOpsCheck()
	if *heap > 0 {
		cfg.HeapGrowthFrac = *heap
	}
	if *goroutines > 0 {
		cfg.GoroutineSlack = *goroutines
	}
	if *drift > 0 {
		cfg.ThroughputDriftFrac = *drift
	}
	if *minSamples > 0 {
		cfg.MinSamples = *minSamples
	}
	cfg, err := cfg.WithChecks(strings.Split(*checks, ",")...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opscheck:", err)
		os.Exit(2)
	}

	// The analysis itself is the library code path the soak harness's
	// resource gates share (live.OpsCheck.AnalyzeLedgerFile); this CLI only
	// adds flag parsing and rendering.
	findings, samples, err := cfg.AnalyzeLedgerFile(*ledger)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("%s: empty ledger", *ledger))
	}

	first, last := samples[0], samples[len(samples)-1]
	span := time.Duration(last.UnixMS-first.UnixMS) * time.Millisecond
	if *verbose || len(findings) > 0 {
		fmt.Printf("%s: %d samples over %v\n", *ledger, len(samples), span.Round(time.Second))
		fmt.Printf("  heap       %s -> %s\n", bytesStr(first.HeapAlloc), bytesStr(last.HeapAlloc))
		fmt.Printf("  rss        %s -> %s\n", bytesStr(first.RSSBytes), bytesStr(last.RSSBytes))
		fmt.Printf("  goroutines %d -> %d\n", first.Goroutines, last.Goroutines)
		fmt.Printf("  accesses   %d (final cumulative)\n", last.Accesses)
	}
	if len(findings) == 0 {
		fmt.Printf("opscheck: clean (%d samples, checks: %s)\n", len(samples), *checks)
		return
	}
	for _, fd := range findings {
		fmt.Printf("opscheck: FLAG %s: %s\n", fd.Check, fd.Detail)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opscheck:", err)
	os.Exit(1)
}

func bytesStr(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
