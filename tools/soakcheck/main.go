// Command soakcheck analyzes a tvarak-soak ledger and turns it into a
// verdict: it exits non-zero on any undetected corruption, any
// unrecovered fault on a TVARAK design, any unit failure, any
// kill/resume identity mismatch, or any resource-gate finding — the soak
// acceptance bar (DESIGN.md §11). The verdict logic itself lives in
// internal/soak (soak.Check); this CLI only parses flags and renders.
//
// Usage:
//
//	soakcheck -ledger soak.jsonl                 # verdict + summary
//	soakcheck -ledger soak.jsonl -require-chaos 1
//	soakcheck -ledger soak.jsonl -canon          # canonical projection to stdout
//
// -canon prints each line's deterministic projection (wall-clock fields
// zeroed) as JSONL: two same-seed bounded runs must produce byte-identical
// -canon output, which is CI's reproducibility gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"tvarak/internal/soak"
)

func main() {
	var (
		ledger       = flag.String("ledger", "", "soak ledger (JSONL) to analyze")
		canon        = flag.Bool("canon", false, "print the ledger's canonical (deterministic) projection and exit")
		requireChaos = flag.Int("require-chaos", 0, "fail unless at least this many kill/resume chaos cycles ran")
		verbose      = flag.Bool("v", false, "print the per-design breakdown even when clean")
	)
	flag.Parse()
	if *ledger == "" {
		fmt.Fprintln(os.Stderr, "soakcheck: -ledger required")
		os.Exit(2)
	}

	f, err := os.Open(*ledger)
	if err != nil {
		fatal(err)
	}
	lines, err := soak.ReadLedger(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(lines) == 0 {
		fatal(fmt.Errorf("%s: empty ledger", *ledger))
	}

	if *canon {
		enc := json.NewEncoder(os.Stdout)
		for _, l := range lines {
			if err := enc.Encode(l.Canonical()); err != nil {
				fatal(err)
			}
		}
		return
	}

	tally := soak.TallyLines(lines)
	problems := soak.Check(lines)
	if tally.Chaos < *requireChaos {
		problems = append(problems, soak.Problem{
			Reason: fmt.Sprintf("only %d chaos kill/resume cycle(s) ran, need >= %d", tally.Chaos, *requireChaos),
		})
	}

	if *verbose || len(problems) > 0 {
		fmt.Printf("%s: %d units, %.1fs simulated wall time\n", *ledger, tally.Units, float64(tally.WallMS)/1000)
		designs := make([]string, 0, len(tally.ByDesign))
		for d := range tally.ByDesign {
			designs = append(designs, d)
		}
		sort.Strings(designs)
		for _, d := range designs {
			fmt.Printf("  %-18s %d units\n", d, tally.ByDesign[d])
		}
		fmt.Printf("  chaos cycles %d (%d killed, %d resumed), gate checks %d\n",
			tally.Chaos, tally.Killed, tally.Resumed, tally.GateChecks)
		fmt.Printf("  injections: %d armed, %d fired, %d detected, %d recovered, %d confirmed-silent\n",
			tally.Armed, tally.Fired, tally.Detected, tally.Recovered, tally.Silent)
	}
	if len(problems) == 0 {
		fmt.Printf("soakcheck: clean (%d units, %d chaos cycles)\n", tally.Units, tally.Chaos)
		return
	}
	for _, p := range problems {
		fmt.Printf("soakcheck: PROBLEM %s\n", p)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soakcheck:", err)
	os.Exit(1)
}
