// benchdiff runs the repo's hot-path benchmark suite with fixed iteration
// counts and gates the results against a committed baseline (BENCH_6.json).
//
// Usage:
//
//	go run ./tools/benchdiff -out BENCH_6.json                 # (re)record baseline
//	go run ./tools/benchdiff -out new.json -baseline BENCH_6.json  # run + gate
//	go run ./tools/benchdiff -compare BENCH_6.json,new.json    # gate two files
//
// What is gated, and how strictly, follows from what is actually portable
// across machines and runs:
//
//   - allocs/op and B/op are properties of the code, not the machine: with
//     fixed -benchtime=Nx counts they are reproducible to within GC noise.
//     A >10% (+small absolute slack) increase fails the gate.
//   - sim-cycles / sim-accesses / sim-cycles/recovery are SIMULATED time:
//     fully deterministic. Any drift at all fails — it means behaviour
//     changed, which the golden-table tests should also catch.
//   - ns/op is wall-clock and does NOT transfer across machines (or even
//     across hours on a loaded CI box; ±40% drift has been measured on the
//     same commit). It is reported for every benchmark but only enforced
//     when -ns-tol > 0 (ci.sh exposes this as BENCH_NS_TOL for dedicated,
//     quiet machines).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation: a package, a benchmark filter,
// and a FIXED iteration count so allocs/op is reproducible (adaptive
// benchtime changes b.N between runs, which shifts amortised one-time
// allocations).
type suite struct {
	Pkg       string `json:"pkg"`
	Pattern   string `json:"pattern"`
	Benchtime string `json:"benchtime"`
}

var suites = []suite{
	{"tvarak/internal/cache", "LookupHitStride4|LookupHitStride12|LookupMiss|VictimLRUFullSet|Install|SetIndexStride12", "200000x"},
	{"tvarak/internal/xsum", "ChecksumLine|XORIntoLine|XORIntoPage|ParityDeltaLine", "100000x"},
	{"tvarak/internal/nvm", "ReadLine$|WriteLine|ReadLineDRAM", "200000x"},
	{"tvarak/internal/sim", "LoadL1Hit|StoreL1Hit|LoadMissStream|StoreMissStream", "100000x"},
	{"tvarak/internal/core", "OnFillVerify|OnWriteback$", "20000x"},
	// End-to-end cells: one full fixed-work (workload, design) run each.
	// These carry the deterministic sim-cycles/sim-accesses metrics.
	{"tvarak", "CellStreamTriadBaseline|CellStreamTriadTvarak|CellRedisSetBaseline|CellRedisSetTvarak", "1x"},
}

// result holds one benchmark's reported values, keyed by unit
// ("ns/op", "allocs/op", "sim-cycles", ...).
type result struct {
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Schema     string            `json:"schema"`
	Go         string            `json:"go"`
	Suites     []suite           `json:"suites"`
	Benchmarks map[string]result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

func main() {
	out := flag.String("out", "", "write benchmark results (JSON) to this file")
	baseline := flag.String("baseline", "", "gate the fresh run against this baseline file")
	compare := flag.String("compare", "", "gate two existing files: baseline,new (no benchmarks are run)")
	nsTol := flag.Float64("ns-tol", 0, "wall-clock tolerance, e.g. 0.10 = fail ns/op regressions >10%; 0 disables the ns/op gate")
	flag.Parse()

	if *compare != "" {
		parts := strings.SplitN(*compare, ",", 2)
		if len(parts) != 2 {
			fatalf("-compare wants baseline,new")
		}
		old, err := load(parts[0])
		if err != nil {
			fatalf("%v", err)
		}
		fresh, err := load(parts[1])
		if err != nil {
			fatalf("%v", err)
		}
		os.Exit(diff(old, fresh, *nsTol))
	}

	rep, err := run()
	if err != nil {
		fatalf("%v", err)
	}
	if *out != "" {
		if err := save(*out, rep); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
	if *baseline != "" {
		old, err := load(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		os.Exit(diff(old, rep, *nsTol))
	}
	if *out == "" {
		// Neither -out nor -baseline: print to stdout for inspection.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

// run executes every suite and parses the standard bench output lines.
func run() (*report, error) {
	rep := &report{
		Schema:     "tvarak-bench/1",
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Suites:     suites,
		Benchmarks: map[string]result{},
	}
	for _, s := range suites {
		fmt.Printf("benchdiff: %s -bench '%s' -benchtime %s\n", s.Pkg, s.Pattern, s.Benchtime)
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", s.Pattern, "-benchtime", s.Benchtime, "-benchmem",
			"-count", "1", s.Pkg)
		outBytes, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("%s: %v\n%s", s.Pkg, err, outBytes)
		}
		n := 0
		for _, line := range strings.Split(string(outBytes), "\n") {
			name, r, ok := parseLine(line)
			if !ok {
				continue
			}
			rep.Benchmarks[s.Pkg+"."+strings.TrimPrefix(name, "Benchmark")] = r
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("%s: pattern %q matched no benchmarks:\n%s", s.Pkg, s.Pattern, outBytes)
		}
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (string, result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return "", result{}, false
	}
	m := benchLine.FindStringSubmatch(f[0])
	if m == nil {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return m[1], r, true
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

func save(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diff gates fresh against old and returns the process exit code.
func diff(old, fresh *report, nsTol float64) int {
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fails := 0
	for _, name := range names {
		ob := old.Benchmarks[name]
		nb, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline, missing from this run\n", name)
			fails++
			continue
		}
		units := make([]string, 0, len(ob.Metrics))
		for u := range ob.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := ob.Metrics[unit]
			nv, ok := nb.Metrics[unit]
			if !ok {
				fmt.Printf("FAIL %s: metric %s missing from this run\n", name, unit)
				fails++
				continue
			}
			switch verdict(unit, ov, nv, nsTol) {
			case gateFail:
				fmt.Printf("FAIL %s: %s %s -> %s (%+.1f%%)\n",
					name, unit, fmtVal(ov), fmtVal(nv), pct(ov, nv))
				fails++
			case gateInfo:
				fmt.Printf("  ok %s: %s %s -> %s (%+.1f%%, not gated)\n",
					name, unit, fmtVal(ov), fmtVal(nv), pct(ov, nv))
			case gatePass:
				if nv != ov {
					fmt.Printf("  ok %s: %s %s -> %s (%+.1f%%)\n",
						name, unit, fmtVal(ov), fmtVal(nv), pct(ov, nv))
				}
			}
		}
	}
	for name := range fresh.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			fmt.Printf("note %s: not in baseline (regenerate with UPDATE_BENCH=1 ./ci.sh)\n", name)
		}
	}
	if fails > 0 {
		fmt.Printf("benchdiff: %d regression(s) vs baseline\n", fails)
		return 1
	}
	fmt.Printf("benchdiff: %d benchmarks within budget\n", len(names))
	return 0
}

type gate int

const (
	gatePass gate = iota
	gateFail
	gateInfo
)

// verdict applies the per-unit gating policy described in the package
// comment.
func verdict(unit string, old, new, nsTol float64) gate {
	switch {
	case strings.HasPrefix(unit, "sim-"):
		// Simulated time and access counts are deterministic: exact match.
		if new != old {
			return gateFail
		}
		return gatePass
	case unit == "allocs/op":
		if new > old*1.10+2 {
			return gateFail
		}
		return gatePass
	case unit == "B/op":
		if new > old*1.10+128 {
			return gateFail
		}
		return gatePass
	case unit == "ns/op":
		if nsTol > 0 && new > old*(1+nsTol) {
			return gateFail
		}
		if nsTol > 0 {
			return gatePass
		}
		return gateInfo
	default:
		// accesses/sec and other wall-clock-derived extras: report only.
		return gateInfo
	}
}

func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (new - old) / old
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
