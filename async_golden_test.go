// Golden regression + distribution-identity gate for the async-family
// sweep figures: the reduced ext-async-mini experiment (the CI fleet
// gate's grid) must render its result table AND both derived figure
// panels (overhead-vs-epoch, vulnerability-window-vs-epoch)
// byte-identically to the committed golden — and identically again when
// the same cells run with a different cell parallelism, a sharded weave,
// or through an in-process two-worker fleet. Any byte of drift means the
// simulated async-family behaviour changed.
//
// After an INTENTIONAL behaviour change, regenerate with:
//
//	UPDATE_GOLDEN=1 go test -run TestAsyncSweepGolden .
package tvarak_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"tvarak"
	"tvarak/internal/experiments"
	"tvarak/internal/fleet"
	"tvarak/internal/harness"
)

const asyncGoldenScale = 0.02

// renderAsyncSweep renders the table plus every async figure panel — the
// exact stdout a local tvarak-sim run of the experiment prints (minus the
// wall-clock header), and what the golden pins.
func renderAsyncSweep(t *testing.T, tab *harness.Table) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(tab.String())
	figs := experiments.AsyncFigures(tab)
	if len(figs) != 2 {
		t.Fatalf("AsyncFigures returned %d panels, want 2", len(figs))
	}
	for _, f := range figs {
		b.WriteByte('\n')
		b.WriteString(f.String())
	}
	return b.String()
}

func runAsyncMini(t *testing.T, o experiments.Options) string {
	t.Helper()
	e, err := tvarak.LookupExperiment("ext-async-mini")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return renderAsyncSweep(t, tab)
}

func TestAsyncSweepGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping under -race: ~10x simulator slowdown blows the package timeout; byte-identity is gated by the regular test pass")
	}
	got := runAsyncMini(t, experiments.Options{Scale: asyncGoldenScale, Parallel: runtime.NumCPU()})
	path := filepath.Join("testdata", "golden-ext-async-mini.txt")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run UPDATE_GOLDEN=1 go test -run TestAsyncSweepGolden .): %v", err)
	}
	if got != string(want) {
		t.Errorf("ext-async-mini drifted from golden %s.\nSimulated results must be byte-identical across refactors; if this change is intentional, regenerate with UPDATE_GOLDEN=1.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}

	// The same cells at serial parallelism and with a sharded weave must
	// render identically: neither axis may leak into results.
	if serial := runAsyncMini(t, experiments.Options{Scale: asyncGoldenScale, Parallel: 1}); serial != got {
		t.Error("ext-async-mini differs between -parallel 1 and parallel run")
	}
	if sharded := runAsyncMini(t, experiments.Options{Scale: asyncGoldenScale, Parallel: runtime.NumCPU(), Shards: 2}); sharded != got {
		t.Error("ext-async-mini differs with a 2-sharded weave")
	}
}

// TestAsyncSweepFleetByteIdentical runs the same reduced sweep through an
// in-process gateway with two workers — the distributed path CI's fleet
// gate drives across processes — and requires the merged table + figures
// to match the local rendering byte for byte.
func TestAsyncSweepFleetByteIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping under -race: ~10x simulator slowdown blows the package timeout; byte-identity is gated by the regular test pass")
	}
	local := runAsyncMini(t, experiments.Options{Scale: asyncGoldenScale, Parallel: runtime.NumCPU()})

	spec := fleet.JobSpec{Kind: "sweep", Experiment: "ext-async-mini", Scale: asyncGoldenScale}
	plan, err := fleet.BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fleet.NewGateway(fleet.GatewayConfig{Plan: plan, Spec: spec, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	errs := make(chan error, 2)
	for _, name := range []string{"wa", "wb"} {
		w := &fleet.Worker{Gateway: srv.URL, Name: name, Build: fleet.BuildPlan}
		go func() { errs <- w.Run(ctx) }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	payloads, failures, err := g.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected unit failures: %v", failures)
	}
	sp, ok := plan.(*fleet.SweepPlan)
	if !ok {
		t.Fatalf("BuildPlan returned %T, want *fleet.SweepPlan", plan)
	}
	tab, err := sp.MergeTable(sp.Title, payloads, failures, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAsyncSweep(t, tab); got != local {
		t.Errorf("fleet-merged sweep differs from local run:\n--- fleet ---\n%s--- local ---\n%s", got, local)
	}

	// The unit payloads themselves are harness.Result JSON — spot-check
	// that the async variants actually travelled through the fleet.
	sawAsync := false
	for _, p := range payloads {
		var r harness.Result
		if err := json.Unmarshal(p, &r); err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(r.Variant, "ep") {
			sawAsync = true
		}
	}
	if !sawAsync {
		t.Error("no async-variant cell travelled through the fleet")
	}
}
