//go:build race

package tvarak_test

// raceEnabled lets long end-to-end tests skip under `go test -race`: the
// race detector slows the simulator ~10x, and the golden-table experiments
// would blow the package test timeout on small CI machines. The behaviour
// those tests gate (byte-identical tables) is covered by the regular test
// pass; the race pass keeps the shorter concurrency-focused tests.
func init() { raceEnabled = true }
