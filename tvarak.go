// Package tvarak is the public API of the TVARAK reproduction: a
// simulated DAX-NVM storage stack (cores, caches, NVM DIMMs, DAX file
// system, persistent heap) with the paper's hardware redundancy controller
// and its software-only baselines, plus the harness that regenerates every
// table and figure of the ISCA 2020 evaluation.
//
// Quick start:
//
//	cfg := tvarak.ReproScaleConfig(tvarak.DesignTvarak)
//	m, err := tvarak.NewMachine(cfg)
//	...
//	dm, err := m.NewMapping("data", 1<<20)
//	m.Engine().Run([]func(*tvarak.Core){func(c *tvarak.Core) {
//		dm.Store(c, 0, []byte("hello"))
//	}})
//
// See examples/ for runnable programs and cmd/tvarak-sim for the
// experiment CLI.
package tvarak

import (
	"io"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/experiments"
	"tvarak/internal/fault"
	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/obs"
	"tvarak/internal/oracle"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/stats"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported public surface.
type (
	// Config is the full machine configuration (Table III parameters).
	Config = param.Config
	// Design selects the redundancy scheme.
	Design = param.Design
	// Features toggles TVARAK's three design elements (Fig. 9).
	Features = param.TvarakFeatures
	// Core is a simulated CPU; workload code runs against it.
	Core = sim.Core
	// Engine is the simulation engine.
	Engine = sim.Engine
	// Controller is the TVARAK hardware controller.
	Controller = core.Controller
	// FS is the DAX file system.
	FS = daxfs.FS
	// DaxMap is a direct-access mapping.
	DaxMap = daxfs.DaxMap
	// Heap is a persistent object heap with undo-log transactions.
	Heap = pmem.Heap
	// Tx is one transaction.
	Tx = pmem.Tx
	// Stats holds the run's metrics (runtime, energy, NVM/cache accesses).
	Stats = stats.Stats
	// CacheCounter counts hits and misses at one cache level.
	CacheCounter = stats.CacheCounter
	// CacheLevel identifies a cache level in Stats.Cache.
	CacheLevel = stats.Level
	// Workload is a runnable benchmark workload.
	Workload = harness.Workload
	// Result is one (workload, design) outcome.
	Result = harness.Result
	// ResultTable renders paper-style comparisons.
	ResultTable = harness.Table
	// Experiment regenerates one of the paper's tables or figures.
	Experiment = experiments.Experiment
	// ExperimentOptions tunes experiment scale, design selection and
	// parallelism.
	ExperimentOptions = experiments.Options
	// Cell is one independent simulation unit (config + workload factory);
	// experiments enumerate cells and a Runner executes them.
	Cell = harness.Cell
	// Runner executes cells across a bounded worker pool, reassembling
	// results in cell order so tables are identical at any parallelism.
	Runner = harness.Runner
	// Progress is the per-cell completion callback a Runner invokes.
	Progress = harness.Progress
	// Tracer receives structured simulation events (fills, writebacks,
	// diff stashes, corruptions, ...); attach via Engine.Tracer or
	// Observation.Tracer.
	Tracer = obs.Tracer
	// TraceEvent is one traced simulation event.
	TraceEvent = obs.Event
	// Sampler snapshots statistics deltas at phase boundaries into a
	// per-run epoch time series; attach via Engine.AttachSampler.
	Sampler = obs.Sampler
	// Sample is one epoch of a sampled run's time series.
	Sample = obs.Sample
	// Observation selects the telemetry (sampling, tracing) attached to a
	// RunWorkloadObserved run.
	Observation = harness.Observation
	// MetricsExport is the versioned machine-readable result document
	// (JSON/CSV) that -metrics-out writes and the compare mode diffs.
	MetricsExport = obs.Export
	// RunJournal is the crash-safe per-run checkpoint log backing -journal
	// and -resume: one fsync'd record per completed cell, keyed by a
	// stable fingerprint, so an interrupted run resumes byte-identically.
	RunJournal = harness.Journal
	// RunManifest accounts for a run's partial completion: failed, hung,
	// interrupted and never-attempted cells.
	RunManifest = harness.Manifest
	// CellFailure describes one cell that exhausted its attempts.
	CellFailure = harness.CellFailure
)

// Design constants.
const (
	DesignBaseline       = param.Baseline
	DesignTvarak         = param.Tvarak
	DesignTxBObjectCsums = param.TxBObjectCsums
	DesignTxBPageCsums   = param.TxBPageCsums
	DesignVilamb         = param.Vilamb
)

// Asynchronous-redundancy (Vilamb) design family.
type (
	// AsyncConfig parameterizes the asynchronous (Vilamb-family) designs:
	// epoch interval, dirty-tracking granularity, batched vs. incremental
	// recomputation, and the battery-backed-DRAM preset. Set it on
	// Config.Async (Vilamb design only).
	AsyncConfig = param.AsyncConfig
	// DirtyGran selects the async dirty-tracking granularity.
	DirtyGran = param.DirtyGran
	// MetricsFigure is one derived figure panel of a metrics export.
	MetricsFigure = obs.Figure
)

// Async dirty-tracking granularities.
const (
	GranPage  = param.GranPage
	GranLine  = param.GranLine
	GranRange = param.GranRange
)

// ParseDirtyGran parses a granularity name ("", "page", "line", "range").
func ParseDirtyGran(s string) (DirtyGran, error) { return param.ParseDirtyGran(s) }

// BatteryBackedPreset is the battery-backed-DRAM async preset: line-granular
// dirty tracking with staged intent checksums verified at each
// reconciliation pass, closing the vulnerability window entirely.
func BatteryBackedPreset(epochCyc uint64) AsyncConfig { return param.BatteryPreset(epochCyc) }

// AsyncSweepFigures derives the async sweep's figure panels
// (overhead-vs-epoch, vulnerability-window-vs-epoch) from a finished
// result table; nil when the table has no async variants.
func AsyncSweepFigures(t *ResultTable) []MetricsFigure { return experiments.AsyncFigures(t) }

// Cache levels for Stats.Cache indexing.
const (
	LevelL1     = stats.L1
	LevelL2     = stats.L2
	LevelLLC    = stats.LLC
	LevelTvarak = stats.TvarakCache
)

// DefaultConfig returns the paper's Table III machine.
func DefaultConfig(d Design) *Config { return param.Default(d) }

// ReproScaleConfig returns the 1/16-scale reproduction machine the default
// experiments use (see EXPERIMENTS.md).
func ReproScaleConfig(d Design) *Config { return param.ReproScale(d) }

// Machine is a fully assembled simulated system.
type Machine struct {
	sys *harness.System
}

// NewMachine builds the machine described by cfg, including the TVARAK
// controller when cfg.Design is DesignTvarak.
func NewMachine(cfg *Config) (*Machine, error) {
	sys, err := harness.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys}, nil
}

// Engine returns the simulation engine (cores, Run, stats).
func (m *Machine) Engine() *Engine { return m.sys.Eng }

// FS returns the DAX file system.
func (m *Machine) FS() *FS { return m.sys.FS }

// Controller returns the TVARAK controller, or nil for other designs.
func (m *Machine) Controller() *Controller { return m.sys.Ctrl }

// Stats returns the live statistics.
func (m *Machine) Stats() *Stats { return m.sys.Eng.St }

// NewMapping creates and DAX-maps a file.
func (m *Machine) NewMapping(name string, size uint64) (*DaxMap, error) {
	return m.sys.NewMapping(name, size)
}

// NewHeap creates a mapped file with a persistent heap on it, attaching the
// software redundancy scheme under TxB designs.
func (m *Machine) NewHeap(name string, size, maxObjects uint64) (*Heap, error) {
	return m.sys.NewHeap(name, size, maxObjects)
}

// System exposes the underlying harness system for advanced use.
func (m *Machine) System() *harness.System { return m.sys }

// RunWorkload executes one workload under the fixed-work methodology and
// returns its metrics.
func RunWorkload(cfg *Config, w Workload) (*Result, error) {
	return harness.Run(cfg, w)
}

// RunWorkloadObserved is RunWorkload with telemetry attached to the
// measured region: an epoch sampler (Observation.SampleEvery) and/or an
// event tracer (Observation.Tracer). Telemetry is read-only — results are
// byte-identical to an unobserved run.
func RunWorkloadObserved(cfg *Config, w Workload, ob Observation) (*Result, error) {
	return harness.RunObserved(cfg, w, ob)
}

// NewJSONLTracer builds a tracer that writes one JSON object per event to
// w through a bounded buffer; after maxEvents events (0 selects a generous
// default, negative disables the bound) it drops and counts instead of
// writing. Close flushes and appends a trailer with the totals.
func NewJSONLTracer(w io.Writer, maxEvents int64) *obs.JSONL {
	return obs.NewJSONL(w, maxEvents)
}

// NewEpochSampler builds a sampler with the given epoch length in cycles;
// attach it with Engine.AttachSampler after ResetMeasurement.
func NewEpochSampler(every uint64) *Sampler { return obs.NewSampler(every) }

// MetricsSchemaVersion is the version of the machine-readable export
// schema this build reads and writes.
const MetricsSchemaVersion = obs.SchemaVersion

// NewMetricsExport returns an empty export document at the current schema
// version; fill Runs from ResultTable.ExportRuns and serialize with
// WriteJSON or WriteCSV.
func NewMetricsExport(tool string) *MetricsExport { return obs.NewExport(tool) }

// RunCells executes independent simulation cells on a bounded worker pool
// (workers <= 0 means one per CPU) and returns results in cell order.
// Results are identical at any worker count; see Runner for progress
// callbacks and table assembly.
func RunCells(cells []Cell, workers int) ([]*Result, error) {
	return harness.Runner{Workers: workers}.Run(cells)
}

// NewRunJournal creates (or truncates) a fresh checkpoint journal at path.
func NewRunJournal(path string) (*RunJournal, error) { return harness.NewJournal(path) }

// ResumeRunJournal reopens an interrupted run's journal: records already on
// disk restore their cells without re-simulation, and corrupted or torn
// lines (a crash mid-write) are skipped, never fatal.
func ResumeRunJournal(path string) (*RunJournal, error) { return harness.OpenJournal(path) }

// NewScopedRunJournal is NewRunJournal with the run's scope — the
// experiment/campaign id plus every option that shapes its cells — stamped
// into the journal's header record.
func NewScopedRunJournal(path, scope string) (*RunJournal, error) {
	return harness.NewJournalScope(path, scope)
}

// ResumeScopedRunJournal is ResumeRunJournal plus the scope handshake: a
// journal written under different options is rejected with an error naming
// both scopes, instead of the resume silently restoring nothing because
// every fingerprint misses. Legacy header-less journals and empty scopes
// are tolerated.
func ResumeScopedRunJournal(path, scope string) (*RunJournal, error) {
	return harness.OpenJournalScope(path, scope)
}

// Experiments lists the registry reproducing every table and figure.
func Experiments() []Experiment { return experiments.Experiments() }

// LookupExperiment finds an experiment by id (e.g. "fig8-redis").
func LookupExperiment(id string) (Experiment, error) { return experiments.Lookup(id) }

// Correctness tooling: the shadow redundancy oracle and the deterministic
// fault-injection campaign engine (see DESIGN.md §Correctness tooling).
type (
	// Oracle is the shadow redundancy oracle — a reference model of the
	// NVM's intended content cross-checked against the machine.
	Oracle = oracle.Oracle
	// FaultCampaignOptions configures a fault-injection campaign.
	FaultCampaignOptions = fault.Options
	// FaultCampaignReport is a campaign's complete outcome.
	FaultCampaignReport = fault.Report
	// FaultUnitReport is one (app, design) campaign unit's outcome.
	FaultUnitReport = fault.UnitReport
)

// AttachOracle snapshots the machine's NVM and installs the shadow
// oracle's observers; attach after workload setup, before the runs whose
// redundancy behaviour should be checked.
func AttachOracle(m *Machine) *Oracle { return oracle.Attach(m.sys.Eng, m.sys.FS) }

// RunFaultCampaign executes a deterministic fault-injection campaign:
// the same seeded injection schedules against every design, judged by
// the shadow oracle. The error summarizes failed units; the report holds
// per-injection detail and serializes deterministically with
// WriteFaultReport.
func RunFaultCampaign(opt FaultCampaignOptions) (*FaultCampaignReport, error) {
	return fault.Run(opt)
}

// WriteFaultReport streams a campaign report as deterministic JSONL
// (same seed, byte-identical output).
func WriteFaultReport(w io.Writer, r *FaultCampaignReport) error { return fault.WriteJSONL(w, r) }

// FaultCampaignApps lists the applications a campaign covers.
func FaultCampaignApps() []string { return fault.AppNames() }

// Live wall-clock telemetry: the metrics registry + run board behind the
// CLIs' -ops-addr endpoint and resource ledger (see DESIGN.md §Live
// telemetry). Strictly read-only — attaching it changes no simulated
// result.
type (
	// LiveTelemetry bundles the live metric set and the per-cell run
	// board; hand it to experiments.Options.Live / FaultCampaignOptions.Live.
	LiveTelemetry = live.Telemetry
	// OpsConfig selects the ops HTTP server address and resource-ledger
	// path for StartLiveOps.
	OpsConfig = live.OpsConfig
	// LiveOps is the running ops bundle (HTTP server + resource sampler).
	LiveOps = live.Ops
	// ResourceSample is one line of the ops resource ledger.
	ResourceSample = live.ResourceSample
)

// NewLiveTelemetry builds the full tvarak live metric set and an empty run
// board.
func NewLiveTelemetry() *LiveTelemetry { return live.NewTelemetry() }

// StartLiveOps starts the ops HTTP server and/or the resource sampler per
// the config; returns nil when the config enables neither. Close the
// returned bundle before reading its artifacts.
func StartLiveOps(t *LiveTelemetry, cfg OpsConfig) (*LiveOps, error) { return live.StartOps(t, cfg) }

// ReadResourceLedger parses a JSONL ops resource ledger (tolerating a torn
// final line from a killed process).
func ReadResourceLedger(r io.Reader) ([]ResourceSample, error) { return live.ReadResourceLedger(r) }
