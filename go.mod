module tvarak

go 1.22
