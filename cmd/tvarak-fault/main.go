// Command tvarak-fault demonstrates the firmware-bug scenarios of Figs. 1-2
// end to end: it injects lost-write, misdirected-write and misdirected-read
// bugs into the simulated NVM DIMMs, shows that device-level ECC does not
// notice them, and shows TVARAK detecting each corruption on read
// verification and recovering the data from cross-DIMM parity.
//
// With -trace the whole session (fills, writebacks, corruption detections,
// parity recoveries, ...) is written as a JSONL event stream, so the
// recovery storm each injected bug causes is inspectable event by event.
//
// With -campaign it instead runs the deterministic fault-injection
// campaign: -n seeded injections per design across all seven paper
// applications, judged by the shadow redundancy oracle (Baseline must
// miss every firmware-bug corruption, TVARAK must detect and recover
// every one). -report writes the per-injection JSONL report; the same
// -seed always yields byte-identical report bytes (see EXPERIMENTS.md
// for reproducing a failed campaign from its seed).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"tvarak"
)

func main() {
	traceOut := flag.String("trace", "", "write a JSONL event trace of every scenario to this path")
	campaign := flag.Bool("campaign", false, "run the oracle-judged fault-injection campaign instead of the demo scenarios")
	seed := flag.Int64("seed", 1, "campaign seed (same seed: byte-identical report)")
	n := flag.Int("n", 112, "campaign injections per design, split across the applications")
	designs := flag.String("designs", "", "comma-separated campaign designs (baseline,tvarak,vilamb; empty = baseline+tvarak)")
	epochCyc := flag.Uint64("epoch", 0, "async (vilamb) epoch interval in cycles for campaign units (0 = the design default)")
	dirtyGran := flag.String("dirty-gran", "", "async dirty-tracking granularity for campaign units: page, line or range")
	battery := flag.Bool("battery", false, "async battery-backed-DRAM preset for campaign units (zero vulnerability window)")
	incremental := flag.Bool("incremental", false, "incremental (sub-sliced) async reconciliation for campaign units")
	report := flag.String("report", "", "write the campaign's JSONL report to this path (- for stdout)")
	workers := flag.Int("workers", 0, "concurrent campaign units (0 = one per CPU)")
	shrink := flag.Bool("shrink", true, "minimize the injection schedule of any failing unit")
	journalPath := flag.String("journal", "", "checkpoint each finished campaign unit durably to this JSONL journal; resume an interrupted campaign with -resume")
	resume := flag.Bool("resume", false, "reopen -journal and restore already-finished units instead of re-simulating them (the report is byte-identical to an uninterrupted run)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the run to this path")
	opsAddr := flag.String("ops-addr", "", "serve live ops HTTP on this address (/metrics, /healthz, /runs, /debug/pprof); use :0 for a free port")
	opsAddrFile := flag.String("ops-addr-file", "", "write the resolved ops listen address to this file (for scripts using -ops-addr :0)")
	opsLedger := flag.String("ops-ledger", "", "append periodic resource samples as JSONL to this path; analyze with tools/opscheck")
	opsSample := flag.Duration("ops-sample", time.Second, "resource sample interval for -ops-ledger")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var lt *tvarak.LiveTelemetry
	var ops *tvarak.LiveOps
	if *opsAddr != "" || *opsLedger != "" {
		lt = tvarak.NewLiveTelemetry()
		var err error
		ops, err = tvarak.StartLiveOps(lt, tvarak.OpsConfig{
			Addr: *opsAddr, AddrFile: *opsAddrFile,
			LedgerPath: *opsLedger, SampleEvery: *opsSample,
		})
		if err != nil {
			fatal(err)
		}
		if a := ops.Addr(); a != "" {
			fmt.Fprintf(os.Stderr, "tvarak-fault: ops listening on http://%s\n", a)
		}
	}

	var err error
	if *campaign {
		opt, oerr := campaignOptions(*seed, *n, *workers, *shrink, *designs, *epochCyc, *dirtyGran, *battery, *incremental)
		if oerr != nil {
			fatal(oerr)
		}
		err = runCampaign(opt, *report, *journalPath, *resume, lt)
	} else {
		err = run(*traceOut)
	}

	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			fatal(perr)
		}
		f.Close()
	}
	if cerr := ops.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "tvarak-fault: closing ops:", cerr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvarak-fault:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted: artifacts flushed, resume with -resume
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvarak-fault:", err)
	os.Exit(1)
}

// campaignOptions assembles the campaign's options from the CLI flags,
// validating design and granularity names up front.
func campaignOptions(seed int64, n, workers int, shrink bool, designs string, epochCyc uint64, dirtyGran string, battery, incremental bool) (tvarak.FaultCampaignOptions, error) {
	opt := tvarak.FaultCampaignOptions{Seed: seed, N: n, Workers: workers, Shrink: shrink}
	for _, tok := range strings.Split(designs, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "":
		case "baseline":
			opt.Designs = append(opt.Designs, tvarak.DesignBaseline)
		case "tvarak":
			opt.Designs = append(opt.Designs, tvarak.DesignTvarak)
		case "txb-object", "txb-object-csums":
			opt.Designs = append(opt.Designs, tvarak.DesignTxBObjectCsums)
		case "txb-page", "txb-page-csums":
			opt.Designs = append(opt.Designs, tvarak.DesignTxBPageCsums)
		case "vilamb":
			opt.Designs = append(opt.Designs, tvarak.DesignVilamb)
		default:
			return opt, fmt.Errorf("unknown design %q", tok)
		}
	}
	g, err := tvarak.ParseDirtyGran(dirtyGran)
	if err != nil {
		return opt, err
	}
	opt.Async = tvarak.AsyncConfig{EpochCyc: epochCyc, DirtyGran: g, Incremental: incremental}
	if battery {
		opt.Async = tvarak.BatteryBackedPreset(epochCyc)
		opt.Async.Incremental = incremental
	}
	return opt, nil
}

func runCampaign(opt tvarak.FaultCampaignOptions, report, journalPath string, resume bool, lt *tvarak.LiveTelemetry) error {
	// SIGINT/SIGTERM cancel the campaign cooperatively: finished units are
	// kept (and journaled when -journal is set), the partial report is
	// still written, and Run returns an interruption error.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var journal *tvarak.RunJournal
	if resume && journalPath == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	if journalPath != "" {
		// Scope the journal to the campaign's shape — the same string the
		// fleet's CampaignPlan uses, so a gateway journal and a local one
		// are interchangeable — and reject -resume across skewed options.
		scope := opt.Scope()
		var err error
		if resume {
			journal, err = tvarak.ResumeScopedRunJournal(journalPath, scope)
		} else {
			journal, err = tvarak.NewScopedRunJournal(journalPath, scope)
		}
		if err != nil {
			return err
		}
		defer journal.Close()
		if resume {
			fmt.Fprintf(os.Stderr, "tvarak-fault: resuming from %s: %d record(s) restorable\n",
				journal.Path(), journal.Restored())
		}
	}

	fmt.Printf("fault campaign: seed=%d injections=%d apps=%v\n", opt.Seed, opt.N, tvarak.FaultCampaignApps())
	opt.Context = ctx
	opt.Journal = journal
	opt.Live = lt
	opt.Progress = func(done, total int, u *tvarak.FaultUnitReport) {
		status := "ok"
		if u.Failure != "" {
			status = "FAIL: " + u.Failure
		}
		fmt.Printf("  [%2d/%d] %-16s fired=%-3d detected=%-3d recovered=%-3d silent=%-3d %s\n",
			done, total, u.Label(), u.Fired, u.Detections, u.Recoveries, u.SilentCorruptions, status)
	}
	rep, runErr := tvarak.RunFaultCampaign(opt)
	if rep != nil {
		if report != "" {
			var w io.Writer = os.Stdout
			if report != "-" {
				f, err := os.Create(report)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := tvarak.WriteFaultReport(w, rep); err != nil {
				return err
			}
		}
		fmt.Printf("campaign: %d units, %d fired, %d silent under baseline, %d undetected, %d unrecovered, %d crash points, %d failures\n",
			len(rep.Units), rep.Fired, rep.SilentCorruptions, rep.Undetected, rep.Unrecovered, rep.CrashPoints, rep.Failures)
		if rep.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "tvarak-fault: %d unit(s) restored from journal\n", rep.Resumed)
		}
		if rep.Interrupted > 0 {
			hint := "re-run to finish"
			if journal != nil {
				hint = fmt.Sprintf("resume with: tvarak-fault -campaign -seed %d -n %d -resume -journal %s", opt.Seed, opt.N, journal.Path())
			}
			fmt.Fprintf(os.Stderr, "tvarak-fault: interrupted — %d unit(s) not run; %s\n", rep.Interrupted, hint)
		}
	}
	return runErr
}

func run(traceOut string) error {
	cfg := tvarak.ReproScaleConfig(tvarak.DesignTvarak)
	m, err := tvarak.NewMachine(cfg)
	if err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tr := tvarak.NewJSONLTracer(f, 0)
		defer tr.Close()
		m.Engine().Tracer = tr
	}
	dm, err := m.NewMapping("victim", 1<<20)
	if err != nil {
		return err
	}
	eng := m.Engine()
	ctrl := m.Controller()
	ctrl.CorruptionHook = func(addr uint64) {
		fmt.Printf("    TVARAK: checksum mismatch at %#x — recovering from cross-DIMM parity\n", addr)
	}

	scenario := func(name string, inject func(addr uint64), off uint64, want []byte) error {
		fmt.Printf("== %s ==\n", name)
		addr := dm.Addr(off) &^ 63
		// Flush so the next write reaches the device, then arm the bug.
		eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
			dm.Store(c, off, bytes.Repeat([]byte{0x11}, 64))
		}})
		eng.DropCaches()
		inject(addr)
		eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
			dm.Store(c, off, want)
		}})
		if eng.NVM.PendingBugs() != 0 {
			return fmt.Errorf("injected bug did not fire")
		}
		fmt.Printf("    device ECC errors: %d (firmware bugs are invisible to device ECC)\n", eng.St.ECCErrors)
		eng.DropCaches()
		var got []byte
		eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
			got = make([]byte, 64)
			dm.Load(c, off, got)
		}})
		if !bytes.Equal(got, want) {
			return fmt.Errorf("recovered data wrong")
		}
		fmt.Printf("    read returned correct data; detections=%d recoveries=%d\n\n",
			eng.St.CorruptionsDetected, eng.St.Recoveries)
		return nil
	}

	if err := scenario("lost write (Fig. 1)", func(a uint64) { eng.NVM.InjectLostWrite(a) },
		64*100, bytes.Repeat([]byte{0x22}, 64)); err != nil {
		return err
	}
	if err := scenario("misdirected write (Fig. 2)", func(a uint64) {
		eng.NVM.InjectMisdirectedWrite(a, dm.Addr(64*500)&^63)
	}, 64*200, bytes.Repeat([]byte{0x33}, 64)); err != nil {
		return err
	}
	if err := scenario("misdirected read", func(a uint64) {
		eng.NVM.InjectMisdirectedRead(a, dm.Addr(64*600)&^63)
	}, 64*300, bytes.Repeat([]byte{0x44}, 64)); err != nil {
		return err
	}

	fmt.Println("== media corruption (bit flip) — caught by device ECC, not TVARAK ==")
	before := eng.St.ECCErrors
	addr := dm.Addr(64*700) &^ 63
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		dm.Store(c, 64*700, bytes.Repeat([]byte{0x55}, 64))
	}})
	eng.DropCaches()
	eng.NVM.FlipBit(addr+5, 2)
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		buf := make([]byte, 64)
		dm.Load(c, 64*700, buf)
	}})
	fmt.Printf("    device ECC errors: %d (was %d)\n", eng.St.ECCErrors, before)
	fmt.Println("\nall scenarios detected and recovered")
	return nil
}
