// Command tvarak-soak is the continuous soak + chaos harness (DESIGN.md
// §11): from one master seed it deterministically samples an endless
// stream of (app × design × shards × fault-plan) units — every design,
// Vilamb and the software schemes included — and runs each as an
// oracle-judged fault-campaign unit on the worker pool. Every
// -chaos-every units the supervisor re-execs itself as a worker child,
// SIGKILLs it mid-unit, resumes it from its journal, and asserts the
// resumed report is byte-identical to an uninterrupted reference run. The
// live ops bundle runs throughout, its resource ledger feeding the heap /
// goroutine / throughput-drift gates every -gate-every units. Each
// finished unit appends one fsync'd JSONL line to the soak ledger;
// tools/soakcheck turns that ledger into a pass/fail verdict.
//
// Usage:
//
//	tvarak-soak -seed 1 -duration 24h                # overnight soak
//	tvarak-soak -seed 1 -units 16 -budget 90s        # bounded CI soak
//	tvarak-soak -seed 1 -units 200 -chaos-every 10 -ledger soak.jsonl
//
// A bounded same-seed run reproduces the ledger's canonical projection
// byte-for-byte (`soakcheck -canon`), which is CI's reproducibility gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/param"
	"tvarak/internal/soak"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "master soak seed; the whole unit stream derives from it")
		units      = flag.Int("units", 0, "stop after this many units (0 = unbounded; needs -duration or -budget)")
		duration   = flag.Duration("duration", 0, "stop cleanly after this wall-clock time (0 = none)")
		budget     = flag.Duration("budget", 0, "CI mode: hard wall-clock cap plus bounded defaults (-units 16 unless set)")
		chaosEvery = flag.Int("chaos-every", 8, "SIGKILL/resume every Nth unit through a worker child (0 disables)")
		killAfter  = flag.Duration("kill-after", 30*time.Millisecond, "delay between the worker's start marker and its SIGKILL")
		gateEvery  = flag.Int("gate-every", 16, "run the resource gates every N units (0 disables)")
		parallel   = flag.Int("parallel", 0, "concurrent units (0 = one per CPU)")
		designs    = flag.String("designs", "", "restrict the sampled design rotation (comma-separated; empty = all designs)")
		epochCyc   = flag.Uint64("epoch", 0, "pin the async (vilamb) epoch interval in cycles (needs -pin-async)")
		dirtyGran  = flag.String("dirty-gran", "", "pin the async dirty-tracking granularity: page, line or range (needs -pin-async)")
		battery    = flag.Bool("battery", false, "pin the async battery-backed-DRAM preset (needs -pin-async)")
		increm     = flag.Bool("incremental", false, "pin incremental async reconciliation (needs -pin-async)")
		pinAsync   = flag.Bool("pin-async", false, "pin every vilamb unit to the -epoch/-dirty-gran/-battery/-incremental config instead of rotating the async axes")
		ledger     = flag.String("ledger", "soak.jsonl", "append one fsync'd JSONL line per unit to this soak ledger")
		workdir    = flag.String("workdir", "", "scratch dir for chaos journals/reports (default: a temp dir, removed on success)")
		journal    = flag.String("journal", "", "checkpoint finished units durably to this journal; resume with -resume")
		resume     = flag.Bool("resume", false, "reopen -journal and restore already-finished units")
		failFast   = flag.Bool("fail-fast", true, "stop at the first problem (disable for evidence-gathering runs)")

		opsAddr     = flag.String("ops-addr", "", "serve live ops HTTP on this address (/metrics, /healthz, /runs); use :0 for a free port")
		opsAddrFile = flag.String("ops-addr-file", "", "write the resolved ops listen address to this file")
		opsLedger   = flag.String("ops-ledger", "", "resource-sample JSONL path the gates analyze (default: <workdir>/ops.jsonl)")
		opsSample   = flag.Duration("ops-sample", time.Second, "resource sample interval")

		chaosWorker = flag.Bool("chaos-worker", false, "internal: run as a chaos worker child (args: master index journal out resume)")
	)
	flag.Parse()

	if *chaosWorker {
		runWorker(flag.Args())
		return
	}

	// Budget mode: a hard wall-clock cap with CI-shaped defaults — small
	// bounded stream, frequent chaos and gates — so one flag gives CI a
	// deterministic sub-budget soak.
	if *budget > 0 {
		if *units == 0 {
			*units = 16
		}
		if *duration == 0 || *duration > *budget {
			*duration = *budget
		}
		if !flagSet("chaos-every") {
			*chaosEvery = 4
		}
		if !flagSet("gate-every") {
			*gateEvery = 8
		}
	}
	if *units <= 0 && *duration <= 0 {
		fatal(errors.New("need a bound: -units, -duration or -budget"))
	}

	dir := *workdir
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "tvarak-soak-*")
		if err != nil {
			fatal(err)
		}
		dir = tmp
		// Kept on failure so the chaos journals/reports stay inspectable.
		cleanup = func() { os.RemoveAll(tmp) }
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	opsPath := *opsLedger
	if opsPath == "" {
		opsPath = dir + "/ops.jsonl"
	}
	lt := live.NewTelemetry()
	ops, err := live.StartOps(lt, live.OpsConfig{
		Addr: *opsAddr, AddrFile: *opsAddrFile,
		LedgerPath: opsPath, SampleEvery: *opsSample,
	})
	if err != nil {
		fatal(err)
	}
	if a := ops.Addr(); a != "" {
		fmt.Fprintf(os.Stderr, "tvarak-soak: ops listening on http://%s\n", a)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := soak.Config{
		Seed:          *seed,
		Units:         *units,
		Duration:      *duration,
		Parallel:      *parallel,
		ChaosEvery:    *chaosEvery,
		KillAfter:     *killAfter,
		WorkerCmd:     workerCmd(),
		WorkDir:       dir,
		GateEvery:     *gateEvery,
		OpsLedgerPath: opsPath,
		LedgerPath:    *ledger,
		Live:          lt,
		Context:       ctx,
		FailFast:      *failFast,
		Progress:      printProgress,
	}
	if *designs != "" {
		opts, err := soak.ParseSamplerArgs(*designs, "-")
		if err != nil {
			fatal(err)
		}
		cfg.Designs = opts.Designs
	}
	if *pinAsync {
		g, err := param.ParseDirtyGran(*dirtyGran)
		if err != nil {
			fatal(err)
		}
		a := param.AsyncConfig{EpochCyc: *epochCyc, DirtyGran: g, Incremental: *increm}
		if *battery {
			a = param.BatteryPreset(*epochCyc)
			a.Incremental = *increm
		}
		cfg.Async = &a
	} else if *epochCyc != 0 || *dirtyGran != "" || *battery || *increm {
		fatal(errors.New("-epoch/-dirty-gran/-battery/-incremental pin the async axis; add -pin-async to confirm"))
	}
	if *resume && *journal == "" {
		fatal(errors.New("-resume requires -journal"))
	}
	if *journal != "" {
		j, err := openJournal(*journal, *resume)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	fmt.Printf("soak: seed=%d units=%s duration=%s chaos-every=%d gate-every=%d\n",
		*seed, boundStr(*units), boundDur(*duration), *chaosEvery, *gateEvery)
	sum, runErr := soak.Run(cfg)

	if cerr := ops.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "tvarak-soak: closing ops:", cerr)
	}
	if sum != nil {
		fmt.Printf("soak: %d units (%d chaos, %d killed, %d resumed), %d identity mismatches, %d undetected, %d unrecovered, %d failures, %d gate checks, %d problems\n",
			sum.Units, sum.Chaos, sum.Killed, sum.Resumed, sum.IdentityMismatches,
			sum.Undetected, sum.Unrecovered, sum.Failures, sum.GateChecks, len(sum.Problems))
		for _, p := range sum.Problems {
			fmt.Fprintln(os.Stderr, "tvarak-soak: PROBLEM:", p)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tvarak-soak:", runErr)
		fmt.Fprintf(os.Stderr, "tvarak-soak: chaos artifacts kept in %s\n", dir)
		if errors.Is(runErr, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	cleanup()
}

// runWorker is the -chaos-worker dispatch: the supervisor re-execs this
// same binary with the chaos-protocol positionals and watches stdout for
// the soak markers.
func runWorker(args []string) {
	if len(args) != 7 {
		fatal(fmt.Errorf("-chaos-worker wants 7 args (master index journal out resume designs async), got %d", len(args)))
	}
	master, err1 := strconv.ParseInt(args[0], 10, 64)
	index, err2 := strconv.Atoi(args[1])
	resume, err3 := strconv.ParseBool(args[4])
	opts, err4 := soak.ParseSamplerArgs(args[5], args[6])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		fatal(fmt.Errorf("-chaos-worker: bad args %q", args))
	}
	if err := soak.RunWorker(os.Stdout, master, index, args[2], args[3], resume, opts); err != nil {
		fatal(err)
	}
}

func openJournal(path string, resume bool) (*harness.Journal, error) {
	if !resume {
		return harness.NewJournal(path)
	}
	j, err := harness.OpenJournal(path)
	if err == nil {
		fmt.Fprintf(os.Stderr, "tvarak-soak: resuming from %s: %d record(s) restorable\n",
			path, j.Restored())
	}
	return j, err
}

func workerCmd() []string {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return []string{exe, "-chaos-worker"}
}

func printProgress(l soak.LedgerLine) {
	status := "ok"
	switch {
	case l.Failure != "":
		status = "FAIL: " + l.Failure
	case l.IdentityOK != nil && !*l.IdentityOK:
		status = "IDENTITY MISMATCH"
	}
	extra := ""
	if l.Chaos {
		extra = " chaos"
		if l.Killed {
			extra += "+kill"
		}
		if l.Resumed {
			extra += "+resume"
		}
	}
	if len(l.GateFindings) > 0 {
		status = fmt.Sprintf("GATE: %v", l.GateFindings)
	} else if l.GateFindings != nil {
		extra += " gate-ok"
	}
	fmt.Printf("  [%4d] %-28s armed=%-3d detected=%-3d recovered=%-3d %dms%s %s\n",
		l.Index, l.App+"/"+l.Design, l.Armed, l.Detected, l.Recovered, l.WallMS, extra, status)
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func boundStr(n int) string {
	if n <= 0 {
		return "∞"
	}
	return strconv.Itoa(n)
}

func boundDur(d time.Duration) string {
	if d <= 0 {
		return "∞"
	}
	return d.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvarak-soak:", err)
	os.Exit(1)
}
