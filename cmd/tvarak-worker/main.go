// Command tvarak-worker executes units for a tvarak-gateway: it fetches
// the job spec, re-derives the unit enumeration locally (any skew against
// the gateway's build surfaces as a handshake or fingerprint error), then
// leases units, runs them through the same harness.Runner /
// fault.RunSingleUnit paths a local run uses, and streams the results back
// as journal-format records — heartbeating to keep its leases alive.
//
// Usage:
//
//	tvarak-worker -gateway http://host:7609
//	tvarak-worker -gateway http://host:7609 -name rack2-03 -slots 4
//
// Workers are stateless: SIGKILL one and the gateway re-dispatches its
// leased units to the survivors after the lease TTL; a replacement worker
// produces byte-identical results because every unit is deterministic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"tvarak/internal/fleet"
	"tvarak/internal/harness"
	"tvarak/internal/live"
)

func main() {
	var (
		gateway      = flag.String("gateway", "", "gateway control-plane base URL, e.g. http://host:7609 (required)")
		name         = flag.String("name", "", "worker name in leases and gateway status (default host:pid)")
		slots        = flag.Int("slots", 1, "units run concurrently (each slot is an independent lease loop)")
		retries      = flag.Int("retries", 0, "extra local attempts per sweep unit before reporting it failed to the gateway")
		acquireDelay = flag.Duration("acquire-delay", 0, "pause between lease grant and unit start (CI uses it to widen the kill window)")

		opsAddr     = flag.String("ops-addr", "", "serve live ops HTTP on this address (/metrics, /healthz, /runs, /debug/pprof); use :0 for a free port")
		opsAddrFile = flag.String("ops-addr-file", "", "write the resolved ops listen address to this file")
		opsLedger   = flag.String("ops-ledger", "", "append periodic resource samples as JSONL to this path")
		opsSample   = flag.Duration("ops-sample", time.Second, "resource sample interval for -ops-ledger")
	)
	flag.Parse()

	if *gateway == "" {
		fmt.Fprintln(os.Stderr, "tvarak-worker: -gateway required")
		os.Exit(2)
	}
	if *slots < 1 {
		fmt.Fprintln(os.Stderr, "tvarak-worker: -slots must be >= 1")
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	lt := live.NewTelemetry()
	var ops *live.Ops
	if *opsAddr != "" || *opsLedger != "" {
		var err error
		ops, err = live.StartOps(lt, live.OpsConfig{
			Addr: *opsAddr, AddrFile: *opsAddrFile,
			LedgerPath: *opsLedger, SampleEvery: *opsSample,
		})
		if err != nil {
			fatal(err)
		}
		if a := ops.Addr(); a != "" {
			fmt.Fprintf(os.Stderr, "tvarak-worker: ops listening on http://%s\n", a)
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Each slot is a full lease loop under its own name suffix; the
	// gateway's acquire path hands them distinct units, so -slots N is N-way
	// unit parallelism without any coordination here.
	errs := make([]error, *slots)
	var wg sync.WaitGroup
	for s := 0; s < *slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wname := *name
			if *slots > 1 {
				wname = fmt.Sprintf("%s/%d", *name, s)
			}
			w := &fleet.Worker{
				Gateway:      *gateway,
				Name:         wname,
				Retries:      *retries,
				AcquireDelay: *acquireDelay,
				Backoff: harness.BackoffPolicy{
					Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5,
					Seed: uint64(os.Getpid())*16 + uint64(s) + 1,
				},
				Live: lt,
			}
			errs[s] = w.Run(ctx)
		}(s)
	}
	wg.Wait()

	if err := ops.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tvarak-worker: closing ops:", err)
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tvarak-worker: interrupted — the gateway will re-dispatch any leased units")
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tvarak-worker: %s done\n", *name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvarak-worker:", err)
	os.Exit(1)
}
