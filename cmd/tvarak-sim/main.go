// Command tvarak-sim runs the paper's experiments and prints Fig. 8-style
// tables. Each experiment id maps to one table or figure (see DESIGN.md §3
// and `tvarak-sim -list`).
//
// Usage:
//
//	tvarak-sim -list
//	tvarak-sim -exp fig8-redis
//	tvarak-sim -exp all -scale 0.25
//	tvarak-sim -exp all -parallel 8 -progress
//	tvarak-sim -exp table1
//
// Experiments run their independent simulation cells on a bounded worker
// pool (-parallel, default one per CPU); tables come out in the same order
// and byte-identical regardless of the parallelism level.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tvarak"
	"tvarak/internal/experiments"
	"tvarak/internal/param"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (or 'all'); see -list")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 1.0, "multiply measured operation counts")
		full     = flag.Bool("full", false, "use the paper's full-scale machine (24 MB LLC) instead of the 1/16-scale reproduction machine")
		designs  = flag.String("designs", "", "comma-separated subset of designs (baseline,tvarak,txb-object,txb-page,vilamb)")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per run instead of tables")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max simulation cells running concurrently (1 = sequential; tables are identical at any level)")
		progress = flag.Bool("progress", false, "print per-cell completion and timing to stderr as cells finish")
	)
	flag.Parse()

	if *list {
		for _, e := range tvarak.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Paper)
		}
		fmt.Printf("%-14s %s\n", "table1", "Table I: design trade-off matrix (qualitative)")
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tvarak-sim: -exp required (try -list)")
		os.Exit(2)
	}
	if *exp == "table1" {
		fmt.Print(tableOne)
		return
	}

	opts := experiments.Options{Scale: *scale, FullScale: *full, Designs: parseDesigns(*designs), Parallel: *parallel}
	if *progress {
		opts.Progress = func(done, total int, r *tvarak.Result, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-20s %-28s %8v\n",
				done, total, r.Workload, r.Label(), elapsed.Round(time.Millisecond))
		}
	}
	var ids []string
	if *exp == "all" {
		for _, e := range tvarak.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		e, err := tvarak.LookupExperiment(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvarak-sim:", err)
			os.Exit(1)
		}
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvarak-sim:", err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			for _, r := range tab.Results {
				row := map[string]any{
					"experiment": e.ID,
					"workload":   r.Workload,
					"design":     r.Design.String(),
					"variant":    r.Variant,
					"cycles":     r.Stats.Cycles,
					"energyPJ":   r.Stats.EnergyPJ,
					"overhead":   tab.Overhead(r),
					"nvm":        r.Stats.NVM,
					"cacheTotal": r.Stats.CacheTotal(),
				}
				if err := enc.Encode(row); err != nil {
					fmt.Fprintln(os.Stderr, "tvarak-sim:", err)
					os.Exit(1)
				}
			}
			continue
		}
		fmt.Printf("# %s (%s) — simulated in %v\n", e.ID, e.Paper, time.Since(start).Round(time.Millisecond))
		fmt.Println(tab)
	}
}

func parseDesigns(s string) []param.Design {
	if s == "" {
		return nil
	}
	var out []param.Design
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "baseline":
			out = append(out, param.Baseline)
		case "tvarak":
			out = append(out, param.Tvarak)
		case "txb-object", "txb-object-csums":
			out = append(out, param.TxBObjectCsums)
		case "txb-page", "txb-page-csums":
			out = append(out, param.TxBPageCsums)
		case "vilamb":
			out = append(out, param.Vilamb)
		default:
			fmt.Fprintf(os.Stderr, "tvarak-sim: unknown design %q\n", tok)
			os.Exit(2)
		}
	}
	return out
}

// tableOne reproduces Table I: trade-offs among TVARAK and previous DAX NVM
// storage redundancy designs.
const tableOne = `Table I: trade-offs among TVARAK and previous DAX NVM storage redundancy designs

design                       csum granularity  csum/parity update (DAX)   csum verification (DAX)     perf overhead
---------------------------  ----------------  -------------------------  --------------------------  -------------
Nova-Fortis / Plexistore     (+) page          (-) no updates             (-) no verification         (+) none
Mojim / HotPot (+csums)      (+) page          (+) on application flush   (~) background scrubbing    (-) very high
Pangolin (TxB-Object-Csums)  (~) object        (+) on application flush   (+) on NVM-to-DRAM copy     (~) moderate-high
Vilamb                       (+) page          (~) periodically           (~) background scrubbing    (~) configurable
TVARAK                       (+) page*         (+) on LLC-to-NVM write    (+) on NVM-to-LLC read      (+) low

* page-granular system-checksums at rest; cache-line-granular DAX-CL-checksums while data is mapped.
This reproduction implements the Mojim/HotPot-style scheme as TxB-Page-Csums, Pangolin-style as
TxB-Object-Csums, the Nova-Fortis-style fs path as daxfs.ReadAt/WriteAt verification, background
scrubbing as daxfs.Scrub, and TVARAK as the internal/core controller.
`
