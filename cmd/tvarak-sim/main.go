// Command tvarak-sim runs the paper's experiments and prints Fig. 8-style
// tables. Each experiment id maps to one table or figure (see DESIGN.md §3
// and `tvarak-sim -list`).
//
// Usage:
//
//	tvarak-sim -list
//	tvarak-sim -exp fig8-redis
//	tvarak-sim -exp all -scale 0.25
//	tvarak-sim -exp all -parallel 8 -progress
//	tvarak-sim -exp all -journal run.journal        # ^C stops at the next phase boundary
//	tvarak-sim -exp all -journal run.journal -resume
//	tvarak-sim -exp all -keep-going -cell-timeout 10m -retries 1
//	tvarak-sim -exp fig8-stream -metrics-out run.json -sample-every 100000
//	tvarak-sim -exp fig8-stream -trace trace.jsonl -parallel 1
//	tvarak-sim -exp all -ops-addr :8080 -ops-ledger ops.jsonl   # curl /metrics /runs /debug/pprof
//	tvarak-sim -compare old.json,new.json -tolerance 0.01
//	tvarak-sim -validate run.json
//	tvarak-sim -exp table1
//
// Experiments run their independent simulation cells on a bounded worker
// pool (-parallel, default one per CPU); tables come out in the same order
// and byte-identical regardless of the parallelism level. -metrics-out
// writes the versioned machine-readable export (JSON, or CSV when the path
// ends in .csv); -compare diffs two JSON exports and exits non-zero on any
// per-metric regression beyond -tolerance.
//
// Long runs are resilient: SIGINT/SIGTERM stop the simulation cooperatively
// at the next phase boundary and flush every artifact (exit 130); -journal
// checkpoints each completed cell durably so -resume restores them and the
// finished output is byte-identical to an uninterrupted run; -keep-going,
// -cell-timeout and -retries contain failing or hung cells instead of
// aborting the whole run (see DESIGN.md §7).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"tvarak"
	"tvarak/internal/experiments"
	"tvarak/internal/live"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all'); see -list")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.Float64("scale", 1.0, "multiply measured operation counts")
		full    = flag.Bool("full", false, "use the paper's full-scale machine (24 MB LLC) instead of the 1/16-scale reproduction machine")
		designs = flag.String("designs", "", "comma-separated subset of designs (baseline,tvarak,txb-object,txb-page,vilamb)")

		epochCyc    = flag.Uint64("epoch", 0, "async (vilamb-family) epoch interval in cycles (0 = the design default); ignored by non-vilamb designs")
		dirtyGran   = flag.String("dirty-gran", "", "async dirty-tracking granularity: page, line or range (default page)")
		battery     = flag.Bool("battery", false, "async battery-backed-DRAM preset: line-granular staged intent checksums, zero vulnerability window")
		incremental = flag.Bool("incremental", false, "spread each async epoch's reconciliation across sub-slices instead of one batched pass")
		jsonOut     = flag.Bool("json", false, "emit one JSON object per run instead of tables")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "max simulation cells running concurrently (1 = sequential; tables are identical at any level)")
		shards      = flag.Int("shards", 1, "OS threads sharing each cell's weave phase (1 = serial; tables are byte-identical at any level; combine with -parallel 1)")
		progress    = flag.Bool("progress", false, "print per-cell completion, timing and live counters to stderr as cells finish")

		metricsOut  = flag.String("metrics-out", "", "write the versioned machine-readable export to this path (CSV when it ends in .csv, JSON otherwise)")
		traceOut    = flag.String("trace", "", "write a JSONL event trace of every cell's measured run to this path (use -parallel 1 for a deterministic event order)")
		sampleEvery = flag.Uint64("sample-every", 0, "epoch length in cycles for per-run time series in the export (0 = aggregates only)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this path")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile taken after the runs to this path")
		compare     = flag.String("compare", "", "compare two metric exports, given as old.json,new.json; exits 1 on any delta beyond -tolerance")
		tolerance   = flag.Float64("tolerance", 0, "relative per-metric tolerance for -compare (0 = exact)")
		validate    = flag.String("validate", "", "read a metrics export, validate its schema version, and print a summary")

		opsAddr     = flag.String("ops-addr", "", "serve live ops HTTP on this address (/metrics, /healthz, /runs, /debug/pprof); use :0 for a free port")
		opsAddrFile = flag.String("ops-addr-file", "", "write the resolved ops listen address to this file (for scripts using -ops-addr :0)")
		opsLedger   = flag.String("ops-ledger", "", "append periodic resource samples (heap, goroutines, RSS, throughput) as JSONL to this path; analyze with tools/opscheck")
		opsSample   = flag.Duration("ops-sample", time.Second, "resource sample interval for -ops-ledger")

		journalPath = flag.String("journal", "", "checkpoint each completed cell durably to this JSONL journal; an interrupted run resumes from it with -resume")
		resume      = flag.Bool("resume", false, "reopen -journal and restore already-checkpointed cells instead of re-simulating them (output is byte-identical to an uninterrupted run)")
		cellTimeout = flag.Duration("cell-timeout", 0, "wall-clock bound per simulation cell; a cell exceeding it is marked hung (goroutine dump in the journal) and its worker is released")
		retries     = flag.Int("retries", 0, "extra attempts for a failing cell before it counts as failed")
		keepGoing   = flag.Bool("keep-going", false, "do not abort on failed cells: render them as FAILED holes, report them in the manifest, exit 1 at the end")
	)
	flag.Parse()

	if *list {
		for _, e := range tvarak.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Paper)
		}
		fmt.Printf("%-14s %s\n", "table1", "Table I: design trade-off matrix (qualitative)")
		return
	}
	if *compare != "" {
		runCompare(*compare, *tolerance)
		return
	}
	if *validate != "" {
		runValidate(*validate)
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tvarak-sim: -exp required (try -list)")
		os.Exit(2)
	}
	if *exp == "table1" {
		fmt.Print(tableOne)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// SIGINT/SIGTERM cancel the run cooperatively: in-flight cells stop at
	// their next phase boundary, completed results flush, and the process
	// exits 130 with a manifest of what remains.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := experiments.Options{
		Scale: *scale, FullScale: *full, Designs: parseDesigns(*designs),
		Parallel: *parallel, Shards: *shards, SampleEvery: *sampleEvery,
		Context: ctx, CellTimeout: *cellTimeout, Retries: *retries, Degrade: *keepGoing,
		Async: parseAsync(*epochCyc, *dirtyGran, *battery, *incremental),
	}

	// Live telemetry backs both the -ops-addr endpoint and -progress: the
	// interactive renderer and /runs read the same board, so they can never
	// disagree. It is wall-clock-domain and read-only — attaching it leaves
	// tables and -metrics-out exports byte-identical (DESIGN.md §10).
	var lt *tvarak.LiveTelemetry
	if *opsAddr != "" || *opsLedger != "" || *progress {
		lt = tvarak.NewLiveTelemetry()
		opts.Live = lt
	}
	var ops *tvarak.LiveOps
	if *opsAddr != "" || *opsLedger != "" {
		var err error
		ops, err = tvarak.StartLiveOps(lt, tvarak.OpsConfig{
			Addr: *opsAddr, AddrFile: *opsAddrFile,
			LedgerPath: *opsLedger, SampleEvery: *opsSample,
		})
		if err != nil {
			fatal(err)
		}
		if a := ops.Addr(); a != "" {
			fmt.Fprintf(os.Stderr, "tvarak-sim: ops listening on http://%s\n", a)
		}
	}
	var journal *tvarak.RunJournal
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "tvarak-sim: -resume requires -journal")
		os.Exit(2)
	}
	if *journalPath != "" {
		// The journal is bound to the options that shape the run's cells:
		// -resume under different options fails with an error naming both
		// scopes instead of silently restoring nothing (legacy header-less
		// journals are still accepted).
		scope := fmt.Sprintf("tvarak-sim|exp=%s|scale=%g|full=%t|designs=%s",
			*exp, *scale, *full, *designs)
		if a := opts.Async; !a.IsZero() {
			scope += "|async=" + a.Label()
		}
		var err error
		if *resume {
			journal, err = tvarak.ResumeScopedRunJournal(*journalPath, scope)
		} else {
			journal, err = tvarak.NewScopedRunJournal(*journalPath, scope)
		}
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
		if *resume {
			fmt.Fprintf(os.Stderr, "tvarak-sim: resuming from %s: %d record(s) restorable",
				journal.Path(), journal.Restored())
			if c := journal.CorruptLines(); c > 0 {
				fmt.Fprintf(os.Stderr, ", %d corrupt line(s) skipped", c)
			}
			fmt.Fprintln(os.Stderr)
		}
		opts.Journal = journal
	}
	var tracer *obs.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracer = obs.NewJSONL(f, 0)
		opts.Tracer = tracer
		if lt != nil {
			lt.TraceGauges(tracer.Written, tracer.Dropped)
		}
	}
	if *progress {
		// The renderer subscribes to the run board — the same state /runs
		// serves — instead of a separate results callback, so interactive
		// output and the ops endpoint report from one source of truth.
		lt.Board.Notify = func(e live.CellEntry, done, total int) {
			switch {
			case e.State == live.StateFailed:
				fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s FAILED: %s\n",
					done, total, e.Label, e.Err)
			case e.FromJournal:
				fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s restored  cyc=%d acc=%d\n",
					done, total, e.Label, e.Cycles, e.Accesses)
			default:
				el := time.Duration(e.ElapsedMS) * time.Millisecond
				fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s %8v  cyc=%d acc=%d thr=%.0f/s\n",
					done, total, e.Label, el.Round(time.Millisecond),
					e.Cycles, e.Accesses, e.AccessesPerSec)
			}
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range tvarak.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	export := obs.NewExport("tvarak-sim")
	cancelled := false
	anyFailed := false
	for _, id := range ids {
		e, err := tvarak.LookupExperiment(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		export.Runs = append(export.Runs, tab.ExportRuns(e.ID)...)
		figs := experiments.AsyncFigures(tab)
		export.Figures = append(export.Figures, figs...)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			for _, r := range tab.Results {
				if r.Failed() {
					continue
				}
				row := map[string]any{
					"experiment": e.ID,
					"workload":   r.Workload,
					"design":     r.Design.String(),
					"variant":    r.Variant,
					"cycles":     r.Stats.Cycles,
					"energyPJ":   r.Stats.EnergyPJ,
					"overhead":   tab.Overhead(r),
					"nvm":        r.Stats.NVM,
					"cacheTotal": r.Stats.CacheTotal(),
				}
				if err := enc.Encode(row); err != nil {
					fatal(err)
				}
			}
		} else {
			fmt.Printf("# %s (%s) — simulated in %v\n", e.ID, e.Paper, time.Since(start).Round(time.Millisecond))
			fmt.Println(tab)
			for _, f := range figs {
				fmt.Println(f)
			}
		}
		if m := tab.Manifest; m != nil && !m.Clean() {
			fmt.Fprintf(os.Stderr, "tvarak-sim: %s %s\n", e.ID, m)
			if len(m.Failures) > 0 {
				anyFailed = true
			}
			if m.Cancelled {
				cancelled = true
			}
		}
		if cancelled {
			break // flush what completed; remaining experiments were not started
		}
	}

	// Flush every artifact before deciding the exit code: an interrupted
	// run's value is exactly its partial results.
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal(err)
		}
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tvarak-sim: trace bound hit, %d event(s) dropped\n", d)
		}
	}
	if *metricsOut != "" {
		if err := writeExport(export, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
	// Shut the ops bundle down before deciding the exit code: the final
	// resource sample lands in the ledger and the HTTP goroutines exit
	// (leak-free teardown is asserted by ci.sh's ops gate).
	if err := ops.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tvarak-sim: closing ops:", err)
	}
	if cancelled {
		if journal != nil {
			journal.Close()
			fmt.Fprintf(os.Stderr, "tvarak-sim: interrupted — partial results flushed; resume with: tvarak-sim -resume -journal %s\n", journal.Path())
		} else {
			fmt.Fprintln(os.Stderr, "tvarak-sim: interrupted — partial results flushed (run with -journal to make interrupted runs resumable)")
		}
		os.Exit(130)
	}
	if anyFailed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvarak-sim:", err)
	os.Exit(1)
}

// writeExport serializes the export, choosing CSV or JSON by extension.
func writeExport(x *obs.Export, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = x.WriteCSV(f)
	} else {
		err = x.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// runCompare diffs two exports ("old.json,new.json") and exits 1 when they
// differ beyond the tolerance.
func runCompare(spec string, tol float64) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "tvarak-sim: -compare wants two paths: old.json,new.json")
		os.Exit(2)
	}
	old, err := readExport(strings.TrimSpace(parts[0]))
	if err != nil {
		fatal(err)
	}
	cur, err := readExport(strings.TrimSpace(parts[1]))
	if err != nil {
		fatal(err)
	}
	rep := obs.Compare(old, cur, tol)
	fmt.Print(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}

// runValidate checks an export's schema version and prints a summary.
func runValidate(path string) {
	x, err := readExport(path)
	if err != nil {
		fatal(err)
	}
	samples := 0
	for i := range x.Runs {
		samples += len(x.Runs[i].Series)
	}
	fmt.Printf("%s: schema v%d, %d run(s), %d series sample(s)\n", path, x.Schema, len(x.Runs), samples)
}

func readExport(path string) (*obs.Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadJSON(f)
}

// parseAsync assembles the async-family configuration from the CLI flags,
// validating the granularity string up front.
func parseAsync(epoch uint64, gran string, battery, incremental bool) param.AsyncConfig {
	g, err := param.ParseDirtyGran(gran)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvarak-sim:", err)
		os.Exit(2)
	}
	a := param.AsyncConfig{EpochCyc: epoch, DirtyGran: g, Incremental: incremental}
	if battery {
		a = param.BatteryPreset(epoch)
		a.Incremental = incremental
	}
	return a
}

func parseDesigns(s string) []param.Design {
	if s == "" {
		return nil
	}
	var out []param.Design
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "baseline":
			out = append(out, param.Baseline)
		case "tvarak":
			out = append(out, param.Tvarak)
		case "txb-object", "txb-object-csums":
			out = append(out, param.TxBObjectCsums)
		case "txb-page", "txb-page-csums":
			out = append(out, param.TxBPageCsums)
		case "vilamb":
			out = append(out, param.Vilamb)
		default:
			fmt.Fprintf(os.Stderr, "tvarak-sim: unknown design %q\n", tok)
			os.Exit(2)
		}
	}
	return out
}

// tableOne reproduces Table I: trade-offs among TVARAK and previous DAX NVM
// storage redundancy designs.
const tableOne = `Table I: trade-offs among TVARAK and previous DAX NVM storage redundancy designs

design                       csum granularity  csum/parity update (DAX)   csum verification (DAX)     perf overhead
---------------------------  ----------------  -------------------------  --------------------------  -------------
Nova-Fortis / Plexistore     (+) page          (-) no updates             (-) no verification         (+) none
Mojim / HotPot (+csums)      (+) page          (+) on application flush   (~) background scrubbing    (-) very high
Pangolin (TxB-Object-Csums)  (~) object        (+) on application flush   (+) on NVM-to-DRAM copy     (~) moderate-high
Vilamb                       (+) page          (~) periodically           (~) background scrubbing    (~) configurable
TVARAK                       (+) page*         (+) on LLC-to-NVM write    (+) on NVM-to-LLC read      (+) low

* page-granular system-checksums at rest; cache-line-granular DAX-CL-checksums while data is mapped.
This reproduction implements the Mojim/HotPot-style scheme as TxB-Page-Csums, Pangolin-style as
TxB-Object-Csums, the Nova-Fortis-style fs path as daxfs.ReadAt/WriteAt verification, background
scrubbing as daxfs.Scrub, and TVARAK as the internal/core controller.
`
