// Command tvarak-gateway coordinates a distributed sweep or fault
// campaign: it enumerates the job's units, hands out leases to
// tvarak-worker processes over an HTTP control plane, re-dispatches units
// whose workers vanish, dedups duplicate results by fingerprint with a
// byte-equality cross-check, and merges the results in enumeration order —
// so the printed table and the -metrics-out export are byte-identical to a
// single-machine tvarak-sim run of the same options.
//
// Usage:
//
//	tvarak-gateway -exp fig8-stream -scale 0.05 -listen :7609
//	tvarak-gateway -exp fig8-redis -listen :0 -addr-file gw.addr -journal fleet.journal
//	tvarak-gateway -exp all-is-not-supported-use-one-id ...     # one experiment per job
//	tvarak-gateway -campaign -seed 7 -n 56 -report out.jsonl -listen :7609
//	tvarak-gateway ... -resume -journal fleet.journal           # after a gateway crash
//	tvarak-gateway ... -keep-going -summary-file summary.json
//
// Workers connect with: tvarak-worker -gateway http://host:port
//
// Robustness model (DESIGN.md §12): workers hold units under TTL leases
// extended by heartbeats; a lease that expires re-enters dispatch behind a
// seeded-jitter exponential backoff, bounded by -max-deliveries. Results
// are accepted by unit fingerprint, not lease, so a result computed under
// an expired lease still lands and duplicates are byte-verified — any
// divergence fails the job loudly. With -journal every accepted result is
// fsync'd before it is acknowledged, so a SIGKILLed gateway resumes with
// -resume and only the missing units are re-dispatched.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tvarak/internal/experiments"
	"tvarak/internal/fault"
	"tvarak/internal/fleet"
	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id to distribute (sweep mode; see tvarak-sim -list)")
		scale       = flag.Float64("scale", 1.0, "multiply measured operation counts")
		full        = flag.Bool("full", false, "use the paper's full-scale machine instead of the 1/16-scale reproduction machine")
		designs     = flag.String("designs", "", "comma-separated subset of designs (baseline,tvarak,txb-object,txb-page,vilamb)")
		sampleEvery = flag.Uint64("sample-every", 0, "epoch length in cycles for per-run time series in the export (0 = aggregates only)")
		shards      = flag.Int("shards", 1, "OS threads sharing each cell's weave phase on the workers")

		epochCyc    = flag.Uint64("epoch", 0, "async (vilamb-family) epoch interval in cycles (0 = the design default)")
		dirtyGran   = flag.String("dirty-gran", "", "async dirty-tracking granularity: page, line or range (default page)")
		battery     = flag.Bool("battery", false, "async battery-backed-DRAM preset (line-granular staged intent checksums, zero vulnerability window)")
		incremental = flag.Bool("incremental", false, "spread each async epoch's reconciliation across sub-slices instead of one batched pass")

		campaign = flag.Bool("campaign", false, "distribute the oracle-judged fault-injection campaign instead of a sweep")
		seed     = flag.Int64("seed", 1, "campaign seed (same seed: byte-identical report)")
		n        = flag.Int("n", 112, "campaign injections per design, split across the applications")
		apps     = flag.String("apps", "", "comma-separated campaign applications (empty = all)")
		report   = flag.String("report", "", "write the merged campaign JSONL report to this path (- for stdout)")

		listen        = flag.String("listen", "127.0.0.1:7609", "control-plane listen address (use :0 for a free port)")
		addrFile      = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts using -listen :0)")
		leaseTTL      = flag.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat before a unit is re-dispatched")
		maxDeliver    = flag.Int("max-deliveries", 3, "leases granted per unit before it terminally fails")
		redeliverBase = flag.Duration("redeliver-backoff", 500*time.Millisecond, "base of the seeded-jitter exponential backoff before an expired or failed unit is re-dispatched")

		journalPath = flag.String("journal", "", "fsync each accepted result to this JSONL journal before acknowledging it; a killed gateway resumes with -resume")
		resume      = flag.Bool("resume", false, "reopen -journal and restore already-accepted results instead of re-dispatching their units (merged output is byte-identical)")
		keepGoing   = flag.Bool("keep-going", false, "complete the job past units whose redelivery is exhausted: render them as FAILED rows with a manifest, exit 1 at the end")

		metricsOut  = flag.String("metrics-out", "", "write the versioned machine-readable export to this path (CSV when it ends in .csv, JSON otherwise)")
		summaryFile = flag.String("summary-file", "", "write the final dispatch summary (leases, expiries, redeliveries, duplicates, per-unit states) as JSON to this path")

		opsAddr     = flag.String("ops-addr", "", "serve live ops HTTP on this address (/metrics, /healthz, /runs, /debug/pprof); use :0 for a free port")
		opsAddrFile = flag.String("ops-addr-file", "", "write the resolved ops listen address to this file")
		opsLedger   = flag.String("ops-ledger", "", "append periodic resource samples as JSONL to this path")
		opsSample   = flag.Duration("ops-sample", time.Second, "resource sample interval for -ops-ledger")
	)
	flag.Parse()

	spec, err := buildSpec(*campaign, *exp, *scale, *full, *designs, *sampleEvery, *shards, *seed, *n, *apps)
	if err != nil {
		fatal(err)
	}
	spec.EpochCyc, spec.DirtyGran = *epochCyc, *dirtyGran
	spec.Battery, spec.Incremental = *battery, *incremental
	plan, err := fleet.BuildPlan(spec)
	if err != nil {
		fatal(err)
	}

	lt := live.NewTelemetry()
	var ops *live.Ops
	if *opsAddr != "" || *opsLedger != "" {
		ops, err = live.StartOps(lt, live.OpsConfig{
			Addr: *opsAddr, AddrFile: *opsAddrFile,
			LedgerPath: *opsLedger, SampleEvery: *opsSample,
		})
		if err != nil {
			fatal(err)
		}
		if a := ops.Addr(); a != "" {
			fmt.Fprintf(os.Stderr, "tvarak-gateway: ops listening on http://%s\n", a)
		}
	}

	var journal *harness.Journal
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "tvarak-gateway: -resume requires -journal")
		os.Exit(2)
	}
	if *journalPath != "" {
		// The journal is bound to the plan's scope: resuming it under
		// different options (or a skewed binary) fails with an error naming
		// both scopes instead of silently merging unrelated results.
		if *resume {
			journal, err = harness.OpenJournalScope(*journalPath, plan.Scope())
		} else {
			journal, err = harness.NewJournalScope(*journalPath, plan.Scope())
		}
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
		if *resume {
			fmt.Fprintf(os.Stderr, "tvarak-gateway: resuming from %s: %d record(s) restorable\n",
				journal.Path(), journal.Restored())
		}
	}

	g, err := fleet.NewGateway(fleet.GatewayConfig{
		Plan:          plan,
		Spec:          spec,
		LeaseTTL:      *leaseTTL,
		MaxDeliveries: *maxDeliver,
		Backoff:       harness.BackoffPolicy{Base: *redeliverBase, Jitter: 0.5, Seed: uint64(spec.Seed) + 1},
		KeepGoing:     *keepGoing,
		Journal:       journal,
		Live:          lt,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	srv := &http.Server{Handler: g.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tvarak-gateway: control plane:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "tvarak-gateway: serving %q (%d units, %d already done) on http://%s\n",
		plan.Scope(), plan.Units(), g.Status(false).Done, ln.Addr())

	// SIGINT/SIGTERM stop the job: accepted results are already durable in
	// the journal, so a -resume picks up exactly where dispatch stopped.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	payloads, failures, waitErr := g.Wait(ctx)
	if waitErr == nil || !errors.Is(waitErr, context.Canceled) {
		// Let laggard workers poll once more and see StatusDone before the
		// socket goes away, so they exit clean instead of "unreachable".
		g.Drain(ctx)
	}
	srv.Close()

	if *summaryFile != "" {
		if err := writeSummary(*summaryFile, g.Status(true)); err != nil {
			fatal(err)
		}
	}
	if err := ops.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tvarak-gateway: closing ops:", err)
	}
	if waitErr != nil {
		if errors.Is(waitErr, context.Canceled) {
			hint := "re-run to finish"
			if journal != nil {
				hint = fmt.Sprintf("resume with: tvarak-gateway %s -resume -journal %s",
					strings.Join(jobArgs(spec), " "), journal.Path())
			}
			fmt.Fprintf(os.Stderr, "tvarak-gateway: interrupted — accepted results are durable; %s\n", hint)
			os.Exit(130)
		}
		fatal(waitErr)
	}

	if spec.Kind == "campaign" {
		if err := mergeCampaign(plan.(*fleet.CampaignPlan), payloads, *report); err != nil {
			fatal(err)
		}
		return
	}
	if err := mergeSweep(plan.(*fleet.SweepPlan), spec, payloads, failures, *keepGoing, *metricsOut); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvarak-gateway:", err)
	os.Exit(1)
}

// buildSpec assembles the declarative job description served to workers.
func buildSpec(campaign bool, exp string, scale float64, full bool, designs string, sampleEvery uint64, shards int, seed int64, n int, apps string) (fleet.JobSpec, error) {
	if campaign {
		if exp != "" {
			return fleet.JobSpec{}, fmt.Errorf("-campaign and -exp are mutually exclusive")
		}
		names, err := designNames(designs)
		if err != nil {
			return fleet.JobSpec{}, err
		}
		return fleet.JobSpec{Kind: "campaign", Seed: seed, N: n, Apps: splitComma(apps), Designs: names}, nil
	}
	if exp == "" {
		return fleet.JobSpec{}, fmt.Errorf("-exp required (one experiment id per job; see tvarak-sim -list)")
	}
	names, err := designNames(designs)
	if err != nil {
		return fleet.JobSpec{}, err
	}
	return fleet.JobSpec{
		Kind: "sweep", Experiment: exp, Scale: scale, FullScale: full,
		Designs: names, SampleEvery: sampleEvery, Shards: shards,
	}, nil
}

// designNames parses the CLI's design tokens and canonicalizes them to
// Design.String() values — the on-wire form every worker resolves back
// through the same table.
func designNames(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		var d param.Design
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "baseline":
			d = param.Baseline
		case "tvarak":
			d = param.Tvarak
		case "txb-object", "txb-object-csums":
			d = param.TxBObjectCsums
		case "txb-page", "txb-page-csums":
			d = param.TxBPageCsums
		case "vilamb":
			d = param.Vilamb
		default:
			return nil, fmt.Errorf("unknown design %q", tok)
		}
		out = append(out, d.String())
	}
	return out, nil
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// jobArgs reconstructs the CLI flags that select the job, for the resume
// hint.
func jobArgs(spec fleet.JobSpec) []string {
	if spec.Kind == "campaign" {
		return []string{"-campaign", fmt.Sprintf("-seed %d", spec.Seed), fmt.Sprintf("-n %d", spec.N)}
	}
	args := []string{fmt.Sprintf("-exp %s", spec.Experiment), fmt.Sprintf("-scale %g", spec.Scale)}
	if spec.FullScale {
		args = append(args, "-full")
	}
	return args
}

// mergeSweep renders the merged table and export exactly like tvarak-sim.
func mergeSweep(sp *fleet.SweepPlan, spec fleet.JobSpec, payloads []json.RawMessage, failures map[int]string, keepGoing bool, metricsOut string) error {
	tab, err := sp.MergeTable(sp.Title, payloads, failures, keepGoing)
	if err != nil {
		return err
	}
	e, err := experiments.Lookup(spec.Experiment)
	if err != nil {
		return err
	}
	// The `#` header line carries wall-clock info and is filtered by
	// byte-comparison consumers (ci.sh strips `^# `), matching tvarak-sim.
	fmt.Printf("# %s (%s) — merged from fleet\n", e.ID, e.Paper)
	fmt.Println(tab)
	figs := experiments.AsyncFigures(tab)
	for _, f := range figs {
		fmt.Println(f)
	}
	if metricsOut != "" {
		// Tool is "tvarak-sim", not "tvarak-gateway": the export must be
		// byte-identical to a single-machine run of the same options.
		export := obs.NewExport("tvarak-sim")
		export.Runs = append(export.Runs, tab.ExportRuns(e.ID)...)
		export.Figures = append(export.Figures, figs...)
		if err := writeExport(export, metricsOut); err != nil {
			return err
		}
	}
	if m := tab.Manifest; m != nil && !m.Clean() {
		fmt.Fprintf(os.Stderr, "tvarak-gateway: %s %s\n", e.ID, m)
		if len(m.Failures) > 0 {
			os.Exit(1)
		}
	}
	return nil
}

// mergeCampaign folds the unit reports into the campaign report and writes
// the same JSONL a local tvarak-fault -campaign run produces.
func mergeCampaign(cp *fleet.CampaignPlan, payloads []json.RawMessage, report string) error {
	rep, mergeErr := cp.MergeReport(payloads)
	if rep != nil {
		if report != "" {
			var w io.Writer = os.Stdout
			if report != "-" {
				f, err := os.Create(report)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := fault.WriteJSONL(w, rep); err != nil {
				return err
			}
		}
		fmt.Printf("campaign: %d units, %d fired, %d silent under baseline, %d undetected, %d unrecovered, %d crash points, %d failures\n",
			len(rep.Units), rep.Fired, rep.SilentCorruptions, rep.Undetected, rep.Unrecovered, rep.CrashPoints, rep.Failures)
	}
	return mergeErr
}

// writeExport serializes the export, choosing CSV or JSON by extension.
func writeExport(x *obs.Export, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = x.WriteCSV(f)
	} else {
		err = x.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeSummary dumps the final dispatch snapshot for scripts (ci.sh
// asserts at least one redelivery after SIGKILLing a worker).
func writeSummary(path string, s fleet.StatusResponse) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
