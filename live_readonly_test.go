// Live-telemetry read-only contract: attaching the full ops bundle — the
// metrics registry, the /runs board, the HTTP server (scraped concurrently
// while cells simulate), and the resource sampler — must leave experiment
// tables and machine-readable exports byte-for-byte identical to an
// unobserved run, at parallel cell execution and sharded weaves. This is
// the root gate for DESIGN.md §10's domain separation: wall-clock
// telemetry observes the simulation and never feeds back into it.
package tvarak_test

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tvarak"
	"tvarak/internal/experiments"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

var liveReadOnlyCases = []struct {
	id        string
	scale     float64
	underRace bool // heavy ablation tables skip under -race (see race_test.go)
}{
	{"fig8-stream", 0.05, true},
	{"fig9", 0.02, false},
}

func TestLiveTelemetryReadOnly(t *testing.T) {
	for _, tc := range liveReadOnlyCases {
		t.Run(tc.id, func(t *testing.T) {
			if raceEnabled && !tc.underRace {
				t.Skip("skipping under -race: ~10x simulator slowdown; byte-identity is gated by the regular test pass")
			}
			e, err := tvarak.LookupExperiment(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			opts := experiments.Options{
				Scale: tc.scale, Parallel: 4, Shards: 2,
				Designs: []param.Design{param.Baseline, param.Tvarak},
			}

			run := func(o experiments.Options) (string, []byte) {
				tab, err := e.Run(o)
				if err != nil {
					t.Fatal(err)
				}
				x := obs.NewExport("test")
				x.Runs = tab.ExportRuns(e.ID)
				var buf bytes.Buffer
				if err := x.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return tab.String(), buf.Bytes()
			}

			plainTab, plainJSON := run(opts)

			lt := tvarak.NewLiveTelemetry()
			ledger := filepath.Join(t.TempDir(), "ops.jsonl")
			ops, err := tvarak.StartLiveOps(lt, tvarak.OpsConfig{
				Addr: "127.0.0.1:0", LedgerPath: ledger,
				SampleEvery: 20 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Scrape the ops endpoints continuously WHILE cells simulate:
			// under -race this proves registry reads, board snapshots and
			// probe/lifecycle writes share no unsynchronized state.
			stop := make(chan struct{})
			scraped := make(chan struct{})
			go func() {
				defer close(scraped)
				base := "http://" + ops.Addr()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, p := range []string{"/metrics", "/runs"} {
						resp, err := http.Get(base + p)
						if err == nil {
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
					time.Sleep(10 * time.Millisecond)
				}
			}()

			liveOpts := opts
			liveOpts.Live = lt
			liveTab, liveJSON := run(liveOpts)
			close(stop)
			<-scraped
			if err := ops.Close(); err != nil {
				t.Fatal(err)
			}

			if liveTab != plainTab {
				t.Errorf("table changed with live telemetry attached:\nplain:\n%s\nlive:\n%s", plainTab, liveTab)
			}
			if !bytes.Equal(liveJSON, plainJSON) {
				t.Errorf("metrics export changed with live telemetry attached (%d vs %d bytes)", len(plainJSON), len(liveJSON))
			}

			// Sanity on what the live run actually recorded: every cell
			// finished, the engine counters moved, the ledger parses.
			snap := lt.Board.Snapshot()
			if snap.Done != snap.Total || snap.Failed != 0 || snap.Total == 0 {
				t.Errorf("board snapshot = %d/%d done, %d failed", snap.Done, snap.Total, snap.Failed)
			}
			if lt.Engine.Accesses.Value() == 0 || lt.Runner.Finished.Value() == 0 {
				t.Errorf("live counters did not move: accesses=%d finished=%d",
					lt.Engine.Accesses.Value(), lt.Runner.Finished.Value())
			}
			samples, err := tvarak.ReadResourceLedger(mustOpen(t, ledger))
			if err != nil {
				t.Fatal(err)
			}
			if len(samples) < 2 {
				t.Errorf("ledger has %d samples, want >= 2", len(samples))
			}
		})
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
