package tvarak_test

import (
	"bytes"
	"testing"

	"tvarak"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	cfg := tvarak.ReproScaleConfig(tvarak.DesignTvarak)
	m, err := tvarak.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Controller() == nil {
		t.Fatal("Tvarak machine has no controller")
	}
	dm, err := m.NewMapping("api", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("public api round trip")
	m.Engine().Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		dm.Store(c, 128, data)
		got := make([]byte, len(data))
		dm.Load(c, 128, got)
		if !bytes.Equal(got, data) {
			t.Error("round trip failed")
		}
	}})
	if m.Stats().NVM.Total() == 0 {
		t.Error("no NVM traffic recorded")
	}
	if bad := m.FS().Scrub(); len(bad) != 0 {
		t.Errorf("scrub found %v", bad)
	}
}

func TestPublicAPIHeapAndTx(t *testing.T) {
	m, err := tvarak.NewMachine(tvarak.ReproScaleConfig(tvarak.DesignTxBObjectCsums))
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.NewHeap("heap", 4<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	m.Engine().Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		id, off := h.Alloc(c, 64)
		tx := h.Begin(c)
		tx.Write64(id, off, 12345)
		tx.Commit()
		if got := h.Map.Load64(c, off); got != 12345 {
			t.Errorf("tx write lost: %d", got)
		}
	}})
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(tvarak.Experiments()) < 11 {
		t.Errorf("only %d experiments exposed", len(tvarak.Experiments()))
	}
	if _, err := tvarak.LookupExperiment("fig8-redis"); err != nil {
		t.Error(err)
	}
	if _, err := tvarak.LookupExperiment("nope"); err == nil {
		t.Error("bogus experiment id accepted")
	}
}

func TestDesignConstants(t *testing.T) {
	names := map[tvarak.Design]string{
		tvarak.DesignBaseline:       "Baseline",
		tvarak.DesignTvarak:         "Tvarak",
		tvarak.DesignTxBObjectCsums: "TxB-Object-Csums",
		tvarak.DesignTxBPageCsums:   "TxB-Page-Csums",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}
