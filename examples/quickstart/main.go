// Quickstart: build a simulated machine with the TVARAK controller, mount
// the DAX file system, map a file, and access it with simulated loads and
// stores. Every NVM fill is checksum-verified and every writeback updates
// checksums and cross-DIMM parity — visible in the printed statistics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tvarak"
)

func main() {
	// A machine with the paper's parameters at reproduction scale, running
	// the TVARAK design (use DesignBaseline/DesignTxB* for the others).
	cfg := tvarak.ReproScaleConfig(tvarak.DesignTvarak)
	m, err := tvarak.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Create and DAX-map a 1 MB file. The file system allocates the
	// DAX-CL-checksum region and programs the controller's comparators.
	dm, err := m.NewMapping("quickstart", 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Run workload code on simulated cores. Core 0 writes a record and
	// reads it back; every byte flows through L1/L2/LLC and NVM DIMMs.
	record := []byte("TVARAK: software-managed hardware offload for DAX NVM redundancy")
	eng := m.Engine()
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		dm.Store(c, 4096, record)
		got := make([]byte, len(record))
		dm.Load(c, 4096, got)
		if !bytes.Equal(got, record) {
			log.Fatal("read back wrong data")
		}
	}})

	// Drop caches and read again: this time the data comes from NVM, so
	// TVARAK verifies its DAX-CL-checksum on the fill.
	eng.DropCaches()
	eng.ResetMeasurement()
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		got := make([]byte, len(record))
		dm.Load(c, 4096, got)
	}})

	st := m.Stats()
	fmt.Println("cold read with verification:")
	fmt.Printf("  runtime:            %d cycles\n", st.Cycles)
	fmt.Printf("  NVM data reads:     %d\n", st.NVM.DataReads)
	fmt.Printf("  NVM checksum reads: %d (redundancy)\n", st.NVM.RedReads)
	fmt.Printf("  corruptions:        %d (clean media verifies)\n", st.CorruptionsDetected)

	// The file system can scrub and recover too.
	if bad := m.FS().Scrub(); len(bad) != 0 {
		log.Fatalf("scrub found corruption: %+v", bad)
	}
	fmt.Println("scrub: all checksums verify")
}
