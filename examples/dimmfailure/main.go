// Dimmfailure demonstrates the second purpose of cross-DIMM parity (§II-A):
// recovering from a whole-device failure, not just firmware-bug corruption.
// A file is written across the striped DIMMs, one entire NVM DIMM is wiped,
// and the file system reconstructs every lost page — data and parity —
// from the surviving devices.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"tvarak"
)

func main() {
	m, err := tvarak.NewMachine(tvarak.ReproScaleConfig(tvarak.DesignTvarak))
	if err != nil {
		log.Fatal(err)
	}
	fs := m.FS()
	f, err := fs.Create("database", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteAt(f, 0, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d KiB across %d NVM DIMMs (page-striped, rotating parity)\n",
		len(data)>>10, fs.Geometry().DIMMs)

	// Catastrophe: DIMM 1 dies. Wipe every page it holds.
	geo := fs.Geometry()
	junk := bytes.Repeat([]byte{0xFF}, geo.PageSize)
	for s := uint64(0); s < geo.Stripes(); s++ {
		m.Engine().NVM.WriteRaw(geo.PageBase(s*uint64(geo.DIMMs)+1), junk)
	}
	bad := fs.Scrub()
	fmt.Printf("DIMM 1 wiped: scrub reports %d corrupted pages\n", len(bad))

	// Replace the device and reconstruct.
	if err := fs.RecoverDIMM(1); err != nil {
		log.Fatal(err)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		log.Fatalf("recovery incomplete: %d bad pages", len(bad))
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt(f, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("recovered content differs")
	}
	fmt.Println("RecoverDIMM rebuilt every page from the surviving devices; content bit-exact")
}
