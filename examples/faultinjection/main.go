// Faultinjection reproduces the motivating scenarios of Figs. 1-2: a lost
// write and a misdirected write injected into the NVM firmware model. It
// contrasts three protection levels the paper discusses:
//
//   - device-level ECC alone (Baseline): corruption goes unnoticed;
//   - file-system checksums on the fs path (Nova-Fortis-style): detected
//     only when data is later read through the file system;
//   - TVARAK: detected on the very next DAX read and repaired from parity.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tvarak"
)

func main() {
	fmt.Println("--- Baseline: device ECC alone misses firmware bugs ---")
	baselineMissesCorruption()
	fmt.Println()
	fmt.Println("--- TVARAK: detection on next read + parity recovery ---")
	tvarakDetectsAndRecovers()
}

func baselineMissesCorruption() {
	m, err := tvarak.NewMachine(tvarak.ReproScaleConfig(tvarak.DesignBaseline))
	if err != nil {
		log.Fatal(err)
	}
	dm, err := m.NewMapping("data", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	eng := m.Engine()
	good := bytes.Repeat([]byte{0xAA}, 64)
	newer := bytes.Repeat([]byte{0xBB}, 64)
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) { dm.Store(c, 0, good) }})
	eng.DropCaches()
	eng.NVM.InjectLostWrite(dm.Addr(0))
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) { dm.Store(c, 0, newer) }})
	eng.DropCaches()
	var got []byte
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		got = make([]byte, 64)
		dm.Load(c, 0, got)
	}})
	fmt.Printf("wrote 0xBB.., read back 0x%X.. — stale data silently consumed (ECC errors: %d)\n",
		got[0], eng.St.ECCErrors)
}

func tvarakDetectsAndRecovers() {
	m, err := tvarak.NewMachine(tvarak.ReproScaleConfig(tvarak.DesignTvarak))
	if err != nil {
		log.Fatal(err)
	}
	dm, err := m.NewMapping("data", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	eng := m.Engine()
	m.Controller().CorruptionHook = func(addr uint64) {
		fmt.Printf("controller raised corruption interrupt for %#x\n", addr)
	}
	good := bytes.Repeat([]byte{0xAA}, 64)
	newer := bytes.Repeat([]byte{0xBB}, 64)
	victim := bytes.Repeat([]byte{0xCC}, 64)

	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		dm.Store(c, 0, good)
		dm.Store(c, 64*9, victim)
	}})
	eng.DropCaches()

	// Misdirected write: the update intended for offset 0 lands on the
	// victim line, corrupting it (Fig. 2).
	eng.NVM.InjectMisdirectedWrite(dm.Addr(0), dm.Addr(64*9))
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) { dm.Store(c, 0, newer) }})
	eng.DropCaches()

	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		got := make([]byte, 64)
		dm.Load(c, 0, got) // stale: detected + recovered to 0xBB
		fmt.Printf("offset 0    reads 0x%X.. (want BB)\n", got[0])
		dm.Load(c, 64*9, got) // clobbered: detected + recovered to 0xCC
		fmt.Printf("offset 576  reads 0x%X.. (want CC)\n", got[0])
	}})
	st := m.Stats()
	fmt.Printf("detections=%d recoveries=%d — both lines repaired from cross-DIMM parity\n",
		st.CorruptionsDetected, st.Recoveries)
}
