// Kvbench runs the Redis-like set-only workload under all four redundancy
// designs and prints the Fig. 8(a)-style comparison — the paper's headline
// result (TVARAK ≈ 3% overhead vs ~50% for TxB-Object-Csums and ~200% for
// TxB-Page-Csums).
package main

import (
	"fmt"
	"log"

	"tvarak"
	"tvarak/internal/apps/redispm"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func main() {
	table := &harness.Table{Title: "Redis set-only across redundancy designs"}
	for _, d := range param.Designs() {
		cfg := tvarak.ReproScaleConfig(d)
		wcfg := redispm.Default(true)
		wcfg.Ops = 2000 // quick demo scale
		r, err := tvarak.RunWorkload(cfg, redispm.New(wcfg))
		if err != nil {
			log.Fatal(err)
		}
		table.Add(r)
		fmt.Printf("%-17s done (%d cycles)\n", d, r.Stats.Cycles)
	}
	fmt.Println()
	fmt.Println(table)
}
