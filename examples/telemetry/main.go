// Telemetry: run one workload with the full observability layer attached —
// the epoch sampler (a per-run time series of the paper's metrics), the
// JSONL event tracer (structured fills/writebacks/diff-stash/corruption
// events), and the versioned machine-readable export that `tvarak-sim
// -metrics-out` writes for regression comparison.
//
// Telemetry is read-only: the printed aggregate statistics are
// byte-identical to an unobserved run of the same workload.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"os"

	"tvarak"
	"tvarak/internal/apps/redispm"
)

func main() {
	// A Redis set-only workload, shortened so the example runs in seconds.
	wcfg := redispm.Default(true)
	wcfg.Ops = 4000
	w := redispm.New(wcfg)

	// Trace into memory here; tvarak-sim -trace streams to a file instead.
	var trace bytes.Buffer
	tr := tvarak.NewJSONLTracer(&trace, 0)

	r, err := tvarak.RunWorkloadObserved(
		tvarak.ReproScaleConfig(tvarak.DesignTvarak), w,
		tvarak.Observation{SampleEvery: 50_000, Tracer: tr},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}

	// The epoch time series: where the NVM accesses and diff-partition
	// pressure actually happen over the run, not just end-of-run totals.
	fmt.Printf("run: %s on %s — %s\n\n", r.Workload, r.Design, r.Stats.String())
	fmt.Printf("%12s %10s %10s %10s %8s %8s %8s\n",
		"epoch-end", "nvm-data", "nvm-red", "llc-hit%", "tvk-hit%", "stash", "evict")
	for _, s := range r.Series {
		d := s.Delta
		fmt.Printf("%12d %10d %10d %9.1f%% %7.1f%% %8d %8d\n",
			s.Cycle, d.NVM.Data(), d.NVM.Redundancy(),
			hitPct(d.Cache[tvarak.LevelLLC]), hitPct(d.Cache[tvarak.LevelTvarak]),
			d.DiffStashes, d.DiffEvictions)
	}

	// A few raw trace events, as tvarak-sim -trace would write them.
	fmt.Printf("\ntraced %d event(s); first lines of the JSONL stream:\n", tr.Written())
	sc := bufio.NewScanner(bytes.NewReader(trace.Bytes()))
	for i := 0; i < 3 && sc.Scan(); i++ {
		fmt.Printf("  %s\n", sc.Text())
	}

	// The machine-readable export: versioned schema, full statistics,
	// series included — what `-metrics-out` writes and `-compare` diffs.
	tab := &tvarak.ResultTable{Title: "telemetry example"}
	tab.Add(r)
	x := tvarak.NewMetricsExport("telemetry-example")
	x.Runs = tab.ExportRuns("example")
	fmt.Printf("\nexport (schema v%d, CSV form):\n", tvarak.MetricsSchemaVersion)
	if err := x.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// hitPct renders a cache counter's hit rate, or 0 for an idle level.
func hitPct(c tvarak.CacheCounter) float64 {
	if c.Total() == 0 {
		return 0
	}
	return 100 * float64(c.Hits) / float64(c.Total())
}
