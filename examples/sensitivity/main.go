// Sensitivity reproduces a slice of Fig. 10(a): how the number of LLC ways
// reserved for caching redundancy information affects TVARAK's overhead for
// the fio random-write workload (the paper's most partition-sensitive
// synthetic workload).
//
// The sweep points are independent simulation cells, so they run
// concurrently through tvarak.RunCells; results come back in sweep order
// regardless of which cell finishes first.
package main

import (
	"fmt"
	"log"

	"tvarak"
	"tvarak/internal/apps/fio"
	"tvarak/internal/param"
)

func main() {
	mk := func() tvarak.Workload {
		cfg := fio.Default(fio.Rand, true)
		cfg.AccessBytes = 1 << 20 // quick demo scale
		return fio.New(cfg)
	}
	ways := []int{1, 2, 4, 6, 8}
	cells := []tvarak.Cell{{Config: tvarak.ReproScaleConfig(param.Baseline), Make: mk}}
	for _, w := range ways {
		cfg := tvarak.ReproScaleConfig(param.Tvarak)
		cfg.Tvarak.RedundancyWays = w
		cells = append(cells, tvarak.Cell{
			Config:  cfg,
			Make:    mk,
			Variant: fmt.Sprintf("%d-way", w),
		})
	}
	rs, err := tvarak.RunCells(cells, 0) // 0 = one worker per CPU
	if err != nil {
		log.Fatal(err)
	}
	base := rs[0]
	fmt.Printf("baseline: %d cycles\n", base.Stats.Cycles)
	for i, r := range rs[1:] {
		fmt.Printf("tvarak %d redundancy ways: %d cycles (%+.1f%% vs baseline, red NVM %d)\n",
			ways[i], r.Stats.Cycles,
			100*(float64(r.Stats.Cycles)/float64(base.Stats.Cycles)-1),
			r.Stats.NVM.Redundancy())
	}
}
