// Sensitivity reproduces a slice of Fig. 10(a): how the number of LLC ways
// reserved for caching redundancy information affects TVARAK's overhead for
// the fio random-write workload (the paper's most partition-sensitive
// synthetic workload).
package main

import (
	"fmt"
	"log"

	"tvarak"
	"tvarak/internal/apps/fio"
	"tvarak/internal/param"
)

func main() {
	mk := func() tvarak.Workload {
		cfg := fio.Default(fio.Rand, true)
		cfg.AccessBytes = 1 << 20 // quick demo scale
		return fio.New(cfg)
	}
	base, err := tvarak.RunWorkload(tvarak.ReproScaleConfig(param.Baseline), mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles\n", base.Stats.Cycles)
	for _, ways := range []int{1, 2, 4, 6, 8} {
		cfg := tvarak.ReproScaleConfig(param.Tvarak)
		cfg.Tvarak.RedundancyWays = ways
		r, err := tvarak.RunWorkload(cfg, mk())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tvarak %d redundancy ways: %d cycles (%+.1f%% vs baseline, red NVM %d)\n",
			ways, r.Stats.Cycles,
			100*(float64(r.Stats.Cycles)/float64(base.Stats.Cycles)-1),
			r.Stats.NVM.Redundancy())
	}
}
