// Golden paper-figure regression tests: each case re-runs a reduced-scale
// registry experiment and diffs the rendered result table byte-for-byte
// against a committed golden under testdata/. Every workload seeds its RNG
// deterministically and the parallel runner reassembles cells in a fixed
// order, so the table — simulated cycles, NVM accesses, overhead columns,
// all of it — is exactly reproducible; any byte of drift means simulated
// behaviour changed, not noise. This is the correctness gate for hot-path
// performance work: refactors must leave these files untouched.
//
// After an INTENTIONAL behaviour change, regenerate with:
//
//	UPDATE_GOLDEN=1 go test -run TestGolden .
package tvarak_test

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"tvarak"
	"tvarak/internal/experiments"
)

// raceEnabled is set by race_test.go when the race detector is on.
var raceEnabled bool

var goldenCases = []struct {
	id    string
	scale float64
}{
	// Fig. 8 headline comparison for the two workload extremes: redis-like
	// (pointer-chasing, small writes) and stream triad (sequential bulk).
	{"fig8-redis", 0.02},
	{"fig8-stream", 0.05},
	// Fig. 9 design-choice ablation — exercises every controller feature
	// combination (naive, +DAX-CL, +caching, +diffs) in one table.
	{"fig9", 0.02},
}

func TestGoldenTables(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping under -race: ~10x simulator slowdown blows the package timeout; byte-identity is gated by the regular test pass")
	}
	for _, tc := range goldenCases {
		t.Run(tc.id, func(t *testing.T) {
			e, err := tvarak.LookupExperiment(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := e.Run(experiments.Options{Scale: tc.scale, Parallel: runtime.NumCPU()})
			if err != nil {
				t.Fatal(err)
			}
			got := tab.String()
			path := filepath.Join("testdata", "golden-"+tc.id+".txt")
			if os.Getenv("UPDATE_GOLDEN") == "1" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run UPDATE_GOLDEN=1 go test -run TestGolden .): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden %s.\nSimulated results must be byte-identical across refactors; if this change is intentional, regenerate with UPDATE_GOLDEN=1.\n--- got ---\n%s--- want ---\n%s", tc.id, path, got, want)
			}
		})
	}
}
