package nvm

import (
	"testing"

	"tvarak/internal/geom"
	"tvarak/internal/param"
	"tvarak/internal/stats"
)

// Media reads and writes back every LLC miss and writeback; the injectable
// firmware-bug machinery must cost nothing when no bug is armed (the normal
// case — bugs exist only inside fault-injection campaigns).

func mkBenchNVM(b *testing.B) (*Memory, geom.Geometry) {
	b.Helper()
	g, err := geom.New(64, 4096, 1<<20, 16<<20, 4)
	if err != nil {
		b.Fatal(err)
	}
	st := &stats.Stats{}
	return New(NVMKind, g, param.OptaneLike(4).Mem, st), g
}

func BenchmarkReadLine(b *testing.B) {
	m, g := mkBenchNVM(b)
	buf := make([]byte, 64)
	base := g.NVMBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + uint64(i&1023)*64
		if _, err := m.ReadLine(uint64(i), addr, Data, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteLine(b *testing.B) {
	m, g := mkBenchNVM(b)
	data := make([]byte, 64)
	base := g.NVMBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteLine(uint64(i), base+uint64(i&1023)*64, Data, data)
	}
}

func BenchmarkReadLineDRAM(b *testing.B) {
	g, err := geom.New(64, 4096, 1<<20, 16<<20, 4)
	if err != nil {
		b.Fatal(err)
	}
	m := New(DRAMKind, g, param.ReproScale(param.Baseline).DRAM, &stats.Stats{})
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadLine(uint64(i), uint64(i&1023)*64, Data, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRawPage(b *testing.B) {
	m, g := mkBenchNVM(b)
	buf := make([]byte, 4096)
	base := g.NVMBase()
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadRaw(base+uint64(i&15)*4096, buf)
	}
}
