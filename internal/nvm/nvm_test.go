package nvm

import (
	"bytes"
	"testing"

	"tvarak/internal/geom"
	"tvarak/internal/param"
	"tvarak/internal/stats"
)

func mkNVM(t *testing.T) (*Memory, *stats.Stats, geom.Geometry) {
	t.Helper()
	g, err := geom.New(64, 4096, 1<<20, 16<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	p := param.OptaneLike(4).Mem
	return New(NVMKind, g, p, st), st, g
}

func pat(b byte) []byte {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = b + byte(i)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, _, g := mkNVM(t)
	addr := g.NVMBase() + 4096*7 + 128
	m.WriteLine(0, addr, Data, pat(3))
	got := make([]byte, 64)
	if _, err := m.ReadLine(0, addr, Data, got); err != nil {
		t.Fatalf("ReadLine: %v", err)
	}
	if !bytes.Equal(got, pat(3)) {
		t.Error("read-back mismatch")
	}
}

func TestRawRoundTripUnaligned(t *testing.T) {
	m, _, g := mkNVM(t)
	data := []byte("hello, tvarak — spanning a line boundary for sure........................")
	addr := g.NVMBase() + 60 // straddles the first line boundary
	m.WriteRaw(addr, data)
	got := make([]byte, len(data))
	m.ReadRaw(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("raw round trip: got %q want %q", got, data)
	}
}

func TestStatsClassification(t *testing.T) {
	m, st, g := mkNVM(t)
	a := g.NVMBase()
	buf := make([]byte, 64)
	m.WriteLine(0, a, Data, pat(0))
	m.WriteLine(0, a, Redundancy, pat(1))
	m.ReadLine(0, a, Data, buf)
	m.ReadLine(0, a, Redundancy, buf)
	n := st.NVM
	if n.DataReads != 1 || n.DataWrites != 1 || n.RedReads != 1 || n.RedWrites != 1 {
		t.Errorf("NVM counter = %+v, want 1 of each", n)
	}
	wantE := 1600.0*2 + 9000.0*2
	if st.EnergyPJ != wantE {
		t.Errorf("energy = %v pJ, want %v", st.EnergyPJ, wantE)
	}
}

func TestLatencyAndOccupancy(t *testing.T) {
	m, _, g := mkNVM(t)
	a := g.NVMBase() // page 0 → DIMM 0
	buf := make([]byte, 64)
	done, _ := m.ReadLine(100, a, Data, buf)
	if done != 100+136 {
		t.Errorf("read completes at %d, want 236 (fixed service latency)", done)
	}
	// Occupancy accumulates as a per-DIMM bandwidth bound.
	m.ReadLine(100, a, Data, buf)
	if m.BusyUntil() != 2*21 {
		t.Errorf("BusyUntil = %d, want %d (two reads on one DIMM)", m.BusyUntil(), 2*21)
	}
	// A read to another DIMM does not raise the bound.
	b := g.NVMBase() + 4096 // page 1 → DIMM 1
	m.ReadLine(100, b, Data, buf)
	if m.BusyUntil() != 2*21 {
		t.Errorf("BusyUntil = %d after other-DIMM read, want %d", m.BusyUntil(), 2*21)
	}
	// Writes occupy longer than reads.
	done4 := m.WriteLine(500, a, Data, pat(1))
	if done4 != 500+341 {
		t.Errorf("write completes at %d, want 841", done4)
	}
	if m.BusyUntil() != 2*21+63 {
		t.Errorf("BusyUntil = %d, want %d", m.BusyUntil(), 2*21+63)
	}
	m.ResetTiming()
	if m.BusyUntil() != 0 {
		t.Error("ResetTiming did not clear DIMM busy state")
	}
}

func TestPageInterleaving(t *testing.T) {
	m, _, g := mkNVM(t)
	buf := make([]byte, 64)
	for p := uint64(0); p < 8; p++ {
		m.ReadLine(0, g.PageBase(p), Data, buf)
	}
	reads, _ := m.DIMMAccesses()
	for d, r := range reads {
		if r != 2 {
			t.Errorf("DIMM %d got %d reads, want 2 (pages round-robin)", d, r)
		}
	}
}

func TestLostWriteBug(t *testing.T) {
	m, _, g := mkNVM(t)
	a := g.NVMBase() + 4096
	m.WriteLine(0, a, Data, pat(1))
	m.InjectLostWrite(a)
	m.WriteLine(0, a, Data, pat(2)) // acknowledged, lost
	got := make([]byte, 64)
	if _, err := m.ReadLine(0, a, Data, got); err != nil {
		t.Fatalf("device ECC flagged a lost write, but ECC cannot detect firmware bugs: %v", err)
	}
	if !bytes.Equal(got, pat(1)) {
		t.Error("lost write reached media")
	}
	if m.PendingBugs() != 0 {
		t.Error("bug did not fire")
	}
	// The bug is one-shot: the next write lands.
	m.WriteLine(0, a, Data, pat(3))
	m.ReadRaw(a, got)
	if !bytes.Equal(got, pat(3)) {
		t.Error("write after one-shot bug did not land")
	}
}

func TestMisdirectedWriteBug(t *testing.T) {
	m, _, g := mkNVM(t)
	x := g.NVMBase() + 4096*2
	y := g.NVMBase() + 4096*3
	m.WriteLine(0, x, Data, pat(10))
	m.WriteLine(0, y, Data, pat(20))
	m.InjectMisdirectedWrite(x, y)
	m.WriteLine(0, x, Data, pat(30)) // lands on y, corrupting it
	got := make([]byte, 64)
	if _, err := m.ReadLine(0, x, Data, got); err != nil {
		t.Fatalf("ECC error on x: %v", err)
	}
	if !bytes.Equal(got, pat(10)) {
		t.Error("x should keep its old data after the misdirected write")
	}
	// y is corrupted and — crucially — device ECC does NOT notice, because
	// data and ECC moved together (§II-A).
	if _, err := m.ReadLine(0, y, Data, got); err != nil {
		t.Fatalf("ECC detected misdirected write, which it must not: %v", err)
	}
	if !bytes.Equal(got, pat(30)) {
		t.Error("y should hold the misdirected data")
	}
}

func TestMisdirectedReadBug(t *testing.T) {
	m, _, g := mkNVM(t)
	x := g.NVMBase()
	y := g.NVMBase() + 4096
	m.WriteLine(0, x, Data, pat(1))
	m.WriteLine(0, y, Data, pat(2))
	m.InjectMisdirectedRead(x, y)
	got := make([]byte, 64)
	if _, err := m.ReadLine(0, x, Data, got); err != nil {
		t.Fatalf("ECC detected misdirected read, which it must not: %v", err)
	}
	if !bytes.Equal(got, pat(2)) {
		t.Error("misdirected read should return y's content")
	}
	// One-shot: next read is correct.
	m.ReadLine(0, x, Data, got)
	if !bytes.Equal(got, pat(1)) {
		t.Error("read after one-shot bug wrong")
	}
}

func TestFreshMediaPassesECC(t *testing.T) {
	m, st, g := mkNVM(t)
	buf := make([]byte, 64)
	if _, err := m.ReadLine(0, g.NVMBase()+4096*9, Data, buf); err != nil {
		t.Fatalf("read of never-written line: %v", err)
	}
	if st.ECCErrors != 0 {
		t.Errorf("fresh media raised %d ECC errors", st.ECCErrors)
	}
}

func TestECCDetectsMediaCorruption(t *testing.T) {
	m, st, g := mkNVM(t)
	a := g.NVMBase()
	m.WriteLine(0, a, Data, pat(5))
	m.FlipBit(a+10, 3)
	got := make([]byte, 64)
	if _, err := m.ReadLine(0, a, Data, got); err != ErrECC {
		t.Errorf("ReadLine after bit flip: err = %v, want ErrECC", err)
	}
	if st.ECCErrors != 1 {
		t.Errorf("ECCErrors = %d, want 1", st.ECCErrors)
	}
}

func TestDRAMLineInterleaving(t *testing.T) {
	g, err := geom.New(64, 4096, 1<<20, 16<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	m := New(DRAMKind, g, param.Default(param.Baseline).DRAM, st)
	buf := make([]byte, 64)
	for i := uint64(0); i < 12; i++ {
		m.ReadLine(0, i*64, Data, buf)
	}
	reads, _ := m.DIMMAccesses()
	for d, r := range reads {
		if r != 2 {
			t.Errorf("DRAM DIMM %d got %d reads, want 2 (lines round-robin over 6 DIMMs)", d, r)
		}
	}
	if st.DRAMReads != 12 {
		t.Errorf("DRAMReads = %d, want 12", st.DRAMReads)
	}
}

func TestUnalignedLinePanics(t *testing.T) {
	m, _, g := mkNVM(t)
	defer func() {
		if recover() == nil {
			t.Error("unaligned ReadLine did not panic")
		}
	}()
	m.ReadLine(0, g.NVMBase()+1, Data, make([]byte, 64))
}
