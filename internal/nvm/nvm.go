// Package nvm models the simulated machine's memory devices: NVM DIMMs
// (page-interleaved, with injectable firmware bugs and device-level ECC)
// and DRAM DIMMs (line-interleaved). Devices are backed by real bytes so
// that checksums, parity, corruption and recovery are computed over real
// content rather than emulated with flags.
//
// Faithful to §II-A of the paper, device-level ECC is read and written as
// an atom with its data by the firmware during each media access, so it
// detects media corruption (bit flips) but can never detect lost-write or
// misdirected-read/write firmware bugs: a lost write loses the ECC update
// too, and a misdirected access moves data and ECC together.
package nvm

import (
	"errors"
	"fmt"
	"math/bits"

	"tvarak/internal/geom"
	"tvarak/internal/param"
	"tvarak/internal/stats"
	"tvarak/internal/xsum"
)

// Class tags an access for the NVM data-vs-redundancy split in Fig. 8.
type Class int

const (
	// Data marks demand application-data accesses.
	Data Class = iota
	// Redundancy marks accesses performed only to maintain or verify
	// redundancy: checksum lines, parity lines, and old-data reads on the
	// writeback path.
	Redundancy
)

// ErrECC is returned when the device-level ECC detects media corruption.
var ErrECC = errors.New("nvm: device ECC mismatch (media corruption)")

// Kind distinguishes the two memory technologies.
type Kind int

const (
	// NVMKind interleaves pages across DIMMs (required by the parity
	// geometry, Fig. 3).
	NVMKind Kind = iota
	// DRAMKind interleaves cache lines across DIMMs.
	DRAMKind
)

type bugKind int

const (
	lostWrite bugKind = iota
	misdirectedWrite
	misdirectedRead
)

type bug struct {
	kind   bugKind
	target uint64 // where a misdirected access actually lands / reads from
}

type dimm struct {
	data    []byte
	ecc     []uint32 // one device ECC word per line, stored "with" the data
	busyCyc uint64   // accumulated transfer occupancy (bandwidth bound)
	reads   uint64
	writes  uint64
}

// Memory is one memory pool (all NVM DIMMs or all DRAM DIMMs).
type Memory struct {
	kind     Kind
	geo      geom.Geometry
	p        param.MemParams
	base     uint64
	size     uint64
	dimms    []*dimm
	lineSize int
	st       *stats.Stats

	// Precomputed interleave arithmetic for locate(), which runs on every
	// media access: unit is the interleave granule (page for NVM, line for
	// DRAM) and nd the DIMM count; the shift/mask forms apply when the
	// respective value is a power of two.
	unit      uint64
	unitShift uint
	unitPow2  bool
	nd        uint64
	dimmShift uint
	dimmMask  uint64
	dimmPow2  bool
	lineShift uint
	linePow2  bool

	// One-shot firmware bugs armed by tests and fault-injection tools,
	// keyed by intended line address. NVM only. Bugs model firmware
	// faults on the demand data path, so they fire only on Data-class
	// accesses: redundancy-maintenance reads/writes issued by the
	// controller would otherwise consume a bug armed for the
	// application's own access to the same line.
	bugsW map[uint64]bug
	bugsR map[uint64]bug

	// Observers see every access at the intended address, before bug
	// redirection — i.e. what the issuer meant to persist or read — so a
	// shadow model built from them diverges from media exactly where a
	// firmware bug or media corruption struck. Nil when disabled.
	obsW WriteObserver
	obsR ReadObserver

	// hook, when set by a sharded engine, is invoked before any API that
	// bypasses the timed access path (raw reads/writes, bug injection,
	// bit flips, observer installation) so the engine can flush deferred
	// media work first — and, for the mutating/observing calls (degrade
	// true), fall back to serial execution for the rest of the run.
	hook func(degrade bool)
}

// WriteObserver receives every media write with its intended address and
// payload, before any injected firmware bug drops or redirects it. timed
// is false for WriteRaw (setup/recovery) writes; class is Data for those.
type WriteObserver func(addr uint64, data []byte, timed bool, class Class)

// ReadObserver receives every timed media read after delivery: buf holds
// the bytes actually returned to the issuer (possibly redirected by a
// misdirected-read bug), addr the intended line, and eccErr whether the
// device ECC flagged the access.
type ReadObserver func(addr uint64, buf []byte, class Class, eccErr bool)

// SetWriteObserver installs (or, with nil, removes) the write observer.
func (m *Memory) SetWriteObserver(o WriteObserver) {
	m.touch(true)
	m.obsW = o
}

// SetReadObserver installs (or, with nil, removes) the read observer.
func (m *Memory) SetReadObserver(o ReadObserver) {
	m.touch(true)
	m.obsR = o
}

// HasObservers reports whether any read or write observer is installed.
// A sharded engine refuses to defer media work while observers are live:
// observers would otherwise fire off the engine thread and out of order.
func (m *Memory) HasObservers() bool { return m.obsW != nil || m.obsR != nil }

// SetShardHook installs (or, with nil, removes) the sharded engine's
// flush/degrade hook; see the field comment.
func (m *Memory) SetShardHook(h func(degrade bool)) { m.hook = h }

func (m *Memory) touch(degrade bool) {
	if m.hook != nil {
		m.hook(degrade)
	}
}

// New builds a memory pool. For NVMKind the pool spans
// [geo.NVMBase(), geo.NVMEnd()); for DRAMKind it spans [0, geo.DRAMBytes).
func New(kind Kind, geo geom.Geometry, p param.MemParams, st *stats.Stats) *Memory {
	m := &Memory{
		kind:     kind,
		geo:      geo,
		p:        p,
		lineSize: geo.LineSize,
		st:       st,
		bugsW:    make(map[uint64]bug),
		bugsR:    make(map[uint64]bug),
	}
	if kind == NVMKind {
		m.base = geo.NVMBase()
		m.size = uint64(geo.NVMBytes)
		m.unit = uint64(geo.PageSize)
	} else {
		m.base = 0
		m.size = uint64(geo.DRAMBytes)
		m.unit = uint64(geo.LineSize)
	}
	if m.unit&(m.unit-1) == 0 {
		m.unitPow2 = true
		m.unitShift = uint(bits.TrailingZeros64(m.unit))
	}
	m.nd = uint64(p.DIMMs)
	if m.nd&(m.nd-1) == 0 {
		m.dimmPow2 = true
		m.dimmShift = uint(bits.TrailingZeros64(m.nd))
		m.dimmMask = m.nd - 1
	}
	if ls := uint64(m.lineSize); ls&(ls-1) == 0 {
		m.linePow2 = true
		m.lineShift = uint(bits.TrailingZeros64(ls))
	}
	per := int(m.size) / p.DIMMs
	zeroECC := xsum.Checksum(make([]byte, m.lineSize))
	m.dimms = make([]*dimm, p.DIMMs)
	for i := range m.dimms {
		d := &dimm{
			data: make([]byte, per),
			ecc:  make([]uint32, per/m.lineSize),
		}
		// Fresh media is zeroed; its ECC must verify.
		for j := range d.ecc {
			d.ecc[j] = zeroECC
		}
		m.dimms[i] = d
	}
	return m
}

// Contains reports whether addr belongs to this pool.
func (m *Memory) Contains(addr uint64) bool {
	return addr >= m.base && addr < m.base+m.size
}

// locateIdx maps a line address to (dimm index, byte offset within the
// DIMM). The interleave granule (page for NVM, line for DRAM) is
// precomputed as unit; shift/mask fast paths cover the power-of-two cases.
func (m *Memory) locateIdx(addr uint64) (int, uint64) {
	rel := addr - m.base
	var idx, inUnit uint64
	if m.unitPow2 {
		idx, inUnit = rel>>m.unitShift, rel&(m.unit-1)
	} else {
		idx, inUnit = rel/m.unit, rel%m.unit
	}
	var d, row uint64
	if m.dimmPow2 {
		d, row = idx&m.dimmMask, idx>>m.dimmShift
	} else {
		d, row = idx%m.nd, idx/m.nd
	}
	return int(d), row*m.unit + inUnit
}

func (m *Memory) locate(addr uint64) (*dimm, uint64) {
	di, off := m.locateIdx(addr)
	return m.dimms[di], off
}

// DimmIndex returns the DIMM that services addr's line — the routing key a
// sharded engine uses so all deferred accesses to one line land on one
// shard queue.
func (m *Memory) DimmIndex(addr uint64) int {
	di, _ := m.locateIdx(m.geo.LineAddr(addr))
	return di
}

// eccIndex returns the per-line ECC slot for a DIMM byte offset.
func (m *Memory) eccIndex(off uint64) uint64 {
	if m.linePow2 {
		return off >> m.lineShift
	}
	return off / uint64(m.lineSize)
}

func (m *Memory) checkLine(addr uint64) uint64 {
	la := m.geo.LineAddr(addr)
	if la != addr {
		panic(fmt.Sprintf("nvm: unaligned line address %#x", addr))
	}
	if !m.Contains(addr) {
		panic(fmt.Sprintf("nvm: address %#x outside pool [%#x,%#x)", addr, m.base, m.base+m.size))
	}
	return la
}

// ReadLine performs a timed media read of the 64 B line at addr into buf,
// accounting stats and DIMM occupancy. It returns the completion cycle.
// A pending misdirected-read bug silently returns another line's content;
// device ECC cannot catch that (the wrong line's ECC matches the wrong
// line's data), but genuine media corruption returns ErrECC.
func (m *Memory) ReadLine(now uint64, addr uint64, class Class, buf []byte) (uint64, error) {
	return m.readLine(nil, now, addr, class, buf)
}

func (m *Memory) readLine(a *Acct, now uint64, addr uint64, class Class, buf []byte) (uint64, error) {
	m.checkLine(addr)
	src := addr
	// Bugs are armed only inside fault-injection runs; the len check keeps
	// the normal path free of a map lookup per access.
	if len(m.bugsR) != 0 {
		if b, ok := m.bugsR[addr]; ok && b.kind == misdirectedRead && class == Data {
			delete(m.bugsR, addr)
			src = b.target
		}
	}
	di, off := m.locateIdx(src)
	d := m.dimms[di]
	m.accRead(a, di, class)
	copy(buf, d.data[off:off+uint64(m.lineSize)])
	if d.ecc[m.eccIndex(off)] != xsum.Checksum(buf) {
		if a != nil {
			a.st.ECCErrors++
		} else if m.st != nil {
			m.st.ECCErrors++
		}
		if m.obsR != nil {
			m.obsR(addr, buf, class, true)
		}
		return now + m.p.ReadCyc, ErrECC
	}
	if m.obsR != nil {
		m.obsR(addr, buf, class, false)
	}
	return now + m.p.ReadCyc, nil
}

// ReadLineDeferred performs a timed media read whose device-ECC check the
// caller defers: it accounts occupancy and stats directly (engine thread),
// copies the line into buf, and returns the stored ECC word alongside the
// completion cycle. The caller later compares xsum.Checksum of the
// snapshot against ecc off the critical path. Bug redirection is identical
// to ReadLine. Observers must not be installed (the sharded engine checks).
func (m *Memory) ReadLineDeferred(now uint64, addr uint64, class Class, buf []byte) (uint64, uint32) {
	m.checkLine(addr)
	src := addr
	if len(m.bugsR) != 0 {
		if b, ok := m.bugsR[addr]; ok && b.kind == misdirectedRead && class == Data {
			delete(m.bugsR, addr)
			src = b.target
		}
	}
	di, off := m.locateIdx(src)
	d := m.dimms[di]
	m.accRead(nil, di, class)
	copy(buf, d.data[off:off+uint64(m.lineSize)])
	return now + m.p.ReadCyc, d.ecc[m.eccIndex(off)]
}

func (m *Memory) accRead(a *Acct, di int, class Class) {
	if a == nil {
		d := m.dimms[di]
		d.busyCyc += m.p.ReadOccupancyCyc
		d.reads++
		if m.st != nil {
			if m.kind == NVMKind {
				m.st.AddNVM(false, class == Redundancy, m.p.ReadEnergyPJ)
			} else {
				m.st.AddDRAM(false, m.p.ReadEnergyPJ)
			}
		}
		return
	}
	a.busy[di] += m.p.ReadOccupancyCyc
	a.reads[di]++
	if m.kind == NVMKind {
		a.st.AddNVM(false, class == Redundancy, m.p.ReadEnergyPJ)
	} else {
		a.st.AddDRAM(false, m.p.ReadEnergyPJ)
	}
}

// WriteLine performs a timed media write of data to the line at addr.
// A pending lost-write bug acknowledges without touching media; a pending
// misdirected-write bug writes data (and its ECC, atomically) to the wrong
// line. The completion cycle is returned.
func (m *Memory) WriteLine(now uint64, addr uint64, class Class, data []byte) uint64 {
	return m.writeLine(nil, now, addr, class, data)
}

func (m *Memory) writeLine(a *Acct, now uint64, addr uint64, class Class, data []byte) uint64 {
	m.checkLine(addr)
	if m.obsW != nil {
		m.obsW(addr, data, true, class)
	}
	dst := addr
	if len(m.bugsW) != 0 {
		if b, ok := m.bugsW[addr]; ok && class == Data {
			delete(m.bugsW, addr)
			switch b.kind {
			case lostWrite:
				// Acknowledge without updating media. Occupancy and stats
				// still accrue: the request was issued and "serviced".
				di, _ := m.locateIdx(addr)
				m.accWrite(a, di, class)
				return now + m.p.WriteCyc
			case misdirectedWrite:
				dst = b.target
			}
		}
	}
	di, off := m.locateIdx(dst)
	d := m.dimms[di]
	m.accWrite(a, di, class)
	copy(d.data[off:off+uint64(m.lineSize)], data)
	d.ecc[m.eccIndex(off)] = xsum.Checksum(data)
	return now + m.p.WriteCyc
}

func (m *Memory) accWrite(a *Acct, di int, class Class) {
	if a == nil {
		d := m.dimms[di]
		d.busyCyc += m.p.WriteOccupancyCyc
		d.writes++
		if m.st != nil {
			if m.kind == NVMKind {
				m.st.AddNVM(true, class == Redundancy, m.p.WriteEnergyPJ)
			} else {
				m.st.AddDRAM(true, m.p.WriteEnergyPJ)
			}
		}
		return
	}
	a.busy[di] += m.p.WriteOccupancyCyc
	a.writes[di]++
	if m.kind == NVMKind {
		a.st.AddNVM(true, class == Redundancy, m.p.WriteEnergyPJ)
	} else {
		a.st.AddDRAM(true, m.p.WriteEnergyPJ)
	}
}

// ReadRaw copies current media content without timing, stats, bug or ECC
// effects. Setup, verification and recovery-checking code uses it.
func (m *Memory) ReadRaw(addr uint64, buf []byte) {
	m.touch(false)
	for n := 0; n < len(buf); {
		la := m.geo.LineAddr(addr + uint64(n))
		d, off := m.locate(la)
		lo := (addr + uint64(n)) - la
		c := copy(buf[n:], d.data[off+lo:off+uint64(m.lineSize)])
		n += c
	}
}

// WriteRaw writes media content directly (with consistent ECC), without
// timing, stats or bugs. Used for setup and by recovery to repair media.
func (m *Memory) WriteRaw(addr uint64, data []byte) {
	m.touch(false)
	if m.obsW != nil {
		m.obsW(addr, data, false, Data)
	}
	line := make([]byte, m.lineSize)
	for n := 0; n < len(data); {
		la := m.geo.LineAddr(addr + uint64(n))
		d, off := m.locate(la)
		lo := (addr + uint64(n)) - la
		c := copy(line, data[n:])
		if uint64(c) > uint64(m.lineSize)-lo {
			c = int(uint64(m.lineSize) - lo)
		}
		copy(d.data[off+lo:], data[n:n+c])
		full := d.data[off : off+uint64(m.lineSize)]
		d.ecc[m.eccIndex(off)] = xsum.Checksum(full)
		n += c
	}
}

// InjectLostWrite arms a one-shot lost-write firmware bug: the next
// WriteLine to lineAddr is acknowledged but never reaches media (Fig. 1).
func (m *Memory) InjectLostWrite(lineAddr uint64) {
	m.touch(true)
	m.bugsW[m.checkLine(lineAddr)] = bug{kind: lostWrite}
}

// InjectMisdirectedWrite arms a one-shot misdirected-write bug: the next
// WriteLine intended for intended lands on actual instead, corrupting it
// (Fig. 2).
func (m *Memory) InjectMisdirectedWrite(intended, actual uint64) {
	m.touch(true)
	m.checkLine(actual)
	m.bugsW[m.checkLine(intended)] = bug{kind: misdirectedWrite, target: actual}
}

// InjectMisdirectedRead arms a one-shot misdirected-read bug: the next
// ReadLine of intended returns the content of actual.
func (m *Memory) InjectMisdirectedRead(intended, actual uint64) {
	m.touch(true)
	m.checkLine(actual)
	m.bugsR[m.checkLine(intended)] = bug{kind: misdirectedRead, target: actual}
}

// FlipBit corrupts one media bit without updating ECC, modelling media
// corruption that device ECC does detect.
func (m *Memory) FlipBit(addr uint64, bit uint) {
	m.touch(true)
	la := m.geo.LineAddr(addr)
	d, off := m.locate(la)
	d.data[off+(addr-la)] ^= 1 << (bit % 8)
}

// PendingBugs reports how many injected bugs have not fired yet.
func (m *Memory) PendingBugs() int { return len(m.bugsW) + len(m.bugsR) }

// BugArmed reports whether an injected bug is still armed at lineAddr.
// The fault-injection campaign uses it to tell fired injections (media
// now diverges from intent) from ones the workload never triggered.
func (m *Memory) BugArmed(lineAddr uint64) bool {
	_, w := m.bugsW[lineAddr]
	_, r := m.bugsR[lineAddr]
	return w || r
}

// CancelBugs disarms any still-pending injected bugs at lineAddr and
// reports how many were removed. Campaigns cancel unfired injections at
// round boundaries so their accounting of media divergence stays exact.
func (m *Memory) CancelBugs(lineAddr uint64) int {
	m.touch(true)
	n := 0
	if _, ok := m.bugsW[lineAddr]; ok {
		delete(m.bugsW, lineAddr)
		n++
	}
	if _, ok := m.bugsR[lineAddr]; ok {
		delete(m.bugsR, lineAddr)
		n++
	}
	return n
}

// ResetTiming clears DIMM queueing state and per-DIMM counters so a new
// measured region starts with idle devices.
func (m *Memory) ResetTiming() {
	for _, d := range m.dimms {
		d.busyCyc = 0
		d.reads = 0
		d.writes = 0
	}
}

// BusyUntil returns the busiest DIMM's accumulated transfer occupancy — a
// lower bound on the run's duration imposed by per-DIMM bandwidth. The
// engine folds it into the fixed-work runtime so bandwidth-bound workloads
// (stream) are limited by DIMM occupancy as in the paper. Individual
// accesses see fixed service latency (queueing delay is not modeled
// per-request; the throughput bound captures saturation — see DESIGN.md).
func (m *Memory) BusyUntil() uint64 {
	var t uint64
	for _, d := range m.dimms {
		t = max(t, d.busyCyc)
	}
	return t
}

// DIMMAccesses returns per-DIMM (reads, writes) counters, used by tests to
// check interleaving and by the harness for reporting.
func (m *Memory) DIMMAccesses() (reads, writes []uint64) {
	for _, d := range m.dimms {
		reads = append(reads, d.reads)
		writes = append(writes, d.writes)
	}
	return reads, writes
}

// Base returns the pool's first physical address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the pool's capacity in bytes.
func (m *Memory) Size() uint64 { return m.size }
