package nvm

import "tvarak/internal/stats"

// Acct is a detached accounting sink for timed media accesses: per-DIMM
// occupancy and access counters plus a stats accumulator, all private to
// one shard worker. The sharded engine gives each worker an Acct per
// device so deferred writebacks account without touching the device's own
// counters, then folds the deltas back with Apply at each phase barrier.
// All folded quantities are sums of integers (energy is integral
// picojoules), so the merged totals are independent of execution order.
type Acct struct {
	st     *stats.Stats
	busy   []uint64
	reads  []uint64
	writes []uint64
}

// NewAcct returns an accounting sink for this device feeding st.
func (m *Memory) NewAcct(st *stats.Stats) *Acct {
	return &Acct{
		st:     st,
		busy:   make([]uint64, len(m.dimms)),
		reads:  make([]uint64, len(m.dimms)),
		writes: make([]uint64, len(m.dimms)),
	}
}

// Apply folds a's per-DIMM deltas into the device counters and zeroes
// them. The caller owns a's stats accumulator and merges it separately.
// Must run on the engine thread with the owning worker quiescent.
func (m *Memory) Apply(a *Acct) {
	for i, d := range m.dimms {
		d.busyCyc += a.busy[i]
		d.reads += a.reads[i]
		d.writes += a.writes[i]
		a.busy[i] = 0
		a.reads[i] = 0
		a.writes[i] = 0
	}
}

// Accessor is a Memory handle bound to an accounting sink: a nil Acct
// accounts directly on the device (the serial engine path), a non-nil one
// diverts occupancy/stats into the worker-private sink. Media content and
// ECC always go to the shared device either way.
type Accessor struct {
	m *Memory
	a *Acct
}

// Direct returns an accessor that accounts on the device itself.
func (m *Memory) Direct() Accessor { return Accessor{m: m} }

// Via returns an accessor that accounts into a.
func (m *Memory) Via(a *Acct) Accessor { return Accessor{m: m, a: a} }

// Mem returns the underlying device.
func (ac Accessor) Mem() *Memory { return ac.m }

// ReadLine is Memory.ReadLine through the bound accounting sink.
func (ac Accessor) ReadLine(now uint64, addr uint64, class Class, buf []byte) (uint64, error) {
	return ac.m.readLine(ac.a, now, addr, class, buf)
}

// WriteLine is Memory.WriteLine through the bound accounting sink.
func (ac Accessor) WriteLine(now uint64, addr uint64, class Class, data []byte) uint64 {
	return ac.m.writeLine(ac.a, now, addr, class, data)
}
