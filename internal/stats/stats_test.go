package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddCache(t *testing.T) {
	var s Stats
	s.AddCache(L1, true, 15)
	s.AddCache(L1, false, 33)
	s.AddCache(LLC, true, 240)
	if s.Cache[L1].Hits != 1 || s.Cache[L1].Misses != 1 {
		t.Errorf("L1 counter = %+v", s.Cache[L1])
	}
	if s.Cache[L1].Total() != 2 {
		t.Error("Total wrong")
	}
	if s.EnergyPJ != 15+33+240 {
		t.Errorf("energy = %v", s.EnergyPJ)
	}
	if s.CacheTotal() != 3 {
		t.Errorf("CacheTotal = %d, want 3", s.CacheTotal())
	}
}

func TestAddNVMClassification(t *testing.T) {
	var s Stats
	s.AddNVM(false, false, 1)
	s.AddNVM(true, false, 1)
	s.AddNVM(false, true, 1)
	s.AddNVM(true, true, 1)
	n := s.NVM
	if n.DataReads != 1 || n.DataWrites != 1 || n.RedReads != 1 || n.RedWrites != 1 {
		t.Errorf("NVM = %+v", n)
	}
	if n.Data() != 2 || n.Redundancy() != 2 || n.Total() != 4 {
		t.Error("aggregates wrong")
	}
}

func TestResetClearsEverything(t *testing.T) {
	f := func(a, b, c uint64) bool {
		var s Stats
		s.Cycles = a
		s.AddNVM(true, true, float64(b%1000))
		s.AddDRAM(false, 1)
		s.CorruptionsDetected = c
		s.Reset()
		return s == Stats{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	var s Stats
	s.AddCache(L2, true, 46)
	cl := s.Clone()
	s.AddCache(L2, true, 46)
	if cl.Cache[L2].Hits != 1 {
		t.Error("clone mutated by original")
	}
}

func TestLevelStrings(t *testing.T) {
	for l, want := range map[Level]string{L1: "L1", L2: "L2", LLC: "LLC", TvarakCache: "Tvarak$"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", int(l), l.String())
		}
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	var s Stats
	s.Cycles = 1234
	s.AddNVM(false, false, 1600)
	s.CorruptionsDetected = 2
	s.Recoveries = 2
	out := s.String()
	for _, want := range []string{"cycles=1234", "corruptions=2", "recoveries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}
