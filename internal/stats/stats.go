// Package stats collects the four metrics the paper reports for every
// workload (Fig. 8): runtime (cycles), energy (pJ), NVM accesses split into
// data and redundancy-information accesses, and cache accesses split into
// L1, L2, LLC and on-TVARAK-controller cache accesses. It also counts the
// reliability events (corruption detections, parity recoveries) exercised by
// the fault-injection experiments.
package stats

import (
	"fmt"
	"strings"
)

// Level identifies a cache level for access accounting.
type Level int

const (
	L1 Level = iota
	L2
	LLC
	TvarakCache
	numLevels
)

// String returns the figure label for the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case TvarakCache:
		return "Tvarak$"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// CacheCounter counts hits and misses at one level.
type CacheCounter struct {
	Hits   uint64
	Misses uint64
}

// Total is hits plus misses.
func (c CacheCounter) Total() uint64 { return c.Hits + c.Misses }

// NVMCounter splits NVM line accesses the way Fig. 8(c,g,k,o,s) does:
// application data versus redundancy information (checksums, parity, and
// old-data reads performed purely to update redundancy).
type NVMCounter struct {
	DataReads  uint64
	DataWrites uint64
	RedReads   uint64
	RedWrites  uint64
}

// Data is all data-line accesses.
func (n NVMCounter) Data() uint64 { return n.DataReads + n.DataWrites }

// Redundancy is all redundancy-information accesses.
func (n NVMCounter) Redundancy() uint64 { return n.RedReads + n.RedWrites }

// Total is every NVM line access.
func (n NVMCounter) Total() uint64 { return n.Data() + n.Redundancy() }

// Stats accumulates all metrics for one simulation run. The simulation
// engine is single-stepped (one core simulates at a time), so plain fields
// suffice.
type Stats struct {
	// Cycles is the fixed-work runtime: the maximum over core completion
	// times and DIMM busy times, set by the engine when the run drains.
	Cycles uint64

	Cache [numLevels]CacheCounter
	NVM   NVMCounter

	DRAMReads  uint64
	DRAMWrites uint64

	EnergyPJ float64

	// Reliability events.
	CorruptionsDetected uint64
	Recoveries          uint64
	ECCErrors           uint64

	// Cycle breakdown of core time: compute vs load stalls vs store
	// issue. LoadStallCyc+StoreIssueCyc+ComputeCyc accounts for every
	// cycle any core's clock advances.
	ComputeCycles uint64
	LoadStallCyc  uint64
	StoreIssueCyc uint64
	Loads         uint64
	Stores        uint64

	// VerifyExtraCyc accumulates fill latency added by checksum
	// verification (beyond the overlapped data read).
	VerifyExtraCyc uint64

	// Controller events useful for debugging and ablation analysis.
	Writebacks         uint64 // LLC→NVM data-line writebacks
	Fills              uint64 // NVM→LLC data-line fills
	DiffStashes        uint64 // old-data copies saved into the diff partition
	DiffEvictions      uint64 // diff-partition evictions forcing early writeback
	RedInvalidations   uint64 // on-controller cache sharing invalidations
	UpperInvalidations uint64 // inclusive back-invalidations of L1/L2 lines

	// Asynchronous-redundancy (Vilamb family) daemon activity. Zero for
	// every other design.
	AsyncEpochs          uint64 // completed daemon reconciliation passes
	AsyncPagesReconciled uint64 // distinct pages visited by reconciliation
	AsyncLinesReconciled uint64 // lines whose CRC+parity were re-established
	AsyncScrubChecks     uint64 // clean lines verified by the scrub pass
	AsyncQuarantined     uint64 // detected-corrupt lines parity could not repair
	// AsyncWindowCyc/AsyncWindowLines accumulate the realized vulnerability
	// window: for every reconciled line, the cycles between its first
	// dirtying and the reconcile; their ratio is the mean window.
	AsyncWindowCyc   uint64
	AsyncWindowLines uint64
}

// AddCache records one access at a cache level with its energy.
func (s *Stats) AddCache(l Level, hit bool, pj float64) {
	if hit {
		s.Cache[l].Hits++
	} else {
		s.Cache[l].Misses++
	}
	s.EnergyPJ += pj
}

// AddNVM records one NVM line access. red marks redundancy-information
// accesses.
func (s *Stats) AddNVM(write, red bool, pj float64) {
	switch {
	case write && red:
		s.NVM.RedWrites++
	case write:
		s.NVM.DataWrites++
	case red:
		s.NVM.RedReads++
	default:
		s.NVM.DataReads++
	}
	s.EnergyPJ += pj
}

// AddDRAM records one DRAM line access.
func (s *Stats) AddDRAM(write bool, pj float64) {
	if write {
		s.DRAMWrites++
	} else {
		s.DRAMReads++
	}
	s.EnergyPJ += pj
}

// CacheTotal is the total accesses across L1, L2, LLC, and the on-controller
// cache, the quantity plotted in Fig. 8(d,h,l,p,t).
func (s *Stats) CacheTotal() uint64 {
	var t uint64
	for i := Level(0); i < numLevels; i++ {
		t += s.Cache[i].Total()
	}
	return t
}

// Reset zeroes all counters; the harness calls it after workload setup so
// the fixed-work region alone is measured.
func (s *Stats) Reset() { *s = Stats{} }

// Clone returns a copy of the current counters.
func (s *Stats) Clone() Stats { return *s }

// Delta returns the per-field difference s - prev. Counters are cumulative,
// so for two snapshots of the same run the delta is the activity between
// them; the epoch sampler (internal/obs) builds its time series from it.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Cycles -= prev.Cycles
	for i := range d.Cache {
		d.Cache[i].Hits -= prev.Cache[i].Hits
		d.Cache[i].Misses -= prev.Cache[i].Misses
	}
	d.NVM.DataReads -= prev.NVM.DataReads
	d.NVM.DataWrites -= prev.NVM.DataWrites
	d.NVM.RedReads -= prev.NVM.RedReads
	d.NVM.RedWrites -= prev.NVM.RedWrites
	d.DRAMReads -= prev.DRAMReads
	d.DRAMWrites -= prev.DRAMWrites
	d.EnergyPJ -= prev.EnergyPJ
	d.CorruptionsDetected -= prev.CorruptionsDetected
	d.Recoveries -= prev.Recoveries
	d.ECCErrors -= prev.ECCErrors
	d.ComputeCycles -= prev.ComputeCycles
	d.LoadStallCyc -= prev.LoadStallCyc
	d.StoreIssueCyc -= prev.StoreIssueCyc
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.VerifyExtraCyc -= prev.VerifyExtraCyc
	d.Writebacks -= prev.Writebacks
	d.Fills -= prev.Fills
	d.DiffStashes -= prev.DiffStashes
	d.DiffEvictions -= prev.DiffEvictions
	d.RedInvalidations -= prev.RedInvalidations
	d.UpperInvalidations -= prev.UpperInvalidations
	d.AsyncEpochs -= prev.AsyncEpochs
	d.AsyncPagesReconciled -= prev.AsyncPagesReconciled
	d.AsyncLinesReconciled -= prev.AsyncLinesReconciled
	d.AsyncScrubChecks -= prev.AsyncScrubChecks
	d.AsyncQuarantined -= prev.AsyncQuarantined
	d.AsyncWindowCyc -= prev.AsyncWindowCyc
	d.AsyncWindowLines -= prev.AsyncWindowLines
	return d
}

// Add returns the per-field sum s + o, the inverse of Delta. Summing a
// sampled series' deltas reconstructs the run's aggregate counters.
func (s Stats) Add(o Stats) Stats {
	r := s
	r.Cycles += o.Cycles
	for i := range r.Cache {
		r.Cache[i].Hits += o.Cache[i].Hits
		r.Cache[i].Misses += o.Cache[i].Misses
	}
	r.NVM.DataReads += o.NVM.DataReads
	r.NVM.DataWrites += o.NVM.DataWrites
	r.NVM.RedReads += o.NVM.RedReads
	r.NVM.RedWrites += o.NVM.RedWrites
	r.DRAMReads += o.DRAMReads
	r.DRAMWrites += o.DRAMWrites
	r.EnergyPJ += o.EnergyPJ
	r.CorruptionsDetected += o.CorruptionsDetected
	r.Recoveries += o.Recoveries
	r.ECCErrors += o.ECCErrors
	r.ComputeCycles += o.ComputeCycles
	r.LoadStallCyc += o.LoadStallCyc
	r.StoreIssueCyc += o.StoreIssueCyc
	r.Loads += o.Loads
	r.Stores += o.Stores
	r.VerifyExtraCyc += o.VerifyExtraCyc
	r.Writebacks += o.Writebacks
	r.Fills += o.Fills
	r.DiffStashes += o.DiffStashes
	r.DiffEvictions += o.DiffEvictions
	r.RedInvalidations += o.RedInvalidations
	r.UpperInvalidations += o.UpperInvalidations
	r.AsyncEpochs += o.AsyncEpochs
	r.AsyncPagesReconciled += o.AsyncPagesReconciled
	r.AsyncLinesReconciled += o.AsyncLinesReconciled
	r.AsyncScrubChecks += o.AsyncScrubChecks
	r.AsyncQuarantined += o.AsyncQuarantined
	r.AsyncWindowCyc += o.AsyncWindowCyc
	r.AsyncWindowLines += o.AsyncWindowLines
	return r
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d energy=%.3gmJ", s.Cycles, s.EnergyPJ/1e9)
	fmt.Fprintf(&b, " nvm[data r/w=%d/%d red r/w=%d/%d]",
		s.NVM.DataReads, s.NVM.DataWrites, s.NVM.RedReads, s.NVM.RedWrites)
	for i := Level(0); i < numLevels; i++ {
		c := s.Cache[i]
		if c.Total() > 0 {
			fmt.Fprintf(&b, " %s=%d(h%d)", i, c.Total(), c.Hits)
		}
	}
	if s.ComputeCycles > 0 || s.LoadStallCyc > 0 || s.StoreIssueCyc > 0 {
		fmt.Fprintf(&b, " cyc[comp=%d load=%d store=%d]",
			s.ComputeCycles, s.LoadStallCyc, s.StoreIssueCyc)
	}
	if s.CorruptionsDetected > 0 || s.Recoveries > 0 || s.ECCErrors > 0 {
		fmt.Fprintf(&b, " corruptions=%d recoveries=%d ecc=%d",
			s.CorruptionsDetected, s.Recoveries, s.ECCErrors)
	}
	return b.String()
}
