package soak

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"tvarak/internal/fault"
	"tvarak/internal/param"
)

// LedgerVersion stamps every soak ledger line; lines with a different
// version are a hard error (a soak ledger is an audit artifact — silently
// reinterpreting an incompatible one would defeat its purpose).
const LedgerVersion = 1

// LedgerLine is one unit's outcome in the cumulative soak ledger. The
// line splits into two domains:
//
// Deterministic fields are pure functions of (Seed, Index) plus the
// repository's simulation determinism — a same-seed rerun reproduces them
// byte-for-byte, which is what `soakcheck -canon` projects out and the CI
// identity gate compares.
//
// Wall-clock fields (WallMS, Resumed, Killed, GateFindings) record what
// this particular run experienced — how long the unit took, whether the
// chaos worker was actually torn down mid-run, what the resource gates
// said — and are excluded from the canonical projection.
type LedgerLine struct {
	V     int    `json:"v"`
	Seed  int64  `json:"seed"` // master soak seed
	Index int    `json:"i"`    // position in the unit stream
	Key   string `json:"key"`  // Unit.Fingerprint(Seed)

	App      string `json:"app"`
	Design   string `json:"design"`
	Shards   int    `json:"shards"`
	N        int    `json:"n"`
	UnitSeed int64  `json:"unitSeed"`

	Armed       int    `json:"armed"`
	Fired       int    `json:"fired"`
	Detected    uint64 `json:"detected"`
	Recovered   uint64 `json:"recovered"`
	Silent      int    `json:"silent"`
	Undetected  int    `json:"undetected"`
	Unrecovered int    `json:"unrecovered"`
	AppPanics   int    `json:"appPanics,omitempty"`
	Failure     string `json:"failure,omitempty"`

	// Chaos marks the units the supervisor ran through a SIGKILL/resume
	// worker cycle; IdentityOK is that cycle's byte-identity verdict
	// (resumed report vs uninterrupted in-process reference).
	Chaos      bool  `json:"chaos,omitempty"`
	IdentityOK *bool `json:"identityOK,omitempty"`

	// Wall-clock domain.
	WallMS  int64 `json:"wallMS"`
	Resumed bool  `json:"resumed,omitempty"` // restored from a journal instead of simulated
	Killed  bool  `json:"killed,omitempty"`  // SIGKILL landed before the worker exited on its own
	// GateFindings is nil on lines where no resource-gate check ran, an
	// empty list for a clean check, and the finding strings otherwise —
	// deliberately not omitempty so a clean check stays distinguishable
	// from no check in the ledger.
	GateFindings []string `json:"gateFindings"`
}

// fromReport fills the deterministic outcome fields from a unit report.
func (l *LedgerLine) fromReport(rep *fault.UnitReport) {
	l.Armed = rep.Armed
	l.Fired = rep.Fired
	l.Detected = rep.Detections
	l.Recovered = rep.Recoveries
	l.Silent = rep.SilentCorruptions
	l.Undetected = rep.Undetected
	l.Unrecovered = rep.Unrecovered
	l.AppPanics = rep.AppPanics
	l.Failure = rep.Failure
}

// Canonical returns the line's deterministic projection: the wall-clock
// fields zeroed so that two same-seed runs — regardless of machine load,
// kill timing, or gate cadence luck — produce byte-identical encodings.
func (l LedgerLine) Canonical() LedgerLine {
	l.WallMS = 0
	l.Resumed = false
	l.Killed = false
	l.GateFindings = nil
	return l
}

// Ledger is the fsync'd append-only JSONL soak ledger: one line per
// finished unit, durable before the unit is acknowledged, so a killed
// soak run loses at most the line being written (the tolerant reader
// drops a torn tail). Safe for use by one process at a time.
type Ledger struct {
	mu sync.Mutex
	f  *os.File
}

// CreateLedger creates (or truncates) a soak ledger at path.
func CreateLedger(path string) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("soak: creating ledger: %w", err)
	}
	return &Ledger{f: f}, nil
}

// Append durably writes one line: marshalled, newline-terminated, fsync'd.
func (l *Ledger) Append(line LedgerLine) error {
	line.V = LedgerVersion
	data, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("soak: marshalling ledger line: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("soak: appending ledger line: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("soak: syncing ledger: %w", err)
	}
	return nil
}

// Close syncs and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReadLedger parses a soak ledger. Blank lines are skipped and a torn
// final line (the process was killed mid-append) is dropped; any other
// malformed or wrong-version line is a hard error.
func ReadLedger(r io.Reader) ([]LedgerLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var raw [][]byte
	for sc.Scan() {
		if line := sc.Bytes(); len(line) > 0 {
			raw = append(raw, append([]byte(nil), line...))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []LedgerLine
	for i, line := range raw {
		var l LedgerLine
		if err := json.Unmarshal(line, &l); err != nil {
			if i == len(raw)-1 {
				break // torn tail
			}
			return nil, fmt.Errorf("soak: bad ledger line %d: %w", i+1, err)
		}
		if l.V != LedgerVersion {
			return nil, fmt.Errorf("soak: ledger line %d has version %d, want %d", i+1, l.V, LedgerVersion)
		}
		out = append(out, l)
	}
	return out, nil
}

// Problem is one verdict-level violation found in a soak ledger.
type Problem struct {
	Index  int    `json:"i"`
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

func (p Problem) String() string {
	return fmt.Sprintf("unit %d (%s): %s", p.Index, p.Key, p.Reason)
}

// Check applies the soak acceptance bar to a ledger: any undetected
// corruption anywhere, any unrecovered fault on a TVARAK design, any unit
// failure, any kill/resume identity mismatch, and any resource-gate
// finding is a problem. A clean long ledger is the long-horizon
// confidence statement the ROADMAP's soak item asks for.
func Check(lines []LedgerLine) []Problem {
	var out []Problem
	add := func(l LedgerLine, format string, args ...any) {
		out = append(out, Problem{Index: l.Index, Key: l.Key, Reason: fmt.Sprintf(format, args...)})
	}
	for _, l := range lines {
		if l.Failure != "" {
			add(l, "unit failed: %s", l.Failure)
		}
		if l.Undetected > 0 {
			add(l, "%d undetected corruption(s)", l.Undetected)
		}
		if l.Design == param.Tvarak.String() && l.Unrecovered > 0 {
			add(l, "%d unrecovered fault(s) on a TVARAK design", l.Unrecovered)
		}
		if l.IdentityOK != nil && !*l.IdentityOK {
			add(l, "resumed report not byte-identical to the uninterrupted reference")
		}
		for _, g := range l.GateFindings {
			add(l, "resource gate: %s", g)
		}
	}
	return out
}

// Tally summarizes a ledger for rendering.
type Tally struct {
	Units      int
	ByDesign   map[string]int
	Chaos      int
	Killed     int
	Resumed    int
	Armed      int
	Fired      int
	Detected   uint64
	Recovered  uint64
	Silent     int
	WallMS     int64
	GateChecks int // lines carrying gate verdicts (clean or not)
}

// TallyLines folds a ledger into totals.
func TallyLines(lines []LedgerLine) Tally {
	t := Tally{ByDesign: map[string]int{}}
	for _, l := range lines {
		t.Units++
		t.ByDesign[l.Design]++
		if l.Chaos {
			t.Chaos++
		}
		if l.Killed {
			t.Killed++
		}
		if l.Resumed {
			t.Resumed++
		}
		t.Armed += l.Armed
		t.Fired += l.Fired
		t.Detected += l.Detected
		t.Recovered += l.Recovered
		t.Silent += l.Silent
		t.WallMS += l.WallMS
		if l.GateFindings != nil {
			t.GateChecks++
		}
	}
	return t
}
