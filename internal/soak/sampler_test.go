package soak

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"tvarak/internal/fault"
	"tvarak/internal/param"
)

// TestSamplerSeededReplay is the sampler's determinism contract: the unit
// stream is a pure function of (master seed, index), so the same seed
// yields an identical stream across runs, across enumeration orders, and
// across any -parallel setting (parallelism changes execution, never
// sampling).
func TestSamplerSeededReplay(t *testing.T) {
	const master, n = 20260808, 256

	stream := func() []Unit {
		out := make([]Unit, n)
		for i := range out {
			out[i] = UnitAt(master, i)
		}
		return out
	}
	first := stream()

	t.Run("same seed, same stream", func(t *testing.T) {
		if again := stream(); !reflect.DeepEqual(first, again) {
			t.Fatal("re-enumerating the same seed changed the stream")
		}
	})

	t.Run("enumeration order is irrelevant", func(t *testing.T) {
		perm := rand.New(rand.NewSource(1)).Perm(n)
		got := make([]Unit, n)
		for _, i := range perm {
			got[i] = UnitAt(master, i)
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatal("out-of-order enumeration changed the stream")
		}
	})

	t.Run("concurrent enumeration is identical", func(t *testing.T) {
		for _, workers := range []int{2, 8} {
			got := make([]Unit, n)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < n; i += workers {
						got[i] = UnitAt(master, i)
					}
				}(w)
			}
			wg.Wait()
			if !reflect.DeepEqual(first, got) {
				t.Fatalf("stream differs when sampled by %d goroutines", workers)
			}
		}
	})

	t.Run("global rand state is not an input", func(t *testing.T) {
		rand.Int() // perturb the process-global source
		got := make([]Unit, n)
		for i := n - 1; i >= 0; i-- {
			rand.Int()
			got[i] = UnitAt(master, i)
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatal("sampler reads process-global randomness")
		}
	})

	t.Run("different seeds diverge", func(t *testing.T) {
		same := 0
		for i := 0; i < n; i++ {
			if UnitAt(master+1, i).UnitParams == first[i].UnitParams {
				same++
			}
		}
		if same > n/10 {
			t.Fatalf("seeds %d and %d collide on %d/%d units", master, master+1, same, n)
		}
	})
}

// TestSamplerCoverage checks the stream actually exercises the space: all
// apps and all five designs appear, TVARAK is the most-sampled design (it
// carries the hard detect-and-recover obligations), and every derived
// parameter stays inside its valid range.
func TestSamplerCoverage(t *testing.T) {
	const master, n = 7, 512
	apps := map[string]int{}
	designs := map[param.Design]int{}
	for i := 0; i < n; i++ {
		u := UnitAt(master, i)
		apps[u.App]++
		designs[u.Design]++
		if u.Index != i {
			t.Fatalf("unit %d carries index %d", i, u.Index)
		}
		if u.N < 6 || u.N > 13 {
			t.Fatalf("unit %d: injection count %d outside [6,13]", i, u.N)
		}
		if u.Seed < 0 {
			t.Fatalf("unit %d: negative unit seed %d", i, u.Seed)
		}
		switch u.Shards {
		case 0, 2, 3:
		default:
			t.Fatalf("unit %d: unexpected shards %d", i, u.Shards)
		}
	}
	for _, name := range fault.AppNames() {
		if apps[name] == 0 {
			t.Errorf("app %s never sampled in %d units", name, n)
		}
	}
	all := []param.Design{param.Baseline, param.Tvarak, param.TxBObjectCsums, param.TxBPageCsums, param.Vilamb}
	for _, d := range all {
		if designs[d] == 0 {
			t.Errorf("design %s never sampled in %d units", d, n)
		}
		if d != param.Tvarak && designs[d] >= designs[param.Tvarak] {
			t.Errorf("design %s sampled %d times, >= Tvarak's %d — Tvarak should dominate",
				d, designs[d], designs[param.Tvarak])
		}
	}
}

// TestSamplerFingerprintIdentity: fingerprints must be unique per (seed,
// index) — they key the soak journal, so a collision would resurrect the
// wrong unit's report on resume.
func TestSamplerFingerprintIdentity(t *testing.T) {
	seen := map[string]bool{}
	for _, master := range []int64{1, 2} {
		for i := 0; i < 64; i++ {
			fp := UnitAt(master, i).Fingerprint(master)
			if seen[fp] {
				t.Fatalf("duplicate fingerprint %q", fp)
			}
			seen[fp] = true
		}
	}
}
