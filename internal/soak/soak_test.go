package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/live"
)

// TestSoakWorkerHelper is not a test: it is the chaos worker child the
// end-to-end tests re-exec their own test binary into (the classic
// helper-process pattern). Guarded by an env var so a plain `go test`
// skips it.
func TestSoakWorkerHelper(t *testing.T) {
	if os.Getenv("TVARAK_SOAK_WORKER") != "1" {
		t.Skip("soak chaos worker helper (enabled via TVARAK_SOAK_WORKER=1)")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if len(args) != 7 {
		fmt.Fprintf(os.Stderr, "helper: want 7 args (master index journal out resume designs async), got %d\n", len(args))
		os.Exit(2)
	}
	master, err1 := strconv.ParseInt(args[0], 10, 64)
	index, err2 := strconv.Atoi(args[1])
	resume, err3 := strconv.ParseBool(args[4])
	opts, err4 := ParseSamplerArgs(args[5], args[6])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		fmt.Fprintln(os.Stderr, "helper: bad args:", args)
		os.Exit(2)
	}
	if err := RunWorker(os.Stdout, master, index, args[2], args[3], resume, opts); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerCmd re-execs this test binary into the helper above.
func workerCmd(t *testing.T) []string {
	t.Setenv("TVARAK_SOAK_WORKER", "1")
	return []string{os.Args[0], "-test.run=TestSoakWorkerHelper", "--"}
}

// writeOpsLedger fabricates a resource ledger with the given goroutine
// trajectory (flat heap and throughput), for deterministic gate verdicts.
func writeOpsLedger(t *testing.T, path string, goroutines []int) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, g := range goroutines {
		if err := enc.Encode(live.ResourceSample{
			UnixMS: int64(1000 * i), HeapAlloc: 1 << 20, Goroutines: g, AccessesPerSec: 100,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readLedgerFile(t *testing.T, path string) []LedgerLine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines, err := ReadLedger(f)
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSoakEndToEnd drives the full loop: 6 units, chaos on every 3rd
// (SIGKILL/resume byte-identity through a real child process), a clean
// resource gate at unit 4, and a same-seed rerun whose canonical ledger
// projection must be byte-identical.
func TestSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	ops := filepath.Join(dir, "ops.jsonl")
	writeOpsLedger(t, ops, []int{10, 10, 10, 10, 10, 10, 10, 10, 10, 10})

	cfg := Config{
		Seed:          42,
		Units:         6,
		Parallel:      2,
		ChaosEvery:    3,
		KillAfter:     20 * time.Millisecond,
		WorkerCmd:     workerCmd(t),
		WorkDir:       dir,
		GateEvery:     4,
		OpsLedgerPath: ops,
		LedgerPath:    filepath.Join(dir, "soak.jsonl"),
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v (summary %+v)", err, sum)
	}
	if sum.Units != 6 || sum.Chaos != 2 || sum.IdentityMismatches != 0 || len(sum.Problems) != 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.GateChecks != 1 {
		t.Fatalf("gate ran %d times, want 1: %+v", sum.GateChecks, sum)
	}

	lines := readLedgerFile(t, cfg.LedgerPath)
	if len(lines) != 6 {
		t.Fatalf("ledger has %d lines, want 6", len(lines))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d carries index %d — ledger not in stream order", i, l.Index)
		}
		wantChaos := (i+1)%3 == 0
		if l.Chaos != wantChaos {
			t.Fatalf("line %d: chaos=%v, want %v", i, l.Chaos, wantChaos)
		}
		if wantChaos && (l.IdentityOK == nil || !*l.IdentityOK) {
			t.Fatalf("line %d: resumed chaos report not byte-identical", i)
		}
		if u := UnitAt(cfg.Seed, i); l.Key != u.Fingerprint(cfg.Seed) || l.App != u.App {
			t.Fatalf("line %d does not match the sampled unit", i)
		}
	}
	if gf := lines[3].GateFindings; gf == nil || len(gf) != 0 {
		t.Fatalf("line 3 gate verdict = %v, want clean check (empty list)", lines[3].GateFindings)
	}
	if problems := Check(lines); len(problems) != 0 {
		t.Fatalf("soakcheck verdict on a clean run: %v", problems)
	}

	// Same-seed rerun: the canonical projections must match byte-for-byte
	// even though kill timing and wall clocks differ.
	cfg2 := cfg
	cfg2.LedgerPath = filepath.Join(dir, "soak2.jsonl")
	if _, err := Run(cfg2); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	lines2 := readLedgerFile(t, cfg2.LedgerPath)
	if len(lines2) != len(lines) {
		t.Fatalf("rerun produced %d lines, want %d", len(lines2), len(lines))
	}
	for i := range lines {
		a, _ := json.Marshal(lines[i].Canonical())
		b, _ := json.Marshal(lines2[i].Canonical())
		if !bytes.Equal(a, b) {
			t.Fatalf("canonical line %d differs across same-seed runs:\n run1 %s\n run2 %s", i, a, b)
		}
	}
}

// TestWorkerJournalRestore exercises the chaos resume leg's restore path
// in-process: when the first leg journaled the finished unit before dying,
// the resume leg restores it (RestoredMarker) and emits identical bytes.
func TestWorkerJournalRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "w.journal")
	out := filepath.Join(dir, "w.json")

	var leg1, leg2 bytes.Buffer
	if err := RunWorker(&leg1, 42, 0, jpath, out, false, SamplerOptions{}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if err := RunWorker(&leg2, 42, 0, jpath, out, true, SamplerOptions{}); err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(leg1.String(), RestoredMarker) {
		t.Fatal("fresh leg claims it restored from a journal")
	}
	if !strings.Contains(leg2.String(), RestoredMarker) {
		t.Fatal("resume leg re-ran instead of restoring the journaled unit")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restored report differs from the original:\n %s\n %s", b1, b2)
	}
}

// TestSoakSupervisorResume: a supervisor journal carrying already-finished
// units restores them (Resumed) with deterministic outcomes intact.
func TestSoakSupervisorResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "soak.journal")

	run := func(journalNew bool, ledger string) []LedgerLine {
		var err error
		cfg := Config{
			Seed:       7,
			Units:      3,
			Parallel:   2,
			LedgerPath: filepath.Join(dir, ledger),
		}
		if journalNew {
			cfg.Journal, err = harness.NewJournal(jpath)
		} else {
			cfg.Journal, err = harness.OpenJournal(jpath)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer cfg.Journal.Close()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return readLedgerFile(t, cfg.LedgerPath)
	}

	first := run(true, "a.jsonl")
	second := run(false, "b.jsonl")
	for i := range second {
		if !second[i].Resumed {
			t.Errorf("line %d not restored from the supervisor journal", i)
		}
		a, _ := json.Marshal(first[i].Canonical())
		b, _ := json.Marshal(second[i].Canonical())
		if !bytes.Equal(a, b) {
			t.Errorf("restored line %d diverges from the original:\n %s\n %s", i, a, b)
		}
	}
}

// TestSoakGateFailure: a leaking ops ledger turns into a gate finding on
// the ledger line and a failing verdict.
func TestSoakGateFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	ops := filepath.Join(dir, "ops.jsonl")
	writeOpsLedger(t, ops, []int{8, 9, 11, 40, 80, 200, 400, 900}) // runaway goroutines

	cfg := Config{
		Seed:          11,
		Units:         4,
		Parallel:      2,
		GateEvery:     2,
		OpsLedgerPath: ops,
		LedgerPath:    filepath.Join(dir, "soak.jsonl"),
	}
	sum, err := Run(cfg)
	if !errors.Is(err, ErrProblems) {
		t.Fatalf("Run err = %v, want ErrProblems", err)
	}
	if sum == nil || len(sum.Problems) == 0 {
		t.Fatalf("no problems reported: %+v", sum)
	}
	lines := readLedgerFile(t, cfg.LedgerPath)
	var flagged bool
	for _, l := range lines {
		if len(l.GateFindings) > 0 {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("no ledger line carries the gate finding")
	}
	if problems := Check(lines); len(problems) == 0 {
		t.Fatal("soakcheck verdict missed the gate failure")
	}
}

// TestSoakDurationBound: with no unit bound, the deadline stops the run
// cleanly and the ledger is a contiguous prefix of the stream.
func TestSoakDurationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := Config{
		Seed:       3,
		Duration:   400 * time.Millisecond,
		Parallel:   2,
		LedgerPath: filepath.Join(dir, "soak.jsonl"),
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatalf("duration-bounded run: %v", err)
	}
	lines := readLedgerFile(t, cfg.LedgerPath)
	if len(lines) != sum.Units {
		t.Fatalf("summary says %d units, ledger has %d", sum.Units, len(lines))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("ledger is not a contiguous prefix: line %d has index %d", i, l.Index)
		}
	}
}

// TestSoakCancellation: user cancellation is an error, not a clean stop.
func TestSoakCancellation(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Seed:       5,
		Units:      8,
		Context:    ctx,
		LedgerPath: filepath.Join(dir, "soak.jsonl"),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestSoakConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Units: 1}); err == nil {
		t.Error("missing LedgerPath accepted")
	}
	if _, err := Run(Config{Seed: 1, LedgerPath: "x.jsonl"}); err == nil {
		t.Error("unbounded run accepted")
	}
	if _, err := Run(Config{Seed: 1, Units: 1, LedgerPath: "x.jsonl", ChaosEvery: 1}); err == nil {
		t.Error("chaos without WorkerCmd/WorkDir accepted")
	}
}
