package soak

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"tvarak/internal/fault"
	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/param"
)

// Config shapes one soak run.
type Config struct {
	// Seed is the master soak seed; the entire unit stream derives from it.
	Seed int64
	// Units bounds the stream length (0 = unbounded; then Duration must be
	// set). A bounded run is what CI reruns for ledger byte-identity.
	Units int
	// Duration is a wall-clock cap (0 = none). The run stops cleanly at
	// the deadline: the ledger keeps a contiguous prefix of the stream.
	Duration time.Duration
	// Parallel bounds concurrently-running units (0 = NumCPU).
	Parallel int
	// Designs restricts the sampled design rotation (empty = all designs;
	// see SamplerOptions.Designs).
	Designs []param.Design
	// Async, when non-nil, pins every Vilamb unit's async configuration
	// instead of rotating it through the sampler's epoch/granularity axes.
	Async *param.AsyncConfig
	// ChaosEvery routes every ChaosEvery-th unit through a SIGKILL/resume
	// worker cycle with a byte-identity check (0 disables chaos).
	ChaosEvery int
	// KillAfter is how long after the worker's start marker the supervisor
	// waits before SIGKILLing it. Zero selects 30ms — inside a typical
	// unit's runtime, so the kill usually lands mid-simulation.
	KillAfter time.Duration
	// WorkerCmd is the argv prefix re-exec'd as the chaos worker child
	// (the soak binary itself with its worker flag; tests pass their own
	// test binary). Required when ChaosEvery > 0, as is WorkDir.
	WorkerCmd []string
	// WorkDir holds per-unit chaos scratch files (journals, reports).
	WorkDir string
	// GateEvery runs the live resource gates once every GateEvery finished
	// units (0 disables). Gate verdicts attach to the ledger line they were
	// sampled at: an empty list when clean, the finding strings otherwise.
	GateEvery int
	// Gate is the resource-gate thresholds (zero value → defaults).
	Gate live.OpsCheck
	// OpsLedgerPath is the live ops resource ledger the gates analyze —
	// the file the run's own resource sampler appends to.
	OpsLedgerPath string
	// LedgerPath is where the soak ledger is written. Required.
	LedgerPath string
	// Journal, when non-nil, makes the supervisor itself crash-safe:
	// finished units are fsync'd under their soak fingerprint and a
	// reopened journal restores them instead of re-running.
	Journal *harness.Journal
	// Live, when non-nil, folds unit outcomes into the process-wide
	// telemetry counters (read-only with respect to results).
	Live *live.Telemetry
	// Context cancels the run cooperatively (distinct from the Duration
	// deadline: cancellation is an error, the deadline is a clean stop).
	Context context.Context
	// Progress, if non-nil, is called once per appended ledger line, in
	// stream order.
	Progress func(LedgerLine)
	// FailFast stops the run at the first problem instead of soldiering on
	// (CI wants the former, an overnight evidence-gathering run the latter).
	FailFast bool
}

// Summary is the run's aggregate outcome. Problems is the same verdict
// list soakcheck derives from the ledger.
type Summary struct {
	Units              int
	Chaos              int
	Killed             int
	Resumed            int
	IdentityMismatches int
	Undetected         int
	Unrecovered        int
	Failures           int
	GateChecks         int
	Problems           []Problem
}

// ErrProblems is returned (wrapped) when the run itself completed but the
// ledger verdict found problems.
var ErrProblems = errors.New("soak: run found problems")

// samplerOpts is the sampler view of the config — the supervisor derives
// units under it and ships the same options to every chaos worker child.
func (cfg Config) samplerOpts() SamplerOptions {
	return SamplerOptions{Designs: cfg.Designs, Async: cfg.Async}
}

// Run executes the soak loop: sample units from the seeded stream, run
// them journaled on a worker pool with the fault oracle armed, cycle every
// ChaosEvery-th unit through SIGKILL/resume byte-identity, gate resources
// every GateEvery units, and append one fsync'd ledger line per unit in
// stream order. It returns a non-nil Summary whenever the ledger was
// created, even alongside an error.
func Run(cfg Config) (*Summary, error) {
	if cfg.LedgerPath == "" {
		return nil, errors.New("soak: LedgerPath required")
	}
	if cfg.Units <= 0 && cfg.Duration <= 0 {
		return nil, errors.New("soak: need a Units or Duration bound")
	}
	if cfg.ChaosEvery > 0 && (len(cfg.WorkerCmd) == 0 || cfg.WorkDir == "") {
		return nil, errors.New("soak: chaos needs WorkerCmd and WorkDir")
	}
	if cfg.KillAfter <= 0 {
		cfg.KillAfter = 30 * time.Millisecond
	}
	if (cfg.Gate == live.OpsCheck{}) {
		cfg.Gate = live.DefaultOpsCheck()
	}

	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	runCtx, cancel := parent, func() {}
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(parent, cfg.Duration)
	}
	defer cancel()

	ledger, err := CreateLedger(cfg.LedgerPath)
	if err != nil {
		return nil, err
	}
	defer ledger.Close()

	sum := &Summary{}
	pool := harness.Runner{Workers: cfg.Parallel, Context: runCtx}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Batch granularity: big enough to keep the pool saturated, small
	// enough that the duration deadline and gate cadence stay responsive.
	batch := workers * 2
	if batch < 4 {
		batch = 4
	} else if batch > 32 {
		batch = 32
	}

	appendLine := func(line LedgerLine) error {
		if err := ledger.Append(line); err != nil {
			return err
		}
		sum.Units++
		if line.Chaos {
			sum.Chaos++
		}
		if line.Killed {
			sum.Killed++
		}
		if line.Resumed {
			sum.Resumed++
		}
		if line.IdentityOK != nil && !*line.IdentityOK {
			sum.IdentityMismatches++
		}
		sum.Undetected += line.Undetected
		sum.Unrecovered += line.Unrecovered
		if line.Failure != "" {
			sum.Failures++
		}
		if line.GateFindings != nil {
			sum.GateChecks++
		}
		sum.Problems = append(sum.Problems, Check([]LedgerLine{line})...)
		if cfg.Progress != nil {
			cfg.Progress(line)
		}
		return nil
	}

	lastGate := 0
	for start := 0; ; start += batch {
		if cfg.Units > 0 && start >= cfg.Units {
			break
		}
		if runCtx.Err() != nil {
			break
		}
		n := batch
		if cfg.Units > 0 && start+n > cfg.Units {
			n = cfg.Units - start
		}

		lines := make([]*LedgerLine, n)
		poolErr := pool.ForEach(n, func(k int) error {
			line, err := runOne(runCtx, cfg, start+k)
			if err != nil {
				return err
			}
			lines[k] = line
			return nil
		})

		// Keep only the contiguous prefix so the ledger is always an exact
		// [0, Units) prefix of the stream — the invariant the same-seed
		// rerun identity gate depends on.
		complete := 0
		for complete < n && lines[complete] != nil {
			complete++
		}

		// Resource gate: sampled at batch granularity, attached to the last
		// line it covers before that line is appended.
		if cfg.GateEvery > 0 && cfg.OpsLedgerPath != "" && complete > 0 &&
			start+complete-lastGate >= cfg.GateEvery {
			findings, _, gerr := cfg.Gate.AnalyzeLedgerFile(cfg.OpsLedgerPath)
			if gerr != nil {
				return sum, fmt.Errorf("soak: resource gate: %w", gerr)
			}
			gf := make([]string, 0, len(findings))
			for _, f := range findings {
				gf = append(gf, f.Check+": "+f.Detail)
			}
			lines[complete-1].GateFindings = gf
			lastGate = start + complete
		}

		for k := 0; k < complete; k++ {
			if err := appendLine(*lines[k]); err != nil {
				return sum, err
			}
		}

		if cfg.FailFast && len(sum.Problems) > 0 {
			return sum, fmt.Errorf("%w: %s", ErrProblems, sum.Problems[0])
		}
		if poolErr != nil {
			// Deadline expiry is the clean duration-bound stop; everything
			// else (user cancellation, worker failure) is a real error.
			if errors.Is(poolErr, context.DeadlineExceeded) && parent.Err() == nil {
				break
			}
			return sum, poolErr
		}
		if runCtx.Err() != nil && parent.Err() == nil {
			break // deadline hit between batches
		}
	}

	if parent.Err() != nil {
		return sum, context.Cause(parent)
	}
	if len(sum.Problems) > 0 {
		return sum, fmt.Errorf("%w: %d problem(s), first: %s",
			ErrProblems, len(sum.Problems), sum.Problems[0])
	}
	return sum, nil
}

// runOne produces the ledger line for stream unit index: journal-restore
// or simulate the reference report in-process, then — on chaos units —
// run the kill/resume worker cycle against the reference's bytes.
func runOne(ctx context.Context, cfg Config, index int) (*LedgerLine, error) {
	unit := UnitAtOpt(cfg.Seed, index, cfg.samplerOpts())
	fp := unit.Fingerprint(cfg.Seed)
	began := time.Now()

	line := &LedgerLine{
		Seed:     cfg.Seed,
		Index:    index,
		Key:      fp,
		App:      unit.App,
		Design:   unit.Design.String(),
		Shards:   unit.Shards,
		N:        unit.N,
		UnitSeed: unit.Seed,
	}

	var rep fault.UnitReport
	if cfg.Journal != nil && cfg.Journal.Lookup(journalKind, fp, &rep) {
		line.Resumed = true
		if cfg.Live != nil {
			cfg.Live.Runner.Restored.AddAt(index, 1)
		}
	} else {
		if cfg.Live != nil {
			cfg.Live.Runner.Started.AddAt(index, 1)
		}
		r, err := fault.RunSingleUnit(ctx, unit.UnitParams)
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			// Belt and braces on top of the fault layer's own voiding: a
			// unit that observed a firing deadline must never reach the
			// journal or the ledger, however far it got.
			return nil, context.Cause(ctx)
		}
		rep = *r
		if cfg.Journal != nil {
			if err := cfg.Journal.Record(journalKind, fp, &rep); err != nil {
				return nil, err
			}
		}
		if cfg.Live != nil {
			cfg.Live.Fault.Armed.AddAt(index, uint64(rep.Armed))
			cfg.Live.Fault.Detected.AddAt(index, rep.Detections)
			cfg.Live.Fault.Recovered.AddAt(index, rep.Recoveries)
			if rep.Failure != "" {
				cfg.Live.Runner.Failed.AddAt(index, 1)
			} else {
				cfg.Live.Runner.Finished.AddAt(index, 1)
			}
		}
	}
	line.fromReport(&rep)

	if cfg.ChaosEvery > 0 && (index+1)%cfg.ChaosEvery == 0 {
		reference, err := json.Marshal(&rep)
		if err != nil {
			return nil, err
		}
		cr, err := runChaos(ctx, cfg, unit, reference)
		if err != nil {
			return nil, err
		}
		line.Chaos = true
		ok := cr.IdentityOK
		line.IdentityOK = &ok
		line.Killed = cr.Killed
		line.Resumed = line.Resumed || cr.Resumed
	}

	line.WallMS = time.Since(began).Milliseconds()
	return line, nil
}
