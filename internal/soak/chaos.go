package soak

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"tvarak/internal/fault"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

// Worker protocol markers, one per stdout line. The supervisor arms its
// SIGKILL only after StartMarker — killing earlier could tear process
// setup instead of the unit itself — and learns from RestoredMarker
// whether the resume leg actually hit the journal.
const (
	StartMarker    = "SOAK-WORKER-START"
	RestoredMarker = "SOAK-WORKER-RESTORED"
	DoneMarker     = "SOAK-WORKER-DONE"
)

// journalKind is the journal record kind for soak units.
const journalKind = "soak-unit"

// EncodeSamplerArgs flattens sampler options into the two worker-protocol
// argv tokens (designs CSV, async pin label); "-" stands for "unset" so
// the positional protocol never carries an empty token.
func EncodeSamplerArgs(opts SamplerOptions) (designs, async string) {
	designs, async = "-", "-"
	if len(opts.Designs) > 0 {
		var names []string
		for _, d := range opts.Designs {
			names = append(names, d.String())
		}
		designs = strings.Join(names, ",")
	}
	if opts.Async != nil {
		async = opts.Async.Label()
	}
	return designs, async
}

// ParseSamplerArgs inverts EncodeSamplerArgs on the worker side.
func ParseSamplerArgs(designs, async string) (SamplerOptions, error) {
	var opts SamplerOptions
	if designs != "-" && designs != "" {
		for _, name := range strings.Split(designs, ",") {
			found := false
			for _, d := range param.AllDesigns() {
				if strings.EqualFold(name, d.String()) {
					opts.Designs = append(opts.Designs, d)
					found = true
					break
				}
			}
			if !found {
				return opts, fmt.Errorf("soak: unknown design %q in worker args", name)
			}
		}
	}
	if async != "-" && async != "" {
		a, err := param.ParseAsyncLabel(async)
		if err != nil {
			return opts, err
		}
		opts.Async = &a
	}
	return opts, nil
}

// RunWorker is the chaos worker child's entry point: derive soak unit
// (master, index) under opts, run it journaled at journalPath, and
// atomically write the unit report's JSON encoding to outPath. With
// resume=true an existing journal — possibly SIGKILL-torn — is reopened
// and a completed unit is restored instead of re-run; otherwise the
// journal is started fresh. cmd/tvarak-soak dispatches here in
// -chaos-worker mode, and the test suite re-execs its own binary into it.
// opts must match the supervisor's (they arrive through the argv protocol
// via EncodeSamplerArgs), or the derived unit — and its fingerprint —
// would diverge.
//
// The protocol markers go to out (the supervisor watches the child's
// stdout): StartMarker before any unit work so a kill can land mid-unit,
// RestoredMarker if the journal satisfied the unit, DoneMarker only after
// the report file is durably in place.
func RunWorker(out io.Writer, master int64, index int, journalPath, outPath string, resume bool, opts SamplerOptions) error {
	unit := UnitAtOpt(master, index, opts)
	fp := unit.Fingerprint(master)

	var (
		j   *harness.Journal
		err error
	)
	if resume {
		j, err = harness.OpenJournal(journalPath)
	} else {
		j, err = harness.NewJournal(journalPath)
	}
	if err != nil {
		return err
	}
	defer j.Close()

	fmt.Fprintln(out, StartMarker)

	var rep fault.UnitReport
	if j.Lookup(journalKind, fp, &rep) {
		fmt.Fprintln(out, RestoredMarker)
	} else {
		r, err := fault.RunSingleUnit(context.Background(), unit.UnitParams)
		if err != nil {
			return fmt.Errorf("soak: worker unit %d: %w", index, err)
		}
		rep = *r
		if err := j.Record(journalKind, fp, &rep); err != nil {
			return err
		}
	}

	data, err := json.Marshal(&rep)
	if err != nil {
		return fmt.Errorf("soak: worker marshalling report: %w", err)
	}
	if err := atomicWrite(outPath, data); err != nil {
		return err
	}
	fmt.Fprintln(out, DoneMarker)
	return nil
}

// atomicWrite lands data at path via tmp+fsync+rename, so a kill during
// the write never leaves a half-written report for the supervisor to read.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// chaosResult is what one SIGKILL/resume cycle reports back to the soak
// loop for the unit's ledger line.
type chaosResult struct {
	IdentityOK bool // resumed report bytes == uninterrupted reference bytes
	Killed     bool // the SIGKILL landed before the first leg exited
	Resumed    bool // the second leg restored the unit from the torn journal
}

// runChaos runs one unit through the full chaos cycle: spawn a worker
// child, SIGKILL it shortly after its start marker, re-spawn it against
// the same (now possibly torn) journal with resume on, and require the
// resumed report to be byte-identical to reference — the uninterrupted
// in-process run's encoding. Whether the kill lands mid-unit or after the
// first leg already finished, identity must hold: the journal either
// restores the completed record or the re-run is deterministic.
func runChaos(ctx context.Context, cfg Config, unit Unit, reference []byte) (chaosResult, error) {
	var res chaosResult
	dir := cfg.WorkDir
	journalPath := filepath.Join(dir, fmt.Sprintf("chaos-%d.journal", unit.Index))
	outPath := filepath.Join(dir, fmt.Sprintf("chaos-%d.json", unit.Index))

	// Leg 1: fresh worker, killed KillAfter after it reports started.
	leg1, err := spawnWorker(ctx, cfg, unit, journalPath, outPath, false)
	if err != nil {
		return res, err
	}
	select {
	case <-leg1.started:
	case err := <-leg1.done:
		return res, fmt.Errorf("soak: chaos worker (unit %d) exited before start marker: %v", unit.Index, err)
	case <-ctx.Done():
		leg1.cmd.Process.Kill()
		<-leg1.done
		return res, context.Cause(ctx)
	}
	select {
	case <-time.After(cfg.KillAfter):
		if err := leg1.cmd.Process.Kill(); err == nil {
			res.Killed = true
		}
		<-leg1.done
	case err := <-leg1.done:
		// The worker beat the kill timer; a clean exit still exercises the
		// resume leg's restore path below.
		if err != nil {
			return res, fmt.Errorf("soak: chaos worker (unit %d) first leg failed: %v", unit.Index, err)
		}
	case <-ctx.Done():
		leg1.cmd.Process.Kill()
		<-leg1.done
		return res, context.Cause(ctx)
	}

	// Leg 2: resume against the torn journal; this one must succeed.
	leg2, err := spawnWorker(ctx, cfg, unit, journalPath, outPath, true)
	if err != nil {
		return res, err
	}
	select {
	case err := <-leg2.done:
		if err != nil {
			return res, fmt.Errorf("soak: chaos worker (unit %d) resume leg failed: %v", unit.Index, err)
		}
	case <-ctx.Done():
		leg2.cmd.Process.Kill()
		<-leg2.done
		return res, context.Cause(ctx)
	}
	res.Resumed = leg2.restored()

	got, err := os.ReadFile(outPath)
	if err != nil {
		return res, fmt.Errorf("soak: reading chaos report: %w", err)
	}
	res.IdentityOK = bytes.Equal(got, reference)
	return res, nil
}

// worker is one spawned chaos worker child plus its protocol state.
type worker struct {
	cmd      *exec.Cmd
	started  chan struct{} // closed when StartMarker is seen on stdout
	done     chan error    // receives the Wait result exactly once
	sawRest  chan struct{} // closed when RestoredMarker is seen
	restored func() bool
}

// spawnWorker launches cfg.WorkerCmd with the positional chaos-protocol
// arguments appended and begins scanning its stdout for markers.
func spawnWorker(ctx context.Context, cfg Config, unit Unit, journalPath, outPath string, resume bool) (*worker, error) {
	designs, async := EncodeSamplerArgs(cfg.samplerOpts())
	args := append(append([]string(nil), cfg.WorkerCmd[1:]...),
		fmt.Sprint(cfg.Seed), fmt.Sprint(unit.Index), journalPath, outPath, fmt.Sprint(resume),
		designs, async)
	cmd := exec.Command(cfg.WorkerCmd[0], args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("soak: spawning chaos worker: %w", err)
	}
	w := &worker{
		cmd:     cmd,
		started: make(chan struct{}),
		done:    make(chan error, 1),
		sawRest: make(chan struct{}),
	}
	w.restored = func() bool {
		select {
		case <-w.sawRest:
			return true
		default:
			return false
		}
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		startSeen, restSeen := false, false
		for sc.Scan() {
			switch sc.Text() {
			case StartMarker:
				if !startSeen {
					startSeen = true
					close(w.started)
				}
			case RestoredMarker:
				if !restSeen {
					restSeen = true
					close(w.sawRest)
				}
			}
		}
		w.done <- cmd.Wait()
	}()
	return w, nil
}
