// Package soak composes the repository's long-horizon confidence pieces —
// seeded fault campaigns with the shadow oracle (internal/fault), the
// crash-safe journal (internal/harness), and the live resource gates
// (internal/live) — into one continuous chaos-testing loop: an endless,
// deterministically-sampled stream of (app × design × shards × fault-plan)
// units, periodic SIGKILL/resume cycles through a worker child process
// with byte-identity checks, and a cumulative fsync'd JSONL ledger that
// tools/soakcheck turns into a verdict. A regression that only manifests
// after hours — a leaked goroutine, heap creep, a rare fault-schedule
// interleaving, a resume path that diverges — is exactly what this loop
// exists to catch early (see DESIGN.md §11).
package soak

import (
	"fmt"

	"tvarak/internal/fault"
	"tvarak/internal/param"
)

// Unit is one sampled soak unit: the stream index plus the fully-derived
// fault-campaign unit parameters. Units are a pure function of
// (master seed, index) — no global RNG, no clock — so any unit can be
// replayed in isolation (in-process, in a worker child, or by hand from a
// ledger line) and the stream enumerates identically at any parallelism.
type Unit struct {
	Index int
	fault.UnitParams
}

// Fingerprint is the journal/ledger identity of the unit within a soak
// run: master seed, stream index, and the unit's own parameters.
func (u Unit) Fingerprint(master int64) string {
	return fmt.Sprintf("soak|seed=%d|i=%d|%s", master, u.Index, u.Key())
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche function good
// enough to decorrelate adjacent indices into independent-looking draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampler axes. Tvarak is deliberately over-weighted: it is the design
// with hard detect-and-recover obligations, so most soak time should be
// spent where a miss is a failure. The rest of the axis keeps the
// baseline-class contrast (injections must be oracle-confirmed silent)
// and the time-dependent Vilamb/TxB software schemes in rotation.
var (
	samplerDesigns = []param.Design{
		param.Tvarak, param.Baseline, param.Tvarak, param.Vilamb,
		param.Tvarak, param.TxBObjectCsums, param.TxBPageCsums, param.Baseline,
	}
	samplerShards = []int{0, 0, 2, 3}
)

// UnitAt derives soak unit index of the stream seeded by master. It is
// pure: same (master, index) — same unit, on any machine, in any process,
// regardless of what other indices were sampled or in what order.
func UnitAt(master int64, index int) Unit {
	base := splitmix64(splitmix64(uint64(master)) ^ splitmix64(uint64(index)*0x9e3779b97f4a7c15))
	draw := func(slot uint64) uint64 { return splitmix64(base + slot) }

	apps := fault.AppNames()
	p := fault.UnitParams{
		App:    apps[draw(0)%uint64(len(apps))],
		Design: samplerDesigns[draw(1)%uint64(len(samplerDesigns))],
		Shards: samplerShards[draw(2)%uint64(len(samplerShards))],
		// 6..13 injections: several rounds' worth, small enough that one
		// unit stays a sub-second replay target.
		N:    int(6 + draw(3)%8),
		Seed: int64(draw(4) &^ (1 << 63)), // non-negative, full 63-bit range
	}
	return Unit{Index: index, UnitParams: p}
}
