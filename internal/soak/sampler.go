// Package soak composes the repository's long-horizon confidence pieces —
// seeded fault campaigns with the shadow oracle (internal/fault), the
// crash-safe journal (internal/harness), and the live resource gates
// (internal/live) — into one continuous chaos-testing loop: an endless,
// deterministically-sampled stream of (app × design × shards × fault-plan)
// units, periodic SIGKILL/resume cycles through a worker child process
// with byte-identity checks, and a cumulative fsync'd JSONL ledger that
// tools/soakcheck turns into a verdict. A regression that only manifests
// after hours — a leaked goroutine, heap creep, a rare fault-schedule
// interleaving, a resume path that diverges — is exactly what this loop
// exists to catch early (see DESIGN.md §11).
package soak

import (
	"fmt"

	"tvarak/internal/fault"
	"tvarak/internal/param"
)

// Unit is one sampled soak unit: the stream index plus the fully-derived
// fault-campaign unit parameters. Units are a pure function of
// (master seed, index) — no global RNG, no clock — so any unit can be
// replayed in isolation (in-process, in a worker child, or by hand from a
// ledger line) and the stream enumerates identically at any parallelism.
type Unit struct {
	Index int
	fault.UnitParams
}

// Fingerprint is the journal/ledger identity of the unit within a soak
// run: master seed, stream index, and the unit's own parameters.
func (u Unit) Fingerprint(master int64) string {
	return fmt.Sprintf("soak|seed=%d|i=%d|%s", master, u.Index, u.Key())
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche function good
// enough to decorrelate adjacent indices into independent-looking draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampler axes. Tvarak is deliberately over-weighted: it is the design
// with hard detect-and-recover obligations, so most soak time should be
// spent where a miss is a failure. The rest of the axis keeps the
// baseline-class contrast (injections must be oracle-confirmed silent)
// and the time-dependent Vilamb/TxB software schemes in rotation.
var (
	samplerDesigns = []param.Design{
		param.Tvarak, param.Baseline, param.Tvarak, param.Vilamb,
		param.Tvarak, param.TxBObjectCsums, param.TxBPageCsums, param.Baseline,
	}
	samplerShards = []int{0, 0, 2, 3}
	// Async-family rotation for Vilamb draws: epoch 0 keeps the classic
	// single-point sketch (identical fingerprints to the pre-family
	// stream) in rotation alongside the swept epochs and granularities.
	samplerEpochs = []uint64{0, 2270, 22700, 227000}
	samplerGrans  = []param.DirtyGran{param.GranPage, param.GranLine, param.GranRange}
)

// SamplerOptions pins axes of the soak stream. The zero value is the full
// default stream. Both the supervisor and the chaos worker child must
// derive units from the same options — they travel across the re-exec
// boundary via EncodeSamplerArgs/ParseSamplerArgs.
type SamplerOptions struct {
	// Designs restricts the design rotation to this set (preserving the
	// default rotation's relative weights). Empty = all designs.
	Designs []param.Design
	// Async, when non-nil, pins every Vilamb unit's async configuration
	// instead of rotating it through the sampler's epoch/granularity axes.
	Async *param.AsyncConfig
}

// designRotation is the (weight-preserving) design axis under opts.
func (o SamplerOptions) designRotation() []param.Design {
	if len(o.Designs) == 0 {
		return samplerDesigns
	}
	var rot []param.Design
	for _, d := range samplerDesigns {
		for _, want := range o.Designs {
			if d == want {
				rot = append(rot, d)
				break
			}
		}
	}
	if len(rot) == 0 {
		// Pinned designs outside the default rotation (or an all-filtered
		// set): rotate the pinned list directly.
		rot = o.Designs
	}
	return rot
}

// UnitAt derives soak unit index of the default stream seeded by master.
func UnitAt(master int64, index int) Unit {
	return UnitAtOpt(master, index, SamplerOptions{})
}

// UnitAtOpt derives soak unit index of the stream seeded by master under
// the given sampler options. It is pure: same (master, index, opts) — same
// unit, on any machine, in any process, regardless of what other indices
// were sampled or in what order.
func UnitAtOpt(master int64, index int, opts SamplerOptions) Unit {
	base := splitmix64(splitmix64(uint64(master)) ^ splitmix64(uint64(index)*0x9e3779b97f4a7c15))
	draw := func(slot uint64) uint64 { return splitmix64(base + slot) }

	apps := fault.AppNames()
	rot := opts.designRotation()
	p := fault.UnitParams{
		App:    apps[draw(0)%uint64(len(apps))],
		Design: rot[draw(1)%uint64(len(rot))],
		Shards: samplerShards[draw(2)%uint64(len(samplerShards))],
		// 6..13 injections: several rounds' worth, small enough that one
		// unit stays a sub-second replay target.
		N:    int(6 + draw(3)%8),
		Seed: int64(draw(4) &^ (1 << 63)), // non-negative, full 63-bit range
	}
	if p.Design == param.Vilamb {
		a := param.AsyncConfig{
			EpochCyc:    samplerEpochs[draw(5)%uint64(len(samplerEpochs))],
			DirtyGran:   samplerGrans[draw(6)%uint64(len(samplerGrans))],
			Incremental: draw(7)%4 == 1,
		}
		if draw(7)%4 == 0 {
			a = param.BatteryPreset(a.EpochCyc)
		}
		if opts.Async != nil {
			a = *opts.Async
		}
		if !a.IsZero() {
			p.EpochCyc = a.EpochCyc
			p.DirtyGran = a.DirtyGran.String()
			p.Battery = a.Battery
			p.Incremental = a.Incremental
		}
	}
	return Unit{Index: index, UnitParams: p}
}
