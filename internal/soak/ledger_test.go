package soak

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func boolp(b bool) *bool { return &b }

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.jsonl")
	l, err := CreateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []LedgerLine{
		{Seed: 1, Index: 0, Key: "a", App: "redis", Design: "Tvarak", Armed: 3, Detected: 3, Recovered: 3, WallMS: 12},
		{Seed: 1, Index: 1, Key: "b", App: "ctree", Design: "Baseline", Chaos: true, IdentityOK: boolp(true), Killed: true, Resumed: true},
		{Seed: 1, Index: 2, Key: "c", App: "fio", Design: "Vilamb", GateFindings: []string{}},
	}
	for _, w := range want {
		if err := l.Append(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadLedger(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d lines, wrote %d", len(got), len(want))
	}
	for i := range want {
		want[i].V = LedgerVersion
		w, g := want[i], got[i]
		// Compare through JSON so the IdentityOK pointer compares by value.
		wb, _ := json.Marshal(w)
		gb, _ := json.Marshal(g)
		if !bytes.Equal(wb, gb) {
			t.Errorf("line %d round trip:\n got %s\nwant %s", i, gb, wb)
		}
		if i == 2 && g.GateFindings == nil {
			t.Error("clean gate check (empty list) read back as no-check (nil)")
		}
	}
}

func TestReadLedgerTornTailAndErrors(t *testing.T) {
	line := func(i int) string {
		b, _ := json.Marshal(LedgerLine{V: LedgerVersion, Seed: 9, Index: i, Key: "k"})
		return string(b)
	}
	cases := []struct {
		name  string
		data  string
		want  int
		isErr bool
	}{
		{"clean", line(0) + "\n" + line(1) + "\n", 2, false},
		{"torn final line dropped", line(0) + "\n" + line(1)[:20], 1, false},
		{"blank lines skipped", "\n" + line(0) + "\n\n" + line(1) + "\n\n", 2, false},
		{"mid-file garbage is fatal", line(0) + "\n{nope\n" + line(1) + "\n", 0, true},
		{"wrong version is fatal", strings.Replace(line(0), `"v":1`, `"v":2`, 1) + "\n", 0, true},
		{"empty", "", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadLedger(strings.NewReader(tc.data))
			if tc.isErr != (err != nil) {
				t.Fatalf("err = %v, want error: %v", err, tc.isErr)
			}
			if !tc.isErr && len(got) != tc.want {
				t.Fatalf("read %d lines, want %d", len(got), tc.want)
			}
		})
	}
}

func TestCheckVerdicts(t *testing.T) {
	cases := []struct {
		name string
		line LedgerLine
		want int // problems
	}{
		{"clean tvarak", LedgerLine{Design: "Tvarak", Armed: 5, Detected: 5, Recovered: 5}, 0},
		{"unit failure", LedgerLine{Design: "Tvarak", Failure: "boom"}, 1},
		{"undetected anywhere", LedgerLine{Design: "Baseline", Undetected: 2}, 1},
		{"unrecovered on tvarak", LedgerLine{Design: "Tvarak", Unrecovered: 1}, 1},
		{"unrecovered on baseline tolerated", LedgerLine{Design: "Baseline", Unrecovered: 1}, 0},
		{"unrecovered on vilamb tolerated", LedgerLine{Design: "Vilamb", Unrecovered: 1}, 0},
		{"identity mismatch", LedgerLine{Design: "Tvarak", Chaos: true, IdentityOK: boolp(false)}, 1},
		{"identity ok", LedgerLine{Design: "Tvarak", Chaos: true, IdentityOK: boolp(true)}, 0},
		{"clean gate check", LedgerLine{Design: "Tvarak", GateFindings: []string{}}, 0},
		{"gate findings", LedgerLine{Design: "Tvarak", GateFindings: []string{"heap-growth: x", "goroutine-leak: y"}}, 2},
		{"compound failure", LedgerLine{Design: "Tvarak", Failure: "boom", Undetected: 1, Unrecovered: 1, IdentityOK: boolp(false)}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Check([]LedgerLine{tc.line}); len(got) != tc.want {
				t.Fatalf("Check found %d problem(s) %v, want %d", len(got), got, tc.want)
			}
		})
	}
}

func TestCanonicalProjection(t *testing.T) {
	l := LedgerLine{
		V: LedgerVersion, Seed: 3, Index: 7, Key: "k", App: "redis", Design: "Tvarak",
		Armed: 4, Detected: 4, Recovered: 4,
		Chaos: true, IdentityOK: boolp(true),
		WallMS: 812, Resumed: true, Killed: true, GateFindings: []string{"heap-growth: z"},
	}
	c := l.Canonical()
	if c.WallMS != 0 || c.Resumed || c.Killed || c.GateFindings != nil {
		t.Fatalf("wall-clock fields survived the projection: %+v", c)
	}
	// Everything deterministic — including the chaos schedule and its
	// identity verdict — must survive.
	if !c.Chaos || c.IdentityOK == nil || !*c.IdentityOK {
		t.Fatalf("deterministic chaos fields were zeroed: %+v", c)
	}
	if c.Seed != l.Seed || c.Index != l.Index || c.Key != l.Key || c.Armed != l.Armed {
		t.Fatalf("identity fields changed: %+v", c)
	}
}

func TestTallyLines(t *testing.T) {
	lines := []LedgerLine{
		{Design: "Tvarak", Armed: 3, Fired: 2, Detected: 2, Recovered: 2, WallMS: 10, Chaos: true, Killed: true, Resumed: true, IdentityOK: boolp(true)},
		{Design: "Baseline", Armed: 4, Fired: 3, Silent: 3, WallMS: 5, GateFindings: []string{}},
		{Design: "Tvarak", Armed: 1, Fired: 1, Detected: 1, Recovered: 1, WallMS: 7},
	}
	tl := TallyLines(lines)
	if tl.Units != 3 || tl.Chaos != 1 || tl.Killed != 1 || tl.Resumed != 1 ||
		tl.Armed != 8 || tl.Fired != 6 || tl.Detected != 3 || tl.Recovered != 3 ||
		tl.Silent != 3 || tl.WallMS != 22 || tl.GateChecks != 1 {
		t.Fatalf("bad tally: %+v", tl)
	}
	if tl.ByDesign["Tvarak"] != 2 || tl.ByDesign["Baseline"] != 1 {
		t.Fatalf("bad per-design tally: %v", tl.ByDesign)
	}
}
