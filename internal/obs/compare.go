package obs

import (
	"fmt"
	"math"
	"strings"
)

// Delta is one per-metric difference between two exports' matching runs.
type Delta struct {
	Run    string  // RunRecord.Label() of the run
	Metric string  // metric name (see the CSV header)
	Old    float64 // value in the old export
	New    float64 // value in the new export
	Rel    float64 // (New-Old)/Old; +Inf when Old is 0 and New is not
}

// Report is the outcome of comparing two exports: runs present in only one
// of them, and every metric whose relative change exceeded the tolerance.
type Report struct {
	Matched int      // runs present in both exports
	Missing []string // runs in the old export only
	Extra   []string // runs in the new export only
	Deltas  []Delta
}

// Clean reports whether the exports matched within tolerance: same run
// set, no metric beyond the tolerance.
func (r *Report) Clean() bool {
	return len(r.Missing) == 0 && len(r.Extra) == 0 && len(r.Deltas) == 0
}

// String renders the report, one line per finding, ordered by the old
// export's run order (then the new export's for extra runs).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compare: %d run(s) matched, %d missing, %d extra, %d metric delta(s)\n",
		r.Matched, len(r.Missing), len(r.Extra), len(r.Deltas))
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "  missing in new export: %s\n", m)
	}
	for _, e := range r.Extra {
		fmt.Fprintf(&b, "  extra in new export: %s\n", e)
	}
	for _, d := range r.Deltas {
		if math.IsInf(d.Rel, 1) {
			fmt.Fprintf(&b, "  %s: %s %s -> %s (was zero)\n",
				d.Run, d.Metric, formatFloat(d.Old), formatFloat(d.New))
			continue
		}
		fmt.Fprintf(&b, "  %s: %s %s -> %s (%+.2f%%)\n",
			d.Run, d.Metric, formatFloat(d.Old), formatFloat(d.New), d.Rel*100)
	}
	return b.String()
}

// Compare diffs two exports run by run and metric by metric. tol is the
// relative tolerance: a metric is reported when |new-old| > tol*|old|
// (a change from zero to non-zero is always reported). tol 0 demands exact
// equality, which deterministic same-binary runs satisfy — ci.sh gates on
// that.
func Compare(old, new *Export, tol float64) *Report {
	rep := &Report{}
	newByKey := make(map[string]*RunRecord, len(new.Runs))
	for i := range new.Runs {
		newByKey[new.Runs[i].Key()] = &new.Runs[i]
	}
	seen := make(map[string]bool, len(old.Runs))
	for i := range old.Runs {
		o := &old.Runs[i]
		seen[o.Key()] = true
		n, ok := newByKey[o.Key()]
		if !ok {
			rep.Missing = append(rep.Missing, o.Label())
			continue
		}
		rep.Matched++
		for _, m := range metrics {
			ov, nv := m.Get(&o.Stats), m.Get(&n.Stats)
			if ov == nv {
				continue
			}
			var rel float64
			if ov == 0 {
				rel = math.Inf(1)
			} else {
				rel = (nv - ov) / ov
			}
			if ov != 0 && math.Abs(nv-ov) <= tol*math.Abs(ov) {
				continue
			}
			rep.Deltas = append(rep.Deltas, Delta{
				Run: o.Label(), Metric: m.Name, Old: ov, New: nv, Rel: rel,
			})
		}
	}
	for i := range new.Runs {
		if !seen[new.Runs[i].Key()] {
			rep.Extra = append(rep.Extra, new.Runs[i].Label())
		}
	}
	return rep
}
