package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"tvarak/internal/stats"
)

func TestSamplerRecordsEpochDeltas(t *testing.T) {
	s := NewSampler(100)
	var st stats.Stats

	// First phase boundary before the epoch boundary: no sample.
	st.Loads = 10
	s.Observe(50, &st)
	if len(s.Samples()) != 0 {
		t.Fatalf("sampled before epoch boundary: %v", s.Samples())
	}

	// Crossing 100 records the delta since the baseline.
	st.Loads = 25
	st.NVM.DataReads = 3
	s.Observe(120, &st)
	if n := len(s.Samples()); n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
	got := s.Samples()[0]
	if got.Cycle != 120 || got.Delta.Loads != 25 || got.Delta.NVM.DataReads != 3 || got.Delta.Cycles != 120 {
		t.Errorf("sample = %+v", got)
	}

	// The next epoch's delta covers only the new activity.
	st.Loads = 40
	s.Observe(230, &st)
	got = s.Samples()[1]
	if got.Delta.Loads != 15 || got.Delta.NVM.DataReads != 0 || got.Delta.Cycles != 110 {
		t.Errorf("second sample = %+v", got)
	}

	// Finish closes the trailing partial epoch.
	st.Stores = 7
	s.Finish(260, &st)
	got = s.Samples()[2]
	if got.Cycle != 260 || got.Delta.Stores != 7 || got.Delta.Cycles != 30 {
		t.Errorf("final sample = %+v", got)
	}
}

func TestSamplerDeltasSumToAggregate(t *testing.T) {
	s := NewSampler(64)
	var st stats.Stats
	for cyc := uint64(10); cyc < 1000; cyc += 37 {
		st.Loads += cyc % 5
		st.Stores += cyc % 3
		st.EnergyPJ += float64(cyc % 7)
		st.AddCache(stats.LLC, cyc%2 == 0, 1)
		s.Observe(cyc, &st)
	}
	st.Writebacks = 13
	s.Finish(1000, &st)

	var sum stats.Stats
	for _, smp := range s.Samples() {
		sum = sum.Add(smp.Delta)
	}
	want := st
	want.Cycles = 1000 // epoch lengths sum to the final cycle count
	if math.Abs(sum.EnergyPJ-want.EnergyPJ) > 1e-9 {
		t.Errorf("energy sum = %v, want %v", sum.EnergyPJ, want.EnergyPJ)
	}
	sum.EnergyPJ = want.EnergyPJ
	if sum != want {
		t.Errorf("series sum = %+v\nwant       %+v", sum, want)
	}
}

func TestSamplerFinishFoldsIntoSameCycleSample(t *testing.T) {
	s := NewSampler(100)
	var st stats.Stats
	st.Loads = 5
	s.Observe(100, &st)
	st.Writebacks = 2 // drain activity at the same final cycle
	s.Finish(100, &st)
	if n := len(s.Samples()); n != 1 {
		t.Fatalf("samples = %d, want 1 (drain should fold into the last epoch)", n)
	}
	d := s.Samples()[0].Delta
	if d.Loads != 5 || d.Writebacks != 2 || d.Cycles != 100 {
		t.Errorf("folded sample = %+v", d)
	}
}

func TestSamplerRebase(t *testing.T) {
	s := NewSampler(100)
	var st stats.Stats
	st.Loads = 1000 // warm-up traffic
	s.Rebase(st)
	st.Loads = 1010
	s.Observe(150, &st)
	if d := s.Samples()[0].Delta.Loads; d != 10 {
		t.Errorf("post-rebase delta = %d, want 10", d)
	}
}

func TestJSONLWritesValidEventLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf, 0)
	tr.Trace(Event{Cycle: 7, Kind: EvFill, Addr: 0x1000, Aux: 3})
	tr.Trace(Event{Cycle: 9, Kind: EvCorruption, Addr: 0x2040, Src: "redis/set/Tvarak"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 2 events + trailer", len(lines))
	}
	if lines[0]["ev"] != "fill" || lines[0]["cyc"] != float64(7) || lines[0]["addr"] != "0x1000" {
		t.Errorf("fill line = %v", lines[0])
	}
	if lines[1]["src"] != "redis/set/Tvarak" || lines[1]["ev"] != "corruption" {
		t.Errorf("corruption line = %v", lines[1])
	}
	if lines[2]["ev"] != "trace-end" || lines[2]["events"] != float64(2) {
		t.Errorf("trailer = %v", lines[2])
	}
}

func TestJSONLBoundDropsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf, 3)
	for i := 0; i < 10; i++ {
		tr.Trace(Event{Cycle: uint64(i), Kind: EvWriteback})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Written() != 3 || tr.Dropped() != 7 {
		t.Errorf("written=%d dropped=%d, want 3/7", tr.Written(), tr.Dropped())
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Errorf("output lines = %d, want 3 events + trailer", n)
	}
	if !strings.Contains(buf.String(), `"dropped":7`) {
		t.Errorf("trailer missing drop count: %s", buf.String())
	}
}

func TestWithSourceStampsAndPreservesNil(t *testing.T) {
	if WithSource(nil, "x") != nil {
		t.Error("WithSource(nil) should stay nil (zero-cost disabled path)")
	}
	var got Event
	rec := tracerFunc(func(ev Event) { got = ev })
	WithSource(rec, "cell-7").Trace(Event{Kind: EvDiffStash, Addr: 42})
	if got.Src != "cell-7" || got.Addr != 42 {
		t.Errorf("stamped event = %+v", got)
	}
}

type tracerFunc func(Event)

func (f tracerFunc) Trace(ev Event) { f(ev) }

func TestEventKindNamesAreStable(t *testing.T) {
	// The wire names are part of the trace schema; this pins them.
	want := map[EventKind]string{
		EvFill: "fill", EvWriteback: "writeback", EvLLCEvict: "llc-evict",
		EvDiffStash: "diff-stash", EvDiffEvict: "diff-evict",
		EvEarlyWriteback: "early-writeback", EvRedInval: "red-inval",
		EvCorruption: "corruption", EvRecovery: "recovery",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

func testExport() *Export {
	x := NewExport("test")
	var s1, s2 stats.Stats
	s1.Cycles = 1000
	s1.EnergyPJ = 250.5
	s1.NVM.DataReads = 40
	s2.Cycles = 1100
	s2.NVM.RedWrites = 9
	x.Runs = []RunRecord{
		{Experiment: "e1", Workload: "w", Design: "Baseline", Stats: s1},
		{Experiment: "e1", Workload: "w", Design: "Tvarak", Variant: "2-way",
			RuntimeOverhead: 0.1, Stats: s2,
			Series: []Sample{{Cycle: 500, Delta: s1}, {Cycle: 1100, Delta: s2}}},
	}
	return x
}

func TestExportJSONRoundTripAndDeterminism(t *testing.T) {
	x := testExport()
	var a, b bytes.Buffer
	if err := x.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two serializations of the same export differ")
	}
	back, err := ReadJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || len(back.Runs) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Runs[1].Stats.NVM.RedWrites != 9 || len(back.Runs[1].Series) != 2 {
		t.Errorf("round trip mangled run: %+v", back.Runs[1])
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"schema": 999, "runs": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema read error = %v", err)
	}
}

func TestExportCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := testExport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "schema,experiment,workload,design,variant,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Baseline") || !strings.Contains(lines[1], "250.5") {
		t.Errorf("baseline row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,e1,w,Tvarak,2-way,") || !strings.HasSuffix(lines[2], ",2") {
		t.Errorf("tvarak row = %q (want schema/variant columns and trailing sample count)", lines[2])
	}
}

func TestCompareIdenticalIsClean(t *testing.T) {
	rep := Compare(testExport(), testExport(), 0)
	if !rep.Clean() {
		t.Errorf("identical exports not clean:\n%s", rep)
	}
	if rep.Matched != 2 {
		t.Errorf("matched = %d, want 2", rep.Matched)
	}
}

func TestCompareFlagsInjectedDelta(t *testing.T) {
	old, cur := testExport(), testExport()
	cur.Runs[1].Stats.Cycles = 1210 // +10%
	cur.Runs[1].Stats.NVM.RedWrites = 10

	rep := Compare(old, cur, 0)
	if rep.Clean() || len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want cycles and nvm_red_writes", rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.Metric != "cycles" || d.Old != 1100 || d.New != 1210 || math.Abs(d.Rel-0.1) > 1e-9 {
		t.Errorf("cycles delta = %+v", d)
	}
	if !strings.Contains(rep.String(), "nvm_red_writes") {
		t.Errorf("report missing metric name:\n%s", rep)
	}

	// Within tolerance the same change is accepted.
	if rep := Compare(old, cur, 0.2); !rep.Clean() {
		t.Errorf("10%% delta should pass 20%% tolerance:\n%s", rep)
	}
}

func TestCompareZeroToNonzeroAlwaysReported(t *testing.T) {
	old, cur := testExport(), testExport()
	cur.Runs[0].Stats.CorruptionsDetected = 1
	rep := Compare(old, cur, 0.5)
	if rep.Clean() || rep.Deltas[0].Metric != "corruptions" || !math.IsInf(rep.Deltas[0].Rel, 1) {
		t.Errorf("zero→nonzero not reported: %+v", rep.Deltas)
	}
}

func TestCompareMissingAndExtraRuns(t *testing.T) {
	old, cur := testExport(), testExport()
	cur.Runs = cur.Runs[:1]
	cur.Runs = append(cur.Runs, RunRecord{Experiment: "e2", Workload: "new", Design: "Tvarak"})
	rep := Compare(old, cur, 0)
	if len(rep.Missing) != 1 || len(rep.Extra) != 1 || rep.Clean() {
		t.Errorf("missing=%v extra=%v", rep.Missing, rep.Extra)
	}
}
