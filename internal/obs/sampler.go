package obs

import "tvarak/internal/stats"

// Sample is one epoch of a run's time series: the simulated cycle the epoch
// ended at and the per-counter deltas accumulated within it. Delta.Cycles
// holds the epoch's length in cycles (end minus previous end), so the
// samples' deltas sum to the run's aggregate Stats.
type Sample struct {
	Cycle uint64      `json:"cycle"`
	Delta stats.Stats `json:"delta"`
}

// Sampler turns the engine's monotonically growing Stats into a per-epoch
// time series. The engine offers the current statistics at every phase
// boundary (Observe) and once after the drain (Finish); the sampler records
// a delta snapshot whenever the clock crosses the next multiple of Every.
// Epoch boundaries therefore land on phase boundaries and are deterministic
// for a deterministic run.
//
// A Sampler only reads the statistics — attaching one never changes a
// run's results.
type Sampler struct {
	// Every is the epoch length in cycles. Boundaries snap outward to the
	// engine's phase boundaries, so the effective epoch is
	// max(Every, PhaseCyc).
	Every uint64

	last      stats.Stats
	lastCycle uint64
	next      uint64
	samples   []Sample
}

// NewSampler builds a sampler with the given epoch length in cycles.
// every must be positive.
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		panic("obs: NewSampler with zero epoch length")
	}
	return &Sampler{Every: every, next: every}
}

// Rebase resets the sampler's baseline to st at cycle 0, discarding nothing
// already sampled. The engine calls it when the sampler is attached, so a
// sampler attached after warm-up measures only the region that follows.
func (s *Sampler) Rebase(st stats.Stats) {
	s.last = st
	s.lastCycle = 0
	s.next = s.Every
}

// Observe offers the current statistics at a phase boundary ending at
// cycle. It records one sample if the clock crossed the next epoch
// boundary.
func (s *Sampler) Observe(cycle uint64, st *stats.Stats) {
	if cycle < s.next {
		return
	}
	s.record(cycle, st)
	for s.next <= cycle {
		s.next += s.Every
	}
}

// Finish closes the series at the run's final cycle count, recording any
// trailing activity since the last epoch boundary (including the drain's
// writebacks). The engine calls it once per Run, after the drain.
func (s *Sampler) Finish(cycle uint64, st *stats.Stats) {
	if st.Delta(s.last) == (stats.Stats{}) && cycle == s.lastCycle {
		return
	}
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle == cycle {
		// The drain added no cycles beyond the last boundary: fold the
		// trailing counters into the final epoch instead of emitting a
		// zero-length one.
		d := st.Delta(s.last)
		d.Cycles = 0
		s.samples[n-1].Delta = s.samples[n-1].Delta.Add(d)
		s.last = *st
		return
	}
	s.record(cycle, st)
}

// record appends the delta since the previous snapshot as one sample ending
// at cycle.
func (s *Sampler) record(cycle uint64, st *stats.Stats) {
	d := st.Delta(s.last)
	d.Cycles = cycle - s.lastCycle
	s.samples = append(s.samples, Sample{Cycle: cycle, Delta: d})
	s.last = *st
	s.lastCycle = cycle
}

// Samples returns the recorded series. The slice is owned by the sampler;
// callers that outlive it should copy.
func (s *Sampler) Samples() []Sample { return s.samples }
