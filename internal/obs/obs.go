// Package obs is the simulation telemetry layer: structured event tracing
// with a zero-cost disabled default, an epoch sampler that turns the
// engine's aggregate statistics into a per-run time series, and a versioned
// machine-readable export schema (JSON/CSV) with a compare mode for
// regression gating.
//
// The package is a leaf: it depends only on internal/stats, so the
// simulation engine (internal/sim), the TVARAK controller (internal/core)
// and the harness can all emit telemetry through it without import cycles.
//
// Tracing and sampling are strictly read-only observers — they never touch
// the statistics or the simulated machine state — so a run with telemetry
// attached produces byte-identical experiment tables to a run without
// (the harness tests gate exactly that).
package obs

// EventKind identifies one traced simulation event.
type EventKind uint8

const (
	// EvFill is an NVM→LLC data-line fill (internal/sim); Aux carries the
	// extra verification latency the redundancy controller added beyond
	// the data read.
	EvFill EventKind = iota
	// EvWriteback is an LLC→NVM data-line writeback (internal/sim).
	EvWriteback
	// EvLLCEvict is an eviction from the LLC data partition
	// (internal/sim); Aux is 1 when the victim was dirty, 0 when clean.
	EvLLCEvict
	// EvDiffStash records an old-data copy saved into the diff partition
	// on a clean→dirty transition (internal/core).
	EvDiffStash
	// EvDiffEvict is a diff-partition eviction (internal/core).
	EvDiffEvict
	// EvEarlyWriteback is the early data writeback a diff eviction forces
	// (internal/core, §III-D of the paper).
	EvEarlyWriteback
	// EvRedInval is an on-controller redundancy-cache sharing
	// invalidation (internal/core).
	EvRedInval
	// EvCorruption is a checksum-verification mismatch (internal/core);
	// Aux is 1 for page-granular (naive-mode) detections, 0 for
	// DAX-CL-checksum detections.
	EvCorruption
	// EvRecovery is a successful cross-DIMM parity reconstruction
	// (internal/core); Aux carries the recovery latency in cycles.
	EvRecovery
	// EvPhase marks a bound-weave phase boundary (internal/sim): every
	// core has quiesced at the barrier, so caches and media are at a
	// stable point. The shadow oracle anchors its incremental
	// cross-checks here.
	EvPhase
	// EvCancel marks the phase boundary at which the engine observed its
	// context cancelled (or a contained workload panic) and began
	// unwinding the remaining workers; the run drains and stops here
	// (internal/sim). Aux is 1 when the cause was a workload panic.
	EvCancel
	// EvCheckpoint records a completed cell's result being durably
	// journaled by the resilient runner (internal/harness); Cycle is the
	// cell's fixed-work runtime and Aux its cell index.
	EvCheckpoint
	numEventKinds
)

// eventNames are the stable wire names used in the JSONL trace format.
// They are part of the export contract: renaming one is a schema change.
var eventNames = [numEventKinds]string{
	EvFill:           "fill",
	EvWriteback:      "writeback",
	EvLLCEvict:       "llc-evict",
	EvDiffStash:      "diff-stash",
	EvDiffEvict:      "diff-evict",
	EvEarlyWriteback: "early-writeback",
	EvRedInval:       "red-inval",
	EvCorruption:     "corruption",
	EvRecovery:       "recovery",
	EvPhase:          "phase",
	EvCancel:         "cancel",
	EvCheckpoint:     "checkpoint",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one traced simulation event. Cycle is the simulated cycle the
// event occurred at, Addr the line address involved, and Aux an
// event-specific payload (see the EventKind constants). Src labels the
// originating run when several simulations share one tracer (the harness
// tags each cell's events with its workload/design/variant label).
type Event struct {
	Cycle uint64
	Kind  EventKind
	Addr  uint64
	Aux   uint64
	Src   string
}

// Tracer receives simulation events. Implementations must be safe for use
// from a single simulation goroutine; tracers shared across concurrently
// running simulations (the parallel harness) must be safe for concurrent
// Trace calls — JSONL is.
//
// The disabled default is a nil Tracer on the engine: hook sites guard with
// a nil check, so tracing costs one predictable branch when off.
type Tracer interface {
	Trace(ev Event)
}

// Nop is an explicit no-op Tracer for callers that want a non-nil value.
type Nop struct{}

// Trace discards the event.
func (Nop) Trace(Event) {}

// sourced wraps a Tracer, stamping every event with a source label.
type sourced struct {
	t   Tracer
	src string
}

func (s sourced) Trace(ev Event) {
	ev.Src = s.src
	s.t.Trace(ev)
}

// WithSource returns a Tracer that forwards to t with Src set to src on
// every event. A nil t yields nil, so the zero-cost disabled path is
// preserved.
func WithSource(t Tracer, src string) Tracer {
	if t == nil {
		return nil
	}
	return sourced{t: t, src: src}
}
