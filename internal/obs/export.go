package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tvarak/internal/stats"
)

// SchemaVersion is the version of the machine-readable export schema.
// Bump it whenever a field is renamed, removed, or changes meaning; adding
// new optional fields is backward compatible and needs no bump.
const SchemaVersion = 1

// RunRecord is one run of an export: the identifying labels, the full
// aggregate statistics, the overheads relative to the run's in-table
// baseline, and (when sampling was enabled) the epoch time series.
type RunRecord struct {
	Experiment string `json:"experiment,omitempty"`
	Workload   string `json:"workload"`
	Design     string `json:"design"`
	Variant    string `json:"variant,omitempty"`

	// RuntimeOverhead and EnergyOverhead are fractions relative to the
	// same table's Baseline run of the same workload (0.03 = 3% slower);
	// 0 when no baseline was present.
	RuntimeOverhead float64 `json:"runtimeOverhead"`
	EnergyOverhead  float64 `json:"energyOverhead"`

	Stats  stats.Stats `json:"stats"`
	Series []Sample    `json:"series,omitempty"`
}

// Key identifies the record within an export: exports are compared run by
// run on this key.
func (r *RunRecord) Key() string {
	return r.Experiment + "|" + r.Workload + "|" + r.Design + "|" + r.Variant
}

// Label is the human-readable form of Key.
func (r *RunRecord) Label() string {
	l := r.Workload + " " + r.Design
	if r.Variant != "" {
		l += "[" + r.Variant + "]"
	}
	if r.Experiment != "" {
		l += " (" + r.Experiment + ")"
	}
	return l
}

// Export is the top-level machine-readable result document.
type Export struct {
	Schema int         `json:"schema"`
	Tool   string      `json:"tool,omitempty"`
	Runs   []RunRecord `json:"runs"`

	// Figures carries derived figure panels (small tables computed from
	// Runs, e.g. the async sweep's overhead-vs-epoch panel). Optional and
	// absent from exports that predate it, so it needs no schema bump.
	Figures []Figure `json:"figures,omitempty"`
}

// Figure is one derived figure panel: a fixed column axis plus one row per
// series. Values are row-major and parallel to Columns; NaN is not
// representable in JSON, so absent points are encoded as the row's Holes
// bitmask (bit i set = Values[i] is a hole, rendered blank).
type Figure struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Unit selects the textual rendering of values: "pct" formats fractions
	// as signed percentages, "cyc" as integral cycle counts; anything else
	// falls back to shortest-exact floats.
	Unit    string      `json:"unit,omitempty"`
	Columns []string    `json:"columns"`
	Rows    []FigureRow `json:"rows"`
}

// FigureRow is one series of a figure.
type FigureRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
	Holes  uint64    `json:"holes,omitempty"`
}

// String renders the figure as a fixed-width text panel, in the style of
// the harness tables. The output is deterministic — golden tests diff it
// byte-for-byte.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "%-32s", "series")
	for _, c := range f.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-32s", r.Label)
		for i, v := range r.Values {
			switch {
			case r.Holes&(1<<uint(i)) != 0:
				fmt.Fprintf(&b, " %12s", "-")
			case f.Unit == "pct":
				fmt.Fprintf(&b, " %12s", fmt.Sprintf("%+.2f%%", v*100))
			case f.Unit == "cyc":
				fmt.Fprintf(&b, " %12.0f", v)
			default:
				fmt.Fprintf(&b, " %12s", strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NewExport returns an empty export at the current schema version.
func NewExport(tool string) *Export {
	return &Export{Schema: SchemaVersion, Tool: tool}
}

// WriteJSON renders the export as indented JSON. The output is
// deterministic: field order is fixed by the struct definitions and no
// wall-clock values are included, so two runs of the same deterministic
// simulation produce byte-identical documents.
func (x *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(x)
}

// ReadJSON parses and validates an export document. A schema version
// other than SchemaVersion is an error: the compare mode refuses to
// silently compare across schema changes.
func ReadJSON(r io.Reader) (*Export, error) {
	var x Export
	dec := json.NewDecoder(r)
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("obs: parsing export: %w", err)
	}
	if x.Schema != SchemaVersion {
		return nil, fmt.Errorf("obs: export schema v%d, this build reads v%d", x.Schema, SchemaVersion)
	}
	return &x, nil
}

// metric is one comparable scalar of a run's aggregate statistics. The
// list doubles as the CSV column order, so it must stay append-only within
// a schema version.
type metric struct {
	Name string
	Get  func(*stats.Stats) float64
}

// metrics is the ordered list of per-run scalars the CSV export and the
// compare mode cover.
var metrics = []metric{
	{"cycles", func(s *stats.Stats) float64 { return float64(s.Cycles) }},
	{"energy_pj", func(s *stats.Stats) float64 { return s.EnergyPJ }},
	{"nvm_data_reads", func(s *stats.Stats) float64 { return float64(s.NVM.DataReads) }},
	{"nvm_data_writes", func(s *stats.Stats) float64 { return float64(s.NVM.DataWrites) }},
	{"nvm_red_reads", func(s *stats.Stats) float64 { return float64(s.NVM.RedReads) }},
	{"nvm_red_writes", func(s *stats.Stats) float64 { return float64(s.NVM.RedWrites) }},
	{"dram_reads", func(s *stats.Stats) float64 { return float64(s.DRAMReads) }},
	{"dram_writes", func(s *stats.Stats) float64 { return float64(s.DRAMWrites) }},
	{"l1_hits", func(s *stats.Stats) float64 { return float64(s.Cache[stats.L1].Hits) }},
	{"l1_misses", func(s *stats.Stats) float64 { return float64(s.Cache[stats.L1].Misses) }},
	{"l2_hits", func(s *stats.Stats) float64 { return float64(s.Cache[stats.L2].Hits) }},
	{"l2_misses", func(s *stats.Stats) float64 { return float64(s.Cache[stats.L2].Misses) }},
	{"llc_hits", func(s *stats.Stats) float64 { return float64(s.Cache[stats.LLC].Hits) }},
	{"llc_misses", func(s *stats.Stats) float64 { return float64(s.Cache[stats.LLC].Misses) }},
	{"tvarak_hits", func(s *stats.Stats) float64 { return float64(s.Cache[stats.TvarakCache].Hits) }},
	{"tvarak_misses", func(s *stats.Stats) float64 { return float64(s.Cache[stats.TvarakCache].Misses) }},
	{"compute_cyc", func(s *stats.Stats) float64 { return float64(s.ComputeCycles) }},
	{"load_stall_cyc", func(s *stats.Stats) float64 { return float64(s.LoadStallCyc) }},
	{"store_issue_cyc", func(s *stats.Stats) float64 { return float64(s.StoreIssueCyc) }},
	{"loads", func(s *stats.Stats) float64 { return float64(s.Loads) }},
	{"stores", func(s *stats.Stats) float64 { return float64(s.Stores) }},
	{"verify_extra_cyc", func(s *stats.Stats) float64 { return float64(s.VerifyExtraCyc) }},
	{"fills", func(s *stats.Stats) float64 { return float64(s.Fills) }},
	{"writebacks", func(s *stats.Stats) float64 { return float64(s.Writebacks) }},
	{"diff_stashes", func(s *stats.Stats) float64 { return float64(s.DiffStashes) }},
	{"diff_evictions", func(s *stats.Stats) float64 { return float64(s.DiffEvictions) }},
	{"red_invalidations", func(s *stats.Stats) float64 { return float64(s.RedInvalidations) }},
	{"upper_invalidations", func(s *stats.Stats) float64 { return float64(s.UpperInvalidations) }},
	{"corruptions", func(s *stats.Stats) float64 { return float64(s.CorruptionsDetected) }},
	{"recoveries", func(s *stats.Stats) float64 { return float64(s.Recoveries) }},
	{"ecc_errors", func(s *stats.Stats) float64 { return float64(s.ECCErrors) }},
	{"async_epochs", func(s *stats.Stats) float64 { return float64(s.AsyncEpochs) }},
	{"async_pages_reconciled", func(s *stats.Stats) float64 { return float64(s.AsyncPagesReconciled) }},
	{"async_lines_reconciled", func(s *stats.Stats) float64 { return float64(s.AsyncLinesReconciled) }},
	{"async_scrub_checks", func(s *stats.Stats) float64 { return float64(s.AsyncScrubChecks) }},
	{"async_quarantined", func(s *stats.Stats) float64 { return float64(s.AsyncQuarantined) }},
	{"async_window_cyc", func(s *stats.Stats) float64 { return float64(s.AsyncWindowCyc) }},
	{"async_window_lines", func(s *stats.Stats) float64 { return float64(s.AsyncWindowLines) }},
}

// WriteCSV renders the aggregate metrics as CSV: one header row, then one
// row per run. The time series is JSON-only; the CSV carries the schema
// version in its first column so downstream tooling can validate it.
func (x *Export) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"schema", "experiment", "workload", "design", "variant",
		"runtime_overhead", "energy_overhead"}
	for _, m := range metrics {
		header = append(header, m.Name)
	}
	header = append(header, "samples")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range x.Runs {
		r := &x.Runs[i]
		row := []string{
			strconv.Itoa(x.Schema), r.Experiment, r.Workload, r.Design, r.Variant,
			formatFloat(r.RuntimeOverhead), formatFloat(r.EnergyOverhead),
		}
		for _, m := range metrics {
			row = append(row, formatFloat(m.Get(&r.Stats)))
		}
		row = append(row, strconv.Itoa(len(r.Series)))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders v with the shortest exact representation, printing
// integral values without an exponent or trailing zeros so counter columns
// stay readable.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
