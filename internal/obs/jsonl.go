package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// DefaultMaxEvents bounds a JSONL tracer that was built without an explicit
// limit: enough for every event of a reproduction-scale experiment cell,
// small enough that a runaway full-scale trace cannot exhaust memory or
// disk (≈ a few hundred MB of JSONL at most).
const DefaultMaxEvents = 1 << 22

// JSONL writes one JSON object per event to an io.Writer through a bounded
// buffer. After MaxEvents events further events are counted and dropped
// rather than written, so tracing a pathologically long run degrades to a
// drop counter instead of unbounded output. Trace is safe for concurrent
// use: the parallel harness shares one JSONL tracer across cells, tagging
// each event with its cell label via WithSource.
//
// Close flushes the buffer and appends a trailer object
// ({"ev":"trace-end",...}) recording the written and dropped totals.
type JSONL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	max     uint64
	written uint64
	dropped uint64
	err     error
}

// NewJSONL builds a JSONL tracer over w. maxEvents bounds how many events
// are written before the tracer starts dropping; 0 selects
// DefaultMaxEvents, and a negative value disables the bound.
func NewJSONL(w io.Writer, maxEvents int64) *JSONL {
	var max uint64
	switch {
	case maxEvents == 0:
		max = DefaultMaxEvents
	case maxEvents > 0:
		max = uint64(maxEvents)
	default:
		max = ^uint64(0)
	}
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16), max: max}
}

// Trace implements Tracer.
func (t *JSONL) Trace(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if t.written >= t.max {
		t.dropped++
		return
	}
	if ev.Src != "" {
		_, t.err = fmt.Fprintf(t.w, "{\"cyc\":%d,\"ev\":%q,\"addr\":\"%#x\",\"aux\":%d,\"src\":%q}\n",
			ev.Cycle, ev.Kind.String(), ev.Addr, ev.Aux, ev.Src)
	} else {
		_, t.err = fmt.Fprintf(t.w, "{\"cyc\":%d,\"ev\":%q,\"addr\":\"%#x\",\"aux\":%d}\n",
			ev.Cycle, ev.Kind.String(), ev.Addr, ev.Aux)
	}
	t.written++
}

// Written returns how many events have been written so far.
func (t *JSONL) Written() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.written
}

// Dropped returns how many events were discarded after the bound was hit.
func (t *JSONL) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Close writes the trailer line and flushes the buffer. It does not close
// the underlying writer (the caller owns the file handle).
func (t *JSONL) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, "{\"ev\":\"trace-end\",\"events\":%d,\"dropped\":%d}\n",
			t.written, t.dropped)
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}
