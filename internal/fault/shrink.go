package fault

import (
	"sort"

	"tvarak/internal/param"
)

// shrinkUnit minimizes a failing unit's injection schedule by delta
// debugging over flat spec indices, re-running the unit per attempt.
// Rounds and their OpsSeeds are preserved, so the minimal schedule
// replays against the exact same workload segments (async units re-run
// under the identical async configuration). Returns the minimal failing
// spec list and how many unit re-runs the search spent (capped at
// budget).
func shrinkUnit(app appSpec, design param.Design, plan Plan, budget int, async param.AsyncConfig) ([]Spec, int) {
	keep, runs := ddmin(plan.Injections(), budget, func(k map[int]bool) bool {
		return runUnit(nil, app, design, plan.withSpecs(k), async).Failure != ""
	})
	return flatSpecs(plan.withSpecs(keep)), runs
}

// ddmin is the search core: starting from all of [0, total), repeatedly
// try removing chunks of indices (halving the chunk size when a pass
// removes nothing) and keep any removal after which fails still holds.
// fails(all indices) is assumed true; the result is 1-minimal when the
// budget allows (removing any single kept index makes the failure
// vanish), otherwise the best reduction found within budget calls.
func ddmin(total, budget int, fails func(keep map[int]bool) bool) (map[int]bool, int) {
	keep := make(map[int]bool, total)
	for i := 0; i < total; i++ {
		keep[i] = true
	}
	runs := 0
	for chunk := (total + 1) / 2; chunk >= 1 && runs < budget; {
		removed := false
		idxs := sortedIdxs(keep)
		for lo := 0; lo < len(idxs) && runs < budget; lo += chunk {
			hi := min(lo+chunk, len(idxs))
			trial := make(map[int]bool, len(keep)-(hi-lo))
			for k := range keep {
				trial[k] = true
			}
			for _, k := range idxs[lo:hi] {
				delete(trial, k)
			}
			runs++
			if fails(trial) {
				keep = trial
				removed = true
				break // re-scan with the smaller kept set
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk = (chunk + 1) / 2
		}
	}
	return keep, runs
}

func sortedIdxs(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func flatSpecs(p Plan) []Spec {
	var out []Spec
	for _, r := range p.Rounds {
		out = append(out, r.Specs...)
	}
	return out
}
