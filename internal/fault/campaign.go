package fault

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/param"
)

// Options configures a campaign run.
type Options struct {
	// Seed is the campaign seed; everything else is derived from it.
	Seed int64
	// N is the total number of injection specs per design, split across
	// the campaign apps (remainder to the first apps).
	N int
	// Workers bounds concurrent units (0 = NumCPU).
	Workers int
	// Apps restricts the campaign (default: all seven).
	Apps []string
	// Designs restricts the designs (default: Baseline and TVARAK — the
	// miss/detect contrast the paper's Table 4 argument rests on).
	Designs []param.Design
	// Shrink minimizes each failing unit's schedule after the campaign.
	Shrink bool
	// ShrinkBudget caps re-runs per shrunk unit (default 48).
	ShrinkBudget int
	// Progress, if non-nil, is called after each unit (serialized).
	Progress func(done, total int, u *UnitReport)
	// Context, when non-nil, cancels the campaign cooperatively: no new
	// unit starts once it is done, in-flight units unwind at their
	// engine's next phase boundary, finished units are kept, and the
	// report marks itself interrupted (nil slots stay in Units order).
	Context context.Context
	// Journal, when non-nil, checkpoints each finished unit durably under
	// a fingerprint of (seed, N, app, design); a resumed campaign (the
	// same journal reopened) restores journaled units instead of
	// re-simulating them. Units are deterministic, so a resumed report is
	// byte-identical to an uninterrupted one.
	Journal *harness.Journal
	// Live, when non-nil, streams unit lifecycle onto the /runs board and
	// folds each finished unit's armed/detected/recovered totals into the
	// tvarak_fault_* counters. Strictly read-only: reports are
	// byte-identical with or without it.
	Live *live.Telemetry
}

// Report is the complete campaign outcome.
type Report struct {
	Seed       int64    `json:"seed"`
	Injections int      `json:"injections"` // specs per design
	Apps       []string `json:"apps"`
	Designs    []string `json:"designs"`

	Units []*UnitReport `json:"units"`

	Fired             int `json:"fired"`
	SilentCorruptions int `json:"silentCorruptions"`
	Undetected        int `json:"undetected"`
	Unrecovered       int `json:"unrecovered"`
	AppPanics         int `json:"appPanics"`
	CrashPoints       int `json:"crashPoints"`
	Failures          int `json:"failures"`

	// Resumed counts units restored from a journal instead of re-run;
	// Interrupted counts unit slots left empty by cancellation. Both are
	// zero (and absent from the wire format) on a clean uninterrupted
	// run, preserving byte-determinism of historical reports.
	Resumed     int `json:"resumed,omitempty"`
	Interrupted int `json:"interrupted,omitempty"`
}

type unitKey struct {
	app    appSpec
	design param.Design
	plan   Plan
}

// Run executes the campaign: one unit per (app, design), the same
// per-app plan hitting every design. Units are independent simulations,
// so they run across a worker pool; unit order in the report is fixed
// (app-major, design-minor) regardless of completion order. The returned
// error summarizes failed units — the full detail is in the report.
func Run(opt Options) (*Report, error) {
	apps := opt.Apps
	if len(apps) == 0 {
		apps = AppNames()
	}
	designs := opt.Designs
	if len(designs) == 0 {
		designs = []param.Design{param.Baseline, param.Tvarak}
	}
	if opt.N <= 0 {
		opt.N = len(apps)
	}
	rep := &Report{Seed: opt.Seed, Injections: opt.N, Apps: apps}
	for _, d := range designs {
		rep.Designs = append(rep.Designs, d.String())
	}

	var units []unitKey
	per, extra := opt.N/len(apps), opt.N%len(apps)
	for ai, name := range apps {
		spec, err := lookupApp(name)
		if err != nil {
			return nil, err
		}
		n := per
		if ai < extra {
			n++
		}
		// Per-app seed: decorrelate apps while keeping the derivation
		// printable/reproducible from the campaign seed alone.
		plan := NewPlan(name, opt.Seed+int64(ai)*0x4f1bbcdcbfa53e0b, n)
		for _, d := range designs {
			units = append(units, unitKey{app: spec, design: d, plan: plan})
		}
	}

	rep.Units = make([]*UnitReport, len(units))
	var (
		mu      sync.Mutex
		done    int
		resumed int
	)
	unitFp := func(i int) string {
		return fmt.Sprintf("fault-unit|seed=%d|n=%d|%s|%s",
			opt.Seed, opt.N, units[i].app.name, units[i].design)
	}
	unitLabel := func(i int) string {
		return units[i].app.name + "/" + units[i].design.String()
	}
	if opt.Live != nil {
		opt.Live.Board.Begin("fault-campaign", len(units))
	}
	_ = harness.Runner{Workers: opt.Workers, Context: opt.Context}.ForEach(len(units), func(i int) error {
		var u *UnitReport
		if opt.Journal != nil {
			var ju UnitReport
			if opt.Journal.Lookup("unit", unitFp(i), &ju) {
				u = &ju
				if opt.Live != nil {
					opt.Live.Runner.Restored.AddAt(i, 1)
					opt.Live.Board.CellRestored(i, unitLabel(i), 0, 0)
				}
				mu.Lock()
				resumed++
				mu.Unlock()
			}
		}
		if u == nil {
			if opt.Live != nil {
				opt.Live.Runner.Started.AddAt(i, 1)
				opt.Live.Board.CellRunning(i, unitLabel(i))
			}
			u = runUnit(opt.Context, units[i].app, units[i].design, units[i].plan)
			if u == nil {
				// Interrupted mid-unit: the slot stays empty (counted as
				// Interrupted below), nothing is journaled, and the error
				// stops the pool from starting further units.
				return context.Cause(opt.Context)
			}
			if opt.Journal != nil {
				if err := opt.Journal.Record("unit", unitFp(i), u); err != nil {
					return fmt.Errorf("fault: journaling unit %s: %w", u.Label(), err)
				}
			}
			if opt.Live != nil {
				// Executed units (not restored ones) fold their injection
				// outcomes into the process-wide fault counters: /metrics
				// reports the work this process actually performed.
				opt.Live.Fault.Armed.AddAt(i, uint64(u.Armed))
				opt.Live.Fault.Detected.AddAt(i, u.Detections)
				opt.Live.Fault.Recovered.AddAt(i, u.Recoveries)
				if u.Failure != "" {
					opt.Live.Runner.Failed.AddAt(i, 1)
					opt.Live.Board.CellFailed(i, unitLabel(i), u.Failure, false)
				} else {
					opt.Live.Runner.Finished.AddAt(i, 1)
					opt.Live.Board.CellDone(i, 0, 0)
				}
			}
		}
		rep.Units[i] = u
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(units), u)
			mu.Unlock()
		}
		return nil // unit failures live in the report, not the pool
	})
	rep.Resumed = resumed

	var failed []string
	for i, u := range rep.Units {
		if u == nil { // slot never ran: the campaign was cancelled
			rep.Interrupted++
			continue
		}
		rep.Fired += u.Fired
		rep.SilentCorruptions += u.SilentCorruptions
		rep.Undetected += u.Undetected
		rep.Unrecovered += u.Unrecovered
		rep.AppPanics += u.AppPanics
		rep.CrashPoints += u.CrashPoints
		if u.Failure != "" {
			rep.Failures++
			failed = append(failed, u.Label())
			if opt.Shrink {
				budget := opt.ShrinkBudget
				if budget <= 0 {
					budget = 48
				}
				u.MinimalSpecs, u.ShrinkRuns = shrinkUnit(units[i].app, units[i].design, units[i].plan, budget)
			}
		}
	}
	if len(failed) > 0 {
		return rep, fmt.Errorf("fault: %d campaign unit(s) failed: %s",
			len(failed), strings.Join(failed, ", "))
	}
	if rep.Interrupted > 0 {
		var cause error
		if opt.Context != nil {
			cause = context.Cause(opt.Context)
		}
		return rep, fmt.Errorf("fault: campaign interrupted, %d unit(s) not run: %w",
			rep.Interrupted, cause)
	}
	return rep, nil
}
