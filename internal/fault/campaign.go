package fault

import (
	"fmt"
	"strings"
	"sync"

	"tvarak/internal/harness"
	"tvarak/internal/param"
)

// Options configures a campaign run.
type Options struct {
	// Seed is the campaign seed; everything else is derived from it.
	Seed int64
	// N is the total number of injection specs per design, split across
	// the campaign apps (remainder to the first apps).
	N int
	// Workers bounds concurrent units (0 = NumCPU).
	Workers int
	// Apps restricts the campaign (default: all seven).
	Apps []string
	// Designs restricts the designs (default: Baseline and TVARAK — the
	// miss/detect contrast the paper's Table 4 argument rests on).
	Designs []param.Design
	// Shrink minimizes each failing unit's schedule after the campaign.
	Shrink bool
	// ShrinkBudget caps re-runs per shrunk unit (default 48).
	ShrinkBudget int
	// Progress, if non-nil, is called after each unit (serialized).
	Progress func(done, total int, u *UnitReport)
}

// Report is the complete campaign outcome.
type Report struct {
	Seed       int64    `json:"seed"`
	Injections int      `json:"injections"` // specs per design
	Apps       []string `json:"apps"`
	Designs    []string `json:"designs"`

	Units []*UnitReport `json:"units"`

	Fired             int `json:"fired"`
	SilentCorruptions int `json:"silentCorruptions"`
	Undetected        int `json:"undetected"`
	Unrecovered       int `json:"unrecovered"`
	AppPanics         int `json:"appPanics"`
	CrashPoints       int `json:"crashPoints"`
	Failures          int `json:"failures"`
}

type unitKey struct {
	app    appSpec
	design param.Design
	plan   Plan
}

// Run executes the campaign: one unit per (app, design), the same
// per-app plan hitting every design. Units are independent simulations,
// so they run across a worker pool; unit order in the report is fixed
// (app-major, design-minor) regardless of completion order. The returned
// error summarizes failed units — the full detail is in the report.
func Run(opt Options) (*Report, error) {
	apps := opt.Apps
	if len(apps) == 0 {
		apps = AppNames()
	}
	designs := opt.Designs
	if len(designs) == 0 {
		designs = []param.Design{param.Baseline, param.Tvarak}
	}
	if opt.N <= 0 {
		opt.N = len(apps)
	}
	rep := &Report{Seed: opt.Seed, Injections: opt.N, Apps: apps}
	for _, d := range designs {
		rep.Designs = append(rep.Designs, d.String())
	}

	var units []unitKey
	per, extra := opt.N/len(apps), opt.N%len(apps)
	for ai, name := range apps {
		spec, err := lookupApp(name)
		if err != nil {
			return nil, err
		}
		n := per
		if ai < extra {
			n++
		}
		// Per-app seed: decorrelate apps while keeping the derivation
		// printable/reproducible from the campaign seed alone.
		plan := NewPlan(name, opt.Seed+int64(ai)*0x4f1bbcdcbfa53e0b, n)
		for _, d := range designs {
			units = append(units, unitKey{app: spec, design: d, plan: plan})
		}
	}

	rep.Units = make([]*UnitReport, len(units))
	var (
		mu   sync.Mutex
		done int
	)
	_ = harness.Runner{Workers: opt.Workers}.ForEach(len(units), func(i int) error {
		u := runUnit(units[i].app, units[i].design, units[i].plan)
		rep.Units[i] = u
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(units), u)
			mu.Unlock()
		}
		return nil // unit failures live in the report, not the pool
	})

	var failed []string
	for i, u := range rep.Units {
		rep.Fired += u.Fired
		rep.SilentCorruptions += u.SilentCorruptions
		rep.Undetected += u.Undetected
		rep.Unrecovered += u.Unrecovered
		rep.AppPanics += u.AppPanics
		rep.CrashPoints += u.CrashPoints
		if u.Failure != "" {
			rep.Failures++
			failed = append(failed, u.Label())
			if opt.Shrink {
				budget := opt.ShrinkBudget
				if budget <= 0 {
					budget = 48
				}
				u.MinimalSpecs, u.ShrinkRuns = shrinkUnit(units[i].app, units[i].design, units[i].plan, budget)
			}
		}
	}
	if len(failed) > 0 {
		return rep, fmt.Errorf("fault: %d campaign unit(s) failed: %s",
			len(failed), strings.Join(failed, ", "))
	}
	return rep, nil
}
