package fault

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/param"
)

// Options configures a campaign run.
type Options struct {
	// Seed is the campaign seed; everything else is derived from it.
	Seed int64
	// N is the total number of injection specs per design, split across
	// the campaign apps (remainder to the first apps).
	N int
	// Workers bounds concurrent units (0 = NumCPU).
	Workers int
	// Apps restricts the campaign (default: all seven).
	Apps []string
	// Designs restricts the designs (default: Baseline and TVARAK — the
	// miss/detect contrast the paper's Table 4 argument rests on).
	Designs []param.Design
	// Async shapes every Vilamb-design unit's machine (epoch, dirty
	// granularity, battery/incremental); ignored for other designs. The
	// zero value is the classic Vilamb sketch, and leaves fingerprints
	// and unit keys identical to their pre-async forms.
	Async param.AsyncConfig
	// Shrink minimizes each failing unit's schedule after the campaign.
	Shrink bool
	// ShrinkBudget caps re-runs per shrunk unit (default 48).
	ShrinkBudget int
	// Progress, if non-nil, is called after each unit (serialized).
	Progress func(done, total int, u *UnitReport)
	// Context, when non-nil, cancels the campaign cooperatively: no new
	// unit starts once it is done, in-flight units unwind at their
	// engine's next phase boundary, finished units are kept, and the
	// report marks itself interrupted (nil slots stay in Units order).
	Context context.Context
	// Journal, when non-nil, checkpoints each finished unit durably under
	// a fingerprint of (seed, N, app, design); a resumed campaign (the
	// same journal reopened) restores journaled units instead of
	// re-simulating them. Units are deterministic, so a resumed report is
	// byte-identical to an uninterrupted one.
	Journal *harness.Journal
	// Live, when non-nil, streams unit lifecycle onto the /runs board and
	// folds each finished unit's armed/detected/recovered totals into the
	// tvarak_fault_* counters. Strictly read-only: reports are
	// byte-identical with or without it.
	Live *live.Telemetry
}

// Report is the complete campaign outcome.
type Report struct {
	Seed       int64    `json:"seed"`
	Injections int      `json:"injections"` // specs per design
	Apps       []string `json:"apps"`
	Designs    []string `json:"designs"`

	Units []*UnitReport `json:"units"`

	Fired             int `json:"fired"`
	SilentCorruptions int `json:"silentCorruptions"`
	Undetected        int `json:"undetected"`
	Unrecovered       int `json:"unrecovered"`
	AppPanics         int `json:"appPanics"`
	CrashPoints       int `json:"crashPoints"`
	Failures          int `json:"failures"`

	// Asynchronous-design totals (zero and absent unless Vilamb-family
	// units ran): injections absorbed inside an open epoch window, and
	// lines quarantined as detected-but-unrepairable.
	InWindowSilent   int    `json:"inWindowSilent,omitempty"`
	QuarantinedLines uint64 `json:"quarantinedLines,omitempty"`

	// Resumed counts units restored from a journal instead of re-run;
	// Interrupted counts unit slots left empty by cancellation. Both are
	// zero (and absent from the wire format) on a clean uninterrupted
	// run, preserving byte-determinism of historical reports.
	Resumed     int `json:"resumed,omitempty"`
	Interrupted int `json:"interrupted,omitempty"`
}

// normalized resolves the campaign's defaulted knobs: the app list, the
// design list, and the total injection count. Every consumer of the
// enumeration (Run, CampaignUnits, AssembleReport — and through them the
// fleet's gateway and workers) must agree on these, or fingerprints and
// report headers would diverge between a local and a distributed run.
func (opt Options) normalized() (apps []string, designs []param.Design, total int) {
	apps = opt.Apps
	if len(apps) == 0 {
		apps = AppNames()
	}
	designs = opt.Designs
	if len(designs) == 0 {
		designs = []param.Design{param.Baseline, param.Tvarak}
	}
	total = opt.N
	if total <= 0 {
		total = len(apps)
	}
	return apps, designs, total
}

// Scope identifies the campaign's shape for journal binding and the
// fleet's gateway/worker handshake: seed, total injections, app list, and
// — only when non-default, so historical scopes stay byte-identical — the
// design list and async configuration. A local tvarak-fault journal and a
// gateway journal use the same string, so they are interchangeable.
func (opt Options) Scope() string {
	s := fmt.Sprintf("fault-campaign|seed=%d|n=%d|apps=%s",
		opt.Seed, opt.N, strings.Join(opt.Apps, ","))
	if len(opt.Designs) > 0 {
		var names []string
		for _, d := range opt.Designs {
			names = append(names, d.String())
		}
		s += "|designs=" + strings.Join(names, ",")
	}
	if !opt.Async.IsZero() {
		s += "|async=" + opt.Async.Label()
	}
	return s
}

// CampaignUnit is one enumerated unit of a campaign: the standalone
// re-entry parameters (RunSingleUnit replays it bit-identically anywhere),
// the campaign-level journal fingerprint, and the human label. The slice
// order from CampaignUnits (app-major, design-minor) IS the report order.
type CampaignUnit struct {
	Params UnitParams
	Fp     string
	Label  string
}

// CampaignUnits enumerates the campaign's units without running anything.
// It is the shared enumeration under Run and under the fleet's
// gateway/worker split: both sides derive the identical unit list (and
// fingerprints) from the same Options, so a lease's fingerprint
// cross-checks against an independently-enumerated unit.
func CampaignUnits(opt Options) ([]CampaignUnit, error) {
	apps, designs, total := opt.normalized()
	var units []CampaignUnit
	per, extra := total/len(apps), total%len(apps)
	for ai, name := range apps {
		if _, err := lookupApp(name); err != nil {
			return nil, err
		}
		n := per
		if ai < extra {
			n++
		}
		// Per-app seed: decorrelate apps while keeping the derivation
		// printable/reproducible from the campaign seed alone.
		seed := opt.Seed + int64(ai)*0x4f1bbcdcbfa53e0b
		for _, d := range designs {
			p := UnitParams{App: name, Design: d, Seed: seed, N: n}
			fp := fmt.Sprintf("fault-unit|seed=%d|n=%d|%s|%s",
				opt.Seed, total, name, d)
			if d == param.Vilamb && !opt.Async.IsZero() {
				p.EpochCyc = opt.Async.EpochCyc
				p.DirtyGran = opt.Async.DirtyGran.String()
				p.Battery = opt.Async.Battery
				p.Incremental = opt.Async.Incremental
				fp += "|async=" + opt.Async.Label()
			}
			units = append(units, CampaignUnit{
				Params: p,
				Fp:     fp,
				Label:  name + "/" + d.String(),
			})
		}
	}
	return units, nil
}

// AssembleReport folds per-unit reports (in CampaignUnits order; nil slots
// mark units that never ran) into the campaign Report, exactly as Run
// does: totals, failure summary error, optional shrinking of failing
// units, and the interrupted accounting. The fleet's gateway merges
// worker-produced unit reports through this, so a distributed campaign's
// JSONL is byte-identical to a local run's.
func AssembleReport(opt Options, units []CampaignUnit, reports []*UnitReport) (*Report, error) {
	apps, designs, total := opt.normalized()
	rep := &Report{Seed: opt.Seed, Injections: total, Apps: apps, Units: reports}
	for _, d := range designs {
		rep.Designs = append(rep.Designs, d.String())
	}
	var failed []string
	for i, u := range reports {
		if u == nil { // slot never ran: the campaign was cancelled
			rep.Interrupted++
			continue
		}
		rep.Fired += u.Fired
		rep.SilentCorruptions += u.SilentCorruptions
		rep.Undetected += u.Undetected
		rep.Unrecovered += u.Unrecovered
		rep.AppPanics += u.AppPanics
		rep.CrashPoints += u.CrashPoints
		rep.InWindowSilent += u.InWindowSilent
		rep.QuarantinedLines += u.QuarantinedLines
		if u.Failure != "" {
			rep.Failures++
			failed = append(failed, u.Label())
			if opt.Shrink {
				budget := opt.ShrinkBudget
				if budget <= 0 {
					budget = 48
				}
				p := units[i].Params
				app, err := lookupApp(p.App)
				if err != nil {
					return rep, err
				}
				plan := NewPlan(p.App, p.Seed, p.N)
				u.MinimalSpecs, u.ShrinkRuns = shrinkUnit(app, p.Design, plan, budget, p.AsyncCfg())
			}
		}
	}
	if len(failed) > 0 {
		return rep, fmt.Errorf("fault: %d campaign unit(s) failed: %s",
			len(failed), strings.Join(failed, ", "))
	}
	if rep.Interrupted > 0 {
		var cause error
		if opt.Context != nil {
			cause = context.Cause(opt.Context)
		}
		return rep, fmt.Errorf("fault: campaign interrupted, %d unit(s) not run: %w",
			rep.Interrupted, cause)
	}
	return rep, nil
}

// Run executes the campaign: one unit per (app, design), the same
// per-app plan hitting every design. Units are independent simulations,
// so they run across a worker pool; unit order in the report is fixed
// (app-major, design-minor) regardless of completion order. The returned
// error summarizes failed units — the full detail is in the report.
func Run(opt Options) (*Report, error) {
	units, err := CampaignUnits(opt)
	if err != nil {
		return nil, err
	}
	reports := make([]*UnitReport, len(units))
	var (
		mu      sync.Mutex
		done    int
		resumed int
	)
	if opt.Live != nil {
		opt.Live.Board.Begin("fault-campaign", len(units))
	}
	_ = harness.Runner{Workers: opt.Workers, Context: opt.Context}.ForEach(len(units), func(i int) error {
		var u *UnitReport
		if opt.Journal != nil {
			var ju UnitReport
			if opt.Journal.Lookup("unit", units[i].Fp, &ju) {
				u = &ju
				if opt.Live != nil {
					opt.Live.Runner.Restored.AddAt(i, 1)
					opt.Live.Board.CellRestored(i, units[i].Label, 0, 0)
				}
				mu.Lock()
				resumed++
				mu.Unlock()
			}
		}
		if u == nil {
			if opt.Live != nil {
				opt.Live.Runner.Started.AddAt(i, 1)
				opt.Live.Board.CellRunning(i, units[i].Label)
			}
			var err error
			u, err = RunSingleUnit(opt.Context, units[i].Params)
			if u == nil {
				// Interrupted mid-unit: the slot stays empty (counted as
				// Interrupted in the fold), nothing is journaled, and the
				// error stops the pool from starting further units.
				return err
			}
			if opt.Journal != nil {
				if err := opt.Journal.Record("unit", units[i].Fp, u); err != nil {
					return fmt.Errorf("fault: journaling unit %s: %w", u.Label(), err)
				}
			}
			if opt.Live != nil {
				// Executed units (not restored ones) fold their injection
				// outcomes into the process-wide fault counters: /metrics
				// reports the work this process actually performed.
				opt.Live.Fault.Armed.AddAt(i, uint64(u.Armed))
				opt.Live.Fault.Detected.AddAt(i, u.Detections)
				opt.Live.Fault.Recovered.AddAt(i, u.Recoveries)
				if u.Failure != "" {
					opt.Live.Runner.Failed.AddAt(i, 1)
					opt.Live.Board.CellFailed(i, units[i].Label, u.Failure, false)
				} else {
					opt.Live.Runner.Finished.AddAt(i, 1)
					opt.Live.Board.CellDone(i, 0, 0)
				}
			}
		}
		reports[i] = u
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(units), u)
			mu.Unlock()
		}
		return nil // unit failures live in the report, not the pool
	})

	rep, err := AssembleReport(opt, units, reports)
	rep.Resumed = resumed
	return rep, err
}
