// Package fault is the deterministic fault-injection campaign engine: a
// seeded-PRNG driver that interleaves lost-write, misdirected-write,
// misdirected-read and media-bit-flip injections (plus crash-then-recover
// points) into randomized workload schedules, with the shadow oracle
// (internal/oracle) as the arbiter of what every design must have done
// about each corruption.
//
// A campaign is pure data before it runs: NewPlan expands (app, seed, n)
// into rounds of injection specs whose targets are resolved against the
// workload's own written lines at run time, deterministically. Baseline
// must miss (and the oracle confirm) every firmware-bug corruption;
// TVARAK must detect and recover every one. Reports are deterministic
// JSONL — same seed, byte-identical bytes — and a failing unit's
// schedule is automatically shrunk to a minimal failing subset.
package fault

import (
	"math/rand"
)

// Kind is one injected fault type.
type Kind int

const (
	// LostWrite arms nvm.InjectLostWrite at the target line.
	LostWrite Kind = iota
	// MisdirectedWrite arms nvm.InjectMisdirectedWrite from the target
	// onto a victim line in a different parity group.
	MisdirectedWrite
	// MisdirectedRead arms nvm.InjectMisdirectedRead at the target,
	// delivering a donor line's content.
	MisdirectedRead
	// BitFlip flips one media bit in the target line (device ECC
	// detects this class; TVARAK additionally recovers it).
	BitFlip
	numKinds
)

// String returns the stable wire name used in reports.
func (k Kind) String() string {
	switch k {
	case LostWrite:
		return "lost-write"
	case MisdirectedWrite:
		return "misdirected-write"
	case MisdirectedRead:
		return "misdirected-read"
	case BitFlip:
		return "bit-flip"
	}
	return "unknown"
}

// Spec is one pre-drawn injection: the kind plus raw randomness consumed
// at run time to pick the target (R1), the victim/donor or flipped byte
// (R2) and the flipped bit (R3). Keeping specs free of addresses makes a
// plan reusable across designs — the same schedule hits Baseline and
// TVARAK — while target resolution stays deterministic.
type Spec struct {
	Kind Kind   `json:"kind"`
	R1   uint64 `json:"r1"`
	R2   uint64 `json:"r2"`
	R3   uint64 `json:"r3"`
}

// Round is one campaign round: arm the specs, run a workload segment
// seeded with OpsSeed, sweep-verify every written line, then (under
// TVARAK, when Crash is set) exercise a crash-then-daxfs-recovery point.
type Round struct {
	Specs   []Spec `json:"specs"`
	OpsSeed int64  `json:"opsSeed"`
	Crash   bool   `json:"crash"`
}

// Plan is a complete per-app injection schedule. Plans are design-
// independent: the campaign runs the same plan against every design.
type Plan struct {
	App    string  `json:"app"`
	Seed   int64   `json:"seed"`
	Rounds []Round `json:"rounds"`
}

// Injections counts the plan's specs.
func (p Plan) Injections() int {
	n := 0
	for _, r := range p.Rounds {
		n += len(r.Specs)
	}
	return n
}

// specsPerRound bounds how many injections one workload segment absorbs;
// small enough that distinct injections rarely compete for parity groups,
// large enough that campaigns don't degenerate into one-spec rounds.
const specsPerRound = 8

// NewPlan expands (app, seed, n) into a deterministic schedule of n
// injection specs. Kinds are stratified round-robin (every window of four
// injections covers all four kinds, so even tiny campaigns exercise each
// class) and then shuffled within each round for schedule variety.
func NewPlan(app string, seed int64, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{App: app, Seed: seed}
	for i := 0; i < n; {
		k := min(specsPerRound, n-i)
		r := Round{OpsSeed: rng.Int63(), Crash: rng.Intn(3) == 0}
		for j := 0; j < k; j++ {
			r.Specs = append(r.Specs, Spec{
				Kind: Kind((i + j) % int(numKinds)),
				R1:   rng.Uint64(),
				R2:   rng.Uint64(),
				R3:   rng.Uint64(),
			})
		}
		rng.Shuffle(len(r.Specs), func(a, b int) {
			r.Specs[a], r.Specs[b] = r.Specs[b], r.Specs[a]
		})
		p.Rounds = append(p.Rounds, r)
		i += k
	}
	return p
}

// withSpecs returns a copy of p keeping only the specs whose flat indices
// (plan order) are in keep — the shrinker's reduction operator. Rounds
// and their OpsSeeds are preserved so the workload schedule is unchanged.
func (p Plan) withSpecs(keep map[int]bool) Plan {
	out := Plan{App: p.App, Seed: p.Seed}
	flat := 0
	for _, r := range p.Rounds {
		nr := Round{OpsSeed: r.OpsSeed, Crash: r.Crash}
		for _, s := range r.Specs {
			if keep[flat] {
				nr.Specs = append(nr.Specs, s)
			}
			flat++
		}
		out.Rounds = append(out.Rounds, nr)
	}
	return out
}
