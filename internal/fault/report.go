package fault

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteJSONL streams the campaign report as JSON Lines: one campaign
// header, then for each unit its injection lines followed by a unit
// summary line (without the injections, which precede it), then one
// campaign summary. Field order comes from struct marshalling and the
// report holds no timestamps or map-ordered data, so a same-seed rerun
// produces byte-identical output — the determinism gate diffs exactly
// these bytes.
func WriteJSONL(w io.Writer, r *Report) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	type header struct {
		Type       string   `json:"type"`
		Seed       int64    `json:"seed"`
		Injections int      `json:"injections"`
		Apps       []string `json:"apps"`
		Designs    []string `json:"designs"`
	}
	if err := enc.Encode(header{"campaign", r.Seed, r.Injections, r.Apps, r.Designs}); err != nil {
		return err
	}

	type injLine struct {
		Type   string `json:"type"`
		App    string `json:"app"`
		Design string `json:"design"`
		*InjectionRecord
	}
	type unitLine struct {
		Type string `json:"type"`
		*UnitReport
		Injections []*InjectionRecord `json:"injections,omitempty"` // suppressed
	}
	for _, u := range r.Units {
		if u == nil { // slot left empty by a cancelled campaign
			continue
		}
		for _, rec := range u.Injections {
			if err := enc.Encode(injLine{"injection", u.App, u.Design, rec}); err != nil {
				return err
			}
		}
		if err := enc.Encode(unitLine{Type: "unit", UnitReport: u}); err != nil {
			return err
		}
	}

	type summary struct {
		Type              string `json:"type"`
		Units             int    `json:"units"`
		Fired             int    `json:"fired"`
		SilentCorruptions int    `json:"silentCorruptions"`
		Undetected        int    `json:"undetected"`
		Unrecovered       int    `json:"unrecovered"`
		AppPanics         int    `json:"appPanics"`
		CrashPoints       int    `json:"crashPoints"`
		Failures          int    `json:"failures"`
		// Interrupted appears only on partial (cancelled) reports; Resumed
		// is deliberately NOT serialized — a resumed run's JSONL must be
		// byte-identical to an uninterrupted run's.
		Interrupted int `json:"interrupted,omitempty"`
	}
	if err := enc.Encode(summary{Type: "summary", Units: len(r.Units), Fired: r.Fired,
		SilentCorruptions: r.SilentCorruptions, Undetected: r.Undetected,
		Unrecovered: r.Unrecovered, AppPanics: r.AppPanics, CrashPoints: r.CrashPoints,
		Failures: r.Failures, Interrupted: r.Interrupted}); err != nil {
		return err
	}
	return bw.Flush()
}
