package fault

import (
	"fmt"

	"tvarak/internal/apps/fio"
	"tvarak/internal/apps/kvtrees"
	"tvarak/internal/apps/nstore"
	"tvarak/internal/apps/redispm"
	"tvarak/internal/apps/stream"
	"tvarak/internal/harness"
)

// appSpec builds one campaign workload at campaign scale (SmallTest
// machines: 4 cores, 32 MB NVM) and reseeds it between segments. Every
// adapter's Workers must be re-callable with a mutated Cfg — all seven
// paper applications derive their per-call RNGs from Cfg.Seed, so each
// segment replays a fresh deterministic op schedule against the
// already-set-up persistent state.
type appSpec struct {
	name   string
	make   func(seed int64) harness.Workload
	reseed func(w harness.Workload, seed int64)
}

// campaignApps lists the seven applications of the paper's evaluation at
// campaign scale: few instances (≤ SmallTest's 4 cores), small heaps, and
// update-heavy mixes so segments keep dirtying mapped lines without
// growing the heaps (in-place updates only — campaigns run dozens of
// segments against one setup).
func campaignApps() []appSpec {
	return []appSpec{
		{
			name: "redis",
			make: func(seed int64) harness.Workload {
				return redispm.New(redispm.Config{
					Instances: 2, Keys: 384, Ops: 250, ValueSize: 64,
					SetOnly: true, RehashEvery: 24, ComputeCyc: 1,
					HeapBytes: 1 << 20, Seed: seed,
				})
			},
			reseed: func(w harness.Workload, seed int64) { w.(*redispm.Workload).Cfg.Seed = seed },
		},
		{
			name: "ctree",
			make: func(seed int64) harness.Workload {
				return kvtrees.New(kvCfg(kvtrees.CTree, seed))
			},
			reseed: func(w harness.Workload, seed int64) { w.(*kvtrees.Workload).Cfg.Seed = seed },
		},
		{
			name: "btree",
			make: func(seed int64) harness.Workload {
				return kvtrees.New(kvCfg(kvtrees.BTree, seed))
			},
			reseed: func(w harness.Workload, seed int64) { w.(*kvtrees.Workload).Cfg.Seed = seed },
		},
		{
			name: "rbtree",
			make: func(seed int64) harness.Workload {
				return kvtrees.New(kvCfg(kvtrees.RBTree, seed))
			},
			reseed: func(w harness.Workload, seed int64) { w.(*kvtrees.Workload).Cfg.Seed = seed },
		},
		{
			name: "nstore",
			make: func(seed int64) harness.Workload {
				return nstore.New(nstore.Config{
					Mix: nstore.UpdateHeavy, Clients: 2, Tuples: 512,
					TupleBytes: 128, FieldBytes: 64, Txns: 200,
					ComputeCyc: 1, HeapBytes: 1 << 20, Seed: seed,
				})
			},
			reseed: func(w harness.Workload, seed int64) { w.(*nstore.Workload).Cfg.Seed = seed },
		},
		{
			name: "fio",
			make: func(seed int64) harness.Workload {
				return fio.New(fio.Config{
					Pattern: fio.Rand, Write: true, Threads: 2,
					RegionBytes: 256 << 10, AccessBytes: 32 << 10,
					BlockBytes: 4096, ComputeCyc: 1, Seed: seed,
				})
			},
			reseed: func(w harness.Workload, seed int64) { w.(*fio.Workload).Cfg.Seed = seed },
		},
		{
			name: "stream",
			make: func(seed int64) harness.Workload {
				return stream.New(stream.Config{
					Kernel: stream.Triad, Threads: 2, ArrayBytes: 64 << 10,
					ComputeCyc: 1, Seed: seed,
				})
			},
			reseed: func(w harness.Workload, seed int64) { w.(*stream.Workload).Cfg.Seed = seed },
		},
	}
}

func kvCfg(s kvtrees.Structure, seed int64) kvtrees.Config {
	return kvtrees.Config{
		Structure: s, Mix: kvtrees.UpdateOnly, Instances: 2, Keys: 256,
		Ops: 200, ValueSize: 64, ComputeCyc: 1, HeapBytes: 1 << 20, Seed: seed,
	}
}

// AppNames lists the campaign applications in report order.
func AppNames() []string {
	apps := campaignApps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.name
	}
	return names
}

func lookupApp(name string) (appSpec, error) {
	for _, a := range campaignApps() {
		if a.name == name {
			return a, nil
		}
	}
	return appSpec{}, fmt.Errorf("fault: unknown campaign app %q", name)
}
