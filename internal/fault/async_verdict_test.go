package fault

import (
	"testing"

	"tvarak/internal/param"
)

// TestAsyncVerdictTable is the table-driven gate on the epoch-aware oracle
// semantics: for each design (synchronous, asynchronous at several points
// of the epoch axis, battery preset, baseline) the same seeded injection
// plan must resolve to the design's contracted verdict classes —
//
//   - Baseline: fired firmware-bug corruption stays oracle-confirmed
//     silent; nothing is detected.
//   - TVARAK (synchronous): everything detected and recovered at the
//     sweep; no injection is ever classified in-window.
//   - Vilamb, one round (corruption armed INSIDE the open epoch window):
//     the reconciliation pass absorbs dirty-line corruption —
//     expected-silent, never a failure, never an out-of-window miss.
//   - Vilamb, several rounds (corruption lands AFTER earlier epochs
//     reconciled the lines): the scrub pass must detect it; repaired or
//     quarantined, but never silently missed (Undetected == 0).
//   - Battery preset: staged intent CRCs verify at the reconciliation
//     point, so nothing may be absorbed in-window (InWindowSilent == 0)
//     — deferral with a zero silent-vulnerability window.
//
// The cases run the real unit machinery (runUnit) on a fixed seed, so
// they double as race-set coverage of the async reconcile/verdict path.
func TestAsyncVerdictTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	const seed = 9
	cases := []struct {
		name   string
		app    string
		design param.Design
		async  param.AsyncConfig
		n      int
		check  func(t *testing.T, rep *UnitReport)
	}{
		{
			name: "baseline-confirmed-silent", app: "ctree", design: param.Baseline, n: 8,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.SilentCorruptions == 0 {
					t.Error("baseline: no oracle-confirmed silent corruption")
				}
				if rep.Detections != 0 {
					t.Errorf("baseline: %d detections without a redundancy scheme", rep.Detections)
				}
				if rep.InWindowSilent != 0 {
					t.Errorf("baseline: %d in-window verdicts on a windowless design", rep.InWindowSilent)
				}
			},
		},
		{
			name: "tvarak-synchronous-detects-all", app: "ctree", design: param.Tvarak, n: 8,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.Undetected != 0 || rep.Unrecovered != 0 {
					t.Errorf("tvarak: undetected=%d unrecovered=%d, want 0/0", rep.Undetected, rep.Unrecovered)
				}
				if rep.SilentCorruptions != 0 {
					t.Errorf("tvarak: %d silent corruptions", rep.SilentCorruptions)
				}
				if rep.Detections == 0 {
					t.Error("tvarak: nothing detected")
				}
				for _, rec := range rep.Injections {
					if rec.InWindow {
						t.Errorf("tvarak: injection at %#x classified in-window on a synchronous design", rec.Addr)
					}
				}
			},
		},
		{
			// One round: every armed corruption sits inside the first open
			// epoch window at the reconciliation point.
			name: "vilamb-inside-window-absorbed", app: "ctree", design: param.Vilamb,
			async: param.AsyncConfig{EpochCyc: 5000, DirtyGran: param.GranLine}, n: 8,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.Undetected != 0 {
					t.Errorf("vilamb(1 round): %d out-of-window misses inside the window", rep.Undetected)
				}
				if rep.InWindowSilent == 0 && rep.Detections == 0 && rep.QuarantinedLines == 0 {
					t.Error("vilamb(1 round): fired corruption neither absorbed in-window nor detected")
				}
			},
		},
		{
			// Three rounds: rounds 2-3 corrupt lines that rounds 1-2 already
			// reconciled — outside any window, so detection is mandatory.
			name: "vilamb-after-window-scrub-detects", app: "ctree", design: param.Vilamb,
			async: param.AsyncConfig{EpochCyc: 5000, DirtyGran: param.GranLine}, n: 24,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.Undetected != 0 {
					t.Errorf("vilamb(3 rounds): %d undetected out-of-window corruptions", rep.Undetected)
				}
				if rep.Detections == 0 {
					t.Error("vilamb(3 rounds): scrub never detected out-of-window corruption")
				}
				if rep.WindowLines == 0 {
					t.Error("vilamb(3 rounds): no vulnerability-window accounting")
				}
			},
		},
		{
			name: "vilamb-range-granularity", app: "stream", design: param.Vilamb,
			async: param.AsyncConfig{EpochCyc: 5000, DirtyGran: param.GranRange, Incremental: true}, n: 24,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.Undetected != 0 {
					t.Errorf("vilamb(range): %d undetected corruptions", rep.Undetected)
				}
			},
		},
		{
			name: "battery-zero-silent-window", app: "ctree", design: param.Vilamb,
			async: param.BatteryPreset(5000), n: 24,
			check: func(t *testing.T, rep *UnitReport) {
				if rep.InWindowSilent != 0 {
					t.Errorf("battery: %d corruptions absorbed in-window; the preset promises a zero silent window", rep.InWindowSilent)
				}
				if rep.Undetected != 0 {
					t.Errorf("battery: %d undetected corruptions", rep.Undetected)
				}
				for _, rec := range rep.Injections {
					if rec.InWindow {
						t.Errorf("battery: injection at %#x classified in-window", rec.Addr)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, err := lookupApp(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			plan := NewPlan(tc.app, seed, tc.n)
			rep := runUnit(nil, app, tc.design, plan, tc.async)
			if rep == nil {
				t.Fatal("unit voided without a context")
			}
			t.Logf("fired=%d det=%d rec=%d silent=%d inwin=%d quar=%d undet=%d unrec=%d winLines=%d failure=%q",
				rep.Fired, rep.Detections, rep.Recoveries, rep.SilentCorruptions,
				rep.InWindowSilent, rep.QuarantinedLines, rep.Undetected, rep.Unrecovered,
				rep.WindowLines, rep.Failure)
			if tc.design != param.Baseline && rep.Failure != "" {
				t.Fatalf("unit failed: %s", rep.Failure)
			}
			tc.check(t, rep)
		})
	}
}
