package fault

import (
	"context"
	"fmt"

	"tvarak/internal/param"
)

// UnitParams identifies one self-contained campaign unit: a single
// (app, design) fault-injection run whose plan is derived from Seed and N
// exactly like a campaign's. It is the re-entry API the soak harness uses
// to replay any unit in isolation — in-process for a reference run, or in
// a separate worker process for a kill/resume cycle — with a report
// byte-identical to the same unit anywhere else.
type UnitParams struct {
	// App is a campaign application name (see AppNames).
	App string `json:"app"`
	// Design is the redundancy scheme the unit runs under. Tvarak units
	// must detect and recover every injection; every other design is
	// baseline-class — injections must be oracle-confirmed silent.
	Design param.Design `json:"design"`
	// Seed derives the unit's plan (injection specs and workload
	// schedules). Same (App, Design, Seed, N): byte-identical report.
	Seed int64 `json:"seed"`
	// N is the number of injection specs in the plan (0 = a clean unit:
	// warmup segment plus the end-of-unit oracle verification only).
	N int `json:"n"`
	// Shards is the weave-shard count for the unit's machine (a free
	// determinism axis: results are byte-identical at any value).
	Shards int `json:"shards"`

	// EpochCyc, DirtyGran, Battery and Incremental shape the async
	// (Vilamb family) configuration of the unit's machine; all-default
	// for every other design, and omitted from the wire format and Key
	// when default so historical units stay byte- and key-identical.
	EpochCyc    uint64 `json:"epochCyc,omitempty"`
	DirtyGran   string `json:"dirtyGran,omitempty"`
	Battery     bool   `json:"battery,omitempty"`
	Incremental bool   `json:"incremental,omitempty"`
}

// AsyncCfg assembles the unit's param.AsyncConfig from the flat fields.
// DirtyGran strings come from our own enumeration (CLI flags validate
// before building units); an unknown string falls back to page
// granularity, ParseDirtyGran's zero value.
func (p UnitParams) AsyncCfg() param.AsyncConfig {
	g, _ := param.ParseDirtyGran(p.DirtyGran)
	return param.AsyncConfig{
		EpochCyc:    p.EpochCyc,
		DirtyGran:   g,
		Battery:     p.Battery,
		Incremental: p.Incremental,
	}
}

// Key is the stable identity string used for journaling and ledger lines.
func (p UnitParams) Key() string {
	k := fmt.Sprintf("%s/%s|seed=%d|n=%d|shards=%d",
		p.App, p.Design, p.Seed, p.N, p.Shards)
	if a := p.AsyncCfg(); !a.IsZero() {
		k += "|async=" + a.Label()
	}
	return k
}

// RunSingleUnit executes one campaign unit to completion and returns its
// report. Unit failures (a design missing a corruption, an oracle
// divergence, a panic in the simulated machine) live in the report's
// Failure field; the returned error covers only unknown apps and
// cooperative cancellation (a cancelled unit has no report — a half-run
// unit would fail its sweeps for reasons that are the interruption's
// fault, not the design's).
func RunSingleUnit(ctx context.Context, p UnitParams) (*UnitReport, error) {
	spec, err := lookupApp(p.App)
	if err != nil {
		return nil, err
	}
	plan := NewPlan(p.App, p.Seed, p.N)
	rep := runUnitShards(ctx, spec, p.Design, plan, p.Shards, p.AsyncCfg())
	if rep == nil {
		return nil, context.Cause(ctx)
	}
	return rep, nil
}
