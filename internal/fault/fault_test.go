package fault

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func TestPlanDeterminism(t *testing.T) {
	a := NewPlan("redis", 42, 20)
	b := NewPlan("redis", 42, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := NewPlan("redis", 43, 20)
	if reflect.DeepEqual(a.Rounds, c.Rounds) {
		t.Fatal("different seeds produced identical rounds")
	}
	if got := a.Injections(); got != 20 {
		t.Fatalf("Injections() = %d, want 20", got)
	}
	// Kind stratification: every full window of four specs (pre-shuffle,
	// so count per round) covers all four kinds.
	for ri, r := range a.Rounds {
		if len(r.Specs) != specsPerRound && ri != len(a.Rounds)-1 {
			t.Fatalf("round %d has %d specs", ri, len(r.Specs))
		}
		seen := map[Kind]int{}
		for _, s := range r.Specs {
			seen[s.Kind]++
		}
		if len(r.Specs) == specsPerRound && len(seen) != int(numKinds) {
			t.Fatalf("round %d covers only %d kinds", ri, len(seen))
		}
	}
}

func TestWithSpecsPreservesRounds(t *testing.T) {
	p := NewPlan("fio", 7, 12)
	keep := map[int]bool{1: true, 9: true}
	q := p.withSpecs(keep)
	if len(q.Rounds) != len(p.Rounds) {
		t.Fatalf("round count changed: %d != %d", len(q.Rounds), len(p.Rounds))
	}
	for i := range q.Rounds {
		if q.Rounds[i].OpsSeed != p.Rounds[i].OpsSeed || q.Rounds[i].Crash != p.Rounds[i].Crash {
			t.Fatalf("round %d schedule changed", i)
		}
	}
	if got := q.Injections(); got != 2 {
		t.Fatalf("kept %d specs, want 2", got)
	}
	if !reflect.DeepEqual(q.Rounds[0].Specs[0], p.Rounds[0].Specs[1]) {
		t.Fatal("kept the wrong spec")
	}
}

func TestDdminMinimizes(t *testing.T) {
	// Failure requires {3, 7} together; everything else is noise.
	fails := func(keep map[int]bool) bool { return keep[3] && keep[7] }
	keep, runs := ddmin(16, 200, fails)
	if !reflect.DeepEqual(keep, map[int]bool{3: true, 7: true}) {
		t.Fatalf("ddmin kept %v, want {3,7} (%d runs)", sortedIdxs(keep), runs)
	}
	// A failure independent of the specs shrinks to nothing.
	keep, _ = ddmin(8, 200, func(map[int]bool) bool { return true })
	if len(keep) != 0 {
		t.Fatalf("unconditional failure kept %v", sortedIdxs(keep))
	}
}

func TestDdminRespectsBudget(t *testing.T) {
	calls := 0
	_, runs := ddmin(64, 5, func(keep map[int]bool) bool { calls++; return keep[0] })
	if calls != runs || runs > 5 {
		t.Fatalf("runs=%d calls=%d, budget was 5", runs, calls)
	}
}

// TestCampaignContrast is the heart of the tentpole: one fixed-seed
// campaign over every application and both designs. Baseline must
// accumulate oracle-confirmed silent corruptions with zero detections;
// TVARAK must detect and recover every injected corruption with zero
// oracle findings. The same campaign rerun must serialize to identical
// bytes.
func TestCampaignContrast(t *testing.T) {
	run := func() (*Report, error) {
		return Run(Options{Seed: 20200530, N: 28, Workers: 4})
	}
	rep, err := run()
	if err != nil {
		for _, u := range rep.Units {
			if u.Failure != "" {
				t.Errorf("%s: %s", u.Label(), u.Failure)
			}
		}
		t.Fatalf("campaign failed: %v", err)
	}
	if len(rep.Units) != 2*len(AppNames()) {
		t.Fatalf("got %d units, want %d", len(rep.Units), 2*len(AppNames()))
	}
	var silent, tvarakDet, tvarakRec int
	for _, u := range rep.Units {
		switch u.Design {
		case param.Baseline.String():
			if u.Detections != 0 {
				t.Errorf("%s: baseline detected %d corruptions", u.Label(), u.Detections)
			}
			silent += u.SilentCorruptions
		case param.Tvarak.String():
			if u.Undetected != 0 || u.Unrecovered != 0 {
				t.Errorf("%s: undetected=%d unrecovered=%d", u.Label(), u.Undetected, u.Unrecovered)
			}
			tvarakDet += int(u.Detections)
			tvarakRec += int(u.Recoveries)
		}
	}
	if silent == 0 {
		t.Error("baseline missed no corruptions — the campaign armed nothing real")
	}
	if tvarakDet == 0 || tvarakRec == 0 {
		t.Errorf("tvarak detections=%d recoveries=%d, want both > 0", tvarakDet, tvarakRec)
	}
	if rep.CrashPoints == 0 {
		t.Error("no crash-recovery points exercised")
	}

	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, rep); err != nil {
		t.Fatal(err)
	}
	rep2, err := run()
	if err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
	if err := WriteJSONL(&b2, rep2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed reruns produced different report bytes")
	}
	for _, want := range []string{`"type":"campaign"`, `"type":"injection"`, `"type":"unit"`, `"type":"summary"`} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("report JSONL missing %s line", want)
		}
	}
}

// TestShrinkMinimizesFailingUnit drives the shrinker against real unit
// re-runs using the deterministic failure hook: a unit "fails" once two
// injections fire, so the minimal schedule is the smallest spec subset
// that still fires two.
func TestShrinkMinimizesFailingUnit(t *testing.T) {
	testFailMinFired = 2
	t.Cleanup(func() { testFailMinFired = 0 })

	app, err := lookupApp("fio")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan("fio", 11, 8)
	full := runUnit(nil, app, param.Tvarak, plan, param.AsyncConfig{})
	if full.Failure == "" {
		t.Fatal("hook did not fail the full unit")
	}
	specs, runs := shrinkUnit(app, param.Tvarak, plan, 64, param.AsyncConfig{})
	if runs == 0 || len(specs) == 0 {
		t.Fatalf("shrinker did not run (specs=%d runs=%d)", len(specs), runs)
	}
	if len(specs) >= plan.Injections() {
		t.Fatalf("shrinker removed nothing: %d of %d specs", len(specs), plan.Injections())
	}
	if len(specs) > 3 {
		t.Errorf("minimal schedule has %d specs, expected <= 3 for a 2-fire failure", len(specs))
	}
}

func TestCampaignRecordsAndShrinksFailures(t *testing.T) {
	testFailMinFired = 1
	t.Cleanup(func() { testFailMinFired = 0 })

	rep, err := Run(Options{Seed: 5, N: 4, Workers: 2, Apps: []string{"stream"},
		Designs: []param.Design{param.Tvarak}, Shrink: true, ShrinkBudget: 24})
	if err == nil {
		t.Fatal("expected campaign error for failing unit")
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", rep.Failures)
	}
	u := rep.Units[0]
	if u.Failure == "" || u.ShrinkRuns == 0 {
		t.Fatalf("failing unit not shrunk: failure=%q runs=%d", u.Failure, u.ShrinkRuns)
	}
	if len(u.MinimalSpecs) == 0 || len(u.MinimalSpecs) >= 4 {
		t.Fatalf("minimal schedule has %d specs", len(u.MinimalSpecs))
	}
}

func TestAppNames(t *testing.T) {
	names := AppNames()
	if len(names) != 7 {
		t.Fatalf("campaign covers %d apps, want the paper's 7", len(names))
	}
	if _, err := lookupApp("nope"); err == nil {
		t.Fatal("lookupApp accepted an unknown app")
	}
}

func TestCampaignJournalResumeByteIdentical(t *testing.T) {
	opt := Options{Seed: 7, N: 4, Workers: 2, Apps: []string{"stream", "fio"}}
	clean, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var cleanBuf bytes.Buffer
	if err := WriteJSONL(&cleanBuf, clean); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.journal")
	j1, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt.Journal = j1
	if _, err := Run(opt); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Resume with every unit journaled: nothing re-simulates, and the
	// report is byte-identical to the uninterrupted run's.
	j2, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt.Journal = j2
	rep, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != len(rep.Units) {
		t.Fatalf("Resumed = %d, want all %d units", rep.Resumed, len(rep.Units))
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), cleanBuf.Bytes()) {
		t.Error("resumed campaign report is not byte-identical to the uninterrupted run's")
	}
}

func TestRunUnitInterruptedMidFlight(t *testing.T) {
	// A cancelled context reaches the unit's engine: the run unwinds at
	// the next phase boundary and the unit returns nil — no half-run
	// report that would blame the interruption's sweep noise on the
	// design, and nothing for the campaign to journal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	app, err := lookupApp("stream")
	if err != nil {
		t.Fatal(err)
	}
	if rep := runUnit(ctx, app, param.Tvarak, NewPlan("stream", 3, 4), param.AsyncConfig{}); rep != nil {
		t.Fatalf("interrupted unit returned a report: %+v", rep)
	}
}

func TestCampaignCancellationLeavesPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no unit may start
	rep, err := Run(Options{Seed: 7, N: 2, Workers: 1, Apps: []string{"stream"}, Context: ctx})
	if err == nil {
		t.Fatal("expected an interruption error")
	}
	if rep.Interrupted != len(rep.Units) {
		t.Fatalf("Interrupted = %d, want all %d units", rep.Interrupted, len(rep.Units))
	}
	// A partial report must still serialize (nil unit slots skipped).
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"interrupted":2`)) {
		t.Errorf("partial report summary missing interruption accounting:\n%s", buf.String())
	}
}
