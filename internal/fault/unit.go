package fault

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"tvarak/internal/daxfs"
	"tvarak/internal/harness"
	"tvarak/internal/oracle"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// InjectionRecord is one injection's outcome in the report.
type InjectionRecord struct {
	Round  int    `json:"round"`
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr"`
	Victim uint64 `json:"victim,omitempty"`
	// Armed is false when no eligible target line existed (tiny
	// workloads, every group occupied); the spec was skipped.
	Armed bool `json:"armed"`
	// Fired: the bug consumed (or the flip applied). Cancelled: armed
	// but never triggered by the segment, disarmed at the sweep.
	Fired     bool `json:"fired"`
	Cancelled bool `json:"cancelled,omitempty"`
	// Benign: fired without leaving corruption or evidence (the buggy
	// payload happened to equal the old content) — nothing any design
	// could or should detect.
	Benign bool `json:"benign,omitempty"`
	// Detected/Recovered: the design traced EvCorruption/EvRecovery at
	// the injection's lines.
	Detected  bool `json:"detected"`
	Recovered bool `json:"recovered"`
	// Silent: the oracle confirmed corrupt bytes were read or persist
	// on media with no detection (expected under Baseline). ECC: the
	// device ECC flagged the line (bit flips under Baseline).
	Silent bool `json:"silent,omitempty"`
	ECC    bool `json:"ecc,omitempty"`
	// InWindow: the corruption hit a line that was dirty (awaiting its
	// epoch) at the asynchronous design's reconciliation point, so the
	// pass absorbed it — expected-silent inside the vulnerability window.
	InWindow bool `json:"inWindow,omitempty"`
}

// UnitReport is one (app, design) campaign unit's outcome.
type UnitReport struct {
	App        string             `json:"app"`
	Design     string             `json:"design"`
	Injections []*InjectionRecord `json:"injections"`

	Armed     int `json:"armed"`
	Fired     int `json:"fired"`
	Cancelled int `json:"cancelled"`
	Skipped   int `json:"skipped"`

	Detections  uint64 `json:"detections"`
	Recoveries  uint64 `json:"recoveries"`
	ECCErrors   uint64 `json:"eccErrors"`
	PhaseChecks uint64 `json:"phaseChecks"`

	// SilentCorruptions is the oracle-confirmed count of injections
	// that corrupted state with no detection — the Baseline signal.
	SilentCorruptions int `json:"silentCorruptions"`
	// Undetected and Unrecovered must both be zero for TVARAK:
	// sweep-delivered wrong bytes / silent reads, and corrupted lines
	// whose exclusion no recovery cleared.
	Undetected  int `json:"undetected"`
	Unrecovered int `json:"unrecovered"`

	// Asynchronous-design (Vilamb family) accounting. InWindowSilent
	// counts fired injections absorbed inside an open epoch window
	// (expected-silent; must be zero under the battery preset);
	// QuarantinedLines counts lines detected corrupt that parity could
	// not verifiably repair (detected-but-unrecovered, permitted for
	// async designs). WindowCyc/WindowLines are the realized
	// vulnerability-window integral over all reconciled lines.
	InWindowSilent   int    `json:"inWindowSilent,omitempty"`
	QuarantinedLines uint64 `json:"quarantinedLines,omitempty"`
	WindowCyc        uint64 `json:"windowCyc,omitempty"`
	WindowLines      uint64 `json:"windowLines,omitempty"`

	// AppPanics counts workload workers that crashed chasing corrupt
	// state (a wild pointer read from a silently-corrupted line). Under
	// Baseline that is a legitimate corruption consequence — the silent
	// read that caused it is already on record; under TVARAK it fails
	// the unit, because the application must never see corrupt bytes.
	AppPanics int `json:"appPanics,omitempty"`

	CrashPoints int    `json:"crashPoints"`
	Rounds      int    `json:"rounds"`
	Failure     string `json:"failure,omitempty"`

	// MinimalSpecs is the shrunk failing schedule (flat spec list), set
	// only when the unit failed and shrinking was enabled.
	MinimalSpecs []Spec `json:"minimalSpecs,omitempty"`
	ShrinkRuns   int    `json:"shrinkRuns,omitempty"`
}

// Label names the unit.
func (u *UnitReport) Label() string { return u.App + "/" + u.Design }

func (u *UnitReport) fail(format string, args ...any) {
	if u.Failure == "" {
		u.Failure = fmt.Sprintf(format, args...)
	}
}

// armedInj tracks one live injection until resolution.
type armedInj struct {
	rec    *InjectionRecord
	kind   Kind
	addrs  []uint64 // media lines this injection corrupts when it fires
	groups []uint64
	read   bool // resolves at the sweep (misdirected read), not before
}

type unitCtx struct {
	app    appSpec
	design param.Design
	plan   Plan
	rep    *UnitReport

	ctx         context.Context // nil = never cancelled
	interrupted bool            // ctx fired mid-unit; the report is void

	sys *harness.System
	o   *oracle.Oracle
	w   harness.Workload

	groups   map[uint64]bool // occupied parity groups (oracle.GroupKey)
	live     []*armedInj
	sweepBad map[uint64]bool // cumulative sweep divergences (oracle-confirmed)

	// inWindow marks lines that were dirty (inside an open epoch window)
	// at an asynchronous design's reconciliation point: the pass absorbed
	// their corruption, which stays expected-silent for the rest of the
	// unit. Only populated under the Vilamb design.
	inWindow map[uint64]bool
}

// runUnit executes one (app, design) unit of the campaign plan and
// returns its report; failures (including panics from the simulated
// machine, e.g. an engine invariant trip) are recorded on the report,
// never propagated — the shrinker re-runs units freely. A non-nil ctx
// cancels the unit cooperatively at the engine's next phase boundary;
// an interrupted unit returns nil (a half-run unit's report would fail
// the sweeps for reasons that are the interruption's fault, not the
// design's).
func runUnit(ctx context.Context, app appSpec, design param.Design, plan Plan, async param.AsyncConfig) (rep *UnitReport) {
	return runUnitShards(ctx, app, design, plan, 0, async)
}

// runUnitShards is runUnit with the weave-shard count threaded through to
// the unit's machine configuration. Shards never change results (the
// sharded weave is byte-identical at any setting, and the oracle's
// observers degrade it to serial anyway), so reports stay comparable
// across shard settings — the soak harness uses that as a free axis.
// async shapes the Vilamb family's machine (ignored for other designs);
// fault units always run with the scrub pass on, since scrubbing is the
// async designs' out-of-window detection mechanism.
func runUnitShards(ctx context.Context, app appSpec, design param.Design, plan Plan, shards int, async param.AsyncConfig) (rep *UnitReport) {
	rep = &UnitReport{App: plan.App, Design: design.String(), Rounds: len(plan.Rounds)}
	defer func() {
		if r := recover(); r != nil {
			rep.fail("panic: %v", r)
		}
	}()
	u := &unitCtx{
		app: app, design: design, plan: plan, rep: rep, ctx: ctx,
		groups:   make(map[uint64]bool),
		sweepBad: make(map[uint64]bool),
		inWindow: make(map[uint64]bool),
	}
	cfg := param.SmallTest(design)
	cfg.Shards = shards
	if design == param.Vilamb {
		async.Scrub = true
		cfg.Async = async
	}
	sys, err := harness.NewSystem(cfg)
	if err != nil {
		rep.fail("system: %v", err)
		return rep
	}
	u.sys = sys
	if ctx != nil {
		sys.Eng.SetContext(ctx)
	}
	u.w = app.make(plan.Seed)
	if err := u.w.Setup(sys); err != nil {
		rep.fail("setup: %v", err)
		return rep
	}
	u.o = oracle.Attach(sys.Eng, sys.FS)

	// Warmup segment: round 0's targets come from lines the workload
	// demonstrably writes.
	u.segment(plan.Seed ^ 0x5deece66d)
	if u.interrupted {
		return nil
	}

	for ri, round := range plan.Rounds {
		u.runRound(ri, round)
		if u.interrupted {
			return nil
		}
		if rep.Failure != "" {
			return rep
		}
	}
	if u.cancelled() {
		return nil
	}
	u.finish()
	return rep
}

func (u *unitCtx) segment(seed int64) {
	u.app.reseed(u.w, seed)
	u.runWorkers(u.w.Workers(u.sys))
}

// runWorkers runs workload workers with per-worker panic containment:
// an application that chases a silently-corrupted pointer dies with a
// wild access, and that must neither kill the campaign process nor
// deadlock the phase scheduler (a panicking worker would never yield).
// The bound-weave scheduler runs one core at a time, so the counter
// needs no lock. Under TVARAK any worker panic fails the unit.
func (u *unitCtx) runWorkers(workers []func(*sim.Core)) {
	wrapped := make([]func(*sim.Core), len(workers))
	for i, w := range workers {
		if w == nil {
			continue
		}
		wrapped[i] = func(c *sim.Core) {
			defer func() {
				if r := recover(); r != nil {
					u.rep.AppPanics++
					if u.design == param.Tvarak {
						u.rep.fail("workload worker crashed on corrupt state: %v", r)
					}
				}
			}()
			w(c)
		}
	}
	u.sys.Eng.Run(wrapped)
	if u.ctx != nil && u.ctx.Err() != nil {
		u.interrupted = true
	}
}

func (u *unitCtx) runRound(ri int, round Round) {
	var thisRound []*armedInj
	for _, spec := range round.Specs {
		inj := u.arm(ri, spec)
		if inj != nil {
			thisRound = append(thisRound, inj)
			u.live = append(u.live, inj)
		}
	}
	u.segment(round.OpsSeed)
	if u.interrupted {
		return
	}
	u.resolveWriteBugs(thisRound)
	u.sweep()
	if u.cancelled() {
		// The sweep's engine run was truncated mid-verification: fills
		// and recoveries it would have driven never happened, so the
		// post-sweep checks would charge the design with the
		// interruption's consequences. Void the report instead.
		return
	}
	u.asyncReconcile()
	if u.cancelled() {
		return
	}
	u.resolveAfterSweep(thisRound)
	if u.rep.Failure != "" {
		return
	}
	if round.Crash && u.design == param.Tvarak && u.sys.Ctrl != nil {
		rng := rand.New(rand.NewSource(round.OpsSeed ^ 0x0ddba11))
		if err := u.crashPoint(rng); err != nil {
			if u.cancelled() {
				return
			}
			u.rep.fail("crash point (round %d): %v", ri, err)
			return
		}
		u.rep.CrashPoints++
	}
}

// cancelled reports whether the unit's context has fired, marking the
// unit interrupted if so. Any engine run can stop early at a phase
// boundary once the context is done, so every post-run verdict must be
// gated on this — a half-run sweep's findings are the interruption's
// fault, not the design's.
func (u *unitCtx) cancelled() bool {
	if u.ctx != nil && u.ctx.Err() != nil {
		u.interrupted = true
	}
	return u.interrupted
}

// arm resolves one spec against the lines the workload has written so
// far and injects it. Targets never collide with an unresolved
// injection's parity group: RAID-5 reconstructs at most one bad line per
// group, so a second corruption in a group would be unrecoverable by
// design, not a detection miss.
func (u *unitCtx) arm(ri int, spec Spec) *armedInj {
	recp := &InjectionRecord{Round: ri, Kind: spec.Kind.String()}
	u.rep.Injections = append(u.rep.Injections, recp)

	cands := u.o.WrittenDataLines()
	addr, ok := u.pick(cands, spec.R1, 0)
	if !ok {
		u.rep.Skipped++
		return nil
	}
	nvmm := u.sys.Eng.NVM
	inj := &armedInj{rec: recp, kind: spec.Kind}
	switch spec.Kind {
	case LostWrite:
		nvmm.InjectLostWrite(addr)
		u.o.Exclude(addr)
		inj.addrs = []uint64{addr}
	case MisdirectedWrite:
		victim, ok := u.pickVictim(cands, spec.R2, addr)
		if !ok {
			u.rep.Skipped++
			return nil
		}
		nvmm.InjectMisdirectedWrite(addr, victim)
		u.o.Exclude(addr)
		u.o.Exclude(victim)
		inj.addrs = []uint64{addr, victim}
		recp.Victim = victim
	case MisdirectedRead:
		donor, ok := u.pickVictim(cands, spec.R2, addr)
		if !ok {
			u.rep.Skipped++
			return nil
		}
		nvmm.InjectMisdirectedRead(addr, donor)
		inj.read = true
		recp.Victim = donor
	case BitFlip:
		nvmm.FlipBit(addr+spec.R2%64, uint(spec.R3%8))
		u.o.Exclude(addr)
		inj.addrs = []uint64{addr}
		recp.Fired = true
		u.rep.Fired++
	}
	recp.Addr = addr
	recp.Armed = true
	u.rep.Armed++
	for _, la := range append([]uint64{addr, recp.Victim}, inj.addrs...) {
		if la == 0 {
			continue
		}
		g := u.o.GroupKey(la)
		if !u.groups[g] {
			u.groups[g] = true
			inj.groups = append(inj.groups, g)
		}
	}
	return inj
}

// pick chooses a target line from cands starting at R1 mod len, probing
// forward past ineligible lines (already corrupted, bug armed, parity
// group occupied).
func (u *unitCtx) pick(cands []uint64, r uint64, exclude uint64) (uint64, bool) {
	n := len(cands)
	if n == 0 {
		return 0, false
	}
	start := int(r % uint64(n))
	for i := 0; i < n; i++ {
		a := cands[(start+i)%n]
		if a == exclude || u.o.Excluded(a) || u.sys.Eng.NVM.BugArmed(a) {
			continue
		}
		if u.groups[u.o.GroupKey(a)] {
			continue
		}
		if !u.inCoverage(a) {
			continue
		}
		return a, true
	}
	return 0, false
}

// inCoverage restricts targets to lines the design claims to protect.
// For the asynchronous family that is the lines a scheme tracks (dirty
// now or reconciled before) — writes that bypass MarkDirty (allocator
// metadata, the schemes' own CRC/parity stores) are outside its coverage
// the same way non-transactional data is outside a TxB scheme's; every
// other design covers all written data lines.
func (u *unitCtx) inCoverage(addr uint64) bool {
	if u.design != param.Vilamb {
		return true
	}
	for _, v := range u.sys.Vilambs {
		if v.Tracked(addr) {
			return true
		}
	}
	return false
}

// pickVictim is pick with the additional constraint that the line's
// current content differs from addr's shadow content, so a misdirected
// write/read actually changes bytes somewhere observable.
func (u *unitCtx) pickVictim(cands []uint64, r uint64, addr uint64) (uint64, bool) {
	n := len(cands)
	if n == 0 {
		return 0, false
	}
	a64 := make([]byte, 64)
	v64 := make([]byte, 64)
	u.o.Want(addr, a64)
	start := int(r % uint64(n))
	for i := 0; i < n; i++ {
		v := cands[(start+i)%n]
		if v == addr || u.o.Excluded(v) || u.sys.Eng.NVM.BugArmed(v) {
			continue
		}
		if u.groups[u.o.GroupKey(v)] {
			continue
		}
		if !u.inCoverage(v) {
			continue
		}
		u.o.Want(v, v64)
		if bytes.Equal(a64, v64) {
			continue
		}
		return v, true
	}
	return 0, false
}

// resolveWriteBugs classifies this round's write-path injections after
// the segment: unfired bugs are cancelled and their exclusions dropped
// (media is untouched); fired ones keep only the lines where media
// actually diverges from intent (a payload equal to the old content is
// benign, and a line TVARAK already recovered is resolved).
func (u *unitCtx) resolveWriteBugs(round []*armedInj) {
	nvmm := u.sys.Eng.NVM
	for _, inj := range round {
		if inj.read {
			continue
		}
		if inj.kind == BitFlip {
			u.pruneHealed(inj)
			continue
		}
		if nvmm.BugArmed(inj.rec.Addr) {
			nvmm.CancelBugs(inj.rec.Addr)
			for _, a := range inj.addrs {
				u.o.Unexclude(a)
			}
			inj.addrs = nil
			inj.rec.Cancelled = true
			u.rep.Cancelled++
			continue
		}
		inj.rec.Fired = true
		u.rep.Fired++
		u.pruneHealed(inj)
	}
}

// pruneHealed drops exclusion for lines whose media already equals the
// shadow (benign fire, or the workload overwrote the line before any
// read saw it) and narrows the injection to its still-diverged lines.
func (u *unitCtx) pruneHealed(inj *armedInj) {
	got := make([]byte, 64)
	want := make([]byte, 64)
	var diverged []uint64
	for _, a := range inj.addrs {
		if !u.o.Excluded(a) {
			continue // a recovery already cleared it
		}
		u.sys.Eng.NVM.ReadRaw(a, got)
		u.o.Want(a, want)
		if bytes.Equal(got, want) {
			u.o.Unexclude(a)
			continue
		}
		diverged = append(diverged, a)
	}
	inj.addrs = diverged
}

// sweep drops caches and reloads every line the workload has ever
// written, comparing the delivered bytes against the shadow captured
// before the loads. Under TVARAK this forces every armed read bug and
// every surviving media divergence through fill verification; under
// Baseline it is how the oracle confirms silent corruption.
func (u *unitCtx) sweep() {
	lines := u.o.WrittenDataLines()
	eng := u.sys.Eng
	eng.DropCaches()
	want := make([]byte, len(lines)*64)
	for i, la := range lines {
		u.o.Want(la, want[i*64:(i+1)*64])
	}
	var bad []uint64
	eng.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, 64)
		for i, la := range lines {
			c.Load(la, buf)
			if !bytes.Equal(buf, want[i*64:(i+1)*64]) {
				bad = append(bad, la)
			}
		}
	}})
	for _, la := range bad {
		u.sweepBad[la] = true
	}
	if u.design == param.Tvarak {
		// Every delivered byte must be correct: TVARAK verifies fills
		// and recovers before handing data over.
		u.rep.Undetected += len(bad)
		if len(bad) > 0 {
			u.rep.fail("sweep delivered wrong bytes at %#x (+%d more) under %s",
				bad[0], len(bad)-1, u.rep.Design)
		}
	}
}

// asyncReconcile is the asynchronous designs' reconciliation point,
// placed deterministically between the sweep and the verdicts: note
// which diverged lines sit inside an open epoch window (dirty, awaiting
// reconciliation), then run every scheme's full epoch pass — scrub of
// previously reconciled clean lines, then drain of the dirty set — on a
// spare core. No bugs are armed here and the sweep just loaded every
// written line, so the pass is deterministic and its loads are cache-hot.
func (u *unitCtx) asyncReconcile() {
	if u.design != param.Vilamb || len(u.sys.Vilambs) == 0 {
		return
	}
	for _, inj := range u.live {
		for _, a := range inj.addrs {
			if !u.o.Excluded(a) || u.inWindow[a] {
				continue
			}
			for _, v := range u.sys.Vilambs {
				if v.Pending(a) {
					u.inWindow[a] = true
					break
				}
			}
		}
	}
	u.sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		for _, v := range u.sys.Vilambs {
			v.ProcessEpoch(c)
		}
	}})
}

// resolveAsync settles the asynchronous designs' per-line verdicts after
// the reconciliation point. Every still-diverged line must be accounted
// for: repaired (exclusion cleared by EvRecovery), detected (scrub or
// battery verification emitted EvCorruption — quarantined lines stay
// excluded, which is permitted: detected-but-unrecovered), or absorbed
// inside an open epoch window (expected-silent — but a failure under the
// battery preset, whose staged intent CRCs promise a zero silent window).
// Anything else is an out-of-window miss and fails the unit.
func (u *unitCtx) resolveAsync() {
	battery := u.sys.Cfg.Async.Battery
	for _, inj := range u.live {
		rec := inj.rec
		if !rec.Fired || rec.Cancelled || inj.read {
			continue
		}
		still := inj.addrs[:0]
		for _, a := range inj.addrs {
			if !u.o.Excluded(a) {
				continue // repaired: EvRecovery cleared the exclusion
			}
			still = append(still, a)
			if u.asyncQuarantined(a) || u.o.DetectedAt(a) {
				continue
			}
			if u.inWindow[a] && !battery {
				rec.InWindow = true
				continue
			}
			if u.inWindow[a] {
				u.rep.fail("%s at %#x: battery preset absorbed in-window corruption at %#x silently",
					rec.Kind, rec.Addr, a)
				return
			}
			u.rep.Undetected++
			u.rep.fail("%s at %#x: out-of-window corruption at %#x neither detected nor repaired",
				rec.Kind, rec.Addr, a)
			return
		}
		inj.addrs = still
	}
}

// asyncQuarantined reports whether some scheme holds the line at addr in
// quarantine (detected corrupt, parity reconstruction unverifiable).
func (u *unitCtx) asyncQuarantined(addr uint64) bool {
	for _, v := range u.sys.Vilambs {
		if v.QuarantinedAddr(addr) {
			return true
		}
	}
	return false
}

// resolveAfterSweep settles read bugs (the sweep's loads consume them),
// requires — under TVARAK — that every diverged line has been recovered
// by now (its exclusion cleared by EvRecovery), and settles the round's
// per-injection verdicts.
func (u *unitCtx) resolveAfterSweep(round []*armedInj) {
	nvmm := u.sys.Eng.NVM
	for _, inj := range round {
		if !inj.read {
			continue
		}
		if nvmm.BugArmed(inj.rec.Addr) {
			// The target line was never read — cannot happen, the sweep
			// loads every written line; tolerate it as a cancel.
			nvmm.CancelBugs(inj.rec.Addr)
			inj.rec.Cancelled = true
			u.rep.Cancelled++
		} else {
			inj.rec.Fired = true
			u.rep.Fired++
		}
	}
	if u.design == param.Tvarak {
		for _, inj := range u.live {
			still := 0
			for _, a := range inj.addrs {
				if u.o.Excluded(a) {
					still++
				}
			}
			if still > 0 && inj.rec.Fired {
				u.rep.Unrecovered += still
				u.rep.fail("%s at %#x: %d corrupted line(s) not recovered after sweep",
					inj.rec.Kind, inj.rec.Addr, still)
				return
			}
		}
	}
	if u.design == param.Vilamb {
		u.resolveAsync()
		if u.rep.Failure != "" {
			return
		}
	}
	u.settleRecords()
}

// settleRecords refreshes per-injection detection/recovery flags and
// releases the parity groups of resolved injections. Under TVARAK every
// fired injection is resolved by the sweep; under Baseline an injection
// whose corruption persists on media keeps its group occupied forever,
// so later injections pick elsewhere and stay independently attributable.
func (u *unitCtx) settleRecords() {
	keep := u.live[:0]
	for _, inj := range u.live {
		rec := inj.rec
		if rec.Cancelled {
			u.release(inj)
			continue
		}
		if !rec.Fired {
			keep = append(keep, inj)
			continue
		}
		rec.Detected = u.o.DetectedAt(rec.Addr) ||
			(rec.Victim != 0 && u.o.DetectedAt(rec.Victim))
		rec.Recovered = u.o.RecoveredAt(rec.Addr) ||
			(rec.Victim != 0 && u.o.RecoveredAt(rec.Victim))
		if !rec.Detected && !rec.Recovered && len(inj.addrs) == 0 {
			if inj.read {
				rec.Benign = !u.evidence(rec.Addr)
			} else {
				rec.Benign = true
			}
		}
		if u.design == param.Tvarak || rec.Benign || (len(inj.addrs) == 0 && !inj.read) {
			u.release(inj)
			continue
		}
		keep = append(keep, inj)
	}
	u.live = keep
}

func (u *unitCtx) release(inj *armedInj) {
	for _, g := range inj.groups {
		delete(u.groups, g)
	}
	inj.groups = nil
}

// evidence reports whether the oracle observed corruption at the line:
// a silent read, a sweep divergence, or an ECC-flagged read.
func (u *unitCtx) evidence(addr uint64) bool {
	if u.sweepBad[addr] {
		return true
	}
	for _, a := range u.o.SilentReads() {
		if a == addr {
			return true
		}
	}
	return u.eccAt(addr)
}

func (u *unitCtx) eccAt(addr uint64) bool {
	for _, a := range u.o.ECCReads() {
		if a == addr {
			return true
		}
	}
	return false
}

// crashPoint simulates a crash-with-media-damage and exercises the
// daxfs recovery path: corrupt a mapped file page with bit flips, run
// RecoverFilePage, and require byte-identical restoration against the
// oracle's shadow. The oracle is paused so neither the damage nor the
// reconstruction's raw writes leak into the model of intended content.
// It runs only after a clean sweep, so no exclusions are outstanding
// and the page's stripe holds exactly the shadow content.
func (u *unitCtx) crashPoint(rng *rand.Rand) error {
	var files []*daxfs.File
	for _, f := range u.sys.FS.Files() {
		if f.Mapped() && f.Pages > 0 {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	f := files[rng.Intn(len(files))]
	page := uint64(rng.Int63n(int64(f.Pages)))
	geo := u.sys.Eng.Geo
	base := geo.DataIndexAddr(f.StartDI+page, 0)
	ps := uint64(geo.PageSize)
	u.o.Pause()
	defer u.o.Resume()
	want := make([]byte, ps)
	u.o.ShadowRange(base, want)
	for i := 0; i < 4; i++ {
		u.sys.Eng.NVM.FlipBit(base+uint64(rng.Int63n(int64(ps))), uint(rng.Intn(8)))
	}
	if err := u.sys.FS.RecoverFilePage(f, page); err != nil {
		return err
	}
	got := make([]byte, ps)
	u.sys.Eng.NVM.ReadRaw(base, got)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("page %d of %q not byte-identical after RecoverFilePage", page, f.Name)
	}
	return nil
}

// testFailMinFired, when positive, fails any unit whose fired-injection
// count reaches it — a deterministic failure source so the shrinker can
// be tested against real unit re-runs. Never set outside tests.
var testFailMinFired int

// finish runs the end-of-unit exhaustive checks and the per-design
// verdicts.
func (u *unitCtx) finish() {
	rep := u.rep
	if testFailMinFired > 0 && rep.Fired >= testFailMinFired {
		rep.fail("test hook: %d injection(s) fired (threshold %d)", rep.Fired, testFailMinFired)
	}
	o := u.o
	st := u.sys.Eng.St
	rep.Detections = st.CorruptionsDetected
	rep.Recoveries = st.Recoveries
	rep.ECCErrors = st.ECCErrors
	rep.PhaseChecks = o.PhaseChecks()

	if err := o.PhaseErr(); err != nil {
		rep.fail("phase cross-check: %v", err)
	}
	if br := o.BadRepairs(); len(br) > 0 {
		rep.fail("recovery restored wrong content at %#x", br[0])
	}
	if divs := o.VerifyMedia(); len(divs) > 0 {
		rep.fail("media diverges from intent outside injected lines: %v (+%d more)",
			divs[0], len(divs)-1)
	}
	if divs := o.VerifyPageCsums(); len(divs) > 0 {
		rep.fail("page checksum table stale: %v", divs[0])
	}

	if u.design == param.Tvarak {
		if ex := o.ExcludedLines(); len(ex) > 0 {
			rep.Unrecovered += len(ex)
			rep.fail("%d corrupted line(s) never recovered, first %#x", len(ex), ex[0])
		}
		if sr := o.SilentReads(); len(sr) > 0 {
			rep.Undetected += len(sr)
			rep.fail("%d silent corrupt read(s), first %#x", len(sr), sr[0])
		}
		if divs := o.VerifyRedundancy(); len(divs) > 0 {
			rep.fail("persistent redundancy diverges from shadow: %v (+%d more)",
				divs[0], len(divs)-1)
		}
		if err := u.sys.Eng.CheckInvariantsAgainst(o); err != nil {
			rep.fail("engine invariants: %v", err)
		}
		if u.sys.Ctrl != nil {
			if err := u.sys.Ctrl.CheckInvariants(); err != nil {
				rep.fail("controller invariants: %v", err)
			}
		}
		return
	}

	if u.design == param.Vilamb {
		u.finishAsync()
		return
	}

	// Baseline: no detections, and every fired non-benign firmware bug
	// must be oracle-confirmed silent (bit flips are ECC-visible, which
	// is detection by the device, not the design — still not silent).
	if st.CorruptionsDetected != 0 {
		rep.fail("baseline reported %d detections", st.CorruptionsDetected)
	}
	firmwareFired := 0
	for _, rec := range rep.Injections {
		if !rec.Fired || rec.Benign || rec.Cancelled {
			continue
		}
		if rec.Kind == BitFlip.String() {
			rec.ECC = u.eccAt(rec.Addr)
			continue
		}
		firmwareFired++
		rec.Silent = u.evidence(rec.Addr) || (rec.Victim != 0 && u.evidence(rec.Victim))
		if rec.Silent {
			rep.SilentCorruptions++
		} else {
			rep.fail("%s at %#x fired but the oracle saw no corruption evidence",
				rec.Kind, rec.Addr)
		}
	}
	if firmwareFired > 0 && rep.SilentCorruptions == 0 {
		rep.fail("%d firmware bugs fired yet none were confirmed silent", firmwareFired)
	}
}

// finishAsync settles the asynchronous designs' unit-level verdicts.
// Epoch-aware semantics: a corruption absorbed inside an open epoch
// window is expected-silent (the oracle must still hold evidence of it —
// the window is a real exposure, not a free pass); everything outside a
// window must have been detected, with quarantine (detected, unrepaired)
// permitted. Misdirected reads are undetectable by any async design —
// there is no read-path verification — so they follow Baseline's
// confirmed-silent rule. Per-line misses already failed the unit in
// resolveAsync; this pass cross-checks the oracle evidence and fills the
// vulnerability-window accounting.
func (u *unitCtx) finishAsync() {
	rep := u.rep
	st := u.sys.Eng.St
	rep.QuarantinedLines = st.AsyncQuarantined
	rep.WindowCyc = st.AsyncWindowCyc
	rep.WindowLines = st.AsyncWindowLines
	for _, rec := range rep.Injections {
		if !rec.Fired || rec.Benign || rec.Cancelled {
			continue
		}
		if rec.Kind == BitFlip.String() {
			rec.ECC = u.eccAt(rec.Addr)
		}
		switch {
		case rec.Kind == MisdirectedRead.String():
			rec.Silent = u.evidence(rec.Addr) || (rec.Victim != 0 && u.evidence(rec.Victim))
			if rec.Silent {
				rep.SilentCorruptions++
			} else {
				rep.fail("%s at %#x fired but the oracle saw no corruption evidence",
					rec.Kind, rec.Addr)
			}
		case rec.InWindow:
			rec.Silent = u.evidence(rec.Addr) || (rec.Victim != 0 && u.evidence(rec.Victim))
			if !rec.Silent && !rec.Detected {
				rep.fail("%s at %#x absorbed in-window yet the oracle saw no corruption evidence",
					rec.Kind, rec.Addr)
			}
			rep.SilentCorruptions++
			rep.InWindowSilent++
		}
	}
}
