package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"
)

// ResourceSample is one line of the ops ledger: a wall-clock snapshot of
// process resources plus cumulative simulation progress. Unlike the
// deterministic metric exports, the ledger is explicitly wall-clock-domain —
// timestamps and rates vary run to run, which is the point: tools/opscheck
// reads a ledger to flag heap growth, goroutine leaks, and throughput
// drift, exactly the gates the soak roadmap item needs.
type ResourceSample struct {
	UnixMS         int64   `json:"unixMS"`
	HeapAlloc      uint64  `json:"heapAlloc"`
	HeapSys        uint64  `json:"heapSys"`
	HeapObjects    uint64  `json:"heapObjects"`
	NumGC          uint32  `json:"numGC"`
	Goroutines     int     `json:"goroutines"`
	RSSBytes       uint64  `json:"rssBytes"`
	Accesses       uint64  `json:"accesses"`
	AccessesPerSec float64 `json:"accessesPerSec"`
}

// ResourceSampler periodically appends ResourceSamples to a writer and
// mirrors the latest values into the telemetry gauges. It reads only
// runtime and /proc state plus telemetry counters — never simulation
// state — so sampling cannot perturb results.
type ResourceSampler struct {
	t      *Telemetry
	every  time.Duration
	w      *bufio.Writer
	enc    *json.Encoder
	mu     sync.Mutex // guards w/enc across ticker goroutine and Stop
	stop   chan struct{}
	done   chan struct{}
	prevAt time.Time
	prevAc uint64
}

// StartResourceSampler begins sampling every interval, writing JSONL to w.
// The first sample is taken immediately. Stop takes a final sample and
// flushes.
func StartResourceSampler(t *Telemetry, w io.Writer, every time.Duration) *ResourceSampler {
	if every <= 0 {
		every = time.Second
	}
	bw := bufio.NewWriter(w)
	s := &ResourceSampler{
		t:     t,
		every: every,
		w:     bw,
		enc:   json.NewEncoder(bw),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *ResourceSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sample()
		case <-s.stop:
			return
		}
	}
}

func (s *ResourceSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	acc := s.t.Engine.Accesses.Value()

	smp := ResourceSample{
		UnixMS:      now.UnixMilli(),
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		HeapObjects: ms.HeapObjects,
		NumGC:       ms.NumGC,
		Goroutines:  runtime.NumGoroutine(),
		RSSBytes:    readRSS(),
		Accesses:    acc,
	}

	s.mu.Lock()
	if !s.prevAt.IsZero() {
		if dt := now.Sub(s.prevAt).Seconds(); dt > 0 && acc >= s.prevAc {
			smp.AccessesPerSec = float64(acc-s.prevAc) / dt
		}
	}
	s.prevAt, s.prevAc = now, acc
	_ = s.enc.Encode(smp)
	s.mu.Unlock()

	s.t.Resource.HeapAlloc.SetInt(smp.HeapAlloc)
	s.t.Resource.Goroutines.SetInt(uint64(smp.Goroutines))
	s.t.Resource.RSS.SetInt(smp.RSSBytes)
	s.t.Resource.AccessesPerSec.Set(smp.AccessesPerSec)
}

// Stop halts the ticker, takes one final sample, and flushes the writer.
func (s *ResourceSampler) Stop() error {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// readRSS returns the process resident set size in bytes via
// /proc/self/statm (field 2 × page size), or 0 where /proc is unavailable.
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	var pages uint64
	if _, err := fmt.Sscanf(fields[1], "%d", &pages); err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

// ReadResourceLedger parses a JSONL ops ledger back into samples. Blank
// lines are skipped; a torn final line (process killed mid-write) is
// tolerated and dropped.
func ReadResourceLedger(r io.Reader) ([]ResourceSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var lines []string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []ResourceSample
	for i, line := range lines {
		var s ResourceSample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			// Tolerate only a torn final line (process killed
			// mid-write); a malformed line mid-file is a real error.
			if i == len(lines)-1 {
				break
			}
			return nil, fmt.Errorf("live: bad ledger line %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// OpsConfig configures StartOps: the full live-telemetry bundle a CLI
// enables with its -ops-* flags.
type OpsConfig struct {
	Addr        string        // ops HTTP listen address ("" = no server)
	AddrFile    string        // write the resolved listen address here (for :0 in scripts)
	LedgerPath  string        // append resource samples to this JSONL file ("" = no ledger)
	SampleEvery time.Duration // resource sample interval (default 1s)
}

// Ops bundles the running ops server, resource sampler, and ledger file.
type Ops struct {
	srv     *Server
	sampler *ResourceSampler
	ledger  *os.File
}

// StartOps starts whichever of the ops server and resource sampler the
// config asks for. Returns nil (no cleanup needed) when the config enables
// neither.
func StartOps(t *Telemetry, cfg OpsConfig) (*Ops, error) {
	if cfg.Addr == "" && cfg.LedgerPath == "" {
		return nil, nil
	}
	o := &Ops{}
	if cfg.Addr != "" {
		srv, err := Serve(cfg.Addr, t)
		if err != nil {
			return nil, err
		}
		o.srv = srv
		if cfg.AddrFile != "" {
			if err := os.WriteFile(cfg.AddrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				_ = srv.Close()
				return nil, err
			}
		}
	}
	if cfg.LedgerPath != "" {
		f, err := os.OpenFile(cfg.LedgerPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			if o.srv != nil {
				_ = o.srv.Close()
			}
			return nil, err
		}
		o.ledger = f
		o.sampler = StartResourceSampler(t, f, cfg.SampleEvery)
	}
	return o, nil
}

// Addr returns the ops server's bound address, or "" if no server runs.
func (o *Ops) Addr() string {
	if o == nil || o.srv == nil {
		return ""
	}
	return o.srv.Addr()
}

// Close stops the sampler (final sample + flush), closes the ledger, and
// shuts the server down, waiting for its goroutine. Safe on nil.
func (o *Ops) Close() error {
	if o == nil {
		return nil
	}
	var first error
	if o.sampler != nil {
		if err := o.sampler.Stop(); err != nil {
			first = err
		}
	}
	if o.ledger != nil {
		if err := o.ledger.Close(); err != nil && first == nil {
			first = err
		}
	}
	if o.srv != nil {
		if err := o.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
