package live

import (
	"fmt"
	"os"
	"strings"
)

// OpsCheck holds the thresholds for analyzing a resource ledger. The zero
// value is not useful; start from DefaultOpsCheck. These are the gates the
// soak roadmap item reuses: a 24h run must show flat heap, stable
// goroutine counts, and steady throughput.
type OpsCheck struct {
	// HeapGrowthFrac flags the heap check when the final HeapAlloc exceeds
	// the first by more than this fraction AND the rise was monotonic-ish
	// (see HeapMinRiseFrac). GC sawtooth makes raw comparisons noisy, so
	// both conditions must hold.
	HeapGrowthFrac float64
	// HeapMinRiseFrac is the fraction of inter-sample steps that must be
	// non-decreasing for growth to count as monotonic (a leak rises nearly
	// every step; a sawtooth does not).
	HeapMinRiseFrac float64
	// GoroutineSlack is how many more goroutines the final sample may show
	// over the first before the leak check flags.
	GoroutineSlack int
	// ThroughputDriftFrac flags the drift check when the mean
	// accesses/sec of the second half of active samples differs from the
	// first half's by more than this fraction.
	ThroughputDriftFrac float64
	// MinSamples is the minimum ledger length for the heap and drift
	// checks (short ledgers are all noise).
	MinSamples int
}

// DefaultOpsCheck returns the thresholds used by tools/opscheck unless
// overridden by flags.
func DefaultOpsCheck() OpsCheck {
	return OpsCheck{
		HeapGrowthFrac:      0.5,
		HeapMinRiseFrac:     0.9,
		GoroutineSlack:      8,
		ThroughputDriftFrac: 0.5,
		MinSamples:          8,
	}
}

// Finding is one flagged anomaly in a ledger.
type Finding struct {
	Check  string `json:"check"`  // "heap-growth" | "goroutine-leak" | "throughput-drift"
	Detail string `json:"detail"` // human-readable evidence
}

// Analyze runs every check over the ledger and returns the findings (empty
// means clean).
func (c OpsCheck) Analyze(samples []ResourceSample) []Finding {
	var out []Finding
	if f := c.checkHeap(samples); f != nil {
		out = append(out, *f)
	}
	if f := c.checkGoroutines(samples); f != nil {
		out = append(out, *f)
	}
	if f := c.checkDrift(samples); f != nil {
		out = append(out, *f)
	}
	return out
}

func (c OpsCheck) checkHeap(samples []ResourceSample) *Finding {
	if len(samples) < c.MinSamples {
		return nil
	}
	first, last := samples[0].HeapAlloc, samples[len(samples)-1].HeapAlloc
	if first == 0 {
		return nil
	}
	grown := float64(last) >= float64(first)*(1+c.HeapGrowthFrac)
	rising := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].HeapAlloc >= samples[i-1].HeapAlloc {
			rising++
		}
	}
	riseFrac := float64(rising) / float64(len(samples)-1)
	if grown && riseFrac >= c.HeapMinRiseFrac {
		return &Finding{
			Check: "heap-growth",
			Detail: fmt.Sprintf("HeapAlloc grew %d -> %d bytes (%.0f%%) with %.0f%% of steps non-decreasing",
				first, last, 100*(float64(last)/float64(first)-1), 100*riseFrac),
		}
	}
	return nil
}

func (c OpsCheck) checkGoroutines(samples []ResourceSample) *Finding {
	if len(samples) < 2 {
		return nil
	}
	first, last := samples[0].Goroutines, samples[len(samples)-1].Goroutines
	if last > first+c.GoroutineSlack {
		return &Finding{
			Check: "goroutine-leak",
			Detail: fmt.Sprintf("goroutines rose %d -> %d (slack %d)",
				first, last, c.GoroutineSlack),
		}
	}
	return nil
}

func (c OpsCheck) checkDrift(samples []ResourceSample) *Finding {
	// Only samples where simulation was actually making progress count:
	// startup, idle tails, and inter-experiment gaps would otherwise
	// drown the signal.
	var active []float64
	for _, s := range samples {
		if s.AccessesPerSec > 0 {
			active = append(active, s.AccessesPerSec)
		}
	}
	if len(active) < c.MinSamples {
		return nil
	}
	half := len(active) / 2
	m1 := mean(active[:half])
	m2 := mean(active[half:])
	if m1 <= 0 {
		return nil
	}
	drift := (m2 - m1) / m1
	if drift < 0 {
		drift = -drift
	}
	if drift > c.ThroughputDriftFrac {
		return &Finding{
			Check: "throughput-drift",
			Detail: fmt.Sprintf("accesses/sec mean drifted %.0f -> %.0f (%.0f%%, threshold %.0f%%)",
				m1, m2, 100*drift, 100*c.ThroughputDriftFrac),
		}
	}
	return nil
}

// CheckNames lists the selectable resource checks in report order.
func CheckNames() []string { return []string{"heap", "goroutines", "drift"} }

// WithChecks returns a copy of c with every check NOT named disabled (its
// threshold pushed out of reach, so Analyze stays a single pass and check
// selection stays declarative). An empty selection keeps every check. This
// is the selection logic tools/opscheck and the soak gates share; an
// unknown name is an error, matching the CLI's strictness.
func (c OpsCheck) WithChecks(names ...string) (OpsCheck, error) {
	if len(names) == 0 {
		return c, nil
	}
	enabled := map[string]bool{}
	for _, n := range names {
		switch n = strings.TrimSpace(n); n {
		case "heap", "goroutines", "drift":
			enabled[n] = true
		case "":
		default:
			return c, fmt.Errorf("live: unknown check %q (want heap, goroutines, drift)", n)
		}
	}
	if !enabled["heap"] {
		c.HeapGrowthFrac = 1e18
	}
	if !enabled["goroutines"] {
		c.GoroutineSlack = 1 << 30
	}
	if !enabled["drift"] {
		c.ThroughputDriftFrac = 1e18
	}
	return c, nil
}

// AnalyzeLedgerFile reads the resource ledger at path and runs every
// enabled check over it: the one code path behind both tools/opscheck and
// the soak harness's periodic resource gates. The parsed samples are
// returned alongside the findings so callers can render summaries without
// a second read.
func (c OpsCheck) AnalyzeLedgerFile(path string) ([]Finding, []ResourceSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	samples, err := ReadResourceLedger(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	return c.Analyze(samples), samples, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var t float64
	for _, x := range v {
		t += x
	}
	return t / float64(len(v))
}
