package live

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadResourceLedger hammers the JSONL ops-ledger reader with the
// shapes a crashed or concurrently-writing process leaves behind: torn
// final lines, giant lines, blank lines, and interleaved garbage. Run with
// the native engine, e.g.:
//
//	go test ./internal/live/ -fuzz FuzzReadResourceLedger -fuzztime 30s
//
// Seed corpora live under testdata/fuzz/FuzzReadResourceLedger/ so plain
// `go test` always replays them.
//
// Properties: the reader never panics; whatever it accepts survives a
// serialize-and-reread round trip unchanged (so a soak gate re-analyzing a
// rewritten ledger sees the same samples); and a torn final line is
// dropped silently while mid-file garbage is a hard error, never a
// silently-truncated success.
func FuzzReadResourceLedger(f *testing.F) {
	valid := `{"unixMS":1,"heapAlloc":1024,"heapSys":2048,"heapObjects":3,"numGC":1,"goroutines":8,"rssBytes":4096,"accesses":100,"accessesPerSec":50}`
	f.Add([]byte(valid + "\n" + valid + "\n"))
	f.Add([]byte(valid + "\n" + valid[:37]))                     // torn final line
	f.Add([]byte("\n\n" + valid + "\n\n"))                       // blank lines around one sample
	f.Add([]byte(valid + "\n{not json}\n" + valid + "\n"))       // garbage mid-file
	f.Add([]byte(`{"unixMS":` + strings.Repeat("1", 400) + `}`)) // absurd number
	f.Add(append([]byte(valid+"\n"), bytes.Repeat([]byte{0xff}, 256)...))
	f.Add([]byte(`{"unixMS":7,"padding":"` + strings.Repeat("x", 128<<10) + `"}` + "\n")) // giant line
	f.Add(bytes.Repeat([]byte("x"), 2<<20))                                               // line beyond the scanner's buffer cap
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ReadResourceLedger(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Round trip: re-encode exactly like the sampler does and reread.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, s := range samples {
			if err := enc.Encode(s); err != nil {
				t.Fatalf("re-encoding accepted sample: %v", err)
			}
		}
		again, err := ReadResourceLedger(&buf)
		if err != nil {
			t.Fatalf("rereading re-encoded ledger: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed sample count %d -> %d", len(samples), len(again))
		}
		for i := range samples {
			if samples[i] != again[i] {
				t.Fatalf("sample %d changed in round trip:\n got %+v\nwant %+v", i, again[i], samples[i])
			}
		}
	})
}
