package live

// telemetry.go bundles the registry's instruments into the named metric
// set the rest of the repo updates: harness cell lifecycle, engine
// phase-boundary progress, fault-campaign injections, tracer backpressure,
// and process resources. One Telemetry value is shared by the runner, the
// engine probes, the ops HTTP server, and the resource sampler.

// RunnerMetrics counts harness.Runner cell lifecycle transitions.
type RunnerMetrics struct {
	Started     *Counter   // cells that entered their first attempt
	Finished    *Counter   // cells completed successfully
	Retried     *Counter   // attempts retried after a containable failure
	Failed      *Counter   // cells terminally failed
	Watchdog    *Counter   // watchdog firings (hung cells abandoned)
	Restored    *Counter   // cells restored from the journal without re-running
	CellSeconds *Histogram // wall-clock seconds per executed (non-restored) cell
}

// EngineMetrics aggregates phase-boundary progress across every engine the
// process runs. Updated only from Engine.Probe at weave-phase barriers, so
// it costs nothing per access and never perturbs the simulation.
type EngineMetrics struct {
	Accesses   *Counter // simulated loads+stores completed
	Cycles     *Counter // simulated cycles advanced
	Phases     *Counter // weave phases completed
	ShardQueue *Gauge   // deferred items queued in shard rings at the last phase boundary
}

// FaultMetrics counts fault-campaign injection outcomes.
type FaultMetrics struct {
	Armed     *Counter // injections armed
	Detected  *Counter // corruptions detected by the design under test
	Recovered *Counter // corruptions recovered
}

// FleetMetrics counts the distributed sweep fleet's control-plane events
// on the gateway (lease lifecycle, redelivery, result dedup) plus worker
// liveness. All values are wall-clock operational telemetry — none feed
// results, which stay byte-identical with or without a fleet.
type FleetMetrics struct {
	LeasesGranted     *Counter // leases handed to workers (including redeliveries)
	LeasesExpired     *Counter // leases whose deadline passed without a result or heartbeat
	LeasesRedelivered *Counter // expired/failed units re-dispatched to another worker
	Heartbeats        *Counter // heartbeats accepted (lease deadlines extended)
	ResultsAccepted   *Counter // first result accepted per unit
	ResultsDuplicate  *Counter // duplicate results byte-verified against the accepted one
	ResultsDivergent  *Counter // duplicate results whose bytes differed (determinism violation)
	WorkersJoined     *Counter // workers that passed the version/scope handshake
	WorkersRejected   *Counter // workers refused at the handshake (version/scope skew)
	WorkersLive       *Gauge   // workers with an unexpired lease or recent heartbeat
	UnitsFailed       *Counter // units terminally failed after redelivery was exhausted
}

// ResourceMetrics mirrors the most recent resource sample as gauges so the
// /metrics endpoint exposes what the JSONL ledger records.
type ResourceMetrics struct {
	HeapAlloc      *Gauge
	Goroutines     *Gauge
	RSS            *Gauge
	AccessesPerSec *Gauge
}

// Telemetry is the process-wide live telemetry bundle: the registry plus
// the instruments wired into the harness, engine, fault campaign, and
// resource sampler, and the per-cell run board behind /runs.
type Telemetry struct {
	Registry *Registry
	Runner   RunnerMetrics
	Engine   EngineMetrics
	Fault    FaultMetrics
	Fleet    FleetMetrics
	Resource ResourceMetrics
	Board    *Board
}

// NewTelemetry builds a registry with the full tvarak metric set
// registered in a fixed order, plus an empty run board.
func NewTelemetry() *Telemetry {
	r := NewRegistry()
	t := &Telemetry{Registry: r, Board: NewBoard()}

	t.Runner.Started = r.NewCounter("tvarak_cells_started_total",
		"Experiment cells that began executing.")
	t.Runner.Finished = r.NewCounter("tvarak_cells_finished_total",
		"Experiment cells that completed successfully.")
	t.Runner.Retried = r.NewCounter("tvarak_cells_retried_total",
		"Cell attempts retried after a containable failure.")
	t.Runner.Failed = r.NewCounter("tvarak_cells_failed_total",
		"Experiment cells that failed terminally.")
	t.Runner.Watchdog = r.NewCounter("tvarak_cells_watchdog_total",
		"Watchdog firings: hung cells abandoned past their deadline.")
	t.Runner.Restored = r.NewCounter("tvarak_cells_restored_total",
		"Cells restored from the resume journal without re-running.")
	t.Runner.CellSeconds = r.NewHistogram("tvarak_cell_seconds",
		"Wall-clock seconds per executed cell.",
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300})

	t.Engine.Accesses = r.NewCounter("tvarak_sim_accesses_total",
		"Simulated memory accesses (loads+stores) completed, summed across cells.")
	t.Engine.Cycles = r.NewCounter("tvarak_sim_cycles_total",
		"Simulated cycles advanced, summed across cells.")
	t.Engine.Phases = r.NewCounter("tvarak_sim_phases_total",
		"Bound-weave phases completed, summed across cells.")
	t.Engine.ShardQueue = r.NewGauge("tvarak_sim_shard_queue_depth",
		"Deferred work items queued in shard rings at the most recent phase boundary.")

	t.Fault.Armed = r.NewCounter("tvarak_fault_injections_armed_total",
		"Fault injections armed by the campaign.")
	t.Fault.Detected = r.NewCounter("tvarak_fault_injections_detected_total",
		"Injected corruptions detected by the design under test.")
	t.Fault.Recovered = r.NewCounter("tvarak_fault_injections_recovered_total",
		"Injected corruptions recovered by the design under test.")

	t.Fleet.LeasesGranted = r.NewCounter("tvarak_fleet_leases_granted_total",
		"Cell leases handed to fleet workers, redeliveries included.")
	t.Fleet.LeasesExpired = r.NewCounter("tvarak_fleet_leases_expired_total",
		"Leases whose deadline passed without a result or heartbeat.")
	t.Fleet.LeasesRedelivered = r.NewCounter("tvarak_fleet_leases_redelivered_total",
		"Expired or failed units re-dispatched to another worker.")
	t.Fleet.Heartbeats = r.NewCounter("tvarak_fleet_heartbeats_total",
		"Worker heartbeats accepted (lease deadlines extended).")
	t.Fleet.ResultsAccepted = r.NewCounter("tvarak_fleet_results_accepted_total",
		"First result accepted per unit.")
	t.Fleet.ResultsDuplicate = r.NewCounter("tvarak_fleet_results_duplicate_total",
		"Duplicate results byte-verified against the accepted one.")
	t.Fleet.ResultsDivergent = r.NewCounter("tvarak_fleet_results_divergent_total",
		"Duplicate results whose bytes differed from the accepted one (determinism violation).")
	t.Fleet.WorkersJoined = r.NewCounter("tvarak_fleet_workers_joined_total",
		"Workers that passed the version/scope handshake.")
	t.Fleet.WorkersRejected = r.NewCounter("tvarak_fleet_workers_rejected_total",
		"Workers refused at the handshake for version or scope skew.")
	t.Fleet.WorkersLive = r.NewGauge("tvarak_fleet_workers_live",
		"Workers with an unexpired lease or recent heartbeat.")
	t.Fleet.UnitsFailed = r.NewCounter("tvarak_fleet_units_failed_total",
		"Units terminally failed after redelivery was exhausted.")

	t.Resource.HeapAlloc = r.NewGauge("tvarak_resource_heap_alloc_bytes",
		"Live heap bytes at the last resource sample.")
	t.Resource.Goroutines = r.NewGauge("tvarak_resource_goroutines",
		"Goroutine count at the last resource sample.")
	t.Resource.RSS = r.NewGauge("tvarak_resource_rss_bytes",
		"Resident set size at the last resource sample.")
	t.Resource.AccessesPerSec = r.NewGauge("tvarak_sim_accesses_per_sec",
		"Simulated accesses per wall-clock second over the last sample interval.")

	return t
}

// TraceGauges registers the JSONL tracer's written/dropped totals as
// scrape-time gauges. written and dropped must be safe for concurrent use
// (obs.JSONL's accessors are). Call at most once per Telemetry.
func (t *Telemetry) TraceGauges(written, dropped func() uint64) {
	t.Registry.NewGaugeFunc("tvarak_trace_events_written",
		"Trace events written by the JSONL tracer.",
		func() float64 { return float64(written()) })
	t.Registry.NewGaugeFunc("tvarak_trace_events_dropped",
		"Trace events dropped by the JSONL tracer after hitting its bound.",
		func() float64 { return float64(dropped()) })
}

// CellProbe returns an engine probe for the cell at index. The engine
// invokes it at weave-phase boundaries with cumulative cycles and accesses;
// the closure converts them to deltas for the process-wide counters and
// forwards the cumulative values to the board. ResetMeasurement zeroes the
// engine's statistics mid-run, so a cumulative value that went backwards
// rebases the deltas instead of underflowing.
//
// The closure's locals are touched only by the engine thread that owns the
// cell, and each counter add lands on the cell's own stripe — concurrent
// cells never contend.
func (t *Telemetry) CellProbe(index int) func(cycles, accesses, shardQueued uint64) {
	var lastCyc, lastAcc uint64
	return func(cycles, accesses, shardQueued uint64) {
		if accesses < lastAcc || cycles < lastCyc {
			lastCyc, lastAcc = 0, 0
		}
		t.Engine.Accesses.AddAt(index, accesses-lastAcc)
		t.Engine.Cycles.AddAt(index, cycles-lastCyc)
		t.Engine.Phases.AddAt(index, 1)
		lastCyc, lastAcc = cycles, accesses
		t.Engine.ShardQueue.SetInt(shardQueued)
		t.Board.CellProgress(index, cycles, accesses)
	}
}
