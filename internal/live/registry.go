// Package live is the wall-clock-domain telemetry subsystem: a metrics
// registry of lock-free counters, gauges and fixed-bucket histograms, a
// per-cell run board, an ops HTTP server (/metrics, /healthz, /runs,
// /debug/pprof), and a periodic resource sampler with a JSONL ledger plus
// drift analysis.
//
// Everything in this package observes the simulation; nothing feeds back
// into it. The instruments are updated from hook points that only read
// simulation state (statistics snapshots at phase barriers, cell lifecycle
// transitions, unit reports), so attaching live telemetry leaves every
// simulated result — tables, metric exports, fault reports — byte-identical
// to an unobserved run. The read-only golden test at the repository root
// and the ci.sh ops gate pin that contract.
//
// The package deliberately lives in the wall-clock domain: its counters
// answer "what is this process doing right now", while internal/obs answers
// "what did the simulated machine do at which simulated cycle". The two
// domains never mix — see DESIGN.md §10.
package live

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// stripes is each counter's slot count (power of two). Concurrent updaters
// with distinct hints (cell indices, shard IDs) land on distinct cache
// lines; Value folds the stripes at read time.
const stripes = 8

// stripe is one padded counter slot: the padding keeps adjacent stripes on
// separate cache lines so concurrent cells never false-share.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, striped, lock-free counter. The
// update path is a single atomic add with no allocation, so counters are
// safe to bump from simulation-adjacent hook points (phase barriers, cell
// lifecycle events) without perturbing the run.
type Counter struct {
	s [stripes]stripe
}

// Add increments the counter by n on stripe 0. Use AddAt from call sites
// that have a natural concurrency hint.
func (c *Counter) Add(n uint64) { c.s[0].v.Add(n) }

// AddAt increments the counter by n on the stripe selected by hint (a cell
// index, shard ID, or any value that separates concurrent updaters).
func (c *Counter) AddAt(hint int, n uint64) {
	c.s[uint(hint)&(stripes-1)].v.Add(n)
}

// Value folds the stripes into the counter's current total.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}

// Gauge is a lock-free float64 gauge (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v uint64) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free:
// one atomic add into the bucket, one into the count, and a CAS loop on the
// float-bit sum — no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricEntry is one registered metric: its exposition metadata plus the
// writer that renders its current value(s).
type metricEntry struct {
	name, help, typ string
	write           func(w io.Writer) error
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration (at wiring time) takes a lock and may
// allocate; the instruments it returns are lock-free to update. Metrics
// render in registration order, which is fixed at wiring time, so two
// scrapes of an idle registry are byte-identical.
type Registry struct {
	mu sync.Mutex
	ms []metricEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(e metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.ms {
		if m.name == e.name {
			panic("live: duplicate metric " + e.name)
		}
	}
	r.ms = append(r.ms, e)
}

// NewCounter registers and returns a counter. By convention the name ends
// in _total.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(metricEntry{name: name, help: help, typ: "counter", write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	}})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metricEntry{name: name, help: help, typ: "gauge", write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(g.Value()))
		return err
	}})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time —
// the hook for state that already maintains its own counters (the JSONL
// tracer's written/dropped totals). f must be safe to call concurrently.
func (r *Registry) NewGaugeFunc(name, help string, f func() float64) {
	r.register(metricEntry{name: name, help: help, typ: "gauge", write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(f()))
		return err
	}})
}

// NewHistogram registers and returns a histogram over the given ascending
// bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("live: histogram bounds must be ascending: " + name)
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(metricEntry{name: name, help: help, typ: "histogram", write: func(w io.Writer) error {
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		return err
	}})
	return h
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := r.ms
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		if err := m.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fmtFloat renders a float the shortest way that round-trips, matching the
// Prometheus exposition conventions (integers render without a point).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
