package live

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the ops HTTP endpoint: /metrics (Prometheus text exposition),
// /healthz, /runs (board snapshot JSON), and /debug/pprof/*. It owns its
// listener and serving goroutine; Close shuts both down and does not
// return until the goroutine has exited, so a closed server leaks nothing.
type Server struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// Serve starts the ops server on addr (host:port; port 0 picks a free
// port — read the result from Addr). The handler set is a private mux, so
// it never collides with http.DefaultServeMux or any pprof handlers the
// embedding process registers itself.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Board.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal shutdown path; any other error
		// means the listener died, which Close surfaces by returning.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully drains in-flight requests (bounded at 2s), force-closes
// any stragglers, and waits for the serving goroutine to exit.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	s.wg.Wait()
	return err
}
