package live

import (
	"strings"
	"testing"
)

// mkLedger builds a ledger from parallel value slices; shorter slices
// repeat their last element so cases only spell out the axis under test.
func mkLedger(n int, heap []uint64, goroutines []int, aps []float64) []ResourceSample {
	at := func(i, l int) int {
		if i < l {
			return i
		}
		return l - 1
	}
	out := make([]ResourceSample, n)
	for i := range out {
		out[i] = ResourceSample{
			UnixMS:         int64(1000 * i),
			HeapAlloc:      heap[at(i, len(heap))],
			Goroutines:     goroutines[at(i, len(goroutines))],
			AccessesPerSec: aps[at(i, len(aps))],
		}
	}
	return out
}

func checksOf(fs []Finding) string {
	var names []string
	for _, f := range fs {
		names = append(names, f.Check)
	}
	return strings.Join(names, ",")
}

func TestOpsCheckVerdictEdgeCases(t *testing.T) {
	// DefaultOpsCheck: heap flags at >50% growth with >=90% rising steps,
	// goroutine slack 8, drift flags at >50% half-vs-half shift, and the
	// heap/drift checks need >= 8 samples.
	cfg := DefaultOpsCheck()

	// A 10-step monotonic doubling: every step non-decreasing, 100% growth.
	leak := []uint64{100, 120, 135, 150, 160, 170, 180, 190, 195, 200}
	// GC sawtooth around a flat mean: final sample double the first (a raw
	// first-vs-last comparison would scream) but half the steps descend.
	sawtooth := []uint64{100, 260, 90, 250, 95, 240, 100, 230, 95, 200}

	cases := []struct {
		name    string
		samples []ResourceSample
		want    string // comma-joined finding checks, "" = clean
	}{
		{
			name:    "empty ledger",
			samples: nil,
			want:    "",
		},
		{
			name:    "single sample",
			samples: mkLedger(1, []uint64{1 << 30}, []int{10000}, []float64{1}),
			want:    "",
		},
		{
			name: "two samples goroutine leak",
			// Below MinSamples for heap/drift, but the goroutine check
			// needs only a first and a last.
			samples: mkLedger(2, []uint64{100, 500}, []int{8, 17}, []float64{1000, 1}),
			want:    "goroutine-leak",
		},
		{
			name:    "goroutines exactly at slack",
			samples: mkLedger(2, []uint64{100}, []int{8, 16}, []float64{0}),
			want:    "", // last > first+slack flags; equal-to-slack must not
		},
		{
			name:    "goroutines one over slack",
			samples: mkLedger(2, []uint64{100}, []int{8, 17}, []float64{0}),
			want:    "goroutine-leak",
		},
		{
			name:    "monotonic heap leak",
			samples: mkLedger(10, leak, []int{8}, []float64{100}),
			want:    "heap-growth",
		},
		{
			name: "GC sawtooth is not a leak",
			// Grown AND mostly-rising must both hold; the sawtooth's
			// descending halves keep riseFrac ~50%, well under 90%.
			samples: mkLedger(10, sawtooth, []int{8}, []float64{100}),
			want:    "",
		},
		{
			name: "monotonic but within growth budget",
			samples: mkLedger(10,
				[]uint64{100, 105, 110, 115, 120, 125, 130, 135, 140, 145},
				[]int{8}, []float64{100}),
			want: "", // rises every step but only +45% < 50% threshold
		},
		{
			name: "heap leak below MinSamples",
			samples: mkLedger(7, []uint64{100, 120, 140, 160, 180, 200, 220},
				[]int{8}, []float64{100}),
			want: "",
		},
		{
			name: "drift exactly at threshold",
			// First half mean 100, second half mean 150: drift = 0.5,
			// which is NOT > 0.5 — exactly-at-threshold must stay clean.
			samples: mkLedger(8, []uint64{100}, []int{8},
				[]float64{100, 100, 100, 100, 150, 150, 150, 150}),
			want: "",
		},
		{
			name: "drift just past threshold",
			samples: mkLedger(8, []uint64{100}, []int{8},
				[]float64{100, 100, 100, 100, 151, 151, 151, 151}),
			want: "throughput-drift",
		},
		{
			name: "negative drift flags too",
			samples: mkLedger(8, []uint64{100}, []int{8},
				[]float64{200, 200, 200, 200, 50, 50, 50, 50}),
			want: "throughput-drift",
		},
		{
			name: "idle samples do not dilute drift",
			// 8 active samples that drift, padded with zero-rate samples:
			// only AccessesPerSec > 0 participates, so this still flags.
			samples: mkLedger(12, []uint64{100}, []int{8},
				[]float64{0, 0, 100, 100, 100, 100, 151, 151, 151, 151, 0, 0}),
			want: "throughput-drift",
		},
		{
			name: "active samples below MinSamples",
			samples: mkLedger(12, []uint64{100}, []int{8},
				[]float64{0, 0, 0, 0, 0, 100, 100, 100, 100, 151, 151, 151}),
			want: "",
		},
		{
			name:    "zero first heap sample never divides",
			samples: mkLedger(10, []uint64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}, []int{8}, []float64{100}),
			want:    "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := checksOf(cfg.Analyze(tc.samples)); got != tc.want {
				t.Errorf("Analyze flagged %q, want %q", got, tc.want)
			}
		})
	}
}

func TestOpsCheckWithChecks(t *testing.T) {
	leaky := mkLedger(2, []uint64{100}, []int{8, 100}, []float64{0})

	all, err := DefaultOpsCheck().WithChecks()
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(all.Analyze(leaky)); got != "goroutine-leak" {
		t.Errorf("empty selection = %q, want every check enabled", got)
	}

	only, err := DefaultOpsCheck().WithChecks("heap", "drift")
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(only.Analyze(leaky)); got != "" {
		t.Errorf("deselected goroutine check still flagged: %q", got)
	}

	if _, err := DefaultOpsCheck().WithChecks("rss"); err == nil {
		t.Error("unknown check name accepted")
	}
	// Trailing empties (a "heap," CLI string) are tolerated.
	if _, err := DefaultOpsCheck().WithChecks("heap", ""); err != nil {
		t.Errorf("blank check name rejected: %v", err)
	}
}
