package live

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddAt(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
	g.SetInt(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("Value = %v, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "help", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("Sum = %v, want 111.5", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le="1" is cumulative and inclusive: 0.5 and 1 both land at or below.
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="5"} 3`,
		`h_bucket{le="10"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 111.5`,
		`h_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_things_total", "Things counted.")
	g := r.NewGauge("t_level", "Current level.")
	r.NewGaugeFunc("t_funcval", "Computed.", func() float64 { return 7 })
	c.Add(3)
	g.Set(1.25)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_things_total Things counted.
# TYPE t_things_total counter
t_things_total 3
# HELP t_level Current level.
# TYPE t_level gauge
t_level 1.25
# HELP t_funcval Computed.
# TYPE t_funcval gauge
t_funcval 7
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "")
}

func TestBoardLifecycle(t *testing.T) {
	b := NewBoard()
	var notified []CellEntry
	b.Notify = func(e CellEntry, done, total int) {
		notified = append(notified, e)
		if total != 3 {
			t.Errorf("notify total = %d, want 3", total)
		}
	}
	b.Begin("exp", 3)

	b.CellRunning(0, "a/base")
	b.CellProgress(0, 1000, 50)
	b.CellDone(0, 2000, 100)

	b.CellRunning(1, "b/base")
	b.CellRetrying(1)
	b.CellRunning(1, "b/base")
	b.CellFailed(1, "b/base", "boom", true)

	b.CellRestored(2, "c/base", 5000, 250)

	s := b.Snapshot()
	if s.Experiment != "exp" || s.Total != 3 || s.Done != 3 || s.Failed != 1 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if len(s.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(s.Cells))
	}
	c0, c1, c2 := s.Cells[0], s.Cells[1], s.Cells[2]
	if c0.State != StateDone || c0.Cycles != 2000 || c0.Accesses != 100 || c0.Attempts != 1 {
		t.Errorf("cell 0 = %+v", c0)
	}
	if c1.State != StateFailed || !c1.Hung || c1.Err != "boom" || c1.Attempts != 2 {
		t.Errorf("cell 1 = %+v", c1)
	}
	if c2.State != StateDone || !c2.FromJournal || c2.Accesses != 250 {
		t.Errorf("cell 2 = %+v", c2)
	}
	if len(notified) != 3 {
		t.Fatalf("notify fired %d times, want 3", len(notified))
	}
	// JSON round-trips (the /runs schema).
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestBoardLateProgressHarmless(t *testing.T) {
	// A watchdog-abandoned goroutine may keep probing after Begin resets
	// the board for the next experiment; out-of-range and post-terminal
	// writes must not panic or skew counts.
	b := NewBoard()
	b.Begin("one", 2)
	b.CellRunning(1, "x")
	probe := func() { b.CellProgress(1, 9, 9) }
	b.Begin("two", 1) // old index 1 now out of range
	probe()
	b.CellProgress(5, 1, 1) // out of range entirely
	b.CellDone(0, 1, 1)
	b.CellDone(0, 2, 2) // double-terminal ignored
	s := b.Snapshot()
	if s.Done != 1 || s.Total != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Cells[0].Cycles != 1 {
		t.Fatalf("double-done overwrote totals: %+v", s.Cells[0])
	}
}

func TestCellProbeDeltasAndRebase(t *testing.T) {
	tl := NewTelemetry()
	tl.Board.Begin("p", 1)
	probe := tl.CellProbe(0)
	probe(100, 10, 3)
	probe(300, 25, 0)
	if got := tl.Engine.Accesses.Value(); got != 25 {
		t.Fatalf("accesses = %d, want 25", got)
	}
	if got := tl.Engine.Cycles.Value(); got != 300 {
		t.Fatalf("cycles = %d, want 300", got)
	}
	if got := tl.Engine.Phases.Value(); got != 2 {
		t.Fatalf("phases = %d, want 2", got)
	}
	// ResetMeasurement zeroes the engine stats: cumulative goes backwards,
	// the probe must rebase instead of underflowing.
	probe(50, 5, 0)
	if got := tl.Engine.Accesses.Value(); got != 30 {
		t.Fatalf("accesses after rebase = %d, want 30", got)
	}
	if got := tl.Engine.ShardQueue.Value(); got != 0 {
		t.Fatalf("shard queue = %v, want 0", got)
	}
}

func TestServerEndpointsAndNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tl := NewTelemetry()
	tl.Board.Begin("srv", 1)
	tl.Runner.Started.Add(1)
	srv, err := Serve("127.0.0.1:0", tl)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if got := get("/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	m := get("/metrics")
	for _, want := range []string{
		"# TYPE tvarak_cells_started_total counter",
		"tvarak_cells_started_total 1",
		"# TYPE tvarak_sim_accesses_total counter",
		"# TYPE tvarak_cell_seconds histogram",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap BoardSnapshot
	if err := json.Unmarshal([]byte(get("/runs")), &snap); err != nil {
		t.Fatalf("/runs: %v", err)
	}
	if snap.Experiment != "srv" || len(snap.Cells) != 1 {
		t.Errorf("/runs = %+v", snap)
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The serving goroutine and any keep-alive handlers must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestResourceSamplerLedger(t *testing.T) {
	tl := NewTelemetry()
	tl.Engine.Accesses.Add(1000)
	var buf syncBuffer
	s := StartResourceSampler(tl, &buf, 10*time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	tl.Engine.Accesses.Add(9000)
	time.Sleep(30 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadResourceLedger(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 3 {
		t.Fatalf("only %d samples", len(samples))
	}
	first, last := samples[0], samples[len(samples)-1]
	if first.HeapAlloc == 0 || first.Goroutines == 0 {
		t.Errorf("first sample missing runtime stats: %+v", first)
	}
	if last.Accesses != 10000 {
		t.Errorf("final accesses = %d, want 10000", last.Accesses)
	}
	if runtime.GOOS == "linux" && first.RSSBytes == 0 {
		t.Error("RSS = 0 on linux")
	}
	if tl.Resource.HeapAlloc.Value() == 0 {
		t.Error("heap gauge not mirrored")
	}
	// Torn tail tolerated.
	torn := buf.String() + `{"unixMS":123,"heap`
	got, err := ReadResourceLedger(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(got) != len(samples) {
		t.Fatalf("torn tail changed count: %d vs %d", len(got), len(samples))
	}
	// Mid-file corruption is a real error.
	bad := `{"unixMS":1}` + "\n" + `garbage` + "\n" + `{"unixMS":2}` + "\n"
	if _, err := ReadResourceLedger(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// syncBuffer is a goroutine-safe strings.Builder for the sampler test.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func mkSamples(heap []uint64, gor []int, aps []float64) []ResourceSample {
	n := len(heap)
	if len(gor) > n {
		n = len(gor)
	}
	if len(aps) > n {
		n = len(aps)
	}
	out := make([]ResourceSample, n)
	for i := range out {
		out[i].UnixMS = int64(i * 1000)
		out[i].HeapAlloc = 1 << 20
		out[i].Goroutines = 10
		if i < len(heap) {
			out[i].HeapAlloc = heap[i]
		}
		if i < len(gor) {
			out[i].Goroutines = gor[i]
		}
		if i < len(aps) {
			out[i].AccessesPerSec = aps[i]
		}
	}
	return out
}

func findingChecks(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Check)
	}
	return out
}

func TestAnalyzeHeapGrowth(t *testing.T) {
	c := DefaultOpsCheck()
	// Monotonic doubling: flagged.
	heap := make([]uint64, 10)
	for i := range heap {
		heap[i] = uint64(1<<20) + uint64(i)*200*1024
	}
	fs := c.Analyze(mkSamples(heap, nil, nil))
	if got := findingChecks(fs); len(got) != 1 || got[0] != "heap-growth" {
		t.Fatalf("findings = %v, want [heap-growth]", got)
	}
	// GC sawtooth with the same endpoints: not flagged (rise fraction low).
	saw := make([]uint64, 10)
	for i := range saw {
		if i%2 == 0 {
			saw[i] = 1 << 20
		} else {
			saw[i] = 3 << 20
		}
	}
	saw[9] = 3 << 20
	if fs := c.Analyze(mkSamples(saw, nil, nil)); len(fs) != 0 {
		t.Fatalf("sawtooth flagged: %v", fs)
	}
	// Flat heap: clean.
	flat := make([]uint64, 10)
	for i := range flat {
		flat[i] = 1 << 20
	}
	if fs := c.Analyze(mkSamples(flat, nil, nil)); len(fs) != 0 {
		t.Fatalf("flat heap flagged: %v", fs)
	}
	// Too few samples: clean regardless.
	if fs := c.Analyze(mkSamples(heap[:3], nil, nil)); len(fs) != 0 {
		t.Fatalf("short ledger flagged: %v", fs)
	}
}

func TestAnalyzeGoroutineLeak(t *testing.T) {
	c := DefaultOpsCheck()
	fs := c.Analyze(mkSamples(nil, []int{10, 12, 30}, nil))
	if got := findingChecks(fs); len(got) != 1 || got[0] != "goroutine-leak" {
		t.Fatalf("findings = %v, want [goroutine-leak]", got)
	}
	// Within slack: clean.
	if fs := c.Analyze(mkSamples(nil, []int{10, 14, 15}, nil)); len(fs) != 0 {
		t.Fatalf("within-slack flagged: %v", fs)
	}
}

func TestAnalyzeThroughputDrift(t *testing.T) {
	c := DefaultOpsCheck()
	aps := []float64{1000, 1000, 1000, 1000, 1000, 400, 400, 400, 400, 400}
	fs := c.Analyze(mkSamples(nil, nil, aps))
	if got := findingChecks(fs); len(got) != 1 || got[0] != "throughput-drift" {
		t.Fatalf("findings = %v, want [throughput-drift]", got)
	}
	// Idle (zero) samples excluded: a run that pauses between experiments
	// doesn't count as drifting.
	padded := append([]float64{0, 0, 0, 0}, []float64{1000, 990, 1010, 1000, 1005, 995, 1000, 1000}...)
	if fs := c.Analyze(mkSamples(nil, nil, padded)); len(fs) != 0 {
		t.Fatalf("steady padded flagged: %v", fs)
	}
}

func TestStartOpsBundle(t *testing.T) {
	dir := t.TempDir()
	tl := NewTelemetry()
	ledger := dir + "/ops.jsonl"
	addrFile := dir + "/addr"
	o, err := StartOps(tl, OpsConfig{
		Addr:        "127.0.0.1:0",
		AddrFile:    addrFile,
		LedgerPath:  ledger,
		SampleEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Addr() == "" {
		t.Fatal("no addr")
	}
	b, err := readFile(addrFile)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b) != o.Addr() {
		t.Fatalf("addr file %q != %q", strings.TrimSpace(b), o.Addr())
	}
	resp, err := http.Get("http://" + o.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	lb, err := readFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ReadResourceLedger(strings.NewReader(lb))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("ledger has %d samples, want >= 2 (start + final)", len(samples))
	}
	// Disabled config: nil, Close safe.
	var nilOps *Ops
	if err := nilOps.Close(); err != nil {
		t.Fatal(err)
	}
	o2, err := StartOps(tl, OpsConfig{})
	if err != nil || o2 != nil {
		t.Fatalf("empty config: %v %v", o2, err)
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func BenchmarkCounterAddAt(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddAt(3, 1)
	}
	if c.Value() == 0 {
		b.Fatal("unreachable")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_h", "", []float64{0.1, 1, 10, 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 200))
	}
}

func TestProbeAllocFree(t *testing.T) {
	tl := NewTelemetry()
	tl.Board.Begin("alloc", 1)
	probe := tl.CellProbe(0)
	probe(1, 1, 0)
	allocs := testing.AllocsPerRun(100, func() {
		probe(2, 2, 1)
	})
	if allocs > 0 {
		t.Fatalf("probe allocates %v per call", allocs)
	}
}
