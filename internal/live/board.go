package live

import (
	"sync"
	"sync/atomic"
	"time"
)

// CellState is a cell's lifecycle state as shown on /runs.
type CellState string

const (
	StateQueued   CellState = "queued"
	StateRunning  CellState = "running"
	StateRetrying CellState = "retrying"
	StateFailed   CellState = "failed"
	StateDone     CellState = "done"
)

// boardSlot is one cell's live state. Progress (cycles/accesses) is updated
// lock-free from the engine probe at phase boundaries; everything else
// changes only on lifecycle transitions under the board mutex. A hung
// cell's abandoned goroutine may keep probing its slot after the watchdog
// fires — the atomics make that harmless.
type boardSlot struct {
	cycles   atomic.Uint64
	accesses atomic.Uint64

	mu       sync.Mutex
	label    string
	state    CellState
	attempts int
	err      string
	hung     bool
	restored bool
	start    time.Time
	end      time.Time
}

// CellEntry is one cell's row in a board snapshot (the /runs JSON schema).
type CellEntry struct {
	Index          int       `json:"index"`
	Label          string    `json:"label,omitempty"`
	State          CellState `json:"state"`
	Attempts       int       `json:"attempts,omitempty"`
	ElapsedMS      int64     `json:"elapsedMS,omitempty"`
	Cycles         uint64    `json:"cycles,omitempty"`
	Accesses       uint64    `json:"accesses,omitempty"`
	AccessesPerSec float64   `json:"accessesPerSec,omitempty"`
	FromJournal    bool      `json:"fromJournal,omitempty"`
	Hung           bool      `json:"hung,omitempty"`
	Err            string    `json:"err,omitempty"`
}

// BoardSnapshot is the /runs JSON document.
type BoardSnapshot struct {
	Experiment string      `json:"experiment"`
	Total      int         `json:"total"`
	Done       int         `json:"done"`
	Failed     int         `json:"failed"`
	Cells      []CellEntry `json:"cells"`
}

// Board tracks per-cell run state for /runs and the interactive progress
// renderer. Begin resets it for each experiment; the harness drives the
// lifecycle transitions and the engine probe streams progress into the
// slots.
type Board struct {
	mu         sync.Mutex
	experiment string
	total      int
	done       int
	failed     int
	slots      atomic.Pointer[[]*boardSlot]

	// Notify, when set, is invoked under the board lock on every terminal
	// cell transition (done, restored, failed) with the cell's entry and
	// the updated done/total counts — the single source of truth for
	// interactive progress output, so stderr and /runs can never disagree.
	Notify func(e CellEntry, done, total int)
}

// NewBoard builds an empty board.
func NewBoard() *Board { return &Board{} }

// Begin resets the board for a new experiment of n cells.
func (b *Board) Begin(experiment string, n int) {
	slots := make([]*boardSlot, n)
	for i := range slots {
		slots[i] = &boardSlot{state: StateQueued}
	}
	b.mu.Lock()
	b.experiment = experiment
	b.total = n
	b.done = 0
	b.failed = 0
	b.slots.Store(&slots)
	b.mu.Unlock()
}

func (b *Board) slot(i int) *boardSlot {
	p := b.slots.Load()
	if p == nil || i < 0 || i >= len(*p) {
		return nil
	}
	return (*p)[i]
}

// CellRunning marks cell i as executing under the given label.
func (b *Board) CellRunning(i int, label string) {
	s := b.slot(i)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.state = StateRunning
	s.attempts++
	if s.start.IsZero() {
		s.start = time.Now()
	}
	s.mu.Unlock()
}

// CellProgress streams cumulative engine progress into cell i's slot.
// Lock-free: called from the engine thread at phase boundaries.
func (b *Board) CellProgress(i int, cycles, accesses uint64) {
	s := b.slot(i)
	if s == nil {
		return
	}
	s.cycles.Store(cycles)
	s.accesses.Store(accesses)
}

// CellRetrying marks cell i as waiting to re-attempt.
func (b *Board) CellRetrying(i int) {
	s := b.slot(i)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.state = StateRetrying
	s.mu.Unlock()
}

// CellDone marks cell i successfully completed with its final totals.
func (b *Board) CellDone(i int, cycles, accesses uint64) {
	b.finish(i, StateDone, "", false, false, cycles, accesses)
}

// CellRestored marks cell i as restored from the journal (it never ran in
// this process, so its totals come from the recorded result and its
// elapsed time is ~0).
func (b *Board) CellRestored(i int, label string, cycles, accesses uint64) {
	s := b.slot(i)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.restored = true
	if s.start.IsZero() {
		s.start = time.Now()
	}
	s.mu.Unlock()
	b.finish(i, StateDone, "", false, true, cycles, accesses)
}

// CellFailed marks cell i terminally failed.
func (b *Board) CellFailed(i int, label, errMsg string, hung bool) {
	s := b.slot(i)
	if s == nil {
		return
	}
	s.mu.Lock()
	if label != "" {
		s.label = label
	}
	s.mu.Unlock()
	b.finish(i, StateFailed, errMsg, hung, false, s.cycles.Load(), s.accesses.Load())
}

func (b *Board) finish(i int, st CellState, errMsg string, hung, restored bool, cycles, accesses uint64) {
	s := b.slot(i)
	if s == nil {
		return
	}
	b.mu.Lock()
	s.mu.Lock()
	// A slot can reach finish at most once per Begin: the harness calls
	// exactly one terminal transition per cell. Guard anyway so a stray
	// late call can't skew the counts.
	if s.state == StateDone || s.state == StateFailed {
		s.mu.Unlock()
		b.mu.Unlock()
		return
	}
	s.state = st
	s.err = errMsg
	s.hung = hung
	s.restored = s.restored || restored
	if s.start.IsZero() {
		s.start = time.Now()
	}
	s.end = time.Now()
	s.cycles.Store(cycles)
	s.accesses.Store(accesses)
	b.done++
	if st == StateFailed {
		b.failed++
	}
	e := entryOf(i, s, s.end)
	done, total := b.done, b.total
	notify := b.Notify
	s.mu.Unlock()
	if notify != nil {
		notify(e, done, total)
	}
	b.mu.Unlock()
}

// entryOf renders a slot as a CellEntry. Caller holds s.mu.
func entryOf(i int, s *boardSlot, now time.Time) CellEntry {
	e := CellEntry{
		Index:       i,
		Label:       s.label,
		State:       s.state,
		Attempts:    s.attempts,
		Cycles:      s.cycles.Load(),
		Accesses:    s.accesses.Load(),
		FromJournal: s.restored,
		Hung:        s.hung,
		Err:         s.err,
	}
	if !s.start.IsZero() {
		end := now
		if !s.end.IsZero() {
			end = s.end
		}
		el := end.Sub(s.start)
		e.ElapsedMS = el.Milliseconds()
		if sec := el.Seconds(); sec > 0 && !s.restored {
			e.AccessesPerSec = float64(e.Accesses) / sec
		}
	}
	return e
}

// Snapshot renders the whole board as the /runs JSON document.
func (b *Board) Snapshot() BoardSnapshot {
	b.mu.Lock()
	snap := BoardSnapshot{
		Experiment: b.experiment,
		Total:      b.total,
		Done:       b.done,
		Failed:     b.failed,
	}
	p := b.slots.Load()
	b.mu.Unlock()
	if p == nil {
		snap.Cells = []CellEntry{}
		return snap
	}
	now := time.Now()
	snap.Cells = make([]CellEntry, 0, len(*p))
	for i, s := range *p {
		s.mu.Lock()
		snap.Cells = append(snap.Cells, entryOf(i, s, now))
		s.mu.Unlock()
	}
	return snap
}
