// Package geom defines the physical address geometry of the simulated
// machine: a DRAM range at the bottom of the physical address space and an
// NVM range above it, with NVM pages interleaved round-robin across DIMMs
// and grouped into RAID-5-style stripes with a rotating parity page
// (Fig. 3 of the paper).
//
// A stripe s consists of the D consecutive pages [s·D, (s+1)·D); the page at
// in-stripe slot s mod D holds the XOR parity of the other D−1 pages. The
// paper chooses page-granular (not cache-line-granular) interleaving so the
// OS can map contiguous virtual pages to the data pages while skipping
// parity pages; geom provides the O(1) translation between "data page
// index" (the contiguous space files and mappings live in) and physical
// page number.
package geom

import (
	"fmt"
	"math/bits"
)

// Geometry captures the fixed layout parameters. All addresses handled by
// the package are physical byte addresses.
type Geometry struct {
	LineSize int
	PageSize int
	// DRAMBytes spans [0, DRAMBytes); NVM spans [NVMBase, NVMBase+NVMBytes).
	DRAMBytes int
	NVMBytes  int
	DIMMs     int // NVM DIMM count (parity rotates over these)

	// Shift/mask fast paths for the per-access address arithmetic,
	// precomputed by New when the page size or DIMM count is a power of
	// two. A zero-valued Geometry (built as a literal rather than via New)
	// falls back to the generic division forms.
	pageShift uint
	pagePow2  bool
	dimmShift uint
	dimmMask  uint64
	dimmPow2  bool
}

// New validates and returns a Geometry.
func New(lineSize, pageSize, dramBytes, nvmBytes, dimms int) (Geometry, error) {
	g := Geometry{LineSize: lineSize, PageSize: pageSize, DRAMBytes: dramBytes, NVMBytes: nvmBytes, DIMMs: dimms}
	if lineSize <= 0 || pageSize%lineSize != 0 {
		return g, fmt.Errorf("geom: page size %d not a multiple of line size %d", pageSize, lineSize)
	}
	if dimms < 2 {
		return g, fmt.Errorf("geom: need >=2 NVM DIMMs for cross-DIMM parity, got %d", dimms)
	}
	if dramBytes%pageSize != 0 || nvmBytes%(pageSize*dimms) != 0 {
		return g, fmt.Errorf("geom: capacities must be page- and stripe-aligned")
	}
	if ps := uint64(pageSize); ps&(ps-1) == 0 {
		g.pagePow2 = true
		g.pageShift = uint(bits.TrailingZeros64(ps))
	}
	if nd := uint64(dimms); nd&(nd-1) == 0 {
		g.dimmPow2 = true
		g.dimmShift = uint(bits.TrailingZeros64(nd))
		g.dimmMask = nd - 1
	}
	return g, nil
}

// NVMBase is the first NVM physical address.
func (g Geometry) NVMBase() uint64 { return uint64(g.DRAMBytes) }

// NVMEnd is one past the last NVM physical address.
func (g Geometry) NVMEnd() uint64 { return uint64(g.DRAMBytes + g.NVMBytes) }

// IsNVM reports whether addr falls in the NVM range.
func (g Geometry) IsNVM(addr uint64) bool {
	return addr >= g.NVMBase() && addr < g.NVMEnd()
}

// LineAddr rounds addr down to its cache-line base.
func (g Geometry) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(g.LineSize-1)
}

// LinesPerPage is the number of cache lines in one page.
func (g Geometry) LinesPerPage() int { return g.PageSize / g.LineSize }

// TotalPages is the number of NVM pages (data + parity).
func (g Geometry) TotalPages() uint64 { return uint64(g.NVMBytes / g.PageSize) }

// Stripes is the number of parity stripes.
func (g Geometry) Stripes() uint64 { return g.TotalPages() / uint64(g.DIMMs) }

// DataPages is the number of non-parity NVM pages.
func (g Geometry) DataPages() uint64 { return g.Stripes() * uint64(g.DIMMs-1) }

// PageOf returns the NVM page number of addr (addr must be in NVM).
func (g Geometry) PageOf(addr uint64) uint64 {
	if g.pagePow2 {
		return (addr - uint64(g.DRAMBytes)) >> g.pageShift
	}
	return (addr - g.NVMBase()) / uint64(g.PageSize)
}

// PageBase returns the physical address of the first byte of NVM page p.
func (g Geometry) PageBase(p uint64) uint64 {
	if g.pagePow2 {
		return uint64(g.DRAMBytes) + p<<g.pageShift
	}
	return g.NVMBase() + p*uint64(g.PageSize)
}

// DIMMOf returns the DIMM holding NVM page p under round-robin page
// interleaving.
func (g Geometry) DIMMOf(p uint64) int {
	if g.dimmPow2 {
		return int(p & g.dimmMask)
	}
	return int(p % uint64(g.DIMMs))
}

// StripeOf returns the stripe containing NVM page p.
func (g Geometry) StripeOf(p uint64) uint64 {
	if g.dimmPow2 {
		return p >> g.dimmShift
	}
	return p / uint64(g.DIMMs)
}

// ParitySlot returns the in-stripe slot of stripe s that holds parity
// (rotating: s mod D).
func (g Geometry) ParitySlot(s uint64) int {
	if g.dimmPow2 {
		return int(s & g.dimmMask)
	}
	return int(s % uint64(g.DIMMs))
}

// ParityPage returns the page number of stripe s's parity page.
func (g Geometry) ParityPage(s uint64) uint64 {
	return s*uint64(g.DIMMs) + uint64(g.ParitySlot(s))
}

// IsParityPage reports whether NVM page p is a parity page.
func (g Geometry) IsParityPage(p uint64) bool {
	return g.ParitySlot(g.StripeOf(p)) == g.DIMMOf(p)
}

// DataIndexOf returns the contiguous data-page index of NVM page p,
// skipping parity pages. It panics if p is a parity page.
func (g Geometry) DataIndexOf(p uint64) uint64 {
	s := g.StripeOf(p)
	k := g.DIMMOf(p)
	pi := g.ParitySlot(s)
	if k == pi {
		panic(fmt.Sprintf("geom: page %d is a parity page", p))
	}
	di := s * uint64(g.DIMMs-1)
	if k > pi {
		return di + uint64(k-1)
	}
	return di + uint64(k)
}

// PageOfDataIndex is the inverse of DataIndexOf: it maps a contiguous data
// page index to its physical NVM page number.
func (g Geometry) PageOfDataIndex(di uint64) uint64 {
	s := di / uint64(g.DIMMs-1)
	r := int(di % uint64(g.DIMMs-1))
	pi := g.ParitySlot(s)
	k := r
	if r >= pi {
		k = r + 1
	}
	return s*uint64(g.DIMMs) + uint64(k)
}

// DataIndexAddr returns the physical address of byte off within the
// contiguous data-page space starting at data index di.
func (g Geometry) DataIndexAddr(di uint64, off uint64) uint64 {
	if g.pagePow2 {
		page := di + off>>g.pageShift
		return g.PageBase(g.PageOfDataIndex(page)) + off&(uint64(g.PageSize)-1)
	}
	page := di + off/uint64(g.PageSize)
	return g.PageBase(g.PageOfDataIndex(page)) + off%uint64(g.PageSize)
}

// ParityLineAddr returns the physical address of the parity line protecting
// the data line at addr: the same page offset within the stripe's parity
// page.
func (g Geometry) ParityLineAddr(addr uint64) uint64 {
	p := g.PageOf(addr)
	s := g.StripeOf(p)
	off := addr - g.NVMBase()
	if g.pagePow2 {
		off &= uint64(g.PageSize) - 1
	} else {
		off %= uint64(g.PageSize)
	}
	return g.PageBase(g.ParityPage(s)) + g.LineAddr(off)
}

// SiblingLineAddrs returns the physical addresses of the other data lines
// in addr's parity group: the same page offset in every other non-parity
// page of the stripe. Recovery XORs these with the parity line to
// reconstruct a lost line.
func (g Geometry) SiblingLineAddrs(addr uint64) []uint64 {
	return g.AppendSiblingLineAddrs(make([]uint64, 0, g.DIMMs-2), addr)
}

// AppendSiblingLineAddrs is SiblingLineAddrs into a caller-owned slice, for
// steady-state paths that must not allocate per line.
func (g Geometry) AppendSiblingLineAddrs(dst []uint64, addr uint64) []uint64 {
	p := g.PageOf(addr)
	s := g.StripeOf(p)
	off := g.LineAddr((addr - g.NVMBase()) % uint64(g.PageSize))
	pi := g.ParitySlot(s)
	for k := 0; k < g.DIMMs; k++ {
		page := s*uint64(g.DIMMs) + uint64(k)
		if k == pi || page == p {
			continue
		}
		dst = append(dst, g.PageBase(page)+off)
	}
	return dst
}
