package geom

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, dimms int) Geometry {
	t.Helper()
	g, err := New(64, 4096, 1<<20, dimms*4<<20, dimms)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(64, 4096, 1<<20, 16<<20, 1); err == nil {
		t.Error("want error for 1 DIMM (no cross-DIMM parity possible)")
	}
	if _, err := New(64, 4000, 1<<20, 16<<20, 4); err == nil {
		t.Error("want error for page size not a multiple of line size")
	}
	if _, err := New(64, 4096, 1<<20, 16<<20+4096, 4); err == nil {
		t.Error("want error for non-stripe-aligned NVM capacity")
	}
	if _, err := New(64, 4096, 1<<20+1, 16<<20, 4); err == nil {
		t.Error("want error for unaligned DRAM capacity")
	}
}

func TestBasicLayout(t *testing.T) {
	g := mk(t, 4)
	if g.NVMBase() != 1<<20 {
		t.Errorf("NVMBase = %#x, want %#x", g.NVMBase(), 1<<20)
	}
	if got := g.TotalPages(); got != 4096 {
		t.Errorf("TotalPages = %d, want 4096", got)
	}
	if got := g.Stripes(); got != 1024 {
		t.Errorf("Stripes = %d, want 1024", got)
	}
	if got := g.DataPages(); got != 3072 {
		t.Errorf("DataPages = %d, want 3072", got)
	}
	if g.IsNVM(g.NVMBase() - 1) {
		t.Error("DRAM address classified as NVM")
	}
	if !g.IsNVM(g.NVMBase()) || g.IsNVM(g.NVMEnd()) {
		t.Error("NVM range boundaries wrong")
	}
}

func TestParityRotation(t *testing.T) {
	g := mk(t, 4)
	// Stripe s has parity at in-stripe slot s mod D.
	for s := uint64(0); s < 8; s++ {
		pp := g.ParityPage(s)
		if !g.IsParityPage(pp) {
			t.Errorf("stripe %d: ParityPage %d not flagged as parity", s, pp)
		}
		if got := pp % 4; got != s%4 {
			t.Errorf("stripe %d: parity slot %d, want %d (rotating)", s, got, s%4)
		}
		n := 0
		for k := uint64(0); k < 4; k++ {
			if g.IsParityPage(s*4 + k) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("stripe %d has %d parity pages, want 1", s, n)
		}
	}
}

func TestDataIndexRoundTrip(t *testing.T) {
	for _, dimms := range []int{2, 3, 4, 8} {
		g := mk(t, dimms)
		f := func(di uint64) bool {
			di %= g.DataPages()
			p := g.PageOfDataIndex(di)
			return !g.IsParityPage(p) && g.DataIndexOf(p) == di
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("DIMMs=%d: %v", dimms, err)
		}
	}
}

func TestDataIndexIsContiguousAndComplete(t *testing.T) {
	g := mk(t, 4)
	// Every data index maps to a distinct page and indices are dense.
	seen := make(map[uint64]bool)
	for di := uint64(0); di < g.DataPages(); di++ {
		p := g.PageOfDataIndex(di)
		if seen[p] {
			t.Fatalf("data index %d reuses page %d", di, p)
		}
		seen[p] = true
	}
	// Every non-parity page is covered.
	for p := uint64(0); p < g.TotalPages(); p++ {
		if g.IsParityPage(p) != !seen[p] {
			t.Fatalf("page %d: parity=%v covered=%v", p, g.IsParityPage(p), seen[p])
		}
	}
}

func TestDataIndexOfPanicsOnParityPage(t *testing.T) {
	g := mk(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("DataIndexOf(parity page) did not panic")
		}
	}()
	g.DataIndexOf(g.ParityPage(0))
}

func TestParityLineAddr(t *testing.T) {
	g := mk(t, 4)
	f := func(di, off uint64) bool {
		di %= g.DataPages()
		off = (off % uint64(g.PageSize)) &^ 63
		addr := g.DataIndexAddr(di, 0) + off
		pa := g.ParityLineAddr(addr)
		// Parity line lives on a parity page of the same stripe, at the
		// same page offset.
		pp := g.PageOf(pa)
		return g.IsParityPage(pp) &&
			g.StripeOf(pp) == g.StripeOf(g.PageOf(addr)) &&
			(pa-g.PageBase(pp)) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSiblingLineAddrs(t *testing.T) {
	for _, dimms := range []int{2, 3, 4, 8} {
		g := mk(t, dimms)
		addr := g.DataIndexAddr(5%g.DataPages(), 128)
		addr = g.LineAddr(addr)
		sibs := g.SiblingLineAddrs(addr)
		if len(sibs) != dimms-2 {
			t.Errorf("DIMMs=%d: %d siblings, want %d", dimms, len(sibs), dimms-2)
		}
		for _, s := range sibs {
			if s == addr {
				t.Error("sibling list contains the line itself")
			}
			if g.IsParityPage(g.PageOf(s)) {
				t.Error("sibling on a parity page")
			}
			if g.StripeOf(g.PageOf(s)) != g.StripeOf(g.PageOf(addr)) {
				t.Error("sibling outside the stripe")
			}
		}
	}
}

func TestDataIndexAddrCrossesPages(t *testing.T) {
	g := mk(t, 4)
	// Offsets beyond one page land on the next data page, skipping parity.
	a0 := g.DataIndexAddr(0, 0)
	a1 := g.DataIndexAddr(0, uint64(g.PageSize))
	if g.PageOf(a1) != g.PageOfDataIndex(1) {
		t.Errorf("offset pageSize maps to page %d, want data page 1 (%d)", g.PageOf(a1), g.PageOfDataIndex(1))
	}
	if g.PageOf(a0) != g.PageOfDataIndex(0) {
		t.Errorf("offset 0 maps to wrong page")
	}
}

func TestLineAddr(t *testing.T) {
	g := mk(t, 4)
	if g.LineAddr(127) != 64 {
		t.Errorf("LineAddr(127) = %d, want 64", g.LineAddr(127))
	}
	if g.LinesPerPage() != 64 {
		t.Errorf("LinesPerPage = %d, want 64", g.LinesPerPage())
	}
}
