// Package ycsb provides deterministic YCSB-style key generators: uniform,
// zipfian (Gray et al.'s rejection-free generator, as used by the YCSB
// framework), and the explicit hot-set skew the paper uses for N-Store
// ("90% of transactions go to 10% of tuples").
package ycsb

import (
	"math"
	"math/rand"
)

// Generator yields keys in [0, n).
type Generator interface {
	Next() uint64
}

// Uniform draws keys uniformly.
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next key.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Zipfian draws keys with a zipfian distribution (theta ≈ 0.99 by YCSB
// convention), scattering ranks so hot keys are not clustered.
type Zipfian struct {
	n                 uint64
	theta, zetan      float64
	alpha, eta, zeta2 float64
	rng               *rand.Rand
}

// NewZipfian returns a zipfian generator over [0, n).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next key (rank scattered by a multiplicative hash).
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scatter so that popular keys spread over the keyspace.
	return (rank * 0x9e3779b97f4a7c15) % z.n
}

// HotSet sends hotFrac of the draws to the first hotKeys keys (uniformly)
// and the rest to the remainder — the paper's "90% of transactions go to
// 10% of tuples" skew with hotFrac=0.9 and hotKeys=n/10.
type HotSet struct {
	n, hotKeys uint64
	hotFrac    float64
	rng        *rand.Rand
}

// NewHotSet returns a hot-set generator over [0, n).
func NewHotSet(n uint64, hotKeys uint64, hotFrac float64, seed int64) *HotSet {
	if hotKeys == 0 {
		hotKeys = 1
	}
	return &HotSet{n: n, hotKeys: hotKeys, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next key.
func (h *HotSet) Next() uint64 {
	if h.rng.Float64() < h.hotFrac {
		return uint64(h.rng.Int63n(int64(h.hotKeys)))
	}
	if h.n == h.hotKeys {
		return uint64(h.rng.Int63n(int64(h.n)))
	}
	return h.hotKeys + uint64(h.rng.Int63n(int64(h.n-h.hotKeys)))
}

// Mix decides per-operation whether it is an update (true) given an
// update:read ratio like 50:50 or 90:10.
type Mix struct {
	updatePct int
	rng       *rand.Rand
}

// NewMix returns a mix with the given update percentage.
func NewMix(updatePct int, seed int64) *Mix {
	return &Mix{updatePct: updatePct, rng: rand.New(rand.NewSource(seed))}
}

// Update reports whether the next operation should be an update.
func (m *Mix) Update() bool { return m.rng.Intn(100) < m.updatePct }
