package ycsb

import (
	"math"
	"testing"
)

func TestUniformBoundsAndSpread(t *testing.T) {
	u := NewUniform(100, 1)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		k := u.Next()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for k, n := range counts {
		if n < 700 || n > 1300 {
			t.Errorf("key %d drawn %d times, want ~1000", k, n)
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	const n = 10000
	z := NewZipfian(n, 0.99, 1)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Zipfian: a small fraction of keys receives most draws.
	var hot int
	for _, c := range counts {
		if c > draws/n*10 { // >10x the uniform share
			hot += c
		}
	}
	if frac := float64(hot) / draws; frac < 0.3 {
		t.Errorf("hot keys got %.2f of draws, want skew > 0.3", frac)
	}
	// Distinct keys drawn should be far fewer than n would get uniformly.
	if len(counts) > n*9/10 {
		t.Errorf("%d distinct keys of %d — no skew visible", len(counts), n)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(1000, 0.99, 42)
	b := NewZipfian(1000, 0.99, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestHotSetNinetyTen(t *testing.T) {
	const n = 10000
	h := NewHotSet(n, n/10, 0.9, 7)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := h.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if k < n/10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("hot fraction = %.3f, want 0.9 (the paper's 90%%-to-10%% skew)", frac)
	}
}

func TestHotSetDegenerate(t *testing.T) {
	h := NewHotSet(10, 0, 1.0, 1) // hotKeys clamped to 1
	for i := 0; i < 100; i++ {
		if k := h.Next(); k != 0 {
			t.Fatalf("all-hot generator returned %d", k)
		}
	}
	all := NewHotSet(8, 8, 0.0, 1) // cold draws over hot==n
	for i := 0; i < 100; i++ {
		if k := all.Next(); k >= 8 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestMixRatio(t *testing.T) {
	for _, pct := range []int{0, 10, 50, 90, 100} {
		m := NewMix(pct, 3)
		updates := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if m.Update() {
				updates++
			}
		}
		got := float64(updates) / draws * 100
		if math.Abs(got-float64(pct)) > 1.5 {
			t.Errorf("mix %d%%: measured %.1f%%", pct, got)
		}
	}
}
