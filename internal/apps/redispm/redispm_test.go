package redispm_test

import (
	"testing"

	"tvarak/internal/apps/redispm"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func smallCfg(setOnly bool) redispm.Config {
	return redispm.Config{
		Instances: 2, Keys: 512, Ops: 300, ValueSize: 64,
		SetOnly: setOnly, RehashEvery: 4, ComputeCyc: 100,
		HeapBytes: 4 << 20, Seed: 1,
	}
}

func TestRunsUnderAllDesigns(t *testing.T) {
	for _, d := range param.Designs() {
		for _, setOnly := range []bool{true, false} {
			w := redispm.New(smallCfg(setOnly))
			r, err := harness.Run(param.SmallTest(d), w)
			if err != nil {
				t.Fatalf("%v setOnly=%v: %v", d, setOnly, err)
			}
			if r.Stats.Cycles == 0 {
				t.Errorf("%v: zero runtime", d)
			}
			if r.Stats.CorruptionsDetected != 0 {
				t.Errorf("%v: false corruption detections", d)
			}
		}
	}
}

func TestGetOnlyStillWritesNVM(t *testing.T) {
	// The paper's observation: Redis gets run transactions (rehash
	// bookkeeping + tx state), so even get-only workloads write NVM.
	w := redispm.New(smallCfg(false))
	r, err := harness.Run(param.SmallTest(param.Baseline), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.NVM.DataWrites == 0 {
		t.Error("get-only workload wrote nothing to NVM; rehash/tx metadata writes missing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		w := redispm.New(smallCfg(true))
		r, err := harness.Run(param.SmallTest(param.Tvarak), w)
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.Cycles, r.Stats.NVM.Total()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}

func TestFixedWorkAcrossDesigns(t *testing.T) {
	// Fixed-work methodology: the application issues identical L1 traffic
	// under Baseline and Tvarak (the controller works below the LLC).
	var l1 [2]uint64
	for i, d := range []param.Design{param.Baseline, param.Tvarak} {
		r, err := harness.Run(param.SmallTest(d), redispm.New(smallCfg(true)))
		if err != nil {
			t.Fatal(err)
		}
		l1[i] = r.Stats.Cache[0].Total()
	}
	if l1[0] != l1[1] {
		t.Errorf("L1 accesses differ across designs: %d vs %d (work not fixed)", l1[0], l1[1])
	}
}

func TestNames(t *testing.T) {
	if got := redispm.New(redispm.Default(true)).Name(); got != "redis/set" {
		t.Errorf("Name() = %q", got)
	}
	if got := redispm.New(redispm.Default(false)).Name(); got != "redis/get" {
		t.Errorf("Name() = %q", got)
	}
}
