// Package redispm is the Redis-like persistent key-value store of §IV-B:
// a single-threaded hashtable server ported to a persistent-memory heap
// (as the paper modifies Redis v3.1 with PMDK's libpmemobj). It keeps
// Redis's signature incremental-rehashing design: every command — get
// included — runs a transaction and migrates one bucket when a rehash is in
// flight, which is why even get-only workloads write persistent transaction
// metadata (the effect the paper calls out in Fig. 8(a)).
//
// Multiple independent instances run in parallel, one per core, mirroring
// the paper's 1–6 Redis instance sweep.
package redispm

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"tvarak/internal/harness"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

const (
	bucketsPerChunk = 256
	entryHeader     = 24 // [key 8 | next 8 | vlen 8]
)

// Config shapes a Redis workload.
type Config struct {
	Instances int    // parallel single-threaded instances (≤ cores)
	Keys      uint64 // keyspace per instance (preloaded)
	Ops       int    // measured requests per instance
	ValueSize int
	SetOnly   bool // true = set-only, false = get-only
	// RehashEvery migrates one bucket every Nth command while a rehash is
	// in flight, modelling Redis's time-bounded incremental rehashing
	// (rehashing runs for 1 ms out of every 100 ms plus one lazy step per
	// touched bucket).
	RehashEvery int
	ComputeCyc  uint64
	HeapBytes   uint64
	Seed        int64
}

// Default returns the paper-shaped configuration scaled for simulation.
func Default(setOnly bool) Config {
	return Config{
		Instances:   6,
		Keys:        8192,
		Ops:         8000,
		ValueSize:   128,
		SetOnly:     setOnly,
		RehashEvery: 24,
		ComputeCyc:  2000, // command parse/dispatch cost (calibration: see EXPERIMENTS.md)
		HeapBytes:   8 << 20,
		Seed:        1,
	}
}

// table is one hashtable generation: a persistent pointer array split into
// chunk objects of 256 buckets.
type table struct {
	nBuckets uint64
	tabID    uint64 // object holding chunk offsets
	tabOff   uint64
	chunkIDs []uint64
}

// instance is one Redis server.
type instance struct {
	h           *pmem.Heap
	rehashEvery int
	opCount     int
	t0          *table // active
	t1          *table // rehash target (nil unless rehashing)
	rehashIdx   uint64
	used        uint64
}

// Workload implements harness.Workload.
type Workload struct {
	Cfg  Config
	inst []*instance
}

// New returns the workload.
func New(cfg Config) *Workload { return &Workload{Cfg: cfg} }

// Name implements harness.Workload.
func (w *Workload) Name() string {
	if w.Cfg.SetOnly {
		return "redis/set"
	}
	return "redis/get"
}

func hashKey(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	return k ^ (k >> 29)
}

// newTable allocates a table generation of n buckets on core c.
func (in *instance) newTable(c *sim.Core, n uint64) *table {
	t := &table{nBuckets: n}
	nChunks := (n + bucketsPerChunk - 1) / bucketsPerChunk
	t.tabID, t.tabOff = in.h.Alloc(c, nChunks*8)
	t.chunkIDs = make([]uint64, nChunks)
	for i := uint64(0); i < nChunks; i++ {
		id, off := in.h.Alloc(c, bucketsPerChunk*8)
		t.chunkIDs[i] = id
		// Publish the chunk pointer in the table object.
		in.h.Map.Store64(c, t.tabOff+i*8, off)
		// Clear buckets (fresh objects may reuse freed storage).
		zero := make([]byte, bucketsPerChunk*8)
		in.h.Map.Store(c, off, zero)
	}
	return t
}

// bucketSlot loads the chunk pointer and returns (chunk object id, slot
// offset) for bucket b.
func (in *instance) bucketSlot(c *sim.Core, t *table, b uint64) (uint64, uint64) {
	chunk := b / bucketsPerChunk
	chunkOff := in.h.Map.Load64(c, t.tabOff+chunk*8)
	return t.chunkIDs[chunk], chunkOff + (b%bucketsPerChunk)*8
}

// findEntry walks bucket b of table t for key, returning the entry offset
// (0 if absent).
func (in *instance) findEntry(c *sim.Core, t *table, b uint64, key uint64) uint64 {
	_, slot := in.bucketSlot(c, t, b)
	e := in.h.Map.Load64(c, slot)
	for e != 0 {
		if in.h.Map.Load64(c, e) == key {
			return e
		}
		e = in.h.Map.Load64(c, e+8)
	}
	return 0
}

// entryObjID recovers the object id from the header preceding the payload.
func (in *instance) entryObjID(c *sim.Core, e uint64) uint64 {
	return in.h.Map.Load64(c, e-8)
}

// rehashStep migrates one bucket from t0 to t1 inside tx every
// rehashEvery-th command, Redis-style.
func (in *instance) rehashStep(c *sim.Core, tx *pmem.Tx) {
	if in.t1 == nil {
		return
	}
	in.opCount++
	if in.rehashEvery > 1 && in.opCount%in.rehashEvery != 0 {
		return
	}
	b := in.rehashIdx
	srcID, srcSlot := in.bucketSlot(c, in.t0, b)
	e := in.h.Map.Load64(c, srcSlot)
	for e != 0 {
		next := in.h.Map.Load64(c, e+8)
		key := in.h.Map.Load64(c, e)
		nb := hashKey(key) % in.t1.nBuckets
		dstID, dstSlot := in.bucketSlot(c, in.t1, nb)
		head := in.h.Map.Load64(c, dstSlot)
		eid := in.entryObjID(c, e)
		tx.Write64(eid, e+8, head)
		tx.Write64(dstID, dstSlot, e)
		e = next
	}
	tx.Write64(srcID, srcSlot, 0)
	in.rehashIdx++
	if in.rehashIdx >= in.t0.nBuckets {
		// Rehash complete: t1 becomes the active table.
		for _, id := range in.t0.chunkIDs {
			in.h.Free(c, id)
		}
		in.h.Free(c, in.t0.tabID)
		in.t0, in.t1 = in.t1, nil
		in.rehashIdx = 0
	}
}

// startRehashIfNeeded begins an incremental rehash at load factor 1.
func (in *instance) startRehashIfNeeded(c *sim.Core) {
	if in.t1 == nil && in.used > in.t0.nBuckets {
		in.t1 = in.newTable(c, in.t0.nBuckets*2)
		in.rehashIdx = 0
	}
}

// set executes one SET command.
func (in *instance) set(c *sim.Core, key uint64, val []byte) {
	tx := in.h.Begin(c)
	in.rehashStep(c, tx)
	b0 := hashKey(key) % in.t0.nBuckets
	if e := in.findEntry(c, in.t0, b0, key); e != 0 {
		tx.Write(in.entryObjID(c, e), e+entryHeader, val)
		tx.Commit()
		return
	}
	if in.t1 != nil {
		b1 := hashKey(key) % in.t1.nBuckets
		if e := in.findEntry(c, in.t1, b1, key); e != 0 {
			tx.Write(in.entryObjID(c, e), e+entryHeader, val)
			tx.Commit()
			return
		}
	}
	// Insert a new entry (into t1 when rehashing, as Redis does).
	t := in.t0
	b := b0
	if in.t1 != nil {
		t = in.t1
		b = hashKey(key) % t.nBuckets
	}
	id, off := in.h.Alloc(c, uint64(entryHeader+len(val)))
	bid, slot := in.bucketSlot(c, t, b)
	head := in.h.Map.Load64(c, slot)
	var hdr [entryHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], key)
	binary.LittleEndian.PutUint64(hdr[8:], head)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(val)))
	tx.WriteFresh(id, off, hdr[:])
	tx.WriteFresh(id, off+entryHeader, val)
	tx.Write64(bid, slot, off)
	in.used++
	tx.Commit()
	in.startRehashIfNeeded(c)
}

// get executes one GET command. Like the paper's Redis, it still runs a
// transaction (rehash bookkeeping and transaction state are persistent
// writes even for reads).
func (in *instance) get(c *sim.Core, key uint64, buf []byte) bool {
	tx := in.h.Begin(c)
	in.rehashStep(c, tx)
	found := false
	if e := in.findEntry(c, in.t0, hashKey(key)%in.t0.nBuckets, key); e != 0 {
		vlen := in.h.Map.Load64(c, e+16)
		in.h.Map.Load(c, e+entryHeader, buf[:min(vlen, uint64(len(buf)))])
		found = true
	} else if in.t1 != nil {
		if e := in.findEntry(c, in.t1, hashKey(key)%in.t1.nBuckets, key); e != 0 {
			vlen := in.h.Map.Load64(c, e+16)
			in.h.Map.Load(c, e+entryHeader, buf[:min(vlen, uint64(len(buf)))])
			found = true
		}
	}
	tx.Commit()
	return found
}

// Setup implements harness.Workload: build one heap per instance and
// preload the keyspace so the measured phase runs against a populated,
// actively rehashing table.
func (w *Workload) Setup(s *harness.System) error {
	cfg := w.Cfg
	if cfg.Instances > s.Cfg.Cores {
		return fmt.Errorf("redispm: %d instances > %d cores", cfg.Instances, s.Cfg.Cores)
	}
	w.inst = make([]*instance, cfg.Instances)
	for i := range w.inst {
		h, err := s.NewHeap(fmt.Sprintf("redis-%d", i), cfg.HeapBytes, cfg.Keys*8+4096)
		if err != nil {
			return err
		}
		re := cfg.RehashEvery
		if re <= 0 {
			re = 1
		}
		w.inst[i] = &instance{h: h, rehashEvery: re}
	}
	workers := make([]func(*sim.Core), cfg.Instances)
	for i := range w.inst {
		in := w.inst[i]
		seed := cfg.Seed + int64(i)
		workers[i] = func(c *sim.Core) {
			// Initial table at load factor 1 for the preload, then force
			// an incremental rehash so migration is in flight across the
			// whole measured phase — the long-running-Redis state whose
			// per-request migration transactions the paper calls out for
			// get-only workloads.
			n := uint64(1)
			for n < cfg.Keys {
				n *= 2
			}
			in.t0 = in.newTable(c, n)
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, cfg.ValueSize)
			for k := uint64(0); k < cfg.Keys; k++ {
				rng.Read(val)
				in.set(c, k, val)
			}
			if in.t1 == nil {
				in.t1 = in.newTable(c, in.t0.nBuckets*2)
				in.rehashIdx = 0
			}
		}
	}
	s.Eng.Run(workers)
	return nil
}

// Workers implements harness.Workload: the measured request streams.
func (w *Workload) Workers(s *harness.System) []func(*sim.Core) {
	cfg := w.Cfg
	workers := make([]func(*sim.Core), cfg.Instances)
	for i := range w.inst {
		in := w.inst[i]
		seed := cfg.Seed + 1000 + int64(i)
		workers[i] = func(c *sim.Core) {
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, cfg.ValueSize)
			for op := 0; op < cfg.Ops; op++ {
				c.Compute(cfg.ComputeCyc)
				key := uint64(rng.Int63n(int64(cfg.Keys)))
				if cfg.SetOnly {
					rng.Read(val)
					in.set(c, key, val)
				} else {
					in.get(c, key, val)
				}
			}
		}
	}
	return workers
}
