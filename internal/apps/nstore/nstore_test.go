package nstore_test

import (
	"testing"

	"tvarak/internal/apps/nstore"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func smallCfg(m nstore.Mix) nstore.Config {
	return nstore.Config{
		Mix: m, Clients: 2, Tuples: 1024, TupleBytes: 256, FieldBytes: 64,
		Txns: 400, ComputeCyc: 100, HeapBytes: 8 << 20, Seed: 1,
	}
}

func TestRunsUnderAllDesignsAndMixes(t *testing.T) {
	for _, d := range param.Designs() {
		for _, m := range nstore.Mixes() {
			r, err := harness.Run(param.SmallTest(d), nstore.New(smallCfg(m)))
			if err != nil {
				t.Fatalf("%v/%v: %v", d, m, err)
			}
			if r.Stats.CorruptionsDetected != 0 {
				t.Errorf("%v/%v: false corruptions", d, m)
			}
		}
	}
}

func TestMixNames(t *testing.T) {
	want := map[nstore.Mix]string{
		nstore.ReadHeavy:   "nstore/read-heavy",
		nstore.BalancedMix: "nstore/balanced",
		nstore.UpdateHeavy: "nstore/update-heavy",
	}
	for m, n := range want {
		if got := nstore.New(nstore.Default(m)).Name(); got != n {
			t.Errorf("Name = %q, want %q", got, n)
		}
	}
	if nstore.ReadHeavy.UpdatePct() != 10 || nstore.UpdateHeavy.UpdatePct() != 90 {
		t.Error("update percentages wrong")
	}
}

func TestUpdateHeavyWritesMoreThanReadHeavy(t *testing.T) {
	var writes [2]uint64
	for i, m := range []nstore.Mix{nstore.ReadHeavy, nstore.UpdateHeavy} {
		r, err := harness.Run(param.SmallTest(param.Baseline), nstore.New(smallCfg(m)))
		if err != nil {
			t.Fatal(err)
		}
		writes[i] = r.Stats.NVM.DataWrites
	}
	if writes[1] < writes[0]*3 {
		t.Errorf("update-heavy writes (%d) not clearly above read-heavy (%d)", writes[1], writes[0])
	}
}

func TestWALFragmentationHurtsTvarakMoreThanReads(t *testing.T) {
	// The linked-list WAL's random placement should make update-heavy
	// redundancy traffic per data write higher than read-heavy's (poor
	// redundancy-cache reuse — the paper's §IV-D point).
	ratio := func(m nstore.Mix) float64 {
		r, err := harness.Run(param.SmallTest(param.Tvarak), nstore.New(smallCfg(m)))
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.NVM.DataWrites == 0 {
			return 0
		}
		return float64(r.Stats.NVM.Redundancy()) / float64(r.Stats.NVM.DataWrites)
	}
	if ru := ratio(nstore.UpdateHeavy); ru < 0.5 {
		t.Errorf("update-heavy redundancy-per-write = %.2f, want >= 0.5 (random WAL kills reuse)", ru)
	}
}
