// Package nstore is the N-Store-like NVM-optimized relational DBMS of
// §IV-D: a tuple table plus a linked-list write-ahead log, driven by YCSB
// workloads with high skew (90% of transactions touch 10% of tuples).
//
// The detail the paper leans on is the WAL's allocation pattern: "each
// update transaction allocates and writes to a linked list node. Because
// the linked list layout is not sequential in NVM, TVARAK incurs cache
// misses for the redundancy information and performs more NVM accesses."
// We reproduce that by drawing WAL nodes from a pre-fragmented pool in
// permuted order, as a long-running engine's allocator free list would.
package nstore

import (
	"fmt"
	"math/rand"

	"tvarak/internal/harness"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/ycsb"
)

// Mix is a YCSB update:read mix.
type Mix int

const (
	ReadHeavy   Mix = iota // 10:90
	BalancedMix            // 50:50
	UpdateHeavy            // 90:10
)

// String returns the workload label.
func (m Mix) String() string {
	switch m {
	case ReadHeavy:
		return "read-heavy"
	case BalancedMix:
		return "balanced"
	case UpdateHeavy:
		return "update-heavy"
	}
	return fmt.Sprintf("Mix(%d)", int(m))
}

// UpdatePct returns the update percentage.
func (m Mix) UpdatePct() int {
	switch m {
	case ReadHeavy:
		return 10
	case BalancedMix:
		return 50
	default:
		return 90
	}
}

// Mixes lists the paper's three YCSB mixes.
func Mixes() []Mix { return []Mix{ReadHeavy, BalancedMix, UpdateHeavy} }

// Config shapes an N-Store workload.
type Config struct {
	Mix        Mix
	Clients    int    // 4 in the paper
	Tuples     uint64 // table size
	TupleBytes uint64 // tuple payload (1 KB YCSB tuples in the paper, scaled)
	FieldBytes uint64 // one updated/read field
	Txns       int    // total transactions across clients
	ComputeCyc uint64
	HeapBytes  uint64
	Seed       int64
}

// Default returns the paper-shaped configuration at reproduction scale.
func Default(m Mix) Config {
	return Config{
		Mix:        m,
		Clients:    4,
		Tuples:     65536,
		TupleBytes: 256,
		FieldBytes: 64,
		Txns:       40000,
		ComputeCyc: 200,
		HeapBytes:  48 << 20,
		Seed:       1,
	}
}

const walNodeBytes = 192 // next, txid, tupleid, before+after field images

// Workload implements harness.Workload.
type Workload struct {
	Cfg Config

	h        *pmem.Heap
	tableID  uint64
	tableOff uint64
	// Pre-fragmented WAL node pool, in permuted order.
	walIDs    []uint64
	walOffs   []uint64
	headID    uint64
	headOff   uint64
	tupleOffs []uint64
}

// New returns the workload.
func New(cfg Config) *Workload { return &Workload{Cfg: cfg} }

// Name implements harness.Workload.
func (w *Workload) Name() string { return "nstore/" + w.Cfg.Mix.String() }

// Setup implements harness.Workload: allocate the table as chunked objects,
// preload tuples, and build the fragmented WAL pool.
func (w *Workload) Setup(s *harness.System) error {
	cfg := w.Cfg
	if cfg.Clients > s.Cfg.Cores {
		return fmt.Errorf("nstore: %d clients > %d cores", cfg.Clients, s.Cfg.Cores)
	}
	nWal := cfg.Txns*cfg.Mix.UpdatePct()/100 + cfg.Clients + 16
	maxObjects := cfg.Tuples + uint64(nWal) + 1024
	h, err := s.NewHeap("nstore", cfg.HeapBytes, maxObjects)
	if err != nil {
		return err
	}
	w.h = h
	setup := func(c *sim.Core) {
		// Table: one object per tuple so object-granular schemes checksum
		// tuples, as Pangolin would.
		w.walIDs = make([]uint64, nWal)
		w.walOffs = make([]uint64, nWal)
		_, w.tableOff = h.Alloc(c, 8) // root pointer area
		w.tableID = 0
		rng := rand.New(rand.NewSource(cfg.Seed))
		tupleOffs := make([]uint64, cfg.Tuples)
		buf := make([]byte, cfg.TupleBytes)
		for i := uint64(0); i < cfg.Tuples; i++ {
			_, off := h.Alloc(c, cfg.TupleBytes)
			tupleOffs[i] = off
			rng.Read(buf)
			h.Map.Store(c, off, buf)
		}
		w.tupleOffs = tupleOffs
		// WAL pool, interleaved with nothing but allocated contiguously,
		// then used in permuted order to model allocator fragmentation.
		for i := 0; i < nWal; i++ {
			w.walIDs[i], w.walOffs[i] = h.Alloc(c, walNodeBytes)
		}
		perm := rng.Perm(nWal)
		pids := make([]uint64, nWal)
		poffs := make([]uint64, nWal)
		for i, p := range perm {
			pids[i], poffs[i] = w.walIDs[p], w.walOffs[p]
		}
		w.walIDs, w.walOffs = pids, poffs
		w.headID, w.headOff = h.Alloc(c, 8)
		h.Map.Store64(c, w.headOff, 0)
	}
	s.Eng.Run([]func(*sim.Core){setup})
	return nil
}

// Workers implements harness.Workload: YCSB clients.
func (w *Workload) Workers(s *harness.System) []func(*sim.Core) {
	cfg := w.Cfg
	perClient := cfg.Txns / cfg.Clients
	// Partition the WAL pool across clients.
	workers := make([]func(*sim.Core), cfg.Clients)
	var next int
	for i := 0; i < cfg.Clients; i++ {
		i := i
		lo := next
		next += perClient*cfg.Mix.UpdatePct()/100 + 4
		hi := min(next, len(w.walIDs))
		workers[i] = func(c *sim.Core) {
			keys := ycsb.NewHotSet(cfg.Tuples, cfg.Tuples/10, 0.9, cfg.Seed+int64(i))
			mix := ycsb.NewMix(cfg.Mix.UpdatePct(), cfg.Seed+100+int64(i))
			rng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(i)))
			field := make([]byte, cfg.FieldBytes)
			record := make([]byte, cfg.TupleBytes)
			wal := lo
			for t := 0; t < perClient; t++ {
				c.Compute(cfg.ComputeCyc)
				tuple := keys.Next()
				off := w.tupleOffs[tuple]
				fieldIdx := uint64(rng.Int63n(int64(cfg.TupleBytes / cfg.FieldBytes)))
				foff := off + fieldIdx*cfg.FieldBytes
				if !mix.Update() {
					// YCSB reads fetch the whole record.
					w.h.Map.Load(c, off, record)
					continue
				}
				rng.Read(field)
				w.update(c, tuple, foff, field, &wal, hi)
			}
		}
	}
	return workers
}

// update runs one update transaction: append a WAL node (before/after
// images) and update the tuple field in place.
func (w *Workload) update(c *sim.Core, tuple, foff uint64, field []byte, wal *int, hi int) {
	h := w.h
	tx := h.Begin(c)
	if *wal < hi {
		nid, noff := w.walIDs[*wal], w.walOffs[*wal]
		*wal++
		head := h.Map.Load64(c, w.headOff)
		tx.WriteFresh64(nid, noff, head)
		tx.WriteFresh64(nid, noff+8, uint64(*wal))
		tx.WriteFresh64(nid, noff+16, tuple)
		var before = make([]byte, len(field))
		h.Map.Load(c, foff, before)
		tx.WriteFresh(nid, noff+24, before)
		tx.WriteFresh(nid, noff+24+uint64(len(field)), field)
		tx.Write64(w.headID, w.headOff, noff)
	}
	tid := objID(c, h, w.tupleOffs[tuple])
	tx.Write(tid, foff, field)
	tx.Commit()
}

func objID(c *sim.Core, h *pmem.Heap, off uint64) uint64 {
	return h.Map.Load64(c, off-8)
}
