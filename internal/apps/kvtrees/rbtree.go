package kvtrees

import (
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

// RB-Tree after PMDK's rbtree_map: a classic red-black tree with parent
// pointers. Nodes hold the key, a value-object offset, color and the three
// links; every mutation (insert, recolor, rotation) is transactionally
// logged field by field, like the PMDK implementation.
const (
	rbKey    = 0
	rbVal    = 8
	rbColor  = 16 // 0 red, 1 black
	rbLeft   = 24
	rbRight  = 32
	rbParent = 40
	rbNodeSz = 48

	red   = 0
	black = 1
)

type rbtree struct {
	h       *pmem.Heap
	rootID  uint64
	rootOff uint64
	valSize int
}

func newRbtree(c *sim.Core, h *pmem.Heap, valSize int) *rbtree {
	t := &rbtree{h: h, valSize: valSize}
	t.rootID, t.rootOff = h.Alloc(c, 8)
	h.Map.Store64(c, t.rootOff, 0)
	return t
}

func (t *rbtree) root(c *sim.Core) uint64          { return t.h.Map.Load64(c, t.rootOff) }
func (t *rbtree) key(c *sim.Core, n uint64) uint64 { return t.h.Map.Load64(c, n+rbKey) }
func (t *rbtree) color(c *sim.Core, n uint64) uint64 {
	if n == 0 {
		return black // nil leaves are black
	}
	return t.h.Map.Load64(c, n+rbColor)
}
func (t *rbtree) left(c *sim.Core, n uint64) uint64   { return t.h.Map.Load64(c, n+rbLeft) }
func (t *rbtree) right(c *sim.Core, n uint64) uint64  { return t.h.Map.Load64(c, n+rbRight) }
func (t *rbtree) parent(c *sim.Core, n uint64) uint64 { return t.h.Map.Load64(c, n+rbParent) }

func (t *rbtree) set(c *sim.Core, tx *pmem.Tx, n uint64, field uint64, v uint64) {
	tx.Write64(objID(c, t.h, n), n+field, v)
}

func (t *rbtree) setRoot(c *sim.Core, tx *pmem.Tx, n uint64) {
	tx.Write64(t.rootID, t.rootOff, n)
}

// findNode returns the node holding key, or 0.
func (t *rbtree) findNode(c *sim.Core, key uint64) uint64 {
	n := t.root(c)
	for n != 0 {
		k := t.key(c, n)
		switch {
		case key == k:
			return n
		case key < k:
			n = t.left(c, n)
		default:
			n = t.right(c, n)
		}
	}
	return 0
}

func (t *rbtree) rotateLeft(c *sim.Core, tx *pmem.Tx, x uint64) {
	y := t.right(c, x)
	yl := t.left(c, y)
	t.set(c, tx, x, rbRight, yl)
	if yl != 0 {
		t.set(c, tx, yl, rbParent, x)
	}
	p := t.parent(c, x)
	t.set(c, tx, y, rbParent, p)
	switch {
	case p == 0:
		t.setRoot(c, tx, y)
	case t.left(c, p) == x:
		t.set(c, tx, p, rbLeft, y)
	default:
		t.set(c, tx, p, rbRight, y)
	}
	t.set(c, tx, y, rbLeft, x)
	t.set(c, tx, x, rbParent, y)
}

func (t *rbtree) rotateRight(c *sim.Core, tx *pmem.Tx, x uint64) {
	y := t.left(c, x)
	yr := t.right(c, y)
	t.set(c, tx, x, rbLeft, yr)
	if yr != 0 {
		t.set(c, tx, yr, rbParent, x)
	}
	p := t.parent(c, x)
	t.set(c, tx, y, rbParent, p)
	switch {
	case p == 0:
		t.setRoot(c, tx, y)
	case t.right(c, p) == x:
		t.set(c, tx, p, rbRight, y)
	default:
		t.set(c, tx, p, rbLeft, y)
	}
	t.set(c, tx, y, rbRight, x)
	t.set(c, tx, x, rbParent, y)
}

func (t *rbtree) insert(c *sim.Core, key uint64, val []byte) {
	tx := t.h.Begin(c)
	defer tx.Commit()
	// BST descent.
	var parent uint64
	n := t.root(c)
	for n != 0 {
		parent = n
		k := t.key(c, n)
		if key == k {
			voff := t.h.Map.Load64(c, n+rbVal)
			tx.Write(objID(c, t.h, voff), voff, val)
			return
		}
		if key < k {
			n = t.left(c, n)
		} else {
			n = t.right(c, n)
		}
	}
	vid, voff := t.h.Alloc(c, uint64(t.valSize))
	tx.WriteFresh(vid, voff, val)
	nid, noff := t.h.Alloc(c, rbNodeSz)
	tx.WriteFresh64(nid, noff+rbKey, key)
	tx.WriteFresh64(nid, noff+rbVal, voff)
	tx.WriteFresh64(nid, noff+rbColor, red)
	tx.WriteFresh64(nid, noff+rbLeft, 0)
	tx.WriteFresh64(nid, noff+rbRight, 0)
	tx.WriteFresh64(nid, noff+rbParent, parent)
	switch {
	case parent == 0:
		t.setRoot(c, tx, noff)
	case key < t.key(c, parent):
		t.set(c, tx, parent, rbLeft, noff)
	default:
		t.set(c, tx, parent, rbRight, noff)
	}
	t.fixInsert(c, tx, noff)
}

// fixInsert restores red-black invariants after inserting red node z.
func (t *rbtree) fixInsert(c *sim.Core, tx *pmem.Tx, z uint64) {
	for {
		p := t.parent(c, z)
		if p == 0 || t.color(c, p) == black {
			break
		}
		g := t.parent(c, p)
		if g == 0 {
			break
		}
		if t.left(c, g) == p {
			u := t.right(c, g)
			if t.color(c, u) == red {
				t.set(c, tx, p, rbColor, black)
				t.set(c, tx, u, rbColor, black)
				t.set(c, tx, g, rbColor, red)
				z = g
				continue
			}
			if t.right(c, p) == z {
				z = p
				t.rotateLeft(c, tx, z)
				p = t.parent(c, z)
				g = t.parent(c, p)
			}
			t.set(c, tx, p, rbColor, black)
			t.set(c, tx, g, rbColor, red)
			t.rotateRight(c, tx, g)
		} else {
			u := t.left(c, g)
			if t.color(c, u) == red {
				t.set(c, tx, p, rbColor, black)
				t.set(c, tx, u, rbColor, black)
				t.set(c, tx, g, rbColor, red)
				z = g
				continue
			}
			if t.left(c, p) == z {
				z = p
				t.rotateRight(c, tx, z)
				p = t.parent(c, z)
				g = t.parent(c, p)
			}
			t.set(c, tx, p, rbColor, black)
			t.set(c, tx, g, rbColor, red)
			t.rotateLeft(c, tx, g)
		}
	}
	r := t.root(c)
	if t.color(c, r) == red {
		t.set(c, tx, r, rbColor, black)
	}
}

func (t *rbtree) update(c *sim.Core, key uint64, val []byte) bool {
	n := t.findNode(c, key)
	if n == 0 {
		return false
	}
	voff := t.h.Map.Load64(c, n+rbVal)
	tx := t.h.Begin(c)
	tx.Write(objID(c, t.h, voff), voff, val)
	tx.Commit()
	return true
}

func (t *rbtree) lookup(c *sim.Core, key uint64, buf []byte) bool {
	n := t.findNode(c, key)
	if n == 0 {
		return false
	}
	voff := t.h.Map.Load64(c, n+rbVal)
	t.h.Map.Load(c, voff, buf[:t.valSize])
	return true
}
