package kvtrees

import (
	"encoding/binary"

	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

// B-Tree after PMDK's btree_map: order 8 (7 keys, 8 children per node).
// Leaves store value-object offsets in the child slots. Inserts split
// preemptively on the way down, so each insert touches at most O(height)
// nodes, all logged transactionally.
const (
	btOrder  = 8
	btKeys   = btOrder - 1
	btN      = 0  // uint64: number of keys
	btLeaf   = 8  // uint64: 1 if leaf
	btKey0   = 16 // 7 keys
	btPtr0   = 72 // 8 child (or 7 value) offsets
	btNodeSz = 136
)

type btree struct {
	h       *pmem.Heap
	rootID  uint64
	rootOff uint64
	valSize int
}

func newBtree(c *sim.Core, h *pmem.Heap, valSize int) *btree {
	t := &btree{h: h, valSize: valSize}
	t.rootID, t.rootOff = h.Alloc(c, 8)
	root := t.newNode(c, true)
	h.Map.Store64(c, t.rootOff, root)
	return t
}

// node is a volatile working copy of one B-tree node.
type btNode struct {
	off  uint64
	n    int
	leaf bool
	keys [btKeys]uint64
	ptrs [btOrder]uint64
}

func (t *btree) newNode(c *sim.Core, leaf bool) uint64 {
	_, off := t.h.Alloc(c, btNodeSz)
	var l uint64
	if leaf {
		l = 1
	}
	t.h.Map.Store64(c, off+btN, 0)
	t.h.Map.Store64(c, off+btLeaf, l)
	return off
}

// readNode loads a node's content with simulated loads.
func (t *btree) readNode(c *sim.Core, off uint64) *btNode {
	var buf [btNodeSz]byte
	t.h.Map.Load(c, off, buf[:])
	n := &btNode{off: off}
	n.n = int(binary.LittleEndian.Uint64(buf[btN:]))
	n.leaf = binary.LittleEndian.Uint64(buf[btLeaf:]) == 1
	for i := 0; i < btKeys; i++ {
		n.keys[i] = binary.LittleEndian.Uint64(buf[btKey0+8*i:])
	}
	for i := 0; i < btOrder; i++ {
		n.ptrs[i] = binary.LittleEndian.Uint64(buf[btPtr0+8*i:])
	}
	return n
}

// writeNode persists a node's volatile copy transactionally. fresh marks
// nodes allocated in this transaction (no undo logging needed).
func (t *btree) writeNode(c *sim.Core, tx *pmem.Tx, n *btNode, fresh bool) {
	var buf [btNodeSz]byte
	var l uint64
	if n.leaf {
		l = 1
	}
	binary.LittleEndian.PutUint64(buf[btN:], uint64(n.n))
	binary.LittleEndian.PutUint64(buf[btLeaf:], l)
	for i := 0; i < btKeys; i++ {
		binary.LittleEndian.PutUint64(buf[btKey0+8*i:], n.keys[i])
	}
	for i := 0; i < btOrder; i++ {
		binary.LittleEndian.PutUint64(buf[btPtr0+8*i:], n.ptrs[i])
	}
	id := objID(c, t.h, n.off)
	if fresh {
		tx.WriteFresh(id, n.off, buf[:])
	} else {
		tx.Write(id, n.off, buf[:])
	}
}

// splitChild splits full child ci of parent p (both already loaded).
// Leaves split B+-style: the separator is copied up and all entries stay
// in leaves; internal nodes move the separator up.
func (t *btree) splitChild(c *sim.Core, tx *pmem.Tx, p *btNode, ci int, child *btNode) {
	mid := btKeys / 2
	sibOff := t.newNode(c, child.leaf)
	sib := &btNode{off: sibOff, leaf: child.leaf}
	if child.leaf {
		sib.n = btKeys - mid
		copy(sib.keys[:], child.keys[mid:])
		copy(sib.ptrs[:], child.ptrs[mid:btKeys])
	} else {
		sib.n = btKeys - mid - 1
		copy(sib.keys[:], child.keys[mid+1:])
		copy(sib.ptrs[:], child.ptrs[mid+1:])
	}
	up := child.keys[mid]
	child.n = mid
	// Shift the parent to make room.
	copy(p.keys[ci+1:], p.keys[ci:p.n])
	copy(p.ptrs[ci+2:], p.ptrs[ci+1:p.n+1])
	p.keys[ci] = up
	p.ptrs[ci+1] = sibOff
	p.n++
	t.writeNode(c, tx, sib, true)
	t.writeNode(c, tx, child, false)
	t.writeNode(c, tx, p, false)
}

func (t *btree) insert(c *sim.Core, key uint64, val []byte) {
	tx := t.h.Begin(c)
	defer tx.Commit()
	rootOff := t.h.Map.Load64(c, t.rootOff)
	root := t.readNode(c, rootOff)
	if root.n == btKeys {
		nrOff := t.newNode(c, false)
		nr := &btNode{off: nrOff}
		nr.ptrs[0] = rootOff
		t.splitChild(c, tx, nr, 0, root)
		tx.Write64(t.rootID, t.rootOff, nrOff)
		root = nr
	}
	t.insertNonFull(c, tx, root, key, val)
}

func (t *btree) insertNonFull(c *sim.Core, tx *pmem.Tx, n *btNode, key uint64, val []byte) {
	for {
		i := 0
		for i < n.n && key > n.keys[i] {
			i++
		}
		if i < n.n && n.keys[i] == key && n.leaf {
			// Overwrite existing value.
			vid, voff := objID(c, t.h, n.ptrs[i]), n.ptrs[i]
			tx.Write(vid, voff, val)
			return
		}
		if n.leaf {
			vid, voff := t.h.Alloc(c, uint64(t.valSize))
			tx.WriteFresh(vid, voff, val)
			copy(n.keys[i+1:], n.keys[i:n.n])
			copy(n.ptrs[i+1:], n.ptrs[i:n.n])
			n.keys[i] = key
			n.ptrs[i] = voff
			n.n++
			t.writeNode(c, tx, n, false)
			return
		}
		if i < n.n && key == n.keys[i] {
			i++ // equal keys live in the right subtree (B+-style)
		}
		child := t.readNode(c, n.ptrs[i])
		if child.n == btKeys {
			t.splitChild(c, tx, n, i, child)
			if key >= n.keys[i] {
				child = t.readNode(c, n.ptrs[i+1])
			} else {
				child = t.readNode(c, n.ptrs[i]) // reload post-split
			}
		}
		n = child
	}
}

// findLeafSlot descends to the leaf slot holding key, returning the value
// offset (0 if absent).
func (t *btree) findLeafSlot(c *sim.Core, key uint64) uint64 {
	off := t.h.Map.Load64(c, t.rootOff)
	for {
		n := t.readNode(c, off)
		i := 0
		for i < n.n && key > n.keys[i] {
			i++
		}
		if n.leaf {
			if i < n.n && n.keys[i] == key {
				return n.ptrs[i]
			}
			return 0
		}
		if i < n.n && n.keys[i] == key {
			i++ // equal keys descend right of the separator... they live in leaves
		}
		off = n.ptrs[i]
	}
}

func (t *btree) update(c *sim.Core, key uint64, val []byte) bool {
	voff := t.findLeafSlot(c, key)
	if voff == 0 {
		return false
	}
	tx := t.h.Begin(c)
	tx.Write(objID(c, t.h, voff), voff, val)
	tx.Commit()
	return true
}

func (t *btree) lookup(c *sim.Core, key uint64, buf []byte) bool {
	voff := t.findLeafSlot(c, key)
	if voff == 0 {
		return false
	}
	t.h.Map.Load(c, voff, buf[:t.valSize])
	return true
}
