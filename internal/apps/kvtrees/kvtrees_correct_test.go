package kvtrees

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

// newStore builds one structure on a fresh small system for correctness
// testing against a Go map.
func storeFixture(t *testing.T, s Structure) (*harness.System, store) {
	t.Helper()
	cfg := param.SmallTest(param.Tvarak)
	sys, err := harness.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("kv", 8<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var st store
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		switch s {
		case CTree:
			st = newCtree(c, h, 32)
		case BTree:
			st = newBtree(c, h, 32)
		case RBTree:
			st = newRbtree(c, h, 32)
		}
	}})
	_ = pmem.Range{}
	return sys, st
}

// TestStoresMatchModel drives each structure with random inserts, updates
// and lookups and checks every lookup against a Go-map model, under the
// full TVARAK design (so checksums are verified throughout).
func TestStoresMatchModel(t *testing.T) {
	for _, s := range Structures() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			sys, st := storeFixture(t, s)
			model := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(99))
			sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
				for i := 0; i < 3000; i++ {
					k := uint64(rng.Int63n(500))
					switch rng.Intn(3) {
					case 0:
						v := make([]byte, 32)
						rng.Read(v)
						st.insert(c, k, v)
						model[k] = v
					case 1:
						v := make([]byte, 32)
						rng.Read(v)
						if st.update(c, k, v) {
							if _, ok := model[k]; !ok {
								t.Fatalf("update of absent key %d succeeded", k)
							}
							model[k] = v
						} else if _, ok := model[k]; ok {
							t.Fatalf("update of present key %d failed", k)
						}
					default:
						buf := make([]byte, 32)
						ok := st.lookup(c, k, buf)
						want, present := model[k]
						if ok != present {
							t.Fatalf("lookup(%d) presence = %v, want %v", k, ok, present)
						}
						if ok && !bytes.Equal(buf, want) {
							t.Fatalf("lookup(%d) wrong value", k)
						}
					}
				}
			}})
			if sys.Eng.St.CorruptionsDetected != 0 {
				t.Errorf("false corruption detections: %d", sys.Eng.St.CorruptionsDetected)
			}
		})
	}
}

// TestRBTreeInvariants checks red-black properties after many inserts.
func TestRBTreeInvariants(t *testing.T) {
	sys, st := storeFixture(t, RBTree)
	rb := st.(*rbtree)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		v := make([]byte, 32)
		for i := 0; i < 2000; i++ {
			st.insert(c, keyScatter(uint64(i)), v)
		}
		root := rb.root(c)
		if rb.color(c, root) != black {
			t.Error("root is not black")
		}
		var check func(n uint64) int
		check = func(n uint64) int {
			if n == 0 {
				return 1
			}
			l, r := rb.left(c, n), rb.right(c, n)
			if rb.color(c, n) == red {
				if rb.color(c, l) == red || rb.color(c, r) == red {
					t.Error("red node with red child")
				}
			}
			if l != 0 && rb.key(c, l) >= rb.key(c, n) {
				t.Error("BST order violated (left)")
			}
			if r != 0 && rb.key(c, r) <= rb.key(c, n) {
				t.Error("BST order violated (right)")
			}
			lb := check(l)
			if rb2 := check(r); rb2 != lb {
				t.Error("black height mismatch")
			}
			if rb.color(c, n) == black {
				return lb + 1
			}
			return lb
		}
		check(root)
	}})
}
