package kvtrees

import (
	"fmt"
	"math/rand"

	"tvarak/internal/harness"
	"tvarak/internal/sim"
)

// Structure selects the data structure under test.
type Structure int

const (
	CTree Structure = iota
	BTree
	RBTree
)

// String returns the Table II name.
func (s Structure) String() string {
	switch s {
	case CTree:
		return "ctree"
	case BTree:
		return "btree"
	case RBTree:
		return "rbtree"
	}
	return fmt.Sprintf("Structure(%d)", int(s))
}

// Structures lists all three.
func Structures() []Structure { return []Structure{CTree, BTree, RBTree} }

// Mix is the pmembench workload mix (update percentage of non-insert ops;
// InsertOnly inserts fresh keys instead).
type Mix int

const (
	InsertOnly Mix = iota
	UpdateOnly     // 100:0 updates:reads
	Balanced       // 50:50
	ReadOnly       // 0:100
)

// String returns the workload label.
func (m Mix) String() string {
	switch m {
	case InsertOnly:
		return "insert"
	case UpdateOnly:
		return "update"
	case Balanced:
		return "balanced"
	case ReadOnly:
		return "read"
	}
	return fmt.Sprintf("Mix(%d)", int(m))
}

// Mixes lists the paper's four workload mixes.
func Mixes() []Mix { return []Mix{InsertOnly, UpdateOnly, Balanced, ReadOnly} }

// Config shapes a key-value-structure workload.
type Config struct {
	Structure  Structure
	Mix        Mix
	Instances  int
	Keys       uint64 // preloaded keys per instance
	Ops        int    // measured operations per instance
	ValueSize  int
	ComputeCyc uint64 // per-op request handling cost
	HeapBytes  uint64
	Seed       int64
}

// Default returns the paper-shaped configuration at reproduction scale:
// 12 independent single-threaded instances (the paper removes locks and
// runs 12 instances to stress NVM).
func Default(s Structure, m Mix) Config {
	return Config{
		Structure:  s,
		Mix:        m,
		Instances:  12,
		Keys:       4096,
		Ops:        4000,
		ValueSize:  128,
		ComputeCyc: 3000,
		HeapBytes:  4 << 20,
		Seed:       1,
	}
}

// Workload implements harness.Workload.
type Workload struct {
	Cfg    Config
	stores []store
}

// New returns the workload.
func New(cfg Config) *Workload { return &Workload{Cfg: cfg} }

// Name implements harness.Workload.
func (w *Workload) Name() string {
	return fmt.Sprintf("%s/%s", w.Cfg.Structure, w.Cfg.Mix)
}

// Setup implements harness.Workload: one heap and structure per instance,
// preloaded with Keys tuples.
func (w *Workload) Setup(s *harness.System) error {
	cfg := w.Cfg
	if cfg.Instances > s.Cfg.Cores {
		return fmt.Errorf("kvtrees: %d instances > %d cores", cfg.Instances, s.Cfg.Cores)
	}
	w.stores = make([]store, cfg.Instances)
	workers := make([]func(*sim.Core), cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		h, err := s.NewHeap(fmt.Sprintf("%s-%d", cfg.Structure, i), cfg.HeapBytes, cfg.Keys*8+uint64(cfg.Ops)*4+4096)
		if err != nil {
			return err
		}
		i := i
		seed := cfg.Seed + int64(i)
		workers[i] = func(c *sim.Core) {
			var st store
			switch cfg.Structure {
			case CTree:
				st = newCtree(c, h, cfg.ValueSize)
			case BTree:
				st = newBtree(c, h, cfg.ValueSize)
			case RBTree:
				st = newRbtree(c, h, cfg.ValueSize)
			}
			w.stores[i] = st
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, cfg.ValueSize)
			for k := uint64(0); k < cfg.Keys; k++ {
				rng.Read(val)
				st.insert(c, keyScatter(k), val)
			}
		}
	}
	s.Eng.Run(workers)
	return nil
}

// keyScatter spreads dense key ordinals over the key space so tree shapes
// are not degenerate insertion-order artifacts.
func keyScatter(k uint64) uint64 {
	k *= 0xbf58476d1ce4e5b9
	return k ^ (k >> 31)
}

// Workers implements harness.Workload.
func (w *Workload) Workers(s *harness.System) []func(*sim.Core) {
	cfg := w.Cfg
	workers := make([]func(*sim.Core), cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		st := w.stores[i]
		seed := cfg.Seed + 5000 + int64(i)
		workers[i] = func(c *sim.Core) {
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, cfg.ValueSize)
			buf := make([]byte, cfg.ValueSize)
			for op := 0; op < cfg.Ops; op++ {
				c.Compute(cfg.ComputeCyc)
				switch {
				case cfg.Mix == InsertOnly:
					rng.Read(val)
					st.insert(c, keyScatter(cfg.Keys+uint64(op)), val)
				case cfg.Mix == UpdateOnly,
					cfg.Mix == Balanced && op%2 == 0:
					rng.Read(val)
					k := keyScatter(uint64(rng.Int63n(int64(cfg.Keys))))
					st.update(c, k, val)
				default:
					k := keyScatter(uint64(rng.Int63n(int64(cfg.Keys))))
					st.lookup(c, k, buf)
				}
			}
		}
	}
	return workers
}
