package kvtrees

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"tvarak/internal/sim"
)

// The property-based layer: operation sequences are *data* (generated
// from a logged seed), replayed against a plain Go map as the oracle.
// A failing sequence is shrunk to its minimal failing prefix before
// reporting, and the report names the seed so the exact sequence can be
// replayed with
//
//	TVARAK_KV_PROP_SEEDS=<seed> go test ./internal/apps/kvtrees/ -run TestPropertyRandomOps

type kvOp struct {
	kind byte // 0 insert, 1 update, 2 lookup
	key  uint64
	val  byte // value fill byte (values are repeat(val, valSize))
}

func (o kvOp) String() string {
	return fmt.Sprintf("{%s key=%d val=%#x}",
		[]string{"insert", "update", "lookup"}[o.kind], o.key, o.val)
}

const propValSize = 32

// genOps expands a seed into a deterministic operation sequence. Small
// key space so inserts, updates and lookups collide often.
func genOps(seed int64, n int) []kvOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]kvOp, n)
	for i := range ops {
		ops[i] = kvOp{
			kind: byte(rng.Intn(3)),
			key:  uint64(rng.Int63n(400)),
			val:  byte(rng.Intn(256)),
		}
	}
	return ops
}

// replayOps runs the sequence against a fresh store and the map model.
// It returns the index of the first operation whose outcome contradicts
// the model (-1 if none) with a description of the violation.
func replayOps(t *testing.T, s Structure, ops []kvOp) (int, string) {
	t.Helper()
	sys, st := storeFixture(t, s)
	model := map[uint64][]byte{}
	failIdx, failMsg := -1, ""
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, propValSize)
		for i, op := range ops {
			v := bytes.Repeat([]byte{op.val}, propValSize)
			switch op.kind {
			case 0:
				st.insert(c, op.key, v)
				model[op.key] = v
			case 1:
				ok := st.update(c, op.key, v)
				_, present := model[op.key]
				if ok != present {
					failIdx, failMsg = i, fmt.Sprintf("update(%d) = %v, model presence %v", op.key, ok, present)
					return
				}
				if ok {
					model[op.key] = v
				}
			case 2:
				ok := st.lookup(c, op.key, buf)
				want, present := model[op.key]
				if ok != present {
					failIdx, failMsg = i, fmt.Sprintf("lookup(%d) presence = %v, model %v", op.key, ok, present)
					return
				}
				if ok && !bytes.Equal(buf, want) {
					failIdx, failMsg = i, fmt.Sprintf("lookup(%d) = %#x..., model %#x...", op.key, buf[0], want[0])
					return
				}
			}
		}
	}})
	if failIdx < 0 && sys.Eng.St.CorruptionsDetected != 0 {
		failIdx, failMsg = len(ops)-1, fmt.Sprintf("%d false corruption detections", sys.Eng.St.CorruptionsDetected)
	}
	return failIdx, failMsg
}

// shrinkPrefix finds a minimal failing prefix by binary search over the
// prefix length (each probe replays on a fresh system, so probes are
// independent and deterministic).
func shrinkPrefix(t *testing.T, s Structure, ops []kvOp, failIdx int) []kvOp {
	t.Helper()
	lo, hi := 1, failIdx+1 // hi is known to fail
	for lo < hi {
		mid := (lo + hi) / 2
		if idx, _ := replayOps(t, s, ops[:mid]); idx >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return ops[:hi]
}

func propSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("TVARAK_KV_PROP_SEEDS")
	if env == "" {
		return []int64{101, 202, 303}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("TVARAK_KV_PROP_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestPropertyRandomOps replays seeded random operation sequences on all
// three structures against the map oracle, shrinking any failure to a
// minimal prefix and logging the seed needed to reproduce it.
func TestPropertyRandomOps(t *testing.T) {
	nOps := 1200
	if testing.Short() {
		nOps = 300
	}
	for _, s := range Structures() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, seed := range propSeeds(t) {
				ops := genOps(seed, nOps)
				idx, msg := replayOps(t, s, ops)
				if idx < 0 {
					continue
				}
				min := shrinkPrefix(t, s, ops, idx)
				t.Fatalf("seed %d: %s after %d ops (shrunk from %d); last op %s\n"+
					"reproduce: TVARAK_KV_PROP_SEEDS=%d go test ./internal/apps/kvtrees/ -run TestPropertyRandomOps",
					seed, msg, len(min), idx+1, min[len(min)-1], seed)
			}
		})
	}
}

// TestShrinkPrefixFindsMinimal validates the shrinker itself: feed a
// sequence whose only violation is a model mismatch planted at a known
// index by lying to the replay about one op, using a structure-free
// predicate — here simulated by truncation: the prefix property must be
// monotone for the planted failure.
func TestShrinkPrefixFindsMinimal(t *testing.T) {
	// An insert at index k followed by a lookup of the same key with a
	// mismatched model is hard to plant without breaking the store, so
	// validate on the real store: any prefix that fails must keep
	// failing after the binary search, and passing sequences shrink to
	// themselves (hi == failIdx+1 bound respected).
	ops := genOps(7, 50)
	if idx, _ := replayOps(t, BTree, ops); idx >= 0 {
		min := shrinkPrefix(t, BTree, ops, idx)
		if gotIdx, _ := replayOps(t, BTree, min); gotIdx < 0 {
			t.Fatal("shrunk prefix does not fail")
		}
	}
}
