// Package kvtrees implements the three persistent-memory key-value data
// structures of §IV-C — C-Tree (crit-bit trie), B-Tree, and RB-Tree, after
// Intel PMDK's example maps — over the pmem transactional heap, plus the
// pmembench-style workload mixes the paper runs (insert-only and 100:0 /
// 50:50 / 0:100 update:read, 12 independent single-threaded instances).
package kvtrees

import (
	"math/bits"

	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

// store is one persistent key-value structure instance.
type store interface {
	insert(c *sim.Core, key uint64, val []byte)
	update(c *sim.Core, key uint64, val []byte) bool
	lookup(c *sim.Core, key uint64, buf []byte) bool
}

// objID reads the pmem object id stored in the header preceding a payload.
func objID(c *sim.Core, h *pmem.Heap, off uint64) uint64 {
	return h.Map.Load64(c, off-8)
}

// ---------------------------------------------------------------------------
// C-Tree: a crit-bit trie (PMDK ctree_map). Internal nodes hold the
// critical bit index and two children; leaves hold key and inline value.
// Child pointers tag internal nodes with bit 0 (offsets are 16-aligned).
// ---------------------------------------------------------------------------

type ctree struct {
	h       *pmem.Heap
	rootID  uint64
	rootOff uint64
	valSize int
}

func newCtree(c *sim.Core, h *pmem.Heap, valSize int) *ctree {
	t := &ctree{h: h, valSize: valSize}
	t.rootID, t.rootOff = h.Alloc(c, 8)
	h.Map.Store64(c, t.rootOff, 0)
	return t
}

const (
	ctLeafKey = 0 // leaf: [key 8 | value ...]
	ctBit     = 0 // internal: [bit 8 | child0 8 | child1 8]
	ctChild   = 8
)

func isInternal(p uint64) bool { return p&1 == 1 }

// find walks to the leaf that key would collide with. It returns the leaf
// offset, or 0 for an empty tree.
func (t *ctree) find(c *sim.Core, key uint64) uint64 {
	p := t.h.Map.Load64(c, t.rootOff)
	for isInternal(p) {
		node := p &^ 1
		bit := t.h.Map.Load64(c, node+ctBit)
		dir := (key >> bit) & 1
		p = t.h.Map.Load64(c, node+ctChild+8*dir)
	}
	return p
}

func (t *ctree) insert(c *sim.Core, key uint64, val []byte) {
	tx := t.h.Begin(c)
	defer tx.Commit()
	leaf := t.find(c, key)
	if leaf == 0 {
		_, off := t.newLeaf(c, tx, key, val)
		tx.Write64(t.rootID, t.rootOff, off)
		return
	}
	lkey := t.h.Map.Load64(c, leaf+ctLeafKey)
	if lkey == key {
		tx.Write(objID(c, t.h, leaf), leaf+8, val)
		return
	}
	diff := uint64(bits.Len64(key^lkey) - 1)
	dir := (key >> diff) & 1
	_, newLeafOff := t.newLeaf(c, tx, key, val)
	nid, noff := t.h.Alloc(c, 24)
	// Re-descend to the insertion point: the first edge whose subtree
	// decides a bit lower than diff (crit-bit order is descending).
	slotID, slotOff := t.rootID, t.rootOff
	p := t.h.Map.Load64(c, t.rootOff)
	for isInternal(p) {
		node := p &^ 1
		bit := t.h.Map.Load64(c, node+ctBit)
		if bit < diff {
			break
		}
		d := (key >> bit) & 1
		slotID, slotOff = objID(c, t.h, node), node+ctChild+8*d
		p = t.h.Map.Load64(c, slotOff)
	}
	tx.WriteFresh64(nid, noff+ctBit, diff)
	tx.WriteFresh64(nid, noff+ctChild+8*dir, newLeafOff)
	tx.WriteFresh64(nid, noff+ctChild+8*(1-dir), p)
	tx.Write64(slotID, slotOff, noff|1)
}

func (t *ctree) newLeaf(c *sim.Core, tx *pmem.Tx, key uint64, val []byte) (uint64, uint64) {
	id, off := t.h.Alloc(c, uint64(8+t.valSize))
	tx.WriteFresh64(id, off+ctLeafKey, key)
	tx.WriteFresh(id, off+8, val)
	return id, off
}

func (t *ctree) update(c *sim.Core, key uint64, val []byte) bool {
	leaf := t.find(c, key)
	if leaf == 0 || t.h.Map.Load64(c, leaf) != key {
		return false
	}
	tx := t.h.Begin(c)
	tx.Write(objID(c, t.h, leaf), leaf+8, val)
	tx.Commit()
	return true
}

func (t *ctree) lookup(c *sim.Core, key uint64, buf []byte) bool {
	leaf := t.find(c, key)
	if leaf == 0 || t.h.Map.Load64(c, leaf) != key {
		return false
	}
	t.h.Map.Load(c, leaf+8, buf[:t.valSize])
	return true
}
