package stream_test

import (
	"encoding/binary"
	"testing"

	"tvarak/internal/apps/stream"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func smallCfg(k stream.Kernel) stream.Config {
	return stream.Config{Kernel: k, Threads: 4, ArrayBytes: 256 << 10, ComputeCyc: 2, Seed: 1}
}

// runKernel executes one kernel and returns the system for content checks.
func runKernel(t *testing.T, d param.Design, k stream.Kernel) (*harness.System, *stream.Workload) {
	t.Helper()
	w := stream.New(smallCfg(k))
	sys, err := harness.NewSystem(param.SmallTest(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	sys.Eng.ResetMeasurement()
	sys.Eng.Run(w.Workers(sys))
	return sys, w
}

// readArray reads one array's media content after a drained run.
func readArray(sys *harness.System, w *stream.Workload, which int) []uint64 {
	f, err := sys.FS.Open("stream")
	if err != nil {
		panic(err)
	}
	geo := sys.FS.Geometry()
	n := w.Cfg.ArrayBytes
	out := make([]uint64, n/8)
	buf := make([]byte, 4096)
	for off := uint64(0); off < n; off += 4096 {
		sys.Eng.NVM.ReadRaw(geo.DataIndexAddr(f.StartDI, uint64(which)*n+off), buf)
		for i := 0; i < 4096; i += 8 {
			out[(off+uint64(i))/8] = binary.LittleEndian.Uint64(buf[i:])
		}
	}
	return out
}

func TestCopyKernelContent(t *testing.T) {
	sys, w := runKernel(t, param.Tvarak, stream.Copy)
	a := readArray(sys, w, 0)
	c := readArray(sys, w, 2)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("c[%d] = %d, want a[%d] = %d", i, c[i], i, a[i])
		}
	}
	if sys.Eng.St.CorruptionsDetected != 0 {
		t.Error("false corruptions during copy")
	}
}

func TestScaleKernelContent(t *testing.T) {
	sys, w := runKernel(t, param.Baseline, stream.Scale)
	b := readArray(sys, w, 1)
	c := readArray(sys, w, 2)
	for i := range b {
		if b[i] != 3*c[i] {
			t.Fatalf("b[%d] = %d, want 3*c[%d] = %d", i, b[i], i, 3*c[i])
		}
	}
}

func TestAddKernelContent(t *testing.T) {
	sys, w := runKernel(t, param.TxBObjectCsums, stream.Add)
	a := readArray(sys, w, 0)
	b := readArray(sys, w, 1)
	c := readArray(sys, w, 2)
	for i := range a {
		if c[i] != a[i]+b[i] {
			t.Fatalf("c[%d] = %d, want %d", i, c[i], a[i]+b[i])
		}
	}
}

func TestTriadKernelContent(t *testing.T) {
	// Triad mutates a in place: a = b + 3*c, where b and c still hold the
	// initial ramp. Verify against freshly computed values.
	sys, w := runKernel(t, param.Tvarak, stream.Triad)
	a := readArray(sys, w, 0)
	b := readArray(sys, w, 1)
	c := readArray(sys, w, 2)
	for i := range a {
		if a[i] != b[i]+3*c[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], b[i]+3*c[i])
		}
	}
}

func TestBaselineSaturatesNVM(t *testing.T) {
	// §IV-F: the stream baseline is NVM-bandwidth-bound — runtime equals
	// the busiest DIMM's occupancy. Needs the full 12-thread configuration
	// (4 threads at test scale leave the DIMMs with headroom).
	cfg := stream.Default(stream.Copy)
	cfg.ArrayBytes = 1 << 20
	w := stream.New(cfg)
	sys, err := harness.NewSystem(param.ReproScale(param.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	sys.Eng.ResetMeasurement()
	sys.Eng.Run(w.Workers(sys))
	if sys.Eng.St.Cycles != sys.Eng.NVM.BusyUntil() {
		t.Errorf("runtime %d != NVM bandwidth bound %d (baseline should saturate)",
			sys.Eng.St.Cycles, sys.Eng.NVM.BusyUntil())
	}
}

func TestKernelNamesAndList(t *testing.T) {
	if len(stream.Kernels()) != 4 {
		t.Fatal("want 4 kernels")
	}
	want := []string{"copy", "scale", "add", "triad"}
	for i, k := range stream.Kernels() {
		if k.String() != want[i] {
			t.Errorf("kernel %d = %q, want %q", i, k, want[i])
		}
		if got := stream.New(stream.Default(k)).Name(); got != "stream/"+want[i] {
			t.Errorf("Name = %q", got)
		}
	}
}
