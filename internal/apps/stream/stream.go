// Package stream reproduces the STREAM memory-bandwidth kernels of §IV-F
// (Copy, Scale, Add, Triad), modified as in the paper to keep their arrays
// in DAX-mapped persistent memory. Twelve threads partition the arrays into
// non-overlapping chunks; the baseline saturates NVM bandwidth, which is
// why all redundancy designs show their largest overheads here.
package stream

import (
	"encoding/binary"
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
)

// Kernel is one STREAM kernel.
type Kernel int

const (
	Copy Kernel = iota
	Scale
	Add
	Triad
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "copy"
	case Scale:
		return "scale"
	case Add:
		return "add"
	case Triad:
		return "triad"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Kernels lists all four.
func Kernels() []Kernel { return []Kernel{Copy, Scale, Add, Triad} }

// Config shapes a stream workload.
type Config struct {
	Kernel     Kernel
	Threads    int
	ArrayBytes uint64 // per array (three arrays; the paper uses 128 MB each)
	ComputeCyc uint64 // per-line vector arithmetic cost
	Seed       int64
}

// Default returns the paper-shaped configuration at reproduction scale.
func Default(k Kernel) Config {
	return Config{
		Kernel:     k,
		Threads:    12,
		ArrayBytes: 8 << 20,
		ComputeCyc: 2,
		Seed:       1,
	}
}

// Workload implements harness.Workload.
type Workload struct {
	Cfg   Config
	m     *daxfs.DaxMap
	raw   *swred.RawScheme
	async *swred.Vilamb

	a, b, cOff uint64 // array offsets within the mapping
	scalar     uint64
}

// New returns the workload.
func New(cfg Config) *Workload { return &Workload{Cfg: cfg, scalar: 3} }

// Name implements harness.Workload.
func (w *Workload) Name() string { return "stream/" + w.Cfg.Kernel.String() }

// Setup implements harness.Workload: one mapping holding the three arrays,
// prefilled raw.
func (w *Workload) Setup(s *harness.System) error {
	cfg := w.Cfg
	if cfg.Threads > s.Cfg.Cores {
		return fmt.Errorf("stream: %d threads > %d cores", cfg.Threads, s.Cfg.Cores)
	}
	m, err := s.NewMapping("stream", 3*cfg.ArrayBytes)
	if err != nil {
		return err
	}
	w.m = m
	w.a, w.b, w.cOff = 0, cfg.ArrayBytes, 2*cfg.ArrayBytes
	switch s.Cfg.Design {
	case param.TxBObjectCsums, param.TxBPageCsums:
		w.raw, err = swred.AttachRaw(s.FS, m, s.Cfg.Design, 64)
		if err != nil {
			return err
		}
	case param.Vilamb:
		w.async = s.Async(m)
	}
	// Prefill arrays with a raw deterministic ramp and reconcile redundancy.
	geo := s.FS.Geometry()
	ps := uint64(geo.PageSize)
	page := make([]byte, ps)
	for off := uint64(0); off < m.Size(); off += ps {
		for i := 0; i < len(page); i += 8 {
			binary.LittleEndian.PutUint64(page[i:], off+uint64(i))
		}
		s.Eng.NVM.WriteRaw(m.Addr(off), page)
	}
	s.FS.ReconcileMapping(m)
	return nil
}

// Workers implements harness.Workload: each thread sweeps its chunk of the
// arrays line by line (the unit a vectorized kernel consumes).
func (w *Workload) Workers(s *harness.System) []func(*sim.Core) {
	cfg := w.Cfg
	lines := cfg.ArrayBytes / 64
	per := lines / uint64(cfg.Threads)
	workers := make([]func(*sim.Core), cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		lo := uint64(i) * per
		hi := lo + per
		if i == cfg.Threads-1 {
			hi = lines
		}
		workers[i] = func(c *sim.Core) {
			src1 := make([]byte, 64)
			src2 := make([]byte, 64)
			dst := make([]byte, 64)
			for l := lo; l < hi; l++ {
				off := l * 64
				c.Compute(cfg.ComputeCyc)
				switch cfg.Kernel {
				case Copy: // c = a
					w.m.Load(c, w.a+off, src1)
					copy(dst, src1)
					w.store(c, w.cOff+off, dst)
				case Scale: // b = scalar * c
					w.m.Load(c, w.cOff+off, src1)
					mulLine(dst, src1, w.scalar)
					w.store(c, w.b+off, dst)
				case Add: // c = a + b
					w.m.Load(c, w.a+off, src1)
					w.m.Load(c, w.b+off, src2)
					addLine(dst, src1, src2)
					w.store(c, w.cOff+off, dst)
				case Triad: // a = b + scalar * c
					w.m.Load(c, w.b+off, src1)
					w.m.Load(c, w.cOff+off, src2)
					mulLine(dst, src2, w.scalar)
					addLine(dst, dst, src1)
					w.store(c, w.a+off, dst)
				}
			}
		}
	}
	return workers
}

// store writes one line and runs the software-redundancy hook under TxB
// designs, or reports the dirtied line under the async (Vilamb) family.
func (w *Workload) store(c *sim.Core, off uint64, data []byte) {
	w.m.Store(c, off, data)
	if w.raw != nil {
		w.raw.OnWrite(c, off, 64)
	}
	if w.async != nil {
		w.async.MarkDirty(c, off, 64)
	}
}

// mulLine computes dst = k * src elementwise over 8 uint64 lanes.
func mulLine(dst, src []byte, k uint64) {
	for i := 0; i < 64; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], k*binary.LittleEndian.Uint64(src[i:]))
	}
}

// addLine computes dst = x + y elementwise over 8 uint64 lanes.
func addLine(dst, x, y []byte) {
	for i := 0; i < 64; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(x[i:])+binary.LittleEndian.Uint64(y[i:]))
	}
}
