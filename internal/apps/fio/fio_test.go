package fio_test

import (
	"testing"

	"tvarak/internal/apps/fio"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

func smallCfg(p fio.Pattern, write bool) fio.Config {
	return fio.Config{
		Pattern: p, Write: write, Threads: 4,
		RegionBytes: 1 << 20, AccessBytes: 256 << 10,
		BlockBytes: 64, ComputeCyc: 100, Seed: 1,
	}
}

func TestRunsUnderAllDesigns(t *testing.T) {
	for _, d := range param.Designs() {
		for _, wr := range []bool{false, true} {
			r, err := harness.Run(param.SmallTest(d), fio.New(smallCfg(fio.Rand, wr)))
			if err != nil {
				t.Fatalf("%v write=%v: %v", d, wr, err)
			}
			if r.Stats.CorruptionsDetected != 0 {
				t.Errorf("%v: false corruptions", d)
			}
		}
	}
}

func TestNoLineAccessedTwice(t *testing.T) {
	// "no cache line is accessed twice": a cold random-read run must fill
	// exactly AccessBytes/64 distinct lines per thread from NVM.
	cfg := smallCfg(fio.Rand, false)
	r, err := harness.Run(param.SmallTest(param.Baseline), fio.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := uint64(cfg.Threads) * cfg.AccessBytes / 64
	if r.Stats.NVM.DataReads != wantLines {
		t.Errorf("NVM reads = %d, want exactly %d (each line read once, cold)",
			r.Stats.NVM.DataReads, wantLines)
	}
	if r.Stats.NVM.DataWrites != 0 {
		t.Errorf("read-only run wrote %d lines", r.Stats.NVM.DataWrites)
	}
}

func TestWriteRunPersistsEveryLine(t *testing.T) {
	cfg := smallCfg(fio.Seq, true)
	r, err := harness.Run(param.SmallTest(param.Baseline), fio.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := uint64(cfg.Threads) * cfg.AccessBytes / 64
	if r.Stats.NVM.DataWrites != wantLines {
		t.Errorf("NVM writes = %d, want %d", r.Stats.NVM.DataWrites, wantLines)
	}
}

func TestReadsAreFreeForTxBSchemes(t *testing.T) {
	// Table I: software schemes do not verify reads, so read workloads
	// must cost exactly the baseline.
	base, err := harness.Run(param.SmallTest(param.Baseline), fio.New(smallCfg(fio.Rand, false)))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []param.Design{param.TxBObjectCsums, param.TxBPageCsums} {
		r, err := harness.Run(param.SmallTest(d), fio.New(smallCfg(fio.Rand, false)))
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Cycles != base.Stats.Cycles {
			t.Errorf("%v read runtime %d != baseline %d", d, r.Stats.Cycles, base.Stats.Cycles)
		}
	}
}

func TestNaiveControllerModeVerifiesCleanly(t *testing.T) {
	// Regression: the Fig. 9 naive (page-granular) controller verifies
	// page checksums on fills; the prefilled file's page checksums must be
	// reconciled so no false corruption fires.
	cfg := param.SmallTest(param.Tvarak)
	cfg.Tvarak.Features = param.TvarakFeatures{} // naive
	r, err := harness.Run(cfg, fio.New(smallCfg(fio.Rand, true)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.CorruptionsDetected != 0 {
		t.Errorf("naive mode raised %d false corruptions", r.Stats.CorruptionsDetected)
	}
}

func TestTvarakVerifiesEveryRead(t *testing.T) {
	r, err := harness.Run(param.SmallTest(param.Tvarak), fio.New(smallCfg(fio.Seq, false)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.NVM.RedReads == 0 {
		t.Error("Tvarak read run fetched no checksums")
	}
}

func TestRandomCostsMoreThanSequentialUnderTvarak(t *testing.T) {
	// The paper's fio result: sequential writes ≈ free, random writes
	// expensive (poor redundancy-line reuse).
	seqR, err := harness.Run(param.SmallTest(param.Tvarak), fio.New(smallCfg(fio.Seq, true)))
	if err != nil {
		t.Fatal(err)
	}
	rndR, err := harness.Run(param.SmallTest(param.Tvarak), fio.New(smallCfg(fio.Rand, true)))
	if err != nil {
		t.Fatal(err)
	}
	if rndR.Stats.NVM.Redundancy() <= seqR.Stats.NVM.Redundancy() {
		t.Errorf("random redundancy NVM (%d) not above sequential (%d)",
			rndR.Stats.NVM.Redundancy(), seqR.Stats.NVM.Redundancy())
	}
}
