// Package fio reproduces the fio (libpmem engine) synthetic workloads of
// §IV-E: 12 threads issue 64 B loads or stores over DAX-mapped file data,
// sequentially or randomly, each thread in a non-overlapping region with no
// cache line accessed twice.
package fio

import (
	"fmt"
	"math/rand"

	"tvarak/internal/daxfs"
	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
)

// Pattern is the access pattern.
type Pattern int

const (
	Seq Pattern = iota
	Rand
)

// String returns the label.
func (p Pattern) String() string {
	if p == Seq {
		return "seq"
	}
	return "rand"
}

// Config shapes a fio workload.
type Config struct {
	Pattern Pattern
	Write   bool
	Threads int
	// RegionBytes is each thread's private region; AccessBytes (≤ Region)
	// is how much of it the fixed work touches, 64 B at a time, no line
	// twice.
	RegionBytes uint64
	AccessBytes uint64
	BlockBytes  uint64
	ComputeCyc  uint64 // per-IO bookkeeping cost of fio's engine
	Seed        int64
}

// Default returns the paper-shaped configuration at reproduction scale
// (the paper uses 12 threads, 512 MB regions, 32 MB of accesses).
func Default(p Pattern, write bool) Config {
	return Config{
		Pattern:     p,
		Write:       write,
		Threads:     12,
		RegionBytes: 8 << 20,
		AccessBytes: 2 << 20,
		BlockBytes:  64,
		ComputeCyc:  600,
		Seed:        1,
	}
}

// Workload implements harness.Workload.
type Workload struct {
	Cfg   Config
	m     *daxfs.DaxMap
	raw   *swred.RawScheme
	async *swred.Vilamb
}

// New returns the workload.
func New(cfg Config) *Workload { return &Workload{Cfg: cfg} }

// Name implements harness.Workload.
func (w *Workload) Name() string {
	op := "read"
	if w.Cfg.Write {
		op = "write"
	}
	return fmt.Sprintf("fio/%s-%s", w.Cfg.Pattern, op)
}

// Setup implements harness.Workload: one mapped file covering all thread
// regions, prefilled so reads verify real content.
func (w *Workload) Setup(s *harness.System) error {
	cfg := w.Cfg
	if cfg.Threads > s.Cfg.Cores {
		return fmt.Errorf("fio: %d threads > %d cores", cfg.Threads, s.Cfg.Cores)
	}
	m, err := s.NewMapping("fio", uint64(cfg.Threads)*cfg.RegionBytes)
	if err != nil {
		return err
	}
	w.m = m
	switch s.Cfg.Design {
	case param.TxBObjectCsums, param.TxBPageCsums:
		w.raw, err = swred.AttachRaw(s.FS, m, s.Cfg.Design, cfg.BlockBytes)
		if err != nil {
			return err
		}
	case param.Vilamb:
		w.async = s.Async(m)
	}
	// Prefill with a raw pattern (setup, untimed) and rebuild redundancy.
	if err := prefill(s, m); err != nil {
		return err
	}
	return nil
}

// prefill writes a deterministic pattern over the mapping's pages using
// raw device writes and reconciles checksums and parity, so measured reads
// hit real, verifiable content.
func prefill(s *harness.System, m *daxfs.DaxMap) error {
	geo := s.FS.Geometry()
	ps := uint64(geo.PageSize)
	page := make([]byte, ps)
	rng := rand.New(rand.NewSource(7))
	for off := uint64(0); off < m.Size(); off += ps {
		rng.Read(page)
		s.Eng.NVM.WriteRaw(m.Addr(off), page)
	}
	// Reconcile every redundancy structure (page checksums, parity, and
	// the DAX-CL-checksum region when present) with the new content.
	s.FS.ReconcileMapping(m)
	return nil
}

// Workers implements harness.Workload.
func (w *Workload) Workers(s *harness.System) []func(*sim.Core) {
	cfg := w.Cfg
	workers := make([]func(*sim.Core), cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		i := i
		base := uint64(i) * cfg.RegionBytes
		workers[i] = func(c *sim.Core) {
			nBlocks := int(cfg.RegionBytes / cfg.BlockBytes)
			ops := int(cfg.AccessBytes / cfg.BlockBytes)
			var order []int
			if cfg.Pattern == Rand {
				order = rand.New(rand.NewSource(cfg.Seed + int64(i))).Perm(nBlocks)[:ops]
			}
			buf := make([]byte, cfg.BlockBytes)
			rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(i)))
			for op := 0; op < ops; op++ {
				c.Compute(cfg.ComputeCyc)
				blk := op
				if order != nil {
					blk = order[op]
				}
				off := base + uint64(blk)*cfg.BlockBytes
				if cfg.Write {
					rng.Read(buf)
					w.m.Store(c, off, buf)
					if w.raw != nil {
						w.raw.OnWrite(c, off, cfg.BlockBytes)
					}
					if w.async != nil {
						w.async.MarkDirty(c, off, cfg.BlockBytes)
					}
				} else {
					w.m.Load(c, off, buf)
				}
			}
		}
	}
	return workers
}
