package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"tvarak/internal/harness"
)

// Unit dispatch states.
const (
	statePending = "pending" // never leased, eligible now
	stateLeased  = "leased"  // held by a worker under an unexpired lease
	stateDelayed = "delayed" // failed/expired, parked until its backoff elapses
	stateDone    = "done"    // result accepted (bytes retained for dedup)
	stateFailed  = "failed"  // redelivery exhausted; terminal
)

// unitEntry is one unit's dispatch record.
type unitEntry struct {
	state      string
	deliveries int       // leases granted for this unit so far
	leaseID    string    // current lease (stateLeased)
	worker     string    // current/last worker
	deadline   time.Time // lease expiry (stateLeased)
	eligible   time.Time // redelivery backoff end (stateDelayed)
	payload    json.RawMessage
	failure    string // terminal failure message (stateFailed)
}

// leaseTable is the gateway's dispatch state machine: which unit is
// pending, leased (to whom, until when), parked in redelivery backoff,
// done (with which bytes), or terminally failed. Every transition happens
// under one mutex with an injected clock, so tests drive expiry and
// backoff deterministically without sleeping.
type leaseTable struct {
	mu      sync.Mutex
	units   []unitEntry
	labels  []string
	fpIndex map[string]int // fingerprint -> unit index
	fps     []string

	now           func() time.Time
	ttl           time.Duration
	maxDeliveries int
	backoff       harness.BackoffPolicy

	nextLease int // lease id sequence

	// Counters mirrored into StatusResponse (metrics are the gateway's
	// job — the table just counts).
	granted     int
	expired     int
	redelivered int
	duplicates  int
	divergent   int

	// divergences records determinism violations: a duplicate result
	// whose bytes differed from the accepted ones.
	divergences []string
}

func newLeaseTable(p Plan, ttl time.Duration, maxDeliveries int, backoff harness.BackoffPolicy, now func() time.Time) *leaseTable {
	n := p.Units()
	t := &leaseTable{
		units:         make([]unitEntry, n),
		labels:        make([]string, n),
		fps:           make([]string, n),
		fpIndex:       make(map[string]int, n),
		now:           now,
		ttl:           ttl,
		maxDeliveries: maxDeliveries,
		backoff:       backoff,
	}
	for i := 0; i < n; i++ {
		t.units[i].state = statePending
		t.labels[i] = p.Label(i)
		fp := p.Fingerprint(i)
		t.fps[i] = fp
		t.fpIndex[fp] = i
	}
	return t
}

// restore pre-completes a unit from the gateway's resume journal.
func (t *leaseTable) restore(i int, payload json.RawMessage) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := &t.units[i]
	u.state = stateDone
	u.payload = payload
}

// sweepLocked expires overdue leases and returns how many it expired.
// Expired units re-enter dispatch: parked behind the redelivery backoff if
// deliveries remain, terminally failed otherwise.
func (t *leaseTable) sweepLocked() int {
	now := t.now()
	n := 0
	for i := range t.units {
		u := &t.units[i]
		if u.state == stateLeased && now.After(u.deadline) {
			t.expired++
			n++
			t.requeueLocked(i, "lease expired (worker lost or hung)")
		}
	}
	return n
}

// requeueLocked moves a leased unit back into dispatch after an expiry or
// a worker failure report.
func (t *leaseTable) requeueLocked(i int, why string) {
	u := &t.units[i]
	u.leaseID = ""
	if u.deliveries >= t.maxDeliveries {
		u.state = stateFailed
		u.failure = fmt.Sprintf("%s after %d deliveries (last worker %s): %s",
			t.labels[i], u.deliveries, u.worker, why)
		return
	}
	u.state = stateDelayed
	// Seed the jitter per unit so parked units spread out instead of
	// becoming eligible in lockstep.
	pol := t.backoff
	pol.Seed ^= uint64(i) * 0x9e3779b97f4a7c15
	u.eligible = t.now().Add(pol.Delay(u.deliveries))
}

// sweep is sweepLocked for callers outside the table.
func (t *leaseTable) sweep() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sweepLocked()
}

// acquire grants the lowest-index eligible unit to worker, or reports how
// long to wait, or that the job is resolved. Eligibility is in index
// order: redelivery respects enumeration order too.
func (t *leaseTable) acquire(worker string) (lease LeaseResponse) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	now := t.now()
	wait := time.Duration(0)
	for i := range t.units {
		u := &t.units[i]
		switch u.state {
		case statePending:
		case stateDelayed:
			if u.eligible.After(now) {
				if d := u.eligible.Sub(now); wait == 0 || d < wait {
					wait = d
				}
				continue
			}
			t.redelivered++
		case stateLeased:
			if d := u.deadline.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		default:
			continue
		}
		u.state = stateLeased
		u.deliveries++
		u.worker = worker
		u.deadline = now.Add(t.ttl)
		t.nextLease++
		u.leaseID = fmt.Sprintf("l%d-u%d", t.nextLease, i)
		t.granted++
		return LeaseResponse{
			Status: StatusGrant, LeaseID: u.leaseID, Index: i,
			Fp: t.fps[i], Label: t.labels[i], TTLMillis: t.ttl.Milliseconds(),
		}
	}
	if t.resolvedLocked() {
		return LeaseResponse{Status: StatusDone}
	}
	if wait <= 0 || wait > t.ttl {
		wait = t.ttl / 4
	}
	if min := 5 * time.Millisecond; wait < min {
		wait = min
	}
	return LeaseResponse{Status: StatusWait, WaitMillis: wait.Milliseconds()}
}

// heartbeat extends a lease's deadline. A false return means the lease is
// gone — expired and re-dispatched, or its unit already resolved — and the
// worker should abandon the unit.
func (t *leaseTable) heartbeat(leaseID string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	for i := range t.units {
		u := &t.units[i]
		if u.state == stateLeased && u.leaseID == leaseID {
			u.deadline = t.now().Add(t.ttl)
			return true
		}
	}
	return false
}

// complete accepts a result by fingerprint — deliberately NOT by lease:
// a result computed under a lease that has since expired and been
// re-dispatched is still a correct result (units are deterministic), so it
// is accepted if it arrives first and byte-verified if it arrives second.
// The returned status distinguishes first acceptance, a byte-identical
// duplicate, and a divergent duplicate (a determinism violation recorded
// for the job verdict). ok is false when the fingerprint is unknown.
func (t *leaseTable) complete(fp string, payload json.RawMessage) (status string, first bool, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, known := t.fpIndex[fp]
	if !known {
		return "", false, false
	}
	u := &t.units[i]
	if u.state == stateDone {
		if bytes.Equal(u.payload, payload) {
			t.duplicates++
			return ResultDuplicate, false, true
		}
		t.divergent++
		t.divergences = append(t.divergences, fmt.Sprintf(
			"unit %d (%s): duplicate result differs from accepted bytes (%d vs %d bytes)",
			i, t.labels[i], len(payload), len(u.payload)))
		return ResultDivergent, false, true
	}
	// Accept even from stateFailed: a late result rescues a unit whose
	// redelivery was exhausted — strictly better than a FAILED row.
	u.state = stateDone
	u.leaseID = ""
	u.failure = ""
	u.payload = append(json.RawMessage(nil), payload...)
	return ResultAccepted, true, true
}

// fail records a worker's failure report for a leased unit and requeues
// it. Reports for units that already resolved are ignored.
func (t *leaseTable) fail(fp, msg string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, known := t.fpIndex[fp]
	if !known {
		return false
	}
	u := &t.units[i]
	if u.state == stateDone || u.state == stateFailed {
		return true
	}
	t.requeueLocked(i, msg)
	return true
}

// resolvedLocked reports whether every unit reached a terminal state.
func (t *leaseTable) resolvedLocked() bool {
	for i := range t.units {
		if s := t.units[i].state; s != stateDone && s != stateFailed {
			return false
		}
	}
	return true
}

// snapshot renders the dispatch state for /v1/status and the job verdict.
func (t *leaseTable) snapshot(withUnits bool) StatusResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	s := StatusResponse{
		Total: len(t.units), Granted: t.granted, Expired: t.expired,
		Redelivered: t.redelivered, Duplicates: t.duplicates, Divergent: t.divergent,
	}
	for i := range t.units {
		u := &t.units[i]
		switch u.state {
		case stateDone:
			s.Done++
		case stateFailed:
			s.Failed++
		}
		if withUnits {
			s.Units = append(s.Units, UnitStatus{
				Index: i, Label: t.labels[i], State: u.state,
				Worker: u.worker, Deliveries: u.deliveries,
			})
		}
	}
	s.Resolved = s.Done+s.Failed == s.Total
	return s
}

// outcome extracts the merged inputs once the table is resolved: payloads
// in enumeration order (nil for failed units) plus the failure messages
// and any recorded divergences.
func (t *leaseTable) outcome() (payloads []json.RawMessage, failures map[int]string, divergences []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	payloads = make([]json.RawMessage, len(t.units))
	failures = make(map[int]string)
	for i := range t.units {
		u := &t.units[i]
		if u.state == stateDone {
			payloads[i] = u.payload
		} else if u.failure != "" {
			failures[i] = u.failure
		} else if u.state != stateDone {
			failures[i] = t.labels[i] + ": unresolved"
		}
	}
	return payloads, failures, append([]string(nil), t.divergences...)
}
