package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"tvarak/internal/experiments"
	"tvarak/internal/fault"
	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/param"
)

// Plan is a job's unit enumeration, derived deterministically from a
// JobSpec: the gateway and every worker build their own Plan from the same
// spec, and the whole protocol rests on the enumerations agreeing — unit
// i's fingerprint is cross-checked on both sides of every lease. RunUnit
// is only ever called on workers; the gateway uses the enumeration and
// the merge helpers.
type Plan interface {
	// Scope identifies the job: the experiment/campaign id plus every
	// option that shapes its units. It namespaces fingerprints, binds the
	// gateway's journal, and anchors the join handshake.
	Scope() string
	// Units is the number of units in the job.
	Units() int
	// Fingerprint is unit i's stable identity within the scope.
	Fingerprint(i int) string
	// Label names unit i for status output and failure manifests.
	Label(i int) string
	// RunUnit executes unit i and returns its result payload — the exact
	// JSON a local run would journal for the unit. A nil error with
	// deterministic payload bytes is the contract the dedup cross-check
	// relies on.
	RunUnit(ctx context.Context, i int) (json.RawMessage, error)
}

// BuildPlan derives the Plan a JobSpec declares. Both the gateway CLI and
// the worker call it, each on their own binary — any skew in the
// experiments registry, option handling, or unit enumeration between the
// two builds surfaces as a scope or fingerprint mismatch, never as a
// silently-wrong merged table.
func BuildPlan(spec JobSpec) (Plan, error) {
	async, err := asyncCfg(spec)
	if err != nil {
		return nil, err
	}
	switch spec.Kind {
	case "sweep":
		designs, err := parseDesigns(spec.Designs)
		if err != nil {
			return nil, err
		}
		exp, err := experiments.Lookup(spec.Experiment)
		if err != nil {
			return nil, err
		}
		o := experiments.Options{
			Scale:       spec.Scale,
			FullScale:   spec.FullScale,
			Designs:     designs,
			SampleEvery: spec.SampleEvery,
			Shards:      spec.Shards,
			Async:       async,
		}
		cells := exp.Cells(o)
		if len(cells) == 0 {
			return nil, fmt.Errorf("fleet: experiment %q enumerates no cells", spec.Experiment)
		}
		for i := range cells {
			cells[i].SampleEvery = spec.SampleEvery
		}
		p := NewSweepPlan(o.Scope(spec.Experiment), cells)
		p.Title = exp.Title
		return p, nil
	case "campaign":
		designs, err := parseDesigns(spec.Designs)
		if err != nil {
			return nil, err
		}
		opt := fault.Options{Seed: spec.Seed, N: spec.N, Apps: spec.Apps,
			Designs: designs, Async: async}
		return NewCampaignPlan(opt, spec.Shards)
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q (want sweep or campaign)", spec.Kind)
	}
}

// asyncCfg assembles the spec's async (Vilamb-family) configuration,
// rejecting unknown granularity strings before any unit is enumerated.
func asyncCfg(spec JobSpec) (param.AsyncConfig, error) {
	g, err := param.ParseDirtyGran(spec.DirtyGran)
	if err != nil {
		return param.AsyncConfig{}, fmt.Errorf("fleet: job spec: %w", err)
	}
	a := param.AsyncConfig{EpochCyc: spec.EpochCyc, DirtyGran: g, Incremental: spec.Incremental}
	if spec.Battery {
		a = param.BatteryPreset(spec.EpochCyc)
		a.Incremental = spec.Incremental
	}
	return a, nil
}

// parseDesigns maps design names (Design.String() values, as JobSpec
// carries them) back to designs.
func parseDesigns(names []string) ([]param.Design, error) {
	var out []param.Design
	for _, name := range names {
		found := false
		for _, d := range param.AllDesigns() {
			if strings.EqualFold(name, d.String()) {
				out = append(out, d)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fleet: unknown design %q in job spec", name)
		}
	}
	return out, nil
}

// SweepPlan distributes harness cells: unit i is cells[i], its payload is
// the harness.Result JSON a local journal holds under "cell". Tests build
// one directly over toy cells; the CLI builds one from a JobSpec via
// BuildPlan.
type SweepPlan struct {
	scope string
	cells []harness.Cell
	// Title is the experiment's table title (set by BuildPlan); merging
	// under it keeps fleet output byte-identical to a local run's.
	Title string
	// Retries grants each worker-side attempt loop extra tries before the
	// unit is reported failed (the gateway's redelivery then takes over).
	Retries int
	// Live, when non-nil, streams the worker-side runner/engine telemetry
	// of each unit (read-only; results are unaffected).
	Live *live.Telemetry
}

// NewSweepPlan wraps an already-enumerated cell list under a scope.
func NewSweepPlan(scope string, cells []harness.Cell) *SweepPlan {
	return &SweepPlan{scope: scope, cells: cells}
}

// Cells exposes the plan's enumeration for merge-side placeholder rows.
func (p *SweepPlan) Cells() []harness.Cell { return p.cells }

func (p *SweepPlan) Scope() string            { return p.scope }
func (p *SweepPlan) Units() int               { return len(p.cells) }
func (p *SweepPlan) Fingerprint(i int) string { return p.cells[i].Fingerprint(p.scope) }
func (p *SweepPlan) Label(i int) string       { return harness.CellLabel(p.cells[i], i) }

// RunUnit simulates cell i and returns its Result as JSON.
func (p *SweepPlan) RunUnit(ctx context.Context, i int) (json.RawMessage, error) {
	rn := harness.Runner{Workers: 1, Context: ctx, Retries: p.Retries, Live: p.Live}
	rs, man, err := rn.RunManifest([]harness.Cell{p.cells[i]})
	if err != nil {
		return nil, err
	}
	if man.Cancelled {
		return nil, context.Cause(ctx)
	}
	if len(rs) != 1 || rs[0] == nil {
		if len(man.Failures) > 0 {
			return nil, fmt.Errorf("fleet: unit %d (%s) failed: %s", i, man.Failures[0].Label, man.Failures[0].Err)
		}
		return nil, fmt.Errorf("fleet: unit %d produced no result", i)
	}
	return json.Marshal(rs[0])
}

// MergeTable assembles the sweep's table from accepted payloads, in
// enumeration order — byte-identical to a local run's. failures maps unit
// index to the terminal failure message of units whose redelivery was
// exhausted; under keepGoing they render as the same explicit FAILED rows
// a local Degrade run produces, otherwise any failure is an error.
func (p *SweepPlan) MergeTable(title string, payloads []json.RawMessage, failures map[int]string, keepGoing bool) (*harness.Table, error) {
	if len(payloads) != len(p.cells) {
		return nil, fmt.Errorf("fleet: merge got %d payloads for %d units", len(payloads), len(p.cells))
	}
	man := &harness.Manifest{Total: len(p.cells)}
	t := &harness.Table{Title: title, Manifest: man}
	for i, data := range payloads {
		if data == nil {
			msg, failed := failures[i]
			if !failed {
				return nil, fmt.Errorf("fleet: unit %d (%s) has neither result nor failure", i, p.Label(i))
			}
			if !keepGoing {
				return nil, fmt.Errorf("fleet: unit %d (%s) failed: %s", i, p.Label(i), msg)
			}
			fail := harness.CellFailure{Index: i, Label: p.Label(i), Err: msg}
			man.Failures = append(man.Failures, fail)
			t.Add(harness.FailureResult(p.cells[i], i, &fail))
			continue
		}
		var r harness.Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("fleet: unit %d result does not decode: %w", i, err)
		}
		man.Completed++
		t.Add(&r)
	}
	return t, nil
}

// CampaignPlan distributes fault-campaign units: the enumeration is
// fault.CampaignUnits — identical to a local fault.Run — and each unit's
// payload is its UnitReport JSON.
type CampaignPlan struct {
	opt    fault.Options
	units  []fault.CampaignUnit
	shards int
}

// NewCampaignPlan enumerates the campaign opt declares.
func NewCampaignPlan(opt fault.Options, shards int) (*CampaignPlan, error) {
	units, err := fault.CampaignUnits(opt)
	if err != nil {
		return nil, err
	}
	return &CampaignPlan{opt: opt, units: units, shards: shards}, nil
}

func (p *CampaignPlan) Scope() string            { return p.opt.Scope() }
func (p *CampaignPlan) Units() int               { return len(p.units) }
func (p *CampaignPlan) Fingerprint(i int) string { return p.units[i].Fp }
func (p *CampaignPlan) Label(i int) string       { return p.units[i].Label }

// RunUnit replays campaign unit i via the standalone re-entry API and
// returns its report as JSON. Design failures (a missed corruption) live
// inside the report and are delivered as results — the gateway must see
// them to fold the campaign verdict, and re-running would not change them.
func (p *CampaignPlan) RunUnit(ctx context.Context, i int) (json.RawMessage, error) {
	params := p.units[i].Params
	params.Shards = p.shards
	rep, err := fault.RunSingleUnit(ctx, params)
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

// MergeReport folds accepted unit reports, in enumeration order, into the
// campaign Report via the same AssembleReport a local run uses, so
// fault.WriteJSONL of the merged report is byte-identical to a local
// campaign's. Units with a terminal dispatch failure stay nil slots; like
// a cancelled local campaign they surface as Interrupted in the fold.
func (p *CampaignPlan) MergeReport(payloads []json.RawMessage) (*fault.Report, error) {
	if len(payloads) != len(p.units) {
		return nil, fmt.Errorf("fleet: merge got %d payloads for %d units", len(payloads), len(p.units))
	}
	reports := make([]*fault.UnitReport, len(p.units))
	for i, data := range payloads {
		if data == nil {
			continue
		}
		var u fault.UnitReport
		if err := json.Unmarshal(data, &u); err != nil {
			return nil, fmt.Errorf("fleet: unit %d report does not decode: %w", i, err)
		}
		reports[i] = &u
	}
	return fault.AssembleReport(p.opt, p.units, reports)
}
