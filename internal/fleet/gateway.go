package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/live"
)

// GatewayConfig configures a fleet gateway.
type GatewayConfig struct {
	// Plan is the job's unit enumeration (required).
	Plan Plan
	// Spec is the declarative job served to workers at /v1/job. It must
	// be the spec Plan was built from (tests that construct toy Plans
	// directly pair them with a matching toy spec on both sides).
	Spec JobSpec
	// LeaseTTL is how long a lease lives without a heartbeat before the
	// unit is re-dispatched. Zero selects 30s.
	LeaseTTL time.Duration
	// MaxDeliveries bounds how many times one unit may be leased before
	// it terminally fails. Zero selects 3.
	MaxDeliveries int
	// Backoff schedules the pause before an expired or failed unit
	// becomes eligible for redelivery. The zero value redelivers
	// immediately; the CLI defaults to seeded-jitter exponential.
	Backoff harness.BackoffPolicy
	// KeepGoing completes the job past terminally-failed units, rendering
	// them as explicit FAILED rows with a manifest, instead of failing
	// the whole job at the first exhausted unit.
	KeepGoing bool
	// Journal, when non-nil, checkpoints every accepted result durably
	// under the unit's fingerprint, so a killed gateway resumes by
	// reopening the journal (NewGateway restores done units from it). It
	// should be opened under the plan's scope (OpenJournalScope).
	Journal *harness.Journal
	// Live, when non-nil, receives fleet control-plane metrics
	// (tvarak_fleet_* on /metrics).
	Live *live.Telemetry
	// Now is the clock (nil = time.Now); tests inject one to drive lease
	// expiry and redelivery backoff deterministically.
	Now func() time.Time
}

// Gateway owns a job: it serves the control plane, tracks leases,
// accepts/dedups results, journals its own dispatch state, and merges the
// outcome in enumeration order. Create with NewGateway, mount Handler on
// an HTTP server, then Wait for resolution.
type Gateway struct {
	cfg   GatewayConfig
	plan  Plan
	table *leaseTable
	mux   *http.ServeMux

	mu       sync.Mutex
	workers  map[string]time.Time // last contact per joined worker
	informed map[string]bool      // workers whose acquire was answered "done"
	joinErr  []string             // rejected handshakes, for diagnostics
	seen     fleetCounts          // table counters already folded into metrics

	resolved chan struct{} // closed once every unit is terminal
	resOnce  sync.Once
}

// NewGateway validates the config, restores any journaled results, and
// returns a gateway ready to serve. With a resume journal, units whose
// results it already holds are pre-completed — workers are only handed
// the remainder, and the merged output is byte-identical either way.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("fleet: GatewayConfig.Plan is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxDeliveries <= 0 {
		cfg.MaxDeliveries = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	g := &Gateway{
		cfg:      cfg,
		plan:     cfg.Plan,
		table:    newLeaseTable(cfg.Plan, cfg.LeaseTTL, cfg.MaxDeliveries, cfg.Backoff, cfg.Now),
		workers:  make(map[string]time.Time),
		informed: make(map[string]bool),
		resolved: make(chan struct{}),
	}
	if cfg.Journal != nil {
		// Bind the journal to this job: record the spec under the scope
		// so a -resume against a different job's journal fails loudly
		// (the scope check in OpenJournalScope already guards options;
		// this guards a swapped journal file with the same scope string).
		var prior JobSpec
		if cfg.Journal.Lookup(KindJob, g.plan.Scope(), &prior) {
			want, _ := json.Marshal(cfg.Spec)
			got, _ := json.Marshal(prior)
			if string(want) != string(got) {
				return nil, fmt.Errorf("fleet: journal %s holds job %s, this run is %s — use a fresh journal",
					cfg.Journal.Path(), got, want)
			}
		} else if err := cfg.Journal.Record(KindJob, g.plan.Scope(), cfg.Spec); err != nil {
			return nil, err
		}
		restored := 0
		for i := 0; i < g.plan.Units(); i++ {
			if data := cfg.Journal.LookupRaw(KindResult, g.plan.Fingerprint(i)); data != nil {
				g.table.restore(i, data)
				restored++
			}
		}
		if g.live() != nil && restored > 0 {
			g.live().Fleet.ResultsAccepted.Add(uint64(restored))
		}
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/job", g.handleJob)
	g.mux.HandleFunc("/v1/join", g.handleJoin)
	g.mux.HandleFunc("/v1/lease", g.handleLease)
	g.mux.HandleFunc("/v1/heartbeat", g.handleHeartbeat)
	g.mux.HandleFunc("/v1/result", g.handleResult)
	g.mux.HandleFunc("/v1/status", g.handleStatus)
	return g, nil
}

func (g *Gateway) live() *live.Telemetry { return g.cfg.Live }

// Handler is the control-plane HTTP handler (mount at the server root).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Status snapshots the dispatch state (the same data /v1/status serves).
func (g *Gateway) Status(withUnits bool) StatusResponse {
	s := g.table.snapshot(withUnits)
	g.observeSweep()
	return s
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobResponse{
		Proto:          ProtocolVersion,
		Format:         harness.JournalFormat,
		Scope:          g.plan.Scope(),
		LeaseTTLMillis: g.cfg.LeaseTTL.Milliseconds(),
		Spec:           g.cfg.Spec,
	})
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	reject := func(msg string) {
		if g.live() != nil {
			g.live().Fleet.WorkersRejected.Add(1)
		}
		g.mu.Lock()
		g.joinErr = append(g.joinErr, fmt.Sprintf("%s: %s", req.Worker, msg))
		g.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		w.Write(errJSON(msg))
	}
	switch {
	case req.Proto != ProtocolVersion:
		reject(fmt.Sprintf("protocol version mismatch: worker speaks v%d, gateway v%d — rebuild the worker", req.Proto, ProtocolVersion))
	case req.Format != harness.JournalFormat:
		reject(fmt.Sprintf("journal format mismatch: worker writes v%d, gateway v%d — rebuild the worker", req.Format, harness.JournalFormat))
	case req.Scope != g.plan.Scope():
		reject(fmt.Sprintf("scope mismatch: worker derived %q from the job spec, gateway has %q — worker binary or options are skewed", req.Scope, g.plan.Scope()))
	default:
		if g.live() != nil {
			g.live().Fleet.WorkersJoined.Add(1)
		}
		g.touchWorker(req.Worker)
		writeJSON(w, http.StatusOK, struct {
			OK bool `json:"ok"`
		}{true})
	}
}

func (g *Gateway) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	g.touchWorker(req.Worker)
	lease := g.table.acquire(req.Worker)
	if lease.Status == StatusDone {
		// This worker now knows the job is over — Drain need not hold the
		// listener open for it.
		g.mu.Lock()
		g.informed[req.Worker] = true
		g.mu.Unlock()
	}
	g.observeSweep()
	if lease.Status == StatusGrant && g.live() != nil {
		g.live().Fleet.LeasesGranted.Add(1)
	}
	g.checkResolved()
	writeJSON(w, http.StatusOK, lease)
}

func (g *Gateway) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	ok := g.table.heartbeat(req.LeaseID)
	g.observeSweep()
	if ok && g.live() != nil {
		g.live().Fleet.Heartbeats.Add(1)
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: ok, Gone: !ok})
}

// handleResult ingests one journal-format JSONL line: a KindResult record
// carrying a unit's payload, or a KindFail record reporting a worker-side
// failure. The line's fingerprint — not the lease — identifies the unit,
// so results from expired leases still land (and get byte-checked).
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	kind, fp, data, err := harness.DecodeRecord([]byte(strings.TrimSpace(string(body))))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	g.touchWorker(r.Header.Get("X-Fleet-Worker"))
	switch kind {
	case KindResult:
		status, first, known := g.table.complete(fp, data)
		if !known {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown unit fingerprint %q", fp)})
			return
		}
		if first && g.cfg.Journal != nil {
			if err := g.cfg.Journal.RecordRaw(KindResult, fp, data); err != nil {
				// A result that cannot be made durable must not be
				// acknowledged: the worker will retry, or redelivery will
				// recompute it.
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
				return
			}
		}
		if lv := g.live(); lv != nil {
			switch status {
			case ResultAccepted:
				lv.Fleet.ResultsAccepted.Add(1)
			case ResultDuplicate:
				lv.Fleet.ResultsDuplicate.Add(1)
			case ResultDivergent:
				lv.Fleet.ResultsDivergent.Add(1)
			}
		}
		g.checkResolved()
		writeJSON(w, http.StatusOK, ResultResponse{Status: status})
	case KindFail:
		var f struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &f)
		if !g.table.fail(fp, f.Error) {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown unit fingerprint %q", fp)})
			return
		}
		g.observeSweep()
		g.checkResolved()
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultFailed})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unexpected record kind %q", kind)})
	}
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Status(r.URL.Query().Get("units") != ""))
}

// touchWorker tracks per-worker last-contact for the liveness gauge.
func (g *Gateway) touchWorker(name string) {
	if name == "" {
		return
	}
	now := g.cfg.Now()
	g.mu.Lock()
	g.workers[name] = now
	liveCount := 0
	for _, at := range g.workers {
		if now.Sub(at) <= 2*g.cfg.LeaseTTL {
			liveCount++
		}
	}
	g.mu.Unlock()
	if g.live() != nil {
		g.live().Fleet.WorkersLive.SetInt(uint64(liveCount))
	}
}

// fleetCounts tracks which table counter values have already been folded
// into the monotonic metrics counters.
type fleetCounts struct{ expired, redelivered, failed int }

// observeSweep folds the table's counters into the metrics registry.
// Counters are monotonic, so it adds only the delta since last time.
func (g *Gateway) observeSweep() {
	lv := g.live()
	if lv == nil {
		return
	}
	s := g.table.snapshot(false)
	g.mu.Lock()
	defer g.mu.Unlock()
	if d := s.Expired - g.seen.expired; d > 0 {
		lv.Fleet.LeasesExpired.Add(uint64(d))
	}
	if d := s.Redelivered - g.seen.redelivered; d > 0 {
		lv.Fleet.LeasesRedelivered.Add(uint64(d))
	}
	if d := s.Failed - g.seen.failed; d > 0 {
		lv.Fleet.UnitsFailed.Add(uint64(d))
	}
	g.seen = fleetCounts{expired: s.Expired, redelivered: s.Redelivered, failed: s.Failed}
}

// checkResolved closes the resolved channel once every unit is terminal.
func (g *Gateway) checkResolved() {
	if g.table.snapshot(false).Resolved {
		g.resOnce.Do(func() { close(g.resolved) })
	}
}

// Wait blocks until every unit resolves (result accepted or redelivery
// exhausted) or ctx is done, sweeping expired leases in the background so
// stalls are detected even with no worker traffic. It returns the merged
// inputs: payloads in enumeration order, terminal failures by index, and
// any recorded byte-divergences. The error is non-nil when ctx ended
// first, when a divergence was recorded, or when units failed without
// KeepGoing.
func (g *Gateway) Wait(ctx context.Context) ([]json.RawMessage, map[int]string, error) {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		g.table.sweep()
		g.observeSweep()
		g.checkResolved()
		select {
		case <-g.resolved:
			payloads, failures, divergences := g.table.outcome()
			if len(divergences) > 0 {
				return payloads, failures, fmt.Errorf("fleet: determinism violation: %s", strings.Join(divergences, "; "))
			}
			if len(failures) > 0 && !g.cfg.KeepGoing {
				msgs := make([]string, 0, len(failures))
				for i := 0; i < g.plan.Units(); i++ {
					if m, ok := failures[i]; ok {
						msgs = append(msgs, m)
					}
				}
				return payloads, failures, fmt.Errorf("fleet: %d unit(s) failed: %s", len(failures), strings.Join(msgs, "; "))
			}
			return payloads, failures, nil
		case <-tick.C:
		case <-ctx.Done():
			return nil, nil, context.Cause(ctx)
		}
	}
}

// Drain keeps the control plane answering after resolution until every
// recently-live worker has contacted it again — an acquire now returns
// StatusDone, so that contact is the worker learning the job is over. A
// worker sleeping in an acquire backoff sleeps at most the lease TTL, so
// the wait is capped at TTL plus a second; workers that died are covered
// by the cap. Call it between Wait returning and closing the listener,
// lest laggard workers find a dead socket and report an error for a job
// that succeeded.
func (g *Gateway) Drain(ctx context.Context) {
	resolvedAt := g.cfg.Now()
	deadline := resolvedAt.Add(g.cfg.LeaseTTL + time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		g.mu.Lock()
		waiting := 0
		for name, at := range g.workers {
			// Workers already silent for 2×TTL at resolution were dead or
			// done long before; only uninformed recent ones get the
			// courtesy wait.
			if !g.informed[name] && resolvedAt.Sub(at) <= 2*g.cfg.LeaseTTL {
				waiting++
			}
		}
		g.mu.Unlock()
		if waiting == 0 || g.cfg.Now().After(deadline) {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}
