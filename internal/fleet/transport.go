package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultSpec declares, per matching request, how a FaultTransport mangles
// fleet traffic. Probabilities are in [0, 1] and drawn from a seeded
// deterministic stream, so a test run's fault schedule is reproducible.
type FaultSpec struct {
	// Seed selects the deterministic fault stream.
	Seed uint64
	// PathPrefix restricts faults to request paths with this prefix
	// ("" = every request). Targeting "/v1/result" exercises the result
	// stream without destabilizing the lease plane, and vice versa.
	PathPrefix string
	// DropRequest is the probability the request never reaches the
	// server: the caller sees a transport error.
	DropRequest float64
	// DropResponse is the probability the SERVER PROCESSES the request
	// but the response is lost — the nasty half of at-least-once: the
	// caller retries something that already happened, manufacturing
	// duplicates.
	DropResponse float64
	// Duplicate is the probability the request is delivered twice before
	// the first response returns (reordering the server's view).
	Duplicate float64
	// Delay is added to matching requests before delivery; a Delay
	// longer than the lease TTL delivers results after re-dispatch.
	Delay time.Duration
	// DelayEvery applies Delay only to every k-th matching request
	// (0 = all of them, when Delay > 0).
	DelayEvery int
	// Limit stops injecting after this many faulted requests (0 = no
	// limit). "Fault the first K, then heal" makes scripted scenarios
	// deterministic: probability 1 plus a Limit faults exactly K requests.
	Limit int
}

// FaultTransport is an http.RoundTripper that injects deterministic
// network faults — drops, duplicates, delays, partitions — between fleet
// workers and the gateway. The robustness tests run whole sweeps through
// it and assert the merged output stays byte-identical to a local run.
type FaultTransport struct {
	// Next performs the real delivery (nil = http.DefaultTransport).
	Next http.RoundTripper
	// Spec is the fault schedule.
	Spec FaultSpec

	mu        sync.Mutex
	rngState  uint64
	reqCount  int
	faulted   int
	partition bool
	dropped   int
	dupes     int
	delayed   int
}

// SetPartition toggles a full partition: while set, every matching
// request fails at the transport. Tests heal it mid-run to assert the
// fleet rides out the outage.
func (t *FaultTransport) SetPartition(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partition = on
}

// Stats reports how many requests were dropped, duplicated and delayed —
// tests assert the schedule actually exercised the fault paths.
func (t *FaultTransport) Stats() (dropped, duplicated, delayed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped, t.dupes, t.delayed
}

func (t *FaultTransport) next() http.RoundTripper {
	if t.Next != nil {
		return t.Next
	}
	return http.DefaultTransport
}

// rand draws the next deterministic fraction in [0, 1).
func (t *FaultTransport) rand() float64 {
	if t.rngState == 0 {
		t.rngState = t.Spec.Seed | 1
	}
	// splitmix64 step (kept local: the harness version is unexported).
	t.rngState += 0x9e3779b97f4a7c15
	x := t.rngState
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// RoundTrip applies the fault schedule to one request. Requests need
// replayable bodies for the duplicate path, so bodies are buffered.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Spec.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, t.Spec.PathPrefix) {
		return t.next().RoundTrip(req)
	}

	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	clone := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}

	t.mu.Lock()
	t.reqCount++
	n := t.reqCount
	partitioned := t.partition
	var dropReq, dropResp, dup, delay bool
	if t.Spec.Limit <= 0 || t.faulted < t.Spec.Limit {
		dropReq = t.rand() < t.Spec.DropRequest
		dropResp = t.rand() < t.Spec.DropResponse
		dup = t.rand() < t.Spec.Duplicate
		delay = t.Spec.Delay > 0 && (t.Spec.DelayEvery <= 0 || n%t.Spec.DelayEvery == 0)
		if dropReq || dropResp || dup || delay {
			t.faulted++
		}
	}
	switch {
	case partitioned || dropReq:
		t.dropped++
	case dup:
		t.dupes++
	}
	if delay && !partitioned && !dropReq {
		t.delayed++
	}
	t.mu.Unlock()

	if partitioned {
		return nil, fmt.Errorf("fleet: injected partition: %s %s", req.Method, req.URL.Path)
	}
	if dropReq {
		return nil, fmt.Errorf("fleet: injected request drop: %s %s", req.Method, req.URL.Path)
	}
	if delay {
		timer := time.NewTimer(t.Spec.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if dup {
		// Deliver once ahead of the "real" request and discard the
		// response: the server sees the request twice.
		if extra, err := t.next().RoundTrip(clone()); err == nil {
			io.Copy(io.Discard, extra.Body)
			extra.Body.Close()
		}
	}
	resp, err := t.next().RoundTrip(clone())
	if err != nil {
		return nil, err
	}
	if dropResp {
		// The server processed the request; lose the reply.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("fleet: injected response drop: %s %s", req.Method, req.URL.Path)
	}
	return resp, nil
}
