package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tvarak/internal/harness"
)

// toyPlan is a synthetic Plan for control-plane tests: payloads are pure
// functions of the unit index, so byte-identity is trivially checkable.
type toyPlan struct {
	scope  string
	n      int
	fpSalt string // skew knob: same scope, different fingerprints
	run    func(ctx context.Context, i int) (json.RawMessage, error)
}

func (p *toyPlan) Scope() string { return p.scope }
func (p *toyPlan) Units() int    { return p.n }
func (p *toyPlan) Fingerprint(i int) string {
	return fmt.Sprintf("%s|u%02d%s", p.scope, i, p.fpSalt)
}
func (p *toyPlan) Label(i int) string { return fmt.Sprintf("unit%02d", i) }
func (p *toyPlan) RunUnit(ctx context.Context, i int) (json.RawMessage, error) {
	if p.run != nil {
		return p.run(ctx, i)
	}
	return toyPayload(i), nil
}

// toyPayload is unit i's canonical result bytes.
func toyPayload(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"unit":%d,"value":%d}`, i, i*i+7))
}

// fakeClock is an injectable clock the tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2020, 5, 30, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newToyTable(n int, ttl time.Duration, maxDeliveries int, pol harness.BackoffPolicy, clk *fakeClock) *leaseTable {
	return newLeaseTable(&toyPlan{scope: "toy", n: n}, ttl, maxDeliveries, pol, clk.Now)
}

func TestLeaseTableGrantsInEnumerationOrder(t *testing.T) {
	clk := newFakeClock()
	lt := newToyTable(3, time.Minute, 3, harness.BackoffPolicy{}, clk)
	for i := 0; i < 3; i++ {
		l := lt.acquire("w")
		if l.Status != StatusGrant || l.Index != i {
			t.Fatalf("acquire %d = %+v, want grant of unit %d", i, l, i)
		}
		if l.Fp != (&toyPlan{scope: "toy", n: 3}).Fingerprint(i) {
			t.Errorf("unit %d lease fp = %q", i, l.Fp)
		}
	}
	if l := lt.acquire("w"); l.Status != StatusWait || l.WaitMillis <= 0 {
		t.Fatalf("acquire with all units leased = %+v, want wait with a hint", l)
	}
	for i := 0; i < 3; i++ {
		if st, first, ok := lt.complete((&toyPlan{scope: "toy", n: 3}).Fingerprint(i), toyPayload(i)); !ok || !first || st != ResultAccepted {
			t.Fatalf("complete(%d) = %s first=%t ok=%t", i, st, first, ok)
		}
	}
	if l := lt.acquire("w"); l.Status != StatusDone {
		t.Fatalf("acquire after all complete = %+v, want done", l)
	}
}

func TestLeaseTableHeartbeatExtendsAndExpires(t *testing.T) {
	clk := newFakeClock()
	ttl := 100 * time.Millisecond
	lt := newToyTable(1, ttl, 3, harness.BackoffPolicy{}, clk)
	l := lt.acquire("w")
	if l.Status != StatusGrant {
		t.Fatal("no grant")
	}
	// Heartbeats keep the lease alive well past the original deadline.
	for i := 0; i < 5; i++ {
		clk.Advance(80 * time.Millisecond)
		if !lt.heartbeat(l.LeaseID) {
			t.Fatalf("heartbeat %d failed under a live lease", i)
		}
	}
	if n := lt.sweep(); n != 0 {
		t.Fatalf("sweep expired %d leases under heartbeats", n)
	}
	// Silence past the TTL expires it; the heartbeat then reports gone.
	clk.Advance(ttl + time.Millisecond)
	if n := lt.sweep(); n != 1 {
		t.Fatalf("sweep expired %d leases, want 1", n)
	}
	if lt.heartbeat(l.LeaseID) {
		t.Fatal("heartbeat extended an expired lease")
	}
}

func TestLeaseTableExpiryRedeliversAfterBackoff(t *testing.T) {
	clk := newFakeClock()
	ttl := 100 * time.Millisecond
	pol := harness.BackoffPolicy{Base: 50 * time.Millisecond}
	lt := newToyTable(1, ttl, 3, pol, clk)
	if l := lt.acquire("w1"); l.Status != StatusGrant {
		t.Fatal("no initial grant")
	}
	clk.Advance(ttl + time.Millisecond)
	// Expired: the unit parks behind Delay(1) = Base, so the immediate
	// re-acquire waits rather than granting in lockstep.
	if l := lt.acquire("w2"); l.Status != StatusWait {
		t.Fatalf("acquire right after expiry = %+v, want backoff wait", l)
	}
	clk.Advance(pol.Base + time.Millisecond)
	l := lt.acquire("w2")
	if l.Status != StatusGrant || l.Index != 0 {
		t.Fatalf("acquire past backoff = %+v, want redelivery grant", l)
	}
	s := lt.snapshot(true)
	if s.Expired != 1 || s.Redelivered != 1 {
		t.Errorf("expired=%d redelivered=%d, want 1/1", s.Expired, s.Redelivered)
	}
	if u := s.Units[0]; u.Deliveries != 2 || u.Worker != "w2" {
		t.Errorf("unit status = %+v, want 2 deliveries by w2", u)
	}
}

func TestLeaseTableExhaustionTerminallyFails(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Millisecond
	lt := newToyTable(1, ttl, 2, harness.BackoffPolicy{}, clk)
	for i := 0; i < 2; i++ {
		if l := lt.acquire("w"); l.Status != StatusGrant {
			t.Fatalf("delivery %d: no grant", i+1)
		}
		clk.Advance(ttl + time.Millisecond)
		lt.sweep()
	}
	if l := lt.acquire("w"); l.Status != StatusDone {
		t.Fatalf("acquire after exhaustion = %+v, want done (job resolved)", l)
	}
	s := lt.snapshot(false)
	if s.Failed != 1 || !s.Resolved {
		t.Fatalf("snapshot = %+v, want 1 failed, resolved", s)
	}
	_, failures, _ := lt.outcome()
	if msg := failures[0]; !strings.Contains(msg, "after 2 deliveries") {
		t.Errorf("failure message %q does not name the delivery count", msg)
	}
}

func TestLeaseTableCompleteDedupsAndFlagsDivergence(t *testing.T) {
	clk := newFakeClock()
	lt := newToyTable(1, time.Minute, 3, harness.BackoffPolicy{}, clk)
	fp := (&toyPlan{scope: "toy", n: 1}).Fingerprint(0)
	if st, _, ok := lt.complete(fp, toyPayload(0)); !ok || st != ResultAccepted {
		t.Fatalf("first complete = %s ok=%t", st, ok)
	}
	if st, first, _ := lt.complete(fp, toyPayload(0)); st != ResultDuplicate || first {
		t.Fatalf("byte-identical duplicate = %s first=%t", st, first)
	}
	if st, _, _ := lt.complete(fp, json.RawMessage(`{"unit":0,"value":666}`)); st != ResultDivergent {
		t.Fatalf("differing duplicate = %s, want divergent", st)
	}
	if st, _, ok := lt.complete("no-such-fp", toyPayload(0)); ok {
		t.Fatalf("unknown fingerprint accepted as %s", st)
	}
	_, _, div := lt.outcome()
	if len(div) != 1 || !strings.Contains(div[0], "unit 0") {
		t.Fatalf("divergences = %v, want one naming unit 0", div)
	}
	payloads, _, _ := lt.outcome()
	if string(payloads[0]) != string(toyPayload(0)) {
		t.Errorf("accepted payload changed: %s", payloads[0])
	}
}

func TestLeaseTableLateResultRescuesFailedUnit(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Millisecond
	lt := newToyTable(1, ttl, 1, harness.BackoffPolicy{}, clk)
	l := lt.acquire("w")
	if l.Status != StatusGrant {
		t.Fatal("no grant")
	}
	clk.Advance(ttl + time.Millisecond)
	lt.sweep()
	if s := lt.snapshot(false); s.Failed != 1 {
		t.Fatalf("unit not failed after exhaustion: %+v", s)
	}
	// The worker was only slow, not dead: its result still lands.
	if st, first, ok := lt.complete(l.Fp, toyPayload(0)); !ok || !first || st != ResultAccepted {
		t.Fatalf("late complete = %s first=%t ok=%t", st, first, ok)
	}
	payloads, failures, _ := lt.outcome()
	if len(failures) != 0 || string(payloads[0]) != string(toyPayload(0)) {
		t.Fatalf("rescue left failures=%v payload=%s", failures, payloads[0])
	}
}

func TestLeaseTableWorkerFailureRequeuesImmediately(t *testing.T) {
	clk := newFakeClock()
	pol := harness.BackoffPolicy{Base: 20 * time.Millisecond}
	lt := newToyTable(1, time.Minute, 3, pol, clk)
	l := lt.acquire("w")
	if !lt.fail(l.Fp, "injected unit failure") {
		t.Fatal("fail() did not find the unit")
	}
	// Parked behind backoff, not waiting out the minute-long TTL.
	if got := lt.acquire("w"); got.Status != StatusWait || got.WaitMillis > pol.Base.Milliseconds() {
		t.Fatalf("acquire after failure report = %+v, want short backoff wait", got)
	}
	clk.Advance(pol.Base + time.Millisecond)
	if got := lt.acquire("w"); got.Status != StatusGrant {
		t.Fatalf("acquire past failure backoff = %+v, want grant", got)
	}
}
