package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/live"
)

// Worker pulls leases from a gateway, runs units through the local
// simulation machinery, and streams results back as journal-format JSONL.
// It is deliberately stateless: it holds no checkpoint of its own, because
// the gateway's journal plus unit determinism make any worker — including
// a replacement for one that was SIGKILLed — able to (re)produce any
// unit's bytes.
type Worker struct {
	// Gateway is the control-plane base URL, e.g. "http://host:7609".
	Gateway string
	// Name identifies this worker in leases and status output.
	Name string
	// Client, when non-nil, overrides the HTTP client (tests wrap the
	// transport in a FaultTransport).
	Client *http.Client
	// Build derives the Plan from the gateway's JobSpec (nil =
	// BuildPlan). Tests override it to hand back toy plans.
	Build func(JobSpec) (Plan, error)
	// Retries is passed into sweep plans' per-unit attempt loop.
	Retries int
	// AcquireDelay, when non-zero, pauses between being granted a lease
	// and starting the unit. It exists for the CI gate: it widens the
	// window in which SIGKILLing this worker leaves an orphaned lease.
	AcquireDelay time.Duration
	// Backoff paces request retries against a flaky or partitioned
	// network. The zero value selects 50ms base, 2s cap, 0.5 jitter.
	Backoff harness.BackoffPolicy
	// RequestRetries bounds attempts per control-plane request. Zero
	// selects 8 — with the default backoff that rides out multi-second
	// partitions; a worker that still cannot reach the gateway exits
	// with an error and lets redelivery cover its leases.
	RequestRetries int
	// Live, when non-nil, receives the worker's runner/engine telemetry.
	Live *live.Telemetry
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) backoff() harness.BackoffPolicy {
	if w.Backoff != (harness.BackoffPolicy{}) {
		return w.Backoff
	}
	return harness.BackoffPolicy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5, Seed: 1}
}

func (w *Worker) requestRetries() int {
	if w.RequestRetries > 0 {
		return w.RequestRetries
	}
	return 8
}

// Run joins the gateway, verifies the version/scope handshake, then loops:
// lease a unit, cross-check its fingerprint against the local enumeration,
// run it (heartbeating meanwhile), deliver the result. It returns nil when
// the gateway reports the job done, and an error for handshake rejections,
// persistent gateway unreachability, or cancellation.
func (w *Worker) Run(ctx context.Context) error {
	job, err := w.fetchJob(ctx)
	if err != nil {
		return err
	}
	if job.Proto != ProtocolVersion {
		return fmt.Errorf("fleet: gateway speaks protocol v%d, this worker v%d — rebuild", job.Proto, ProtocolVersion)
	}
	if job.Format != harness.JournalFormat {
		return fmt.Errorf("fleet: gateway journal format v%d, this worker v%d — rebuild", job.Format, harness.JournalFormat)
	}
	build := w.Build
	if build == nil {
		build = BuildPlan
	}
	plan, err := build(job.Spec)
	if err != nil {
		return fmt.Errorf("fleet: building plan from gateway job spec: %w", err)
	}
	if sp, ok := plan.(*SweepPlan); ok {
		sp.Retries = w.Retries
		sp.Live = w.Live
	}
	// Join with the locally-derived scope: the gateway rejects a skewed
	// worker here, with an error naming both scopes, before any lease.
	if err := w.join(ctx, plan.Scope()); err != nil {
		return err
	}
	ttl := time.Duration(job.LeaseTTLMillis) * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		lease, err := w.acquire(ctx)
		if err != nil {
			return err
		}
		switch lease.Status {
		case StatusDone:
			return nil
		case StatusWait:
			wait := time.Duration(lease.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return context.Cause(ctx)
			}
		case StatusGrant:
			if err := w.runLease(ctx, plan, *lease, ttl); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: gateway sent unknown lease status %q", lease.Status)
		}
	}
}

// runLease executes one granted lease end to end.
func (w *Worker) runLease(ctx context.Context, plan Plan, lease LeaseResponse, ttl time.Duration) error {
	if lease.Index < 0 || lease.Index >= plan.Units() {
		return fmt.Errorf("fleet: lease for unit %d outside local enumeration of %d units — gateway/worker skew", lease.Index, plan.Units())
	}
	if fp := plan.Fingerprint(lease.Index); fp != lease.Fp {
		// The scope handshake passed but the per-unit fingerprint does
		// not: the binaries enumerate different units under the same
		// scope. Running would poison the merge; refuse loudly.
		return fmt.Errorf("fleet: unit %d fingerprint mismatch: gateway %q, local %q — gateway/worker skew", lease.Index, lease.Fp, fp)
	}
	if w.AcquireDelay > 0 && !sleepCtx(ctx, w.AcquireDelay) {
		return context.Cause(ctx)
	}

	// Heartbeat until the unit finishes. A gone lease (expired and
	// re-dispatched) cancels the unit: someone else owns it now, and
	// abandoning promptly frees this worker for the next lease. The
	// result, had it been computed, would have been deduped anyway.
	uctx, cancel := context.WithCancelCause(ctx)
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		every := ttl / 3
		if every <= 0 {
			every = time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-uctx.Done():
				return
			case <-t.C:
				ok, err := w.heartbeat(ctx, lease.LeaseID)
				if err == nil && !ok {
					cancel(fmt.Errorf("fleet: lease %s gone (expired and re-dispatched)", lease.LeaseID))
					return
				}
				// Transport errors: keep ticking; the request layer
				// already retried with backoff, and the unit result path
				// will surface persistent unreachability.
			}
		}
	}()

	payload, runErr := plan.RunUnit(uctx, lease.Index)
	close(hbStop)
	hbWG.Wait()
	leaseGone := uctx.Err() != nil && ctx.Err() == nil
	cancel(nil)

	if runErr != nil {
		if leaseGone {
			return nil // abandoned on purpose; the unit is someone else's now
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		// Report the failure so the gateway requeues immediately instead
		// of waiting out the lease TTL. Delivery failures here are
		// non-fatal: expiry covers us.
		line, err := harness.EncodeRecord(KindFail, lease.Fp, struct {
			Error string `json:"error"`
		}{runErr.Error()})
		if err == nil {
			_, _ = w.postResult(ctx, line)
		}
		return nil
	}

	line, err := harness.EncodeRecord(KindResult, lease.Fp, payload)
	if err != nil {
		return err
	}
	status, err := w.postResult(ctx, line)
	if err != nil {
		return fmt.Errorf("fleet: delivering unit %d result: %w", lease.Index, err)
	}
	if status == ResultDivergent {
		return fmt.Errorf("fleet: gateway flagged unit %d result as divergent from an accepted duplicate — determinism violation", lease.Index)
	}
	return nil
}

// fetchJob gets the job description (with request retries).
func (w *Worker) fetchJob(ctx context.Context) (*JobResponse, error) {
	var job JobResponse
	err := w.doJSON(ctx, http.MethodGet, "/v1/job", nil, &job)
	if err != nil {
		return nil, fmt.Errorf("fleet: fetching job from %s: %w", w.Gateway, err)
	}
	return &job, nil
}

func (w *Worker) join(ctx context.Context, scope string) error {
	req := JoinRequest{Proto: ProtocolVersion, Format: harness.JournalFormat, Scope: scope, Worker: w.Name}
	var resp struct {
		OK bool `json:"ok"`
	}
	if err := w.doJSON(ctx, http.MethodPost, "/v1/join", req, &resp); err != nil {
		return fmt.Errorf("fleet: join rejected: %w", err)
	}
	return nil
}

func (w *Worker) acquire(ctx context.Context) (*LeaseResponse, error) {
	var lease LeaseResponse
	if err := w.doJSON(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: w.Name}, &lease); err != nil {
		return nil, fmt.Errorf("fleet: acquiring lease: %w", err)
	}
	return &lease, nil
}

func (w *Worker) heartbeat(ctx context.Context, leaseID string) (bool, error) {
	var resp HeartbeatResponse
	// Heartbeats are time-critical: one attempt, no retry pause — the
	// next tick is the retry.
	if err := w.doJSONOnce(ctx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{LeaseID: leaseID}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// postResult delivers one wire line, retrying on transport errors. A
// dropped RESPONSE (the gateway processed the result but the reply was
// lost) makes the retry a duplicate — which is exactly what the gateway's
// fingerprint dedup is for.
func (w *Worker) postResult(ctx context.Context, line []byte) (string, error) {
	var resp ResultResponse
	err := w.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Gateway+"/v1/result", bytes.NewReader(line))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/jsonl")
		req.Header.Set("X-Fleet-Worker", w.Name)
		return w.decode(req, &resp)
	})
	if err != nil {
		return "", err
	}
	return resp.Status, nil
}

// doJSON performs one JSON request with bounded retries.
func (w *Worker) doJSON(ctx context.Context, method, path string, body, out any) error {
	return w.retry(ctx, func() error {
		return w.doJSONOnce(ctx, method, path, body, out)
	})
}

func (w *Worker) doJSONOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.Gateway+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return w.decode(req, out)
}

// decode runs the request and decodes the JSON response, converting
// non-200 statuses into errors carrying the server's message.
func (w *Worker) decode(req *http.Request, out any) error {
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &statusError{code: resp.StatusCode, msg: eb.Error}
		}
		return &statusError{code: resp.StatusCode, msg: string(data)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// statusError is a non-200 response: a deliberate server answer, not a
// transport fault, so the retry loop does not retry it.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retry runs fn with the worker's backoff policy until it succeeds, fails
// with a non-retryable (server-status) error, exhausts attempts, or ctx
// ends.
func (w *Worker) retry(ctx context.Context, fn func() error) error {
	pol := w.backoff()
	var last error
	for a := 1; a <= w.requestRetries(); a++ {
		err := fn()
		if err == nil {
			return nil
		}
		var se *statusError
		if errors.As(err, &se) {
			return err
		}
		last = err
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		if !sleepCtx(ctx, pol.Delay(a)) {
			return context.Cause(ctx)
		}
	}
	return fmt.Errorf("fleet: gateway unreachable after %d attempts: %w", w.requestRetries(), last)
}

// sleepCtx sleeps d, returning false if ctx ended first. d <= 0 only
// checks the context.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
