package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tvarak/internal/fault"
	"tvarak/internal/harness"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// fleetWorkload is a minimal harness.Workload for end-to-end fleet tests:
// cheap, deterministic, and heterogeneous across cells.
type fleetWorkload struct {
	name   string
	stores int
	addr   uint64
}

func (w *fleetWorkload) Name() string { return w.name }

func (w *fleetWorkload) Setup(s *harness.System) error {
	m, err := s.NewMapping(w.name, 1<<20)
	if err != nil {
		return err
	}
	w.addr = m.Addr(0)
	return nil
}

func (w *fleetWorkload) Workers(s *harness.System) []func(*sim.Core) {
	return []func(*sim.Core){func(c *sim.Core) {
		var b [8]byte
		for i := 0; i < w.stores; i++ {
			c.Store(w.addr+uint64(i*64)%(1<<19), b[:])
		}
	}}
}

// failingFleetWorkload errors in Setup, for keep-going tests.
type failingFleetWorkload struct{ name string }

func (w *failingFleetWorkload) Name() string { return w.name }
func (w *failingFleetWorkload) Setup(*harness.System) error {
	return fmt.Errorf("injected failure in %s", w.name)
}
func (w *failingFleetWorkload) Workers(*harness.System) []func(*sim.Core) { return nil }

// fleetCells enumerates n cells. Every call returns an independent,
// identically-enumerated slice — exactly the property the fleet protocol
// rests on (gateway and each worker enumerate separately).
func fleetCells(n int) []harness.Cell {
	designs := param.Designs()
	cells := make([]harness.Cell, n)
	for i := range cells {
		i := i
		d := designs[i%len(designs)]
		cells[i] = harness.Cell{
			Config:      param.SmallTest(d),
			SampleEvery: 2000,
			Make: func() harness.Workload {
				return &fleetWorkload{name: fmt.Sprintf("fleet%02d", i), stores: 40 + 15*i}
			},
		}
	}
	return cells
}

const fleetScope = "fleet-test|scale=1|full=false"

// renderTable renders a table plus its metrics export exactly like the CLI
// does, for byte-level comparisons.
func renderTable(t *testing.T, tab *harness.Table) (string, []byte) {
	t.Helper()
	x := obs.NewExport("test")
	x.Runs = append(x.Runs, tab.ExportRuns("fleet")...)
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tab.String(), buf.Bytes()
}

func serveGateway(t *testing.T, g *Gateway) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// fastBackoff keeps worker request retries snappy in tests.
func fastBackoff() harness.BackoffPolicy {
	return harness.BackoffPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5, Seed: 1}
}

// runWorkers runs the workers until each returns, failing the test on any
// worker error.
func runWorkers(ctx context.Context, t *testing.T, ws ...*Worker) {
	t.Helper()
	errs := make(chan error, len(ws))
	for _, w := range ws {
		w := w
		go func() { errs <- w.Run(ctx) }()
	}
	for range ws {
		if err := <-errs; err != nil {
			t.Errorf("worker failed: %v", err)
		}
	}
}

// TestFleetSweepByteIdenticalToLocalUnderFaults is the tentpole assertion:
// the same sweep, run locally and through a 3-worker fleet whose every
// control-plane request rides a lossy, duplicating network, renders the
// same table and metrics export, byte for byte.
func TestFleetSweepByteIdenticalToLocalUnderFaults(t *testing.T) {
	const n = 6
	localTab, err := harness.Runner{Workers: 1}.RunTable("fleet sweep", fleetCells(n))
	if err != nil {
		t.Fatal(err)
	}
	localStr, localExport := renderTable(t, localTab)

	plan := NewSweepPlan(fleetScope, fleetCells(n))
	g, err := NewGateway(GatewayConfig{
		Plan:     plan,
		Spec:     JobSpec{Kind: "toy"},
		LeaseTTL: 2 * time.Second,
		Backoff:  harness.BackoffPolicy{Base: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ft := &FaultTransport{Spec: FaultSpec{Seed: 11, DropRequest: 0.1, DropResponse: 0.1, Duplicate: 0.15}}
	workers := make([]*Worker, 3)
	for i := range workers {
		workers[i] = &Worker{
			Gateway: srv.URL,
			Name:    fmt.Sprintf("w%d", i),
			Client:  &http.Client{Transport: ft},
			Build:   func(JobSpec) (Plan, error) { return NewSweepPlan(fleetScope, fleetCells(n)), nil },
			Backoff: fastBackoff(),
		}
	}
	runWorkers(ctx, t, workers...)

	payloads, failures, err := g.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	tab, err := plan.MergeTable("fleet sweep", payloads, failures, false)
	if err != nil {
		t.Fatal(err)
	}
	gotStr, gotExport := renderTable(t, tab)
	if gotStr != localStr {
		t.Errorf("fleet table differs from local run:\nfleet:\n%s\nlocal:\n%s", gotStr, localStr)
	}
	if !bytes.Equal(gotExport, localExport) {
		t.Errorf("fleet metrics export differs from local run")
	}
}

// TestFleetTransportFaultScenarios is the satellite table: scripted fault
// schedules (drop, manufactured duplicates, duplicate delivery, a result
// delivered only after its lease was re-dispatched), each ending with the
// merged payloads byte-identical to the units' canonical bytes.
func TestFleetTransportFaultScenarios(t *testing.T) {
	const n = 4
	cases := []struct {
		name          string
		spec          FaultSpec
		workers       int
		wantDropped   int
		wantDup       bool
		wantRedeliver bool
	}{
		{
			name:        "drop-request",
			spec:        FaultSpec{PathPrefix: "/v1/result", DropRequest: 1, Limit: 2},
			workers:     1,
			wantDropped: 2,
		},
		{
			name:    "drop-response-manufactures-duplicates",
			spec:    FaultSpec{PathPrefix: "/v1/result", DropResponse: 1, Limit: 2},
			workers: 1,
			wantDup: true,
		},
		{
			name:    "duplicate-delivery",
			spec:    FaultSpec{PathPrefix: "/v1/result", Duplicate: 1, Limit: 2},
			workers: 1,
			wantDup: true,
		},
		{
			name:          "delivered-after-redispatch",
			spec:          FaultSpec{PathPrefix: "/v1/result", Delay: 900 * time.Millisecond, Limit: 1},
			workers:       2,
			wantDup:       true,
			wantRedeliver: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := &toyPlan{scope: "toy-faults", n: n}
			g, err := NewGateway(GatewayConfig{
				Plan:          plan,
				Spec:          JobSpec{Kind: "toy"},
				LeaseTTL:      250 * time.Millisecond,
				MaxDeliveries: 5,
				Backoff:       harness.BackoffPolicy{Base: 5 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := serveGateway(t, g)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			ft := &FaultTransport{Spec: tc.spec}
			workers := make([]*Worker, tc.workers)
			for i := range workers {
				workers[i] = &Worker{
					Gateway: srv.URL,
					Name:    fmt.Sprintf("w%d", i),
					Client:  &http.Client{Transport: ft},
					Build:   func(JobSpec) (Plan, error) { return &toyPlan{scope: "toy-faults", n: n}, nil },
					Backoff: fastBackoff(),
				}
			}
			runWorkers(ctx, t, workers...)

			payloads, failures, err := g.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(failures) != 0 {
				t.Fatalf("unexpected failures: %v", failures)
			}
			for i, p := range payloads {
				if string(p) != string(toyPayload(i)) {
					t.Errorf("unit %d payload = %s, want %s", i, p, toyPayload(i))
				}
			}
			s := g.Status(false)
			if dropped, _, _ := ft.Stats(); tc.wantDropped > 0 && dropped != tc.wantDropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.wantDropped)
			}
			if tc.wantDup && s.Duplicates == 0 {
				t.Errorf("expected duplicate results, status = %+v", s)
			}
			if tc.wantRedeliver && (s.Expired == 0 || s.Redelivered == 0) {
				t.Errorf("expected an expiry+redelivery, status = %+v", s)
			}
		})
	}
}

// TestFleetAbandonedLeaseIsRedelivered: a worker that takes a lease and
// vanishes (no heartbeat, no result — the SIGKILL case) delays its unit by
// one TTL, nothing more: the lease expires and the unit is re-dispatched.
func TestFleetAbandonedLeaseIsRedelivered(t *testing.T) {
	const n = 3
	plan := &toyPlan{scope: "toy-abandon", n: n}
	g, err := NewGateway(GatewayConfig{
		Plan:     plan,
		Spec:     JobSpec{Kind: "toy"},
		LeaseTTL: 200 * time.Millisecond,
		Backoff:  harness.BackoffPolicy{Base: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)

	// The ghost takes unit 0's lease and is never heard from again.
	body, _ := json.Marshal(LeaseRequest{Worker: "ghost"})
	resp, err := http.Post(srv.URL+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ghost LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&ghost); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ghost.Status != StatusGrant || ghost.Index != 0 {
		t.Fatalf("ghost lease = %+v, want grant of unit 0", ghost)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := &Worker{
		Gateway: srv.URL, Name: "real",
		Build:   func(JobSpec) (Plan, error) { return &toyPlan{scope: "toy-abandon", n: n}, nil },
		Backoff: fastBackoff(),
	}
	runWorkers(ctx, t, w)

	payloads, failures, err := g.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	for i, p := range payloads {
		if string(p) != string(toyPayload(i)) {
			t.Errorf("unit %d payload = %s, want %s", i, p, toyPayload(i))
		}
	}
	if s := g.Status(false); s.Expired < 1 || s.Redelivered < 1 {
		t.Errorf("status = %+v, want at least one expiry and redelivery", s)
	}
}

// TestFleetGatewayResumesFromJournal kills a gateway mid-job (simulated:
// its first incarnation resolves with half the units failed and is
// discarded) and resumes from its journal: restored units are not re-run,
// and the completed job's payloads are byte-identical to a clean run's.
func TestFleetGatewayResumesFromJournal(t *testing.T) {
	const n = 6
	scope := "toy-resume"
	spec := JobSpec{Kind: "toy", Experiment: "resume-test"}
	path := filepath.Join(t.TempDir(), "fleet.journal")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Phase 1: units 3..5 fail at the worker; MaxDeliveries 1 exhausts
	// them immediately, so the job resolves with only 0..2 journaled.
	j1, err := harness.NewJournalScope(path, scope)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := NewGateway(GatewayConfig{
		Plan:          &toyPlan{scope: scope, n: n},
		Spec:          spec,
		LeaseTTL:      time.Second,
		MaxDeliveries: 1,
		KeepGoing:     true,
		Journal:       j1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := serveGateway(t, g1)
	w1 := &Worker{
		Gateway: srv1.URL, Name: "phase1",
		Build: func(JobSpec) (Plan, error) {
			return &toyPlan{scope: scope, n: n, run: func(_ context.Context, i int) (json.RawMessage, error) {
				if i >= 3 {
					return nil, fmt.Errorf("injected phase-1 crash on unit %d", i)
				}
				return toyPayload(i), nil
			}}, nil
		},
		Backoff: fastBackoff(),
	}
	runWorkers(ctx, t, w1)
	_, failures, err := g1.Wait(ctx)
	if err != nil || len(failures) != 3 {
		t.Fatalf("phase 1: err=%v failures=%v, want nil error and 3 failures", err, failures)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume. Restored units must be pre-completed and never
	// re-dispatched; only 3..5 run.
	j2, err := harness.OpenJournalScope(path, scope)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGateway(GatewayConfig{
		Plan:    &toyPlan{scope: scope, n: n},
		Spec:    spec,
		Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := g2.Status(false); s.Done != 3 {
		t.Fatalf("resumed gateway restored %d units, want 3", s.Done)
	}
	srv2 := serveGateway(t, g2)
	var mu sync.Mutex
	ran := map[int]bool{}
	w2 := &Worker{
		Gateway: srv2.URL, Name: "phase2",
		Build: func(JobSpec) (Plan, error) {
			return &toyPlan{scope: scope, n: n, run: func(_ context.Context, i int) (json.RawMessage, error) {
				mu.Lock()
				ran[i] = true
				mu.Unlock()
				return toyPayload(i), nil
			}}, nil
		},
		Backoff: fastBackoff(),
	}
	runWorkers(ctx, t, w2)
	payloads, failures, err := g2.Wait(ctx)
	if err != nil || len(failures) != 0 {
		t.Fatalf("phase 2: err=%v failures=%v", err, failures)
	}
	for i, p := range payloads {
		if string(p) != string(toyPayload(i)) {
			t.Errorf("unit %d payload = %s, want %s", i, p, toyPayload(i))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 3 || !ran[3] || !ran[4] || !ran[5] {
		t.Errorf("phase 2 ran units %v, want exactly 3,4,5 (restored units must not re-run)", ran)
	}

	// A journal holds exactly one job: resuming it under a different spec
	// must fail loudly instead of merging unrelated results.
	j3, err := harness.OpenJournalScope(path, scope)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	other := spec
	other.Experiment = "something-else"
	if _, err := NewGateway(GatewayConfig{Plan: &toyPlan{scope: scope, n: n}, Spec: other, Journal: j3}); err == nil || !strings.Contains(err.Error(), "fresh journal") {
		t.Errorf("NewGateway with a different spec = %v, want fresh-journal error", err)
	}
}

// TestFleetKeepGoingRendersFailedRows: a unit whose redelivery is
// exhausted becomes an explicit FAILED row with a manifest under
// keep-going, and a hard error without it.
func TestFleetKeepGoingRendersFailedRows(t *testing.T) {
	const n = 4
	makeCells := func() []harness.Cell {
		cells := fleetCells(n)
		cells[2].Make = func() harness.Workload { return &failingFleetWorkload{name: "fleet02"} }
		return cells
	}
	plan := NewSweepPlan(fleetScope, makeCells())
	g, err := NewGateway(GatewayConfig{
		Plan:          plan,
		Spec:          JobSpec{Kind: "toy"},
		LeaseTTL:      2 * time.Second,
		MaxDeliveries: 1,
		KeepGoing:     true,
		Backoff:       harness.BackoffPolicy{Base: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{
		Gateway: srv.URL, Name: "w0",
		Build:   func(JobSpec) (Plan, error) { return NewSweepPlan(fleetScope, makeCells()), nil },
		Backoff: fastBackoff(),
	}
	runWorkers(ctx, t, w)

	payloads, failures, err := g.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[2] == "" {
		t.Fatalf("failures = %v, want exactly unit 2", failures)
	}
	if !strings.Contains(failures[2], "injected failure") {
		t.Errorf("failure %q does not carry the worker's error", failures[2])
	}
	tab, err := plan.MergeTable("degraded", payloads, failures, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "FAILED:") {
		t.Errorf("keep-going table lacks a FAILED row:\n%s", tab.String())
	}
	if tab.Manifest == nil || len(tab.Manifest.Failures) != 1 || tab.Manifest.Completed != n-1 {
		t.Errorf("manifest = %+v, want 1 failure, %d completed", tab.Manifest, n-1)
	}
	if _, err := plan.MergeTable("strict", payloads, failures, false); err == nil {
		t.Error("strict merge of a degraded job did not fail")
	}
}

// TestFleetHandshakeRejectsSkew: a worker whose binary or options derive a
// different scope — or a different per-unit enumeration under the same
// scope — is refused before it can poison the merge.
func TestFleetHandshakeRejectsSkew(t *testing.T) {
	const n = 2
	plan := &toyPlan{scope: "toy-skew", n: n}
	g, err := NewGateway(GatewayConfig{Plan: plan, Spec: JobSpec{Kind: "toy"}, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	scopeSkew := &Worker{
		Gateway: srv.URL, Name: "skewed-scope",
		Build:   func(JobSpec) (Plan, error) { return &toyPlan{scope: "other-scope", n: n}, nil },
		Backoff: fastBackoff(),
	}
	if err := scopeSkew.Run(ctx); err == nil || !strings.Contains(err.Error(), "scope mismatch") {
		t.Errorf("scope-skewed worker error = %v, want scope mismatch", err)
	}

	fpSkew := &Worker{
		Gateway: srv.URL, Name: "skewed-fp",
		Build:   func(JobSpec) (Plan, error) { return &toyPlan{scope: "toy-skew", n: n, fpSalt: "|skew"}, nil },
		Backoff: fastBackoff(),
	}
	if err := fpSkew.Run(ctx); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("fingerprint-skewed worker error = %v, want fingerprint mismatch", err)
	}

	// A worker speaking a different protocol version is rejected at join.
	body, _ := json.Marshal(JoinRequest{Proto: ProtocolVersion + 1, Format: harness.JournalFormat, Scope: "toy-skew", Worker: "old-binary"})
	resp, err := http.Post(srv.URL+"/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || !strings.Contains(eb.Error, "protocol version mismatch") {
		t.Errorf("join with wrong proto: status=%d body=%q", resp.StatusCode, eb.Error)
	}
}

// TestFleetCampaignMergeByteIdenticalToLocal distributes a fault campaign
// and asserts the merged report's JSONL bytes match a local fault.Run.
func TestFleetCampaignMergeByteIdenticalToLocal(t *testing.T) {
	opt := fault.Options{Seed: 7, N: 4, Workers: 2, Apps: []string{"stream", "fio"}}
	localRep, err := fault.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var localBytes bytes.Buffer
	if err := fault.WriteJSONL(&localBytes, localRep); err != nil {
		t.Fatal(err)
	}

	plan, err := NewCampaignPlan(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{Plan: plan, Spec: JobSpec{Kind: "toy"}, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workers := make([]*Worker, 2)
	for i := range workers {
		workers[i] = &Worker{
			Gateway: srv.URL,
			Name:    fmt.Sprintf("w%d", i),
			Build:   func(JobSpec) (Plan, error) { return NewCampaignPlan(opt, 0) },
			Backoff: fastBackoff(),
		}
	}
	runWorkers(ctx, t, workers...)

	payloads, failures, err := g.Wait(ctx)
	if err != nil || len(failures) != 0 {
		t.Fatalf("err=%v failures=%v", err, failures)
	}
	fleetRep, err := plan.MergeReport(payloads)
	if err != nil {
		t.Fatal(err)
	}
	var fleetBytes bytes.Buffer
	if err := fault.WriteJSONL(&fleetBytes, fleetRep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetBytes.Bytes(), localBytes.Bytes()) {
		t.Errorf("fleet campaign JSONL differs from local run:\nfleet:\n%s\nlocal:\n%s",
			fleetBytes.String(), localBytes.String())
	}
}

// TestFleetRidesOutPartition: a full partition that heals while workers
// are still retrying delays the job without corrupting it.
func TestFleetRidesOutPartition(t *testing.T) {
	const n = 4
	plan := &toyPlan{scope: "toy-partition", n: n}
	g, err := NewGateway(GatewayConfig{Plan: plan, Spec: JobSpec{Kind: "toy"}, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ft := &FaultTransport{}
	ft.SetPartition(true)
	heal := time.AfterFunc(300*time.Millisecond, func() { ft.SetPartition(false) })
	defer heal.Stop()

	w := &Worker{
		Gateway: srv.URL, Name: "w0",
		Client:         &http.Client{Transport: ft},
		Build:          func(JobSpec) (Plan, error) { return &toyPlan{scope: "toy-partition", n: n}, nil },
		Backoff:        harness.BackoffPolicy{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5, Seed: 1},
		RequestRetries: 30,
	}
	runWorkers(ctx, t, w)

	payloads, failures, err := g.Wait(ctx)
	if err != nil || len(failures) != 0 {
		t.Fatalf("err=%v failures=%v", err, failures)
	}
	for i, p := range payloads {
		if string(p) != string(toyPayload(i)) {
			t.Errorf("unit %d payload = %s, want %s", i, p, toyPayload(i))
		}
	}
	if dropped, _, _ := ft.Stats(); dropped == 0 {
		t.Error("partition never dropped a request — the fault path was not exercised")
	}
}

// TestFleetGatewayDrainHoldsForLaggardWorkers: once the job resolves, the
// gateway's Drain keeps the control plane answering until workers asleep
// in an acquire backoff poll once more and are told StatusDone — so a
// worker whose sibling finished the last unit exits clean instead of
// finding a dead socket and reporting "gateway unreachable".
func TestFleetGatewayDrainHoldsForLaggardWorkers(t *testing.T) {
	const scope = "toy-drain"
	ttl := 200 * time.Millisecond
	g, err := NewGateway(GatewayConfig{
		Plan:     &toyPlan{scope: scope, n: 1},
		Spec:     JobSpec{Kind: "toy"},
		LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveGateway(t, g)

	postJSON := func(path string, req, out any) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	// The laggard joins — the gateway now counts it live — then sleeps
	// through the rest of the job, like a worker slot waiting out a lease
	// backoff while its sibling runs the final unit.
	var joined map[string]any
	postJSON("/v1/join", JoinRequest{
		Proto: ProtocolVersion, Format: harness.JournalFormat,
		Scope: scope, Worker: "laggard",
	}, &joined)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runWorkers(ctx, t, &Worker{
		Gateway: srv.URL, Name: "fast",
		Build:   func(JobSpec) (Plan, error) { return &toyPlan{scope: scope, n: 1}, nil },
		Backoff: fastBackoff(),
	})
	if _, _, err := g.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() { g.Drain(ctx); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned before the laggard polled")
	case <-time.After(60 * time.Millisecond):
	}

	// The laggard wakes up: its poll must be answered with done, and that
	// contact is what lets Drain return — well before the TTL+1s cap.
	var lease LeaseResponse
	postJSON("/v1/lease", LeaseRequest{Worker: "laggard"}, &lease)
	if lease.Status != StatusDone {
		t.Fatalf("laggard's wake-up poll = %+v, want done", lease)
	}
	select {
	case <-drained:
	case <-time.After(ttl):
		t.Fatal("Drain did not return after the laggard was told the job is done")
	}
}
