// Package fleet distributes sweep and fault-campaign jobs across worker
// processes over an HTTP control plane, with the robustness guarantees of
// a local run: the merged tables, metrics exports and campaign reports are
// byte-identical to a single-machine run, no matter how many workers ran,
// which of them died mid-cell, or how the network mangled the result
// stream.
//
// The design leans on two existing invariants. First, every unit of work
// (a harness.Cell, a fault campaign unit) is deterministic and
// location-independent, identified by a stable fingerprint — so any worker
// may run any unit, twice if need be, and the bytes come out the same.
// Second, the journal's JSONL record format (PR 4) already serializes unit
// results durably; the fleet reuses those records verbatim as its wire
// format, so the gateway's crash journal, the worker's result stream, and
// a local run's checkpoint file are one format.
//
// Work is handed out as leases: a unit index plus its fingerprint and a
// deadline. Workers heartbeat to extend their lease; a lease that expires
// (worker died, hung, or partitioned) is re-dispatched to another worker
// after a seeded-jitter exponential backoff, a bounded number of times.
// Duplicate results — the unavoidable race of re-dispatch — are deduped by
// fingerprint with a byte-equality cross-check: a duplicate that differs
// from the accepted bytes is a determinism violation and fails the job
// loudly. A version/scope handshake rejects workers built from a different
// protocol, journal format, or option set before they can run anything.
package fleet

import "encoding/json"

// ProtocolVersion is the fleet control-plane version. Gateway and worker
// must agree exactly; the join handshake rejects any mismatch with an
// error naming both versions.
const ProtocolVersion = 1

// Record kinds carried on the wire (and in the gateway's journal). Result
// payloads are kind-specific: a sweep unit's payload is the
// harness.Result JSON a local journal would hold under "cell"; a campaign
// unit's is the fault.UnitReport JSON a local journal holds under "unit".
const (
	// KindResult is a completed unit's result record: fingerprint plus
	// the unit's payload bytes.
	KindResult = "fleet-result"
	// KindFail is a worker's failure report for a leased unit: the
	// gateway treats it like an expired lease (redelivery with backoff).
	KindFail = "fleet-fail"
	// KindJob is the gateway journal's job-identity record: the JobSpec
	// under the job scope, so -resume can verify it is resuming the same
	// job.
	KindJob = "fleet-job"
)

// JobSpec declares a job declaratively — never as code — so the gateway
// and every worker can independently enumerate the identical unit list
// from it. Sweep jobs enumerate harness cells through the experiments
// registry; campaign jobs enumerate fault units through
// fault.CampaignUnits.
type JobSpec struct {
	// Kind selects the job family: "sweep" or "campaign".
	Kind string `json:"kind"`

	// Sweep fields (experiments.Options that shape cells).
	Experiment  string   `json:"experiment,omitempty"`
	Scale       float64  `json:"scale,omitempty"`
	FullScale   bool     `json:"fullScale,omitempty"`
	Designs     []string `json:"designs,omitempty"`
	SampleEvery uint64   `json:"sampleEvery,omitempty"`
	Shards      int      `json:"shards,omitempty"`

	// Campaign fields (fault.Options that shape units). Designs is shared
	// with sweep jobs above.
	Seed int64    `json:"seed,omitempty"`
	N    int      `json:"n,omitempty"`
	Apps []string `json:"apps,omitempty"`

	// Async fields (param.AsyncConfig for Vilamb-family units, shared by
	// both job kinds). All-default async omits every field, so pre-async
	// specs and scopes round-trip byte-identically.
	EpochCyc    uint64 `json:"epochCyc,omitempty"`
	DirtyGran   string `json:"dirtyGran,omitempty"`
	Battery     bool   `json:"battery,omitempty"`
	Incremental bool   `json:"incremental,omitempty"`
}

// JobResponse answers GET /v1/job: the gateway's protocol identity, the
// job, and the scope every worker must independently derive from it.
type JobResponse struct {
	// Proto is the gateway's ProtocolVersion.
	Proto int `json:"proto"`
	// Format is the gateway's harness.JournalFormat (the wire format).
	Format int `json:"format"`
	// Scope is the job's scope string. A worker that derives a different
	// scope from the same Spec is running skewed code or options and must
	// not execute units.
	Scope string `json:"scope"`
	// LeaseTTLMillis is how long a lease lives without a heartbeat.
	LeaseTTLMillis int64 `json:"leaseTtlMillis"`
	// Spec is the job itself.
	Spec JobSpec `json:"spec"`
}

// JoinRequest is the POST /v1/join handshake: the worker's protocol
// identity plus the scope it derived from the job spec. The gateway
// rejects any mismatch before the worker can hold a lease.
type JoinRequest struct {
	Proto  int    `json:"proto"`
	Format int    `json:"format"`
	Scope  string `json:"scope"`
	Worker string `json:"worker"`
}

// LeaseRequest asks for the next eligible unit.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease states in LeaseResponse.Status.
const (
	// StatusGrant carries a lease on one unit.
	StatusGrant = "grant"
	// StatusWait means nothing is eligible right now (all units leased or
	// parked in redelivery backoff); retry after WaitMillis.
	StatusWait = "wait"
	// StatusDone means the job is resolved; the worker should exit.
	StatusDone = "done"
)

// LeaseResponse answers POST /v1/lease.
type LeaseResponse struct {
	Status string `json:"status"`
	// Grant fields.
	LeaseID string `json:"leaseId,omitempty"`
	Index   int    `json:"index,omitempty"`
	// Fp is the gateway's fingerprint for the unit. The worker
	// cross-checks it against its own enumeration before running — a
	// mismatch means skewed binaries survived the scope handshake (scope
	// strings can collide; fingerprints hash the full configuration).
	Fp    string `json:"fp,omitempty"`
	Label string `json:"label,omitempty"`
	// TTLMillis is the lease's heartbeat deadline distance.
	TTLMillis int64 `json:"ttlMillis,omitempty"`
	// Wait field.
	WaitMillis int64 `json:"waitMillis,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	LeaseID string `json:"leaseId"`
}

// HeartbeatResponse answers POST /v1/heartbeat. Gone reports that the
// lease no longer exists (expired and re-dispatched, or the unit is
// already done): the worker should abandon the unit — its result, if it
// still arrives, is deduped by fingerprint.
type HeartbeatResponse struct {
	OK   bool `json:"ok"`
	Gone bool `json:"gone,omitempty"`
}

// Result statuses in ResultResponse.Status.
const (
	// ResultAccepted: first result for the unit; journaled and counted.
	ResultAccepted = "accepted"
	// ResultDuplicate: the unit was already done and the bytes matched.
	ResultDuplicate = "duplicate"
	// ResultDivergent: the unit was already done and the bytes DIFFERED —
	// a determinism violation the gateway records and fails the job on.
	ResultDivergent = "divergent"
	// ResultFailed: the body was a KindFail record; the unit goes back
	// into the redelivery queue (or fails terminally).
	ResultFailed = "failed"
)

// ResultResponse answers POST /v1/result.
type ResultResponse struct {
	Status string `json:"status"`
}

// UnitStatus is one unit's dispatch state in StatusResponse.
type UnitStatus struct {
	Index      int    `json:"index"`
	Label      string `json:"label"`
	State      string `json:"state"` // pending | leased | delayed | done | failed
	Worker     string `json:"worker,omitempty"`
	Deliveries int    `json:"deliveries"`
}

// StatusResponse answers GET /v1/status: live dispatch counters for
// operators and the CI gate.
type StatusResponse struct {
	Total       int          `json:"total"`
	Done        int          `json:"done"`
	Failed      int          `json:"failed"`
	Granted     int          `json:"granted"`
	Expired     int          `json:"expired"`
	Redelivered int          `json:"redelivered"`
	Duplicates  int          `json:"duplicates"`
	Divergent   int          `json:"divergent"`
	Resolved    bool         `json:"resolved"`
	Units       []UnitStatus `json:"units,omitempty"`
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

func errJSON(msg string) []byte {
	b, _ := json.Marshal(errorBody{Error: msg})
	return b
}
