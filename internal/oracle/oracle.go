// Package oracle is the shadow redundancy oracle: a pure-Go reference
// model of what the simulated NVM *should* contain, built line by line
// from the workload's own store stream and checked against the machine at
// bound-weave phase boundaries and exhaustively at end-of-run.
//
// The model is a flat shadow copy of the NVM pool updated from the
// devices' write observers at the *intended* address of every write —
// before injected firmware bugs drop or redirect it — so shadow and media
// agree exactly on every line no fault has struck. Divergence is then the
// definition of corruption, independent of the checksums and parity the
// design under test maintains:
//
//   - a lost or misdirected write leaves media ≠ shadow at the intended
//     (and, for misdirected, the victim) line;
//   - a misdirected read delivers bytes ≠ shadow at the intended line,
//     recorded as a silent read unless the design detects it;
//   - TVARAK's parity reconstruction must restore media == shadow, and its
//     checksum/parity state must equal what the shadow implies.
//
// The fault-injection campaign (internal/fault) registers every line it
// corrupts in the oracle's exclusion set; checks skip excluded lines, and
// a TVARAK recovery (obs.EvRecovery) clears its line's exclusion — so at
// end of a TVARAK run the exclusion set must be empty, while under
// Baseline the surviving exclusions are the oracle-confirmed silent
// corruptions.
package oracle

import (
	"bytes"
	"fmt"
	"sort"

	"tvarak/internal/daxfs"
	"tvarak/internal/geom"
	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/sim"
)

// Oracle mirrors the expected NVM content of one simulated system.
// It is not safe for concurrent use with other systems' oracles sharing
// state; each System gets its own Oracle (the campaign runner does so).
type Oracle struct {
	eng  *sim.Engine
	fs   *daxfs.FS
	geo  geom.Geometry
	base uint64

	// shadow is the intended media content: every observed write lands
	// here at its intended address.
	shadow []byte

	paused bool
	inner  obs.Tracer // pre-attach engine tracer, still forwarded to

	// touched accumulates line addresses written since the last phase
	// cross-check; excluded holds lines the campaign corrupted on
	// purpose (checks skip them until a recovery clears them).
	touched  map[uint64]struct{}
	excluded map[uint64]struct{}

	// writtenData is the cumulative set of Data-class timed written
	// lines — the campaign's injection-target candidates.
	writtenData map[uint64]struct{}

	// silent holds data reads that delivered bytes diverging from the
	// shadow without the design detecting the corruption; EvCorruption
	// at the address removes it. eccReads counts reads the device ECC
	// flagged (detected, so never silent).
	silent   map[uint64]struct{}
	eccReads map[uint64]struct{}

	detected  map[uint64]struct{}
	recovered map[uint64]struct{}

	// badRepairs records recoveries whose repair write did not restore
	// the shadow content (a wrong reconstruction would otherwise
	// self-mask, because the shadow follows every write's intent).
	badRepairs []uint64
	lastWrite  uint64
	lastWrOK   bool

	phaseChecks uint64
	phaseErr    error
}

// Attach snapshots the engine's current NVM media as the initial shadow
// and installs the oracle's observers: NVM read/write observers and the
// engine tracer (forwarding to any tracer already attached). Attach after
// workload Setup so the shadow starts from a known-good machine.
func Attach(eng *sim.Engine, fs *daxfs.FS) *Oracle {
	o := &Oracle{
		eng:         eng,
		fs:          fs,
		geo:         eng.Geo,
		base:        eng.Geo.NVMBase(),
		shadow:      make([]byte, eng.Geo.NVMBytes),
		touched:     make(map[uint64]struct{}),
		excluded:    make(map[uint64]struct{}),
		writtenData: make(map[uint64]struct{}),
		silent:      make(map[uint64]struct{}),
		eccReads:    make(map[uint64]struct{}),
		detected:    make(map[uint64]struct{}),
		recovered:   make(map[uint64]struct{}),
		inner:       eng.Tracer,
	}
	eng.NVM.ReadRaw(o.base, o.shadow)
	eng.NVM.SetWriteObserver(o.onWrite)
	eng.NVM.SetReadObserver(o.onRead)
	eng.Tracer = o
	return o
}

// Detach removes the oracle's observers and restores the previous tracer.
func (o *Oracle) Detach() {
	o.eng.NVM.SetWriteObserver(nil)
	o.eng.NVM.SetReadObserver(nil)
	o.eng.Tracer = o.inner
}

// Pause suspends shadow updates and read checking. Crash simulations use
// it: corrupting media and re-deriving state with raw writes must not
// leak into the model of what the content *should* be.
func (o *Oracle) Pause() { o.paused = true }

// Resume re-enables the observers after Pause.
func (o *Oracle) Resume() { o.paused = false }

func (o *Oracle) onWrite(addr uint64, data []byte, timed bool, class nvm.Class) {
	if o.paused {
		return
	}
	if timed && class == nvm.Data {
		o.writtenData[addr] = struct{}{}
		if _, ex := o.excluded[addr]; ex {
			// Possibly a parity-reconstruction repair; EvRecovery will
			// tell. Record whether it restored the shadow content.
			o.lastWrite = addr
			o.lastWrOK = bytes.Equal(data, o.shadow[addr-o.base:addr-o.base+uint64(len(data))])
		}
	}
	copy(o.shadow[addr-o.base:], data)
	first := o.geo.LineAddr(addr)
	last := o.geo.LineAddr(addr + uint64(len(data)) - 1)
	for la := first; la <= last; la += uint64(o.geo.LineSize) {
		o.touched[la] = struct{}{}
	}
}

func (o *Oracle) onRead(addr uint64, buf []byte, class nvm.Class, eccErr bool) {
	if o.paused || class != nvm.Data {
		return
	}
	if eccErr {
		o.eccReads[addr] = struct{}{}
		return
	}
	if !bytes.Equal(buf, o.shadow[addr-o.base:addr-o.base+uint64(len(buf))]) {
		o.silent[addr] = struct{}{}
	}
}

// Trace implements obs.Tracer. Phase boundaries anchor the incremental
// media cross-check; corruption/recovery events reconcile the silent-read
// and exclusion sets.
func (o *Oracle) Trace(ev obs.Event) {
	if o.inner != nil {
		o.inner.Trace(ev)
	}
	if o.paused {
		return
	}
	switch ev.Kind {
	case obs.EvPhase:
		o.checkTouched()
	case obs.EvCorruption:
		o.detected[ev.Addr] = struct{}{}
		delete(o.silent, ev.Addr)
	case obs.EvRecovery:
		o.recovered[ev.Addr] = struct{}{}
		if ev.Addr == o.lastWrite && !o.lastWrOK {
			o.badRepairs = append(o.badRepairs, ev.Addr)
		}
		delete(o.excluded, ev.Addr)
	}
}

// checkTouched compares every line written since the last phase boundary
// against media and records the first (lowest-address) violation.
func (o *Oracle) checkTouched() {
	o.phaseChecks++
	if len(o.touched) == 0 {
		return
	}
	buf := make([]byte, o.geo.LineSize)
	var bad []uint64
	for la := range o.touched {
		if _, ex := o.excluded[la]; ex {
			continue
		}
		o.eng.NVM.ReadRaw(la, buf)
		if !bytes.Equal(buf, o.lineShadow(la)) {
			bad = append(bad, la)
		}
	}
	if len(bad) > 0 && o.phaseErr == nil {
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		o.phaseErr = fmt.Errorf("oracle: media diverges from intent at line %#x (phase check %d, %d lines)",
			bad[0], o.phaseChecks, len(bad))
	}
	clear(o.touched)
}

func (o *Oracle) lineShadow(la uint64) []byte {
	i := la - o.base
	return o.shadow[i : i+uint64(o.geo.LineSize)]
}

// Exclude marks a line as deliberately corrupted: media checks skip it
// until a recovery at the line clears the mark.
func (o *Oracle) Exclude(lineAddr uint64) { o.excluded[lineAddr] = struct{}{} }

// Unexclude clears an exclusion (campaigns do this when cancelling an
// injection that never fired).
func (o *Oracle) Unexclude(lineAddr uint64) { delete(o.excluded, lineAddr) }

// Excluded reports whether the line is currently excluded.
func (o *Oracle) Excluded(lineAddr uint64) bool {
	_, ok := o.excluded[lineAddr]
	return ok
}

// ExcludedLines returns the current exclusion set, sorted. Under TVARAK
// these are the corruptions not yet recovered; under Baseline they are
// the silent media corruptions the design never noticed.
func (o *Oracle) ExcludedLines() []uint64 { return sortedKeys(o.excluded) }

// GroupKey identifies the parity group a data line belongs to (the
// address of the parity line protecting it). The campaign never arms two
// unresolved injections in one group: RAID-5 reconstructs at most one bad
// line per group.
func (o *Oracle) GroupKey(lineAddr uint64) uint64 { return o.geo.ParityLineAddr(lineAddr) }

// Want copies the line's expected content into buf.
func (o *Oracle) Want(lineAddr uint64, buf []byte) { copy(buf, o.lineShadow(lineAddr)) }

// ShadowRange copies len(buf) expected bytes starting at addr.
func (o *Oracle) ShadowRange(addr uint64, buf []byte) { copy(buf, o.shadow[addr-o.base:]) }

// WrittenDataLines returns every line the workload has written through
// the timed data path since Attach, sorted — the candidate pool fault
// injections draw targets from.
func (o *Oracle) WrittenDataLines() []uint64 { return sortedKeys(o.writtenData) }

// SilentReads returns the lines whose reads delivered corrupt bytes with
// no detection, sorted. Empty for a correct TVARAK run.
func (o *Oracle) SilentReads() []uint64 { return sortedKeys(o.silent) }

// ECCReads returns the lines whose reads the device ECC flagged, sorted.
func (o *Oracle) ECCReads() []uint64 { return sortedKeys(o.eccReads) }

// DetectedAt reports whether a corruption detection was traced at the line.
func (o *Oracle) DetectedAt(lineAddr uint64) bool {
	_, ok := o.detected[lineAddr]
	return ok
}

// RecoveredAt reports whether a recovery was traced at the line.
func (o *Oracle) RecoveredAt(lineAddr uint64) bool {
	_, ok := o.recovered[lineAddr]
	return ok
}

// BadRepairs returns lines whose recovery wrote content diverging from
// the shadow — reconstruction bugs that would otherwise self-mask.
func (o *Oracle) BadRepairs() []uint64 { return append([]uint64(nil), o.badRepairs...) }

// PhaseErr returns the first phase-boundary cross-check violation, if any.
func (o *Oracle) PhaseErr() error { return o.phaseErr }

// PhaseChecks returns how many phase-boundary cross-checks have run.
func (o *Oracle) PhaseChecks() uint64 { return o.phaseChecks }

func sortedKeys(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
