package oracle_test

import (
	"bytes"
	"testing"

	"tvarak/internal/apps/fio"
	"tvarak/internal/harness"
	"tvarak/internal/oracle"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

func newSystem(t *testing.T, d param.Design) (*harness.System, *oracle.Oracle) {
	t.Helper()
	sys, err := harness.NewSystem(param.SmallTest(d))
	if err != nil {
		t.Fatal(err)
	}
	w := fio.New(fio.Config{
		Pattern: fio.Rand, Write: true, Threads: 2,
		RegionBytes: 128 << 10, AccessBytes: 16 << 10,
		BlockBytes: 4096, ComputeCyc: 1, Seed: 99,
	})
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	o := oracle.Attach(sys.Eng, sys.FS)
	sys.Eng.Run(w.Workers(sys))
	return sys, o
}

func load(sys *harness.System, la uint64) []byte {
	buf := make([]byte, 64)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) { c.Load(la, buf) }})
	return buf
}

// A fault-free run must satisfy every oracle check on both designs:
// phase cross-checks fire and pass, media equals intent everywhere, and
// (under TVARAK) the persistent checksums and parity match the shadow.
func TestOracleCleanRun(t *testing.T) {
	for _, d := range []param.Design{param.Baseline, param.Tvarak} {
		t.Run(d.String(), func(t *testing.T) {
			sys, o := newSystem(t, d)
			if o.PhaseChecks() == 0 {
				t.Error("no phase-boundary cross-checks ran")
			}
			if err := o.PhaseErr(); err != nil {
				t.Errorf("phase cross-check: %v", err)
			}
			if len(o.WrittenDataLines()) == 0 {
				t.Error("workload wrote no data lines")
			}
			if divs := o.VerifyMediaAll(); len(divs) > 0 {
				t.Errorf("media diverges: %v", divs[0])
			}
			if divs := o.VerifyRedundancy(); len(divs) > 0 {
				t.Errorf("redundancy diverges: %v", divs[0])
			}
			if divs := o.VerifyPageCsums(); len(divs) > 0 {
				t.Errorf("page checksums diverge: %v", divs[0])
			}
			if err := sys.Eng.CheckInvariantsAgainst(o); err != nil {
				t.Errorf("partition invariants: %v", err)
			}
			if len(o.SilentReads()) != 0 || len(o.BadRepairs()) != 0 {
				t.Error("clean run recorded silent reads or bad repairs")
			}
		})
	}
}

// Media corrupted behind the oracle's back (Pause hides the write from
// the shadow) must show up in VerifyMediaAll, be suppressed from
// VerifyMedia by an exclusion, and register as a silent read when the
// Baseline design delivers the bytes without noticing.
func TestOracleFlagsSilentCorruption(t *testing.T) {
	sys, o := newSystem(t, param.Baseline)
	la := o.WrittenDataLines()[3]

	bad := make([]byte, 64)
	for i := range bad {
		bad[i] = 0xa5
	}
	want := make([]byte, 64)
	o.Want(la, want)
	if bytes.Equal(bad, want) {
		bad[0] = 0x5a
	}
	o.Pause()
	sys.Eng.NVM.WriteRaw(la, bad) // valid ECC, wrong content
	o.Resume()

	divs := o.VerifyMediaAll()
	if len(divs) != 1 || divs[0].Addr != la {
		t.Fatalf("VerifyMediaAll = %v, want one divergence at %#x", divs, la)
	}
	o.Exclude(la)
	if len(o.VerifyMedia()) != 0 {
		t.Fatal("VerifyMedia did not skip the excluded line")
	}
	if got := o.ExcludedLines(); len(got) != 1 || got[0] != la {
		t.Fatalf("ExcludedLines = %v", got)
	}
	o.Unexclude(la)

	sys.Eng.DropCaches()
	got := load(sys, la)
	if !bytes.Equal(got, bad) {
		t.Fatal("baseline did not deliver the corrupt bytes")
	}
	if sr := o.SilentReads(); len(sr) != 1 || sr[0] != la {
		t.Fatalf("SilentReads = %v, want [%#x]", sr, la)
	}
}

// A misdirected read under Baseline delivers another line's bytes; the
// oracle must flag the intended address as silently corrupt even though
// media is untouched.
func TestOracleFlagsMisdirectedRead(t *testing.T) {
	sys, o := newSystem(t, param.Baseline)
	lines := o.WrittenDataLines()
	a, b := lines[0], lines[len(lines)-1]
	wa := make([]byte, 64)
	wb := make([]byte, 64)
	o.Want(a, wa)
	o.Want(b, wb)
	if bytes.Equal(wa, wb) {
		t.Skip("first and last written lines hold identical content")
	}
	sys.Eng.DropCaches()
	sys.Eng.NVM.InjectMisdirectedRead(a, b)
	if !bytes.Equal(load(sys, a), wb) {
		t.Fatal("misdirected read did not deliver the donor line")
	}
	if sr := o.SilentReads(); len(sr) != 1 || sr[0] != a {
		t.Fatalf("SilentReads = %v, want [%#x]", sr, a)
	}
	if len(o.VerifyMediaAll()) != 0 {
		t.Fatal("misdirected read must not change media")
	}
}

// Under TVARAK a media bit flip is detected at the fill, recovered from
// parity (clearing the exclusion), and the delivered bytes are correct —
// the full detect-and-recover contract of the paper.
func TestOracleTracksDetectionAndRecovery(t *testing.T) {
	sys, o := newSystem(t, param.Tvarak)
	la := o.WrittenDataLines()[5]
	sys.Eng.NVM.FlipBit(la+17, 3)
	o.Exclude(la)

	sys.Eng.DropCaches()
	got := load(sys, la)
	want := make([]byte, 64)
	o.Want(la, want)
	if !bytes.Equal(got, want) {
		t.Fatal("tvarak delivered corrupt bytes")
	}
	if !o.DetectedAt(la) || !o.RecoveredAt(la) {
		t.Fatalf("detected=%v recovered=%v, want both", o.DetectedAt(la), o.RecoveredAt(la))
	}
	if o.Excluded(la) {
		t.Fatal("recovery did not clear the exclusion")
	}
	if len(o.BadRepairs()) != 0 {
		t.Fatalf("repair flagged as bad: %v", o.BadRepairs())
	}
	if divs := o.VerifyMedia(); len(divs) != 0 {
		t.Fatalf("media still diverges after recovery: %v", divs)
	}
}

// Detach must restore the engine's previous tracer and stop shadow
// updates from reaching a stale oracle.
func TestOracleDetach(t *testing.T) {
	sys, o := newSystem(t, param.Baseline)
	la := o.WrittenDataLines()[0]
	before := make([]byte, 64)
	o.Want(la, before)
	o.Detach()
	patch := make([]byte, 64)
	copy(patch, before)
	patch[0] ^= 0xff
	sys.Eng.NVM.WriteRaw(la, patch)
	after := make([]byte, 64)
	o.Want(la, after)
	if !bytes.Equal(before, after) {
		t.Fatal("detached oracle still observes writes")
	}
}
