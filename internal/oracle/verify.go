package oracle

import (
	"bytes"
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/xsum"
)

// Divergence is one line whose machine state contradicts the reference
// model.
type Divergence struct {
	Addr uint64 `json:"addr"`
	Kind string `json:"kind"` // media | checksum | parity | page-csum
}

func (d Divergence) String() string { return fmt.Sprintf("%s@%#x", d.Kind, d.Addr) }

// VerifyMedia exhaustively compares the whole NVM pool against the
// shadow, skipping excluded lines, and returns the divergent lines in
// address order.
func (o *Oracle) VerifyMedia() []Divergence {
	return o.verifyRange(o.base, uint64(o.geo.NVMBytes), false)
}

// VerifyMediaAll is VerifyMedia including excluded lines: the full damage
// report. Under Baseline this is how the campaign confirms the injected
// corruptions really persist on media.
func (o *Oracle) VerifyMediaAll() []Divergence {
	return o.verifyRange(o.base, uint64(o.geo.NVMBytes), true)
}

// VerifyMapped compares only the data pages of mapped files against the
// shadow (skipping excluded lines) — the fast per-round check.
func (o *Oracle) VerifyMapped() []Divergence {
	var out []Divergence
	for _, f := range o.fs.Files() {
		if !f.Mapped() {
			continue
		}
		out = append(out, o.verifyFileData(f, false)...)
	}
	return out
}

func (o *Oracle) verifyFileData(f *daxfs.File, includeExcluded bool) []Divergence {
	var out []Divergence
	ps := uint64(o.geo.PageSize)
	for p := uint64(0); p < f.Pages; p++ {
		addr := o.geo.DataIndexAddr(f.StartDI+p, 0)
		out = append(out, o.verifyRange(addr, ps, includeExcluded)...)
	}
	return out
}

// verifyRange compares [addr, addr+n) page by page, localizing mismatches
// to lines. Parity pages inside the range are skipped: parity is checked
// semantically by VerifyRedundancy (it is maintained only for stripes of
// mapped data).
func (o *Oracle) verifyRange(addr, n uint64, includeExcluded bool) []Divergence {
	var out []Divergence
	ps := uint64(o.geo.PageSize)
	ls := uint64(o.geo.LineSize)
	buf := make([]byte, ps)
	for pa := addr; pa < addr+n; pa += ps {
		if o.geo.IsParityPage(o.geo.PageOf(pa)) {
			continue
		}
		o.eng.NVM.ReadRaw(pa, buf)
		if bytes.Equal(buf, o.shadow[pa-o.base:pa-o.base+ps]) {
			continue
		}
		for la := pa; la < pa+ps; la += ls {
			if !includeExcluded && o.Excluded(la) {
				continue
			}
			if !bytes.Equal(buf[la-pa:la-pa+ls], o.lineShadow(la)) {
				out = append(out, Divergence{Addr: la, Kind: "media"})
			}
		}
	}
	return out
}

// VerifyRedundancy checks TVARAK's persistent redundancy state against
// the shadow: for every mapped file, each line's DAX-CL-checksum slot
// must equal the CRC of the shadow line, and each parity line of the
// file's stripes must equal the XOR of the shadow data lines it protects.
// Valid after a drain (Run returning) on a design with cache-line
// checksums; lines in excluded parity groups are skipped. Stripes holding
// checksum regions or the page-checksum table are not parity-maintained
// while mapped (those are re-derivable) and are not checked.
func (o *Oracle) VerifyRedundancy() []Divergence {
	if o.eng.Red == nil || !o.eng.Cfg.Tvarak.Features.CacheLineChecksums {
		return nil
	}
	var out []Divergence
	geo := o.geo
	ls := uint64(geo.LineSize)
	ps := uint64(geo.PageSize)
	lpp := uint64(geo.LinesPerPage())
	csumLine := make([]byte, ls)
	parityLine := make([]byte, ls)
	expect := make([]byte, ls)
	for _, f := range o.fs.Files() {
		if !f.Mapped() {
			continue
		}
		csumDI, _ := f.CsumRegion()
		for li := uint64(0); li < f.Pages*lpp; li++ {
			dataAddr := geo.DataIndexAddr(f.StartDI+li/lpp, (li%lpp)*ls)
			if o.Excluded(dataAddr) {
				continue
			}
			ca := geo.DataIndexAddr(csumDI, li*xsum.Size)
			o.eng.NVM.ReadRaw(geo.LineAddr(ca), csumLine)
			slot := int(ca%ls) / xsum.Size
			if xsum.Get(csumLine, slot) != xsum.Checksum(o.lineShadow(dataAddr)) {
				out = append(out, Divergence{Addr: dataAddr, Kind: "checksum"})
			}
		}
		// Parity, one group (stripe × line offset) at a time. The
		// allocator is stripe-aligned, so every data page of the file's
		// stripes belongs to the file.
		for p := uint64(0); p < f.Pages; p += uint64(geo.DIMMs - 1) {
			first := geo.DataIndexAddr(f.StartDI+p, 0)
			for off := uint64(0); off < ps; off += ls {
				la := first + off
				group := append([]uint64{la}, geo.SiblingLineAddrs(la)...)
				skip := false
				copy(expect, o.lineShadow(la))
				for _, sib := range group[1:] {
					xsum.XORInto(expect, o.lineShadow(sib))
				}
				for _, ga := range group {
					if o.Excluded(ga) {
						skip = true
					}
				}
				if skip {
					continue
				}
				pla := geo.ParityLineAddr(la)
				o.eng.NVM.ReadRaw(pla, parityLine)
				if !bytes.Equal(parityLine, expect) {
					out = append(out, Divergence{Addr: pla, Kind: "parity"})
				}
			}
		}
	}
	return out
}

// VerifyPageCsums checks the global per-page checksum table for unmapped
// files (the table is authoritative exactly when data is not mapped).
func (o *Oracle) VerifyPageCsums() []Divergence {
	var out []Divergence
	geo := o.geo
	ps := uint64(geo.PageSize)
	slot := make([]byte, xsum.Size)
	tableDI, _ := o.fs.PageCsumTable()
	for _, f := range o.fs.Files() {
		if f.Mapped() {
			continue
		}
		for p := uint64(0); p < f.Pages; p++ {
			di := f.StartDI + p
			pa := geo.DataIndexAddr(di, 0)
			o.eng.NVM.ReadRaw(geo.DataIndexAddr(tableDI, di*xsum.Size), slot)
			want := xsum.Checksum(o.shadow[pa-o.base : pa-o.base+ps])
			if xsum.Get(slot, 0) != want {
				out = append(out, Divergence{Addr: pa, Kind: "page-csum"})
			}
		}
	}
	return out
}

// VerifyPartitionLine implements sim.PartitionVerifier: it checks one
// LLC redundancy/diff partition line's cached content against the model.
// Parity lines must equal the shadow XOR of their group; checksum-region
// lines must hold the CRCs of their shadow data lines; page-checksum
// table lines must hold the page CRCs of unmapped files; any other
// (diff-partition) entry shadows a data line and must match it. Lines
// involving excluded addresses are skipped.
func (o *Oracle) VerifyPartitionLine(addr uint64, data []byte) error {
	geo := o.geo
	if !geo.IsNVM(addr) {
		return nil
	}
	ls := uint64(geo.LineSize)
	p := geo.PageOf(addr)
	if geo.IsParityPage(p) {
		// Identify the stripe's data pages; only mapped-file stripes
		// maintain parity.
		s := geo.StripeOf(p)
		first := s*uint64(geo.DIMMs) + uint64((geo.ParitySlot(s)+1)%geo.DIMMs)
		f := o.fileOfDI(geo.DataIndexOf(first))
		if f == nil || !f.Mapped() {
			return nil
		}
		off := (addr - geo.PageBase(p))
		expect := make([]byte, ls)
		var la uint64
		for k := 0; k < geo.DIMMs; k++ {
			page := s*uint64(geo.DIMMs) + uint64(k)
			if geo.IsParityPage(page) {
				continue
			}
			ga := geo.PageBase(page) + off
			if o.Excluded(ga) {
				return nil
			}
			xsum.XORInto(expect, o.lineShadow(ga))
			la = ga
		}
		if !bytes.Equal(data, expect) {
			return fmt.Errorf("cached parity for group of %#x diverges from shadow XOR", la)
		}
		return nil
	}
	di := geo.DataIndexOf(p)
	lineOff := addr - geo.PageBase(p)
	for _, f := range o.fs.Files() {
		csumDI, csumPages := f.CsumRegion()
		if f.Mapped() && di >= csumDI && di < csumDI+csumPages {
			return o.verifyCsumSlots(f, (di-csumDI)*uint64(geo.PageSize)+lineOff, data)
		}
		if di >= f.StartDI && di < f.StartDI+f.Pages {
			if !f.Mapped() || o.Excluded(addr) {
				return nil
			}
			// Diff entry: the stashed old-clean copy equals current
			// media content, which equals the shadow for clean lines.
			if !bytes.Equal(data, o.lineShadow(addr)) {
				return fmt.Errorf("cached diff entry for %#x diverges from shadow", addr)
			}
			return nil
		}
	}
	if tableDI, tablePages := o.fs.PageCsumTable(); di >= tableDI && di < tableDI+tablePages {
		return o.verifyPageCsumSlots((di-tableDI)*uint64(geo.PageSize)+lineOff, data)
	}
	return nil
}

// verifyCsumSlots checks one cached DAX-CL-checksum line of file f whose
// first slot covers line index byteOff/4.
func (o *Oracle) verifyCsumSlots(f *daxfs.File, byteOff uint64, data []byte) error {
	geo := o.geo
	ls := uint64(geo.LineSize)
	lpp := uint64(geo.LinesPerPage())
	for k := 0; k < len(data)/xsum.Size; k++ {
		li := (byteOff + uint64(k)*xsum.Size) / xsum.Size
		if li >= f.Pages*lpp {
			break // tail slots beyond the file's last line are undefined
		}
		dataAddr := geo.DataIndexAddr(f.StartDI+li/lpp, (li%lpp)*ls)
		if o.Excluded(dataAddr) {
			continue
		}
		if xsum.Get(data, k) != xsum.Checksum(o.lineShadow(dataAddr)) {
			return fmt.Errorf("cached checksum slot for data line %#x diverges from shadow CRC", dataAddr)
		}
	}
	return nil
}

// verifyPageCsumSlots checks one cached page-checksum-table line; only
// slots covering unmapped files' pages are authoritative.
func (o *Oracle) verifyPageCsumSlots(byteOff uint64, data []byte) error {
	geo := o.geo
	ps := uint64(geo.PageSize)
	for k := 0; k < len(data)/xsum.Size; k++ {
		di := (byteOff + uint64(k)*xsum.Size) / xsum.Size
		f := o.fileOfDI(di)
		if f == nil || f.Mapped() {
			continue
		}
		pa := geo.DataIndexAddr(di, 0)
		if xsum.Get(data, k) != xsum.Checksum(o.shadow[pa-o.base:pa-o.base+ps]) {
			return fmt.Errorf("cached page checksum for data page %d diverges from shadow CRC", di)
		}
	}
	return nil
}

// fileOfDI returns the file whose data pages contain the data index, or
// nil (aux regions, checksum regions, free space).
func (o *Oracle) fileOfDI(di uint64) *daxfs.File {
	for _, f := range o.fs.Files() {
		if di >= f.StartDI && di < f.StartDI+f.Pages {
			return f
		}
	}
	return nil
}
