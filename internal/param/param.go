// Package param holds every configuration knob of the simulated system.
//
// The defaults reproduce Table III of the TVARAK paper (ISCA 2020): a
// 12-core Westmere-like system at 2.27 GHz with 32 KB L1-D, 256 KB L2,
// a 24 MB 16-way shared inclusive LLC split into 12 banks of 2 MB, 6 DRAM
// DIMMs, 4 NVM DIMMs (60/150 ns read/write, 1.6/9 nJ per read/write), and a
// TVARAK controller per LLC bank with a 4 KB on-controller cache, 2 LLC ways
// reserved for caching redundancy information and 1 way for data diffs.
package param

import (
	"fmt"
	"strconv"
	"strings"
)

// Design selects the redundancy scheme under evaluation (§IV of the paper).
type Design int

const (
	// Baseline maintains no redundancy at all.
	Baseline Design = iota
	// Tvarak is the paper's hardware controller: redundancy updated on
	// every LLC→NVM writeback, checksums verified on every NVM→LLC fill.
	Tvarak
	// TxBObjectCsums is the Pangolin-like software scheme: object-granular
	// checksums and parity updated at transaction boundaries; reads are
	// not verified.
	TxBObjectCsums
	// TxBPageCsums is the Mojim/HotPot-like software scheme: page-granular
	// checksums and parity updated at transaction boundaries; reads are
	// not verified.
	TxBPageCsums
	// Vilamb is the asynchronous software scheme of Table I (Kateja et
	// al.): transactions only set per-page dirty bits; a daemon on a
	// dedicated core batches page-checksum and parity updates every
	// epoch, trading windows of vulnerability for overhead. Implemented
	// as an extension beyond the paper's four evaluated designs.
	Vilamb
)

// String returns the label used in the paper's figures.
func (d Design) String() string {
	switch d {
	case Baseline:
		return "Baseline"
	case Tvarak:
		return "Tvarak"
	case TxBObjectCsums:
		return "TxB-Object-Csums"
	case TxBPageCsums:
		return "TxB-Page-Csums"
	case Vilamb:
		return "Vilamb"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Designs lists the four designs the paper evaluates, in its order.
func Designs() []Design {
	return []Design{Baseline, Tvarak, TxBObjectCsums, TxBPageCsums}
}

// AllDesigns additionally includes the Vilamb extension.
func AllDesigns() []Design { return append(Designs(), Vilamb) }

// VilambEpochCyc is the default epoch between Vilamb daemon passes.
const VilambEpochCyc = 1 << 20

// VilambDaemonCores is how many dedicated cores the Vilamb design adds for
// its redundancy daemons (Vilamb runs background threads on spare cores).
const VilambDaemonCores = 4

// DirtyGran selects the dirty-tracking granularity of the asynchronous
// redundancy family: what the commit hook records and therefore how much
// data the epoch daemon re-checksums per reconciliation.
type DirtyGran int

const (
	// GranPage tracks whole dirty pages (Vilamb's page-table dirty bits):
	// cheapest to record, but the daemon reprocesses every line of a page
	// that saw a single store.
	GranPage DirtyGran = iota
	// GranLine tracks individual dirty cache lines: the daemon touches
	// exactly the written lines at the cost of a larger tracking structure.
	GranLine
	// GranRange coalesces dirty line runs into sorted, merged ranges:
	// line-exact coverage with range-compressed bookkeeping, the best of
	// both for sequential writers.
	GranRange
)

// String returns the wire/flag name.
func (g DirtyGran) String() string {
	switch g {
	case GranPage:
		return "page"
	case GranLine:
		return "line"
	case GranRange:
		return "range"
	}
	return fmt.Sprintf("DirtyGran(%d)", int(g))
}

// ParseDirtyGran parses a -dirty-gran flag value.
func ParseDirtyGran(s string) (DirtyGran, error) {
	switch s {
	case "", "page":
		return GranPage, nil
	case "line":
		return GranLine, nil
	case "range":
		return GranRange, nil
	}
	return GranPage, fmt.Errorf("param: unknown dirty granularity %q (want page, line or range)", s)
}

// AsyncConfig parameterizes the asynchronous-redundancy (Vilamb) design
// family. The zero value is the classic single-point Vilamb sketch:
// page-granular dirty tracking, the default epoch, batched reconciliation,
// no battery staging, no scrub. It only takes effect when Config.Design is
// Vilamb.
type AsyncConfig struct {
	// EpochCyc is the interval between daemon reconciliation passes in
	// cycles (0 selects VilambEpochCyc). It is also the design's worst-case
	// vulnerability window: corruption of a dirty line is invisible until
	// the next pass absorbs or detects it.
	EpochCyc uint64
	// DirtyGran selects what the commit hook records.
	DirtyGran DirtyGran
	// Incremental spreads each epoch's reconciliation over sub-slices of
	// the epoch instead of one batched burst at the boundary, trading the
	// batching win for a smoother daemon footprint and a shorter mean
	// window.
	Incremental bool
	// Battery models the battery-backed-DRAM preset: commit additionally
	// stages per-line intent CRCs in (battery-backed, hence durable) DRAM,
	// so the deferred reconciliation pass can verify every dirty line
	// against its intended content before absorbing it — deferral with a
	// zero silent-vulnerability window.
	Battery bool
	// Scrub makes each reconciliation pass re-verify previously reconciled
	// (clean) lines against their stored CRCs, detecting out-of-window
	// corruption and repairing it from parity when the stripe is quiescent.
	// Fault campaigns run with this on; perf sweeps leave it off unless the
	// scrub cost is itself under measurement.
	Scrub bool
}

// IsZero reports whether every knob is at its default.
func (a AsyncConfig) IsZero() bool { return a == AsyncConfig{} }

// Effective returns the config with defaults substituted.
func (a AsyncConfig) Effective() AsyncConfig {
	if a.EpochCyc == 0 {
		a.EpochCyc = VilambEpochCyc
	}
	return a
}

// Label returns the compact variant tag used in tables, fingerprints and
// journal scopes, e.g. "ep4096/line", "ep4096/page+inc", "ep65536/range+bat".
func (a AsyncConfig) Label() string {
	e := a.Effective()
	s := fmt.Sprintf("ep%d/%s", e.EpochCyc, e.DirtyGran)
	if e.Incremental {
		s += "+inc"
	}
	if e.Battery {
		s += "+bat"
	}
	return s
}

// BatteryPreset returns the battery-backed-DRAM async preset at the given
// epoch: line-granular tracking plus staged intent CRCs.
func BatteryPreset(epochCyc uint64) AsyncConfig {
	return AsyncConfig{EpochCyc: epochCyc, DirtyGran: GranLine, Battery: true}
}

// ParseAsyncLabel inverts Label: "ep<cycles>/<gran>[+inc][+bat]" back into
// an AsyncConfig (Scrub is not part of the label and parses to false). The
// empty string parses to the zero config, so a label is a complete wire
// encoding for CLI and worker-protocol plumbing.
func ParseAsyncLabel(s string) (AsyncConfig, error) {
	var a AsyncConfig
	if s == "" {
		return a, nil
	}
	rest, ok := strings.CutPrefix(s, "ep")
	if !ok {
		return a, fmt.Errorf("param: bad async label %q (want ep<cycles>/<gran>[+inc][+bat])", s)
	}
	epoch, gran, ok := strings.Cut(rest, "/")
	if !ok {
		return a, fmt.Errorf("param: bad async label %q (missing granularity)", s)
	}
	cyc, err := strconv.ParseUint(epoch, 10, 64)
	if err != nil {
		return a, fmt.Errorf("param: bad async label %q: %v", s, err)
	}
	a.EpochCyc = cyc
	for {
		if g, ok := strings.CutSuffix(gran, "+bat"); ok {
			gran, a.Battery = g, true
			continue
		}
		if g, ok := strings.CutSuffix(gran, "+inc"); ok {
			gran, a.Incremental = g, true
			continue
		}
		break
	}
	if a.DirtyGran, err = ParseDirtyGran(gran); err != nil {
		return a, fmt.Errorf("param: bad async label %q: %v", s, err)
	}
	return a, nil
}

// TvarakFeatures toggles the three design elements ablated in Fig. 9.
// All true yields the full TVARAK design; all false the naive redundancy
// controller of Fig. 4.
type TvarakFeatures struct {
	// CacheLineChecksums enables DAX-CL-checksums (4 B CRC-32C per 64 B
	// line, packed 16 to a checksum line) while data is DAX-mapped.
	// When false the controller maintains page-granular checksums and
	// must read the rest of the page on every fill and writeback.
	CacheLineChecksums bool
	// RedundancyCaching enables the on-controller redundancy cache backed
	// by an LLC way-partition. When false every redundancy access goes to
	// NVM.
	RedundancyCaching bool
	// DataDiffs stores the old clean copy of a line in an LLC way-partition
	// when the line becomes dirty, so writebacks can update parity
	// incrementally without re-reading old data from NVM. Requires an
	// inclusive LLC; systems with exclusive caches run with this false
	// (§IV-G).
	DataDiffs bool
}

// FullTvarak returns the complete TVARAK design point.
func FullTvarak() TvarakFeatures {
	return TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true, DataDiffs: true}
}

// CacheParams describes one cache level.
type CacheParams struct {
	SizeBytes    int
	Ways         int
	LatencyCyc   uint64
	HitEnergyPJ  float64
	MissEnergyPJ float64
}

// Sets returns the number of sets given the system line size.
func (c CacheParams) Sets(lineSize int) int {
	return c.SizeBytes / (lineSize * c.Ways)
}

// MemParams describes one memory type (DRAM or NVM).
type MemParams struct {
	DIMMs         int
	ReadCyc       uint64 // load-to-use latency in cycles
	WriteCyc      uint64
	ReadEnergyPJ  float64
	WriteEnergyPJ float64
	// Occupancy is how long one 64 B line transfer keeps a DIMM busy,
	// which bounds per-DIMM bandwidth. Derived from measured Optane
	// DIMM bandwidth (~6.8 GB/s read, ~2.3 GB/s write per DIMM).
	ReadOccupancyCyc  uint64
	WriteOccupancyCyc uint64
}

// NVMTech is a named NVM technology preset (§IV-H evaluates alternatives).
type NVMTech struct {
	Name string
	Mem  MemParams
}

// OptaneLike is the paper's default NVM: 60/150 ns read/write latency and
// 1.6/9 nJ per read/write (Lee et al. parameters), at 2.27 GHz.
func OptaneLike(dimms int) NVMTech {
	return NVMTech{
		Name: "optane-like",
		Mem: MemParams{
			DIMMs:             dimms,
			ReadCyc:           136, // 60 ns * 2.27 GHz
			WriteCyc:          341, // 150 ns * 2.27 GHz
			ReadEnergyPJ:      1600,
			WriteEnergyPJ:     9000,
			ReadOccupancyCyc:  21, // ~6.8 GB/s per DIMM
			WriteOccupancyCyc: 63, // ~2.3 GB/s per DIMM
		},
	}
}

// BatteryBackedDRAM models DRAM-as-NVM (§IV-H): DRAM timing and energy with
// durability provided by batteries.
func BatteryBackedDRAM(dimms int) NVMTech {
	return NVMTech{
		Name: "battery-backed-dram",
		Mem: MemParams{
			DIMMs:             dimms,
			ReadCyc:           34, // 15 ns
			WriteCyc:          34,
			ReadEnergyPJ:      1000,
			WriteEnergyPJ:     1000,
			ReadOccupancyCyc:  8,
			WriteOccupancyCyc: 8,
		},
	}
}

// TvarakParams configures the controller hardware (Table III, bottom rows).
type TvarakParams struct {
	// OnCtrlCacheBytes is the per-bank on-controller redundancy cache
	// (4 KB in the paper, 0.2% of a 2 MB bank).
	OnCtrlCacheBytes   int
	OnCtrlLatencyCyc   uint64
	OnCtrlHitEnergyPJ  float64
	OnCtrlMissEnergyPJ float64
	// MatchLatencyCyc is the address-range comparator latency.
	MatchLatencyCyc uint64
	// ComputeLatencyCyc is one checksum/parity computation or verification.
	ComputeLatencyCyc uint64
	// RedundancyWays of each LLC bank are reserved for caching redundancy
	// information (2 of 16 in the paper).
	RedundancyWays int
	// DiffWays of each LLC bank are reserved for storing data diffs
	// (1 of 16 in the paper).
	DiffWays int
	Features TvarakFeatures
}

// Config is the full simulated-system configuration.
type Config struct {
	Cores    int
	ClockGHz float64

	LineSize int
	PageSize int

	L1       CacheParams
	L2       CacheParams
	LLCBank  CacheParams // one of LLCBanks identical banks
	LLCBanks int

	DRAM MemParams
	NVM  MemParams

	Tvarak TvarakParams

	Design Design

	// Async parameterizes the asynchronous-redundancy family; it only takes
	// effect when Design is Vilamb (see AsyncConfig).
	Async AsyncConfig

	// PhaseCyc is the bound-weave synchronization quantum: cores simulate
	// independently for a phase and synchronize at phase boundaries
	// (zsim uses 10k cycles).
	PhaseCyc uint64

	// Shards is the number of OS threads the engine spreads the weave
	// phase's deferred work (NVM/DRAM writebacks, redundancy updates,
	// device-ECC verification) across. 0 or 1 runs fully serial (today's
	// behavior); higher values pipeline that work off the engine thread
	// while keeping every statistic and all media content byte-identical
	// (see DESIGN.md §"Parallel weave").
	Shards int

	// DRAMBytes and NVMBytes size the two physical memories. NVMBytes is
	// split evenly across NVM DIMMs and must be a multiple of
	// PageSize*NVM.DIMMs.
	DRAMBytes int
	NVMBytes  int
}

// Default returns the Table III configuration with the given design and
// an NVM capacity suitable for the paper's workloads at reproduction scale.
func Default(d Design) *Config {
	nvm := OptaneLike(4)
	return &Config{
		Cores:    12,
		ClockGHz: 2.27,
		LineSize: 64,
		PageSize: 4096,
		L1: CacheParams{
			SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 4,
			HitEnergyPJ: 15, MissEnergyPJ: 33,
		},
		L2: CacheParams{
			SizeBytes: 256 << 10, Ways: 8, LatencyCyc: 7,
			HitEnergyPJ: 46, MissEnergyPJ: 94,
		},
		LLCBank: CacheParams{
			SizeBytes: 2 << 20, Ways: 16, LatencyCyc: 27,
			HitEnergyPJ: 240, MissEnergyPJ: 500,
		},
		LLCBanks: 12,
		DRAM: MemParams{
			DIMMs: 6, ReadCyc: 34, WriteCyc: 34,
			ReadEnergyPJ: 1000, WriteEnergyPJ: 1000,
			ReadOccupancyCyc: 8, WriteOccupancyCyc: 8,
		},
		NVM: nvm.Mem,
		Tvarak: TvarakParams{
			OnCtrlCacheBytes:   4 << 10,
			OnCtrlLatencyCyc:   1,
			OnCtrlHitEnergyPJ:  15,
			OnCtrlMissEnergyPJ: 33,
			MatchLatencyCyc:    2,
			ComputeLatencyCyc:  1,
			RedundancyWays:     2,
			DiffWays:           1,
			Features:           FullTvarak(),
		},
		Design:    d,
		PhaseCyc:  10000,
		DRAMBytes: 64 << 20,
		NVMBytes:  256 << 20,
	}
}

// ReproScale returns a 1/16-scale machine: the cache hierarchy (L1, L2,
// LLC banks, on-controller cache) shrinks 16x while core count, NVM DIMMs
// and all latency/energy/bandwidth parameters keep Table III values.
// Experiments run correspondingly smaller workload footprints against it,
// preserving the footprint-to-cache ratios of the paper's full-scale runs
// at a fraction of the simulation cost (see EXPERIMENTS.md). The harness
// can run Default-scale instead via its FullScale option.
func ReproScale(d Design) *Config {
	c := Default(d)
	c.L1.SizeBytes = 8 << 10
	c.L2.SizeBytes = 32 << 10
	c.LLCBank.SizeBytes = 128 << 10
	c.Tvarak.OnCtrlCacheBytes = 1 << 10
	c.NVMBytes = 256 << 20
	c.DRAMBytes = 16 << 20
	return c
}

// SmallTest returns a scaled-down configuration (fewer cores, small caches
// and memories) so unit tests run quickly while exercising the same code
// paths.
func SmallTest(d Design) *Config {
	c := Default(d)
	c.Cores = 4
	c.LLCBanks = 4
	c.L1.SizeBytes = 4 << 10
	c.L2.SizeBytes = 16 << 10
	c.LLCBank.SizeBytes = 256 << 10
	c.DRAMBytes = 8 << 20
	c.NVMBytes = 32 << 20
	return c
}

// Validate reports configuration errors before a system is built.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		return fmt.Errorf("param: cores must be in [1,64], got %d", c.Cores)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("param: line size must be a positive power of two, got %d", c.LineSize)
	}
	if c.PageSize <= 0 || c.PageSize%c.LineSize != 0 {
		return fmt.Errorf("param: page size %d must be a multiple of line size %d", c.PageSize, c.LineSize)
	}
	if c.NVM.DIMMs < 2 {
		return fmt.Errorf("param: cross-DIMM parity needs at least 2 NVM DIMMs, got %d", c.NVM.DIMMs)
	}
	if c.NVMBytes%(c.PageSize*c.NVM.DIMMs) != 0 {
		return fmt.Errorf("param: NVM capacity %d must be a multiple of page size * DIMMs", c.NVMBytes)
	}
	if c.DRAMBytes%c.PageSize != 0 {
		return fmt.Errorf("param: DRAM capacity %d must be page aligned", c.DRAMBytes)
	}
	if c.LLCBanks <= 0 {
		return fmt.Errorf("param: need at least one LLC bank")
	}
	if c.Shards < 0 || c.Shards > 64 {
		return fmt.Errorf("param: shards must be in [0,64], got %d", c.Shards)
	}
	if g := c.Async.DirtyGran; g < GranPage || g > GranRange {
		return fmt.Errorf("param: invalid dirty granularity %d", int(g))
	}
	if !c.Async.IsZero() && c.Design != Vilamb {
		return fmt.Errorf("param: Async config set but design is %s (only Vilamb honours it)", c.Design)
	}
	for _, cp := range []struct {
		name string
		p    CacheParams
	}{{"L1", c.L1}, {"L2", c.L2}, {"LLC bank", c.LLCBank}} {
		if cp.p.Ways <= 0 || cp.p.SizeBytes%(cp.p.Ways*c.LineSize) != 0 {
			return fmt.Errorf("param: %s geometry invalid (%d bytes, %d ways)", cp.name, cp.p.SizeBytes, cp.p.Ways)
		}
	}
	t := c.Tvarak
	if c.Design == Tvarak {
		reserved := 0
		if t.Features.RedundancyCaching {
			reserved += t.RedundancyWays
		}
		if t.Features.DataDiffs {
			reserved += t.DiffWays
		}
		if reserved >= c.LLCBank.Ways {
			return fmt.Errorf("param: reserved LLC ways (%d) must leave data ways (LLC has %d)", reserved, c.LLCBank.Ways)
		}
		if t.OnCtrlCacheBytes%c.LineSize != 0 {
			return fmt.Errorf("param: on-controller cache %d B must be line aligned", t.OnCtrlCacheBytes)
		}
	}
	return nil
}

// DataWays returns the LLC ways available to application data under the
// configured design (Tvarak reserves redundancy and diff ways).
func (c *Config) DataWays() int {
	w := c.LLCBank.Ways
	if c.Design != Tvarak {
		return w
	}
	if c.Tvarak.Features.RedundancyCaching {
		w -= c.Tvarak.RedundancyWays
	}
	if c.Tvarak.Features.DataDiffs {
		w -= c.Tvarak.DiffWays
	}
	return w
}
