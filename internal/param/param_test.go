package param

import "testing"

func TestDefaultMatchesTableIII(t *testing.T) {
	c := Default(Tvarak)
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"cores", c.Cores, 12},
		{"clock GHz", c.ClockGHz, 2.27},
		{"L1 size", c.L1.SizeBytes, 32 << 10},
		{"L1 ways", c.L1.Ways, 8},
		{"L1 latency", c.L1.LatencyCyc, uint64(4)},
		{"L2 size", c.L2.SizeBytes, 256 << 10},
		{"L2 latency", c.L2.LatencyCyc, uint64(7)},
		{"LLC bank size", c.LLCBank.SizeBytes, 2 << 20},
		{"LLC banks", c.LLCBanks, 12},
		{"LLC ways", c.LLCBank.Ways, 16},
		{"LLC latency", c.LLCBank.LatencyCyc, uint64(27)},
		{"LLC hit pJ", c.LLCBank.HitEnergyPJ, 240.0},
		{"LLC miss pJ", c.LLCBank.MissEnergyPJ, 500.0},
		{"DRAM DIMMs", c.DRAM.DIMMs, 6},
		{"NVM DIMMs", c.NVM.DIMMs, 4},
		{"NVM read pJ", c.NVM.ReadEnergyPJ, 1600.0},
		{"NVM write pJ", c.NVM.WriteEnergyPJ, 9000.0},
		{"on-ctrl cache", c.Tvarak.OnCtrlCacheBytes, 4 << 10},
		{"on-ctrl latency", c.Tvarak.OnCtrlLatencyCyc, uint64(1)},
		{"match latency", c.Tvarak.MatchLatencyCyc, uint64(2)},
		{"compute latency", c.Tvarak.ComputeLatencyCyc, uint64(1)},
		{"redundancy ways", c.Tvarak.RedundancyWays, 2},
		{"diff ways", c.Tvarak.DiffWays, 1},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %v, want %v", ch.name, ch.got, ch.want)
		}
	}
	// 60 ns and 150 ns at 2.27 GHz.
	if c.NVM.ReadCyc != 136 || c.NVM.WriteCyc != 341 {
		t.Errorf("NVM latency = %d/%d cycles, want 136/341", c.NVM.ReadCyc, c.NVM.WriteCyc)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestLLCTotals24MB(t *testing.T) {
	c := Default(Baseline)
	if got := c.LLCBank.SizeBytes * c.LLCBanks; got != 24<<20 {
		t.Errorf("LLC total = %d, want 24 MiB", got)
	}
	// On-controller cache is ~0.2% of a bank.
	ratio := float64(c.Tvarak.OnCtrlCacheBytes) / float64(c.LLCBank.SizeBytes)
	if ratio < 0.0015 || ratio > 0.0025 {
		t.Errorf("on-controller cache ratio = %v, want ~0.002", ratio)
	}
}

func TestDesignStrings(t *testing.T) {
	want := map[Design]string{
		Baseline:       "Baseline",
		Tvarak:         "Tvarak",
		TxBObjectCsums: "TxB-Object-Csums",
		TxBPageCsums:   "TxB-Page-Csums",
	}
	if len(Designs()) != 4 {
		t.Fatalf("Designs() has %d entries", len(Designs()))
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
}

func TestDataWays(t *testing.T) {
	c := Default(Tvarak)
	if got := c.DataWays(); got != 13 {
		t.Errorf("Tvarak data ways = %d, want 13 (16 - 2 redundancy - 1 diff)", got)
	}
	c.Tvarak.Features.DataDiffs = false
	if got := c.DataWays(); got != 14 {
		t.Errorf("no-diff data ways = %d, want 14", got)
	}
	c.Tvarak.Features.RedundancyCaching = false
	if got := c.DataWays(); got != 16 {
		t.Errorf("naive data ways = %d, want 16", got)
	}
	b := Default(Baseline)
	if got := b.DataWays(); got != 16 {
		t.Errorf("baseline data ways = %d, want 16", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mk := func(mut func(*Config)) *Config {
		c := Default(Tvarak)
		mut(c)
		return c
	}
	cases := []struct {
		name string
		cfg  *Config
	}{
		{"zero cores", mk(func(c *Config) { c.Cores = 0 })},
		{"too many cores", mk(func(c *Config) { c.Cores = 65 })},
		{"non-pow2 line", mk(func(c *Config) { c.LineSize = 48 })},
		{"page not multiple of line", mk(func(c *Config) { c.PageSize = 4000 })},
		{"one NVM DIMM", mk(func(c *Config) { c.NVM.DIMMs = 1 })},
		{"unaligned NVM", mk(func(c *Config) { c.NVMBytes += 4096 })},
		{"unaligned DRAM", mk(func(c *Config) { c.DRAMBytes++ })},
		{"no banks", mk(func(c *Config) { c.LLCBanks = 0 })},
		{"bad L1 geometry", mk(func(c *Config) { c.L1.SizeBytes = 1000 })},
		{"all ways reserved", mk(func(c *Config) { c.Tvarak.RedundancyWays = 15 })},
		{"unaligned on-ctrl", mk(func(c *Config) { c.Tvarak.OnCtrlCacheBytes = 100 })},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

func TestReproScaleValid(t *testing.T) {
	for _, d := range Designs() {
		if err := ReproScale(d).Validate(); err != nil {
			t.Errorf("ReproScale(%v) invalid: %v", d, err)
		}
		if err := SmallTest(d).Validate(); err != nil {
			t.Errorf("SmallTest(%v) invalid: %v", d, err)
		}
	}
	// The scaled machine keeps a sane hierarchy: sum of private L2s fits
	// under the shared LLC.
	c := ReproScale(Baseline)
	if c.L2.SizeBytes*c.Cores >= c.LLCBank.SizeBytes*c.LLCBanks {
		t.Error("ReproScale: private L2 capacity exceeds inclusive LLC")
	}
}

func TestNVMTechPresets(t *testing.T) {
	opt := OptaneLike(8)
	if opt.Mem.DIMMs != 8 || opt.Name != "optane-like" {
		t.Error("OptaneLike preset wrong")
	}
	bb := BatteryBackedDRAM(4)
	if bb.Mem.ReadCyc != bb.Mem.WriteCyc {
		t.Error("battery-backed DRAM should have symmetric latency")
	}
	if bb.Mem.ReadCyc >= opt.Mem.ReadCyc {
		t.Error("battery-backed DRAM should be faster than Optane-like NVM")
	}
}
