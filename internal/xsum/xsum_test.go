package xsum

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChecksumDiffers(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	b[13] = 1
	if Checksum(a) == Checksum(b) {
		t.Error("checksums of differing lines collide on a single-byte change")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	line := make([]byte, 64)
	f := func(idx uint8, c uint32) bool {
		i := int(idx) % PerLine
		Put(line, i, c)
		return Get(line, i) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPutSlotsAreIndependent(t *testing.T) {
	line := make([]byte, 64)
	for i := 0; i < PerLine; i++ {
		Put(line, i, uint32(i)*0x01010101+7)
	}
	for i := 0; i < PerLine; i++ {
		if got := Get(line, i); got != uint32(i)*0x01010101+7 {
			t.Errorf("slot %d = %#x, want %#x", i, got, uint32(i)*0x01010101+7)
		}
	}
}

func TestXORIntoSelfInverse(t *testing.T) {
	f := func(a, b [64]byte) bool {
		dst := append([]byte(nil), a[:]...)
		XORInto(dst, b[:])
		XORInto(dst, b[:])
		return bytes.Equal(dst, a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityDeltaEquivalentToRecompute(t *testing.T) {
	// Incremental update (parity ^= old ^ new) must equal recomputing
	// parity from scratch with new substituted for old — the property that
	// makes TVARAK's data-diff writeback path correct.
	f := func(old, new1, sib1, sib2 [64]byte) bool {
		// parity over {old, sib1, sib2}
		parity := make([]byte, 64)
		XORInto(parity, old[:])
		XORInto(parity, sib1[:])
		XORInto(parity, sib2[:])
		ParityDelta(parity, old[:], new1[:])
		want := make([]byte, 64)
		XORInto(want, new1[:])
		XORInto(want, sib1[:])
		XORInto(want, sib2[:])
		return bytes.Equal(parity, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityRecovery(t *testing.T) {
	// A lost member is reconstructible as parity XOR remaining members.
	f := func(a, b, c [64]byte) bool {
		parity := make([]byte, 64)
		for _, m := range [][64]byte{a, b, c} {
			XORInto(parity, m[:])
		}
		rec := append([]byte(nil), parity...)
		XORInto(rec, b[:])
		XORInto(rec, c[:])
		return bytes.Equal(rec, a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("XORInto with mismatched lengths did not panic")
		}
	}()
	XORInto(make([]byte, 64), make([]byte, 32))
}

func TestParityDeltaLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParityDelta with mismatched lengths did not panic")
		}
	}()
	ParityDelta(make([]byte, 64), make([]byte, 64), make([]byte, 32))
}
