package xsum

import "testing"

// The checksum/parity primitives run once per NVM fill and writeback of
// DAX-mapped data, so their cost multiplies across every simulated cell of
// a campaign. These benchmarks pin down the per-line (64 B) and per-page
// (4 KB) costs; tools/benchdiff gates them against BENCH_6.json.

func mkbuf(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func BenchmarkChecksumLine(b *testing.B) {
	data := mkbuf(64, 1)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		sink = Checksum(data)
	}
}

func BenchmarkChecksumPage(b *testing.B) {
	data := mkbuf(4096, 1)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		sink = Checksum(data)
	}
}

func BenchmarkXORIntoLine(b *testing.B) {
	dst, src := mkbuf(64, 1), mkbuf(64, 2)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		XORInto(dst, src)
	}
}

func BenchmarkXORIntoPage(b *testing.B) {
	dst, src := mkbuf(4096, 1), mkbuf(4096, 2)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		XORInto(dst, src)
	}
}

func BenchmarkParityDeltaLine(b *testing.B) {
	parity, old, new_ := mkbuf(64, 1), mkbuf(64, 2), mkbuf(64, 3)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		ParityDelta(parity, old, new_)
	}
}

// sink defeats dead-code elimination of the measured calls.
var sink uint32
