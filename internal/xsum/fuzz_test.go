package xsum

import (
	"bytes"
	"testing"
)

// Fuzz targets for the checksum/parity arithmetic every redundancy layer
// leans on. Run with the native engine, e.g.:
//
//	go test ./internal/xsum/ -fuzz FuzzPutGetRoundTrip -fuzztime 30s
//
// Seed corpora live under testdata/fuzz/<FuzzName>/ so plain `go test`
// always replays them.

// FuzzPutGetRoundTrip checks slot packing: Put then Get round-trips at
// every slot boundary, and writing one slot never disturbs another.
func FuzzPutGetRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"), uint32(0xdeadbeef), 0)
	f.Add(make([]byte, 64), uint32(0), PerLine-1)
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint32(0x12345678), 7)
	f.Fuzz(func(t *testing.T, line []byte, c uint32, idx int) {
		if len(line) < 64 {
			t.Skip()
		}
		line = line[:64]
		idx = ((idx % PerLine) + PerLine) % PerLine
		before := append([]byte(nil), line...)
		Put(line, idx, c)
		if got := Get(line, idx); got != c {
			t.Fatalf("Get(Put(%#x)) = %#x at slot %d", c, got, idx)
		}
		for k := 0; k < PerLine; k++ {
			if k == idx {
				continue
			}
			if Get(line, k) != Get(before, k) {
				t.Fatalf("Put at slot %d disturbed slot %d", idx, k)
			}
		}
	})
}

// FuzzChecksumBitFlip checks the detection property the whole design
// rests on: flipping any single bit of a 64 B line changes its CRC-32C
// (CRC detects all single-bit errors), and the checksum is a pure
// function of the content.
func FuzzChecksumBitFlip(f *testing.F) {
	f.Add(make([]byte, 64), 0, uint8(0))
	f.Add(bytes.Repeat([]byte{0xa5}, 64), 63, uint8(7))
	f.Add(bytes.Repeat([]byte("the quick brown fox "), 4), 17, uint8(3))
	f.Fuzz(func(t *testing.T, line []byte, pos int, bit uint8) {
		if len(line) < 64 {
			t.Skip()
		}
		line = line[:64]
		pos = ((pos % 64) + 64) % 64
		orig := Checksum(line)
		if Checksum(line) != orig {
			t.Fatal("checksum is not deterministic")
		}
		line[pos] ^= 1 << (bit % 8)
		if Checksum(line) == orig {
			t.Fatalf("single-bit flip at byte %d bit %d left CRC-32C unchanged", pos, bit%8)
		}
		line[pos] ^= 1 << (bit % 8)
		if Checksum(line) != orig {
			t.Fatal("flipping the bit back did not restore the checksum")
		}
	})
}

// FuzzParityAlgebra checks the XOR algebra of cross-DIMM parity:
// XORInto is an involution (applying a line twice is a no-op), and
// ParityDelta(parity, old, new) is exactly remove-old-add-new — the
// incremental update equals rebuilding parity from scratch.
func FuzzParityAlgebra(f *testing.F) {
	f.Add(make([]byte, 64), make([]byte, 64), make([]byte, 64))
	f.Add(bytes.Repeat([]byte{1}, 64), bytes.Repeat([]byte{2}, 64), bytes.Repeat([]byte{3}, 64))
	f.Fuzz(func(t *testing.T, parity, oldData, newData []byte) {
		if len(parity) < 64 || len(oldData) < 64 || len(newData) < 64 {
			t.Skip()
		}
		parity, oldData, newData = parity[:64], oldData[:64], newData[:64]

		// Involution: p ^ x ^ x == p.
		p := append([]byte(nil), parity...)
		XORInto(p, oldData)
		XORInto(p, oldData)
		if !bytes.Equal(p, parity) {
			t.Fatal("XORInto twice with the same line is not a no-op")
		}

		// Incremental update == full rebuild. Model parity as protecting
		// {oldData, rest} with rest implied by parity = old ^ rest.
		inc := append([]byte(nil), parity...)
		ParityDelta(inc, oldData, newData)
		full := append([]byte(nil), parity...)
		XORInto(full, oldData) // full = rest
		XORInto(full, newData) // full = rest ^ new
		if !bytes.Equal(inc, full) {
			t.Fatal("ParityDelta diverges from remove-old-add-new")
		}

		// Reconstruction: the "lost" line equals parity ^ siblings.
		rec := append([]byte(nil), inc...)
		XORInto(rec, parity)  // rec = old ^ new
		XORInto(rec, oldData) // rec = new
		if !bytes.Equal(rec, newData) {
			t.Fatal("parity reconstruction did not recover the written line")
		}
	})
}
