// Package xsum implements the system-checksum and parity arithmetic used by
// the file system, the TVARAK controller, and the software redundancy
// schemes.
//
// System-checksums are CRC-32C (Castagnoli). The paper's DAX-CL-checksums
// are cache-line-granular checksums maintained only while data is
// DAX-mapped; a 64 B checksum line packs sixteen 4 B checksums and therefore
// covers 1 KB of data (6.25% space overhead, paid only for mapped data).
// Page-granular system-checksums cover 4 KB. Cross-DIMM parity is bytewise
// XOR across the non-parity pages of a stripe.
package xsum

import (
	"encoding/binary"
	"hash/crc32"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Size is the size in bytes of one stored checksum.
const Size = 4

// PerLine is how many checksums pack into one 64 B checksum line.
const PerLine = 64 / Size

// Checksum returns the CRC-32C of data. It is used for both line-granular
// (64 B) and page-granular (4 KB) system-checksums.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Put stores checksum c at slot idx of a packed checksum buffer (typically
// a 64 B checksum line holding PerLine entries).
func Put(buf []byte, idx int, c uint32) {
	binary.LittleEndian.PutUint32(buf[idx*Size:], c)
}

// Get loads the checksum at slot idx of a packed checksum buffer.
func Get(buf []byte, idx int) uint32 {
	return binary.LittleEndian.Uint32(buf[idx*Size:])
}

// XORInto accumulates src into dst bytewise: dst ^= src. It panics if the
// slices differ in length, since parity lines and data lines are always the
// same size. The bulk runs eight bytes at a time (the compiler lowers the
// binary.LittleEndian accesses to single word loads/stores), which matters
// because every parity update and every recovery XORs whole lines or pages.
func XORInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic("xsum: XORInto length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// ParityDelta applies an incremental parity update for an in-place data
// write: parity ^= old ^ new. This is the data-diff optimization at the
// heart of TVARAK's writeback path. Like XORInto it runs word-at-a-time.
func ParityDelta(parity, oldData, newData []byte) {
	if len(parity) != len(oldData) || len(parity) != len(newData) {
		panic("xsum: ParityDelta length mismatch")
	}
	n := len(parity) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(parity[i:],
			binary.LittleEndian.Uint64(parity[i:])^
				binary.LittleEndian.Uint64(oldData[i:])^
				binary.LittleEndian.Uint64(newData[i:]))
	}
	for i := n; i < len(parity); i++ {
		parity[i] ^= oldData[i] ^ newData[i]
	}
}
