// Package pmem is a PMDK-libpmemobj-like persistent heap over a DAX
// mapping: an object allocator plus undo-log transactions. All persistent
// state (allocator bump pointer, undo-log lanes, object headers, object
// payloads) lives in simulated NVM and is read and written with simulated
// loads and stores on the calling core, so transactions generate the
// persistent metadata traffic the paper highlights (e.g., Redis get-only
// workloads still write to NVM because gets run transactions).
//
// Transaction commit invokes the CommitHook, which is where the software
// redundancy schemes (TxB-Object-Csums, TxB-Page-Csums; package
// internal/swred) do their work — "TxB" is exactly this transaction
// boundary.
package pmem

import (
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/sim"
)

// Range records one transactionally modified region of the heap, in mapping
// offsets. ObjID identifies the enclosing object for object-granular
// checksums.
type Range struct {
	Off   uint64
	Len   uint64
	ObjID uint64
}

// CommitHook runs at every transaction boundary with the set of modified
// ranges (software redundancy schemes implement it).
type CommitHook interface {
	OnCommit(c *sim.Core, h *Heap, ranges []Range)
}

const (
	headerBytes = 64
	laneBytes   = 8 << 10
	objHeader   = 16 // [size 8B | id 8B] before each payload

	// Header field offsets.
	hdrBump   = 0
	hdrNextID = 8

	// Lane field offsets.
	laneState = 0
	laneIdle  = 0
	laneArmed = 1
	laneCmt   = 2
)

// Object describes an allocated object.
type Object struct {
	Off  uint64 // payload offset within the mapping
	Size uint64
}

// Heap is a persistent object heap inside one DAX-mapped file.
type Heap struct {
	Map  *daxfs.DaxMap
	hook CommitHook

	lanes    int
	heapBase uint64

	// Go-side mirrors of persistent allocator state (the persistent copy
	// is authoritative and kept in sync with simulated stores).
	bump   uint64
	nextID uint64

	objects  map[uint64]Object   // id → object
	freeList map[uint64][]uint64 // size → payload offsets

	// txs pools one reusable Tx per lane: the lane model admits a single
	// live transaction per core (Begin re-arms the same persistent lane),
	// so Begin recycles the core's Tx — with its ranges/entries slices and
	// dedup map — instead of allocating per transaction.
	txs []*Tx
}

// NewHeap initializes a heap over m with one undo-log lane per core.
func NewHeap(m *daxfs.DaxMap, cores int) (*Heap, error) {
	h := &Heap{
		Map:      m,
		lanes:    cores,
		heapBase: headerBytes + uint64(cores)*laneBytes,
		objects:  make(map[uint64]Object),
		freeList: make(map[uint64][]uint64),
	}
	if h.heapBase >= m.Size() {
		return nil, fmt.Errorf("pmem: mapping of %d bytes too small for %d lanes", m.Size(), cores)
	}
	h.bump = h.heapBase
	return h, nil
}

// SetCommitHook installs the software redundancy scheme (nil for none).
func (h *Heap) SetCommitHook(hook CommitHook) { h.hook = hook }

// Object returns the object with the given id.
func (h *Heap) Object(id uint64) (Object, bool) {
	o, ok := h.objects[id]
	return o, ok
}

// NumObjects returns how many objects have ever been allocated (object ids
// are dense in [0, NumObjects)).
func (h *Heap) NumObjects() uint64 { return h.nextID }

// Alloc allocates a payload of size bytes (16-byte aligned, reusing freed
// objects of the same size), persisting the object header and allocator
// state with simulated stores on c. It returns the object id and payload
// offset.
func (h *Heap) Alloc(c *sim.Core, size uint64) (id, off uint64) {
	size = (size + 15) &^ 15
	id = h.nextID
	h.nextID++
	if free := h.freeList[size]; len(free) > 0 {
		off = free[len(free)-1]
		h.freeList[size] = free[:len(free)-1]
	} else {
		off = h.bump + objHeader
		h.bump += objHeader + size
		if h.bump > h.Map.Size() {
			panic(fmt.Sprintf("pmem: heap exhausted (%d of %d bytes)", h.bump, h.Map.Size()))
		}
		h.Map.Store64(c, hdrBump, h.bump) // persist allocator state
	}
	h.Map.Store64(c, off-objHeader, size) // object header
	h.Map.Store64(c, off-objHeader+8, id)
	h.Map.Store64(c, hdrNextID, h.nextID)
	h.objects[id] = Object{Off: off, Size: size}
	return id, off
}

// Free returns an object's storage to the size-class free list. (The free
// list itself is volatile bookkeeping; a production allocator would persist
// it, which only adds a constant number of stores per free.)
func (h *Heap) Free(c *sim.Core, id uint64) {
	o, ok := h.objects[id]
	if !ok {
		panic(fmt.Sprintf("pmem: free of unknown object %d", id))
	}
	delete(h.objects, id)
	h.freeList[o.Size] = append(h.freeList[o.Size], o.Off)
}

// ---------------------------------------------------------------------------
// Undo-log transactions
// ---------------------------------------------------------------------------

// Tx is one undo-log transaction bound to a core (one lane per core).
type Tx struct {
	h       *Heap
	c       *sim.Core
	lane    uint64
	logOff  uint64
	ranges  []Range
	logged  map[uint64]bool // line-granular dedup of snapshots
	entries []logEntry      // snapshots taken, in order, for Abort
	snap    []byte          // scratch for undo images (reused across snapshots)
}

// logEntry locates one undo image in the lane.
type logEntry struct {
	off, n, logData uint64
}

// Begin starts a transaction on core c, persisting the lane state. The
// returned Tx is valid until the core's next Begin (it is recycled per
// lane); Commit or Abort must run before the same core begins again.
func (h *Heap) Begin(c *sim.Core) *Tx {
	if c.ID >= h.lanes {
		panic(fmt.Sprintf("pmem: core %d has no lane (%d lanes)", c.ID, h.lanes))
	}
	if h.txs == nil {
		h.txs = make([]*Tx, h.lanes)
	}
	tx := h.txs[c.ID]
	if tx == nil {
		tx = &Tx{h: h, lane: headerBytes + uint64(c.ID)*laneBytes, logged: make(map[uint64]bool)}
		h.txs[c.ID] = tx
	}
	tx.c = c
	tx.logOff = tx.lane + 8
	tx.ranges = tx.ranges[:0]
	tx.entries = tx.entries[:0]
	clear(tx.logged)
	h.Map.Store64(c, tx.lane+laneState, laneArmed)
	return tx
}

// Snapshot undo-logs [off, off+n) of object objID before modification:
// the old content is loaded and appended to the lane (header + data), as
// libpmemobj's TX_ADD does.
func (tx *Tx) Snapshot(objID, off, n uint64) {
	if tx.logged[off] && n <= 64 {
		tx.mergeRange(objID, off, n)
		return
	}
	tx.logged[off] = true
	if tx.logOff+16+n > tx.lane+laneBytes {
		// Lane full: model libpmemobj's overflow by resetting (the
		// snapshot data still costs its loads and stores).
		tx.logOff = tx.lane + 8
	}
	if uint64(cap(tx.snap)) < n {
		tx.snap = make([]byte, n)
	}
	buf := tx.snap[:n]
	tx.h.Map.Load(tx.c, off, buf)
	tx.h.Map.Store64(tx.c, tx.logOff, off)
	tx.h.Map.Store64(tx.c, tx.logOff+8, n)
	tx.h.Map.Store(tx.c, tx.logOff+16, buf)
	tx.entries = append(tx.entries, logEntry{off: off, n: n, logData: tx.logOff + 16})
	tx.logOff += 16 + (n+15)&^15
	tx.mergeRange(objID, off, n)
}

func (tx *Tx) mergeRange(objID, off, n uint64) {
	for i := range tx.ranges {
		r := &tx.ranges[i]
		if r.ObjID == objID && off >= r.Off && off+n <= r.Off+r.Len {
			return
		}
	}
	tx.ranges = append(tx.ranges, Range{Off: off, Len: n, ObjID: objID})
}

// Write snapshots and then stores data at offset off of object objID.
func (tx *Tx) Write(objID, off uint64, data []byte) {
	tx.Snapshot(objID, off, uint64(len(data)))
	tx.h.Map.Store(tx.c, off, data)
}

// WriteFresh stores into an object allocated within this transaction:
// no undo logging is needed (libpmemobj skips logging for new objects),
// but the range is still recorded so redundancy schemes cover it.
func (tx *Tx) WriteFresh(objID, off uint64, data []byte) {
	tx.mergeRange(objID, off, uint64(len(data)))
	tx.h.Map.Store(tx.c, off, data)
}

// WriteFresh64 is WriteFresh for one 8-byte word.
func (tx *Tx) WriteFresh64(objID, off uint64, v uint64) {
	tx.mergeRange(objID, off, 8)
	tx.h.Map.Store64(tx.c, off, v)
}

// Write64 snapshots and stores one 8-byte word.
func (tx *Tx) Write64(objID, off uint64, v uint64) {
	tx.Snapshot(objID, off, 8)
	tx.h.Map.Store64(tx.c, off, v)
}

// Commit persists the commit record, runs the TxB hook (software redundancy
// schemes), and releases the lane.
func (tx *Tx) Commit() {
	tx.h.Map.Store64(tx.c, tx.lane+laneState, laneCmt)
	if tx.h.hook != nil && len(tx.ranges) > 0 {
		tx.h.hook.OnCommit(tx.c, tx.h, tx.ranges)
	}
	tx.h.Map.Store64(tx.c, tx.lane+laneState, laneIdle)
	tx.ranges = tx.ranges[:0]
	tx.entries = tx.entries[:0]
}

// Abort rolls the transaction back: every snapshot's undo image is applied
// in reverse order (as libpmemobj does on tx abort or crash recovery), the
// lane is released, and no TxB hook runs — aborted work needs no
// redundancy update because the data returns to its pre-transaction state.
// Writes to fresh objects (WriteFresh) are not rolled back; callers discard
// those objects.
func (tx *Tx) Abort() {
	buf := make([]byte, 64)
	for i := len(tx.entries) - 1; i >= 0; i-- {
		e := tx.entries[i]
		if uint64(len(buf)) < e.n {
			buf = make([]byte, e.n)
		}
		tx.h.Map.Load(tx.c, e.logData, buf[:e.n])
		tx.h.Map.Store(tx.c, e.off, buf[:e.n])
	}
	tx.h.Map.Store64(tx.c, tx.lane+laneState, laneIdle)
	tx.ranges = tx.ranges[:0]
	tx.entries = tx.entries[:0]
}

// Ranges exposes the modified ranges (tests use it).
func (tx *Tx) Ranges() []Range { return tx.ranges }
