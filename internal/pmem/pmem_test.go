package pmem_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
)

func fixture(t *testing.T, d param.Design) (*harness.System, *pmem.Heap) {
	t.Helper()
	sys, err := harness.NewSystem(param.SmallTest(d))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("heap", 4<<20, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return sys, h
}

func TestAllocWriteRead(t *testing.T) {
	sys, h := fixture(t, param.Tvarak)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 100)
		if id != 0 {
			t.Errorf("first object id = %d", id)
		}
		data := bytes.Repeat([]byte{0x42}, 100)
		h.Map.Store(c, off, data)
		got := make([]byte, 100)
		h.Map.Load(c, off, got)
		if !bytes.Equal(got, data) {
			t.Error("object round trip failed")
		}
		obj, ok := h.Object(id)
		if !ok || obj.Off != off || obj.Size != 112 { // rounded to 16
			t.Errorf("Object(%d) = %+v ok=%v", id, obj, ok)
		}
	}})
}

func TestAllocIDsAreDense(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		for i := uint64(0); i < 100; i++ {
			id, _ := h.Alloc(c, 32)
			if id != i {
				t.Fatalf("alloc %d returned id %d", i, id)
			}
		}
		if h.NumObjects() != 100 {
			t.Errorf("NumObjects = %d", h.NumObjects())
		}
	}})
}

func TestFreeReusesStorage(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		h.Free(c, id)
		id2, off2 := h.Alloc(c, 64)
		if off2 != off {
			t.Errorf("freed storage not reused: %#x vs %#x", off2, off)
		}
		if id2 == id {
			t.Error("object id reused (ids must stay unique)")
		}
		if _, ok := h.Object(id); ok {
			t.Error("freed object still visible")
		}
	}})
}

func TestTxWriteRecordsRanges(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 128)
		tx := h.Begin(c)
		tx.Write64(id, off, 7)
		tx.Write(id, off+8, []byte{1, 2, 3})
		tx.Write64(id, off, 9) // same word: deduped by merge
		rs := tx.Ranges()
		if len(rs) != 2 {
			t.Fatalf("ranges = %+v, want 2 entries", rs)
		}
		for _, r := range rs {
			if r.ObjID != id {
				t.Errorf("range object = %d, want %d", r.ObjID, id)
			}
		}
		tx.Commit()
		if len(tx.Ranges()) != 0 {
			t.Error("ranges survive commit")
		}
		if got := h.Map.Load64(c, off); got != 9 {
			t.Errorf("committed value = %d, want 9", got)
		}
	}})
}

// hookRecorder captures commit-hook invocations.
type hookRecorder struct {
	calls  int
	ranges int
}

func (r *hookRecorder) OnCommit(c *sim.Core, h *pmem.Heap, rs []pmem.Range) {
	r.calls++
	r.ranges += len(rs)
}

func TestCommitHookFiresOnlyWithRanges(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	rec := &hookRecorder{}
	h.SetCommitHook(rec)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		// Empty transaction: metadata writes but no hook.
		tx := h.Begin(c)
		tx.Commit()
		if rec.calls != 0 {
			t.Error("hook fired for empty transaction")
		}
		id, off := h.Alloc(c, 64)
		tx = h.Begin(c)
		tx.Write64(id, off, 1)
		tx.Commit()
		if rec.calls != 1 || rec.ranges != 1 {
			t.Errorf("hook calls=%d ranges=%d, want 1/1", rec.calls, rec.ranges)
		}
	}})
}

func TestSnapshotWritesUndoImageToNVM(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		h.Map.Store64(c, off, 0xdead)
		tx := h.Begin(c)
		tx.Write64(id, off, 0xbeef)
		tx.Commit()
	}})
	// The undo log (lane region) must hold the old value somewhere: scan
	// the first lane for 0xdead after drain. Lanes start at offset 64 of
	// the heap file.
	sys.Eng.DropCaches()
	found := false
	lane := make([]byte, 8<<10)
	for n := 0; n < len(lane); n += 4096 {
		sys.Eng.NVM.ReadRaw(mapAddr(sys, "heap", uint64(64+n)), lane[n:n+min(4096, len(lane)-n)])
	}
	for i := 0; i+8 <= len(lane); i += 8 {
		if le64(lane[i:]) == 0xdead {
			found = true
			break
		}
	}
	if !found {
		t.Error("undo image (old value) not found in the log lane")
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func mapAddr(sys *harness.System, name string, off uint64) uint64 {
	f, err := sys.FS.Open(name)
	if err != nil {
		panic(err)
	}
	return sys.FS.Geometry().DataIndexAddr(f.StartDI, off)
}

func TestTxGeneratesNVMWrites(t *testing.T) {
	// The paper's observation: transactions write persistent metadata even
	// when the application writes nothing (Redis get-only). Measure that
	// empty Begin/Commit pairs still dirty NVM lines.
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		h.Alloc(c, 64) // touch heap
	}})
	sys.Eng.ResetMeasurement()
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		for i := 0; i < 100; i++ {
			tx := h.Begin(c)
			tx.Commit()
		}
	}})
	if sys.Eng.St.NVM.DataWrites == 0 {
		t.Error("empty transactions produced no NVM writes (lane state should be persistent)")
	}
}

func TestLaneExhaustionWraps(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 4096)
		rng := rand.New(rand.NewSource(1))
		// Snapshot far more than one 8 KB lane holds.
		for i := 0; i < 50; i++ {
			tx := h.Begin(c)
			o := uint64(rng.Intn(3800))
			tx.Write(id, off+o, bytes.Repeat([]byte{byte(i)}, 200))
			tx.Commit()
		}
	}})
}

func TestHeapExhaustionPanics(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		defer func() {
			if recover() == nil {
				t.Error("allocating beyond heap capacity did not panic")
			}
		}()
		for {
			h.Alloc(c, 1<<20)
		}
	}})
}

func TestPerCoreLanesAreIndependent(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	var offs [2]uint64
	var ids [2]uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		ids[0], offs[0] = h.Alloc(c, 64)
		ids[1], offs[1] = h.Alloc(c, 64)
	}})
	sys.Eng.Run([]func(*sim.Core){
		func(c *sim.Core) {
			for i := 0; i < 200; i++ {
				tx := h.Begin(c)
				tx.Write64(ids[0], offs[0], uint64(i))
				tx.Commit()
			}
		},
		func(c *sim.Core) {
			for i := 0; i < 200; i++ {
				tx := h.Begin(c)
				tx.Write64(ids[1], offs[1], uint64(i)*3)
				tx.Commit()
			}
		},
	})
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		if got := h.Map.Load64(c, offs[0]); got != 199 {
			t.Errorf("core0 object = %d, want 199", got)
		}
		if got := h.Map.Load64(c, offs[1]); got != 199*3 {
			t.Errorf("core1 object = %d, want 597", got)
		}
	}})
}

func TestAbortRollsBack(t *testing.T) {
	sys, h := fixture(t, param.Tvarak)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 128)
		orig := bytes.Repeat([]byte{0x10}, 128)
		h.Map.Store(c, off, orig)
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{0x20}, 128))
		tx.Write64(id, off+8, 0x3030303030303030)
		tx.Abort()
		got := make([]byte, 128)
		h.Map.Load(c, off, got)
		if !bytes.Equal(got, orig) {
			t.Error("abort did not restore pre-transaction content")
		}
		// A fresh transaction works after an abort.
		tx = h.Begin(c)
		tx.Write64(id, off, 42)
		tx.Commit()
		if h.Map.Load64(c, off) != 42 {
			t.Error("transaction after abort broken")
		}
	}})
	// TVARAK stays consistent through the rollback stores.
	if sys.Eng.St.CorruptionsDetected != 0 {
		t.Error("rollback produced corruption detections")
	}
}

func TestAbortDoesNotRunHook(t *testing.T) {
	sys, h := fixture(t, param.Baseline)
	rec := &hookRecorder{}
	h.SetCommitHook(rec)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		tx := h.Begin(c)
		tx.Write64(id, off, 1)
		tx.Abort()
	}})
	if rec.calls != 0 {
		t.Error("TxB hook ran for an aborted transaction")
	}
}

func TestAbortReverseOrderOverlappingSnapshots(t *testing.T) {
	// Overlapping snapshots of the same word: reverse-order replay must
	// restore the ORIGINAL value, not an intermediate one.
	sys, h := fixture(t, param.Baseline)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		h.Map.Store64(c, off, 111)
		tx := h.Begin(c)
		tx.Snapshot(id, off, 8)
		h.Map.Store64(c, off, 222)
		// Force a second snapshot of the same word by exceeding the
		// line-dedup (Snapshot dedups ≤64B at same offset, so snapshot a
		// larger range covering it).
		tx.Snapshot(id, off, 65)
		h.Map.Store64(c, off, 333)
		tx.Abort()
		if got := h.Map.Load64(c, off); got != 111 {
			t.Errorf("after abort value = %d, want original 111", got)
		}
	}})
}
