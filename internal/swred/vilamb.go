package swred

import (
	"fmt"
	"slices"

	"tvarak/internal/daxfs"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// Vilamb implements the asynchronous software redundancy family of Table
// I's Vilamb row (Kateja et al., the paper's reference [33]), generalized
// into the parameterized design space of param.AsyncConfig: foreground
// writes only record dirtiness (modelling hardware page-table dirty bits at
// page granularity, or finer software tracking), and a daemon running on a
// dedicated core reconciles redundancy every epoch. Batching means a line
// dirtied many times within an epoch pays for redundancy once — the
// "configurable overhead" of Table I — at the price of a window of
// vulnerability in which corruption of dirty data is silently absorbed.
//
// Departing deliberately from Vilamb's page-granular checksums, the scheme
// keeps a 4 B CRC-32C per 64 B line (same rate as TVARAK's
// DAX-CL-checksums). Line-granular CRCs are what make the rest of the
// family sound: the scrub pass can attribute a mismatch to one line, and a
// parity reconstruction can be verified against the stored CRC before it
// is written back — repair never silently replaces data with a stale or
// corrupt reconstruction; an unverifiable line is quarantined (detected,
// unrepaired) instead.
type Vilamb struct {
	fs  *daxfs.FS
	eng *sim.Engine
	m   *daxfs.DaxMap
	cfg param.AsyncConfig

	lineCsumDI uint64 // data index of the per-line CRC table
	lineSize   uint64
	ps         uint64
	lpp        uint64 // lines per page

	// EpochCyc is the daemon's sleep between passes (effective value of
	// cfg.EpochCyc; kept as a field so tests can override it directly).
	EpochCyc uint64

	dirty dirtySet

	// staged holds the battery preset's per-line intent CRCs, modelling a
	// battery-backed (hence durable) DRAM staging table written at commit.
	staged map[uint64]uint32

	// covered lines have a valid stored CRC from a previous reconcile and
	// are what the scrub pass verifies; quarantined lines were detected
	// corrupt but could not be repaired from parity.
	covered     map[uint64]bool
	quarantined map[uint64]bool

	// Struct-owned scratch: the reconcile path must not allocate per line
	// (pinned by a testing.AllocsPerRun gate).
	line, sib, parity, recon []byte
	sibs                     []uint64
	runs                     []dirtyRun
	keys                     []uint64

	// Daemon activity counters for tests and reports (the same values are
	// folded into the engine's Stats as Async* fields).
	Epochs         uint64
	PagesProcessed uint64
	LinesProcessed uint64
	ScrubChecks    uint64
	Quarantined    uint64
	// WindowCycSum/WindowLines accumulate the realized vulnerability
	// window: for every reconciled line, the cycles between its first
	// dirtying and the reconcile that re-established its redundancy.
	WindowCycSum uint64
	WindowLines  uint64
}

// dirtyRun is a run of dirty lines [Start, End) with the earliest cycle at
// which any of them was dirtied.
type dirtyRun struct {
	Start, End uint64
	Cyc        uint64
}

// dirtySet tracks dirtied lines at the configured granularity. Page
// granularity stores dirty pages (Vilamb's page-table dirty bits), line
// granularity individual lines, range granularity sorted coalesced runs.
type dirtySet struct {
	gran  param.DirtyGran
	lpp   uint64
	pages map[uint64]uint64 // page index → first-dirty cycle
	lines map[uint64]uint64 // line index → first-dirty cycle
	runs  []dirtyRun        // sorted, disjoint, coalesced
}

func newDirtySet(gran param.DirtyGran, lpp uint64) dirtySet {
	d := dirtySet{gran: gran, lpp: lpp}
	switch gran {
	case param.GranPage:
		d.pages = make(map[uint64]uint64)
	case param.GranLine:
		d.lines = make(map[uint64]uint64)
	}
	return d
}

// markLines records the line range [start, end) as dirtied at cycle cyc.
// Page granularity rounds out to whole pages, which is exactly the
// granularity's coverage cost.
func (d *dirtySet) markLines(start, end, cyc uint64) {
	if start >= end {
		return
	}
	switch d.gran {
	case param.GranPage:
		for p := start / d.lpp; p <= (end-1)/d.lpp; p++ {
			if _, ok := d.pages[p]; !ok {
				d.pages[p] = cyc
			}
		}
	case param.GranLine:
		for l := start; l < end; l++ {
			if _, ok := d.lines[l]; !ok {
				d.lines[l] = cyc
			}
		}
	case param.GranRange:
		d.insertRun(dirtyRun{Start: start, End: end, Cyc: cyc})
	}
}

// insertRun inserts a run into the sorted run list, coalescing overlapping
// and adjacent runs (keeping the earliest cycle).
func (d *dirtySet) insertRun(r dirtyRun) {
	// Find the insertion point: first run with Start > r.Start.
	i := 0
	for i < len(d.runs) && d.runs[i].Start <= r.Start {
		i++
	}
	d.runs = append(d.runs, dirtyRun{})
	copy(d.runs[i+1:], d.runs[i:])
	d.runs[i] = r
	// Coalesce with the predecessor and any overlapped successors.
	if i > 0 && d.runs[i-1].End >= d.runs[i].Start {
		i--
	}
	for i+1 < len(d.runs) && d.runs[i].End >= d.runs[i+1].Start {
		n := d.runs[i+1]
		if n.End > d.runs[i].End {
			d.runs[i].End = n.End
		}
		if n.Cyc < d.runs[i].Cyc {
			d.runs[i].Cyc = n.Cyc
		}
		d.runs = append(d.runs[:i+1], d.runs[i+2:]...)
	}
}

// covers reports whether line is dirty.
func (d *dirtySet) covers(line uint64) bool {
	switch d.gran {
	case param.GranPage:
		_, ok := d.pages[line/d.lpp]
		return ok
	case param.GranLine:
		_, ok := d.lines[line]
		return ok
	}
	for _, r := range d.runs {
		if line < r.Start {
			return false
		}
		if line < r.End {
			return true
		}
	}
	return false
}

// lineCount returns how many lines are covered.
func (d *dirtySet) lineCount() uint64 {
	switch d.gran {
	case param.GranPage:
		return uint64(len(d.pages)) * d.lpp
	case param.GranLine:
		return uint64(len(d.lines))
	}
	var n uint64
	for _, r := range d.runs {
		n += r.End - r.Start
	}
	return n
}

// pageCount returns how many distinct pages hold covered lines.
func (d *dirtySet) pageCount() int {
	switch d.gran {
	case param.GranPage:
		return len(d.pages)
	case param.GranLine:
		pages := make(map[uint64]bool, len(d.lines))
		for l := range d.lines {
			pages[l/d.lpp] = true
		}
		return len(pages)
	}
	n := 0
	var last uint64
	first := true
	for _, r := range d.runs {
		p0, p1 := r.Start/d.lpp, (r.End-1)/d.lpp
		if !first && p0 == last {
			p0++
		}
		if p0 <= p1 {
			n += int(p1 - p0 + 1)
			last = p1
			first = false
		}
	}
	return n
}

// snapshotRuns appends every dirty run in ascending line order.
func (d *dirtySet) snapshotRuns(dst []dirtyRun, keys []uint64) ([]dirtyRun, []uint64) {
	switch d.gran {
	case param.GranPage:
		keys = keys[:0]
		for p := range d.pages {
			keys = append(keys, p)
		}
		slices.Sort(keys)
		for _, p := range keys {
			dst = append(dst, dirtyRun{Start: p * d.lpp, End: (p + 1) * d.lpp, Cyc: d.pages[p]})
		}
	case param.GranLine:
		keys = keys[:0]
		for l := range d.lines {
			keys = append(keys, l)
		}
		slices.Sort(keys)
		for _, l := range keys {
			dst = append(dst, dirtyRun{Start: l, End: l + 1, Cyc: d.lines[l]})
		}
	case param.GranRange:
		dst = append(dst, d.runs...)
	}
	return dst, keys
}

// clearRun removes the fully-processed run r (which must have come from
// snapshotRuns) from the set.
func (d *dirtySet) clearRun(r dirtyRun) {
	switch d.gran {
	case param.GranPage:
		delete(d.pages, r.Start/d.lpp)
	case param.GranLine:
		delete(d.lines, r.Start)
	case param.GranRange:
		for i, q := range d.runs {
			if q.Start == r.Start && q.End == r.End {
				d.runs = append(d.runs[:i], d.runs[i+1:]...)
				return
			}
		}
	}
}

func (d *dirtySet) empty() bool {
	return len(d.pages) == 0 && len(d.lines) == 0 && len(d.runs) == 0
}

// AttachVilamb allocates the scheme's line-CRC table for heap h and
// installs its commit hook.
func AttachVilamb(fs *daxfs.FS, h *pmem.Heap, cfg param.AsyncConfig) (*Vilamb, error) {
	v, err := newVilamb(fs, h.Map, cfg)
	if err != nil {
		return nil, err
	}
	h.SetCommitHook(v)
	return v, nil
}

// AttachVilambRaw attaches the scheme to a raw (non-transactional) mapping;
// the workload reports its writes through MarkDirty.
func AttachVilambRaw(fs *daxfs.FS, m *daxfs.DaxMap, cfg param.AsyncConfig) (*Vilamb, error) {
	return newVilamb(fs, m, cfg)
}

func newVilamb(fs *daxfs.FS, m *daxfs.DaxMap, cfg param.AsyncConfig) (*Vilamb, error) {
	geo := fs.Geometry()
	cfg = cfg.Effective()
	ls := uint64(geo.LineSize)
	v := &Vilamb{
		fs:          fs,
		eng:         fs.Engine(),
		m:           m,
		cfg:         cfg,
		lineSize:    ls,
		ps:          uint64(geo.PageSize),
		lpp:         uint64(geo.LinesPerPage()),
		EpochCyc:    cfg.EpochCyc,
		dirty:       newDirtySet(cfg.DirtyGran, uint64(geo.LinesPerPage())),
		covered:     make(map[uint64]bool),
		quarantined: make(map[uint64]bool),
		line:        make([]byte, ls),
		sib:         make([]byte, ls),
		parity:      make([]byte, ls),
		recon:       make([]byte, ls),
		sibs:        make([]uint64, 0, geo.DIMMs),
	}
	if cfg.Battery {
		v.staged = make(map[uint64]uint32)
	}
	mapLines := m.Size() / ls
	pages := (mapLines*xsum.Size + v.ps - 1) / v.ps
	di, err := fs.AllocRaw(pages)
	if err != nil {
		return nil, fmt.Errorf("swred: vilamb checksum table: %w", err)
	}
	v.lineCsumDI = di
	return v, nil
}

// Config returns the effective async configuration.
func (v *Vilamb) Config() param.AsyncConfig { return v.cfg }

// Mapping returns the DAX mapping this scheme protects.
func (v *Vilamb) Mapping() *daxfs.DaxMap { return v.m }

// csumAddr returns the physical address of line's stored CRC.
func (v *Vilamb) csumAddr(line uint64) uint64 {
	return v.fs.Geometry().DataIndexAddr(v.lineCsumDI, line*xsum.Size)
}

// OnCommit implements pmem.CommitHook: record dirtiness at the configured
// granularity. At page granularity this models page-table dirty-bit
// tracking, which costs the foreground nothing — the whole point of
// Vilamb's design; finer granularities stay bookkeeping-only too. Under the
// battery preset the commit additionally computes and stages per-line
// intent CRCs (the lines are cache-hot, so the loads are near-free; the
// staging table lives in battery-backed DRAM).
func (v *Vilamb) OnCommit(c *sim.Core, h *pmem.Heap, ranges []pmem.Range) {
	for _, r := range ranges {
		v.MarkDirty(c, r.Off, r.Len)
	}
}

// MarkDirty records a write of [off, off+n) — from the commit hook, or
// directly from workloads driving a raw mapping. c may be nil for untimed
// bookkeeping (then the battery preset cannot stage and the window
// accounting skips the mark).
func (v *Vilamb) MarkDirty(c *sim.Core, off, n uint64) {
	if n == 0 {
		// off+n-1 underflows at off==0 and would mark ~2^64 lines.
		return
	}
	start := off / v.lineSize
	end := (off+n-1)/v.lineSize + 1
	var cyc uint64
	if c != nil {
		cyc = c.Clock
	}
	v.dirty.markLines(start, end, cyc)
	if v.staged != nil && c != nil {
		for l := start; l < end; l++ {
			v.m.Load(c, l*v.lineSize, v.line)
			c.Compute(1 + v.lineSize/8)
			v.staged[l] = xsum.Checksum(v.line)
		}
	}
}

// Daemon returns the worker that runs the scheme's background pass on its
// own core: every epoch it reconciles all lines dirtied since the last
// pass (incremental mode spreads that work over sub-slices of the epoch).
// It exits after a final reconciliation pass once *stop is set (the harness
// sets it when the application workers finish).
func (v *Vilamb) Daemon(stop *bool) func(*sim.Core) {
	return func(c *sim.Core) {
		const slice = 10000 // interruptible sleep
		subs := uint64(1)
		if v.cfg.Incremental {
			subs = IncrementalSlices
		}
		interval := max(1, v.EpochCyc/subs)
		sub := uint64(0)
		for !*stop {
			for slept := uint64(0); !*stop && slept < interval; {
				step := min(slice, interval-slept)
				c.Compute(step)
				slept += step
			}
			sub++
			if sub%subs == 0 {
				v.ProcessEpoch(c)
			} else {
				v.ProcessPartial(c, int(subs-sub%subs))
			}
		}
		v.ProcessEpoch(c) // reconcile the tail so fixed work is covered
	}
}

// IncrementalSlices is how many sub-slices incremental mode splits each
// epoch into.
const IncrementalSlices = 8

// ProcessEpoch runs one full reconciliation pass: scrub previously
// reconciled lines (when configured), then recompute checksums and parity
// for every dirty line.
func (v *Vilamb) ProcessEpoch(c *sim.Core) {
	if v.cfg.Scrub {
		v.scrub(c)
	}
	v.processRuns(c, -1)
	v.Epochs++
	v.eng.St.AsyncEpochs++
}

// ProcessPartial reconciles roughly 1/share of the pending lines (at least
// one run), in ascending line order: incremental mode's sub-slice step. It
// neither scrubs nor counts an epoch.
func (v *Vilamb) ProcessPartial(c *sim.Core, share int) {
	if share < 1 {
		share = 1
	}
	pending := v.dirty.lineCount()
	if pending == 0 {
		return
	}
	budget := int((pending + uint64(share) - 1) / uint64(share))
	v.processRuns(c, budget)
}

// processRuns reconciles pending runs in ascending line order until budget
// lines have been processed (budget < 0 drains everything). Budget is
// checked at run boundaries so page-granular runs are never split.
func (v *Vilamb) processRuns(c *sim.Core, budget int) {
	if v.dirty.empty() {
		return
	}
	v.runs, v.keys = v.dirty.snapshotRuns(v.runs[:0], v.keys)
	processed := 0
	lastPage := uint64(1) << 63
	for _, r := range v.runs {
		if budget >= 0 && processed >= budget {
			break
		}
		for line := r.Start; line < r.End; line++ {
			if p := line / v.lpp; p != lastPage {
				lastPage = p
				v.PagesProcessed++
				v.eng.St.AsyncPagesReconciled++
			}
			v.reconcileLine(c, line, r.Cyc)
			processed++
		}
		v.dirty.clearRun(r)
	}
}

// reconcileLine re-establishes redundancy for one dirty line: CRC over the
// current content (verified against the staged intent CRC first under the
// battery preset), then a full parity recompute for its stripe group.
func (v *Vilamb) reconcileLine(c *sim.Core, line, markCyc uint64) {
	geo := v.fs.Geometry()
	off := line * v.lineSize
	addr := geo.LineAddr(v.m.Addr(off))
	v.m.Load(c, off, v.line)
	c.Compute(1 + v.lineSize/8)
	crc := xsum.Checksum(v.line)
	if v.staged != nil {
		if want, ok := v.staged[line]; ok {
			delete(v.staged, line)
			if want != crc {
				// The deferred update pass caught the corruption before
				// absorbing it — the battery preset's zero silent window.
				v.eng.St.CorruptionsDetected++
				v.eng.Emit(obs.EvCorruption, c.Clock, addr, 0)
				if !v.tryRepair(c, line, addr, want) {
					v.quarantine(line)
					return
				}
				crc = want
			}
		}
	}
	v.LinesProcessed++
	v.eng.St.AsyncLinesReconciled++
	c.Store32(v.csumAddr(line), crc)
	// Parity for the line's stripe group, recomputed from siblings.
	copy(v.parity, v.line)
	v.sibs = geo.AppendSiblingLineAddrs(v.sibs[:0], addr)
	for _, sa := range v.sibs {
		c.Load(sa, v.sib)
		xsum.XORInto(v.parity, v.sib)
	}
	c.Compute(uint64(geo.DIMMs - 1))
	c.Store(geo.ParityLineAddr(addr), v.parity)
	v.covered[line] = true
	delete(v.quarantined, line)
	if markCyc != 0 && c.Clock > markCyc {
		w := c.Clock - markCyc
		v.WindowCycSum += w
		v.WindowLines++
		v.eng.St.AsyncWindowCyc += w
		v.eng.St.AsyncWindowLines++
	}
}

// scrub verifies every previously reconciled, currently clean line against
// its stored CRC, detecting out-of-window corruption (bit rot, misdirected
// writes landing on clean data) and repairing it from parity when the
// reconstruction verifies.
func (v *Vilamb) scrub(c *sim.Core) {
	if len(v.covered) == 0 {
		return
	}
	geo := v.fs.Geometry()
	v.keys = v.keys[:0]
	for l := range v.covered {
		v.keys = append(v.keys, l)
	}
	slices.Sort(v.keys)
	for _, line := range v.keys {
		if v.dirty.covers(line) || v.quarantined[line] {
			continue
		}
		off := line * v.lineSize
		addr := geo.LineAddr(v.m.Addr(off))
		v.m.Load(c, off, v.line)
		c.Compute(1 + v.lineSize/8)
		stored := c.Load32(v.csumAddr(line))
		v.ScrubChecks++
		v.eng.St.AsyncScrubChecks++
		if xsum.Checksum(v.line) == stored {
			continue
		}
		v.eng.St.CorruptionsDetected++
		v.eng.Emit(obs.EvCorruption, c.Clock, addr, 0)
		if !v.tryRepair(c, line, addr, stored) {
			v.quarantine(line)
		}
	}
}

// tryRepair reconstructs the line from parity and siblings and restores it
// only if the reconstruction's CRC matches want; a mismatch (stale parity —
// a stripe member is pending — or multi-corruption) leaves the line alone
// and reports false. The CRC check is what makes asynchronous repair safe:
// it can never silently replace data with a wrong reconstruction.
func (v *Vilamb) tryRepair(c *sim.Core, line, addr uint64, want uint32) bool {
	geo := v.fs.Geometry()
	c.Load(geo.ParityLineAddr(addr), v.recon)
	v.sibs = geo.AppendSiblingLineAddrs(v.sibs[:0], addr)
	for _, sa := range v.sibs {
		c.Load(sa, v.sib)
		xsum.XORInto(v.recon, v.sib)
	}
	c.Compute(uint64(geo.DIMMs-1) + 1 + v.lineSize/8)
	if xsum.Checksum(v.recon) != want {
		return false
	}
	v.m.Store(c, line*v.lineSize, v.recon)
	copy(v.line, v.recon)
	v.eng.St.Recoveries++
	v.eng.Emit(obs.EvRecovery, c.Clock, addr, 0)
	return true
}

func (v *Vilamb) quarantine(line uint64) {
	if !v.quarantined[line] {
		v.quarantined[line] = true
		v.Quarantined++
		v.eng.St.AsyncQuarantined++
	}
}

// DirtyPages reports how many distinct pages hold lines awaiting the next
// epoch (the window of vulnerability, in pages).
func (v *Vilamb) DirtyPages() int { return v.dirty.pageCount() }

// DirtyLines reports how many lines await the next epoch.
func (v *Vilamb) DirtyLines() uint64 { return v.dirty.lineCount() }

// lineOf maps a physical line address into this mapping's line index.
func (v *Vilamb) lineOf(addr uint64) (uint64, bool) {
	geo := v.fs.Geometry()
	if !geo.IsNVM(addr) {
		return 0, false
	}
	p := geo.PageOf(addr)
	if geo.IsParityPage(p) {
		return 0, false
	}
	di := geo.DataIndexOf(p)
	f := v.m.File()
	if di < f.StartDI || di >= f.StartDI+f.Pages {
		return 0, false
	}
	off := (di-f.StartDI)*v.ps + (addr-geo.PageBase(p))&^(v.lineSize-1)
	return off / v.lineSize, true
}

// CoversAddr reports whether the physical line at addr belongs to this
// scheme's mapping.
func (v *Vilamb) CoversAddr(addr uint64) bool {
	_, ok := v.lineOf(addr)
	return ok
}

// Pending reports whether the physical line at addr is dirty — inside the
// scheme's open vulnerability window, where corruption is expected-silent
// (except under the battery preset, which verifies before absorbing).
func (v *Vilamb) Pending(addr uint64) bool {
	line, ok := v.lineOf(addr)
	return ok && v.dirty.covers(line)
}

// Tracked reports whether the scheme has ever been told about the physical
// line at addr: it is dirty now or was reconciled before. Only tracked
// lines are under the scheme's protection — data written into the mapping
// without a MarkDirty (heap allocator metadata, setup-time raw fills) is
// outside its coverage, exactly like data outside a TxB scheme's
// transactional interface.
func (v *Vilamb) Tracked(addr uint64) bool {
	line, ok := v.lineOf(addr)
	return ok && (v.dirty.covers(line) || v.covered[line])
}

// QuarantinedAddr reports whether the physical line at addr was detected
// corrupt but could not be repaired from parity.
func (v *Vilamb) QuarantinedAddr(addr uint64) bool {
	line, ok := v.lineOf(addr)
	return ok && v.quarantined[line]
}
