package swred

import (
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// Vilamb implements the asynchronous software redundancy of Table I's
// Vilamb row (Kateja et al., the paper's reference [33]): transactions only
// mark pages dirty (modelling hardware page-table dirty bits, so the
// foreground cost is negligible), and a daemon running on a dedicated core
// batches page-checksum and parity updates once per epoch. Batching means a
// page dirtied many times within an epoch pays for redundancy once — the
// "configurable overhead" of Table I — at the price of windows of
// vulnerability in which corruption is silent.
type Vilamb struct {
	fs *daxfs.FS
	m  *daxfs.DaxMap

	pageCsumDI uint64
	lineSize   uint64

	// EpochCyc is the daemon's sleep between passes.
	EpochCyc uint64

	dirty map[uint64]bool // mapping page index → dirtied this epoch

	// Epochs and PagesProcessed count daemon activity for tests/reports.
	Epochs         uint64
	PagesProcessed uint64
}

// AttachVilamb allocates Vilamb's page checksum table for heap h and
// installs its (bookkeeping-only) commit hook.
func AttachVilamb(fs *daxfs.FS, h *pmem.Heap, epochCyc uint64) (*Vilamb, error) {
	geo := fs.Geometry()
	v := &Vilamb{
		fs:       fs,
		m:        h.Map,
		lineSize: uint64(geo.LineSize),
		EpochCyc: epochCyc,
		dirty:    make(map[uint64]bool),
	}
	mapPages := h.Map.Size() / uint64(geo.PageSize)
	pages := (mapPages*xsum.Size + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
	di, err := fs.AllocRaw(pages)
	if err != nil {
		return nil, fmt.Errorf("swred: vilamb checksum table: %w", err)
	}
	v.pageCsumDI = di
	h.SetCommitHook(v)
	return v, nil
}

// OnCommit implements pmem.CommitHook: record dirtied pages. This models
// page-table dirty-bit tracking, which costs the foreground nothing — the
// whole point of Vilamb's design.
func (v *Vilamb) OnCommit(c *sim.Core, h *pmem.Heap, ranges []pmem.Range) {
	ps := uint64(v.fs.Geometry().PageSize)
	for _, r := range ranges {
		if r.Len == 0 {
			// Off+Len-1 underflows at Off==0 and would mark ~2^64 pages.
			continue
		}
		for p := r.Off / ps; p <= (r.Off+r.Len-1)/ps; p++ {
			v.dirty[p] = true
		}
	}
}

// MarkDirty records a raw (non-transactional) write, for mappings driven
// without a heap.
func (v *Vilamb) MarkDirty(off, n uint64) {
	if n == 0 {
		return
	}
	ps := uint64(v.fs.Geometry().PageSize)
	for p := off / ps; p <= (off+n-1)/ps; p++ {
		v.dirty[p] = true
	}
}

// Daemon returns the worker that runs Vilamb's background pass on its own
// core: every epoch it processes all pages dirtied since the last pass.
// It exits after a final reconciliation pass once *stop is set (the harness
// sets it when the application workers finish).
func (v *Vilamb) Daemon(stop *bool) func(*sim.Core) {
	return func(c *sim.Core) {
		const slice = 10000 // interruptible sleep
		for !*stop {
			for slept := uint64(0); !*stop && slept < v.EpochCyc; {
				step := min(slice, v.EpochCyc-slept)
				c.Compute(step)
				slept += step
			}
			v.ProcessEpoch(c)
		}
		v.ProcessEpoch(c) // reconcile the tail so fixed work is covered
	}
}

// ProcessEpoch recomputes page checksums and parity for every dirty page.
func (v *Vilamb) ProcessEpoch(c *sim.Core) {
	if len(v.dirty) == 0 {
		v.Epochs++
		return
	}
	geo := v.fs.Geometry()
	ps := uint64(geo.PageSize)
	page := make([]byte, ps)
	sib := make([]byte, v.lineSize)
	parity := make([]byte, v.lineSize)
	// Deterministic order: ascending page index.
	pages := make([]uint64, 0, len(v.dirty))
	for p := range v.dirty {
		pages = append(pages, p)
	}
	for i := 1; i < len(pages); i++ { // insertion sort, small sets
		for j := i; j > 0 && pages[j] < pages[j-1]; j-- {
			pages[j], pages[j-1] = pages[j-1], pages[j]
		}
	}
	for _, p := range pages {
		delete(v.dirty, p)
		v.PagesProcessed++
		v.m.Load(c, p*ps, page)
		c.Compute(1 + ps/8)
		c.Store32(geo.DataIndexAddr(v.pageCsumDI, p*xsum.Size), xsum.Checksum(page))
		// Parity for every line of the page, recomputed from siblings.
		for lo := uint64(0); lo < ps; lo += v.lineSize {
			off := p*ps + lo
			addr := geo.LineAddr(v.m.Addr(off))
			copy(parity, page[lo:lo+v.lineSize])
			for _, sa := range geo.SiblingLineAddrs(addr) {
				c.Load(sa, sib)
				xsum.XORInto(parity, sib)
			}
			c.Compute(uint64(geo.DIMMs - 1))
			c.Store(geo.ParityLineAddr(addr), parity)
		}
	}
	v.Epochs++
}

// DirtyPages reports how many pages await the next epoch (the window of
// vulnerability, in pages).
func (v *Vilamb) DirtyPages() int { return len(v.dirty) }
