package swred

import (
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// RawScheme covers raw DAX mappings (fio, stream) under the TxB software
// designs: every application write is followed, inline, by the scheme's
// checksum and parity work over the written range — the transaction
// boundary of a storage engine that flushes per write. Reads are never
// verified (Table I).
type RawScheme struct {
	design param.Design
	fs     *daxfs.FS
	m      *daxfs.DaxMap

	blockBytes  uint64
	blockCsumDI uint64 // object mode: 4 B per block
	pageCsumDI  uint64 // page mode: 4 B per page
	lineSize    uint64

	// Per-core undo-log lanes: Table I's software schemes only cover data
	// accessed through their transactional interface, so every raw write
	// pays the transactional envelope (state stores + undo image).
	laneDI    uint64
	laneBytes uint64
	laneOff   []uint64 // per-core cursor within its lane
}

// AttachRaw allocates checksum tables for mapping m under the given TxB
// design. blockBytes is the object granularity for TxB-Object-Csums
// (typically the application's write granularity).
func AttachRaw(fs *daxfs.FS, m *daxfs.DaxMap, design param.Design, blockBytes uint64) (*RawScheme, error) {
	if design != param.TxBObjectCsums && design != param.TxBPageCsums {
		return nil, fmt.Errorf("swred: design %v is not a software scheme", design)
	}
	geo := fs.Geometry()
	r := &RawScheme{design: design, fs: fs, m: m, blockBytes: blockBytes, lineSize: uint64(geo.LineSize)}
	var entries uint64
	if design == param.TxBObjectCsums {
		entries = m.Size() / blockBytes
	} else {
		entries = m.Size() / uint64(geo.PageSize)
	}
	pages := (entries*xsum.Size + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
	di, err := fs.AllocRaw(pages)
	if err != nil {
		return nil, err
	}
	if design == param.TxBObjectCsums {
		r.blockCsumDI = di
	} else {
		r.pageCsumDI = di
	}
	// Undo-log lanes: 8 KB per core.
	r.laneBytes = 8 << 10
	cores := 64
	lanePages := (uint64(cores)*r.laneBytes + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
	if r.laneDI, err = fs.AllocRaw(lanePages); err != nil {
		return nil, err
	}
	r.laneOff = make([]uint64, cores)
	return r, nil
}

// txEnvelope simulates the transactional wrapper the software schemes
// require around every write: lane-state stores plus an undo image of the
// written range appended to the core's log lane.
func (r *RawScheme) txEnvelope(c *sim.Core, off, n uint64) {
	geo := r.fs.Geometry()
	laneBase := uint64(c.ID) * r.laneBytes
	state := geo.DataIndexAddr(r.laneDI, laneBase)
	cur := r.laneOff[c.ID]
	if cur < 64 {
		cur = 64
	}
	if cur+16+n > r.laneBytes {
		cur = 64
	}
	// Keep an entry within one page: the lane is contiguous in data-index
	// space, not in physical space.
	ps := uint64(geo.PageSize)
	if (laneBase+cur)%ps+16+n > ps {
		cur = (laneBase+cur)/ps*ps + ps - laneBase
		if cur+16+n > r.laneBytes {
			cur = 64
		}
	}
	c.Store64(state, 1) // armed
	old := make([]byte, n)
	r.m.Load(c, off, old)
	entry := geo.DataIndexAddr(r.laneDI, laneBase+cur)
	c.Store64(entry, off)
	c.Store64(entry+8, n)
	c.Store(geo.DataIndexAddr(r.laneDI, laneBase+cur+16), old)
	r.laneOff[c.ID] = cur + 16 + (n+15)&^15
	c.Store64(state, 0) // committed/idle
}

// OnWrite updates redundancy for a completed write of [off, off+n) on core
// c: block- or page-granular checksums plus parity recomputed from stripe
// siblings.
func (r *RawScheme) OnWrite(c *sim.Core, off, n uint64) {
	r.txEnvelope(c, off, n)
	geo := r.fs.Geometry()
	switch r.design {
	case param.TxBObjectCsums:
		buf := make([]byte, r.blockBytes)
		for b := off / r.blockBytes; b <= (off+n-1)/r.blockBytes; b++ {
			r.m.Load(c, b*r.blockBytes, buf)
			c.Compute(1 + r.blockBytes/8)
			c.Store32(geo.DataIndexAddr(r.blockCsumDI, b*xsum.Size), xsum.Checksum(buf))
		}
	case param.TxBPageCsums:
		ps := uint64(geo.PageSize)
		page := make([]byte, ps)
		for p := off / ps; p <= (off+n-1)/ps; p++ {
			r.m.Load(c, p*ps, page)
			c.Compute(1 + ps/8)
			c.Store32(geo.DataIndexAddr(r.pageCsumDI, p*xsum.Size), xsum.Checksum(page))
		}
	}
	// Parity for every written line, recomputed from siblings.
	ls := r.lineSize
	newData := make([]byte, ls)
	sib := make([]byte, ls)
	parity := make([]byte, ls)
	for lo := off &^ (ls - 1); lo < off+n; lo += ls {
		addr := geo.LineAddr(r.m.Addr(lo))
		r.m.Load(c, lo, newData)
		copy(parity, newData)
		for _, sa := range geo.SiblingLineAddrs(addr) {
			c.Load(sa, sib)
			xsum.XORInto(parity, sib)
		}
		c.Compute(uint64(geo.DIMMs - 1))
		c.Store(geo.ParityLineAddr(addr), parity)
	}
}
