package swred

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"tvarak/internal/param"
)

// The property-based layer for the dirty-tracking structures (the kvtrees
// idiom): operation sequences are *data*, generated from a logged seed and
// replayed against a reference bitmap model. Every granularity must agree
// with the model on coverage, line/page counts and snapshot enumeration
// after every operation; a failing sequence is shrunk to its minimal
// failing prefix before reporting, and the report names the seed so the
// exact sequence replays with
//
//	TVARAK_DIRTY_PROP_SEEDS=<seed> go test ./internal/swred/ -run TestDirtySetPropertyRandomOps

type dirtyOp struct {
	kind       byte // 0 markLines, 1 epoch (snapshot + clear everything)
	start, end uint64
}

func (o dirtyOp) String() string {
	if o.kind == 1 {
		return "{epoch}"
	}
	return fmt.Sprintf("{mark [%d,%d)}", o.start, o.end)
}

const (
	propLpp   = 64   // lines per page in the model space
	propLines = 1024 // 16 pages: small enough that marks collide constantly
)

// genDirtyOps expands a seed into a deterministic op sequence mixing
// zero-length marks, sub-line-count marks, page-straddling marks, long
// overlapping marks, and full snapshot/clear epochs.
func genDirtyOps(seed int64, n int) []dirtyOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]dirtyOp, n)
	for i := range ops {
		if rng.Intn(8) == 0 {
			ops[i] = dirtyOp{kind: 1}
			continue
		}
		start := uint64(rng.Int63n(propLines))
		var ln uint64
		switch rng.Intn(4) {
		case 0:
			ln = 0 // zero-length: must mark nothing
		case 1:
			ln = uint64(1 + rng.Int63n(4))
		case 2:
			ln = uint64(1 + rng.Int63n(2*propLpp)) // page-straddling
		case 3:
			ln = uint64(1 + rng.Int63n(propLines/2)) // long, overlapping
		}
		end := min(start+ln, propLines)
		ops[i] = dirtyOp{kind: 0, start: start, end: end}
	}
	return ops
}

// replayDirtyOps runs the sequence against a fresh dirtySet of the given
// granularity and the bitmap model, checking every model-visible invariant
// after each op. It returns the index of the first violating operation
// (-1 if none) with a description.
func replayDirtyOps(g param.DirtyGran, ops []dirtyOp) (int, string) {
	d := newDirtySet(g, propLpp)
	var model [propLines]bool
	var firstCyc [propLines]uint64
	for i, op := range ops {
		cyc := uint64(i + 1)
		switch op.kind {
		case 0:
			d.markLines(op.start, op.end, cyc)
			if op.start < op.end {
				s, e := op.start, op.end
				if g == param.GranPage {
					// Page granularity's coverage cost: whole pages.
					s, e = s/propLpp*propLpp, (e+propLpp-1)/propLpp*propLpp
				}
				for l := s; l < e && l < propLines; l++ {
					if !model[l] {
						model[l] = true
						firstCyc[l] = cyc
					}
				}
			}
		case 1:
			runs, _ := d.snapshotRuns(nil, nil)
			for k, r := range runs {
				if r.Start >= r.End {
					return i, fmt.Sprintf("snapshot run %d empty: [%d,%d)", k, r.Start, r.End)
				}
				if k > 0 && r.Start < runs[k-1].End {
					return i, fmt.Sprintf("snapshot runs unsorted/overlapping at %d: [%d,%d) after [%d,%d)",
						k, r.Start, r.End, runs[k-1].Start, runs[k-1].End)
				}
				minFirst := uint64(0)
				for l := r.Start; l < r.End; l++ {
					if l >= propLines || !model[l] {
						return i, fmt.Sprintf("snapshot run [%d,%d) covers clean line %d", r.Start, r.End, l)
					}
					if minFirst == 0 || firstCyc[l] < minFirst {
						minFirst = firstCyc[l]
					}
				}
				// Coalescing may only widen the window (keep an earlier
				// cycle), never narrow it: the window accounting must be
				// conservative.
				if r.Cyc == 0 || r.Cyc > minFirst {
					return i, fmt.Sprintf("run [%d,%d) cyc=%d later than earliest dirtying %d", r.Start, r.End, r.Cyc, minFirst)
				}
			}
			var snapCount uint64
			for _, r := range runs {
				snapCount += r.End - r.Start
			}
			var modelCount uint64
			for l := uint64(0); l < propLines; l++ {
				if model[l] {
					modelCount++
				}
			}
			if snapCount != modelCount {
				return i, fmt.Sprintf("snapshot enumerates %d lines, model has %d", snapCount, modelCount)
			}
			for _, r := range runs {
				d.clearRun(r)
			}
			if !d.empty() {
				return i, "set not empty after clearing every snapshot run"
			}
			model, firstCyc = [propLines]bool{}, [propLines]uint64{}
		}

		var count uint64
		for l := uint64(0); l < propLines; l++ {
			if got := d.covers(l); got != model[l] {
				return i, fmt.Sprintf("covers(%d)=%v, model %v", l, got, model[l])
			}
			if model[l] {
				count++
			}
		}
		if got := d.lineCount(); got != count {
			return i, fmt.Sprintf("lineCount=%d, model %d", got, count)
		}
		pages := map[uint64]bool{}
		for l := uint64(0); l < propLines; l++ {
			if model[l] {
				pages[l/propLpp] = true
			}
		}
		if got := d.pageCount(); got != len(pages) {
			return i, fmt.Sprintf("pageCount=%d, model %d", got, len(pages))
		}
	}
	return -1, ""
}

// shrinkDirtyPrefix finds a minimal failing prefix by binary search over
// the prefix length (each probe replays on a fresh set, so probes are
// independent and deterministic).
func shrinkDirtyPrefix(g param.DirtyGran, ops []dirtyOp, failIdx int) []dirtyOp {
	lo, hi := 1, failIdx+1 // hi is known to fail
	for lo < hi {
		mid := (lo + hi) / 2
		if idx, _ := replayDirtyOps(g, ops[:mid]); idx >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return ops[:hi]
}

func dirtyPropSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("TVARAK_DIRTY_PROP_SEEDS")
	if env == "" {
		return []int64{11, 22, 33, 44}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("TVARAK_DIRTY_PROP_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestDirtySetPropertyRandomOps replays seeded random mark/epoch sequences
// on all three granularities against the bitmap model, shrinking any
// failure to a minimal prefix and logging the reproducing seed.
func TestDirtySetPropertyRandomOps(t *testing.T) {
	nOps := 600
	if testing.Short() {
		nOps = 150
	}
	for _, g := range []param.DirtyGran{param.GranPage, param.GranLine, param.GranRange} {
		t.Run(g.String(), func(t *testing.T) {
			for _, seed := range dirtyPropSeeds(t) {
				ops := genDirtyOps(seed, nOps)
				idx, msg := replayDirtyOps(g, ops)
				if idx < 0 {
					continue
				}
				minOps := shrinkDirtyPrefix(g, ops, idx)
				t.Fatalf("seed %d: %s after %d ops (shrunk from %d); last op %s\n"+
					"reproduce: TVARAK_DIRTY_PROP_SEEDS=%d go test ./internal/swred/ -run TestDirtySetPropertyRandomOps",
					seed, msg, len(minOps), idx+1, minOps[len(minOps)-1], seed)
			}
		})
	}
}

// TestDirtyShrinkPrefixMonotone validates the shrinker on a planted
// violation: replay against a model that lies about one op (a mark the
// model ignores), so every prefix reaching that op fails and the shrinker
// must land exactly on it.
func TestDirtyShrinkPrefixMonotone(t *testing.T) {
	// Disjoint single-line marks: dropping any one is always visible in
	// lineCount, so the planted failure cannot be masked by overlap.
	ops := make([]dirtyOp, 80)
	for i := range ops {
		ops[i] = dirtyOp{kind: 0, start: uint64(i), end: uint64(i) + 1}
	}
	const planted = 37
	// The lie: drop the planted op from the replayed sequence but keep it
	// in the shrink domain, via a wrapper predicate over prefix length.
	fails := func(n int) bool {
		if n <= planted {
			return false
		}
		mut := append(append([]dirtyOp(nil), ops[:planted]...), dirtyOp{kind: 0})
		mut = append(mut, ops[planted+1:n]...)
		d := newDirtySet(param.GranLine, propLpp)
		for _, op := range mut {
			if op.kind == 0 {
				d.markLines(op.start, op.end, 1)
			}
		}
		want := newDirtySet(param.GranLine, propLpp)
		for _, op := range ops[:n] {
			if op.kind == 0 {
				want.markLines(op.start, op.end, 1)
			}
		}
		return d.lineCount() != want.lineCount()
	}
	if !fails(len(ops)) {
		t.Fatal("planted lie not visible at full length")
	}
	lo, hi := 1, len(ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if hi != planted+1 {
		t.Errorf("shrinker found prefix %d, planted failure at %d", hi, planted+1)
	}
}
