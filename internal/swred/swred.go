// Package swred implements the two software-only redundancy baselines the
// paper compares against (§IV):
//
//   - TxB-Object-Csums (Pangolin-like): object-granular checksums. At each
//     transaction boundary the library re-reads every modified object,
//     recomputes its checksum, and stores it in an object checksum table.
//     Unlike Pangolin it does not copy data between NVM and DRAM, so it
//     cannot verify reads and — because data is updated in place — it has
//     lost the old data and must recompute parity from the stripe's other
//     data lines rather than applying a diff.
//
//   - TxB-Page-Csums (Mojim/HotPot-extended): page-granular checksums. At
//     each transaction boundary the library re-reads every dirtied page in
//     full to recompute its checksum; parity is likewise recomputed from
//     sibling lines.
//
// Both schemes run as ordinary software on the application core: every
// byte they touch is a simulated load or store that flows through L1/L2/LLC
// (they benefit from caching, as the paper observes) and neither verifies
// application data reads (Table I).
package swred

import (
	"fmt"

	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// Scheme is one software redundancy instance attached to one heap.
type Scheme struct {
	design param.Design
	fs     *daxfs.FS
	m      *daxfs.DaxMap

	// Checksum tables, allocated in NVM and addressed physically.
	objCsumDI  uint64 // object mode: 4 B per object id
	maxObjects uint64
	pageCsumDI uint64 // page mode: 4 B per mapping page

	lineSize int
}

// Attach allocates the scheme's checksum table for heap h and installs the
// scheme as h's commit hook. maxObjects bounds the object table (object
// mode only).
func Attach(fs *daxfs.FS, h *pmem.Heap, design param.Design, maxObjects uint64) (*Scheme, error) {
	if design != param.TxBObjectCsums && design != param.TxBPageCsums {
		return nil, fmt.Errorf("swred: design %v is not a software scheme", design)
	}
	geo := fs.Geometry()
	s := &Scheme{design: design, fs: fs, m: h.Map, maxObjects: maxObjects, lineSize: geo.LineSize}
	switch design {
	case param.TxBObjectCsums:
		pages := (maxObjects*xsum.Size + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
		di, err := fs.AllocRaw(pages)
		if err != nil {
			return nil, err
		}
		s.objCsumDI = di
	case param.TxBPageCsums:
		mapPages := h.Map.Size() / uint64(geo.PageSize)
		pages := (mapPages*xsum.Size + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
		di, err := fs.AllocRaw(pages)
		if err != nil {
			return nil, err
		}
		s.pageCsumDI = di
	}
	h.SetCommitHook(s)
	return s, nil
}

// objCsumAddr returns the physical address of object id's checksum entry.
func (s *Scheme) objCsumAddr(id uint64) uint64 {
	if id >= s.maxObjects {
		panic(fmt.Sprintf("swred: object id %d beyond table capacity %d", id, s.maxObjects))
	}
	return s.fs.Geometry().DataIndexAddr(s.objCsumDI, id*xsum.Size)
}

// pageCsumAddr returns the physical address of mapping page p's checksum
// entry.
func (s *Scheme) pageCsumAddr(p uint64) uint64 {
	return s.fs.Geometry().DataIndexAddr(s.pageCsumDI, p*xsum.Size)
}

// OnCommit implements pmem.CommitHook: update checksums and parity for the
// transaction's modified ranges, in software, on the committing core.
func (s *Scheme) OnCommit(c *sim.Core, h *pmem.Heap, ranges []pmem.Range) {
	switch s.design {
	case param.TxBObjectCsums:
		s.updateObjectChecksums(c, h, ranges)
	case param.TxBPageCsums:
		s.updatePageChecksums(c, ranges)
	}
	s.updateParity(c, ranges)
}

// updateObjectChecksums recomputes the checksum of every modified object by
// re-reading the whole object.
func (s *Scheme) updateObjectChecksums(c *sim.Core, h *pmem.Heap, ranges []pmem.Range) {
	done := map[uint64]bool{}
	buf := make([]byte, 1024)
	for _, r := range ranges {
		if done[r.ObjID] {
			continue
		}
		done[r.ObjID] = true
		obj, ok := h.Object(r.ObjID)
		if !ok {
			continue // object freed within the transaction
		}
		crc := uint32(0)
		hashed := false
		for off := uint64(0); off < obj.Size; {
			n := min(uint64(len(buf)), obj.Size-off)
			s.m.Load(c, obj.Off+off, buf[:n])
			if !hashed {
				crc = xsum.Checksum(buf[:n])
				hashed = true
			} else {
				crc ^= xsum.Checksum(buf[:n]) // chunked combine
			}
			off += n
		}
		c.Compute(1 + obj.Size/s.computeBytesPerCycle())
		c.Store32(s.objCsumAddr(r.ObjID), crc)
	}
}

// updatePageChecksums recomputes the checksum of every page touched by the
// transaction, reading each page in full.
func (s *Scheme) updatePageChecksums(c *sim.Core, ranges []pmem.Range) {
	ps := uint64(s.fs.Geometry().PageSize)
	done := map[uint64]bool{}
	page := make([]byte, ps)
	for _, r := range ranges {
		first := r.Off / ps
		last := (r.Off + r.Len - 1) / ps
		for p := first; p <= last; p++ {
			if done[p] {
				continue
			}
			done[p] = true
			s.m.Load(c, p*ps, page)
			c.Compute(1 + ps/s.computeBytesPerCycle())
			c.Store32(s.pageCsumAddr(p), xsum.Checksum(page))
		}
	}
}

// updateParity recomputes the parity line for every modified data line:
// having lost the old data (in-place update), the scheme must read the
// stripe's sibling lines and XOR them with the new data.
func (s *Scheme) updateParity(c *sim.Core, ranges []pmem.Range) {
	geo := s.fs.Geometry()
	ls := uint64(s.lineSize)
	done := map[uint64]bool{}
	newData := make([]byte, ls)
	sib := make([]byte, ls)
	parity := make([]byte, ls)
	for _, r := range ranges {
		for off := r.Off &^ (ls - 1); off < r.Off+r.Len; off += ls {
			if done[off] {
				continue
			}
			done[off] = true
			addr := geo.LineAddr(s.m.Addr(off))
			s.m.Load(c, off, newData) // cached: just written
			copy(parity, newData)
			for _, sa := range geo.SiblingLineAddrs(addr) {
				c.Load(sa, sib)
				xsum.XORInto(parity, sib)
			}
			c.Compute(uint64(geo.DIMMs - 1))
			c.Store(geo.ParityLineAddr(addr), parity)
		}
	}
}

// computeBytesPerCycle models software CRC throughput (hardware CRC32
// instructions process roughly 8 bytes per cycle).
func (s *Scheme) computeBytesPerCycle() uint64 { return 8 }
