package swred_test

import (
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// TestVilambProcessEpochSteadyStateAllocFree pins the daemon-pass
// guarantee: once the scheme's struct-owned scratch (line/sibling/parity
// buffers, run snapshot, sort keys) is warm, a full reconciliation pass —
// dirty-set snapshot, per-line CRC, stripe parity recompute, scrub — heap-
// allocates nothing per line. The budget covers only the fixed per-Run cost
// of the engine (worker goroutine + channels); any per-line allocation
// would add hundreds. Gated across every dirty-tracking granularity, with
// scrub exercised at line granularity and the battery preset's staging
// path (intent CRCs computed at mark time) on top.
func TestVilambProcessEpochSteadyStateAllocFree(t *testing.T) {
	cases := []struct {
		name  string
		async param.AsyncConfig
	}{
		{"page", param.AsyncConfig{DirtyGran: param.GranPage}},
		{"line+scrub", param.AsyncConfig{DirtyGran: param.GranLine, Scrub: true}},
		{"range", param.AsyncConfig{DirtyGran: param.GranRange}},
		{"battery", param.BatteryPreset(0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := param.SmallTest(param.Vilamb)
			cfg.Async = tc.async
			sys, err := harness.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.NewHeap("h", 2<<20, 1024); err != nil {
				t.Fatal(err)
			}
			if len(sys.Vilambs) != 1 {
				t.Fatalf("Vilamb scheme not attached (%d)", len(sys.Vilambs))
			}
			v := sys.Vilambs[0]

			// A fixed, scattered mark set: the same lines re-dirty every
			// epoch, so steady state re-uses every map slot and scratch
			// buffer the warm-up pass grew.
			mark := func(c *sim.Core) {
				for i := uint64(0); i < 64; i++ {
					v.MarkDirty(c, i*640, 64)
				}
			}
			sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
				mark(c)
				v.ProcessEpoch(c)
				mark(c)
				v.ProcessEpoch(c)
			}})
			if err := sys.Eng.Err(); err != nil {
				t.Fatal(err)
			}

			per := testing.AllocsPerRun(5, func() {
				sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
					mark(c)
					v.ProcessEpoch(c)
				}})
			})
			if err := sys.Eng.Err(); err != nil {
				t.Fatal(err)
			}
			if per > 16 {
				t.Errorf("steady-state epoch pass allocated %.0f objects; the reconcile path must be allocation-free beyond the fixed per-Run cost", per)
			}
		})
	}
}
