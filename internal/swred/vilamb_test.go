package swred_test

import (
	"bytes"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
)

func vilambFixture(t *testing.T) (*harness.System, *swred.Vilamb, *pmem.Heap) {
	t.Helper()
	sys, err := harness.NewSystem(param.SmallTest(param.Vilamb))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("h", 2<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Vilambs) != 1 {
		t.Fatalf("Vilamb scheme not attached (%d)", len(sys.Vilambs))
	}
	return sys, sys.Vilambs[0], h
}

func TestVilambCommitOnlyMarksDirty(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
	}})
	sys.Eng.ResetMeasurement()
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{1}, 256))
		tx.Commit()
	}})
	if v.DirtyPages() == 0 {
		t.Error("commit did not mark pages dirty")
	}
	if v.PagesProcessed != 0 {
		t.Error("pages processed without a daemon pass")
	}
	// The foreground cost is bookkeeping only: no redundancy stores were
	// issued inside the transaction (unlike TxB schemes).
	if loads := sys.Eng.St.Loads; loads > 40 {
		t.Errorf("foreground did %d loads; Vilamb's hook must be (nearly) free", loads)
	}
}

func TestVilambEpochReconcilesChecksumsAndParity(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{0xAB}, 256))
		tx.Commit()
		v.ProcessEpoch(c)
	}})
	if v.PagesProcessed == 0 {
		t.Fatal("epoch processed no pages")
	}
	if v.DirtyPages() != 0 {
		t.Error("dirty pages remain after epoch")
	}
	// Parity must now cover the write (verified via fs recovery): corrupt
	// the page on media and rebuild it from parity.
	sys.Eng.DropCaches()
	geo := sys.FS.Geometry()
	f, _ := sys.FS.Open("h")
	page := off / uint64(geo.PageSize)
	addr := geo.DataIndexAddr(f.StartDI+page, 0)
	sys.Eng.NVM.WriteRaw(addr, bytes.Repeat([]byte{0xFF}, 64))
	if err := sys.FS.RecoverFilePage(f, page); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := make([]byte, 256)
	sys.Eng.NVM.ReadRaw(geo.DataIndexAddr(f.StartDI, off), got)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 256)) {
		t.Error("parity recovery after Vilamb epoch returned wrong content")
	}
}

func TestVilambBatchingAmortizesRepeatedWrites(t *testing.T) {
	// Write the same page 100 times within one epoch: the daemon pass must
	// process the page once, not 100 times.
	sys, v, h := vilambFixture(t)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		for i := 0; i < 100; i++ {
			tx := h.Begin(c)
			tx.Write64(id, off, uint64(i))
			tx.Commit()
		}
		v.ProcessEpoch(c)
	}})
	if v.PagesProcessed > 3 {
		t.Errorf("processed %d pages for 100 same-page writes; batching broken", v.PagesProcessed)
	}
}

func TestVilambDaemonRunsUnderHarness(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
	}})
	sys.Eng.ResetMeasurement()
	workers := []func(*sim.Core){func(c *sim.Core) {
		for i := 0; i < 50; i++ {
			tx := h.Begin(c)
			tx.Write(id, off, bytes.Repeat([]byte{byte(i)}, 256))
			tx.Commit()
			c.Compute(100000)
		}
	}}
	sys.Eng.Run(sys.WithDaemons(workers))
	if v.Epochs == 0 {
		t.Error("daemon never ran an epoch")
	}
	if v.DirtyPages() != 0 {
		t.Error("daemon left dirty pages unreconciled at shutdown")
	}
	if v.PagesProcessed == 0 {
		t.Error("daemon processed nothing")
	}
}

func TestVilambCheaperThanTxBPage(t *testing.T) {
	// Table I: Vilamb's overhead is configurable and, with a reasonable
	// epoch, far below synchronous page-granular TxB on the same work.
	run := func(d param.Design) uint64 {
		sys, err := harness.NewSystem(param.SmallTest(d))
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.NewHeap("h", 4<<20, 4096)
		if err != nil {
			t.Fatal(err)
		}
		var ids, offs []uint64
		sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
			for i := 0; i < 256; i++ {
				id, off := h.Alloc(c, 256)
				ids = append(ids, id)
				offs = append(offs, off)
			}
		}})
		sys.Eng.ResetMeasurement()
		workers := []func(*sim.Core){func(c *sim.Core) {
			val := bytes.Repeat([]byte{7}, 256)
			for r := 0; r < 4; r++ {
				for i := range ids {
					tx := h.Begin(c)
					tx.Write(ids[i], offs[i], val)
					tx.Commit()
				}
			}
		}}
		sys.Eng.Run(sys.WithDaemons(workers))
		return sys.Eng.St.Cycles
	}
	base := run(param.Baseline)
	vil := run(param.Vilamb)
	txb := run(param.TxBPageCsums)
	t.Logf("baseline=%d vilamb=%d txb-page=%d", base, vil, txb)
	if vil >= txb {
		t.Errorf("Vilamb (%d) not cheaper than TxB-Page (%d)", vil, txb)
	}
	if vil < base {
		t.Errorf("Vilamb (%d) cheaper than baseline (%d)?", vil, base)
	}
}
