package swred_test

import (
	"bytes"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
)

func vilambFixture(t *testing.T) (*harness.System, *swred.Vilamb, *pmem.Heap) {
	t.Helper()
	sys, err := harness.NewSystem(param.SmallTest(param.Vilamb))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("h", 2<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Vilambs) != 1 {
		t.Fatalf("Vilamb scheme not attached (%d)", len(sys.Vilambs))
	}
	return sys, sys.Vilambs[0], h
}

func TestVilambCommitOnlyMarksDirty(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
	}})
	sys.Eng.ResetMeasurement()
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{1}, 256))
		tx.Commit()
	}})
	if v.DirtyPages() == 0 {
		t.Error("commit did not mark pages dirty")
	}
	if v.PagesProcessed != 0 {
		t.Error("pages processed without a daemon pass")
	}
	// The foreground cost is bookkeeping only: no redundancy stores were
	// issued inside the transaction (unlike TxB schemes).
	if loads := sys.Eng.St.Loads; loads > 40 {
		t.Errorf("foreground did %d loads; Vilamb's hook must be (nearly) free", loads)
	}
}

func TestVilambEpochReconcilesChecksumsAndParity(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{0xAB}, 256))
		tx.Commit()
		v.ProcessEpoch(c)
	}})
	if v.PagesProcessed == 0 {
		t.Fatal("epoch processed no pages")
	}
	if v.DirtyPages() != 0 {
		t.Error("dirty pages remain after epoch")
	}
	// Parity must now cover the write (verified via fs recovery): corrupt
	// the page on media and rebuild it from parity.
	sys.Eng.DropCaches()
	geo := sys.FS.Geometry()
	f, _ := sys.FS.Open("h")
	page := off / uint64(geo.PageSize)
	addr := geo.DataIndexAddr(f.StartDI+page, 0)
	sys.Eng.NVM.WriteRaw(addr, bytes.Repeat([]byte{0xFF}, 64))
	if err := sys.FS.RecoverFilePage(f, page); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := make([]byte, 256)
	sys.Eng.NVM.ReadRaw(geo.DataIndexAddr(f.StartDI, off), got)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 256)) {
		t.Error("parity recovery after Vilamb epoch returned wrong content")
	}
}

func TestVilambBatchingAmortizesRepeatedWrites(t *testing.T) {
	// Write the same page 100 times within one epoch: the daemon pass must
	// process the page once, not 100 times.
	sys, v, h := vilambFixture(t)
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		for i := 0; i < 100; i++ {
			tx := h.Begin(c)
			tx.Write64(id, off, uint64(i))
			tx.Commit()
		}
		v.ProcessEpoch(c)
	}})
	if v.PagesProcessed > 3 {
		t.Errorf("processed %d pages for 100 same-page writes; batching broken", v.PagesProcessed)
	}
}

func TestVilambDaemonRunsUnderHarness(t *testing.T) {
	sys, v, h := vilambFixture(t)
	var id, off uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off = h.Alloc(c, 256)
	}})
	sys.Eng.ResetMeasurement()
	workers := []func(*sim.Core){func(c *sim.Core) {
		for i := 0; i < 50; i++ {
			tx := h.Begin(c)
			tx.Write(id, off, bytes.Repeat([]byte{byte(i)}, 256))
			tx.Commit()
			c.Compute(100000)
		}
	}}
	sys.Eng.Run(sys.WithDaemons(workers))
	if v.Epochs == 0 {
		t.Error("daemon never ran an epoch")
	}
	if v.DirtyPages() != 0 {
		t.Error("daemon left dirty pages unreconciled at shutdown")
	}
	if v.PagesProcessed == 0 {
		t.Error("daemon processed nothing")
	}
}

func TestVilambCheaperThanTxBPage(t *testing.T) {
	// Table I: Vilamb's overhead is configurable and, with a reasonable
	// epoch, far below synchronous page-granular TxB on the same work.
	run := func(d param.Design) uint64 {
		sys, err := harness.NewSystem(param.SmallTest(d))
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.NewHeap("h", 4<<20, 4096)
		if err != nil {
			t.Fatal(err)
		}
		var ids, offs []uint64
		sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
			for i := 0; i < 256; i++ {
				id, off := h.Alloc(c, 256)
				ids = append(ids, id)
				offs = append(offs, off)
			}
		}})
		sys.Eng.ResetMeasurement()
		workers := []func(*sim.Core){func(c *sim.Core) {
			val := bytes.Repeat([]byte{7}, 256)
			for r := 0; r < 4; r++ {
				for i := range ids {
					tx := h.Begin(c)
					tx.Write(ids[i], offs[i], val)
					tx.Commit()
				}
			}
		}}
		sys.Eng.Run(sys.WithDaemons(workers))
		return sys.Eng.St.Cycles
	}
	base := run(param.Baseline)
	vil := run(param.Vilamb)
	txb := run(param.TxBPageCsums)
	t.Logf("baseline=%d vilamb=%d txb-page=%d", base, vil, txb)
	if vil >= txb {
		t.Errorf("Vilamb (%d) not cheaper than TxB-Page (%d)", vil, txb)
	}
	if vil < base {
		t.Errorf("Vilamb (%d) cheaper than baseline (%d)?", vil, base)
	}
}

func TestVilambEmptyCommitRangeMarksNothing(t *testing.T) {
	// Regression: a zero-length Range at Off==0 made (Off+Len-1)/pageSize
	// underflow, marking ~2^64 pages dirty; the next epoch then tried to
	// reconcile the entire address space. Empty ranges must be ignored.
	_, v, h := vilambFixture(t)
	v.OnCommit(nil, h, []pmem.Range{{Off: 0, Len: 0}})
	if got := v.DirtyPages(); got != 0 {
		t.Errorf("empty commit range marked %d pages dirty, want 0", got)
	}
	v.MarkDirty(nil, 0, 0)
	if got := v.DirtyPages(); got != 0 {
		t.Errorf("MarkDirty(0,0) marked %d pages dirty, want 0", got)
	}
	// A real range mixed with empty ones still lands.
	v.OnCommit(nil, h, []pmem.Range{{Off: 0, Len: 0}, {Off: 4096, Len: 10}, {Off: 64, Len: 0}})
	if got := v.DirtyPages(); got != 1 {
		t.Errorf("mixed ranges marked %d pages dirty, want 1", got)
	}
}

func TestVilambDaemonHonorsOddEpochLength(t *testing.T) {
	// Regression: the daemon slept in fixed 10k-cycle slices and
	// overshot epochs that are not slice multiples (EpochCyc=10001 slept
	// 20000 cycles), halving the reconciliation frequency. The sleep must
	// clamp its last slice to the epoch remainder.
	sys, v, _ := vilambFixture(t)
	v.EpochCyc = 10001
	stop := false
	const work = 400000
	workers := []func(*sim.Core){
		func(c *sim.Core) {
			// Advance in sub-phase steps so the daemon's clock keeps pace
			// under phase scheduling (one big Compute would end the run
			// before the daemon ever wakes).
			for n := 0; n < work/1000; n++ {
				c.Compute(1000)
			}
			stop = true
		},
		v.Daemon(&stop),
	}
	sys.Eng.Run(workers)
	if err := sys.Eng.Err(); err != nil {
		t.Fatal(err)
	}
	// With the clamped sleep the daemon completes ~work/10001 ≈ 39
	// epochs; the unclamped bug yields ~work/20000 ≈ 20.
	if v.Epochs < 35 || v.Epochs > 45 {
		t.Errorf("daemon ran %d epochs over %d cycles with EpochCyc=10001, want ≈39", v.Epochs, work)
	}
}
