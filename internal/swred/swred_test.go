package swred_test

import (
	"bytes"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
	"tvarak/internal/xsum"
)

func TestAttachRejectsHardwareDesigns(t *testing.T) {
	sys, err := harness.NewSystem(param.SmallTest(param.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("h", 2<<20, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []param.Design{param.Baseline, param.Tvarak} {
		if _, err := swred.Attach(sys.FS, h, d, 128); err == nil {
			t.Errorf("Attach accepted design %v", d)
		}
	}
}

// TestObjectChecksumsMatchContent verifies the functional core of
// TxB-Object-Csums: after a commit, the stored object checksum equals the
// CRC of the object's content on media.
func TestObjectChecksumsMatchContent(t *testing.T) {
	sys, err := harness.NewSystem(param.SmallTest(param.TxBObjectCsums))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("h", 2<<20, 1024) // NewHeap attaches the scheme
	if err != nil {
		t.Fatal(err)
	}
	var objID uint64
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		var objOff uint64
		objID, objOff = h.Alloc(c, 128)
		tx := h.Begin(c)
		tx.Write(objID, objOff, bytes.Repeat([]byte{0x77}, 128))
		tx.Commit()
	}})
	sys.Eng.DropCaches() // push everything to media
	obj, _ := h.Object(objID)
	buf := make([]byte, obj.Size)
	readMap(sys, "h", obj.Off, buf)
	want := xsum.Checksum(buf)
	// The object checksum table is the first region allocated after the
	// heap file (NewHeap attaches the scheme immediately after MMap).
	got, ok := findObjCsum(sys, objID, want)
	if !ok {
		t.Fatalf("object checksum %#x not found at table slot %d", want, objID)
	}
	if got != want {
		t.Errorf("stored csum %#x, want %#x", got, want)
	}
}

// readMap reads file content via raw device access.
func readMap(sys *harness.System, name string, off uint64, buf []byte) {
	f, err := sys.FS.Open(name)
	if err != nil {
		panic(err)
	}
	geo := sys.FS.Geometry()
	ps := uint64(geo.PageSize)
	for n := uint64(0); n < uint64(len(buf)); {
		cur := off + n
		chunk := min(uint64(len(buf))-n, ps-cur%ps)
		sys.Eng.NVM.ReadRaw(geo.DataIndexAddr(f.StartDI, cur), buf[n:n+chunk])
		n += chunk
	}
}

// findObjCsum reads slot objID of the object checksum table, which lives in
// the data pages immediately after the heap file.
func findObjCsum(sys *harness.System, objID uint64, want uint32) (uint32, bool) {
	geo := sys.FS.Geometry()
	f, _ := sys.FS.Open("h")
	heapEnd := f.StartDI + f.Pages
	var ent [4]byte
	addr := geo.DataIndexAddr(heapEnd, objID*xsum.Size)
	sys.Eng.NVM.ReadRaw(addr, ent[:])
	got := xsum.Get(ent[:], 0)
	return got, got == want
}

// TestSchemesAddInlineWork compares the three designs on identical work:
// software schemes must be slower than baseline, and page-granular slower
// than object-granular.
func TestSchemesAddInlineWork(t *testing.T) {
	cycles := map[param.Design]uint64{}
	for _, d := range []param.Design{param.Baseline, param.TxBObjectCsums, param.TxBPageCsums} {
		sys, err := harness.NewSystem(param.SmallTest(d))
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.NewHeap("h", 4<<20, 4096)
		if err != nil {
			t.Fatal(err)
		}
		var ids, offs []uint64
		sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
			for i := 0; i < 512; i++ {
				id, off := h.Alloc(c, 256)
				ids = append(ids, id)
				offs = append(offs, off)
			}
		}})
		sys.Eng.ResetMeasurement()
		sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
			val := bytes.Repeat([]byte{9}, 256)
			for i := range ids {
				tx := h.Begin(c)
				tx.Write(ids[i], offs[i], val)
				tx.Commit()
			}
		}})
		cycles[d] = sys.Eng.St.Cycles
	}
	if !(cycles[param.Baseline] < cycles[param.TxBObjectCsums]) {
		t.Errorf("TxB-Object (%d) not slower than baseline (%d)", cycles[param.TxBObjectCsums], cycles[param.Baseline])
	}
	if !(cycles[param.TxBObjectCsums] < cycles[param.TxBPageCsums]) {
		t.Errorf("TxB-Page (%d) not slower than TxB-Object (%d)", cycles[param.TxBPageCsums], cycles[param.TxBObjectCsums])
	}
}

// TestParityMaintainedBySoftware checks the software parity invariant at
// the cache-coherent level: parity line content (read through a core)
// equals the XOR of the stripe's data lines (read through a core).
func TestParityMaintainedBySoftware(t *testing.T) {
	sys, err := harness.NewSystem(param.SmallTest(param.TxBObjectCsums))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.NewHeap("h", 2<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	geo := sys.FS.Geometry()
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		id, off := h.Alloc(c, 64)
		tx := h.Begin(c)
		tx.Write(id, off, bytes.Repeat([]byte{0xF0}, 64))
		tx.Commit()
		addr := geo.LineAddr(h.Map.Addr(off))
		want := make([]byte, 64)
		line := make([]byte, 64)
		c.Load(addr, line)
		copy(want, line)
		for _, sa := range geo.SiblingLineAddrs(addr) {
			c.Load(sa, line)
			xsum.XORInto(want, line)
		}
		got := make([]byte, 64)
		c.Load(geo.ParityLineAddr(addr), got)
		if !bytes.Equal(got, want) {
			t.Error("software parity line does not equal XOR of stripe data lines")
		}
	}})
}

func TestRawSchemeEnvelopeAndChecksums(t *testing.T) {
	sys, err := harness.NewSystem(param.SmallTest(param.TxBPageCsums))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.NewMapping("raw", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := swred.AttachRaw(sys.FS, m, param.TxBPageCsums, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.ResetMeasurement()
	sys.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{3}, 64)
		for i := 0; i < 64; i++ {
			off := uint64(i) * 64
			m.Store(c, off, buf)
			raw.OnWrite(c, off, 64)
		}
	}})
	// Page mode re-reads whole pages: expect far more loads than the 64
	// written lines.
	if sys.Eng.St.Loads < 64*64 {
		t.Errorf("page-granular raw scheme did %d loads, want >= %d (whole-page reads)",
			sys.Eng.St.Loads, 64*64)
	}
}
