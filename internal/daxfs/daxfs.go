// Package daxfs is the DAX-enabled NVM file system that manages TVARAK
// (§III): it lays files out over the striped NVM data pages, maintains
// per-page system-checksums for data accessed through the file-system
// interface, and — when a file is DAX-mapped — allocates the
// DAX-CL-checksum region and programs the TVARAK controller's address-range
// comparators. At munmap it reconciles page-granular checksums from the
// mapped data, so page checksums are authoritative exactly when data is not
// mapped, as in the paper.
//
// Allocations are stripe-aligned (multiples of DIMMs−1 data pages) so a
// parity group never mixes application data pages with redundancy-metadata
// pages; parity therefore stays a pure XOR of same-kind pages and recovery
// of data pages is always well-defined (see DESIGN.md §4).
package daxfs

import (
	"fmt"
	"sort"

	"tvarak/internal/core"
	"tvarak/internal/geom"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// FS is the file system instance for one simulated machine.
type FS struct {
	eng  *sim.Engine
	geo  geom.Geometry
	ctrl *core.Controller // non-nil only under the Tvarak design

	nextDI  uint64 // bump allocator over data-page indices, stripe-aligned
	quantum uint64 // DIMMs-1 data pages

	files map[string]*File

	pageCsumDI    uint64
	pageCsumPages uint64
}

// File is one NVM-resident file.
type File struct {
	Name    string
	StartDI uint64
	Pages   uint64

	pageSize  uint64
	mapped    bool
	csumDI    uint64
	csumPages uint64
}

// Size returns the file's capacity in bytes.
func (f *File) Size() uint64 { return f.Pages * f.pageSize }

// New creates the file system on eng's NVM, reserving and initializing the
// global per-page checksum table. When the engine runs the Tvarak design,
// pass the controller so mappings are registered with it; otherwise ctrl is
// nil.
func New(eng *sim.Engine, ctrl *core.Controller) (*FS, error) {
	geo := eng.Geo
	fs := &FS{
		eng:     eng,
		geo:     geo,
		ctrl:    ctrl,
		quantum: uint64(geo.DIMMs - 1),
		files:   make(map[string]*File),
	}
	// Reserve the per-page checksum table: one 4 B checksum per data page.
	tableBytes := geo.DataPages() * xsum.Size
	tablePages := (tableBytes + uint64(geo.PageSize) - 1) / uint64(geo.PageSize)
	di, err := fs.allocPages(tablePages)
	if err != nil {
		return nil, fmt.Errorf("daxfs: page checksum table: %w", err)
	}
	fs.pageCsumDI = di
	fs.pageCsumPages = tablePages
	// All pages start zeroed; initialize every table entry to the checksum
	// of a zero page so unwritten pages verify. Written page-at-a-time to
	// keep setup fast.
	zeroCsum := xsum.Checksum(make([]byte, geo.PageSize))
	entries := make([]byte, geo.PageSize)
	for i := 0; i < geo.PageSize/xsum.Size; i++ {
		xsum.Put(entries, i, zeroCsum)
	}
	for p := uint64(0); p < tablePages; p++ {
		fs.eng.NVM.WriteRaw(geo.DataIndexAddr(fs.pageCsumDI, p*uint64(geo.PageSize)), entries)
	}
	if ctrl != nil {
		ctrl.SetPageCsumTable(fs.pageCsumDI)
	}
	return fs, nil
}

// Engine returns the simulation engine the file system lives on.
func (fs *FS) Engine() *sim.Engine { return fs.eng }

// Controller returns the attached TVARAK controller (nil for software-only
// designs).
func (fs *FS) Controller() *core.Controller { return fs.ctrl }

// Geometry returns the NVM layout.
func (fs *FS) Geometry() geom.Geometry { return fs.geo }

// pageCsumAddr returns the physical address of data page p's checksum entry.
func (fs *FS) pageCsumAddr(dataIndex uint64) uint64 {
	return fs.geo.DataIndexAddr(fs.pageCsumDI, dataIndex*xsum.Size)
}

// allocPages reserves n data pages (rounded up to whole stripes) and
// returns the starting data-page index.
func (fs *FS) allocPages(n uint64) (uint64, error) {
	n = (n + fs.quantum - 1) / fs.quantum * fs.quantum
	if fs.nextDI+n > fs.geo.DataPages() {
		return 0, fmt.Errorf("daxfs: out of NVM (%d data pages requested, %d free)",
			n, fs.geo.DataPages()-fs.nextDI)
	}
	di := fs.nextDI
	fs.nextDI += n
	return di, nil
}

// AllocRaw reserves n data pages for auxiliary regions (software checksum
// tables, etc.) and returns the starting data-page index. The region is
// zeroed (NVM starts zeroed) and not tracked as a file.
func (fs *FS) AllocRaw(n uint64) (uint64, error) { return fs.allocPages(n) }

// Create allocates a file of at least size bytes (rounded up to whole
// stripes of pages), zero-filled.
func (fs *FS) Create(name string, size uint64) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("daxfs: file %q exists", name)
	}
	pages := (size + uint64(fs.geo.PageSize) - 1) / uint64(fs.geo.PageSize)
	di, err := fs.allocPages(pages)
	if err != nil {
		return nil, err
	}
	f := &File{
		Name:     name,
		StartDI:  di,
		Pages:    (pages + fs.quantum - 1) / fs.quantum * fs.quantum,
		pageSize: uint64(fs.geo.PageSize),
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("daxfs: file %q not found", name)
	}
	return f, nil
}

// addr translates a byte offset within file f to its physical address.
func (fs *FS) addr(f *File, off uint64) uint64 {
	if off >= f.Size() {
		panic(fmt.Sprintf("daxfs: offset %d beyond file %q (%d bytes)", off, f.Name, f.Size()))
	}
	return fs.geo.DataIndexAddr(f.StartDI, off)
}

// ---------------------------------------------------------------------------
// File-system interface I/O (non-DAX path)
// ---------------------------------------------------------------------------

// ErrChecksum reports a failed system-checksum verification on the
// file-system read path.
type ErrChecksum struct {
	File string
	Page uint64 // data-page index within the file
}

func (e *ErrChecksum) Error() string {
	return fmt.Sprintf("daxfs: checksum mismatch reading %q page %d", e.File, e.Page)
}

// ReadAt reads through the file-system interface, verifying the per-page
// system-checksum of every touched page (the Nova-Fortis-style coverage of
// Table I). It is a functional (untimed) path.
func (fs *FS) ReadAt(f *File, off uint64, buf []byte) error {
	if f.mapped {
		return fmt.Errorf("daxfs: %q is DAX-mapped; access it through the mapping", f.Name)
	}
	ps := uint64(fs.geo.PageSize)
	pageBuf := make([]byte, ps)
	for n := uint64(0); n < uint64(len(buf)); {
		cur := off + n
		page := cur / ps
		fs.eng.NVM.ReadRaw(fs.addr(f, page*ps), pageBuf)
		want := fs.readPageCsum(f.StartDI + page)
		if xsum.Checksum(pageBuf) != want {
			if err := fs.RecoverFilePage(f, page); err != nil {
				return err
			}
			fs.eng.NVM.ReadRaw(fs.addr(f, page*ps), pageBuf)
		}
		in := cur % ps
		c := copy(buf[n:], pageBuf[in:])
		n += uint64(c)
	}
	return nil
}

// WriteAt writes through the file-system interface, updating per-page
// system-checksums and cross-DIMM parity.
func (fs *FS) WriteAt(f *File, off uint64, data []byte) error {
	if f.mapped {
		return fmt.Errorf("daxfs: %q is DAX-mapped; access it through the mapping", f.Name)
	}
	if off+uint64(len(data)) > f.Size() {
		return fmt.Errorf("daxfs: write beyond EOF of %q", f.Name)
	}
	ps := uint64(fs.geo.PageSize)
	for n := uint64(0); n < uint64(len(data)); {
		cur := off + n
		in := cur % ps
		c := min(uint64(len(data))-n, ps-in)
		fs.eng.NVM.WriteRaw(fs.addr(f, cur), data[n:n+c])
		n += c
	}
	firstPage := off / ps
	lastPage := (off + uint64(len(data)) - 1) / ps
	for p := firstPage; p <= lastPage; p++ {
		fs.updatePageCsum(f, p)
	}
	fs.rebuildParityForRange(f, firstPage, lastPage)
	return nil
}

func (fs *FS) readPageCsum(dataIndex uint64) uint32 {
	var ent [xsum.Size]byte
	fs.eng.NVM.ReadRaw(fs.pageCsumAddr(dataIndex), ent[:])
	return xsum.Get(ent[:], 0)
}

func (fs *FS) writePageCsum(dataIndex uint64, c uint32) {
	var ent [xsum.Size]byte
	xsum.Put(ent[:], 0, c)
	fs.eng.NVM.WriteRaw(fs.pageCsumAddr(dataIndex), ent[:])
}

func (fs *FS) updatePageCsum(f *File, page uint64) {
	buf := make([]byte, fs.geo.PageSize)
	fs.eng.NVM.ReadRaw(fs.addr(f, page*uint64(fs.geo.PageSize)), buf)
	fs.writePageCsum(f.StartDI+page, xsum.Checksum(buf))
}

// rebuildParityForRange recomputes the parity pages of every stripe that
// file pages [first,last] touch, from current media content.
func (fs *FS) rebuildParityForRange(f *File, first, last uint64) {
	seen := make(map[uint64]bool)
	for p := first; p <= last; p++ {
		s := fs.geo.StripeOf(fs.geo.PageOfDataIndex(f.StartDI + p))
		if !seen[s] {
			seen[s] = true
			fs.RebuildStripeParity(s)
		}
	}
}

// RebuildStripeParity recomputes stripe s's parity page as the XOR of its
// data pages' current media content.
func (fs *FS) RebuildStripeParity(s uint64) {
	geo := fs.geo
	parity := make([]byte, geo.PageSize)
	buf := make([]byte, geo.PageSize)
	pi := geo.ParitySlot(s)
	for k := 0; k < geo.DIMMs; k++ {
		if k == pi {
			continue
		}
		fs.eng.NVM.ReadRaw(geo.PageBase(s*uint64(geo.DIMMs)+uint64(k)), buf)
		xsum.XORInto(parity, buf)
	}
	fs.eng.NVM.WriteRaw(geo.PageBase(geo.ParityPage(s)), parity)
}

// Files returns every file in deterministic (name-sorted) order. The
// shadow oracle walks this to know which data pages, checksum regions and
// page-checksum slots the reference model must cover.
func (fs *FS) Files() []*File {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*File, len(names))
	for i, n := range names {
		out[i] = fs.files[n]
	}
	return out
}

// Mapped reports whether the file is currently DAX-mapped.
func (f *File) Mapped() bool { return f.mapped }

// CsumRegion returns the file's DAX-CL-checksum region (starting data-page
// index and page count); both are zero unless the file is mapped under the
// Tvarak design.
func (f *File) CsumRegion() (di, pages uint64) { return f.csumDI, f.csumPages }

// PageCsumTable returns the global per-page checksum table's location
// (starting data-page index and page count).
func (fs *FS) PageCsumTable() (di, pages uint64) { return fs.pageCsumDI, fs.pageCsumPages }
