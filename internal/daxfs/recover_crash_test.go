package daxfs_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/oracle"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// Crash-recovery tests: simulate a crash that leaves NVM torn or a DIMM
// gone, run the daxfs recovery path, and assert the recovered bytes are
// identical to what the redundancy oracle says the content should be.
// The oracle matters here because the recovery paths rebuild derivable
// metadata (page checksums, DAX-CL-checksums) from whatever they
// reconstructed — a wrong reconstruction would re-checksum its own garbage
// and pass Scrub, so only an independent shadow can catch it.

func TestRecoverFilePageAfterTornWrite(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, err := fs.Create("journal", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, int(f.Size()))
	rand.New(rand.NewSource(11)).Read(data)
	if err := fs.WriteAt(f, 0, data); err != nil {
		t.Fatal(err)
	}
	o := oracle.Attach(e, fs)
	defer o.Detach()

	// Crash mid-update of page 3: half the page holds bytes of a write
	// that never completed — its page checksum and stripe parity were
	// never updated. Pause the oracle so the shadow keeps modelling the
	// pre-crash content the recovery must restore.
	geo := fs.Geometry()
	const page = 3
	base := geo.DataIndexAddr(f.StartDI+page, 0)
	want := make([]byte, geo.PageSize)
	o.ShadowRange(base, want)
	o.Pause()
	e.NVM.WriteRaw(base, bytes.Repeat([]byte{0x77}, geo.PageSize/2))

	bad := fs.Scrub()
	if len(bad) != 1 || bad[0].File != f.Name || bad[0].Page != page {
		t.Fatalf("scrub after torn write reported %v, want exactly %s page %d", bad, f.Name, page)
	}
	if err := fs.RecoverFilePage(f, page); err != nil {
		t.Fatal(err)
	}
	o.Resume()

	got := make([]byte, geo.PageSize)
	e.NVM.ReadRaw(base, got)
	if !bytes.Equal(got, want) {
		t.Error("recovered page diverges from the oracle's pre-crash shadow")
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("scrub still reports %v after recovery", bad)
	}
	if div := o.VerifyMediaAll(); len(div) != 0 {
		t.Errorf("oracle sees %d divergent lines after recovery", len(div))
	}
	// End to end: the file reads back exactly what was written pre-crash.
	got = make([]byte, len(data))
	if err := fs.ReadAt(f, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("file content wrong after torn-write recovery")
	}
}

func TestRecoverFilePageUnrecoverableWhenParityAlsoLost(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, err := fs.Create("doomed", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt(f, 0, bytes.Repeat([]byte{9}, int(f.Size()))); err != nil {
		t.Fatal(err)
	}
	// Tear a data page AND junk its stripe's parity page: reconstruction
	// must fail the page checksum and be refused, not written to media.
	geo := fs.Geometry()
	const page = 1
	pp := geo.PageOfDataIndex(f.StartDI + page)
	junk := bytes.Repeat([]byte{0xDE}, geo.PageSize)
	e.NVM.WriteRaw(geo.DataIndexAddr(f.StartDI+page, 0), junk[:geo.PageSize/2])
	e.NVM.WriteRaw(geo.PageBase(geo.ParityPage(geo.StripeOf(pp))), junk)
	if err := fs.RecoverFilePage(f, page); err == nil {
		t.Fatal("reconstruction from destroyed parity was accepted")
	}
}

func TestRecoverDIMMMappedByteIdenticalViaOracle(t *testing.T) {
	e, fs := fsFixture(t, param.Tvarak)
	f, err := fs.Create("state", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fs.MMap("state")
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.Attach(e, fs)
	defer o.Detach()

	// Populate through the mapped path on a core, so the TVARAK controller
	// maintains DAX-CL-checksums and cross-DIMM parity for every line; Run
	// drains caches on return, leaving media and redundancy current.
	rng := rand.New(rand.NewSource(23))
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, 64)
		for off := uint64(0); off < m.Size(); off += 64 {
			rng.Read(buf)
			m.Store(c, off, buf)
		}
	}})

	geo := fs.Geometry()
	want := make([]byte, int(f.Size()))
	for p := uint64(0); p < f.Pages; p++ {
		o.ShadowRange(geo.DataIndexAddr(f.StartDI+p, 0), want[p*uint64(geo.PageSize):(p+1)*uint64(geo.PageSize)])
	}

	// Lose DIMM 1 wholesale (data, parity, and checksum-table pages alike),
	// then replace and reconstruct it.
	o.Pause()
	junk := bytes.Repeat([]byte{0xDE}, geo.PageSize)
	for s := uint64(0); s < geo.Stripes(); s++ {
		e.NVM.WriteRaw(geo.PageBase(s*uint64(geo.DIMMs)+1), junk)
	}
	if err := fs.RecoverDIMM(1); err != nil {
		t.Fatal(err)
	}
	o.Resume()

	got := make([]byte, int(f.Size()))
	page := make([]byte, geo.PageSize)
	for p := uint64(0); p < f.Pages; p++ {
		e.NVM.ReadRaw(geo.DataIndexAddr(f.StartDI+p, 0), page)
		copy(got[p*uint64(geo.PageSize):], page)
	}
	if !bytes.Equal(got, want) {
		t.Error("mapped file diverges from the oracle shadow after DIMM recovery")
	}
	if div := o.VerifyMapped(); len(div) != 0 {
		t.Errorf("oracle reports %d mapped divergences after DIMM recovery", len(div))
	}
	if div := o.VerifyRedundancy(); len(div) != 0 {
		t.Errorf("redundancy diverges after DIMM recovery: %v", div[0])
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("scrub reports %v after DIMM recovery", bad)
	}
}
