package daxfs_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

func fsFixture(t *testing.T, d param.Design) (*sim.Engine, *daxfs.FS) {
	t.Helper()
	cfg := param.SmallTest(d)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ctrl *core.Controller
	if d == param.Tvarak {
		ctrl = core.New(e)
	}
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return e, fs
}

func TestCreateOpen(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	f, err := fs.Create("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() < 100 {
		t.Errorf("file size %d < requested 100", f.Size())
	}
	if _, err := fs.Create("a", 100); err == nil {
		t.Error("duplicate Create accepted")
	}
	got, err := fs.Open("a")
	if err != nil || got != f {
		t.Errorf("Open returned %v, %v", got, err)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Error("Open of missing file succeeded")
	}
}

func TestFilesAreStripeAligned(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	geo := fs.Geometry()
	for i := 0; i < 5; i++ {
		f, err := fs.Create(string(rune('a'+i)), uint64(1+i*3)*4096)
		if err != nil {
			t.Fatal(err)
		}
		q := uint64(geo.DIMMs - 1)
		if f.StartDI%q != 0 || f.Pages%q != 0 {
			t.Errorf("file %d: startDI=%d pages=%d not stripe-aligned (quantum %d)",
				i, f.StartDI, f.Pages, q)
		}
	}
}

func TestWriteReadRoundTripWithVerification(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	f, err := fs.Create("rt", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteAt(f, 1234, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt(f, 1234, got); err != nil {
		t.Fatalf("ReadAt (with checksum verification): %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	if err := fs.WriteAt(f, f.Size()-10, make([]byte, 100)); err == nil {
		t.Error("write beyond EOF accepted")
	}
}

func TestFSPathDetectsLostWriteAndRecovers(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, _ := fs.Create("victim", 32<<10)
	fs.WriteAt(f, 0, bytes.Repeat([]byte{1}, 4096))
	// Lose the next write to the first line of page 0 at device level.
	geo := fs.Geometry()
	addr := geo.DataIndexAddr(f.StartDI, 0)
	newPage := bytes.Repeat([]byte{2}, 4096)
	// Emulate a firmware-level partial corruption: overwrite the page
	// raw, then clobber one line so the stored checksum (of newPage)
	// mismatches.
	fs.WriteAt(f, 0, newPage)
	e.NVM.WriteRaw(addr, bytes.Repeat([]byte{0xEE}, 64))
	// Parity was built for newPage, so ReadAt must detect and recover.
	got := make([]byte, 4096)
	if err := fs.ReadAt(f, 0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, newPage) {
		t.Error("recovered page content wrong")
	}
}

func TestScrubFindsRawCorruption(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, _ := fs.Create("s", 32<<10)
	fs.WriteAt(f, 0, bytes.Repeat([]byte{7}, 8192))
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Fatalf("clean fs scrub found %v", bad)
	}
	// Corrupt page 1 behind the file system's back.
	e.NVM.WriteRaw(fs.Geometry().DataIndexAddr(f.StartDI+1, 0), []byte{0xBA, 0xD0})
	bad := fs.Scrub()
	if len(bad) != 1 || bad[0].File != "s" || bad[0].Page != 1 {
		t.Fatalf("scrub = %+v, want file s page 1", bad)
	}
	if err := fs.RecoverFilePage(f, 1); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("scrub after recovery still reports %v", bad)
	}
}

func TestMMapLifecycle(t *testing.T) {
	e, fs := fsFixture(t, param.Tvarak)
	f, _ := fs.Create("m", 64<<10)
	fs.WriteAt(f, 0, bytes.Repeat([]byte{5}, 4096))
	m, err := fs.MMap("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MMap("m"); err == nil {
		t.Error("double mmap accepted")
	}
	if err := fs.WriteAt(f, 0, []byte{1}); err == nil {
		t.Error("fs write to mapped file accepted")
	}
	if err := fs.ReadAt(f, 0, make([]byte, 8)); err == nil {
		t.Error("fs read of mapped file accepted")
	}
	// DAX access works and preserves prior fs-path content.
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, 64)
		m.Load(c, 0, buf)
		if buf[0] != 5 {
			t.Error("mapped read lost fs-written content")
		}
		m.Store(c, 4096, bytes.Repeat([]byte{6}, 64))
	}})
	if err := fs.MUnmap(m); err != nil {
		t.Fatal(err)
	}
	if err := fs.MUnmap(m); err == nil {
		t.Error("double munmap accepted")
	}
	// After munmap, page checksums are reconciled and the fs path works.
	got := make([]byte, 64)
	if err := fs.ReadAt(f, 4096, got); err != nil {
		t.Fatalf("ReadAt after munmap: %v", err)
	}
	if got[0] != 6 {
		t.Error("DAX-written content lost after munmap")
	}
}

func TestMappingAddrTranslation(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	fs.Create("t", 256<<10)
	m, err := fs.MMap("t")
	if err != nil {
		t.Fatal(err)
	}
	geo := fs.Geometry()
	f := func(off uint32) bool {
		o := uint64(off) % m.Size()
		a := m.Addr(o)
		// Physical address is in NVM, never on a parity page, and offset
		// within page is preserved.
		return geo.IsNVM(a) &&
			!geo.IsParityPage(geo.PageOf(a)) &&
			(a-geo.NVMBase())%4096 == o%4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMappingLoadStoreCrossPage(t *testing.T) {
	e, fs := fsFixture(t, param.Tvarak)
	fs.Create("x", 64<<10)
	m, _ := fs.MMap("x")
	data := make([]byte, 10000) // spans multiple (discontiguous) pages
	rand.New(rand.NewSource(3)).Read(data)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 1000, data)
		got := make([]byte, len(data))
		m.Load(c, 1000, got)
		if !bytes.Equal(got, data) {
			t.Error("cross-page mapping round trip failed")
		}
	}})
	// And through raw media after drain.
	got := make([]byte, len(data))
	for n := 0; n < len(data); {
		off := uint64(1000 + n)
		chunk := min(4096-int(off%4096), len(data)-n)
		e.NVM.ReadRaw(m.Addr(off), got[n:n+chunk])
		n += chunk
	}
	if !bytes.Equal(got, data) {
		t.Error("media content wrong after drain")
	}
}

func TestOutOfSpace(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	if _, err := fs.Create("big", 1<<40); err == nil {
		t.Error("impossible allocation accepted")
	}
}
