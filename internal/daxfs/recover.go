package daxfs

import (
	"fmt"

	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// The paper stores parity across NVM DIMMs (rather than across arbitrary
// pages) precisely so that recovery works for whole-device failures as well
// as firmware-bug corruption (§II-A). This file implements both the
// device-failure path and a timed background scrubber (the verification
// story of Table I's Mojim/HotPot row).

// RecoverDIMM reconstructs every page stored on NVM DIMM d — data pages
// from their stripe's surviving pages XOR parity, parity pages from the
// stripe's data pages — then reconciles derivable redundancy metadata
// (the per-page checksum table, whose own stripes are not parity-protected
// because checksums can always be recomputed from data; see DESIGN.md §4).
// It is a raw maintenance operation (untimed), run after a device
// replacement with caches drained.
func (fs *FS) RecoverDIMM(d int) error {
	geo := fs.geo
	if d < 0 || d >= geo.DIMMs {
		return fmt.Errorf("daxfs: no NVM DIMM %d", d)
	}
	rec := make([]byte, geo.PageSize)
	buf := make([]byte, geo.PageSize)
	for s := uint64(0); s < geo.Stripes(); s++ {
		victim := s*uint64(geo.DIMMs) + uint64(d)
		for i := range rec {
			rec[i] = 0
		}
		for k := 0; k < geo.DIMMs; k++ {
			p := s*uint64(geo.DIMMs) + uint64(k)
			if p == victim {
				continue
			}
			fs.eng.NVM.ReadRaw(geo.PageBase(p), buf)
			xsum.XORInto(rec, buf)
		}
		fs.eng.NVM.WriteRaw(geo.PageBase(victim), rec)
	}
	// Rebuild derivable metadata from the recovered content: per-page
	// checksums for unmapped files, DAX-CL-checksum regions for mapped
	// ones.
	for _, f := range fs.files {
		for p := uint64(0); p < f.Pages; p++ {
			fs.updatePageCsum(f, p)
		}
		if f.mapped && f.csumPages != 0 {
			fs.initCLChecksums(f)
		}
	}
	return nil
}

// Scrubber is a timed background scrubbing worker: it sweeps the files'
// pages on a simulated core, verifying system-checksums with real loads
// (consuming cache space and NVM bandwidth like Mojim/HotPot's scrubbers
// do), and recovers any corrupted page from parity. Stop it by setting
// *stop; it finishes the current pass first.
type Scrubber struct {
	fs *FS
	// PassGapCyc is the idle time between sweeps.
	PassGapCyc uint64
	// Passes and PagesVerified count completed work.
	Passes        uint64
	PagesVerified uint64
	// CorruptionsFound counts checksum mismatches repaired.
	CorruptionsFound uint64
}

// NewScrubber returns a scrubber for fs.
func NewScrubber(fs *FS) *Scrubber {
	return &Scrubber{fs: fs, PassGapCyc: 1 << 20}
}

// Worker returns the core function running scrub passes until *stop.
func (sc *Scrubber) Worker(stop *bool) func(*sim.Core) {
	return func(c *sim.Core) {
		for !*stop {
			sc.Pass(c)
			const slice = 10000
			for slept := uint64(0); !*stop && slept < sc.PassGapCyc; slept += slice {
				c.Compute(slice)
			}
		}
	}
}

// Pass verifies every unmapped file page against its per-page checksum and
// every mapped page against its DAX-CL-checksums (when maintained), with
// timed loads on core c. Corrupted pages are recovered from parity.
func (sc *Scrubber) Pass(c *sim.Core) {
	fs := sc.fs
	geo := fs.geo
	page := make([]byte, geo.PageSize)
	var ent [xsum.Size]byte
	for _, f := range fs.files {
		for p := uint64(0); p < f.Pages; p++ {
			base := fs.addr(f, p*uint64(geo.PageSize))
			for off := 0; off < geo.PageSize; off += geo.LineSize {
				c.Load(base+uint64(off), page[off:off+geo.LineSize])
			}
			sc.PagesVerified++
			ok := true
			switch {
			case f.mapped:
				// Mapped files are the controller's or the mapping
				// library's responsibility (under TVARAK the live
				// checksum state may be dirty in the controller's
				// caches); scrubbing is the software schemes' story for
				// at-rest data, so verify only unmapped files.
				continue
			default:
				c.Load(fs.pageCsumAddr(f.StartDI+p), ent[:])
				c.Compute(uint64(geo.PageSize / 8))
				ok = xsum.Checksum(page) == xsum.Get(ent[:], 0)
			}
			if !ok {
				sc.CorruptionsFound++
				// Recover from parity (raw repair, then the page is clean).
				if err := fs.RecoverFilePage(f, p); err == nil {
					continue
				}
			}
		}
	}
	sc.Passes++
}
