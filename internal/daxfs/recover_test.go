package daxfs_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

func TestRecoverDIMMRestoresEverything(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, err := fs.Create("survivor", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, int(f.Size()))
	rand.New(rand.NewSource(5)).Read(data)
	if err := fs.WriteAt(f, 0, data); err != nil {
		t.Fatal(err)
	}
	// Destroy every page of DIMM 2 (data and parity pages alike).
	geo := fs.Geometry()
	junk := bytes.Repeat([]byte{0xDE}, geo.PageSize)
	for s := uint64(0); s < geo.Stripes(); s++ {
		e.NVM.WriteRaw(geo.PageBase(s*uint64(geo.DIMMs)+2), junk)
	}
	if bad := fs.Scrub(); len(bad) == 0 {
		t.Fatal("scrub missed a destroyed DIMM")
	}
	if err := fs.RecoverDIMM(2); err != nil {
		t.Fatal(err)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Fatalf("scrub after DIMM recovery still reports %d bad pages", len(bad))
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt(f, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("file content wrong after DIMM recovery")
	}
}

func TestRecoverDIMMRejectsBadIndex(t *testing.T) {
	_, fs := fsFixture(t, param.Baseline)
	if err := fs.RecoverDIMM(99); err == nil {
		t.Error("bogus DIMM index accepted")
	}
}

func TestScrubberVerifiesAndRepairs(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, _ := fs.Create("cold", 64<<10)
	fs.WriteAt(f, 0, bytes.Repeat([]byte{3}, 32<<10))
	// Corrupt one page behind the fs's back.
	e.NVM.WriteRaw(fs.Geometry().DataIndexAddr(f.StartDI+2, 0), []byte{0xAA, 0xBB})
	sc := daxfs.NewScrubber(fs)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		sc.Pass(c)
	}})
	if sc.PagesVerified == 0 {
		t.Fatal("scrubber verified nothing")
	}
	if sc.CorruptionsFound != 1 {
		t.Errorf("scrubber found %d corruptions, want 1", sc.CorruptionsFound)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("corruption not repaired: %v", bad)
	}
	// Scrubbing consumes simulated time and bandwidth (it is not free).
	if e.St.Cycles == 0 || e.St.NVM.DataReads == 0 {
		t.Error("scrub pass cost nothing")
	}
}

func TestScrubberWorkerStops(t *testing.T) {
	e, fs := fsFixture(t, param.Baseline)
	f, _ := fs.Create("w", 32<<10)
	fs.WriteAt(f, 0, bytes.Repeat([]byte{1}, 4096))
	sc := daxfs.NewScrubber(fs)
	sc.PassGapCyc = 50000
	stop := false
	e.Run([]func(*sim.Core){
		func(c *sim.Core) {
			// Step in phase-sized chunks so the scrubber interleaves.
			for i := 0; i < 30; i++ {
				c.Compute(10000)
			}
			stop = true
		},
		sc.Worker(&stop),
	})
	if sc.Passes == 0 {
		t.Error("worker never completed a pass")
	}
}
