package daxfs

import (
	"fmt"

	"tvarak/internal/core"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// DaxMap is a direct-access mapping of a file: applications access its
// bytes with simulated loads and stores, bypassing the file system on the
// data path. Offsets are virtually contiguous; the mapping translates them
// to the physical data pages (which skip parity pages).
type DaxMap struct {
	fs *FS
	f  *File
}

// MMap direct-access-maps a file. Under the Tvarak design with
// DAX-CL-checksums the file system allocates the cache-line-granular
// checksum region, initializes it from current file content, and programs
// the controller's comparators; in naive page-checksum mode only the
// comparators are programmed (page checksums are already current).
func (fs *FS) MMap(name string) (*DaxMap, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	if f.mapped {
		return nil, fmt.Errorf("daxfs: %q already mapped", name)
	}
	if fs.ctrl != nil {
		m := core.Mapping{Name: f.Name, StartDI: f.StartDI, Pages: f.Pages}
		if fs.eng.Cfg.Tvarak.Features.CacheLineChecksums {
			lines := f.Pages * uint64(fs.geo.LinesPerPage())
			csumPages := (lines*xsum.Size + uint64(fs.geo.PageSize) - 1) / uint64(fs.geo.PageSize)
			di, err := fs.allocPages(csumPages)
			if err != nil {
				return nil, fmt.Errorf("daxfs: DAX-CL-checksum region for %q: %w", name, err)
			}
			f.csumDI, f.csumPages = di, csumPages
			fs.initCLChecksums(f)
			m.CsumDI = di
		}
		fs.ctrl.RegisterMapping(m)
	}
	f.mapped = true
	return &DaxMap{fs: fs, f: f}, nil
}

// initCLChecksums fills the mapping's DAX-CL-checksum region from current
// file content (raw setup work, untimed).
func (fs *FS) initCLChecksums(f *File) {
	geo := fs.geo
	ls := geo.LineSize
	lpp := geo.LinesPerPage()
	page := make([]byte, geo.PageSize)
	csums := make([]byte, f.Pages*uint64(lpp)*xsum.Size)
	for p := uint64(0); p < f.Pages; p++ {
		fs.eng.NVM.ReadRaw(fs.addr(f, p*uint64(geo.PageSize)), page)
		for l := 0; l < lpp; l++ {
			idx := int(p)*lpp + l
			xsum.Put(csums, idx, xsum.Checksum(page[l*ls:(l+1)*ls]))
		}
	}
	for off := 0; off < len(csums); off += geo.PageSize {
		end := min(off+geo.PageSize, len(csums))
		fs.eng.NVM.WriteRaw(geo.DataIndexAddr(f.csumDI, uint64(off)), csums[off:end])
	}
}

// ReinitCLChecksums rebuilds a mapping's DAX-CL-checksum region from
// current media content. Setup code that bulk-loads a mapped file with raw
// writes calls it before measurement; it is a no-op when the mapping has no
// checksum region (non-Tvarak designs or page-granular mode).
func (fs *FS) ReinitCLChecksums(m *DaxMap) {
	if m.f.csumPages == 0 {
		return
	}
	fs.initCLChecksums(m.f)
}

// ReconcileMapping rebuilds every redundancy structure of a mapped file
// from current media content: per-page system-checksums, cross-DIMM parity
// for all of its stripes, and the DAX-CL-checksum region when present.
// Setup code calls it after bulk-loading file content with raw writes.
func (fs *FS) ReconcileMapping(m *DaxMap) {
	f := m.f
	stripes := map[uint64]bool{}
	for p := uint64(0); p < f.Pages; p++ {
		fs.updatePageCsum(f, p)
		stripes[fs.geo.StripeOf(fs.geo.PageOfDataIndex(f.StartDI+p))] = true
	}
	for s := range stripes {
		fs.RebuildStripeParity(s)
	}
	fs.ReinitCLChecksums(m)
}

// MUnmap tears down a mapping: page-granular system-checksums are
// reconciled from the mapped data, and the controller's comparators are
// cleared.
func (fs *FS) MUnmap(m *DaxMap) error {
	f := m.f
	if !f.mapped {
		return fmt.Errorf("daxfs: %q not mapped", f.Name)
	}
	for p := uint64(0); p < f.Pages; p++ {
		fs.updatePageCsum(f, p)
	}
	if fs.ctrl != nil {
		fs.ctrl.UnregisterMapping(f.Name)
	}
	f.mapped = false
	f.csumDI, f.csumPages = 0, 0
	return nil
}

// File returns the mapped file.
func (m *DaxMap) File() *File { return m.f }

// Size returns the mapping's length in bytes.
func (m *DaxMap) Size() uint64 { return m.f.Size() }

// Addr translates a mapping offset to its physical address.
func (m *DaxMap) Addr(off uint64) uint64 { return m.fs.addr(m.f, off) }

// CsumDI returns the data-page index of the DAX-CL-checksum region
// (meaningful only under Tvarak with cache-line checksums).
func (m *DaxMap) CsumDI() uint64 { return m.f.csumDI }

// Load reads len(buf) bytes at mapping offset off on core c, splitting the
// access at page boundaries (pages are physically discontiguous across
// parity holes).
func (m *DaxMap) Load(c *sim.Core, off uint64, buf []byte) {
	ps := uint64(m.fs.geo.PageSize)
	for n := uint64(0); n < uint64(len(buf)); {
		cur := off + n
		chunk := min(uint64(len(buf))-n, ps-cur%ps)
		c.Load(m.Addr(cur), buf[n:n+chunk])
		n += chunk
	}
}

// Store writes data at mapping offset off on core c.
func (m *DaxMap) Store(c *sim.Core, off uint64, data []byte) {
	ps := uint64(m.fs.geo.PageSize)
	for n := uint64(0); n < uint64(len(data)); {
		cur := off + n
		chunk := min(uint64(len(data))-n, ps-cur%ps)
		c.Store(m.Addr(cur), data[n:n+chunk])
		n += chunk
	}
}

// Load64 reads a little-endian uint64 at mapping offset off.
func (m *DaxMap) Load64(c *sim.Core, off uint64) uint64 {
	var b [8]byte
	m.Load(c, off, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Store64 writes a little-endian uint64 at mapping offset off.
func (m *DaxMap) Store64(c *sim.Core, off uint64, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	m.Store(c, off, b[:])
}

// ---------------------------------------------------------------------------
// Scrubbing and recovery
// ---------------------------------------------------------------------------

// Corruption reports one page that failed scrub verification.
type Corruption struct {
	File string
	Page uint64 // data page index within the file
}

// Scrub verifies system-checksums over all files: page-granular checksums
// for unmapped files and DAX-CL-checksums for mapped files (the background
// scrubbing of the Mojim/HotPot rows in Table I). It reads media directly
// (untimed) and returns all corrupted pages found. Call it with caches
// drained (sim.Engine.Run drains on return); dirty cached state is newer
// than media and would read as spurious mismatches. For a timed scrubber
// that runs on a core during workloads, see Scrubber.
func (fs *FS) Scrub() []Corruption {
	var bad []Corruption
	geo := fs.geo
	page := make([]byte, geo.PageSize)
	for _, f := range fs.files {
		for p := uint64(0); p < f.Pages; p++ {
			fs.eng.NVM.ReadRaw(fs.addr(f, p*uint64(geo.PageSize)), page)
			if !f.mapped || fs.ctrl == nil || !fs.eng.Cfg.Tvarak.Features.CacheLineChecksums {
				if xsum.Checksum(page) != fs.readPageCsum(f.StartDI+p) {
					bad = append(bad, Corruption{File: f.Name, Page: p})
				}
				continue
			}
			ls := geo.LineSize
			for l := 0; l < geo.LinesPerPage(); l++ {
				idx := p*uint64(geo.LinesPerPage()) + uint64(l)
				var ent [xsum.Size]byte
				fs.eng.NVM.ReadRaw(geo.DataIndexAddr(f.csumDI, idx*xsum.Size), ent[:])
				if xsum.Checksum(page[l*ls:(l+1)*ls]) != xsum.Get(ent[:], 0) {
					bad = append(bad, Corruption{File: f.Name, Page: p})
					break
				}
			}
		}
	}
	return bad
}

// RecoverFilePage reconstructs file page p from cross-DIMM parity
// (XOR of the parity page and the stripe's other data pages), repairs
// media, and re-verifies the page against its system-checksum.
func (fs *FS) RecoverFilePage(f *File, page uint64) error {
	geo := fs.geo
	pp := geo.PageOfDataIndex(f.StartDI + page)
	s := geo.StripeOf(pp)
	rec := make([]byte, geo.PageSize)
	buf := make([]byte, geo.PageSize)
	fs.eng.NVM.ReadRaw(geo.PageBase(geo.ParityPage(s)), rec)
	for k := 0; k < geo.DIMMs; k++ {
		cand := s*uint64(geo.DIMMs) + uint64(k)
		if k == geo.ParitySlot(s) || cand == pp {
			continue
		}
		fs.eng.NVM.ReadRaw(geo.PageBase(cand), buf)
		xsum.XORInto(rec, buf)
	}
	if !f.mapped {
		if xsum.Checksum(rec) != fs.readPageCsum(f.StartDI+page) {
			return fmt.Errorf("daxfs: page %d of %q unrecoverable (reconstruction fails checksum)", page, f.Name)
		}
	}
	fs.eng.NVM.WriteRaw(geo.PageBase(pp), rec)
	return nil
}
