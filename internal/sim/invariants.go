package sim

import (
	"fmt"

	"tvarak/internal/cache"
)

// CheckInvariants validates the structural invariants of the hierarchy and
// returns the first violation found. Tests call it after workloads; it is
// not part of the simulated machine.
//
// Invariants:
//  1. L1 ⊆ L2 per core, and private lines ⊆ LLC (inclusive hierarchy).
//  2. The LLC directory covers every private copy: if core i holds a line,
//     bit i of the LLC line's Owners is set.
//  3. A line Modified in any private cache has exactly one owning core.
//  4. Data lines live only in data ways; any line in the redundancy or
//     diff partitions is never present in a private cache.
func (e *Engine) CheckInvariants() error { return e.CheckInvariantsAgainst(nil) }

// PartitionVerifier checks the content of one LLC redundancy/diff
// partition line against an external reference model. The shadow oracle
// (internal/oracle) implements it: CheckInvariantsAgainst hands it every
// cached partition line so stale checksums, parity or diff entries are
// caught while still resident, not only after writeback.
type PartitionVerifier interface {
	// VerifyPartitionLine receives a partition-resident line's address
	// and current cached content and returns an error if the content
	// contradicts the reference model. Implementations must not modify
	// data.
	VerifyPartitionLine(addr uint64, data []byte) error
}

// CheckInvariantsAgainst is CheckInvariants with an optional reference
// model: when v is non-nil, every line cached in the LLC redundancy/diff
// partitions is additionally checked against it. A nil v checks only the
// structural invariants.
func (e *Engine) CheckInvariantsAgainst(v PartitionVerifier) error {
	type holder struct {
		cores []int
		dirty bool
	}
	held := map[uint64]*holder{}
	for _, c := range e.Cores {
		for lvl, pc := range []*cache.Cache{c.l1, c.l2} {
			var err error
			pc.ForEach(0, pc.Ways(), func(l *cache.Line) {
				if err != nil {
					return
				}
				if lvl == 0 { // L1 ⊆ L2
					if c.l2.Lookup(l.Addr, 0, c.l2.Ways()) == nil {
						err = fmt.Errorf("sim: core %d L1 line %#x missing from L2", c.ID, l.Addr)
						return
					}
				}
				h := held[l.Addr]
				if h == nil {
					h = &holder{}
					held[l.Addr] = h
				}
				if len(h.cores) == 0 || h.cores[len(h.cores)-1] != c.ID {
					h.cores = append(h.cores, c.ID)
				}
				if l.Dirty() {
					h.dirty = true
				}
			})
			if err != nil {
				return err
			}
		}
	}
	for addr, h := range held {
		ll := e.Bank(addr).Lookup(addr, 0, e.dataWays)
		if ll == nil {
			return fmt.Errorf("sim: private line %#x missing from LLC data partition (inclusion)", addr)
		}
		for _, id := range h.cores {
			if ll.Owners&ownerBit(id) == 0 {
				return fmt.Errorf("sim: LLC directory for %#x missing owner core %d", addr, id)
			}
		}
		if h.dirty && len(h.cores) > 1 {
			return fmt.Errorf("sim: line %#x dirty in a private cache with %d sharers", addr, len(h.cores))
		}
	}
	// Partition isolation: nothing in redundancy/diff ways may be in a
	// private cache.
	for _, b := range e.Banks {
		var err error
		b.ForEach(e.dataWays, b.Ways(), func(l *cache.Line) {
			if err != nil {
				return
			}
			if v != nil {
				if verr := v.VerifyPartitionLine(l.Addr, l.Data); verr != nil {
					err = fmt.Errorf("sim: partition line %#x contradicts reference model: %w", l.Addr, verr)
					return
				}
			}
			if _, ok := held[l.Addr]; ok {
				// A diff-partition entry shares its tag with the data
				// line it shadows, so private copies of the DATA line
				// are fine; redundancy lines (checksums/parity) must
				// never appear above the LLC. Distinguish by whether
				// the data partition also holds the address.
				if e.Bank(l.Addr).Lookup(l.Addr, 0, e.dataWays) == nil {
					err = fmt.Errorf("sim: redundancy line %#x cached in a private cache", l.Addr)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
