package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

// traceSink collects every event for cross-run comparison. The sharded
// engine only ever calls Trace from the engine thread (worker events are
// buffered and drained at the phase barrier), so no locking is needed here.
type traceSink struct{ evs []obs.Event }

func (s *traceSink) Trace(ev obs.Event) { s.evs = append(s.evs, ev) }

// shardWorkload returns a deterministic 4-core mixed workload: per-core
// private NVM and DRAM regions, random-stride stores and loads with enough
// footprint (256 KB NVM per core against a 1 MB LLC with tiny L1/L2) to
// drive steady eviction and writeback traffic through the shard rings.
func shardWorkload(ops int) []func(*Core) {
	workers := make([]func(*Core), 4)
	for i := range workers {
		id := i
		workers[i] = func(c *Core) {
			e := c.Engine()
			nvmBase := e.Geo.NVMBase() + uint64(id)<<20
			dramBase := uint64(1)<<16 + uint64(id)<<20
			rng := rand.New(rand.NewSource(int64(42 + id)))
			var b [8]byte
			for n := 0; n < ops; n++ {
				c.Store64(nvmBase+uint64(rng.Intn(4096))*64, rng.Uint64())
				c.Load(nvmBase+uint64(rng.Intn(4096))*64, b[:])
				c.Store64(dramBase+uint64(rng.Intn(1024))*64, rng.Uint64())
				c.Compute(uint64(rng.Intn(50)))
			}
		}
	}
	return workers
}

// runShardWorkload builds a baseline SmallTest machine with the given
// shard count, runs the canonical workload, and returns the engine and its
// collected trace.
func runShardWorkload(t *testing.T, shards, ops int) (*Engine, *traceSink) {
	t.Helper()
	cfg := param.SmallTest(param.Baseline)
	cfg.Shards = shards
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &traceSink{}
	e.Tracer = sink
	e.Run(shardWorkload(ops))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return e, sink
}

// readMedia snapshots the workload's NVM and DRAM footprints from raw
// media (legal after Run: the engine has drained and parked its workers).
func readMedia(e *Engine) []byte {
	buf := make([]byte, 8<<20)
	for id := 0; id < 4; id++ {
		e.NVM.ReadRaw(e.Geo.NVMBase()+uint64(id)<<20, buf[id<<20:id<<20+4096*64])
		e.DRAM.ReadRaw(uint64(1)<<16+uint64(id)<<20, buf[4<<20+id<<20:4<<20+id<<20+1024*64])
	}
	return buf
}

// TestShardIdentity is the tentpole gate: statistics, DIMM timing, media
// content and the full event trace must be byte-identical whether the
// weave phase runs serially or sharded across 2 or 4 OS threads.
func TestShardIdentity(t *testing.T) {
	const ops = 3000
	ref, refSink := runShardWorkload(t, 1, ops)
	refMedia := readMedia(ref)
	for _, shards := range []int{2, 4} {
		e, sink := runShardWorkload(t, shards, ops)
		if *e.St != *ref.St {
			t.Errorf("shards=%d: stats diverge from serial run:\nserial:  %+v\nsharded: %+v", shards, *ref.St, *e.St)
		}
		if got, want := e.NVM.BusyUntil(), ref.NVM.BusyUntil(); got != want {
			t.Errorf("shards=%d: NVM BusyUntil %d, serial %d", shards, got, want)
		}
		if got, want := e.DRAM.BusyUntil(), ref.DRAM.BusyUntil(); got != want {
			t.Errorf("shards=%d: DRAM BusyUntil %d, serial %d", shards, got, want)
		}
		if !bytes.Equal(readMedia(e), refMedia) {
			t.Errorf("shards=%d: media content diverges from serial run", shards)
		}
		// Baseline runs emit only engine-origin events, all inline on the
		// engine thread in program order, so even the interleaving matches.
		if len(sink.evs) != len(refSink.evs) {
			t.Fatalf("shards=%d: %d events, serial %d", shards, len(sink.evs), len(refSink.evs))
		}
		for i := range sink.evs {
			if sink.evs[i] != refSink.evs[i] {
				t.Fatalf("shards=%d: event %d diverges: %+v vs serial %+v", shards, i, sink.evs[i], refSink.evs[i])
			}
		}
	}
}

// TestShardClampsToConfig checks the knob's edges: Shards=0 and Shards=1
// stay fully serial (shard runtime never constructed).
func TestShardClampsToConfig(t *testing.T) {
	for _, shards := range []int{0, 1} {
		cfg := param.SmallTest(param.Baseline)
		cfg.Shards = shards
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(shardWorkload(50))
		if e.srt != nil || e.shardOn {
			t.Errorf("Shards=%d built a shard runtime (srt=%v shardOn=%v)", shards, e.srt != nil, e.shardOn)
		}
	}
}

// TestShardRawReadSeesPendingWrites covers the flush hook: a raw media
// read issued mid-run (as oracles and setup code do) must first quiesce
// the shard rings so deferred writebacks become visible.
func TestShardRawReadSeesPendingWrites(t *testing.T) {
	cfg := param.SmallTest(param.Baseline)
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := e.Geo.NVMBase() + 64*7
	e.Run([]func(*Core){func(c *Core) {
		c.Store64(target, 0xfeedface)
		// Sweep 2 MB of distinct lines: twice the LLC's capacity, so the
		// target line's writeback is forced through the shard rings.
		sweep := e.Geo.NVMBase() + 4<<20
		for i := uint64(0); i < (2<<20)/64; i++ {
			c.Store64(sweep+i*64, i)
		}
		var b [8]byte
		e.NVM.ReadRaw(target, b[:])
		if got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24; got != 0xfeedface {
			t.Errorf("raw read mid-run saw %#x, want 0xfeedface", got)
		}
	}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShardDegradeOnInjection checks the safety valve: touching the
// fault-injection surface mid-run drops the engine back to fully serial
// execution for the rest of the run, with results identical to an
// all-serial run of the same workload.
func TestShardDegradeOnInjection(t *testing.T) {
	run := func(shards int) *Engine {
		cfg := param.SmallTest(param.Baseline)
		cfg.Shards = shards
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := e.Geo.NVMBase()
		e.Run([]func(*Core){func(c *Core) {
			for i := uint64(0); i < 2000; i++ {
				c.Store64(base+(i%512)*64, i)
			}
			// CancelBugs is a no-op here (nothing armed) but touches the
			// injection surface, so a sharded engine must degrade.
			e.NVM.CancelBugs(base)
			if e.shardOn {
				t.Error("engine still sharded after fault-injection touch")
			}
			for i := uint64(0); i < 2000; i++ {
				c.Store64(base+(i%512)*64, ^i)
			}
		}})
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	serial, sharded := run(1), run(4)
	if *serial.St != *sharded.St {
		t.Errorf("degraded run diverges from serial:\nserial:   %+v\ndegraded: %+v", *serial.St, *sharded.St)
	}
}

// TestShardObserversStaySerial checks that a machine with media observers
// installed (the shadow oracle) never activates sharding: observers must
// fire on the engine thread in program order.
func TestShardObserversStaySerial(t *testing.T) {
	cfg := param.SmallTest(param.Baseline)
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.NVM.SetWriteObserver(func(addr uint64, data []byte, timed bool, class nvm.Class) {})
	base := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) {
		if e.shardOn {
			t.Error("engine sharded despite a live write observer")
		}
		for i := uint64(0); i < 1000; i++ {
			c.Store64(base+(i%512)*64, i)
		}
	}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShardConfigValidation pins the Shards knob's validation range.
func TestShardConfigValidation(t *testing.T) {
	cfg := param.SmallTest(param.Baseline)
	cfg.Shards = 65
	if _, err := New(cfg); err == nil {
		t.Error("Shards=65 accepted, want validation error")
	}
	cfg.Shards = -1
	if _, err := New(cfg); err == nil {
		t.Error("Shards=-1 accepted, want validation error")
	}
}
