package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tvarak/internal/obs"
)

// collectTracer records events for assertions.
type collectTracer struct{ events []obs.Event }

func (t *collectTracer) Trace(ev obs.Event) { t.events = append(t.events, ev) }

func (t *collectTracer) count(k obs.EventKind) int {
	n := 0
	for _, ev := range t.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestEngineContainsWorkloadPanic(t *testing.T) {
	e := mkEngine(t)
	tr := &collectTracer{}
	e.Tracer = tr
	// Core 0 panics mid-run; core 1 would spin forever if the engine did
	// not unwind it at the next phase boundary after containment.
	e.Run([]func(*Core){
		func(c *Core) {
			c.Compute(15000) // past the first phase boundary
			panic("workload bug")
		},
		func(c *Core) {
			for {
				c.Compute(1000)
			}
		},
	})
	err := e.Err()
	if err == nil {
		t.Fatal("contained panic not reported by Err")
	}
	var wp *WorkloadPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Err = %v, want *WorkloadPanicError", err)
	}
	if wp.Core != 0 || wp.Value != "workload bug" {
		t.Errorf("panic attributed to core %d value %v", wp.Core, wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "cancel_test") {
		t.Error("panic stack does not point at the workload")
	}
	if tr.count(obs.EvCancel) != 1 {
		t.Errorf("EvCancel emitted %d times, want 1", tr.count(obs.EvCancel))
	}
	for _, ev := range tr.events {
		if ev.Kind == obs.EvCancel && ev.Aux != 1 {
			t.Errorf("EvCancel Aux = %d, want 1 (panic cause)", ev.Aux)
		}
	}
}

func TestEnginePoisonedAfterPanic(t *testing.T) {
	e := mkEngine(t)
	e.Run([]func(*Core){func(c *Core) { panic("first") }})
	first := e.Err()
	if first == nil {
		t.Fatal("expected an error after the panic")
	}
	ran := false
	e.Run([]func(*Core){func(c *Core) { ran = true }})
	if ran {
		t.Error("poisoned engine still ran a worker")
	}
	if e.Err() != first {
		t.Errorf("poisoned engine replaced its error: %v", e.Err())
	}
}

func TestEngineCancelsAtPhaseBoundary(t *testing.T) {
	e := mkEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the very first phase boundary stops the run
	e.SetContext(ctx)
	e.Run([]func(*Core){func(c *Core) {
		for { // would never terminate without cooperative cancellation
			c.Compute(1000)
		}
	}})
	err := e.Err()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// The run stopped at a phase boundary, not at an arbitrary point: the
	// clock is a whole number of phases.
	phase := e.Cfg.PhaseCyc
	if phase == 0 {
		phase = 10000
	}
	if got := e.Cores[0].Clock; got%phase != 0 || got == 0 {
		t.Errorf("cancelled run stopped at clock %d, want a non-zero phase multiple of %d", got, phase)
	}
}

func TestEngineRunsCleanWithUncancelledContext(t *testing.T) {
	e := mkEngine(t)
	e.SetContext(context.Background())
	done := false
	e.Run([]func(*Core){func(c *Core) {
		c.Compute(25000)
		done = true
	}})
	if err := e.Err(); err != nil {
		t.Fatalf("clean run under a live context errored: %v", err)
	}
	if !done {
		t.Error("worker did not finish")
	}
}
