// Package sim is the execution-driven simulation engine: workloads run as
// Go code issuing loads, stores and compute cycles against simulated cores,
// and the engine walks each access through private L1/L2 caches, the shared
// inclusive banked LLC (MESI directory, LRU, way-partitioning) and the
// memory devices, accounting the runtime, energy and access-count metrics
// the paper reports.
//
// Scheduling follows zsim's bound-weave idea: each core simulates
// independently for a fixed phase (10k cycles by default) and cores
// synchronize at phase boundaries, in core-ID order, which makes runs
// deterministic.
//
// The redundancy controller (TVARAK, package internal/core) plugs in via
// the RedundancyController interface: the engine calls OnFill for every
// NVM→LLC data fill, OnDirtyInstall when a clean LLC line first receives
// dirty data, and OnWriteback for every LLC→NVM data writeback.
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"tvarak/internal/cache"
	"tvarak/internal/geom"
	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/stats"
)

// RedundancyController is implemented by the TVARAK controller
// (internal/core). A nil controller means no redundancy hardware
// (Baseline and the software-only designs).
type RedundancyController interface {
	// OnFill verifies the 64 B line read from NVM at addr. The fill was
	// issued at cycle issue and the data arrived at cycle complete; the
	// controller's checksum access proceeds in parallel with the data
	// read (the address is known at issue time — Fig. 5 of the paper), so
	// OnFill returns only the extra latency beyond complete before the
	// verified line is handed to the bank controller. On a checksum
	// mismatch the controller recovers the line from parity in place
	// (mutating data) before returning.
	OnFill(issue, complete uint64, addr uint64, data []byte) uint64
	// OnDirtyInstall runs when a clean LLC line first receives dirty data;
	// oldClean is the line's content before the merge (equal to NVM's
	// persisted copy). TVARAK stashes it in the data-diff partition.
	OnDirtyInstall(now uint64, addr uint64, oldClean []byte)
	// OnWriteback updates redundancy for an LLC→NVM writeback of newData.
	// It is called before the engine writes the data line to NVM, so
	// NVM still holds the old content. oldClean is non-nil only when the
	// line was clean in the LLC until this very eviction merged upper-
	// level dirty data into it (in which case no diff was ever stashed).
	OnWriteback(now uint64, addr uint64, oldClean, newData []byte)
	// Drain flushes dirty redundancy state (cached checksum and parity
	// lines) to NVM at the end of the fixed-work run.
	Drain(now uint64)
}

// ShardableController is a RedundancyController whose execution context —
// the stats sink it accumulates into, the NVM accessor it reads/writes
// media through, and the event sink it traces to — can be rebound. The
// sharded engine points these at a worker's private sinks before running a
// deferred OnWriteback bundle on that worker, and back at the engine's own
// sinks before every inline (latency-bearing) call. A controller that does
// not implement this keeps the engine serial at any Shards setting.
type ShardableController interface {
	RedundancyController
	SetShardExec(st *stats.Stats, mem nvm.Accessor, emit func(obs.EventKind, uint64, uint64, uint64))
}

// Engine owns the simulated machine.
type Engine struct {
	Cfg   *param.Config
	Geo   geom.Geometry
	NVM   *nvm.Memory
	DRAM  *nvm.Memory
	St    *stats.Stats
	Banks []*cache.Cache
	Cores []*Core
	Red   RedundancyController

	// Tracer, when non-nil, receives structured events (fills, writebacks,
	// LLC evictions here; controller events from internal/core). The nil
	// default keeps every hook site to one predictable branch.
	Tracer obs.Tracer
	// Sampler, when non-nil, snapshots statistics deltas at phase
	// boundaries into a per-run time series. Attach via AttachSampler.
	Sampler *obs.Sampler
	// Probe, when non-nil, is invoked at every bound-weave phase boundary
	// with the engine's cumulative clock, completed accesses, and the
	// deferred items still queued in shard rings just before the barrier.
	// It is wall-clock-domain live telemetry (internal/live): strictly
	// read-only, never consulted by the simulation, and the nil default
	// costs one branch per phase — nothing per access.
	Probe func(cycles, accesses, shardQueued uint64)

	dataWays int
	lineBuf  []byte
	// evictBuf holds the pre-merge clean content of an LLC victim for the
	// duration of one evictLLC call (OnWriteback consumes it synchronously),
	// avoiding a per-eviction allocation.
	evictBuf []byte
	// Precomputed line/bank indexing for BankIndex, which runs on every LLC
	// access: shift when the line size is a power of two, mask when the
	// bank count is (the full-scale machine has 12 banks, so the modulo
	// fallback stays).
	lineShift uint
	linePow2  bool
	nbanks    uint64
	bankMask  uint64
	bankPow2  bool

	// Cancellation and containment state (see Run). ctx is observed only
	// at bound-weave phase boundaries; cancelled tells yielded workers to
	// unwind; runErr poisons the engine once a run was cancelled or a
	// workload panicked, so later Run calls return immediately.
	ctx       context.Context
	cancelled bool
	runErr    error

	// Sharded-weave state (see shard.go): shards is the configured worker
	// count, srt the lazily built runtime, shardOn whether deferral is
	// active for the current Run, and emitFn a preallocated method value of
	// Emit handed to the controller as its engine-side event sink.
	shards  int
	srt     *shardRT
	shardOn bool
	emitFn  func(obs.EventKind, uint64, uint64, uint64)
}

// WorkloadPanicError is the structured error a contained workload panic
// becomes: the engine recovers the panic on the worker goroutine, unwinds
// the remaining workers at the next phase boundary, drains, and records
// this as the run error (Err).
type WorkloadPanicError struct {
	// Core is the ID of the core whose worker panicked.
	Core int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the panic.
	Stack []byte
}

func (e *WorkloadPanicError) Error() string {
	return fmt.Sprintf("sim: workload on core %d panicked: %v", e.Core, e.Value)
}

// New builds the machine described by cfg.
func New(cfg *param.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := geom.New(cfg.LineSize, cfg.PageSize, cfg.DRAMBytes, cfg.NVMBytes, cfg.NVM.DIMMs)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Cfg:      cfg,
		Geo:      geo,
		St:       &stats.Stats{},
		dataWays: cfg.DataWays(),
		lineBuf:  make([]byte, cfg.LineSize),
		evictBuf: make([]byte, cfg.LineSize),
		shards:   max(1, cfg.Shards),
	}
	e.emitFn = e.Emit
	if ls := uint64(cfg.LineSize); ls&(ls-1) == 0 {
		e.linePow2 = true
		e.lineShift = uint(bits.TrailingZeros64(ls))
	}
	e.nbanks = uint64(cfg.LLCBanks)
	if e.nbanks&(e.nbanks-1) == 0 {
		e.bankPow2 = true
		e.bankMask = e.nbanks - 1
	}
	e.NVM = nvm.New(nvm.NVMKind, geo, cfg.NVM, e.St)
	e.DRAM = nvm.New(nvm.DRAMKind, geo, cfg.DRAM, e.St)
	e.Banks = make([]*cache.Cache, cfg.LLCBanks)
	for i := range e.Banks {
		e.Banks[i] = cache.New(cfg.LLCBank.Sets(cfg.LineSize), cfg.LLCBank.Ways, cfg.LineSize, uint64(cfg.LLCBanks))
	}
	e.Cores = make([]*Core, cfg.Cores)
	for i := range e.Cores {
		e.Cores[i] = &Core{
			ID:  i,
			eng: e,
			l1:  cache.New(cfg.L1.Sets(cfg.LineSize), cfg.L1.Ways, cfg.LineSize, 1),
			l2:  cache.New(cfg.L2.Sets(cfg.LineSize), cfg.L2.Ways, cfg.LineSize, 1),
		}
	}
	return e, nil
}

// SetRedundancy attaches the hardware redundancy controller.
func (e *Engine) SetRedundancy(r RedundancyController) { e.Red = r }

// SetContext installs a cancellation context. The engine checks it at
// every bound-weave phase boundary: once cancelled, the remaining workers
// unwind at the barrier (no store is in flight there), the run drains all
// dirty state so media stays consistent, and Err reports the cause. A nil
// context (the default) never cancels.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// Err returns the sticky run error: non-nil after a run was cancelled via
// the context or a workload panicked (WorkloadPanicError). A poisoned
// engine ignores further Run calls — its simulated state is a consistent
// drained snapshot of an incomplete run, useful for inspection only.
func (e *Engine) Err() error { return e.runErr }

// AttachSampler attaches (or, with nil, detaches) an epoch sampler,
// rebasing it on the current statistics so it measures only the region
// that follows. Attach after ResetMeasurement to sample the fixed-work
// region alone.
func (e *Engine) AttachSampler(s *obs.Sampler) {
	if s != nil {
		s.Rebase(*e.St)
	}
	e.Sampler = s
}

// Emit forwards one event to the attached tracer. It is the hook-point
// helper for the engine and the redundancy controller; with no tracer
// attached it costs a single branch.
func (e *Engine) Emit(kind obs.EventKind, cycle, addr, aux uint64) {
	if e.Tracer == nil {
		return
	}
	e.Tracer.Trace(obs.Event{Kind: kind, Cycle: cycle, Addr: addr, Aux: aux})
}

// DataWays returns the LLC ways available to application data.
func (e *Engine) DataWays() int { return e.dataWays }

// Bank returns the LLC bank that line address la maps to.
func (e *Engine) Bank(la uint64) *cache.Cache {
	return e.Banks[e.BankIndex(la)]
}

// BankIndex returns the index of the LLC bank that la maps to; the TVARAK
// controller co-located with that bank handles la's redundancy.
func (e *Engine) BankIndex(la uint64) int {
	var idx uint64
	if e.linePow2 {
		idx = la >> e.lineShift
	} else {
		idx = la / uint64(e.Cfg.LineSize)
	}
	if e.bankPow2 {
		return int(idx & e.bankMask)
	}
	return int(idx % e.nbanks)
}

// mem returns the device backing addr.
func (e *Engine) mem(addr uint64) *nvm.Memory {
	if e.Geo.IsNVM(addr) {
		return e.NVM
	}
	return e.DRAM
}

// ownerBit is the directory bit for core id.
func ownerBit(id int) uint64 { return 1 << uint(id) }

// ---------------------------------------------------------------------------
// Access path
// ---------------------------------------------------------------------------

// access ensures la is present in c's L1 with the required permission and
// returns the L1 line. It charges load latency fully; stores retire through
// the store buffer and charge only L1 latency (their fills still consume
// DIMM bandwidth and energy).
func (e *Engine) access(c *Core, la uint64, write bool) *cache.Line {
	c.maybeYield()
	lat := e.Cfg.L1.LatencyCyc
	l1 := c.l1.Lookup(la, 0, c.l1.Ways())
	switch {
	case l1 != nil && (!write || l1.State != cache.Shared):
		e.St.AddCache(stats.L1, true, e.Cfg.L1.HitEnergyPJ)
	case l1 != nil: // store to a Shared line: upgrade via the directory
		e.St.AddCache(stats.L1, true, e.Cfg.L1.HitEnergyPJ)
		lat += e.upgrade(c, la)
		if l2 := c.l2.Lookup(la, 0, c.l2.Ways()); l2 != nil {
			l2.State = cache.Exclusive
		}
		l1.State = cache.Exclusive
	default:
		e.St.AddCache(stats.L1, false, e.Cfg.L1.MissEnergyPJ)
		l1 = e.fillL1(c, la, write, &lat)
	}
	if write {
		l1.State = cache.Modified
	}
	c.l1.Touch(l1)
	if write {
		c.Clock += e.Cfg.L1.LatencyCyc
		e.St.StoreIssueCyc += e.Cfg.L1.LatencyCyc
		e.St.Stores++
	} else {
		c.Clock += lat
		e.St.LoadStallCyc += lat
		e.St.Loads++
	}
	return l1
}

// fillL1 brings la into c's L1 from L2 (filling L2 from the LLC if needed).
func (e *Engine) fillL1(c *Core, la uint64, write bool, lat *uint64) *cache.Line {
	*lat += e.Cfg.L2.LatencyCyc
	l2 := c.l2.Lookup(la, 0, c.l2.Ways())
	switch {
	case l2 != nil && (!write || l2.State != cache.Shared):
		e.St.AddCache(stats.L2, true, e.Cfg.L2.HitEnergyPJ)
	case l2 != nil:
		e.St.AddCache(stats.L2, true, e.Cfg.L2.HitEnergyPJ)
		*lat += e.upgrade(c, la)
		l2.State = cache.Exclusive
	default:
		e.St.AddCache(stats.L2, false, e.Cfg.L2.MissEnergyPJ)
		l2 = e.fillL2(c, la, write, lat)
	}
	c.l2.Touch(l2)
	v := c.l1.Victim(la, 0, c.l1.Ways())
	if v.State != cache.Invalid {
		e.evictL1(c, v)
	}
	c.l1.Install(v, la, l2.Data, l2.State)
	return v
}

// evictL1 drops an L1 line, merging dirty data into the (inclusive) L2 copy.
func (e *Engine) evictL1(c *Core, v *cache.Line) {
	if v.Dirty() {
		l2 := c.l2.Lookup(v.Addr, 0, c.l2.Ways())
		if l2 == nil {
			panic(fmt.Sprintf("sim: L1/L2 inclusion violated for %#x", v.Addr))
		}
		copy(l2.Data, v.Data)
		l2.State = cache.Modified
		e.St.AddCache(stats.L2, true, e.Cfg.L2.HitEnergyPJ)
	}
	c.l1.Invalidate(v)
}

// fillL2 brings la into c's L2 from the LLC (filling the LLC from memory if
// needed) and returns the L2 line with an appropriate MESI grant.
func (e *Engine) fillL2(c *Core, la uint64, write bool, lat *uint64) *cache.Line {
	*lat += e.Cfg.LLCBank.LatencyCyc
	b := e.Bank(la)
	ll := b.Lookup(la, 0, e.dataWays)
	if ll != nil {
		e.St.AddCache(stats.LLC, true, e.Cfg.LLCBank.HitEnergyPJ)
		*lat += e.resolveSharers(c, ll, write)
	} else {
		e.St.AddCache(stats.LLC, false, e.Cfg.LLCBank.MissEnergyPJ)
		ll = e.fillLLC(c, la, lat)
	}
	b.Touch(ll)
	grant := cache.Shared
	if write || ll.Owners&^ownerBit(c.ID) == 0 {
		grant = cache.Exclusive
	}
	ll.Owners |= ownerBit(c.ID)
	v := c.l2.Victim(la, 0, c.l2.Ways())
	if v.State != cache.Invalid {
		e.evictL2(c, v)
	}
	c.l2.Install(v, la, ll.Data, grant)
	return v
}

// resolveSharers handles an LLC hit on a line other cores hold: it pulls
// newer dirty data down into the LLC (stashing a diff if the LLC copy was
// clean), downgrades sharers on reads and invalidates them on writes.
// It returns the added coherence latency.
func (e *Engine) resolveSharers(c *Core, ll *cache.Line, write bool) uint64 {
	others := ll.Owners &^ ownerBit(c.ID)
	if others == 0 {
		return 0
	}
	// One snoop round resolves all sharers regardless of their count: the
	// directory broadcasts in parallel and the slowest response bounds the
	// added latency (see DESIGN.md). Energy and L2 accesses still accrue
	// per owner below.
	extra := e.Cfg.LLCBank.LatencyCyc
	for rem := others; rem != 0; { // visit owner cores in ascending ID order
		d := e.Cores[bits.TrailingZeros64(rem)]
		rem &^= ownerBit(d.ID)
		e.St.AddCache(stats.L2, true, e.Cfg.L2.HitEnergyPJ)
		newest := e.newestPrivate(d, ll.Addr)
		if newest != nil {
			e.mergeIntoLLC(c, ll, newest)
		}
		if write {
			e.invalidatePrivate(d, ll.Addr)
			ll.Owners &^= ownerBit(d.ID)
		} else {
			e.downgradePrivate(d, ll.Addr)
		}
	}
	return extra
}

// newestPrivate returns the newest dirty private copy of la held by core d,
// or nil if d's copies are clean.
func (e *Engine) newestPrivate(d *Core, la uint64) []byte {
	var newest []byte
	if l2 := d.l2.Lookup(la, 0, d.l2.Ways()); l2 != nil && l2.Dirty() {
		newest = l2.Data
		l2.State = cache.Shared
	}
	if l1 := d.l1.Lookup(la, 0, d.l1.Ways()); l1 != nil && l1.Dirty() {
		newest = l1.Data
		l1.State = cache.Shared
	}
	return newest
}

// mergeIntoLLC folds newer dirty bytes into the LLC line, invoking the
// dirty-install hook if the LLC copy was clean (so TVARAK can stash the
// old content as a diff).
func (e *Engine) mergeIntoLLC(c *Core, ll *cache.Line, newest []byte) {
	if ll.State != cache.Modified && e.Red != nil && e.Geo.IsNVM(ll.Addr) {
		if e.shardOn {
			// OnDirtyInstall mutates engine-visible controller state (diff
			// partition, possible early writeback): run it inline against
			// serially-consistent controller state.
			e.redInline()
		}
		e.Red.OnDirtyInstall(c.Clock, ll.Addr, ll.Data)
	}
	copy(ll.Data, newest)
	ll.State = cache.Modified
}

func (e *Engine) invalidatePrivate(d *Core, la uint64) {
	if l1 := d.l1.Lookup(la, 0, d.l1.Ways()); l1 != nil {
		d.l1.Invalidate(l1)
	}
	if l2 := d.l2.Lookup(la, 0, d.l2.Ways()); l2 != nil {
		d.l2.Invalidate(l2)
	}
	e.St.UpperInvalidations++
}

func (e *Engine) downgradePrivate(d *Core, la uint64) {
	if l1 := d.l1.Lookup(la, 0, d.l1.Ways()); l1 != nil {
		l1.State = cache.Shared
	}
	if l2 := d.l2.Lookup(la, 0, d.l2.Ways()); l2 != nil {
		l2.State = cache.Shared
	}
}

// upgrade acquires exclusive ownership of la for core c via the LLC
// directory, invalidating other sharers. Returns the added latency.
func (e *Engine) upgrade(c *Core, la uint64) uint64 {
	b := e.Bank(la)
	ll := b.Lookup(la, 0, e.dataWays)
	if ll == nil {
		panic(fmt.Sprintf("sim: LLC inclusion violated for %#x", la))
	}
	e.St.AddCache(stats.LLC, true, e.Cfg.LLCBank.HitEnergyPJ)
	for rem := ll.Owners &^ ownerBit(c.ID); rem != 0; {
		d := e.Cores[bits.TrailingZeros64(rem)]
		rem &^= ownerBit(d.ID)
		if newest := e.newestPrivate(d, la); newest != nil {
			e.mergeIntoLLC(c, ll, newest)
		}
		e.invalidatePrivate(d, la)
		ll.Owners &^= ownerBit(d.ID)
	}
	return e.Cfg.LLCBank.LatencyCyc
}

// fillLLC reads la from memory into the LLC data partition, running TVARAK
// verification on NVM fills, and returns the installed line.
func (e *Engine) fillLLC(c *Core, la uint64, lat *uint64) *cache.Line {
	issue := c.Clock + *lat
	buf := e.lineBuf
	m := e.mem(la)
	isNVM := e.Geo.IsNVM(la)
	var complete uint64
	if e.shardOn {
		// Deferred media writes to la must land before we read it; under a
		// controller every NVM write is redundancy-ticketed, and OnFill
		// below needs all prior redundancy work retired anyway.
		if isNVM && e.Red != nil {
			e.redInline()
		} else {
			e.waitLineClear(la)
		}
		var ecc uint32
		complete, ecc = m.ReadLineDeferred(issue, la, nvm.Data, buf)
		e.enqueueVerify(m, la, ecc, buf)
	} else {
		complete, _ = m.ReadLine(issue, la, nvm.Data, buf) // ECC errors are counted by the device
	}
	*lat += complete - issue
	if isNVM {
		e.St.Fills++
		var extra uint64
		if e.Red != nil {
			extra = e.Red.OnFill(issue, complete, la, buf)
			e.St.VerifyExtraCyc += extra
			*lat += extra
		}
		e.Emit(obs.EvFill, complete+extra, la, extra)
	}
	b := e.Bank(la)
	v := b.Victim(la, 0, e.dataWays)
	if v.State != cache.Invalid {
		e.evictLLC(c.Clock, v)
	}
	b.Install(v, la, buf, cache.Shared) // Shared at LLC means clean w.r.t. memory
	return v
}

// evictL2 drops an L2 line: back-invalidates the L1 copy (merging dirty
// data), then merges dirty content into the inclusive LLC copy, firing the
// dirty-install hook on a clean→dirty transition.
func (e *Engine) evictL2(c *Core, v *cache.Line) {
	if l1 := c.l1.Lookup(v.Addr, 0, c.l1.Ways()); l1 != nil {
		if l1.Dirty() {
			copy(v.Data, l1.Data)
			v.State = cache.Modified
		}
		c.l1.Invalidate(l1)
		e.St.UpperInvalidations++
	}
	b := e.Bank(v.Addr)
	ll := b.Lookup(v.Addr, 0, e.dataWays)
	if ll == nil {
		panic(fmt.Sprintf("sim: L2/LLC inclusion violated for %#x", v.Addr))
	}
	if v.Dirty() {
		e.St.AddCache(stats.LLC, true, e.Cfg.LLCBank.HitEnergyPJ)
		e.mergeIntoLLC(c, ll, v.Data)
	}
	ll.Owners &^= ownerBit(c.ID)
	c.l2.Invalidate(v)
}

// evictLLC evicts an LLC line: back-invalidates every upper copy (merging
// the newest dirty data), then writes dirty content back to memory through
// the redundancy controller.
func (e *Engine) evictLLC(now uint64, v *cache.Line) {
	var oldClean []byte
	wasClean := v.State != cache.Modified
	for rem := v.Owners; rem != 0; {
		d := e.Cores[bits.TrailingZeros64(rem)]
		rem &^= ownerBit(d.ID)
		if newest := e.newestPrivate(d, v.Addr); newest != nil {
			if wasClean && oldClean == nil {
				// evictBuf is consumed before this function returns: the
				// serial path hands it to OnWriteback synchronously, the
				// sharded path snapshots it into the ring slot at enqueue.
				copy(e.evictBuf, v.Data)
				oldClean = e.evictBuf
			}
			copy(v.Data, newest)
			v.State = cache.Modified
		}
		e.invalidatePrivate(d, v.Addr)
		e.St.AddCache(stats.L2, true, e.Cfg.L2.HitEnergyPJ)
	}
	if e.Geo.IsNVM(v.Addr) {
		var dirty uint64
		if v.Dirty() {
			dirty = 1
		}
		e.Emit(obs.EvLLCEvict, now, v.Addr, dirty)
	}
	if v.Dirty() {
		e.writebackLine(now, v.Addr, oldClean, v.Data)
	}
	e.Bank(v.Addr).Invalidate(v)
}

// writebackLine writes one dirty data line to memory, updating redundancy
// first on NVM writebacks. oldClean, when non-nil, is the persisted content
// the line had before it went dirty (supplied only when no diff was ever
// stashed for it).
func (e *Engine) writebackLine(now uint64, addr uint64, oldClean, data []byte) {
	if e.Geo.IsNVM(addr) {
		e.St.Writebacks++
		e.Emit(obs.EvWriteback, now, addr, 0)
		if e.shardOn {
			// The whole bundle — redundancy update plus data write, none of
			// it on the issuing core's critical path — runs on a shard
			// worker; oldClean/data are snapshotted into the ring slot.
			e.enqueueNVMWriteback(now, addr, oldClean, data)
			return
		}
		if e.Red != nil {
			e.Red.OnWriteback(now, addr, oldClean, data)
		}
		e.NVM.WriteLine(now, addr, nvm.Data, data)
		return
	}
	if e.shardOn {
		e.enqueueDRAMWrite(now, addr, data)
		return
	}
	e.DRAM.WriteLine(now, addr, nvm.Data, data)
}
