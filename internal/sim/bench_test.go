package sim

import (
	"testing"

	"tvarak/internal/param"
)

// Benchmarks for the per-access engine path — the Load/Store → cache walk →
// fill/evict chain that runs once per simulated memory access. Warm-hit
// benches isolate the L1 fast path; the miss benches stream a footprint
// larger than every cache so each access walks the full hierarchy.

func mkBenchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(param.SmallTest(param.Baseline))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// runOn drives fn as the single worker of one engine Run.
func runOn(b *testing.B, e *Engine, fn func(*Core)) {
	b.Helper()
	e.Run([]func(*Core){fn})
	if err := e.Err(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLoadL1Hit(b *testing.B) {
	e := mkBenchEngine(b)
	addr := e.Geo.NVMBase()
	var buf [8]byte
	runOn(b, e, func(c *Core) { c.Load(addr, buf[:]) }) // warm
	b.ReportAllocs()
	b.ResetTimer()
	runOn(b, e, func(c *Core) {
		for i := 0; i < b.N; i++ {
			c.Load(addr, buf[:])
		}
	})
}

func BenchmarkStoreL1Hit(b *testing.B) {
	e := mkBenchEngine(b)
	addr := e.Geo.NVMBase()
	var buf [8]byte
	runOn(b, e, func(c *Core) { c.Store(addr, buf[:]) }) // warm
	b.ReportAllocs()
	b.ResetTimer()
	runOn(b, e, func(c *Core) {
		for i := 0; i < b.N; i++ {
			c.Store(addr, buf[:])
		}
	})
}

// BenchmarkLoadMissStream reads one line per iteration from a footprint
// larger than the LLC, so every access misses through L1/L2/LLC into NVM
// and evicts a clean line.
func BenchmarkLoadMissStream(b *testing.B) {
	e := mkBenchEngine(b)
	base := e.Geo.NVMBase()
	span := uint64(4 << 20) // > 1 MB SmallTest LLC
	var buf [8]byte
	runOn(b, e, func(c *Core) { // touch once so media/ECC are settled
		for a := uint64(0); a < span; a += 64 {
			c.Load(base+a, buf[:])
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	runOn(b, e, func(c *Core) {
		for i := 0; i < b.N; i++ {
			c.Load(base+(uint64(i)*64)%span, buf[:])
		}
	})
}

// BenchmarkStoreMissStream writes one line per iteration over a footprint
// larger than the LLC: every access misses, and steady-state evictions are
// dirty, exercising the writeback path.
func BenchmarkStoreMissStream(b *testing.B) {
	e := mkBenchEngine(b)
	base := e.Geo.NVMBase()
	span := uint64(4 << 20)
	var buf [8]byte
	runOn(b, e, func(c *Core) {
		for a := uint64(0); a < span; a += 64 {
			c.Store(base+a, buf[:])
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	runOn(b, e, func(c *Core) {
		for i := 0; i < b.N; i++ {
			c.Store(base+(uint64(i)*64)%span, buf[:])
		}
	})
}

// BenchmarkPhaseBoundary measures the bound-weave scheduler handoff: each
// iteration advances one full phase, forcing a yield → grant round trip
// plus the barrier bookkeeping (maxClock, sampler/tracer hooks).
func BenchmarkPhaseBoundary(b *testing.B) {
	e := mkBenchEngine(b)
	phase := e.Cfg.PhaseCyc
	if phase == 0 {
		phase = 10000
	}
	b.ReportAllocs()
	b.ResetTimer()
	runOn(b, e, func(c *Core) {
		for i := 0; i < b.N; i++ {
			c.Compute(phase)
		}
	})
}

// BenchmarkRunStartStop measures the fixed cost of one engine Run call
// (goroutine spawn, channel setup, drain) with no work in it.
func BenchmarkRunStartStop(b *testing.B) {
	e := mkBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOn(b, e, func(c *Core) {})
	}
}
