package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/param"
)

func mkEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := param.SmallTest(param.Baseline)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStoreLoadRoundTrip(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase() + 4096*3 + 40
	data := []byte("the quick brown fox")
	e.Run([]func(*Core){func(c *Core) {
		c.Store(addr, data)
		got := make([]byte, len(data))
		c.Load(addr, got)
		if !bytes.Equal(got, data) {
			t.Error("load after store mismatch")
		}
	}})
	// After drain, media holds the data.
	got := make([]byte, len(data))
	e.NVM.ReadRaw(addr, got)
	if !bytes.Equal(got, data) {
		t.Error("drain did not persist the store")
	}
}

func TestLoad64Store64(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase() + 8
	e.Run([]func(*Core){func(c *Core) {
		c.Store64(addr, 0xdeadbeefcafef00d)
		if got := c.Load64(addr); got != 0xdeadbeefcafef00d {
			t.Errorf("Load64 = %#x", got)
		}
		c.Store32(addr+16, 0x12345678)
		if got := c.Load32(addr + 16); got != 0x12345678 {
			t.Errorf("Load32 = %#x", got)
		}
	}})
}

func TestL1HitLatency(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) {
		var b [8]byte
		c.Load(addr, b[:]) // miss: fills everything
		t0 := c.Clock
		c.Load(addr, b[:]) // L1 hit
		if c.Clock-t0 != e.Cfg.L1.LatencyCyc {
			t.Errorf("L1 hit latency = %d, want %d", c.Clock-t0, e.Cfg.L1.LatencyCyc)
		}
	}})
}

func TestMissLatencyIncludesNVM(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) {
		t0 := c.Clock
		var b [8]byte
		c.Load(addr, b[:])
		want := e.Cfg.L1.LatencyCyc + e.Cfg.L2.LatencyCyc + e.Cfg.LLCBank.LatencyCyc + e.Cfg.NVM.ReadCyc
		if c.Clock-t0 != want {
			t.Errorf("cold NVM load latency = %d, want %d", c.Clock-t0, want)
		}
	}})
}

func TestStoreLatencyIsL1(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase() + 12288
	e.Run([]func(*Core){func(c *Core) {
		t0 := c.Clock
		var b [8]byte
		c.Store(addr, b[:]) // cold store: RFO happens but retires via store buffer
		if c.Clock-t0 != e.Cfg.L1.LatencyCyc {
			t.Errorf("store latency = %d, want %d", c.Clock-t0, e.Cfg.L1.LatencyCyc)
		}
	}})
	if e.St.NVM.DataReads == 0 {
		t.Error("cold store performed no RFO fill")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	e := mkEngine(t)
	e.Run([]func(*Core){func(c *Core) {
		t0 := c.Clock
		c.Compute(1234)
		if c.Clock-t0 != 1234 {
			t.Error("Compute did not advance the clock")
		}
	}})
	if e.St.Cycles < 1234 {
		t.Errorf("runtime %d < compute time", e.St.Cycles)
	}
}

// Shadow-memory property test: a random mix of loads and stores over a
// working set larger than all caches must always read back the last value
// written, and after drain the NVM media must equal the shadow exactly.
func TestPropertyShadowMemory(t *testing.T) {
	e := mkEngine(t)
	base := e.Geo.NVMBase()
	const span = 4 << 20 // 4 MB > LLC (1 MB in SmallTest)
	shadow := make([]byte, span)
	rng := rand.New(rand.NewSource(42))
	e.Run([]func(*Core){func(c *Core) {
		buf := make([]byte, 16)
		for i := 0; i < 20000; i++ {
			off := uint64(rng.Intn(span - 64))
			// Keep within one line to avoid page-hole concerns (raw
			// physical addressing here, no fs translation).
			off = off &^ 63
			n := 1 + rng.Intn(16)
			if rng.Intn(2) == 0 {
				for j := 0; j < n; j++ {
					buf[j] = byte(rng.Int())
				}
				c.Store(base+off, buf[:n])
				copy(shadow[off:], buf[:n])
			} else {
				c.Load(base+off, buf[:n])
				if !bytes.Equal(buf[:n], shadow[off:int(off)+n]) {
					t.Fatalf("iteration %d: load mismatch at %#x", i, off)
				}
			}
		}
	}})
	got := make([]byte, span)
	e.NVM.ReadRaw(base, got)
	if !bytes.Equal(got, shadow) {
		t.Error("media does not match shadow after drain")
	}
}

func TestCrossCoreCoherence(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase() + 64*1000
	// Core 0 writes in run 1; core 1 reads in run 2 (strict ordering via
	// separate runs, since cores are otherwise unsynchronized).
	e.Run([]func(*Core){func(c *Core) { c.Store64(addr, 777) }})
	e.Run([]func(*Core){nil, func(c *Core) {
		if got := c.Load64(addr); got != 777 {
			t.Errorf("core 1 read %d, want 777", got)
		}
	}})
	if e.St.UpperInvalidations == 0 {
		// Core 1's read must have pulled the line from core 0 (downgrade)
		// or the drain wrote it back — either way the data was correct.
		t.Log("no invalidations (line was drained); data still correct")
	}
}

func TestCrossCoreSameRunCoherence(t *testing.T) {
	e := mkEngine(t)
	addr := e.Geo.NVMBase() + 64*2000
	flag := e.Geo.NVMBase() + 64*3000
	// Producer sets data then flag; consumer polls flag then reads data.
	e.Run([]func(*Core){
		func(c *Core) {
			c.Store64(addr, 4242)
			c.Store64(flag, 1)
		},
		func(c *Core) {
			for c.Load64(flag) != 1 {
				c.Compute(100)
			}
			if got := c.Load64(addr); got != 4242 {
				t.Errorf("consumer read %d, want 4242", got)
			}
		},
	})
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		e := mkEngine(t)
		base := e.Geo.NVMBase()
		workers := make([]func(*Core), 3)
		for w := 0; w < 3; w++ {
			w := w
			workers[w] = func(c *Core) {
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 3000; i++ {
					off := uint64(rng.Intn(1<<20)) &^ 63
					if rng.Intn(3) == 0 {
						c.Store64(base+off, uint64(i))
					} else {
						c.Load64(base + off)
					}
				}
			}
		}
		e.Run(workers)
		return e.St.Cycles, e.St.NVM.Total()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("non-deterministic: run1=(%d,%d) run2=(%d,%d)", c1, n1, c2, n2)
	}
}

func TestWritebacksCounted(t *testing.T) {
	e := mkEngine(t)
	base := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) {
		// Dirty far more lines than the hierarchy holds.
		var b [8]byte
		for i := uint64(0); i < 40000; i++ {
			c.Store(base+i*64, b[:])
		}
	}})
	if e.St.Writebacks == 0 {
		t.Fatal("no writebacks counted")
	}
	if e.St.NVM.DataWrites != e.St.Writebacks {
		t.Errorf("NVM data writes %d != writebacks %d (baseline writes only via writeback)",
			e.St.NVM.DataWrites, e.St.Writebacks)
	}
	if e.St.NVM.Redundancy() != 0 {
		t.Error("baseline design produced redundancy NVM accesses")
	}
}

func TestRuntimeIncludesDIMMBusy(t *testing.T) {
	e := mkEngine(t)
	base := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) {
		var b [8]byte
		for i := uint64(0); i < 50000; i++ {
			c.Store(base+i*64, b[:])
		}
	}})
	if e.St.Cycles < e.NVM.BusyUntil() {
		t.Errorf("runtime %d < DIMM busy %d", e.St.Cycles, e.NVM.BusyUntil())
	}
}

func TestResetMeasurement(t *testing.T) {
	e := mkEngine(t)
	base := e.Geo.NVMBase()
	e.Run([]func(*Core){func(c *Core) { c.Store64(base, 1) }})
	e.ResetMeasurement()
	if e.St.Cycles != 0 || e.St.NVM.Total() != 0 {
		t.Error("stats survive ResetMeasurement")
	}
	for _, c := range e.Cores {
		if c.Clock != 0 {
			t.Error("core clock survives ResetMeasurement")
		}
	}
	// Warm state: the stored line is still cached, so a load hits L1... but
	// it was drained (clean). It must at least still be present somewhere.
	e.Run([]func(*Core){func(c *Core) {
		if got := c.Load64(base); got != 1 {
			t.Errorf("content lost across reset: %d", got)
		}
	}})
}

func TestPhaseSchedulerInterleavesFairly(t *testing.T) {
	cfg := param.SmallTest(param.Baseline)
	cfg.PhaseCyc = 1000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two cores compute 100k cycles each; with phase scheduling neither
	// can finish wildly ahead: final clocks equal.
	e.Run([]func(*Core){
		func(c *Core) {
			for i := 0; i < 100; i++ {
				c.Compute(1000)
			}
		},
		func(c *Core) {
			for i := 0; i < 100; i++ {
				c.Compute(1000)
			}
		},
	})
	c0, c1 := e.Cores[0].Clock, e.Cores[1].Clock
	if c0 != c1 {
		t.Errorf("core clocks diverged: %d vs %d", c0, c1)
	}
	if e.St.Cycles < 100000 {
		t.Errorf("runtime %d < 100000", e.St.Cycles)
	}
}
