package sim

import (
	"testing"

	"tvarak/internal/param"
)

// mesiEngine builds a small baseline machine for coherence tests.
func mesiEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(param.SmallTest(param.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// seq runs steps one at a time (each step is a separate Run so ordering is
// strict), without draining in between mattering for state checks... note
// Run drains, so dirty-state checks happen inside a single Run.
func TestReadSharingThenWriteInvalidates(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*123
	// Both cores read (share), then core 0 writes: core 1's copy must be
	// invalidated, and a subsequent core-1 read must see the new value.
	e.Run([]func(*Core){
		func(c *Core) {
			c.Load64(addr)
			c.Compute(50000) // let core 1 read before the store
			c.Store64(addr, 99)
		},
		func(c *Core) {
			c.Load64(addr)
			c.Compute(200000) // wait past core 0's store
			if got := c.Load64(addr); got != 99 {
				t.Errorf("core 1 read %d after invalidation, want 99", got)
			}
		},
	})
	if e.St.UpperInvalidations == 0 {
		t.Error("no invalidations recorded for write to a shared line")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirtyLineMigratesBetweenCores(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*500
	e.Run([]func(*Core){
		func(c *Core) {
			c.Store64(addr, 7777) // dirty in core 0's L1
		},
		func(c *Core) {
			c.Compute(100000)
			// Core 1's read must pull the dirty data from core 0 through
			// the LLC, not stale NVM content.
			if got := c.Load64(addr); got != 7777 {
				t.Errorf("core 1 read %d, want 7777 (dirty migration failed)", got)
			}
			c.Store64(addr, 8888) // then take ownership and modify
		},
	})
	got := make([]byte, 8)
	e.NVM.ReadRaw(addr, got)
	if v := uint64(got[0]) | uint64(got[1])<<8; v != 8888 {
		t.Errorf("media = %d, want 8888", v)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPingPongWrites(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*900
	// Two cores alternately increment the same line; with coherent caches
	// the final value equals the total increment count. The cores
	// synchronize via a second flag line (spin).
	const rounds = 50
	turnAddr := e.Geo.NVMBase() + 64*901
	e.Run([]func(*Core){
		func(c *Core) {
			for i := 0; i < rounds; i++ {
				for c.Load64(turnAddr) != 0 {
					c.Compute(200)
				}
				c.Store64(addr, c.Load64(addr)+1)
				c.Store64(turnAddr, 1)
			}
		},
		func(c *Core) {
			for i := 0; i < rounds; i++ {
				for c.Load64(turnAddr) != 1 {
					c.Compute(200)
				}
				c.Store64(addr, c.Load64(addr)+1)
				c.Store64(turnAddr, 0)
			}
		},
	})
	e.Run([]func(*Core){func(c *Core) {
		if got := c.Load64(addr); got != 2*rounds {
			t.Errorf("counter = %d, want %d (lost updates)", got, 2*rounds)
		}
	}})
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInvariantsHoldMidRun(t *testing.T) {
	e := mesiEngine(t)
	base := e.Geo.NVMBase()
	// Stress with overlapping working sets from 4 cores, checking
	// invariants inside the run (before drain).
	workers := make([]func(*Core), 4)
	for i := range workers {
		i := i
		workers[i] = func(c *Core) {
			for n := 0; n < 4000; n++ {
				off := uint64((n*7+i*13)%3000) * 64
				if (n+i)%3 == 0 {
					c.Store64(base+off, uint64(n))
				} else {
					c.Load64(base + off)
				}
				if n == 2000 && i == 0 {
					if err := e.CheckInvariants(); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
	e.Run(workers)
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestExclusiveGrantSilentUpgrade(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*77
	e.Run([]func(*Core){func(c *Core) {
		c.Load64(addr) // sole reader → Exclusive grant
		llcBefore := e.St.Cache[2].Total()
		c.Store64(addr, 5) // E→M upgrade must not visit the LLC
		if got := e.St.Cache[2].Total(); got != llcBefore {
			t.Errorf("store to Exclusive line performed %d LLC accesses", got-llcBefore)
		}
	}})
}

func TestSharedUpgradeVisitsDirectory(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*78
	e.Run([]func(*Core){
		func(c *Core) {
			c.Load64(addr)
			c.Compute(50000)
			llcBefore := e.St.Cache[2].Total()
			c.Store64(addr, 5) // Shared → needs a directory upgrade
			if got := e.St.Cache[2].Total(); got == llcBefore {
				t.Error("store to Shared line skipped the directory")
			}
		},
		func(c *Core) {
			c.Load64(addr) // second sharer forces S state
		},
	})
}

// llcConflictStride returns the address stride between distinct lines that
// map to the same LLC bank and set, for forcing LLC evictions.
func llcConflictStride(e *Engine) uint64 {
	cfg := e.Cfg
	return uint64(cfg.LLCBanks * cfg.LineSize * cfg.LLCBank.Sets(cfg.LineSize))
}

// TestMultiSharerSnoopSingleRound pins the directory's snoop model: an
// access hitting an LLC line with N sharers costs one snoop round — the
// same latency as with a single sharer — while invalidations (on writes)
// and per-owner L2 probes still scale with N. Regression for a bug where
// the per-owner loop recomputed (and previously overwrote) the snoop
// latency per owner.
func TestMultiSharerSnoopSingleRound(t *testing.T) {
	measure := func(sharers int, write bool) (lat uint64, e *Engine) {
		e = mesiEngine(t)
		addr := e.Geo.NVMBase() + 64*321
		workers := make([]func(*Core), 4)
		workers[0] = func(c *Core) {
			c.Compute(50000) // let every sharer populate its copy first
			start := c.Clock
			if write {
				c.Store64(addr, 1)
			} else {
				c.Load64(addr)
			}
			lat = c.Clock - start
		}
		for i := 1; i <= sharers; i++ {
			workers[i] = func(c *Core) { c.Load64(addr) }
		}
		e.Run(workers)
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		return lat, e
	}
	for _, write := range []bool{false, true} {
		one, _ := measure(1, write)
		three, e3 := measure(3, write)
		if one != three {
			t.Errorf("write=%v: access latency %d with 3 sharers vs %d with 1; one snoop round must bound both", write, three, one)
		}
		if write {
			if e3.St.UpperInvalidations != 3 {
				t.Errorf("write with 3 sharers recorded %d invalidations, want 3", e3.St.UpperInvalidations)
			}
		}
	}
}

// TestEvictLLCBackInvalidatesAllSharers forces an LLC eviction of a line
// two cores hold clean copies of: both upper copies must be
// back-invalidated, no writeback issued (the line is clean), and refills
// must still see the original content.
func TestEvictLLCBackInvalidatesAllSharers(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*5
	stride := llcConflictStride(e)
	ways := e.DataWays()
	e.NVM.WriteRaw(addr, []byte{0xEE, 0x01, 0, 0, 0, 0, 0, 0})
	e.Run([]func(*Core){
		nil,
		func(c *Core) {
			c.Load64(addr)
			c.Compute(400000)
			if got := c.Load64(addr); got != 0x1EE {
				t.Errorf("core 1 reloaded %#x after back-invalidation, want 0x1ee", got)
			}
		},
		func(c *Core) { c.Load64(addr) },
		func(c *Core) {
			c.Compute(50000) // let cores 1 and 2 share the line first
			for k := uint64(1); k <= uint64(ways)+2; k++ {
				c.Load64(addr + k*stride) // same set: evicts addr's LLC line
			}
		},
	})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if e.St.UpperInvalidations < 2 {
		t.Errorf("LLC eviction back-invalidated %d upper copies, want >= 2", e.St.UpperInvalidations)
	}
	if e.St.Writebacks != 0 {
		t.Errorf("clean eviction issued %d writebacks, want 0", e.St.Writebacks)
	}
}

// TestEvictLLCMergesDirtiestCopy forces an LLC eviction of a line whose
// owner holds a newer value in L1 than in L2 (a store leaves the L2 grant
// copy stale): the eviction must merge the L1 copy — the dirtiest — and
// write it back to media. A dirty copy can never coexist with OTHER
// sharers under MESI (stores invalidate them; read-sharing cleans the
// dirty copy via resolveSharers), so the multi-copy case here is one
// core's L1+L2 pair.
func TestEvictLLCMergesDirtiestCopy(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*9
	stride := llcConflictStride(e)
	ways := e.DataWays()
	e.Run([]func(*Core){
		func(c *Core) {
			c.Store64(addr, 0xD1127) // L1 Modified; L2 keeps the stale grant copy
			c.Compute(400000)
			if got := c.Load64(addr); got != 0xD1127 {
				t.Errorf("owner reloaded %#x after eviction, want 0xd1127", got)
			}
		},
		func(c *Core) {
			c.Compute(50000)
			for k := uint64(1); k <= uint64(ways)+2; k++ {
				c.Load64(addr + k*stride)
			}
		},
	})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if e.St.Writebacks == 0 {
		t.Error("dirty LLC eviction issued no writeback")
	}
	var b [8]byte
	e.NVM.ReadRaw(addr, b[:])
	if got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16; got != 0xD1127 {
		t.Errorf("media holds %#x after dirty eviction, want 0xd1127 (L1 copy lost)", got)
	}
}

// TestUpgradeInvalidatesAllRemoteSharers pins the S→M upgrade with
// multiple remote sharers: every remote copy is invalidated, the upgrade
// latency does not grow with the sharer count, and later reads observe the
// new value.
func TestUpgradeInvalidatesAllRemoteSharers(t *testing.T) {
	measure := func(sharers int) (lat uint64, e *Engine) {
		e = mesiEngine(t)
		addr := e.Geo.NVMBase() + 64*44
		workers := make([]func(*Core), 4)
		workers[0] = func(c *Core) {
			c.Load64(addr) // own a Shared copy first
			c.Compute(50000)
			start := c.Clock
			c.Store64(addr, 0xAB) // S→M via directory upgrade
			lat = c.Clock - start
		}
		for i := 1; i <= sharers; i++ {
			workers[i] = func(c *Core) {
				c.Load64(addr)
				c.Compute(200000)
				if got := c.Load64(addr); got != 0xAB {
					t.Errorf("sharer read %#x after upgrade, want 0xab", got)
				}
			}
		}
		e.Run(workers)
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		return lat, e
	}
	one, _ := measure(1)
	two, e2 := measure(2)
	if one != two {
		t.Errorf("upgrade latency %d with 2 remote sharers vs %d with 1", two, one)
	}
	if e2.St.UpperInvalidations != 2 {
		t.Errorf("upgrade with 2 remote sharers recorded %d invalidations, want 2", e2.St.UpperInvalidations)
	}
}
