package sim

import (
	"testing"

	"tvarak/internal/param"
)

// mesiEngine builds a small baseline machine for coherence tests.
func mesiEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(param.SmallTest(param.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// seq runs steps one at a time (each step is a separate Run so ordering is
// strict), without draining in between mattering for state checks... note
// Run drains, so dirty-state checks happen inside a single Run.
func TestReadSharingThenWriteInvalidates(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*123
	// Both cores read (share), then core 0 writes: core 1's copy must be
	// invalidated, and a subsequent core-1 read must see the new value.
	e.Run([]func(*Core){
		func(c *Core) {
			c.Load64(addr)
			c.Compute(50000) // let core 1 read before the store
			c.Store64(addr, 99)
		},
		func(c *Core) {
			c.Load64(addr)
			c.Compute(200000) // wait past core 0's store
			if got := c.Load64(addr); got != 99 {
				t.Errorf("core 1 read %d after invalidation, want 99", got)
			}
		},
	})
	if e.St.UpperInvalidations == 0 {
		t.Error("no invalidations recorded for write to a shared line")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirtyLineMigratesBetweenCores(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*500
	e.Run([]func(*Core){
		func(c *Core) {
			c.Store64(addr, 7777) // dirty in core 0's L1
		},
		func(c *Core) {
			c.Compute(100000)
			// Core 1's read must pull the dirty data from core 0 through
			// the LLC, not stale NVM content.
			if got := c.Load64(addr); got != 7777 {
				t.Errorf("core 1 read %d, want 7777 (dirty migration failed)", got)
			}
			c.Store64(addr, 8888) // then take ownership and modify
		},
	})
	got := make([]byte, 8)
	e.NVM.ReadRaw(addr, got)
	if v := uint64(got[0]) | uint64(got[1])<<8; v != 8888 {
		t.Errorf("media = %d, want 8888", v)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPingPongWrites(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*900
	// Two cores alternately increment the same line; with coherent caches
	// the final value equals the total increment count. The cores
	// synchronize via a second flag line (spin).
	const rounds = 50
	turnAddr := e.Geo.NVMBase() + 64*901
	e.Run([]func(*Core){
		func(c *Core) {
			for i := 0; i < rounds; i++ {
				for c.Load64(turnAddr) != 0 {
					c.Compute(200)
				}
				c.Store64(addr, c.Load64(addr)+1)
				c.Store64(turnAddr, 1)
			}
		},
		func(c *Core) {
			for i := 0; i < rounds; i++ {
				for c.Load64(turnAddr) != 1 {
					c.Compute(200)
				}
				c.Store64(addr, c.Load64(addr)+1)
				c.Store64(turnAddr, 0)
			}
		},
	})
	e.Run([]func(*Core){func(c *Core) {
		if got := c.Load64(addr); got != 2*rounds {
			t.Errorf("counter = %d, want %d (lost updates)", got, 2*rounds)
		}
	}})
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInvariantsHoldMidRun(t *testing.T) {
	e := mesiEngine(t)
	base := e.Geo.NVMBase()
	// Stress with overlapping working sets from 4 cores, checking
	// invariants inside the run (before drain).
	workers := make([]func(*Core), 4)
	for i := range workers {
		i := i
		workers[i] = func(c *Core) {
			for n := 0; n < 4000; n++ {
				off := uint64((n*7+i*13)%3000) * 64
				if (n+i)%3 == 0 {
					c.Store64(base+off, uint64(n))
				} else {
					c.Load64(base + off)
				}
				if n == 2000 && i == 0 {
					if err := e.CheckInvariants(); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
	e.Run(workers)
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestExclusiveGrantSilentUpgrade(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*77
	e.Run([]func(*Core){func(c *Core) {
		c.Load64(addr) // sole reader → Exclusive grant
		llcBefore := e.St.Cache[2].Total()
		c.Store64(addr, 5) // E→M upgrade must not visit the LLC
		if got := e.St.Cache[2].Total(); got != llcBefore {
			t.Errorf("store to Exclusive line performed %d LLC accesses", got-llcBefore)
		}
	}})
}

func TestSharedUpgradeVisitsDirectory(t *testing.T) {
	e := mesiEngine(t)
	addr := e.Geo.NVMBase() + 64*78
	e.Run([]func(*Core){
		func(c *Core) {
			c.Load64(addr)
			c.Compute(50000)
			llcBefore := e.St.Cache[2].Total()
			c.Store64(addr, 5) // Shared → needs a directory upgrade
			if got := e.St.Cache[2].Total(); got == llcBefore {
				t.Error("store to Shared line skipped the directory")
			}
		},
		func(c *Core) {
			c.Load64(addr) // second sharer forces S state
		},
	})
}
