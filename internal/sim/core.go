package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/debug"

	"tvarak/internal/cache"
	"tvarak/internal/obs"
)

// Core is one simulated CPU with private L1-D and L2 caches. Workload code
// runs on a goroutine bound to a core and calls Load/Store/Compute; the
// engine's phase scheduler decides when that goroutine may advance, keeping
// multi-core runs deterministic.
type Core struct {
	ID    int
	Clock uint64

	eng      *Engine
	l1, l2   *cache.Cache
	phaseEnd uint64
	done     bool
	grant    chan struct{}
	yield    chan struct{}
}

// simUnwind is the sentinel maybeYield panics with to unwind a worker
// goroutine after the run was cancelled; the worker's deferred recover in
// Run swallows it, marks the core done and yields, so the scheduler drains
// every worker without leaking goroutines.
type simUnwind struct{}

// maybeYield hands control back to the scheduler when the core's clock has
// crossed the current phase boundary. When the run has been cancelled by
// the time the scheduler grants the core again, the worker unwinds here —
// at the barrier, where no store is in flight.
func (c *Core) maybeYield() {
	for c.Clock >= c.phaseEnd {
		c.yield <- struct{}{}
		<-c.grant
		if c.eng.cancelled {
			panic(simUnwind{})
		}
	}
}

// Compute advances the core's clock by n cycles of non-memory work.
func (c *Core) Compute(n uint64) {
	c.maybeYield()
	c.Clock += n
	c.eng.St.ComputeCycles += n
}

// Load reads len(buf) bytes of simulated memory starting at addr through
// the cache hierarchy, blocking the core for the access latency.
func (c *Core) Load(addr uint64, buf []byte) {
	e := c.eng
	for n := 0; n < len(buf); {
		cur := addr + uint64(n)
		la := e.Geo.LineAddr(cur)
		l := e.access(c, la, false)
		off := cur - la
		n += copy(buf[n:], l.Data[off:])
	}
}

// Store writes data to simulated memory starting at addr through the cache
// hierarchy (write-allocate; stores retire via the store buffer).
func (c *Core) Store(addr uint64, data []byte) {
	e := c.eng
	for n := 0; n < len(data); {
		cur := addr + uint64(n)
		la := e.Geo.LineAddr(cur)
		l := e.access(c, la, true)
		off := cur - la
		n += copy(l.Data[off:], data[n:])
	}
}

// Load64 reads a little-endian uint64 at addr.
func (c *Core) Load64(addr uint64) uint64 {
	var b [8]byte
	c.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Store64 writes a little-endian uint64 at addr.
func (c *Core) Store64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.Store(addr, b[:])
}

// Load32 reads a little-endian uint32 at addr.
func (c *Core) Load32(addr uint64) uint32 {
	var b [4]byte
	c.Load(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Store32 writes a little-endian uint32 at addr.
func (c *Core) Store32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.Store(addr, b[:])
}

// Engine returns the engine this core belongs to.
func (c *Core) Engine() *Engine { return c.eng }

// ---------------------------------------------------------------------------
// Phase scheduler (bound-weave)
// ---------------------------------------------------------------------------

// Run executes one workload function per core (workers[i] runs on core i)
// to completion under phase scheduling, then drains all dirty state and
// records the fixed-work runtime. It may be called multiple times; cache
// state persists across calls (use ResetMeasurement between a setup run
// and the measured run).
//
// A worker that panics is contained: the panic is recovered on the worker
// goroutine, the remaining workers unwind at the next phase boundary, the
// run drains, and Err reports a *WorkloadPanicError with the stack. When a
// context installed via SetContext is cancelled, the run likewise stops at
// the next phase boundary and Err reports the cause. Either way the engine
// is poisoned: subsequent Run calls return immediately, so a workload
// issuing several Run calls (setup phases) cannot keep simulating past the
// failure.
func (e *Engine) Run(workers []func(*Core)) {
	if len(workers) > len(e.Cores) {
		panic(fmt.Sprintf("sim: %d workers for %d cores", len(workers), len(e.Cores)))
	}
	if e.runErr != nil {
		return
	}
	active := make([]*Core, 0, len(workers))
	for i, w := range workers {
		if w == nil {
			continue
		}
		c := e.Cores[i]
		c.done = false
		c.grant = make(chan struct{})
		c.yield = make(chan struct{})
		active = append(active, c)
		go func(c *Core, w func(*Core)) {
			// The recover below runs while the scheduler is blocked on
			// c.yield (bound-weave runs one goroutine at a time), so the
			// runErr write is ordered before the scheduler's next read.
			defer func() {
				if r := recover(); r != nil {
					if _, unwind := r.(simUnwind); !unwind && e.runErr == nil {
						e.runErr = &WorkloadPanicError{Core: c.ID, Value: r, Stack: debug.Stack()}
					}
				}
				c.done = true
				c.yield <- struct{}{}
			}()
			<-c.grant
			if e.cancelled {
				return
			}
			w(c)
		}(c, w)
	}
	e.startShards()
	phase := e.Cfg.PhaseCyc
	if phase == 0 {
		phase = 10000
	}
	phaseEnd := e.maxClock() + phase
	for {
		alive := false
		for _, c := range active {
			if c.done {
				continue
			}
			alive = true
			c.phaseEnd = phaseEnd
			c.grant <- struct{}{}
			<-c.yield
		}
		if !alive {
			break
		}
		var shardQueued uint64
		if e.shardOn {
			if e.Probe != nil {
				// Ring depth is only meaningful before the barrier drains
				// everything; reading head/tail here races with nothing —
				// the engine thread is the sole publisher and the workers
				// only advance head.
				for _, w := range e.srt.workers {
					shardQueued += w.tail.Load() - w.head.Load()
				}
			}
			// Quiesce the shard workers and fold their stats, DIMM timing
			// and buffered events back in, so the sampler and tracer below
			// observe exactly the serial run's phase snapshot.
			e.shardBarrier()
		}
		if e.Sampler != nil {
			e.Sampler.Observe(e.maxClock(), e.St)
		}
		if e.Probe != nil {
			e.Probe(e.maxClock(), e.St.Loads+e.St.Stores, shardQueued)
		}
		// Every core is quiesced at the barrier here: no store is in
		// flight, so observers (the shadow oracle) can cross-check
		// media against intent at a stable point.
		e.Emit(obs.EvPhase, e.maxClock(), 0, 0)
		if !e.cancelled && (e.runErr != nil || e.ctxCancelled()) {
			e.cancelled = true
			var aux uint64
			if e.runErr != nil {
				aux = 1 // cause: contained workload panic
			}
			e.Emit(obs.EvCancel, e.maxClock(), 0, aux)
		}
		phaseEnd += phase
	}
	e.drain()
	if e.runErr == nil && e.cancelled {
		e.runErr = fmt.Errorf("sim: run cancelled at phase boundary: %w", context.Cause(e.ctx))
	}
}

// ctxCancelled reports whether the installed context (if any) is done.
func (e *Engine) ctxCancelled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

func (e *Engine) maxClock() uint64 {
	var m uint64
	for _, c := range e.Cores {
		m = max(m, c.Clock)
	}
	return m
}

// ResetMeasurement zeroes all statistics, core clocks and DIMM timing while
// keeping cache and memory contents, so a measured fixed-work region starts
// warm (the harness calls this between setup and measurement).
func (e *Engine) ResetMeasurement() {
	e.St.Reset()
	for _, c := range e.Cores {
		c.Clock = 0
	}
	e.NVM.ResetTiming()
	e.DRAM.ResetTiming()
}

// DropCaches invalidates every cache line in the hierarchy (and the
// redundancy controller's caches). All lines must be clean — call it only
// after a drain (Run drains on return). Experiments use it to measure
// cold-cache behaviour; fault-injection tests use it to force NVM refills.
func (e *Engine) DropCaches() {
	for _, c := range e.Cores {
		for _, pc := range []*cache.Cache{c.l1, c.l2} {
			pc.ForEach(0, pc.Ways(), func(l *cache.Line) {
				if l.Dirty() {
					panic(fmt.Sprintf("sim: DropCaches found dirty private line %#x", l.Addr))
				}
				pc.Invalidate(l)
			})
		}
	}
	for _, b := range e.Banks {
		b.ForEach(0, b.Ways(), func(l *cache.Line) {
			if l.Dirty() {
				panic(fmt.Sprintf("sim: DropCaches found dirty LLC line %#x", l.Addr))
			}
			b.Invalidate(l)
		})
	}
	if r, ok := e.Red.(interface{ DropCaches() }); ok {
		r.DropCaches()
	}
}

// drain flushes every dirty line (L1→L2→LLC→NVM) and the controller's
// dirty redundancy, then records the run's cycle count: the latest of all
// core clocks and DIMM busy times.
func (e *Engine) drain() {
	// Flush and park the shard workers first (no-op when serial): the
	// drain's own writebacks and the controller's Drain then run inline on
	// fully merged state, exactly as in a serial run.
	e.stopShards()
	for _, c := range e.Cores {
		e.flushPrivate(c)
	}
	now := e.maxClock()
	for _, b := range e.Banks {
		b.ForEach(0, e.dataWays, func(l *cache.Line) {
			if l.Dirty() {
				e.writebackLine(now, l.Addr, nil, l.Data)
				l.State = cache.Shared
			}
		})
	}
	if e.Red != nil {
		e.Red.Drain(now)
	}
	e.St.Cycles = max(e.maxClock(), max(e.NVM.BusyUntil(), e.DRAM.BusyUntil()))
	if e.Sampler != nil {
		// Close the epoch series at the run's final cycle so the drain's
		// writebacks land in the last sample and the series sums to the
		// aggregate statistics.
		e.Sampler.Finish(e.St.Cycles, e.St)
	}
}

// flushPrivate pushes core c's dirty L1 lines into L2 and dirty L2 lines
// into the LLC (with diff stashing), leaving private caches clean.
func (e *Engine) flushPrivate(c *Core) {
	c.l1.ForEach(0, c.l1.Ways(), func(l *cache.Line) {
		if !l.Dirty() {
			return
		}
		l2 := c.l2.Lookup(l.Addr, 0, c.l2.Ways())
		if l2 == nil {
			panic(fmt.Sprintf("sim: drain found L1 dirty line %#x missing from L2", l.Addr))
		}
		copy(l2.Data, l.Data)
		l2.State = cache.Modified
		l.State = cache.Shared
	})
	c.l2.ForEach(0, c.l2.Ways(), func(l *cache.Line) {
		if !l.Dirty() {
			return
		}
		b := e.Bank(l.Addr)
		ll := b.Lookup(l.Addr, 0, e.dataWays)
		if ll == nil {
			panic(fmt.Sprintf("sim: drain found L2 dirty line %#x missing from LLC", l.Addr))
		}
		e.mergeIntoLLC(c, ll, l.Data)
		l.State = cache.Shared
	})
}
