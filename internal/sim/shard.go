package sim

// Sharded weave execution (DESIGN.md §"Parallel weave").
//
// The bound-weave engine is logically single-threaded: every
// latency-bearing decision (cache lookups, victim choice, coherence,
// fill latency, controller verification) runs on the engine thread in
// program order, which is what makes runs deterministic. Sharding does not
// change that. Instead it pipelines the run's *latency-irrelevant* work —
// LLC→memory writeback bundles (redundancy update + media write), DRAM
// writebacks, and deferred device-ECC verification of fills — onto Shards
// dedicated OS threads, each owning a slice of the NVM/DRAM bank and DIMM
// queues, with all results folded back at the next phase barrier.
//
// Determinism argument, in brief:
//   - Deferred items carry snapshots of their inputs (line content, stored
//     ECC word) taken on the engine thread at enqueue, so they compute the
//     same values regardless of when they run.
//   - Their outputs are commutative integer sums (counters, per-DIMM
//     occupancy; energy is integral picojoules, so even the float64 energy
//     sum is exact and order-independent), merged at fixed points (phase
//     barriers) in fixed order (shard ID, then cycle, then address).
//   - Anything whose result feeds back into latency or engine-visible
//     state — controller OnFill/OnDirtyInstall, media reads — runs inline
//     on the engine thread after quiescing the deferred work it depends
//     on, so it observes exactly the serial run's state.
//
// Redundancy bundles are additionally serialized by a global ticket
// (redSeq/redRetired): controller state (checksum/parity caches, diffs) is
// shared across banks, so bundles execute in enqueue order even across
// shard queues. Ticket waits cannot deadlock: tickets are issued in
// enqueue order, so the minimum unretired ticket is always at the
// executable front of some queue (non-ticketed items never wait).

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/stats"
	"tvarak/internal/xsum"
)

// shardRingCap is each worker queue's slot count. Must be a power of two.
// 256 slots of two line buffers each keeps a shard's backlog under 32 KB
// while leaving the engine thread rarely blocked on a full ring.
const shardRingCap = 256

type shardOpKind uint8

const (
	// opNVMWriteback is a full writeback bundle: redundancy update (under
	// a controller, globally ticket-ordered) followed by the data-line
	// media write.
	opNVMWriteback shardOpKind = iota
	// opDRAMWrite is a DRAM data-line media write.
	opDRAMWrite
	// opVerify is the deferred device-ECC check of a fill: recompute the
	// checksum of the snapshot and compare against the stored ECC word.
	opVerify
)

// shardItem is one ring slot. The old/data buffers are allocated once per
// slot and reused; the engine snapshots line content into them at enqueue.
type shardItem struct {
	kind   shardOpKind
	addr   uint64
	now    uint64
	seq    uint64 // redundancy ticket; 0 = not ticketed
	ecc    uint32 // opVerify: stored device-ECC word
	hasOld bool   // opNVMWriteback: old points at pre-dirty clean content
	old    []byte
	data   []byte
}

// shardWorker is one weave shard: an OS thread draining a single-producer
// single-consumer ring, accumulating into private stats/timing sinks that
// the engine folds back at each phase barrier.
type shardWorker struct {
	id  int
	eng *Engine

	ring []shardItem
	head atomic.Uint64 // items consumed (worker writes, engine reads)
	tail atomic.Uint64 // items published (engine writes, worker reads)
	wake chan struct{} // capacity 1; engine nudges a parked worker
	quit atomic.Bool

	st       stats.Stats
	nvmAcct  *nvm.Acct
	dramAcct *nvm.Acct
	events   []obs.Event
	emitFn   func(obs.EventKind, uint64, uint64, uint64)
}

// shardPending records an in-flight deferred write to one line address, so
// a later media read of that line can wait for exactly it.
type shardPending struct {
	w   *shardWorker
	seq uint64 // ticket when red, the worker's publish count otherwise
	red bool
}

// shardRT is the engine's sharding runtime, built lazily on the first
// sharded Run and reused (rings and accounting sinks are preallocated).
type shardRT struct {
	workers    []*shardWorker
	ctl        ShardableController // nil when Red is nil
	redSeq     uint64              // last issued redundancy ticket (engine thread)
	redRetired atomic.Uint64       // last retired redundancy ticket
	pending    map[uint64]shardPending
	wg         sync.WaitGroup
}

// startShards activates deferral for the Run that is starting, provided
// the configuration and machine state allow it: Shards > 1, no armed
// firmware bugs, no media observers (both would race with or reorder
// around deferred work), and a controller that supports execution-context
// rebinding (or none). Otherwise the Run stays serial.
func (e *Engine) startShards() {
	if e.shards < 2 {
		return
	}
	if e.NVM.PendingBugs() > 0 || e.DRAM.PendingBugs() > 0 ||
		e.NVM.HasObservers() || e.DRAM.HasObservers() {
		return
	}
	var ctl ShardableController
	if e.Red != nil {
		var ok bool
		if ctl, ok = e.Red.(ShardableController); !ok {
			return
		}
	}
	if e.srt == nil {
		e.srt = &shardRT{pending: make(map[uint64]shardPending)}
		e.srt.workers = make([]*shardWorker, e.shards)
		for i := range e.srt.workers {
			w := &shardWorker{id: i, eng: e, wake: make(chan struct{}, 1)}
			w.ring = make([]shardItem, shardRingCap)
			for j := range w.ring {
				w.ring[j].old = make([]byte, e.Cfg.LineSize)
				w.ring[j].data = make([]byte, e.Cfg.LineSize)
			}
			w.nvmAcct = e.NVM.NewAcct(&w.st)
			w.dramAcct = e.DRAM.NewAcct(&w.st)
			w.emitFn = w.emit
			e.srt.workers[i] = w
		}
	}
	s := e.srt
	s.ctl = ctl
	s.redSeq = 0
	s.redRetired.Store(0)
	for _, w := range s.workers {
		w.head.Store(0)
		w.tail.Store(0)
		w.quit.Store(false)
		s.wg.Add(1)
		go w.loop()
	}
	e.NVM.SetShardHook(e.shardExternalTouch)
	e.DRAM.SetShardHook(e.shardExternalTouch)
	e.shardOn = true
}

// stopShards flushes, merges and parks the shard workers, rebinding the
// controller to the engine's sinks. No-op when deferral is not active.
func (e *Engine) stopShards() {
	if !e.shardOn {
		return
	}
	e.shardBarrier()
	s := e.srt
	for _, w := range s.workers {
		w.quit.Store(true)
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	s.wg.Wait()
	e.NVM.SetShardHook(nil)
	e.DRAM.SetShardHook(nil)
	if s.ctl != nil {
		s.ctl.SetShardExec(e.St, e.NVM.Direct(), e.emitFn)
	}
	e.shardOn = false
}

// shardExternalTouch is the memory devices' hook: any API that bypasses
// the timed access path first quiesces deferred work; the mutating or
// observing ones (bug injection, bit flips, observer installation) also
// degrade the rest of the Run to serial execution.
func (e *Engine) shardExternalTouch(degrade bool) {
	if !e.shardOn {
		return
	}
	if degrade {
		e.stopShards()
		return
	}
	e.shardFlush()
}

// shardFlush spins until every worker has drained its ring. Gosched keeps
// this correct at GOMAXPROCS=1.
func (e *Engine) shardFlush() {
	for _, w := range e.srt.workers {
		for w.head.Load() != w.tail.Load() {
			runtime.Gosched()
		}
	}
}

// shardBarrier quiesces the workers and folds their private accumulations
// back into the engine: stats and per-DIMM timing deltas in shard-ID
// order, buffered controller events per shard sorted by (cycle, address).
// Runs at every phase boundary and before any inline media access that
// needs merged state.
func (e *Engine) shardBarrier() {
	e.shardFlush()
	s := e.srt
	for _, w := range s.workers {
		*e.St = e.St.Add(w.st)
		w.st.Reset()
		e.NVM.Apply(w.nvmAcct)
		e.DRAM.Apply(w.dramAcct)
		if len(w.events) > 0 {
			evs := w.events
			sort.SliceStable(evs, func(i, j int) bool {
				if evs[i].Cycle != evs[j].Cycle {
					return evs[i].Cycle < evs[j].Cycle
				}
				return evs[i].Addr < evs[j].Addr
			})
			for i := range evs {
				e.Tracer.Trace(evs[i])
			}
			w.events = evs[:0]
		}
	}
	clear(s.pending)
}

// redInline quiesces all deferred redundancy work and rebinds the
// controller to the engine's own sinks, so a latency-bearing controller
// call (OnFill, OnDirtyInstall) or an NVM media read observes exactly the
// state it would under serial execution.
func (e *Engine) redInline() {
	s := e.srt
	for s.redRetired.Load() != s.redSeq {
		runtime.Gosched()
	}
	if s.ctl != nil {
		s.ctl.SetShardExec(e.St, e.NVM.Direct(), e.emitFn)
	}
}

// waitLineClear blocks until the deferred write in flight to la (if any)
// has reached media, so an inline read of la sees current content.
func (e *Engine) waitLineClear(la uint64) {
	p, ok := e.srt.pending[la]
	if !ok {
		return
	}
	if p.red {
		for e.srt.redRetired.Load() < p.seq {
			runtime.Gosched()
		}
	} else {
		for p.w.head.Load() < p.seq {
			runtime.Gosched()
		}
	}
	delete(e.srt.pending, la)
}

// reserve returns the next free ring slot, spinning while the ring is
// full. Worker progress is guaranteed (see the ticket argument above).
func (w *shardWorker) reserve() *shardItem {
	t := w.tail.Load()
	for t-w.head.Load() >= shardRingCap {
		runtime.Gosched()
	}
	return &w.ring[t&(shardRingCap-1)]
}

// publish makes the reserved slot visible to the worker and returns the
// new publish count. The tail store is the release edge covering the
// slot's content.
func (w *shardWorker) publish() uint64 {
	t := w.tail.Load() + 1
	w.tail.Store(t)
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return t
}

// enqueueNVMWriteback defers a full NVM writeback bundle. Under a
// controller the bundle gets a global redundancy ticket and routes to the
// shard owning the line's LLC bank; without one it routes by DIMM, whose
// per-shard FIFO alone preserves same-line write order (one line lives on
// one DIMM).
func (e *Engine) enqueueNVMWriteback(now, addr uint64, oldClean, data []byte) {
	s := e.srt
	var w *shardWorker
	var seq uint64
	if s.ctl != nil {
		s.redSeq++
		seq = s.redSeq
		w = s.workers[e.BankIndex(addr)%len(s.workers)]
	} else {
		w = s.workers[e.NVM.DimmIndex(addr)%len(s.workers)]
	}
	it := w.reserve()
	it.kind = opNVMWriteback
	it.now = now
	it.addr = addr
	it.seq = seq
	it.hasOld = oldClean != nil
	if oldClean != nil {
		copy(it.old, oldClean)
	}
	copy(it.data, data)
	qseq := w.publish()
	if seq != 0 {
		s.pending[addr] = shardPending{seq: seq, red: true}
	} else {
		s.pending[addr] = shardPending{w: w, seq: qseq}
	}
}

// enqueueDRAMWrite defers a DRAM data-line write, routed by DIMM.
func (e *Engine) enqueueDRAMWrite(now, addr uint64, data []byte) {
	s := e.srt
	w := s.workers[e.DRAM.DimmIndex(addr)%len(s.workers)]
	it := w.reserve()
	it.kind = opDRAMWrite
	it.now = now
	it.addr = addr
	it.seq = 0
	it.hasOld = false
	copy(it.data, data)
	qseq := w.publish()
	s.pending[addr] = shardPending{w: w, seq: qseq}
}

// enqueueVerify defers a fill's device-ECC check: data and the stored ECC
// word were snapshotted on the engine thread, so the comparison is
// timeless pure compute.
func (e *Engine) enqueueVerify(m *nvm.Memory, addr uint64, ecc uint32, data []byte) {
	s := e.srt
	w := s.workers[m.DimmIndex(addr)%len(s.workers)]
	it := w.reserve()
	it.kind = opVerify
	it.addr = addr
	it.seq = 0
	it.hasOld = false
	it.ecc = ecc
	copy(it.data, data)
	w.publish()
}

// loop is the worker body: drain the ring, park on wake when empty, exit
// when quit is set and the ring is dry. Each worker is pinned to its own
// OS thread so shards genuinely spread across CPUs.
func (w *shardWorker) loop() {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	defer w.eng.srt.wg.Done()
	for {
		h := w.head.Load()
		if h == w.tail.Load() {
			if w.quit.Load() {
				return
			}
			<-w.wake
			continue
		}
		w.exec(&w.ring[h&(shardRingCap-1)])
		w.head.Store(h + 1)
	}
}

// exec runs one deferred item on the worker thread.
func (w *shardWorker) exec(it *shardItem) {
	e := w.eng
	switch it.kind {
	case opNVMWriteback:
		if it.seq != 0 {
			// Wait our global ticket: redundancy bundles execute in
			// enqueue order across all shards.
			for e.srt.redRetired.Load() != it.seq-1 {
				runtime.Gosched()
			}
			ctl := e.srt.ctl
			ctl.SetShardExec(&w.st, e.NVM.Via(w.nvmAcct), w.emitFn)
			var old []byte
			if it.hasOld {
				old = it.old
			}
			ctl.OnWriteback(it.now, it.addr, old, it.data)
			e.NVM.Via(w.nvmAcct).WriteLine(it.now, it.addr, nvm.Data, it.data)
			e.srt.redRetired.Store(it.seq)
			return
		}
		e.NVM.Via(w.nvmAcct).WriteLine(it.now, it.addr, nvm.Data, it.data)
	case opDRAMWrite:
		e.DRAM.Via(w.dramAcct).WriteLine(it.now, it.addr, nvm.Data, it.data)
	case opVerify:
		if xsum.Checksum(it.data) != it.ecc {
			w.st.ECCErrors++
		}
	}
}

// emit buffers one controller event on the worker; the barrier drains the
// buffer into the tracer in merge order. The event *set* is identical to a
// serial run's; only inter-shard interleaving in the trace may differ
// across Shards settings (it is still deterministic for a fixed setting).
func (w *shardWorker) emit(kind obs.EventKind, cycle, addr, aux uint64) {
	if w.eng.Tracer == nil {
		return
	}
	w.events = append(w.events, obs.Event{Kind: kind, Cycle: cycle, Addr: addr, Aux: aux})
}
