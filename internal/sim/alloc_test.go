package sim

import (
	"testing"

	"tvarak/internal/param"
)

// TestSteadyStateAccessPathZeroAlloc pins the core guarantee of the
// performance pass: once every cache line buffer is lazily allocated, the
// Load/Store path — L1/L2/LLC walks, fills, evictions, writebacks, media
// accesses — performs ZERO heap allocations per access with no observers
// attached. The only allocations permitted in the measured region are the
// fixed per-Run cost (worker goroutine + channels), so the budget is a
// small constant while the region performs tens of thousands of accesses.
func TestSteadyStateAccessPathZeroAlloc(t *testing.T) {
	e, err := New(param.SmallTest(param.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	base := e.Geo.NVMBase()
	const span = uint64(4 << 20) // larger than every cache: misses + evictions
	var buf [8]byte
	// Warm every line slot of every cache level over the whole span so
	// Install's lazy Data allocation never fires during measurement.
	e.Run([]func(*Core){func(c *Core) {
		for a := uint64(0); a < span; a += 64 {
			c.Store(base+a, buf[:])
		}
		for a := uint64(0); a < span; a += 64 {
			c.Load(base+a, buf[:])
		}
	}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	const accesses = 20000
	per := testing.AllocsPerRun(3, func() {
		e.Run([]func(*Core){func(c *Core) {
			for i := 0; i < accesses; i++ {
				a := base + (uint64(i)*64)%span
				c.Load(a, buf[:])
				c.Store(a, buf[:])
			}
		}})
	})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	// A Run itself costs a handful of allocations (goroutine, channels,
	// worker slice). 16 per Run over 40k accesses means the per-access
	// path allocated nothing; any per-access allocation would add >=20000.
	if per > 16 {
		t.Errorf("steady-state run allocated %.0f objects for %d accesses; the per-access path must be allocation-free", per, 2*accesses)
	}
}
