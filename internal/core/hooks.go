package core

import (
	"fmt"

	"tvarak/internal/cache"
	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/stats"
	"tvarak/internal/xsum"
)

// OnFill implements sim.RedundancyController: it verifies the system-
// checksum of every DAX-mapped line read from NVM into the LLC, recovering
// from parity on a mismatch. The checksum access starts at issue time and
// overlaps the data read (Fig. 5), so only latency beyond the data's
// arrival (complete) is returned.
func (t *Controller) OnFill(issue, complete uint64, addr uint64, data []byte) uint64 {
	m := t.match(addr)
	if m == nil {
		return 0 // comparator mismatch resolves well within the data read
	}
	bank := t.eng.BankIndex(addr)
	lat := t.p.MatchLatencyCyc
	if t.p.Features.CacheLineChecksums {
		csAddr, slot := t.csumSlot(m, addr)
		rl := t.redGet(issue, bank, csAddr, &lat)
		want := xsum.Get(rl.Data, slot)
		// The verify computation needs both the data and its checksum.
		done := max(complete, issue+lat) + t.p.ComputeLatencyCyc
		if xsum.Checksum(data) != want {
			var rlat uint64
			t.recoverLine(done, bank, addr, data, want, &rlat)
			done += rlat
		}
		return done - complete
	}
	// Naive page-granular mode (Fig. 4): verifying one line requires
	// reading the rest of its page to recompute the page checksum.
	// The page reads start at issue time, in parallel with the demand read.
	done := t.verifyPageGranular(issue, complete, bank, addr, data)
	return done - complete
}

// verifyPageGranular checks the per-page system-checksum covering addr,
// reading the page's other lines from NVM starting at issue time. data is
// the just-read content of addr's line; on a mismatch the whole page is
// reconstructed from parity and data receives the recovered line. Returns
// the cycle at which the verified line can be handed over.
func (t *Controller) verifyPageGranular(issue, complete uint64, bank int, addr uint64, data []byte) uint64 {
	geo := t.eng.Geo
	base := geo.PageBase(geo.PageOf(addr))
	off := int(addr - base)
	ls := t.lineSize
	ready := complete
	for i := 0; i < geo.LinesPerPage(); i++ {
		la := base + uint64(i*ls)
		if la == addr {
			copy(t.pageBuf[i*ls:], data)
			continue
		}
		done, _ := t.mem.ReadLine(issue, la, nvm.Redundancy, t.pageBuf[i*ls:(i+1)*ls])
		ready = max(ready, done)
	}
	var lat uint64 = t.p.MatchLatencyCyc
	psAddr, slot := t.pageCsumSlot(addr)
	rl := t.redGet(issue, bank, psAddr, &lat)
	ready = max(ready, issue+lat) + t.p.ComputeLatencyCyc
	want := xsum.Get(rl.Data, slot)
	if xsum.Checksum(t.pageBuf) != want {
		var rlat uint64
		t.recoverPage(ready, bank, base, want, &rlat)
		ready += rlat
		copy(data, t.pageBuf[off:off+ls])
	}
	return ready
}

// OnDirtyInstall implements sim.RedundancyController: when a clean LLC line
// holding DAX data first receives dirty content, stash its old (persisted)
// content in the data-diff partition so the eventual writeback can update
// parity incrementally. A full diff set forces an early writeback of the
// victim diff's data line (§III-D).
func (t *Controller) OnDirtyInstall(now uint64, addr uint64, oldClean []byte) {
	if !t.p.Features.DataDiffs || t.match(addr) == nil {
		return
	}
	b := t.eng.Bank(addr)
	if b.Lookup(addr, t.diffLo, t.diffHi) != nil {
		// A diff for this line already exists (possible when page-granular
		// checksums are combined with diffs, where writebacks do not
		// consume diffs): the stashed copy is the older persisted content
		// and stays authoritative.
		return
	}
	v := b.Victim(addr, t.diffLo, t.diffHi)
	if v.State != cache.Invalid {
		t.earlyWriteback(now, v)
	}
	b.Install(v, addr, oldClean, cache.Shared)
	t.st.DiffStashes++
	t.emit(obs.EvDiffStash, now, addr, 0)
	t.st.AddCache(stats.LLC, true, t.eng.Cfg.LLCBank.HitEnergyPJ)
}

// earlyWriteback handles a data-diff eviction: the controller writes the
// victim's data line back to NVM (updating redundancy with the evicted diff
// as old data) and marks the line clean in the LLC without evicting it, so
// a later eviction of the data line needs no old-data read.
func (t *Controller) earlyWriteback(now uint64, v *cache.Line) {
	t.st.DiffEvictions++
	dataAddr := v.Addr
	t.emit(obs.EvDiffEvict, now, dataAddr, 0)
	b := t.eng.Bank(dataAddr)
	dl := b.Lookup(dataAddr, 0, t.eng.DataWays())
	if dl == nil || !dl.Dirty() {
		return // stale diff: the data line was already written back
	}
	t.st.AddCache(stats.LLC, true, t.eng.Cfg.LLCBank.HitEnergyPJ)
	m := t.match(dataAddr)
	if m == nil {
		return
	}
	t.updateRedundancy(now, m, dataAddr, v.Data, dl.Data)
	t.st.Writebacks++
	t.emit(obs.EvEarlyWriteback, now, dataAddr, 0)
	t.mem.WriteLine(now, dataAddr, nvm.Data, dl.Data)
	dl.State = cache.Shared
}

// diffTake consumes the stashed diff for addr, returning the old persisted
// content or nil if no diff is present.
func (t *Controller) diffTake(addr uint64) []byte {
	b := t.eng.Bank(addr)
	l := b.Lookup(addr, t.diffLo, t.diffHi)
	cfg := t.eng.Cfg
	if l == nil {
		t.st.AddCache(stats.LLC, false, cfg.LLCBank.MissEnergyPJ)
		return nil
	}
	t.st.AddCache(stats.LLC, true, cfg.LLCBank.HitEnergyPJ)
	copy(t.scratchOld, l.Data)
	b.Invalidate(l)
	return t.scratchOld
}

// OnWriteback implements sim.RedundancyController: update checksum and
// parity for an LLC→NVM writeback of newData at addr. oldClean, when
// non-nil, is the old persisted content handed over by the engine (the line
// went dirty and was evicted in the same event, so no diff exists).
func (t *Controller) OnWriteback(now uint64, addr uint64, oldClean, newData []byte) {
	m := t.match(addr)
	if m == nil {
		return
	}
	if !t.p.Features.CacheLineChecksums {
		t.updateRedundancyPage(now, m, addr, newData)
		return
	}
	old := oldClean
	if old == nil && t.p.Features.DataDiffs {
		old = t.diffTake(addr)
	}
	if old == nil {
		// No diff (naive mode, exclusive-cache mode, or a stale diff):
		// re-read the old data from NVM before it is overwritten.
		t.mem.ReadLine(now, addr, nvm.Redundancy, t.scratchOld)
		old = t.scratchOld
	}
	t.updateRedundancy(now, m, addr, old, newData)
}

// updateRedundancy performs the incremental update: parity ^= old ^ new and
// the DAX-CL-checksum slot receives the checksum of new.
func (t *Controller) updateRedundancy(now uint64, m *Mapping, addr uint64, old, newData []byte) {
	bank := t.eng.BankIndex(addr)
	var lat uint64 // writeback-path latency is off the critical path
	pAddr := t.eng.Geo.ParityLineAddr(addr)
	prl := t.redGet(now, bank, pAddr, &lat)
	xsum.ParityDelta(prl.Data, old, newData)
	t.redPut(now, prl)
	csAddr, slot := t.csumSlot(m, addr)
	crl := t.redGet(now, bank, csAddr, &lat)
	xsum.Put(crl.Data, slot, xsum.Checksum(newData))
	t.redPut(now, crl)
}

// updateRedundancyPage is the naive (page-granular checksum) writeback
// path: read the whole page from NVM (which also yields the old data for
// the parity delta), recompute the page checksum with the new line content,
// and update parity and checksum.
func (t *Controller) updateRedundancyPage(now uint64, m *Mapping, addr uint64, newData []byte) {
	geo := t.eng.Geo
	bank := t.eng.BankIndex(addr)
	base := geo.PageBase(geo.PageOf(addr))
	off := int(addr - base)
	ls := t.lineSize
	var lat uint64
	for i := 0; i < geo.LinesPerPage(); i++ {
		t.mem.ReadLine(now, base+uint64(i*ls), nvm.Redundancy, t.pageBuf[i*ls:(i+1)*ls])
	}
	copy(t.scratchOld, t.pageBuf[off:off+ls])
	pAddr := geo.ParityLineAddr(addr)
	prl := t.redGet(now, bank, pAddr, &lat)
	xsum.ParityDelta(prl.Data, t.scratchOld, newData)
	t.redPut(now, prl)
	copy(t.pageBuf[off:], newData)
	psAddr, slot := t.pageCsumSlot(addr)
	crl := t.redGet(now, bank, psAddr, &lat)
	xsum.Put(crl.Data, slot, xsum.Checksum(t.pageBuf))
	t.redPut(now, crl)
}

// ---------------------------------------------------------------------------
// Recovery (cross-DIMM parity reconstruction)
// ---------------------------------------------------------------------------

// recoverLine reconstructs the corrupted line at addr from its parity line
// and sibling data lines, repairs media, and overwrites data with the
// recovered content. It panics if the reconstruction still fails the
// checksum (an unrecoverable double fault).
func (t *Controller) recoverLine(now uint64, bank int, addr uint64, data []byte, want uint32, lat *uint64) {
	t.st.CorruptionsDetected++
	t.emit(obs.EvCorruption, now, addr, 0)
	if t.CorruptionHook != nil {
		t.CorruptionHook(addr)
	}
	rec := t.scratchRec
	prl := t.redGet(now, bank, t.eng.Geo.ParityLineAddr(addr), lat)
	copy(rec, prl.Data)
	for _, sib := range t.eng.Geo.SiblingLineAddrs(addr) {
		done, _ := t.mem.ReadLine(now, sib, nvm.Redundancy, t.scratchSib)
		*lat += done - now
		xsum.XORInto(rec, t.scratchSib)
	}
	if xsum.Checksum(rec) != want {
		panic(fmt.Sprintf("core: line %#x unrecoverable (parity reconstruction fails checksum)", addr))
	}
	copy(data, rec)
	t.mem.WriteLine(now, addr, nvm.Data, rec) // repair media
	t.st.Recoveries++
	t.emit(obs.EvRecovery, now, addr, *lat)
}

// recoverPage reconstructs every line of the page at base from parity in
// naive page-granular mode, repairing media and leaving the recovered page
// in t.pageBuf. want is the stored page checksum the result must match.
func (t *Controller) recoverPage(now uint64, bank int, base uint64, want uint32, lat *uint64) {
	t.st.CorruptionsDetected++
	t.emit(obs.EvCorruption, now, base, 1)
	if t.CorruptionHook != nil {
		t.CorruptionHook(base)
	}
	ls := t.lineSize
	for i := 0; i < t.eng.Geo.LinesPerPage(); i++ {
		la := base + uint64(i*ls)
		rec := t.pageBuf[i*ls : (i+1)*ls]
		prl := t.redGet(now, bank, t.eng.Geo.ParityLineAddr(la), lat)
		copy(rec, prl.Data)
		for _, sib := range t.eng.Geo.SiblingLineAddrs(la) {
			done, _ := t.mem.ReadLine(now, sib, nvm.Redundancy, t.scratchSib)
			*lat += done - now
			xsum.XORInto(rec, t.scratchSib)
		}
		t.mem.WriteLine(now, la, nvm.Data, rec)
	}
	if xsum.Checksum(t.pageBuf) != want {
		panic(fmt.Sprintf("core: page %#x unrecoverable (parity reconstruction fails checksum)", base))
	}
	t.st.Recoveries++
	t.emit(obs.EvRecovery, now, base, *lat)
}

// CheckInvariants validates the controller's structural invariants and
// returns the first violation. Tests call it after workloads.
//
// Invariants:
//  1. On-controller ⊆ LLC redundancy partition (inclusive).
//  2. The holders map covers every on-controller resident.
//  3. At most one bank holds a given redundancy line dirty.
func (t *Controller) CheckInvariants() error {
	dirtyHolders := map[uint64]int{}
	for bank, oc := range t.onCtrl {
		var err error
		oc.ForEach(0, oc.Ways(), func(l *cache.Line) {
			if err != nil {
				return
			}
			if t.eng.Bank(l.Addr).Lookup(l.Addr, t.redLo, t.redHi) == nil {
				err = fmt.Errorf("core: on-controller line %#x (bank %d) missing from LLC partition", l.Addr, bank)
				return
			}
			if t.holders[l.Addr]&(1<<uint(bank)) == 0 {
				err = fmt.Errorf("core: holders map missing bank %d for %#x", bank, l.Addr)
				return
			}
			if l.Dirty() {
				dirtyHolders[l.Addr]++
				if dirtyHolders[l.Addr] > 1 {
					err = fmt.Errorf("core: redundancy line %#x dirty in multiple controllers", l.Addr)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DropCaches invalidates the on-controller caches (lines must be clean,
// i.e. Drain must have run). The engine's DropCaches calls it.
func (t *Controller) DropCaches() {
	for _, oc := range t.onCtrl {
		oc.ForEach(0, oc.Ways(), func(l *cache.Line) {
			if l.Dirty() {
				panic(fmt.Sprintf("core: DropCaches found dirty redundancy line %#x", l.Addr))
			}
			oc.Invalidate(l)
		})
	}
	clear(t.holders)
}

// Drain implements sim.RedundancyController: flush dirty redundancy from
// the on-controller caches into the LLC partition, then from the LLC
// partition to NVM. Diff entries are clean copies and are simply dropped.
func (t *Controller) Drain(now uint64) {
	if !t.p.Features.RedundancyCaching {
		return
	}
	for bank, oc := range t.onCtrl {
		oc.ForEach(0, oc.Ways(), func(l *cache.Line) {
			if l.Dirty() {
				t.copyBackToLLC(l)
			}
			t.holders[l.Addr] &^= 1 << uint(bank)
			oc.Invalidate(l)
		})
	}
	for _, b := range t.eng.Banks {
		b.ForEach(t.redLo, t.redHi, func(l *cache.Line) {
			if l.Dirty() {
				t.mem.WriteLine(now, l.Addr, nvm.Redundancy, l.Data)
				l.State = cache.Shared
			}
		})
	}
}
