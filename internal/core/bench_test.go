package core_test

import (
	"testing"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// Benchmarks for the controller hooks on the per-access redundancy path:
// OnFill (checksum verification on every NVM→LLC fill of mapped data) and
// OnWriteback (incremental checksum+parity update on every LLC→NVM
// writeback). Both run through real engine accesses so the redundancy
// cache walk, comparator match and LLC partition traffic are all included.

func benchSys(b *testing.B, feats param.TvarakFeatures) (*sim.Engine, *daxfs.DaxMap) {
	b.Helper()
	cfg := param.SmallTest(param.Tvarak)
	cfg.Tvarak.Features = feats
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fs.Create("data", 1<<20); err != nil {
		b.Fatal(err)
	}
	m, err := fs.MMap("data")
	if err != nil {
		b.Fatal(err)
	}
	return e, m
}

func run1(b *testing.B, e *sim.Engine, fn func(*sim.Core)) {
	b.Helper()
	e.Run([]func(*sim.Core){fn})
	if err := e.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOnFillVerify measures verified fills: every load misses the
// whole hierarchy (DropCaches each round), so each access triggers OnFill
// with a DAX-CL-checksum read and verification.
func BenchmarkOnFillVerify(b *testing.B) {
	e, m := benchSys(b, param.FullTvarak())
	var buf [8]byte
	run1(b, e, func(c *sim.Core) { // settle media + checksums
		for off := uint64(0); off < 1<<20; off += 4096 {
			m.Load(c, off, buf[:])
		}
	})
	const lines = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		b.StopTimer()
		e.DropCaches()
		b.StartTimer()
		run1(b, e, func(c *sim.Core) {
			for l := 0; l < lines && i+l < b.N; l++ {
				m.Load(c, uint64(l)*64, buf[:])
			}
		})
	}
}

// BenchmarkOnWriteback measures the writeback redundancy update: stores
// stream over a footprint larger than the LLC so steady-state evictions are
// dirty and every writeback updates checksum + parity (with data diffs).
func BenchmarkOnWriteback(b *testing.B) {
	e, m := benchSys(b, param.FullTvarak())
	var buf [8]byte
	run1(b, e, func(c *sim.Core) {
		for off := uint64(0); off < 1<<20; off += 4096 {
			m.Store(c, off, buf[:])
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	run1(b, e, func(c *sim.Core) {
		for i := 0; i < b.N; i++ {
			m.Store(c, (uint64(i)*64)%(1<<20), buf[:])
		}
	})
}

// BenchmarkOnWritebackNaive is the same store stream under the naive
// page-granular design (Fig. 4): every writeback re-reads the whole page.
func BenchmarkOnWritebackNaive(b *testing.B) {
	e, m := benchSys(b, param.TvarakFeatures{})
	var buf [8]byte
	run1(b, e, func(c *sim.Core) {
		for off := uint64(0); off < 1<<20; off += 4096 {
			m.Store(c, off, buf[:])
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	run1(b, e, func(c *sim.Core) {
		for i := 0; i < b.N; i++ {
			m.Store(c, (uint64(i)*64)%(1<<20), buf[:])
		}
	})
}
