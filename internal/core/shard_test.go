package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/stats"
)

// shardSys builds a small Tvarak machine with the given weave shard count
// and one mapped 1 MB file.
func shardSys(t *testing.T, shards int) (*sim.Engine, *daxfs.DaxMap) {
	t.Helper()
	cfg := param.SmallTest(param.Tvarak)
	cfg.Shards = shards
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("data", 1<<20); err != nil {
		t.Fatal(err)
	}
	m, err := fs.MMap("data")
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

// runShardedTvarak drives the full controller surface — DAX fills with
// checksum verification, writebacks with checksum+parity update, diff
// stashes, redundancy-partition evictions — on a 4-core workload over
// disjoint quarters of the mapping, and returns the final stats, DIMM
// occupancy and raw file content.
func runShardedTvarak(t *testing.T, shards int) (stats.Stats, [2]uint64, []byte) {
	t.Helper()
	e, m := shardSys(t, shards)
	workers := make([]func(*sim.Core), 4)
	for i := range workers {
		id := i
		workers[i] = func(c *sim.Core) {
			base := uint64(id) * (256 << 10)
			rng := rand.New(rand.NewSource(int64(7 + id)))
			var b [8]byte
			for n := 0; n < 2500; n++ {
				off := base + uint64(rng.Intn((256<<10)/64))*64
				c.Store64(m.Addr(off), rng.Uint64())
				c.Load(m.Addr(base+uint64(rng.Intn((256<<10)/64))*64), b[:])
				c.Compute(uint64(rng.Intn(30)))
			}
		}
	}
	e.Run(workers)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if e.St.CorruptionsDetected != 0 {
		t.Fatalf("shards=%d: %d unexpected corruptions", shards, e.St.CorruptionsDetected)
	}
	media := make([]byte, 1<<20)
	for off := uint64(0); off < 1<<20; off += 4096 {
		e.NVM.ReadRaw(m.Addr(off), media[off:off+4096])
	}
	return *e.St, [2]uint64{e.NVM.BusyUntil(), e.DRAM.BusyUntil()}, media
}

// TestShardTvarakIdentity extends the tentpole gate to the TVARAK design:
// the controller's deferred writeback bundles (checksum + parity
// read-modify-writes, diff evictions, on-controller cache traffic) must
// leave statistics, DIMM timing and media byte-identical to a serial run.
func TestShardTvarakIdentity(t *testing.T) {
	refSt, refBusy, refMedia := runShardedTvarak(t, 1)
	for _, shards := range []int{2, 4} {
		st, busy, media := runShardedTvarak(t, shards)
		if st != refSt {
			t.Errorf("shards=%d: stats diverge from serial run:\nserial:  %+v\nsharded: %+v", shards, refSt, st)
		}
		if busy != refBusy {
			t.Errorf("shards=%d: DIMM occupancy %v, serial %v", shards, busy, refBusy)
		}
		if !bytes.Equal(media, refMedia) {
			t.Errorf("shards=%d: media content diverges from serial run", shards)
		}
	}
	if refSt.Writebacks == 0 || refSt.NVM.DataWrites == 0 {
		t.Fatalf("workload too light to exercise the shard rings: %+v", refSt)
	}
}

// TestShardTvarakRecoveryDegrades injects a media corruption mid-run: the
// injection surface must drop the engine to serial execution, after which
// the controller still detects and repairs the corruption.
func TestShardTvarakRecoveryDegrades(t *testing.T) {
	e, m := shardSys(t, 4)
	var detected int
	e.Red.(*core.Controller).CorruptionHook = func(addr uint64) { detected++ }
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		c.Store64(m.Addr(0), 0x1234)
	}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	e.DropCaches()
	e.NVM.FlipBit(m.Addr(0), 3)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		if got := c.Load64(m.Addr(0)); got != 0x1234 {
			t.Errorf("load after corruption returned %#x, want 0x1234", got)
		}
	}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if detected != 1 {
		t.Errorf("corruption detections = %d, want 1", detected)
	}
	if e.St.Recoveries == 0 {
		t.Error("no recovery recorded after injected corruption")
	}
}
