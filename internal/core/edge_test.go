package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// sysWithCfg builds a Tvarak system from an arbitrary config with one
// mapped 1 MB file.
func sysWithCfg(t *testing.T, cfg *param.Config) (*sim.Engine, *daxfs.DaxMap) {
	t.Helper()
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("data", 1<<20); err != nil {
		t.Fatal(err)
	}
	m, err := fs.MMap("data")
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

// TestTwoDIMMMirroring: with 2 NVM DIMMs each stripe has one data page and
// one parity page, so parity degenerates to mirroring — and recovery must
// still work (no sibling lines at all).
func TestTwoDIMMMirroring(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	cfg.NVM = param.OptaneLike(2).Mem
	cfg.NVMBytes = 32 << 20
	e, m := sysWithCfg(t, cfg)
	if got := len(e.Geo.SiblingLineAddrs(m.Addr(0))); got != 0 {
		t.Fatalf("2-DIMM stripe has %d siblings, want 0", got)
	}
	want := bytes.Repeat([]byte{0x3c}, 64)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 0, bytes.Repeat([]byte{1}, 64))
	}})
	e.DropCaches()
	e.NVM.InjectLostWrite(e.Geo.LineAddr(m.Addr(0)))
	e.Run([]func(*sim.Core){func(c *sim.Core) { m.Store(c, 0, want) }})
	e.DropCaches()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m.Load(c, 0, got)
		if !bytes.Equal(got, want) {
			t.Error("mirror recovery returned wrong data")
		}
	}})
	if e.St.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", e.St.Recoveries)
	}
}

// TestEightDIMMIntegrity: wider stripes (7 data + 1 parity) keep checksums
// and parity consistent under a random workload.
func TestEightDIMMIntegrity(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	cfg.NVM = param.OptaneLike(8).Mem
	cfg.NVMBytes = 64 << 20
	e, m := sysWithCfg(t, cfg)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		rng := rand.New(rand.NewSource(3))
		buf := make([]byte, 64)
		for i := 0; i < 3000; i++ {
			rng.Read(buf)
			m.Store(c, uint64(rng.Intn(int(m.Size()/64)))*64, buf)
		}
	}})
	checkIntegrity(t, e, m, true)
	// Recovery across a 7-wide group.
	want := bytes.Repeat([]byte{0x77}, 64)
	e.DropCaches()
	e.NVM.InjectLostWrite(e.Geo.LineAddr(m.Addr(4096)))
	e.Run([]func(*sim.Core){func(c *sim.Core) { m.Store(c, 4096, want) }})
	e.DropCaches()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m.Load(c, 4096, got)
		if !bytes.Equal(got, want) {
			t.Error("8-DIMM recovery wrong")
		}
	}})
}

// TestOddPageSize: the whole stack works with 1 KB pages (16 lines/page).
func TestOddPageSize(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	cfg.PageSize = 1024
	e, m := sysWithCfg(t, cfg)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		rng := rand.New(rand.NewSource(9))
		buf := make([]byte, 64)
		for i := 0; i < 2000; i++ {
			rng.Read(buf)
			m.Store(c, uint64(rng.Intn(int(m.Size()/64)))*64, buf)
		}
	}})
	checkIntegrity(t, e, m, true)
	if e.St.CorruptionsDetected != 0 {
		t.Error("false corruptions with 1 KB pages")
	}
}

// TestRemapCycle: map → write → unmap → remap keeps data covered and
// verifiable across the transition (page checksums reconciled at munmap,
// DAX-CL-checksums rebuilt at mmap).
func TestRemapCycle(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("cycle", 512<<10)
	m, err := fs.MMap("cycle")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xE1}, 256)
	e.Run([]func(*sim.Core){func(c *sim.Core) { m.Store(c, 8192, data) }})
	if err := fs.MUnmap(m); err != nil {
		t.Fatal(err)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Fatalf("scrub after munmap: %v", bad)
	}
	m2, err := fs.MMap("cycle")
	if err != nil {
		t.Fatal(err)
	}
	e.DropCaches()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 256)
		m2.Load(c, 8192, got) // verified fills over the remapped file
		if !bytes.Equal(got, data) {
			t.Error("content lost across remap")
		}
	}})
	if e.St.CorruptionsDetected != 0 {
		t.Error("false corruption after remap")
	}
	// And corruption is still caught after the remap.
	e.DropCaches()
	e.NVM.InjectMisdirectedRead(e.Geo.LineAddr(m2.Addr(8192)), e.Geo.LineAddr(m2.Addr(0)))
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m2.Load(c, 8192, got)
		if !bytes.Equal(got, data[:64]) {
			t.Error("misdirected read not corrected after remap")
		}
	}})
}
