package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/xsum"
)

// sys builds a small Tvarak machine with one mapped 1 MB file.
func sys(t *testing.T, feats param.TvarakFeatures) (*sim.Engine, *core.Controller, *daxfs.FS, *daxfs.DaxMap) {
	t.Helper()
	cfg := param.SmallTest(param.Tvarak)
	cfg.Tvarak.Features = feats
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("data", 1<<20); err != nil {
		t.Fatal(err)
	}
	m, err := fs.MMap("data")
	if err != nil {
		t.Fatal(err)
	}
	return e, ctrl, fs, m
}

// checkIntegrity verifies, from raw media after a drain, that every
// DAX-CL-checksum matches its line and that every parity line equals the
// XOR of its stripe's data lines — the two invariants TVARAK maintains.
func checkIntegrity(t *testing.T, e *sim.Engine, m *daxfs.DaxMap, clChecksums bool) {
	t.Helper()
	geo := e.Geo
	ls := geo.LineSize
	line := make([]byte, ls)
	if clChecksums {
		for off := uint64(0); off < m.Size(); off += uint64(ls) {
			e.NVM.ReadRaw(m.Addr(off), line)
			idx := off / uint64(ls)
			var ent [xsum.Size]byte
			e.NVM.ReadRaw(geo.DataIndexAddr(m.CsumDI(), idx*xsum.Size), ent[:])
			if xsum.Checksum(line) != xsum.Get(ent[:], 0) {
				t.Fatalf("DAX-CL-checksum mismatch at offset %#x", off)
			}
		}
	}
	// Parity: XOR of data pages in each stripe touched by the file.
	ps := uint64(geo.PageSize)
	parity := make([]byte, ps)
	acc := make([]byte, ps)
	page := make([]byte, ps)
	seen := map[uint64]bool{}
	for p := uint64(0); p < m.Size()/ps; p++ {
		s := geo.StripeOf(geo.PageOf(m.Addr(p * ps)))
		if seen[s] {
			continue
		}
		seen[s] = true
		for i := range acc {
			acc[i] = 0
		}
		for k := 0; k < geo.DIMMs; k++ {
			pp := s*uint64(geo.DIMMs) + uint64(k)
			if geo.IsParityPage(pp) {
				continue
			}
			e.NVM.ReadRaw(geo.PageBase(pp), page)
			xsum.XORInto(acc, page)
		}
		e.NVM.ReadRaw(geo.PageBase(geo.ParityPage(s)), parity)
		if !bytes.Equal(acc, parity) {
			t.Fatalf("parity mismatch for stripe %d", s)
		}
	}
}

func TestRedundancyMaintainedAcrossFeatureCombos(t *testing.T) {
	combos := []param.TvarakFeatures{
		{},                         // naive (Fig. 4)
		{CacheLineChecksums: true}, // +DAX-CL-checksums
		{CacheLineChecksums: true, RedundancyCaching: true},                  // +redundancy caching (also the exclusive-cache design)
		{CacheLineChecksums: true, RedundancyCaching: true, DataDiffs: true}, // full TVARAK
	}
	for _, feats := range combos {
		name := fmt.Sprintf("cl=%v cache=%v diff=%v", feats.CacheLineChecksums, feats.RedundancyCaching, feats.DataDiffs)
		t.Run(name, func(t *testing.T) {
			e, _, _, m := sys(t, feats)
			e.Run([]func(*sim.Core){func(c *sim.Core) {
				rng := rand.New(rand.NewSource(7))
				buf := make([]byte, 64)
				for i := 0; i < 4000; i++ {
					off := uint64(rng.Intn(int(m.Size()-64))) &^ 63
					if rng.Intn(2) == 0 {
						rng.Read(buf)
						m.Store(c, off, buf)
					} else {
						m.Load(c, off, buf)
					}
				}
			}})
			checkIntegrity(t, e, m, feats.CacheLineChecksums)
			if e.St.CorruptionsDetected != 0 {
				t.Errorf("false-positive corruptions: %d", e.St.CorruptionsDetected)
			}
			if e.St.NVM.Redundancy() == 0 {
				t.Error("no redundancy NVM traffic recorded")
			}
		})
	}
}

func TestNaivePageChecksumsStayCurrent(t *testing.T) {
	e, _, fs, m := sys(t, param.TvarakFeatures{}) // page-granular mode
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{0xab}, 64)
		for i := 0; i < 500; i++ {
			m.Store(c, uint64(i*64)%m.Size(), buf)
		}
	}})
	// In page-granular mode the controller keeps per-page checksums
	// current even while mapped, so a scrub passes.
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("scrub found %d bad pages under naive controller: %+v", len(bad), bad)
	}
}

func TestLostWriteDetectedAndRecovered(t *testing.T) {
	e, ctrl, _, m := sys(t, param.FullTvarak())
	off := uint64(64 * 100)
	addr := e.Geo.LineAddr(m.Addr(off))
	newData := bytes.Repeat([]byte{0x5a}, 64)

	// Establish an initial value.
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, off, bytes.Repeat([]byte{0x11}, 64))
	}})
	e.DropCaches()

	// Arm the lost-write bug so the NEXT writeback of this line is lost.
	e.NVM.InjectLostWrite(addr)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, off, newData)
	}})
	if e.NVM.PendingBugs() != 0 {
		t.Fatal("lost-write bug never fired (no writeback happened)")
	}
	// Media still holds old data; checksums and parity reflect the new.
	raw := make([]byte, 64)
	e.NVM.ReadRaw(addr, raw)
	if raw[0] != 0x11 {
		t.Fatal("lost write unexpectedly reached media")
	}

	var caught []uint64
	ctrl.CorruptionHook = func(a uint64) { caught = append(caught, a) }
	e.DropCaches()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m.Load(c, off, got)
		if !bytes.Equal(got, newData) {
			t.Error("load did not return recovered (new) data")
		}
	}})
	if e.St.CorruptionsDetected != 1 || e.St.Recoveries != 1 {
		t.Errorf("corruptions=%d recoveries=%d, want 1/1", e.St.CorruptionsDetected, e.St.Recoveries)
	}
	if len(caught) != 1 || caught[0] != addr {
		t.Errorf("corruption hook saw %v, want [%#x]", caught, addr)
	}
	// Media was repaired.
	e.NVM.ReadRaw(addr, raw)
	if !bytes.Equal(raw, newData) {
		t.Error("media not repaired after recovery")
	}
}

func TestMisdirectedWriteDetectedOnBothLines(t *testing.T) {
	e, _, _, m := sys(t, param.FullTvarak())
	offX := uint64(64 * 10)
	offY := uint64(64 * 20)
	addrX := e.Geo.LineAddr(m.Addr(offX))
	addrY := e.Geo.LineAddr(m.Addr(offY))
	xNew := bytes.Repeat([]byte{0xaa}, 64)
	yOld := bytes.Repeat([]byte{0xbb}, 64)

	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, offX, bytes.Repeat([]byte{0x01}, 64))
		m.Store(c, offY, yOld)
	}})
	e.DropCaches()

	e.NVM.InjectMisdirectedWrite(addrX, addrY)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, offX, xNew) // writeback lands on Y, corrupting it
	}})
	e.DropCaches()

	e.Run([]func(*sim.Core){func(c *sim.Core) {
		gotX := make([]byte, 64)
		m.Load(c, offX, gotX)
		if !bytes.Equal(gotX, xNew) {
			t.Error("X not recovered to its intended new data")
		}
		gotY := make([]byte, 64)
		m.Load(c, offY, gotY)
		if !bytes.Equal(gotY, yOld) {
			t.Error("Y not recovered to its pre-corruption data")
		}
	}})
	if e.St.CorruptionsDetected != 2 || e.St.Recoveries != 2 {
		t.Errorf("corruptions=%d recoveries=%d, want 2/2", e.St.CorruptionsDetected, e.St.Recoveries)
	}
}

func TestMisdirectedReadDetected(t *testing.T) {
	e, _, _, m := sys(t, param.FullTvarak())
	offX, offY := uint64(0), uint64(64*5)
	addrX := e.Geo.LineAddr(m.Addr(offX))
	addrY := e.Geo.LineAddr(m.Addr(offY))
	xData := bytes.Repeat([]byte{0x42}, 64)

	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, offX, xData)
		m.Store(c, offY, bytes.Repeat([]byte{0x43}, 64))
	}})
	e.DropCaches()
	e.NVM.InjectMisdirectedRead(addrX, addrY)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m.Load(c, offX, got)
		if !bytes.Equal(got, xData) {
			t.Error("misdirected read not corrected")
		}
	}})
	if e.St.CorruptionsDetected != 1 {
		t.Errorf("corruptions=%d, want 1", e.St.CorruptionsDetected)
	}
}

func TestVerificationOnEveryFill(t *testing.T) {
	e, _, _, m := sys(t, param.FullTvarak())
	// Write then read back a region bigger than caches; every NVM fill of
	// mapped data must consult a checksum (redundancy reads > 0 even for a
	// read-only phase).
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{1}, 64)
		for off := uint64(0); off < m.Size(); off += 64 {
			m.Store(c, off, buf)
		}
	}})
	e.DropCaches()
	e.ResetMeasurement()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, 64)
		for off := uint64(0); off < m.Size(); off += 64 {
			m.Load(c, off, buf)
		}
	}})
	if e.St.NVM.RedReads == 0 {
		t.Error("read-only phase performed no checksum reads — reads are not being verified")
	}
	if e.St.NVM.RedWrites != 0 {
		t.Errorf("read-only phase performed %d redundancy writes", e.St.NVM.RedWrites)
	}
	if e.St.Fills == 0 {
		t.Fatal("no fills recorded")
	}
	// Checksum locality: 16 checksums per line means far fewer redundancy
	// reads than fills for a sequential scan.
	if e.St.NVM.RedReads*8 > e.St.Fills {
		t.Errorf("redundancy reads %d too high for %d fills (caching broken?)",
			e.St.NVM.RedReads, e.St.Fills)
	}
}

func TestDiffStashAndEarlyWriteback(t *testing.T) {
	e, _, _, m := sys(t, param.FullTvarak())
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{9}, 64)
		// Dirty many lines mapping to the same LLC sets to overflow the
		// 1-way diff partition.
		for i := 0; i < 20000; i++ {
			m.Store(c, uint64(i*64)%m.Size(), buf)
		}
	}})
	if e.St.DiffStashes == 0 {
		t.Error("no diffs stashed")
	}
	if e.St.DiffEvictions == 0 {
		t.Error("no diff evictions (early writebacks) despite overflow")
	}
	checkIntegrity(t, e, m, true)
}

func TestUnmapReconcilesPageChecksums(t *testing.T) {
	e, _, fs, m := sys(t, param.FullTvarak())
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 128, bytes.Repeat([]byte{0x77}, 256))
	}})
	if err := fs.MUnmap(m); err != nil {
		t.Fatal(err)
	}
	if bad := fs.Scrub(); len(bad) != 0 {
		t.Errorf("scrub after munmap found bad pages: %+v", bad)
	}
	// The fs read path sees the data.
	f, _ := fs.Open("data")
	got := make([]byte, 256)
	if err := fs.ReadAt(f, 128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x77}, 256)) {
		t.Error("fs read path returned wrong data after munmap")
	}
}

func TestBaselineHasNoRedundancyTraffic(t *testing.T) {
	cfg := param.SmallTest(param.Baseline)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := daxfs.New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("data", 1<<20)
	m, _ := fs.MMap("data")
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{1}, 64)
		for i := 0; i < 1000; i++ {
			m.Store(c, uint64(i*64), buf)
		}
	}})
	if e.St.NVM.Redundancy() != 0 {
		t.Error("baseline produced redundancy traffic")
	}
	if e.St.Cache[3].Total() != 0 { // TvarakCache
		t.Error("baseline touched the on-controller cache")
	}
}

func TestTvarakOverheadOrdering(t *testing.T) {
	// Sequential writes: TVARAK must cost more than baseline but far less
	// than double (the paper reports single-digit % for sequential fio).
	run := func(d param.Design, feats param.TvarakFeatures) uint64 {
		cfg := param.SmallTest(d)
		cfg.Tvarak.Features = feats
		e, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ctrl *core.Controller
		if d == param.Tvarak {
			ctrl = core.New(e)
		}
		fs, err := daxfs.New(e, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		fs.Create("data", 2<<20)
		m, _ := fs.MMap("data")
		e.Run([]func(*sim.Core){func(c *sim.Core) {
			buf := bytes.Repeat([]byte{1}, 64)
			for off := uint64(0); off < m.Size(); off += 64 {
				m.Store(c, off, buf)
			}
		}})
		return e.St.Cycles
	}
	base := run(param.Baseline, param.TvarakFeatures{})
	full := run(param.Tvarak, param.FullTvarak())
	naive := run(param.Tvarak, param.TvarakFeatures{})
	if full <= base {
		t.Errorf("TVARAK (%d) not slower than baseline (%d)", full, base)
	}
	// A single-threaded pure store stream with zero compute is TVARAK's
	// worst case: the run is NVM-write-bandwidth-bound, so the +1/3 parity
	// and +1/16 checksum line accesses show up almost fully in runtime,
	// and verification reads serialize behind data reads with no other
	// thread to fill the DIMM gaps. Anything beyond ~1.8x means the
	// redundancy caching is broken.
	if float64(full) > 1.8*float64(base) {
		t.Errorf("sequential-write TVARAK overhead too high: %d vs %d", full, base)
	}
	if naive <= full {
		t.Errorf("naive controller (%d) not slower than full TVARAK (%d)", naive, full)
	}
}
