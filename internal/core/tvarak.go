// Package core implements TVARAK, the paper's contribution: a software-
// managed hardware controller co-located with the LLC bank controllers
// that maintains system-checksums and cross-DIMM parity for DAX-mapped NVM
// data (Fig. 7).
//
// One logical controller instance serves all banks; it keeps one
// on-controller redundancy cache per bank (4 KB each) plus the address-range
// comparators the file system programs when it DAX-maps a file. Redundancy
// information (DAX-CL-checksum lines and parity lines) is cached in the
// on-controller caches, backed inclusively by a reserved LLC way-partition;
// data diffs (old clean copies of dirtied lines) live in a second reserved
// partition. Controllers share redundancy lines with an invalidation-based
// (MESI-style) protocol.
//
// The controller verifies a DAX-CL-checksum on every NVM→LLC fill of
// DAX-mapped data and updates checksum + parity on every LLC→NVM writeback.
// On a verification mismatch it reconstructs the line from the stripe's
// parity and sibling lines, repairs media, and delivers the recovered data.
//
// The three design elements of Fig. 9 (DAX-CL-checksums, redundancy
// caching, data diffs) can be disabled independently via
// param.TvarakFeatures to reproduce the ablation; with all three disabled
// the controller degenerates to the naive design of Fig. 4 (page-granular
// checksums, every redundancy access straight to NVM, old data re-read from
// NVM).
package core

import (
	"fmt"

	"tvarak/internal/cache"
	"tvarak/internal/nvm"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
	"tvarak/internal/stats"
	"tvarak/internal/xsum"
)

// Mapping describes one DAX-mapped range registered by the file system:
// Pages data pages starting at data-page index StartDI, with a
// DAX-CL-checksum region (4 B per line, packed into 64 B checksum lines)
// occupying data pages starting at CsumDI.
type Mapping struct {
	Name    string
	StartDI uint64
	Pages   uint64
	CsumDI  uint64
}

// Controller is the TVARAK controller complex.
//
// All media, statistics and event traffic flows through the rebindable
// execution context (st, mem, emit) rather than the engine's fields
// directly: the sharded engine (sim.ShardableController) points these at a
// worker's private sinks while a deferred writeback bundle runs on that
// worker, and back at the engine's sinks for inline calls. Controller
// calls are never concurrent with each other (deferred bundles are
// globally ticket-ordered and inline calls quiesce them first), so the
// scratch buffers below stay safe.
type Controller struct {
	eng  *sim.Engine
	p    param.TvarakParams
	st   *stats.Stats
	mem  nvm.Accessor
	emit func(obs.EventKind, uint64, uint64, uint64)

	mappings []Mapping
	// pageCsumDI is the data-page index of the file system's global
	// per-page checksum table (4 B per data page), used in naive
	// (page-granular) mode.
	pageCsumDI    uint64
	havePageCsums bool

	onCtrl  []*cache.Cache
	holders map[uint64]uint64 // redundancy line addr → bitmask of banks caching it

	redLo, redHi   int // LLC redundancy partition way range
	diffLo, diffHi int

	lineSize int

	// CorruptionHook, when set, observes every detected corruption
	// (fault-injection tests and tools use it).
	CorruptionHook func(addr uint64)

	scratchOld    []byte
	scratchSib    []byte
	scratchRec    []byte
	scratchNoCash []byte
	scratchFill   []byte
	pageBuf       []byte
}

// New builds the controller for eng using eng's configured TvarakParams and
// attaches it to the engine.
func New(eng *sim.Engine) *Controller {
	cfg := eng.Cfg
	p := cfg.Tvarak
	t := &Controller{
		eng:           eng,
		p:             p,
		st:            eng.St,
		mem:           eng.NVM.Direct(),
		emit:          eng.Emit,
		holders:       make(map[uint64]uint64),
		lineSize:      cfg.LineSize,
		scratchOld:    make([]byte, cfg.LineSize),
		scratchSib:    make([]byte, cfg.LineSize),
		scratchRec:    make([]byte, cfg.LineSize),
		scratchNoCash: make([]byte, cfg.LineSize),
		scratchFill:   make([]byte, cfg.LineSize),
		pageBuf:       make([]byte, cfg.PageSize),
	}
	dataWays := cfg.DataWays()
	t.redLo, t.redHi = dataWays, dataWays
	if p.Features.RedundancyCaching {
		t.redHi = dataWays + p.RedundancyWays
	}
	t.diffLo, t.diffHi = t.redHi, t.redHi
	if p.Features.DataDiffs {
		t.diffHi = t.redHi + p.DiffWays
	}
	// The engine and controller only ever run LRU victim selection within
	// one way partition (data / redundancy / diff), so give each partition
	// its own LRU tick stream. Ordering within a partition is unchanged;
	// the split only decouples the partitions' counters so the sharded
	// engine's workers never race on a shared tick (see DESIGN.md).
	for _, b := range eng.Banks {
		b.SetPartitions(dataWays, t.redHi, t.diffHi)
	}
	if p.Features.RedundancyCaching {
		t.onCtrl = make([]*cache.Cache, len(eng.Banks))
		lines := p.OnCtrlCacheBytes / cfg.LineSize
		for i := range t.onCtrl {
			// The 4 KB on-controller cache is small enough to model as
			// fully associative (64 lines).
			t.onCtrl[i] = cache.New(1, lines, cfg.LineSize, 1)
		}
	}
	eng.SetRedundancy(t)
	return t
}

// SetShardExec rebinds the controller's execution context: the stats sink,
// the (possibly worker-accounted) NVM accessor and the event emitter. The
// sharded engine calls it around deferred writeback bundles; it implements
// sim.ShardableController.
func (t *Controller) SetShardExec(st *stats.Stats, mem nvm.Accessor, emit func(obs.EventKind, uint64, uint64, uint64)) {
	t.st, t.mem, t.emit = st, mem, emit
}

// RegisterMapping programs the controller's comparators for a newly
// DAX-mapped range. The file system calls this from mmap.
func (t *Controller) RegisterMapping(m Mapping) {
	t.mappings = append(t.mappings, m)
}

// UnregisterMapping removes a mapping at munmap time.
func (t *Controller) UnregisterMapping(name string) {
	for i, m := range t.mappings {
		if m.Name == name {
			t.mappings = append(t.mappings[:i], t.mappings[i+1:]...)
			return
		}
	}
}

// SetPageCsumTable tells the controller where the file system keeps its
// global per-page checksum table, needed only in naive (page-granular
// checksum) mode.
func (t *Controller) SetPageCsumTable(startDI uint64) {
	t.pageCsumDI = startDI
	t.havePageCsums = true
}

// match runs the address-range comparators: it returns the mapping covering
// the DAX data line at addr, or nil.
func (t *Controller) match(addr uint64) *Mapping {
	geo := t.eng.Geo
	if !geo.IsNVM(addr) {
		return nil
	}
	page := geo.PageOf(addr)
	if geo.IsParityPage(page) {
		return nil
	}
	di := geo.DataIndexOf(page)
	for i := range t.mappings {
		m := &t.mappings[i]
		if di >= m.StartDI && di < m.StartDI+m.Pages {
			return m
		}
	}
	return nil
}

// csumSlot returns the checksum line address and packed slot index of the
// DAX-CL-checksum for data line addr under mapping m.
func (t *Controller) csumSlot(m *Mapping, addr uint64) (lineAddr uint64, slot int) {
	geo := t.eng.Geo
	di := geo.DataIndexOf(geo.PageOf(addr))
	lineIdx := (di-m.StartDI)*uint64(geo.LinesPerPage()) +
		((addr-geo.NVMBase())%uint64(geo.PageSize))/uint64(geo.LineSize)
	byteOff := lineIdx * xsum.Size
	a := geo.DataIndexAddr(m.CsumDI, byteOff)
	return geo.LineAddr(a), int(a%uint64(t.lineSize)) / xsum.Size
}

// pageCsumSlot returns the checksum line address and slot of the per-page
// system-checksum for the page holding addr (naive mode).
func (t *Controller) pageCsumSlot(addr uint64) (lineAddr uint64, slot int) {
	if !t.havePageCsums {
		panic("core: page-granular mode without a page checksum table")
	}
	geo := t.eng.Geo
	di := geo.DataIndexOf(geo.PageOf(addr))
	a := geo.DataIndexAddr(t.pageCsumDI, di*xsum.Size)
	return geo.LineAddr(a), int(a%uint64(t.lineSize)) / xsum.Size
}

// ---------------------------------------------------------------------------
// Redundancy line access path: on-controller cache → LLC partition → NVM
// ---------------------------------------------------------------------------

// redLine is a handle to a redundancy line obtained by redGet. With
// redundancy caching the Data slice aliases the cached line, so mutations
// followed by redPut implement the read-modify-write. Without caching the
// Data slice is scratch and redPut writes it through to NVM.
type redLine struct {
	Data   []byte
	addr   uint64
	cached *cache.Line
}

// redGet acquires the redundancy line at addr for bank's controller,
// exclusively among controllers. lat accrues the access latency (only the
// fill/verification path cares; writeback callers pass a throwaway).
func (t *Controller) redGet(now uint64, bank int, addr uint64, lat *uint64) redLine {
	if !t.p.Features.RedundancyCaching {
		buf := t.scratchNoCash
		done, _ := t.mem.ReadLine(now, addr, nvm.Redundancy, buf)
		*lat += done - now
		return redLine{Data: buf, addr: addr}
	}
	oc := t.onCtrl[bank]
	*lat += t.p.OnCtrlLatencyCyc
	if l := oc.Lookup(addr, 0, oc.Ways()); l != nil {
		t.st.AddCache(stats.TvarakCache, true, t.p.OnCtrlHitEnergyPJ)
		oc.Touch(l)
		t.claimExclusive(now, addr, bank)
		return redLine{Data: l.Data, addr: addr, cached: l}
	}
	t.st.AddCache(stats.TvarakCache, false, t.p.OnCtrlMissEnergyPJ)
	// Another controller may hold a newer (dirty) copy: write it back to
	// the LLC partition and invalidate it before we read.
	t.claimExclusive(now, addr, bank)
	ll := t.llcRedGet(now, addr, lat)
	v := oc.Victim(addr, 0, oc.Ways())
	if v.State != cache.Invalid {
		t.evictOnCtrl(bank, v)
	}
	oc.Install(v, addr, ll.Data, cache.Shared)
	t.holders[addr] |= 1 << uint(bank)
	return redLine{Data: v.Data, addr: addr, cached: v}
}

// redPut publishes a mutated redundancy line: mark dirty when cached,
// write through to NVM when caching is disabled.
func (t *Controller) redPut(now uint64, rl redLine) {
	if rl.cached != nil {
		rl.cached.State = cache.Modified
		return
	}
	t.mem.WriteLine(now, rl.addr, nvm.Redundancy, rl.Data)
}

// claimExclusive invalidates every other bank's on-controller copy of addr,
// first folding a dirty copy back into the LLC partition (MESI M→I with
// writeback).
func (t *Controller) claimExclusive(now uint64, addr uint64, bank int) {
	hs := t.holders[addr] &^ (1 << uint(bank))
	if hs == 0 {
		return
	}
	for b := 0; hs != 0; b++ {
		if hs&(1<<uint(b)) == 0 {
			continue
		}
		hs &^= 1 << uint(b)
		oc := t.onCtrl[b]
		l := oc.Lookup(addr, 0, oc.Ways())
		if l == nil {
			continue
		}
		if l.Dirty() {
			t.copyBackToLLC(l)
		}
		oc.Invalidate(l)
		t.st.RedInvalidations++
		t.emit(obs.EvRedInval, now, addr, uint64(b))
	}
	t.holders[addr] &= 1 << uint(bank)
}

// copyBackToLLC folds a dirty on-controller line into its inclusive LLC
// partition copy.
func (t *Controller) copyBackToLLC(l *cache.Line) {
	b := t.eng.Bank(l.Addr)
	ll := b.Lookup(l.Addr, t.redLo, t.redHi)
	if ll == nil {
		panic(fmt.Sprintf("core: on-controller/LLC redundancy inclusion violated for %#x", l.Addr))
	}
	copy(ll.Data, l.Data)
	ll.State = cache.Modified
	t.st.AddCache(stats.LLC, true, t.eng.Cfg.LLCBank.HitEnergyPJ)
}

// evictOnCtrl frees one on-controller way, folding dirty content back into
// the LLC partition.
func (t *Controller) evictOnCtrl(bank int, v *cache.Line) {
	if v.Dirty() {
		t.copyBackToLLC(v)
	}
	t.holders[v.Addr] &^= 1 << uint(bank)
	t.onCtrl[bank].Invalidate(v)
}

// llcRedGet reads the redundancy line at addr from its home bank's LLC
// redundancy partition, filling from NVM on a miss.
func (t *Controller) llcRedGet(now uint64, addr uint64, lat *uint64) *cache.Line {
	cfg := t.eng.Cfg
	b := t.eng.Bank(addr)
	*lat += cfg.LLCBank.LatencyCyc
	if l := b.Lookup(addr, t.redLo, t.redHi); l != nil {
		t.st.AddCache(stats.LLC, true, cfg.LLCBank.HitEnergyPJ)
		b.Touch(l)
		return l
	}
	t.st.AddCache(stats.LLC, false, cfg.LLCBank.MissEnergyPJ)
	// Install copies, so the fill scratch never escapes this call.
	buf := t.scratchFill
	done, _ := t.mem.ReadLine(now, addr, nvm.Redundancy, buf)
	*lat += done - now
	v := b.Victim(addr, t.redLo, t.redHi)
	if v.State != cache.Invalid {
		t.evictRedLLC(now, v)
	}
	b.Install(v, addr, buf, cache.Shared)
	return v
}

// evictRedLLC evicts an LLC redundancy-partition line: pulls any dirty
// on-controller copy (inclusivity), then writes dirty content to NVM.
func (t *Controller) evictRedLLC(now uint64, v *cache.Line) {
	if hs := t.holders[v.Addr]; hs != 0 {
		for b := 0; hs != 0; b++ {
			if hs&(1<<uint(b)) == 0 {
				continue
			}
			hs &^= 1 << uint(b)
			oc := t.onCtrl[b]
			if l := oc.Lookup(v.Addr, 0, oc.Ways()); l != nil {
				if l.Dirty() {
					copy(v.Data, l.Data)
					v.State = cache.Modified
				}
				oc.Invalidate(l)
				t.st.RedInvalidations++
				t.emit(obs.EvRedInval, now, v.Addr, uint64(b))
			}
		}
		delete(t.holders, v.Addr)
	}
	if v.Dirty() {
		t.mem.WriteLine(now, v.Addr, nvm.Redundancy, v.Data)
	}
	t.eng.Bank(v.Addr).Invalidate(v)
}
