package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// buildWith builds a small Tvarak system with custom features and one
// mapped file.
func buildWith(t *testing.T, feats param.TvarakFeatures, mut func(*param.Config)) (*sim.Engine, *daxfs.DaxMap) {
	t.Helper()
	cfg := param.SmallTest(param.Tvarak)
	cfg.Tvarak.Features = feats
	if mut != nil {
		mut(cfg)
	}
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("data", 2<<20); err != nil {
		t.Fatal(err)
	}
	m, err := fs.MMap("data")
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

// randomWrites runs a random-write sweep (the access pattern Fig. 9 uses
// fio rand-write for) and returns the runtime.
func randomWrites(t *testing.T, feats param.TvarakFeatures) uint64 {
	e, m := buildWith(t, feats, nil)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		rng := rand.New(rand.NewSource(11))
		buf := make([]byte, 64)
		for i := 0; i < 6000; i++ {
			rng.Read(buf)
			off := uint64(rng.Intn(int(m.Size()/64))) * 64
			m.Store(c, off, buf)
		}
	}})
	return e.St.Cycles
}

// TestFig9OrderingRandomWrites asserts the cumulative-improvement ordering
// of Fig. 9: each design element makes the random-write workload no slower,
// and the full design beats naive by a wide margin.
func TestFig9OrderingRandomWrites(t *testing.T) {
	naive := randomWrites(t, param.TvarakFeatures{})
	daxcl := randomWrites(t, param.TvarakFeatures{CacheLineChecksums: true})
	cached := randomWrites(t, param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true})
	full := randomWrites(t, param.FullTvarak())
	t.Logf("naive=%d +daxcl=%d +cache=%d full=%d", naive, daxcl, cached, full)
	if !(daxcl < naive) {
		t.Errorf("DAX-CL-checksums did not improve on naive: %d vs %d", daxcl, naive)
	}
	if !(cached <= daxcl) {
		t.Errorf("redundancy caching regressed: %d vs %d", cached, daxcl)
	}
	if !(full <= cached) {
		t.Errorf("data diffs regressed: %d vs %d", full, cached)
	}
	if float64(naive) < 2*float64(full) {
		t.Errorf("naive (%d) should be >2x full TVARAK (%d) on random writes", naive, full)
	}
}

// TestNaiveReadsWholePagePerWriteback checks Fig. 4's defining cost: with
// page-granular checksums, one line writeback forces reading the rest of
// the page from NVM.
func TestNaiveReadsWholePagePerWriteback(t *testing.T) {
	e, m := buildWith(t, param.TvarakFeatures{}, nil)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 0, bytes.Repeat([]byte{1}, 64))
	}})
	// One writeback at drain: 64 page reads (incl. old data) + page-csum
	// read/write + parity read/write, all straight to NVM.
	if e.St.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", e.St.Writebacks)
	}
	if e.St.NVM.RedReads < 64 {
		t.Errorf("naive writeback performed %d redundancy reads, want >= 64 (whole page)", e.St.NVM.RedReads)
	}
}

// TestExclusiveCacheModeSkipsDiffs covers §IV-G: without data diffs the
// controller never stashes diffs and re-reads old data from NVM instead.
func TestExclusiveCacheModeSkipsDiffs(t *testing.T) {
	feats := param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true}
	e, m := buildWith(t, feats, nil)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{2}, 64)
		for i := 0; i < 500; i++ {
			m.Store(c, uint64(i)*64, buf)
		}
	}})
	if e.St.DiffStashes != 0 || e.St.DiffEvictions != 0 {
		t.Errorf("exclusive mode used diffs: stashes=%d evictions=%d", e.St.DiffStashes, e.St.DiffEvictions)
	}
	if e.St.NVM.RedReads < e.St.Writebacks {
		t.Errorf("old-data reads (%d within %d red reads) fewer than writebacks (%d)",
			e.St.NVM.RedReads, e.St.NVM.RedReads, e.St.Writebacks)
	}
}

// TestDiffsReduceRedundancyReads compares write paths with and without
// diffs on the same sequential workload: diffs must remove the per-
// writeback old-data NVM read.
func TestDiffsReduceRedundancyReads(t *testing.T) {
	reads := func(feats param.TvarakFeatures) uint64 {
		e, m := buildWith(t, feats, nil)
		e.Run([]func(*sim.Core){func(c *sim.Core) {
			buf := bytes.Repeat([]byte{3}, 64)
			for off := uint64(0); off < m.Size(); off += 64 {
				m.Store(c, off, buf)
			}
		}})
		return e.St.NVM.RedReads
	}
	with := reads(param.FullTvarak())
	without := reads(param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true})
	if with >= without {
		t.Errorf("diffs did not reduce redundancy reads: %d (with) vs %d (without)", with, without)
	}
}

// TestControllerSharingInvalidations: consecutive data lines map to
// different LLC banks but share one checksum line, so bank controllers
// must exchange it via invalidations (the MESI sharing of §III-E).
func TestControllerSharingInvalidations(t *testing.T) {
	e, m := buildWith(t, param.FullTvarak(), nil)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		buf := bytes.Repeat([]byte{4}, 64)
		// 16 consecutive lines share one DAX-CL-checksum line but live in
		// 4 different banks (SmallTest has 4 banks); force writebacks by
		// writing far more than the hierarchy holds.
		for i := 0; i < 30000; i++ {
			m.Store(c, uint64(i*64)%m.Size(), buf)
		}
	}})
	if e.St.RedInvalidations == 0 {
		t.Error("no on-controller cache invalidations despite cross-bank checksum-line sharing")
	}
}

// TestRecoveryInPageGranularMode injects a lost write under the naive
// page-checksum controller and expects whole-page reconstruction.
func TestRecoveryInPageGranularMode(t *testing.T) {
	e, m := buildWith(t, param.TvarakFeatures{}, nil)
	want := bytes.Repeat([]byte{0x9c}, 64)
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 64*5, bytes.Repeat([]byte{1}, 64))
	}})
	e.DropCaches()
	e.NVM.InjectLostWrite(e.Geo.LineAddr(m.Addr(64 * 5)))
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		m.Store(c, 64*5, want)
	}})
	e.DropCaches()
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		m.Load(c, 64*5, got)
		if !bytes.Equal(got, want) {
			t.Error("page-granular recovery returned wrong data")
		}
	}})
	if e.St.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", e.St.Recoveries)
	}
}

// TestManyInjectedFaultsAllRecovered is the adversarial sweep: inject lost
// writes on many random lines, then read everything back and require exact
// content plus one recovery per lost line.
func TestManyInjectedFaultsAllRecovered(t *testing.T) {
	e, m := buildWith(t, param.FullTvarak(), nil)
	rng := rand.New(rand.NewSource(17))
	const lines = 2048
	content := make(map[uint64][]byte, lines)

	// Phase 1: baseline content, fully drained.
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		for i := 0; i < lines; i++ {
			off := uint64(i) * 64
			buf := make([]byte, 64)
			rng.Read(buf)
			content[off] = buf
			m.Store(c, off, buf)
		}
	}})
	e.DropCaches()

	// Phase 2: rewrite a subset, arming lost-write bugs on some of them.
	// Cross-DIMM parity (like any RAID-5 geometry) recovers at most one
	// lost line per parity group, so injected faults are kept in distinct
	// groups — the same single-fault model the paper assumes.
	lost := 0
	usedGroup := map[uint64]bool{}
	e2 := rng.Perm(lines)[:256]
	for _, i := range e2 {
		off := uint64(i) * 64
		addr := e.Geo.LineAddr(m.Addr(off))
		group := e.Geo.ParityLineAddr(addr)
		if rng.Intn(2) == 0 && !usedGroup[group] {
			usedGroup[group] = true
			e.NVM.InjectLostWrite(addr)
			lost++
		}
	}
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		for _, i := range e2 {
			off := uint64(i) * 64
			buf := make([]byte, 64)
			rng.Read(buf)
			content[off] = buf
			m.Store(c, off, buf)
		}
	}})
	if e.NVM.PendingBugs() != 0 {
		t.Fatalf("%d injected bugs never fired", e.NVM.PendingBugs())
	}
	e.DropCaches()

	// Phase 3: read every line back; all content must be exact.
	e.Run([]func(*sim.Core){func(c *sim.Core) {
		got := make([]byte, 64)
		for i := 0; i < lines; i++ {
			off := uint64(i) * 64
			m.Load(c, off, got)
			if !bytes.Equal(got, content[off]) {
				t.Fatalf("line %d corrupted after recovery", i)
			}
		}
	}})
	if int(e.St.Recoveries) != lost {
		t.Errorf("recoveries = %d, want %d (one per lost write)", e.St.Recoveries, lost)
	}
}

// TestWaySweepMonotonicity: growing the redundancy partition must not
// increase redundancy NVM traffic (Fig. 10(a) mechanics).
func TestWaySweepMonotonicity(t *testing.T) {
	traffic := func(ways int) uint64 {
		e, m := buildWith(t, param.FullTvarak(), func(cfg *param.Config) {
			cfg.Tvarak.RedundancyWays = ways
		})
		e.Run([]func(*sim.Core){func(c *sim.Core) {
			rng := rand.New(rand.NewSource(5))
			buf := make([]byte, 64)
			for i := 0; i < 5000; i++ {
				rng.Read(buf)
				m.Store(c, uint64(rng.Intn(int(m.Size()/64)))*64, buf)
			}
		}})
		return e.St.NVM.Redundancy()
	}
	prev := traffic(1)
	for _, ways := range []int{2, 4, 8} {
		cur := traffic(ways)
		if cur > prev+prev/20 { // allow 5% noise from set-conflict shifts
			t.Errorf("%d ways: redundancy traffic %d above %d at fewer ways", ways, cur, prev)
		}
		prev = cur
	}
}

// TestDeterministicUnderFullDesign guards the phase scheduler + controller
// against nondeterminism with all features on.
func TestDeterministicUnderFullDesign(t *testing.T) {
	run := func() string {
		e, m := buildWith(t, param.FullTvarak(), nil)
		workers := make([]func(*sim.Core), 3)
		for w := 0; w < 3; w++ {
			w := w
			workers[w] = func(c *sim.Core) {
				rng := rand.New(rand.NewSource(int64(w + 1)))
				buf := make([]byte, 64)
				for i := 0; i < 2000; i++ {
					off := uint64(rng.Intn(int(m.Size()/64))) * 64
					if rng.Intn(2) == 0 {
						rng.Read(buf)
						m.Store(c, off, buf)
					} else {
						m.Load(c, off, buf)
					}
				}
			}
		}
		e.Run(workers)
		return fmt.Sprintf("%d/%d/%d/%d", e.St.Cycles, e.St.NVM.Total(), e.St.DiffStashes, e.St.RedInvalidations)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %s vs %s", a, b)
	}
}

// TestControllerInvariantsAfterStress validates the controller's cache
// inclusivity and holder bookkeeping after a multi-core stress run.
func TestControllerInvariantsAfterStress(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.New(e)
	fs, err := daxfs.New(e, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("data", 2<<20)
	m, _ := fs.MMap("data")
	workers := make([]func(*sim.Core), 4)
	for w := range workers {
		w := w
		workers[w] = func(c *sim.Core) {
			rng := rand.New(rand.NewSource(int64(w + 31)))
			buf := make([]byte, 64)
			for i := 0; i < 4000; i++ {
				off := uint64(rng.Intn(int(m.Size()/64))) * 64
				if rng.Intn(2) == 0 {
					rng.Read(buf)
					m.Store(c, off, buf)
				} else {
					m.Load(c, off, buf)
				}
				if i == 2000 && w == 0 {
					if err := ctrl.CheckInvariants(); err != nil {
						t.Error(err)
					}
					if err := e.CheckInvariants(); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
	e.Run(workers)
	if err := ctrl.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
