package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tvarak/internal/live"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

// Cell is one independent unit of an experiment: a machine configuration
// plus a workload factory. Every cell simulates on its own fresh System
// (see Run), so cells share no mutable state and a Runner may execute them
// in any order — or concurrently — without changing their results.
type Cell struct {
	// Config is the machine this cell simulates. Each cell must own its
	// Config: builders that mutate one (feature ablations, way sweeps,
	// DIMM sweeps) allocate a fresh Config per cell.
	Config *param.Config
	// Make builds the workload. It is called inside the executing worker
	// (and, when journaling, once more to fingerprint the cell), so
	// factories must not capture shared mutable state; capturing
	// configuration values and deterministic seeds is fine.
	Make func() Workload
	// Variant labels sub-configurations within a design (Fig. 9 ablation
	// points, Fig. 10 way counts); it is copied onto the Result.
	Variant string
	// Rename, if non-nil, rewrites the result's workload label after the
	// run (the §IV-H sweeps suffix the DIMM count or NVM technology so
	// each parameter point gets its own baseline row).
	Rename func(workload string) string
	// SampleEvery, when non-zero, samples the cell's measured run into an
	// epoch time series (see Observation).
	SampleEvery uint64
	// Tracer, when non-nil, receives the cell's measured simulation
	// events. A tracer shared across cells must be safe for concurrent
	// Trace calls (obs.JSONL is); each cell's events are stamped with its
	// workload/design/variant label.
	Tracer obs.Tracer

	// live and index are set by the Runner when live telemetry is
	// attached: the cell reports its lifecycle to live.Board slot index
	// and streams phase-boundary progress through a live.CellProbe.
	live  *live.Telemetry
	index int
}

// run executes the cell on a fresh system and applies its labelling. The
// context cancels the simulation cooperatively at phase boundaries.
func (c Cell) run(ctx context.Context) (*Result, error) {
	w := c.Make()
	ob := Observation{SampleEvery: c.SampleEvery}
	if c.Tracer != nil {
		src := w.Name() + "/" + c.Config.Design.String()
		if c.Variant != "" {
			src += "[" + c.Variant + "]"
		}
		ob.Tracer = obs.WithSource(c.Tracer, src)
	}
	if c.live != nil {
		c.live.Board.CellRunning(c.index, c.labelFor(w))
		ob.Probe = c.live.CellProbe(c.index)
	}
	r, err := RunObservedCtx(ctx, c.Config, w, ob)
	if err != nil {
		return nil, err
	}
	r.Variant = c.Variant
	if c.Rename != nil {
		r.Workload = c.Rename(r.Workload)
	}
	return r, nil
}

// labelFor renders the cell's display label from an already-built workload
// (safeLabel re-invokes the factory, which stateful factories notice).
func (c Cell) labelFor(w Workload) string {
	name := w.Name()
	if c.Rename != nil {
		name = c.Rename(name)
	}
	l := name + "/" + c.Config.Design.String()
	if c.Variant != "" {
		l += "[" + c.Variant + "]"
	}
	return l
}

// Progress is the per-cell completion callback: done cells so far, total
// cells, the cell's result and its wall-clock duration. The Runner
// serializes calls, so implementations need no locking of their own.
type Progress func(done, total int, r *Result, elapsed time.Duration)

// CellFailure describes one cell that exhausted its attempts without
// producing a result.
type CellFailure struct {
	// Index is the cell's position in the cells slice.
	Index int `json:"index"`
	// Label names the cell (workload/design[variant]).
	Label string `json:"label"`
	// Err is the final attempt's error.
	Err string `json:"err"`
	// Stack is the panic stack (contained panics) or the all-goroutine
	// dump the watchdog took (hung cells); empty for plain errors.
	Stack string `json:"stack,omitempty"`
	// Hung marks a cell that exceeded its deadline or was abandoned by
	// the watchdog rather than failing with an error of its own.
	Hung bool `json:"hung,omitempty"`
	// Attempts is how many times the cell ran before giving up.
	Attempts int `json:"attempts"`
}

// Manifest summarizes a run's partial-completion state: it is the durable
// answer to "what did this run actually produce" when cells failed, hung,
// or the run was interrupted. A journaling run appends it as the final
// journal record whenever it is not clean.
type Manifest struct {
	// Total is the number of cells the run was asked for.
	Total int `json:"total"`
	// Completed counts cells with a real result, including restored ones.
	Completed int `json:"completed"`
	// FromJournal counts completed cells restored from the journal
	// instead of re-simulated.
	FromJournal int `json:"fromJournal,omitempty"`
	// Failures lists cells that exhausted their attempts, earliest first.
	Failures []CellFailure `json:"failures,omitempty"`
	// Interrupted lists cells whose attempt was cut short by
	// cancellation; a resumed run re-executes them.
	Interrupted []int `json:"interrupted,omitempty"`
	// NotAttempted lists cells never started — claimed or enumerated
	// after a failure or cancellation stopped the pool.
	NotAttempted []int `json:"notAttempted,omitempty"`
	// Cancelled reports that the run's context was cancelled.
	Cancelled bool `json:"cancelled,omitempty"`
}

// Clean reports whether every cell completed and nothing was interrupted.
func (m *Manifest) Clean() bool {
	return m.Completed == m.Total && len(m.Failures) == 0 &&
		len(m.Interrupted) == 0 && len(m.NotAttempted) == 0 && !m.Cancelled
}

// String renders the human-readable summary, one line plus one per failure.
func (m *Manifest) String() string {
	s := fmt.Sprintf("manifest: %d/%d cells completed", m.Completed, m.Total)
	if m.FromJournal > 0 {
		s += fmt.Sprintf(" (%d restored from journal)", m.FromJournal)
	}
	if n := len(m.Failures); n > 0 {
		s += fmt.Sprintf(", %d failed", n)
	}
	if n := len(m.Interrupted); n > 0 {
		s += fmt.Sprintf(", %d interrupted", n)
	}
	if n := len(m.NotAttempted); n > 0 {
		s += fmt.Sprintf(", %d not attempted", n)
	}
	if m.Cancelled {
		s += " [cancelled]"
	}
	for _, f := range m.Failures {
		kind := "failed"
		if f.Hung {
			kind = "hung"
		}
		s += fmt.Sprintf("\n  cell %d (%s) %s after %d attempt(s): %s", f.Index, f.Label, kind, f.Attempts, f.Err)
	}
	return s
}

// Runner executes cells across a bounded worker pool and reassembles the
// results in cell order, regardless of completion order. Because every
// cell is deterministic and isolated, a table rendered from a parallel run
// is byte-identical to one from a sequential run of the same cells — the
// determinism gate in the tests asserts exactly that.
//
// The zero value is the strict historical runner. The resilience fields
// opt into long-run behaviour: cooperative cancellation (Context), durable
// checkpoint/resume (Journal), per-cell deadlines with a goroutine-dump
// watchdog (CellTimeout), bounded retry (Retries/Backoff), and degraded
// completion that renders failed cells as explicit holes instead of
// aborting the run (Degrade).
type Runner struct {
	// Workers bounds how many cells simulate concurrently. Zero or
	// negative means runtime.NumCPU(); 1 reproduces the historical
	// sequential behaviour exactly (including stopping at the first
	// failing cell).
	Workers int
	// Progress, if non-nil, is invoked after each cell completes, in
	// completion order (including cells restored from the journal and,
	// under Degrade, failure placeholders).
	Progress Progress
	// Context, when non-nil, cancels the run cooperatively: no new cell
	// is claimed once it is done, and in-flight cells stop at their next
	// simulation phase boundary. Interrupted cells produce no result and
	// are re-executed by a resumed run.
	Context context.Context
	// Journal, when non-nil, makes the run crash-safe: each completed
	// cell's result is fsync'd under its fingerprint before completion is
	// acknowledged, and cells whose fingerprints the journal already
	// holds are restored instead of re-run.
	Journal *Journal
	// Scope namespaces journal fingerprints (the experiment id plus any
	// options that shape the cells, e.g. scale).
	Scope string
	// CellTimeout, when non-zero, bounds one attempt of one cell. The
	// deadline propagates into the simulation and normally stops it at a
	// phase boundary; a cell that still does not return within
	// WatchdogGrace extra time is marked hung, its goroutine dump is
	// journaled, and its worker slot is released (the stuck goroutine is
	// abandoned — Go cannot kill it).
	CellTimeout time.Duration
	// WatchdogGrace is the extra wall-clock allowed past CellTimeout (or
	// past cancellation) for a cell to unwind cooperatively before the
	// watchdog abandons it. Zero selects 2s.
	WatchdogGrace time.Duration
	// Retries is how many extra attempts a failing cell gets before it
	// counts as failed. Hung and cancelled cells are never retried.
	Retries int
	// Backoff schedules the pause before each retry attempt:
	// seeded-jitter exponential growth from Base capped at Max (the fleet
	// gateway's redelivery loop shares the same policy). The zero value
	// retries immediately. Backoff is wall-clock-only — it never changes
	// a cell's simulated result.
	Backoff BackoffPolicy
	// Degrade keeps the run going past exhausted cells: instead of
	// aborting, the failed cell yields a placeholder Result whose Failure
	// field is set (tables render it as an explicit hole) plus a
	// Manifest entry, and every sibling cell still runs.
	Degrade bool
	// Live, when non-nil, streams cell lifecycle transitions and
	// phase-boundary progress into the wall-clock telemetry bundle (the
	// /metrics counters and the /runs board). It is strictly read-only
	// with respect to results: attaching it changes no cell's output.
	Live *live.Telemetry
}

func (rn Runner) workers(n int) int {
	w := rn.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

func (rn Runner) ctxErr() error {
	if rn.Context == nil {
		return nil
	}
	return rn.Context.Err()
}

// ForEach runs job(i) for every i in [0, n) across the worker pool.
// Indices are claimed in order; after a job fails (or the Context is
// cancelled), no new index is claimed — in-flight jobs finish. The
// returned error aggregates every job failure with errors.Join, earliest
// index first, so the primary (first) error never depends on the worker
// count. A job that must never stop its siblings (the fault-injection
// campaign records per-unit failures in its report instead) simply
// returns nil and keeps its own accounting.
func (rn Runner) ForEach(n int, job func(i int) error) error {
	err, _ := rn.forEach(n, job)
	return err
}

// forEach is ForEach plus the skipped-index accounting: it returns the
// indices that were never attempted because a failure or cancellation
// stopped the pool first — including indices a worker claimed from the
// counter but declined to run, which earlier versions silently dropped.
func (rn Runner) forEach(n int, job func(int) error) (error, []int) {
	if n <= 0 {
		return nil, nil
	}
	errs := make([]error, n)
	ran := make([]bool, n) // indexed writes only, each index claimed once
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := rn.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if failed.Load() || rn.ctxErr() != nil {
					return // i stays !ran — reported as not attempted
				}
				ran[i] = true
				if err := job(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	var joined []error
	var skipped []int
	for i := range errs {
		if errs[i] != nil {
			joined = append(joined, errs[i])
		}
		if !ran[i] {
			skipped = append(skipped, i)
		}
	}
	return errors.Join(joined...), skipped
}

// cellOutcome is what one cell ultimately produced.
type cellOutcome struct {
	r           *Result
	fromJournal bool
	cancelled   bool
	fail        *CellFailure
}

// attemptResult is one attempt's raw outcome.
type attemptResult struct {
	r     *Result
	err   error
	stack string
	hung  bool
}

// RunManifest executes every cell and returns the results indexed exactly
// like cells (nil for cells that produced nothing), plus the run's
// manifest. Without Degrade, the error aggregates every failed cell
// (earliest first); with Degrade, failed cells become placeholder results
// and the error stays nil. Cancellation is never an error here — the
// manifest reports it.
func (rn Runner) RunManifest(cells []Cell) ([]*Result, *Manifest, error) {
	n := len(cells)
	man := &Manifest{Total: n}
	if n == 0 {
		return nil, man, nil
	}
	results := make([]*Result, n)
	if rn.Live != nil {
		scope := rn.Scope
		if scope == "" {
			scope = "run"
		}
		rn.Live.Board.Begin(scope, n)
	}
	var (
		mu   sync.Mutex // serializes Progress, the done counter and manifest appends
		done int
	)
	err, skipped := rn.forEach(n, func(i int) error {
		start := time.Now()
		out := rn.runCell(i, cells[i])
		if rn.Live != nil && !out.fromJournal && !out.cancelled {
			rn.Live.Runner.CellSeconds.Observe(time.Since(start).Seconds())
		}
		mu.Lock()
		switch {
		case out.fail != nil:
			man.Failures = append(man.Failures, *out.fail)
			if rn.Degrade {
				results[i] = FailureResult(cells[i], i, out.fail)
			}
		case out.cancelled:
			man.Interrupted = append(man.Interrupted, i)
		case out.r != nil:
			results[i] = out.r
			man.Completed++
			if out.fromJournal {
				man.FromJournal++
			}
		}
		if results[i] != nil {
			done++
			if rn.Progress != nil {
				rn.Progress(done, n, results[i], time.Since(start))
			}
		}
		mu.Unlock()
		if out.fail != nil && !rn.Degrade {
			return fmt.Errorf("cell %d (%s): %s", i, out.fail.Label, out.fail.Err)
		}
		return nil
	})
	man.NotAttempted = skipped
	man.Cancelled = rn.ctxErr() != nil
	sort.Slice(man.Failures, func(a, b int) bool { return man.Failures[a].Index < man.Failures[b].Index })
	sort.Ints(man.Interrupted)
	if rn.Journal != nil && !man.Clean() {
		_ = rn.Journal.Record("manifest", rn.Scope, man)
	}
	return results, man, err
}

// Run executes every cell and returns the results indexed exactly like
// cells. On failure it returns the error of the earliest (by cell order)
// cell that failed, joined with every other failure; cells not yet
// started when a failure is observed are skipped and reported in the
// manifest of RunManifest. Cancellation of the Context is returned as an
// error wrapping its cause. Under Degrade, failed cells appear as
// placeholder results instead of errors.
func (rn Runner) Run(cells []Cell) ([]*Result, error) {
	rs, man, err := rn.RunManifest(cells)
	if err != nil {
		return nil, err
	}
	if man.Cancelled {
		return nil, fmt.Errorf("harness: run cancelled: %w", context.Cause(rn.Context))
	}
	return rs, nil
}

// RunTable executes the cells and collects the results, in cell order,
// into a titled table carrying the run's manifest. Under Degrade or
// cancellation the table is partial: failed cells render as explicit
// holes and interrupted cells are simply absent — consult Manifest.
func (rn Runner) RunTable(title string, cells []Cell) (*Table, error) {
	rs, man, err := rn.RunManifest(cells)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title, Manifest: man}
	for _, r := range rs {
		if r != nil {
			t.Add(r)
		}
	}
	return t, nil
}

// runCell drives one cell to its final outcome: journal restore, the
// attempt/retry loop with watchdog containment, and checkpointing.
func (rn Runner) runCell(i int, c Cell) cellOutcome {
	c.live, c.index = rn.Live, i
	var fp string
	if rn.Journal != nil {
		fp = safeFingerprint(c, rn.Scope, i)
		var r Result
		if rn.Journal.Lookup("cell", fp, &r) {
			if rn.Live != nil {
				rn.Live.Runner.Restored.AddAt(i, 1)
				rn.Live.Board.CellRestored(i, safeLabel(c, i), r.Stats.Cycles, r.Stats.Loads+r.Stats.Stores)
			}
			return cellOutcome{r: &r, fromJournal: true}
		}
	}
	if rn.Live != nil {
		rn.Live.Runner.Started.AddAt(i, 1)
	}
	attempts := rn.Retries + 1
	for a := 1; ; a++ {
		ar := rn.attemptCell(c)
		if ar.err == nil {
			if rn.Journal != nil {
				if err := rn.Journal.Record("cell", fp, ar.r); err != nil {
					// A checkpoint that cannot be made durable is a cell
					// failure: acknowledging it would let a crash lose
					// acknowledged work.
					ar = attemptResult{err: fmt.Errorf("harness: journaling cell: %w", err)}
				}
			}
			if ar.err == nil {
				if c.Tracer != nil {
					obs.WithSource(c.Tracer, safeLabel(c, i)).Trace(obs.Event{
						Kind: obs.EvCheckpoint, Cycle: ar.r.Stats.Cycles, Aux: uint64(i),
					})
				}
				if rn.Live != nil {
					rn.Live.Runner.Finished.AddAt(i, 1)
					rn.Live.Board.CellDone(i, ar.r.Stats.Cycles, ar.r.Stats.Loads+ar.r.Stats.Stores)
				}
				return cellOutcome{r: ar.r}
			}
		}
		if errors.Is(ar.err, context.Canceled) && !ar.hung {
			return cellOutcome{cancelled: true}
		}
		if ar.hung || a >= attempts {
			// Terminal: only now pay for the label (safeLabel re-invokes
			// the workload factory, which stateful factories notice).
			fail := &CellFailure{
				Index: i, Label: safeLabel(c, i), Err: ar.err.Error(),
				Stack: ar.stack, Hung: ar.hung, Attempts: a,
			}
			if rn.Live != nil {
				rn.Live.Runner.Failed.AddAt(i, 1)
				if ar.hung {
					rn.Live.Runner.Watchdog.AddAt(i, 1)
				}
				rn.Live.Board.CellFailed(i, fail.Label, fail.Err, ar.hung)
			}
			if rn.Journal != nil {
				if ar.hung {
					stacks := ar.stack
					if stacks == "" {
						stacks = allStacks()
					}
					_ = rn.Journal.Record("hang", fp, hangRecord{Label: fail.Label, Attempt: a, Stacks: stacks})
				}
				_ = rn.Journal.Record("fail", fp, fail)
			}
			return cellOutcome{fail: fail}
		}
		if rn.Live != nil {
			rn.Live.Runner.Retried.AddAt(i, 1)
			rn.Live.Board.CellRetrying(i)
		}
		if !rn.backoff(a) {
			return cellOutcome{cancelled: true}
		}
	}
}

// backoff pauses for the policy's attempt-a delay before retry attempt
// a+1, abandoning the wait (and reporting false) if the run is cancelled
// meanwhile.
func (rn Runner) backoff(a int) bool {
	d := rn.Backoff.Delay(a)
	if d <= 0 {
		return rn.ctxErr() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	var done <-chan struct{}
	if rn.Context != nil {
		done = rn.Context.Done()
	}
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// attemptCell runs one attempt of one cell on its own goroutine with
// panic containment, a deadline that propagates into the simulation, and
// a hard watchdog that abandons the goroutine if it does not unwind.
func (rn Runner) attemptCell(c Cell) attemptResult {
	parent := rn.Context
	if parent == nil {
		parent = context.Background()
	}
	cctx := parent
	if rn.CellTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(parent, rn.CellTimeout)
		defer cancel()
	}
	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- attemptResult{
					err:   fmt.Errorf("harness: cell panicked: %v", p),
					stack: string(debug.Stack()),
				}
			}
		}()
		r, err := c.run(cctx)
		done <- attemptResult{r: r, err: err}
	}()
	grace := rn.WatchdogGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	var hardC <-chan time.Time
	if rn.CellTimeout > 0 {
		hard := time.NewTimer(rn.CellTimeout + grace)
		defer hard.Stop()
		hardC = hard.C
	}
	var parentDone <-chan struct{}
	if rn.Context != nil {
		parentDone = rn.Context.Done()
	}
	select {
	case ar := <-done:
		return classify(ar)
	case <-hardC:
	case <-parentDone:
		// Cancelled: give the cell one grace period to unwind at its next
		// phase boundary before abandoning it.
		g := time.NewTimer(grace)
		defer g.Stop()
		select {
		case ar := <-done:
			return classify(ar)
		case <-g.C:
		case <-hardC:
		}
	}
	// Watchdog: the cell neither finished nor unwound. Its goroutine
	// cannot be killed — abandon it (it keeps its System alive until it
	// ever returns) and release the worker slot with a full dump.
	return attemptResult{
		err:  fmt.Errorf("harness: cell watchdog: no result within deadline+%v grace, worker abandoned", grace),
		hung: true, stack: allStacks(),
	}
}

// classify marks graceful deadline unwinds as hung.
func classify(ar attemptResult) attemptResult {
	if ar.err != nil && errors.Is(ar.err, context.DeadlineExceeded) {
		ar.hung = true
	}
	return ar
}

// allStacks dumps every goroutine's stack.
func allStacks() string {
	buf := make([]byte, 1<<20)
	return string(buf[:runtime.Stack(buf, true)])
}

// safeFingerprint fingerprints the cell, falling back to an index-keyed
// fingerprint if the workload factory itself panics.
func safeFingerprint(c Cell, scope string, i int) (fp string) {
	fp = fmt.Sprintf("%s/cell-%d#unfingerprintable", scope, i)
	defer func() { _ = recover() }()
	return c.Fingerprint(scope)
}

// safeName returns the cell's (renamed) workload name, tolerating a
// panicking factory.
func safeName(c Cell, i int) (name string) {
	name = fmt.Sprintf("cell-%d", i)
	defer func() { _ = recover() }()
	n := c.Make().Name()
	if c.Rename != nil {
		n = c.Rename(n)
	}
	return n
}

// CellLabel is the cell's display label (workload/design[variant]),
// tolerating a panicking workload factory. The fleet uses it to name
// leases in status output and failure manifests.
func CellLabel(c Cell, i int) string { return safeLabel(c, i) }

// safeLabel is the cell's display label: workload/design[variant].
func safeLabel(c Cell, i int) string {
	l := safeName(c, i) + "/" + c.Config.Design.String()
	if c.Variant != "" {
		l += "[" + c.Variant + "]"
	}
	return l
}

// FailureResult synthesizes the degraded-mode placeholder for a failed
// cell: a Result with the cell's labels, zero statistics, and Failure set,
// which tables render as an explicit hole. The fleet gateway uses it to
// render redelivery-exhausted cells exactly like a local Degrade run.
func FailureResult(c Cell, i int, f *CellFailure) *Result {
	reason := f.Err
	if f.Hung {
		reason = "hung: " + reason
	}
	return &Result{
		Workload: safeName(c, i),
		Design:   c.Config.Design,
		Variant:  c.Variant,
		Failure:  reason,
	}
}
