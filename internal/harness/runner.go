package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tvarak/internal/obs"
	"tvarak/internal/param"
)

// Cell is one independent unit of an experiment: a machine configuration
// plus a workload factory. Every cell simulates on its own fresh System
// (see Run), so cells share no mutable state and a Runner may execute them
// in any order — or concurrently — without changing their results.
type Cell struct {
	// Config is the machine this cell simulates. Each cell must own its
	// Config: builders that mutate one (feature ablations, way sweeps,
	// DIMM sweeps) allocate a fresh Config per cell.
	Config *param.Config
	// Make builds the workload. It is called inside the executing worker,
	// so factories must not capture shared mutable state; capturing
	// configuration values and deterministic seeds is fine.
	Make func() Workload
	// Variant labels sub-configurations within a design (Fig. 9 ablation
	// points, Fig. 10 way counts); it is copied onto the Result.
	Variant string
	// Rename, if non-nil, rewrites the result's workload label after the
	// run (the §IV-H sweeps suffix the DIMM count or NVM technology so
	// each parameter point gets its own baseline row).
	Rename func(workload string) string
	// SampleEvery, when non-zero, samples the cell's measured run into an
	// epoch time series (see Observation).
	SampleEvery uint64
	// Tracer, when non-nil, receives the cell's measured simulation
	// events. A tracer shared across cells must be safe for concurrent
	// Trace calls (obs.JSONL is); each cell's events are stamped with its
	// workload/design/variant label.
	Tracer obs.Tracer
}

// run executes the cell on a fresh system and applies its labelling.
func (c Cell) run() (*Result, error) {
	w := c.Make()
	ob := Observation{SampleEvery: c.SampleEvery}
	if c.Tracer != nil {
		src := w.Name() + "/" + c.Config.Design.String()
		if c.Variant != "" {
			src += "[" + c.Variant + "]"
		}
		ob.Tracer = obs.WithSource(c.Tracer, src)
	}
	r, err := RunObserved(c.Config, w, ob)
	if err != nil {
		return nil, err
	}
	r.Variant = c.Variant
	if c.Rename != nil {
		r.Workload = c.Rename(r.Workload)
	}
	return r, nil
}

// Progress is the per-cell completion callback: done cells so far, total
// cells, the cell's result and its wall-clock duration. The Runner
// serializes calls, so implementations need no locking of their own.
type Progress func(done, total int, r *Result, elapsed time.Duration)

// Runner executes cells across a bounded worker pool and reassembles the
// results in cell order, regardless of completion order. Because every
// cell is deterministic and isolated, a table rendered from a parallel run
// is byte-identical to one from a sequential run of the same cells — the
// determinism gate in the tests asserts exactly that.
type Runner struct {
	// Workers bounds how many cells simulate concurrently. Zero or
	// negative means runtime.NumCPU(); 1 reproduces the historical
	// sequential behaviour exactly (including stopping at the first
	// failing cell).
	Workers int
	// Progress, if non-nil, is invoked after each cell completes, in
	// completion order.
	Progress Progress
}

func (rn Runner) workers(n int) int {
	w := rn.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

// ForEach runs job(i) for every i in [0, n) across the worker pool.
// Indices are claimed in order; after a job fails, no new index is
// claimed (in-flight jobs finish), and the error of the earliest-index
// failure is returned. A job that must never stop its siblings (the
// fault-injection campaign records per-unit failures in its report
// instead) simply returns nil and keeps its own accounting.
func (rn Runner) ForEach(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := rn.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes every cell and returns the results indexed exactly like
// cells. On failure it returns the error of the earliest (by cell order)
// cell that failed; cells not yet started when a failure is observed are
// skipped, but any earlier cell has always already been claimed, so the
// reported error does not depend on the worker count.
func (rn Runner) Run(cells []Cell) ([]*Result, error) {
	n := len(cells)
	if n == 0 {
		return nil, nil
	}
	results := make([]*Result, n)
	var (
		mu   sync.Mutex // serializes Progress and the done counter
		done int
	)
	err := rn.ForEach(n, func(i int) error {
		start := time.Now()
		r, err := cells[i].run()
		results[i] = r
		if err != nil {
			return err
		}
		if rn.Progress != nil {
			mu.Lock()
			done++
			rn.Progress(done, n, r, time.Since(start))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunTable executes the cells and collects the results, in cell order,
// into a titled table.
func (rn Runner) RunTable(title string, cells []Cell) (*Table, error) {
	rs, err := rn.Run(cells)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title}
	for _, r := range rs {
		t.Add(r)
	}
	return t, nil
}
