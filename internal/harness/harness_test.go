package harness_test

import (
	"strings"
	"testing"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/stats"
)

// toyWorkload is a minimal harness.Workload for harness-mechanics tests.
type toyWorkload struct {
	name   string
	stores int
	addr   uint64
}

func (w *toyWorkload) Name() string { return w.name }

func (w *toyWorkload) Setup(s *harness.System) error {
	m, err := s.NewMapping(w.name, 1<<20)
	if err != nil {
		return err
	}
	w.addr = m.Addr(0)
	return nil
}

func (w *toyWorkload) Workers(s *harness.System) []func(*sim.Core) {
	return []func(*sim.Core){func(c *sim.Core) {
		var b [8]byte
		for i := 0; i < w.stores; i++ {
			c.Store(w.addr+uint64(i*64)%(1<<19), b[:])
		}
	}}
}

func TestNewSystemWiresControllerOnlyForTvarak(t *testing.T) {
	for _, d := range param.Designs() {
		s, err := harness.NewSystem(param.SmallTest(d))
		if err != nil {
			t.Fatal(err)
		}
		if (s.Ctrl != nil) != (d == param.Tvarak) {
			t.Errorf("%v: controller presence = %v", d, s.Ctrl != nil)
		}
		if s.FS == nil || s.Eng == nil {
			t.Errorf("%v: incomplete system", d)
		}
	}
}

func TestRunResetsBetweenSetupAndMeasurement(t *testing.T) {
	w := &toyWorkload{name: "toy", stores: 100}
	r, err := harness.Run(param.SmallTest(param.Baseline), w)
	if err != nil {
		t.Fatal(err)
	}
	// Measured stats cover only the workers: 100 stores ≈ 100 L1 accesses,
	// not the setup traffic.
	if r.Stats.Cache[stats.L1].Total() != 100 {
		t.Errorf("measured L1 accesses = %d, want 100 (setup leaked into measurement?)",
			r.Stats.Cache[stats.L1].Total())
	}
}

func TestTableOverheadMath(t *testing.T) {
	tab := &harness.Table{}
	base := &harness.Result{Workload: "w", Design: param.Baseline}
	base.Stats.Cycles = 1000
	base.Stats.EnergyPJ = 500
	tv := &harness.Result{Workload: "w", Design: param.Tvarak}
	tv.Stats.Cycles = 1030
	tv.Stats.EnergyPJ = 600
	tab.Add(base)
	tab.Add(tv)
	if got := tab.Overhead(tv); got < 0.0299 || got > 0.0301 {
		t.Errorf("Overhead = %v, want 0.03", got)
	}
	if got := tab.EnergyOverhead(tv); got < 0.199 || got > 0.201 {
		t.Errorf("EnergyOverhead = %v, want 0.2", got)
	}
	if tab.Overhead(base) != 0 {
		t.Error("baseline overhead should be 0")
	}
	// No baseline → overhead 0, not NaN/panic.
	orphan := &harness.Result{Workload: "other", Design: param.Tvarak}
	tab.Add(orphan)
	if tab.Overhead(orphan) != 0 {
		t.Error("missing baseline should yield 0 overhead")
	}
}

func TestTableStringAndFind(t *testing.T) {
	tab := &harness.Table{Title: "demo"}
	r := &harness.Result{Workload: "w", Design: param.Tvarak, Variant: "2-way"}
	r.Stats.Cycles = 42
	tab.Add(r)
	out := tab.String()
	for _, want := range []string{"demo", "Tvarak[2-way]", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.Find("w", param.Tvarak) != r {
		t.Error("Find failed")
	}
	if tab.Find("w", param.Baseline) != nil {
		t.Error("Find invented a result")
	}
}

func TestResultLabel(t *testing.T) {
	r := &harness.Result{Design: param.TxBPageCsums}
	if r.Label() != "TxB-Page-Csums" {
		t.Errorf("Label = %q", r.Label())
	}
	r.Variant = "8-way"
	if r.Label() != "TxB-Page-Csums[8-way]" {
		t.Errorf("Label = %q", r.Label())
	}
}

func TestNewHeapAttachesSchemePerDesign(t *testing.T) {
	// All four designs must accept heap creation; TxB designs allocate
	// checksum tables (observable as extra data-page consumption).
	var pagesUsed [4]uint64
	for i, d := range param.Designs() {
		s, err := harness.NewSystem(param.SmallTest(d))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.NewHeap("h", 2<<20, 4096); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		// Allocate a probe file; its start index reveals allocator usage.
		f, err := s.FS.Create("probe", 4096)
		if err != nil {
			t.Fatal(err)
		}
		pagesUsed[i] = f.StartDI
	}
	if pagesUsed[2] <= pagesUsed[0] || pagesUsed[3] <= pagesUsed[0] {
		t.Errorf("TxB designs did not allocate checksum tables: %v", pagesUsed)
	}
	if pagesUsed[1] <= pagesUsed[0] {
		t.Errorf("Tvarak design did not allocate a DAX-CL-checksum region: %v", pagesUsed)
	}
}

func TestVilambDesignThroughHarness(t *testing.T) {
	// Full path: harness provisions the daemon cores, attaches the scheme
	// per heap, runs daemons alongside workers, and reconciles at the end.
	w := &toyHeapWorkload{}
	r, err := harness.Run(param.SmallTest(param.Vilamb), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != param.Vilamb {
		t.Errorf("result design = %v", r.Design)
	}
	if r.Stats.Cycles == 0 {
		t.Error("zero runtime")
	}
	if w.sys.Vilambs[0].PagesProcessed == 0 {
		t.Error("daemon processed no pages")
	}
	if w.sys.Vilambs[0].DirtyPages() != 0 {
		t.Error("dirty pages left at end of fixed work")
	}
}

func TestWithDaemonsTerminatesWithoutMeasuredWork(t *testing.T) {
	// Regression: with Vilamb daemons attached but every worker slot nil,
	// nothing ever decremented the remaining-work counter, so the daemons
	// spun forever. They must start stopped and still reconcile the tail.
	for _, workers := range [][]func(*sim.Core){nil, {nil}, {nil, nil}} {
		s, err := harness.NewSystem(param.SmallTest(param.Vilamb))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.NewHeap("h", 2<<20, 1024); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			s.Eng.Run(s.WithDaemons(workers))
			close(done)
		}()
		// Budget from the test deadline (leave slack to report), so -timeout
		// governs instead of a magic constant racing slow CI machines.
		budget := 30 * time.Second
		if dl, ok := t.Deadline(); ok {
			if until := time.Until(dl) - 5*time.Second; until > 0 && until < budget {
				budget = until
			}
		}
		select {
		case <-done:
		case <-time.After(budget):
			t.Fatalf("WithDaemons with %d nil workers hung", len(workers))
		}
	}
}

// toyHeapWorkload commits transactions on a heap, for scheme-wiring tests.
type toyHeapWorkload struct {
	sys  *harness.System
	heap *pmem.Heap
	h    *heapRef
}

type heapRef struct {
	id, off uint64
}

func (w *toyHeapWorkload) Name() string { return "toy-heap" }

func (w *toyHeapWorkload) Setup(s *harness.System) error {
	w.sys = s
	h, err := s.NewHeap("toyheap", 2<<20, 1024)
	if err != nil {
		return err
	}
	w.h = &heapRef{}
	s.Eng.Run([]func(*sim.Core){func(c *sim.Core) {
		w.h.id, w.h.off = h.Alloc(c, 256)
	}})
	w.heap = h
	return nil
}

func (w *toyHeapWorkload) Workers(s *harness.System) []func(*sim.Core) {
	return []func(*sim.Core){func(c *sim.Core) {
		buf := make([]byte, 256)
		for i := 0; i < 64; i++ {
			buf[0] = byte(i)
			tx := w.heap.Begin(c)
			tx.Write(w.h.id, w.h.off, buf)
			tx.Commit()
			c.Compute(5000)
		}
	}}
}
