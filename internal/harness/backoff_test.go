package harness_test

import (
	"testing"
	"time"

	"tvarak/internal/harness"
)

func TestBackoffPolicyZeroValueNeverPauses(t *testing.T) {
	var p harness.BackoffPolicy
	for a := -1; a <= 8; a++ {
		if d := p.Delay(a); d != 0 {
			t.Fatalf("zero policy Delay(%d) = %v, want 0", a, d)
		}
	}
}

func TestBackoffPolicyExactExponentialSchedule(t *testing.T) {
	p := harness.BackoffPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		0,                     // attempt 0: not a retry
		10 * time.Millisecond, // 1
		20 * time.Millisecond, // 2
		40 * time.Millisecond, // 3
		80 * time.Millisecond, // 4: hits the cap
		80 * time.Millisecond, // 5: pinned at the cap
		80 * time.Millisecond, // 6
	}
	for a, w := range want {
		if d := p.Delay(a); d != w {
			t.Errorf("Delay(%d) = %v, want %v", a, d, w)
		}
	}
}

func TestBackoffPolicyDefaultCapIs32xBase(t *testing.T) {
	p := harness.BackoffPolicy{Base: time.Millisecond}
	if d := p.Delay(40); d != 32*time.Millisecond {
		t.Fatalf("Delay(40) with Max=0 = %v, want %v", d, 32*time.Millisecond)
	}
}

func TestBackoffPolicyHugeAttemptDoesNotOverflow(t *testing.T) {
	p := harness.BackoffPolicy{Base: time.Second, Max: time.Hour}
	for _, a := range []int{62, 63, 64, 1000, 1 << 30} {
		if d := p.Delay(a); d != time.Hour {
			t.Fatalf("Delay(%d) = %v, want the cap (%v)", a, d, time.Hour)
		}
	}
}

func TestBackoffPolicyJitterBoundedAndDeterministic(t *testing.T) {
	p := harness.BackoffPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.25, Seed: 7}
	exact := harness.BackoffPolicy{Base: p.Base, Max: p.Max}
	sawShortened := false
	for a := 1; a <= 8; a++ {
		d := p.Delay(a)
		full := exact.Delay(a)
		lo := time.Duration(float64(full) * (1 - 0.25))
		if d < lo || d > full {
			t.Fatalf("Delay(%d) = %v, want within [%v, %v]", a, d, lo, full)
		}
		if d < full {
			sawShortened = true
		}
		if again := p.Delay(a); again != d {
			t.Fatalf("Delay(%d) not deterministic: %v then %v", a, d, again)
		}
	}
	if !sawShortened {
		t.Error("jitter 0.25 never shortened any delay across 8 attempts")
	}
	// A different seed yields a different schedule somewhere.
	other := p
	other.Seed = 8
	differs := false
	for a := 1; a <= 8; a++ {
		if other.Delay(a) != p.Delay(a) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical jitter schedules")
	}
}

func TestBackoffPolicyJitterClamped(t *testing.T) {
	base := 10 * time.Millisecond
	for _, j := range []float64{-3, 0, 2.5} {
		p := harness.BackoffPolicy{Base: base, Jitter: j, Seed: 1}
		if d := p.Delay(1); d < 0 || d > base {
			t.Errorf("Jitter=%v Delay(1) = %v, want within [0, %v]", j, d, base)
		}
	}
}
