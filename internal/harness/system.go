// Package harness assembles complete simulated systems and runs the
// paper's experiments: it owns the experiment registry (Table II), the
// fixed-work methodology of §IV (setup → stat reset → measured run), and
// the table rendering for every figure.
package harness

import (
	"context"
	"fmt"

	"tvarak/internal/core"
	"tvarak/internal/daxfs"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/pmem"
	"tvarak/internal/sim"
	"tvarak/internal/swred"
)

// System is one fully assembled machine: engine, optional TVARAK
// controller, file system, and the design selection that decides which
// redundancy machinery heaps get.
type System struct {
	Cfg  *param.Config
	Eng  *sim.Engine
	Ctrl *core.Controller // non-nil only under param.Tvarak
	FS   *daxfs.FS

	// Vilambs are the asynchronous schemes attached to this system's
	// heaps (param.Vilamb only); Run schedules their daemons on the
	// dedicated extra core.
	Vilambs []*swred.Vilamb
}

// NewSystem builds the machine described by cfg. Under the Vilamb design
// one extra core is provisioned for the redundancy daemon (Vilamb's design
// runs its daemons on dedicated cores).
func NewSystem(cfg *param.Config) (*System, error) {
	if cfg.Design == param.Vilamb {
		c2 := *cfg
		c2.Cores += param.VilambDaemonCores
		cfg = &c2
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Eng: eng}
	if cfg.Design == param.Tvarak {
		s.Ctrl = core.New(eng)
	}
	s.FS, err = daxfs.New(eng, s.Ctrl)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NewHeap creates a file of the given size, DAX-maps it, builds a
// persistent heap on it, and attaches the software redundancy scheme when
// the design is a TxB baseline. maxObjects sizes the object checksum table
// for TxB-Object-Csums.
func (s *System) NewHeap(name string, size uint64, maxObjects uint64) (*pmem.Heap, error) {
	if _, err := s.FS.Create(name, size); err != nil {
		return nil, err
	}
	m, err := s.FS.MMap(name)
	if err != nil {
		return nil, err
	}
	h, err := pmem.NewHeap(m, s.Cfg.Cores)
	if err != nil {
		return nil, err
	}
	switch s.Cfg.Design {
	case param.TxBObjectCsums, param.TxBPageCsums:
		if _, err := swred.Attach(s.FS, h, s.Cfg.Design, maxObjects); err != nil {
			return nil, err
		}
	case param.Vilamb:
		v, err := swred.AttachVilamb(s.FS, h, s.Cfg.Async)
		if err != nil {
			return nil, err
		}
		s.Vilambs = append(s.Vilambs, v)
	}
	return h, nil
}

// NewMapping creates and DAX-maps a plain file (fio and stream use raw
// mappings rather than heaps). For TxB designs raw mappings have no
// redundancy — faithful to Table I: the software schemes only cover data
// accessed through their transactional interface. Vilamb's dirty tracking
// models page-table dirty bits, which see raw stores just as well as
// transactional ones, so under the Vilamb design raw mappings get the
// async scheme too; workloads report writes through Async(m).MarkDirty.
func (s *System) NewMapping(name string, size uint64) (*daxfs.DaxMap, error) {
	if _, err := s.FS.Create(name, size); err != nil {
		return nil, err
	}
	m, err := s.FS.MMap(name)
	if err != nil {
		return nil, err
	}
	if s.Cfg.Design == param.Vilamb {
		v, err := swred.AttachVilambRaw(s.FS, m, s.Cfg.Async)
		if err != nil {
			return nil, err
		}
		s.Vilambs = append(s.Vilambs, v)
	}
	return m, nil
}

// Async returns the asynchronous scheme attached to mapping m (nil when
// the design is not Vilamb or m has no scheme).
func (s *System) Async(m *daxfs.DaxMap) *swred.Vilamb {
	for _, v := range s.Vilambs {
		if v.Mapping() == m {
			return v
		}
	}
	return nil
}

// Workload is one application workload (one row group of Table II).
type Workload interface {
	// Name is the figure label, e.g. "redis/set".
	Name() string
	// Setup builds files/heaps and preloads data. It may run cores.
	Setup(s *System) error
	// Workers returns the measured fixed work, one function per core slot
	// (nil entries idle the core).
	Workers(s *System) []func(*sim.Core)
}

// Observation selects the telemetry attached to a measured run. The zero
// value disables everything and leaves the run's results byte-identical to
// an unobserved run — both the sampler and the tracer are strictly
// read-only.
type Observation struct {
	// SampleEvery, when non-zero, attaches an epoch sampler with the given
	// epoch length in cycles; the run's Result carries the time series.
	SampleEvery uint64
	// Tracer, when non-nil, receives the measured run's simulation events
	// (setup traffic is not traced).
	Tracer obs.Tracer
	// Probe, when non-nil, receives cumulative (cycles, accesses, shard
	// queue depth) at every weave-phase boundary — live wall-clock
	// telemetry (internal/live), strictly read-only. Unlike the sampler
	// and tracer it attaches before setup, so an operator watching /runs
	// sees liveness during long preloads too; the consumer must therefore
	// tolerate the cumulative values rebasing at ResetMeasurement
	// (live.Telemetry.CellProbe does).
	Probe func(cycles, accesses, shardQueued uint64)
}

// Run executes one workload on a fresh system with the given config,
// following the fixed-work methodology: setup, measurement reset, measured
// run (which drains on completion). It returns the collected statistics.
func Run(cfg *param.Config, w Workload) (*Result, error) {
	return RunObserved(cfg, w, Observation{})
}

// RunObserved is Run with telemetry: the sampler and tracer attach after
// setup and the measurement reset, so they cover exactly the fixed-work
// region the statistics cover.
func RunObserved(cfg *param.Config, w Workload, ob Observation) (*Result, error) {
	return RunObservedCtx(nil, cfg, w, ob)
}

// RunObservedCtx is RunObserved under a context: the context installs on
// the engine before setup, so cancellation stops either the setup or the
// measured run cooperatively at its next phase boundary. A cancelled or
// panicked run returns the engine's error (wrapping context.Canceled,
// context.DeadlineExceeded, or a *sim.WorkloadPanicError) and no result.
// A nil ctx behaves exactly like RunObserved.
func RunObservedCtx(ctx context.Context, cfg *param.Config, w Workload, ob Observation) (*Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: building system for %s: %w", w.Name(), err)
	}
	if ctx != nil {
		s.Eng.SetContext(ctx)
	}
	s.Eng.Probe = ob.Probe
	if err := w.Setup(s); err != nil {
		return nil, fmt.Errorf("harness: setup of %s: %w", w.Name(), err)
	}
	if err := s.Eng.Err(); err != nil {
		return nil, fmt.Errorf("harness: setup of %s: %w", w.Name(), err)
	}
	s.Eng.ResetMeasurement()
	var smp *obs.Sampler
	if ob.SampleEvery > 0 {
		smp = obs.NewSampler(ob.SampleEvery)
		s.Eng.AttachSampler(smp)
	}
	s.Eng.Tracer = ob.Tracer
	s.Eng.Run(s.WithDaemons(w.Workers(s)))
	if err := s.Eng.Err(); err != nil {
		return nil, fmt.Errorf("harness: measured run of %s: %w", w.Name(), err)
	}
	st := s.Eng.St.Clone()
	r := &Result{Workload: w.Name(), Design: cfg.Design, Stats: st}
	if smp != nil {
		r.Series = smp.Samples()
	}
	return r, nil
}

// WithDaemons augments a worker list with the Vilamb daemons (if any): the
// daemons run on the spare core(s) and stop, after a final reconciliation
// pass, once every application worker has finished. The engine is
// single-stepped, so the shared flag needs no synchronization.
func (s *System) WithDaemons(workers []func(*sim.Core)) []func(*sim.Core) {
	if len(s.Vilambs) == 0 {
		return workers
	}
	stop := false
	remaining := 0
	wrapped := make([]func(*sim.Core), len(workers), s.Cfg.Cores)
	for i, w := range workers {
		if w == nil {
			continue
		}
		remaining++
		w := w
		wrapped[i] = func(c *sim.Core) {
			w(c)
			remaining--
			if remaining == 0 {
				stop = true
			}
		}
	}
	// No measured work at all (every slot nil or an empty list): nothing
	// will ever flip stop, so the daemons would spin forever. Start them
	// stopped; they still run their final reconciliation pass.
	if remaining == 0 {
		stop = true
	}
	daemons := min(param.VilambDaemonCores, len(s.Vilambs))
	if len(wrapped)+daemons > s.Cfg.Cores {
		panic("harness: no spare cores for the Vilamb daemons")
	}
	// The daemon pool splits the schemes round-robin. Each pool paces
	// itself by its schemes' epoch (they all share the system's Async
	// config, but tests may override one instance's EpochCyc, so take the
	// pool minimum); incremental mode wakes up incrementalSlices times per
	// epoch and drains a share of the pending lines each wake.
	for d := 0; d < daemons; d++ {
		var vs []*swred.Vilamb
		epoch := uint64(0)
		incremental := false
		for i := d; i < len(s.Vilambs); i += daemons {
			v := s.Vilambs[i]
			vs = append(vs, v)
			if epoch == 0 || v.EpochCyc < epoch {
				epoch = v.EpochCyc
			}
			incremental = incremental || v.Config().Incremental
		}
		subs := uint64(1)
		if incremental {
			subs = swred.IncrementalSlices
		}
		interval := max(1, epoch/subs)
		wrapped = append(wrapped, func(c *sim.Core) {
			const slice = 10000 // interruptible sleep so daemon idle time does not pad the fixed-work runtime
			sub := uint64(0)
			for !stop {
				for slept := uint64(0); !stop && slept < interval; {
					step := min(slice, interval-slept)
					c.Compute(step)
					slept += step
				}
				sub++
				for _, v := range vs {
					if sub%subs == 0 {
						v.ProcessEpoch(c)
					} else {
						v.ProcessPartial(c, int(subs-sub%subs))
					}
				}
			}
			for _, v := range vs {
				v.ProcessEpoch(c) // reconcile the tail
			}
		})
	}
	return wrapped
}
