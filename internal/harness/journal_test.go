package harness_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// sampledToyCells is toyCells with epoch sampling on, so resume tests cover
// the Series round-trip through the journal, not just aggregates.
func sampledToyCells(n int) []harness.Cell {
	cells := toyCells(n)
	for i := range cells {
		cells[i].SampleEvery = 5000
	}
	return cells
}

// renderRun renders a table plus its metrics export exactly like the CLI
// does, for byte-level comparisons.
func renderRun(t *testing.T, tab *harness.Table) (string, []byte) {
	t.Helper()
	x := obs.NewExport("test")
	x.Runs = append(x.Runs, tab.ExportRuns("exp")...)
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tab.String(), buf.Bytes()
}

func TestJournalResumeIsByteIdentical(t *testing.T) {
	const n, scope = 6, "exp|scale=1|full=false"
	cleanTab, err := harness.Runner{Workers: 1}.RunTable("resume", sampledToyCells(n))
	if err != nil {
		t.Fatal(err)
	}
	cleanStr, cleanExport := renderRun(t, cleanTab)

	// First run: journaled, cancelled after 3 completed cells.
	path := filepath.Join(t.TempDir(), "run.journal")
	j1, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rn := harness.Runner{
		Workers: 1, Context: ctx, Journal: j1, Scope: scope,
		Progress: func(done, total int, r *harness.Result, _ time.Duration) {
			if done == 3 {
				cancel()
			}
		},
	}
	_, man, err := rn.RunManifest(sampledToyCells(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if !man.Cancelled || man.Completed != 3 {
		t.Fatalf("interrupted manifest = %+v, want cancelled with 3 completed", man)
	}
	if want := n - 3; len(man.NotAttempted) != want {
		t.Fatalf("NotAttempted = %v, want %d cells", man.NotAttempted, want)
	}

	// Resume: journaled cells restore, the rest simulate.
	j2, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// 4 records: 3 checkpointed cells plus the interrupted run's manifest.
	if j2.Restored() != 4 {
		t.Fatalf("Restored = %d, want 4", j2.Restored())
	}
	tab, err := harness.Runner{Workers: 1, Journal: j2, Scope: scope}.RunTable("resume", sampledToyCells(n))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Manifest.FromJournal != 3 || tab.Manifest.Completed != n {
		t.Errorf("resumed manifest = %+v, want %d completed with 3 from journal", tab.Manifest, n)
	}
	gotStr, gotExport := renderRun(t, tab)
	if gotStr != cleanStr {
		t.Errorf("resumed table differs from uninterrupted run:\n--- clean ---\n%s--- resumed ---\n%s", cleanStr, gotStr)
	}
	if !bytes.Equal(gotExport, cleanExport) {
		t.Error("resumed metrics export is not byte-identical to the uninterrupted run's")
	}
}

func TestJournalScopeMismatchReruns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j1, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (harness.Runner{Workers: 1, Journal: j1, Scope: "scale=1"}).Run(toyCells(2)); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	j2, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// A different scope (say, -scale changed) must not resurrect results.
	_, man, err := harness.Runner{Workers: 1, Journal: j2, Scope: "scale=2"}.RunManifest(toyCells(2))
	if err != nil {
		t.Fatal(err)
	}
	if man.FromJournal != 0 {
		t.Errorf("scope change restored %d cells from the journal, want 0", man.FromJournal)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	const n, scope = 4, "torn"
	cleanTab, err := harness.Runner{Workers: 1}.RunTable("torn", sampledToyCells(n))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	j1, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (harness.Runner{Workers: 1, Journal: j1, Scope: scope}).Run(sampledToyCells(n)); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Simulate a crash mid-write: chop the final record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) != n+1 { // header record + n cell records
		t.Fatalf("journal has %d lines, want %d", len(lines), n+1)
	}
	last := lines[n]
	torn := append(bytes.Join(lines[:n], []byte("\n")), '\n')
	torn = append(torn, last[:len(last)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() != n-1 || j2.CorruptLines() != 1 {
		t.Fatalf("Restored = %d CorruptLines = %d, want %d and 1", j2.Restored(), j2.CorruptLines(), n-1)
	}
	tab, err := harness.Runner{Workers: 1, Journal: j2, Scope: scope}.RunTable("torn", sampledToyCells(n))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Manifest.FromJournal != n-1 {
		t.Errorf("FromJournal = %d, want %d (the torn cell must re-run)", tab.Manifest.FromJournal, n-1)
	}
	if tab.String() != cleanTab.String() {
		t.Errorf("table after torn-tail recovery differs:\n--- clean ---\n%s--- recovered ---\n%s", cleanTab, tab)
	}
	// The repaired journal must be appendable and reloadable.
	j2.Close()
	j3, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Restored() != n {
		t.Errorf("after repair Restored = %d, want %d", j3.Restored(), n)
	}
}

// TestJournalTornTailEveryOffset simulates SIGKILL landing at every
// possible point of the final record's write: the journal is truncated at
// each byte offset of its last record (including the offset that keeps the
// record's bytes but loses the trailing newline — the shape that used to
// merge the next appended record onto the same line). Every truncation
// must open cleanly, keep all fully-written earlier records restorable
// with byte-identical payloads, and accept a fresh append that survives a
// further reopen.
func TestJournalTornTailEveryOffset(t *testing.T) {
	type payload struct {
		Label string `json:"label"`
		N     int    `json:"n"`
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.journal")
	j, err := harness.NewJournal(base)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]payload{
		"u0": {Label: "redis/Tvarak", N: 10},
		"u1": {Label: "ctree/Baseline", N: 11},
		"u2": {Label: "stream/Vilamb", N: 12},
	}
	for _, fp := range []string{"u0", "u1", "u2"} {
		if err := j.Record("soak-unit", fp, want[fp]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 { // header record + 3 unit records
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	lastLine := lines[3]
	start := len(data) - len(lastLine) // offset where the final record begins

	expectPayload := func(t *testing.T, j *harness.Journal, fp string) {
		t.Helper()
		var got payload
		if !j.Lookup("soak-unit", fp, &got) {
			t.Fatalf("record %s not restorable", fp)
		}
		if got != want[fp] {
			t.Fatalf("record %s restored as %+v, want %+v", fp, got, want[fp])
		}
	}

	for off := start; off <= len(data); off++ {
		t.Run(fmt.Sprintf("offset-%d", off), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("torn-%d.journal", off))
			if err := os.WriteFile(path, data[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := harness.OpenJournal(path)
			if err != nil {
				t.Fatalf("open after truncation at %d: %v", off, err)
			}
			expectPayload(t, j2, "u0")
			expectPayload(t, j2, "u1")
			// The final record survives exactly when all its bytes (sans
			// the newline) made it to disk.
			wantLast := off >= start+len(lastLine)-1
			var scratch payload
			if got := j2.Lookup("soak-unit", "u2", &scratch); got != wantLast {
				t.Fatalf("final record restorable = %v at offset %d, want %v", got, off, wantLast)
			}
			if err := j2.Record("soak-unit", "fresh", payload{Label: "appended", N: off}); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			// The append must start on a fresh line regardless of how the
			// tail was torn: a reopen restores every surviving record AND
			// the appended one (the failure mode this test pins down is the
			// appended record merging into an unterminated final line,
			// corrupting both).
			j3, err := harness.OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			expectPayload(t, j3, "u0")
			expectPayload(t, j3, "u1")
			if wantLast {
				expectPayload(t, j3, "u2")
			}
			var fresh payload
			if !j3.Lookup("soak-unit", "fresh", &fresh) || fresh.N != off {
				t.Fatalf("appended record lost after reopen (got %+v)", fresh)
			}
		})
	}
}

// panickingWorkload panics during Setup, exercising harness-level panic
// containment (engine-level containment is tested in internal/sim).
type panickingWorkload struct{ name string }

func (w *panickingWorkload) Name() string                              { return w.name }
func (w *panickingWorkload) Setup(*harness.System) error               { panic("setup exploded") }
func (w *panickingWorkload) Workers(*harness.System) []func(*sim.Core) { return nil }

func TestRunnerDegradeContainsPanicsWithStacks(t *testing.T) {
	cells := toyCells(4)
	cells[1].Make = func() harness.Workload { return &panickingWorkload{name: "boom"} }
	tab, err := harness.Runner{Workers: 2, Degrade: true}.RunTable("degraded", cells)
	if err != nil {
		t.Fatal(err)
	}
	man := tab.Manifest
	if len(man.Failures) != 1 || man.Failures[0].Index != 1 {
		t.Fatalf("manifest failures = %+v, want exactly cell 1", man.Failures)
	}
	f := man.Failures[0]
	if !strings.Contains(f.Err, "setup exploded") {
		t.Errorf("failure error = %q, want the panic value", f.Err)
	}
	if !strings.Contains(f.Stack, "journal_test") {
		t.Errorf("failure stack does not point at the panicking workload")
	}
	if man.Completed != 3 {
		t.Errorf("Completed = %d, want 3 (siblings must not be aborted)", man.Completed)
	}
	// The table renders the hole explicitly and skips it everywhere else.
	if len(tab.Results) != 4 {
		t.Fatalf("table has %d rows, want 4", len(tab.Results))
	}
	if !tab.Results[1].Failed() {
		t.Error("cell 1's row is not a failure placeholder")
	}
	if !strings.Contains(tab.String(), "FAILED:") {
		t.Errorf("table does not render the hole:\n%s", tab)
	}
	if got := len(tab.ExportRuns("exp")); got != 3 {
		t.Errorf("export has %d runs, want 3 (failures are excluded)", got)
	}
}

// engineOnlyPanic panics inside the measured run (on a simulated core), so
// containment crosses the engine: siblings on other cores must unwind.
type engineOnlyPanic struct{ name string }

func (w *engineOnlyPanic) Name() string                { return w.name }
func (w *engineOnlyPanic) Setup(*harness.System) error { return nil }
func (w *engineOnlyPanic) Workers(*harness.System) []func(*sim.Core) {
	return []func(*sim.Core){func(c *sim.Core) {
		c.Compute(100)
		panic("worker exploded")
	}}
}

func TestRunnerDegradeContainsEnginePanics(t *testing.T) {
	cells := toyCells(3)
	cells[2].Make = func() harness.Workload { return &engineOnlyPanic{name: "boom"} }
	tab, err := harness.Runner{Workers: 1, Degrade: true}.RunTable("engine-panic", cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Manifest.Failures) != 1 || !strings.Contains(tab.Manifest.Failures[0].Err, "worker exploded") {
		t.Fatalf("manifest = %+v, want cell 2's contained worker panic", tab.Manifest)
	}
	if tab.Manifest.Completed != 2 {
		t.Errorf("Completed = %d, want 2", tab.Manifest.Completed)
	}
}

// spinningWorkload never finishes its measured run; only the per-cell
// deadline can stop it (cooperatively, at a phase boundary).
type spinningWorkload struct{ name string }

func (w *spinningWorkload) Name() string                { return w.name }
func (w *spinningWorkload) Setup(*harness.System) error { return nil }
func (w *spinningWorkload) Workers(*harness.System) []func(*sim.Core) {
	return []func(*sim.Core){func(c *sim.Core) {
		for {
			c.Compute(1000)
		}
	}}
}

func TestRunnerWatchdogMarksHungCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cells := toyCells(3)
	cells[1].Make = func() harness.Workload { return &spinningWorkload{name: "spin"} }
	rn := harness.Runner{
		Workers: 1, Degrade: true, Journal: j, Scope: "hang",
		CellTimeout: 100 * time.Millisecond,
		Retries:     2, // hung cells must NOT be retried
	}
	tab, err := rn.RunTable("hang", cells)
	if err != nil {
		t.Fatal(err)
	}
	man := tab.Manifest
	if len(man.Failures) != 1 || man.Failures[0].Index != 1 {
		t.Fatalf("manifest failures = %+v, want exactly cell 1", man.Failures)
	}
	f := man.Failures[0]
	if !f.Hung {
		t.Error("deadline-exceeding cell not marked hung")
	}
	if f.Attempts != 1 {
		t.Errorf("hung cell ran %d attempts, want 1 (no retries for hangs)", f.Attempts)
	}
	if man.Completed != 2 {
		t.Errorf("Completed = %d, want 2 (siblings keep running)", man.Completed)
	}
	// The goroutine dump landed in the journal for post-mortem debugging.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"kind":"hang"`)) || !bytes.Contains(data, []byte("goroutine")) {
		t.Error("journal is missing the hang record with goroutine stacks")
	}
}

func TestRunnerRetriesTransientFailures(t *testing.T) {
	attempts := 0
	cells := []harness.Cell{{
		Config: param.SmallTest(param.Baseline),
		Make: func() harness.Workload {
			// The factory runs once per attempt, so counting here observes
			// the retry loop. Failure is transient: attempts 1-2 fail.
			attempts++
			if attempts <= 2 {
				return &failingWorkload{name: fmt.Sprintf("flaky-attempt-%d", attempts)}
			}
			return &toyWorkload{name: "flaky", stores: 50}
		},
	}}
	// A real backoff policy (seeded jitter, exponential, capped) must stay
	// wall-clock-only: the retried cell's simulated result is the same as
	// with zero backoff.
	rn := harness.Runner{
		Workers: 1, Retries: 2,
		Backoff: harness.BackoffPolicy{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5, Seed: 42},
	}
	rs, man, err := rn.RunManifest(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Failures) != 0 || man.Completed != 1 {
		t.Fatalf("manifest = %+v, want a clean completion after retries", man)
	}
	if rs[0] == nil || rs[0].Workload != "flaky" {
		t.Fatalf("result = %+v, want the third attempt's", rs[0])
	}
	if attempts != 3 {
		t.Errorf("workload built %d times, want 3 (two failures + success)", attempts)
	}
}
