package harness_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tvarak/internal/harness"
)

func TestJournalHeaderCarriesFormatAndScope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := harness.NewJournalScope(path, "exp|scale=2|full=true")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell", "fp0", map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if j.Format() != harness.JournalFormat || j.Scope() != "exp|scale=2|full=true" {
		t.Fatalf("fresh journal Format=%d Scope=%q", j.Format(), j.Scope())
	}
	if j.Appended() != 1 {
		t.Fatalf("Appended = %d, want 1 (the header is metadata, not a record)", j.Appended())
	}
	j.Close()

	j2, err := harness.OpenJournalScope(path, "exp|scale=2|full=true")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Format() != harness.JournalFormat || j2.Scope() != "exp|scale=2|full=true" {
		t.Errorf("reopened journal Format=%d Scope=%q", j2.Format(), j2.Scope())
	}
	if j2.Restored() != 1 || j2.CorruptLines() != 0 {
		t.Errorf("Restored=%d CorruptLines=%d, want 1 and 0 (header excluded)", j2.Restored(), j2.CorruptLines())
	}
}

func TestOpenJournalScopeRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := harness.NewJournalScope(path, "exp|scale=1|full=false")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = harness.OpenJournalScope(path, "exp|scale=2|full=false")
	if err == nil {
		t.Fatal("scope mismatch accepted, want an error")
	}
	if !strings.Contains(err.Error(), "scale=1") || !strings.Contains(err.Error(), "scale=2") {
		t.Errorf("mismatch error does not name both scopes: %v", err)
	}
}

func TestOpenJournalScopeToleratesLegacyAndUnscoped(t *testing.T) {
	dir := t.TempDir()

	// Legacy: a pre-header journal is just records, no header line.
	legacy := filepath.Join(dir, "legacy.journal")
	line, err := harness.EncodeRecord("cell", "fp0", map[string]int{"n": 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := harness.OpenJournalScope(legacy, "exp|scale=1|full=false")
	if err != nil {
		t.Fatalf("legacy header-less journal rejected: %v", err)
	}
	if j.Format() != 0 || j.Scope() != "" || j.Restored() != 1 {
		t.Errorf("legacy journal Format=%d Scope=%q Restored=%d, want 0 / empty / 1", j.Format(), j.Scope(), j.Restored())
	}
	j.Close()

	// Unscoped header (NewJournal): any scope may open it.
	unscoped := filepath.Join(dir, "unscoped.journal")
	j2, err := harness.NewJournal(unscoped)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := harness.OpenJournalScope(unscoped, "exp|scale=1|full=false")
	if err != nil {
		t.Fatalf("unscoped journal rejected: %v", err)
	}
	j3.Close()
}

func TestOpenJournalRejectsNewerFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.journal")
	line, err := harness.EncodeRecord("journal-header", "", map[string]any{"format": harness.JournalFormat + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = harness.OpenJournal(path)
	if err == nil {
		t.Fatal("journal from a newer build accepted, want an error")
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Errorf("error does not explain the version skew: %v", err)
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	type payload struct {
		Label string `json:"label"`
		N     int    `json:"n"`
	}
	in := payload{Label: "redis/Tvarak", N: 42}
	line, err := harness.EncodeRecord("cell", "fp42", in)
	if err != nil {
		t.Fatal(err)
	}
	kind, fp, data, err := harness.DecodeRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "cell" || fp != "fp42" {
		t.Fatalf("decoded (%q, %q), want (cell, fp42)", kind, fp)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil || out != in {
		t.Fatalf("payload round-trip = %+v (err %v), want %+v", out, err, in)
	}

	// A wire line from an incompatible build must be refused, not guessed at.
	if _, _, _, err := harness.DecodeRecord([]byte(`{"v":99,"kind":"cell","fp":"x"}`)); err == nil {
		t.Error("wrong-version record decoded without error")
	}
	if _, _, _, err := harness.DecodeRecord([]byte("not json")); err == nil {
		t.Error("garbage line decoded without error")
	}
}

func TestRecordRawPreservesBytesAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.journal")
	j, err := harness.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := json.RawMessage(`{"label":"stream/Vilamb","n":3}`)
	if err := j.RecordRaw("cell", "fpR", raw); err != nil {
		t.Fatal(err)
	}
	if got := j.LookupRaw("cell", "fpR"); !bytes.Equal(got, raw) {
		t.Fatalf("LookupRaw = %s, want %s", got, raw)
	}
	if j.LookupRaw("cell", "missing") != nil {
		t.Error("LookupRaw on a missing record is non-nil")
	}
	j.Close()

	j2, err := harness.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.LookupRaw("cell", "fpR"); !bytes.Equal(got, raw) {
		t.Fatalf("after reopen LookupRaw = %s, want %s", got, raw)
	}
}
