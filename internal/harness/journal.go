package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
)

// JournalVersion is the version stamped on every journal record. Records
// with a different version are ignored on load (treated like corruption),
// so a journal written by an incompatible build resumes nothing instead of
// resurrecting mismatched results.
const JournalVersion = 1

// Journal is a crash-safe per-run checkpoint log: one JSONL record per
// completed unit of work, each fsync'd before the completion is
// acknowledged, keyed by a stable fingerprint. A run that was interrupted
// — SIGINT, crash, power loss — resumes by reopening the journal: units
// whose fingerprints are already recorded are restored instead of re-run,
// and because every unit is deterministic, the resumed run's output is
// byte-identical to an uninterrupted run.
//
// The format is line-oriented JSON so a torn final write (the crash case)
// damages at most the last line; loading skips unparseable or
// wrong-version lines and counts them (CorruptLines) rather than failing,
// losing only the records on those lines.
//
// A Journal is safe for concurrent use by the parallel runner's workers.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	seen     map[journalKey]json.RawMessage
	restored int
	corrupt  int
	appended int
}

type journalKey struct{ kind, fp string }

// journalRecord is the wire format: version, record kind (RecordCell
// writes "cell", failures "fail", hang stack dumps "hang", the fault
// campaign "unit", the soak harness "soak-unit"), the unit fingerprint,
// and the kind-specific payload.
type journalRecord struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Fp   string          `json:"fp,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// NewJournal creates (or truncates) a journal at path, starting a fresh
// run with no restorable records.
func NewJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("harness: creating journal: %w", err)
	}
	return &Journal{f: f, path: path, seen: make(map[journalKey]json.RawMessage)}, nil
}

// OpenJournal opens an existing journal for resumption: every well-formed
// record already in the file becomes restorable via Lookup, and new
// records append after them. Corrupted or truncated lines (a crash mid-
// write) are skipped and counted, never fatal. The file must exist — use
// NewJournal to start a fresh run.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: make(map[journalKey]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // series-bearing cell records can be large
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.V != JournalVersion || rec.Kind == "" {
			j.corrupt++
			continue
		}
		j.seen[journalKey{rec.Kind, rec.Fp}] = append(json.RawMessage(nil), rec.Data...)
		j.restored++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: reading journal: %w", err)
	}
	// Append after the last complete line. Two torn-tail shapes need a
	// newline repaired in first (both are SIGKILL-mid-write artifacts):
	// an unparseable partial line (counted corrupt above), and — subtler —
	// a record whose bytes all made it to disk but whose trailing newline
	// did not. The latter parses fine and is restored, but appending
	// straight after it would merge the next record onto the same line,
	// corrupting BOTH records on the following open. So the repair is
	// keyed on how the file actually ends, not on the corrupt count.
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: seeking journal: %w", err)
	}
	needsNL := false
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: inspecting journal tail: %w", err)
		}
		needsNL = last[0] != '\n'
	}
	if needsNL {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: repairing journal tail: %w", err)
		}
	}
	return j, nil
}

// Record durably appends one record: the payload is marshalled, written as
// one line, and fsync'd before Record returns, so an acknowledged record
// survives a crash. It also becomes immediately restorable via Lookup.
func (j *Journal) Record(kind, fp string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("harness: marshalling journal record: %w", err)
	}
	line, err := json.Marshal(journalRecord{V: JournalVersion, Kind: kind, Fp: fp, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("harness: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing journal: %w", err)
	}
	j.seen[journalKey{kind, fp}] = data
	j.appended++
	return nil
}

// Lookup restores the payload of the (kind, fingerprint) record into out,
// reporting whether such a record exists. A payload that no longer decodes
// into out's type reports false, like a corrupt line.
func (j *Journal) Lookup(kind, fp string, out any) bool {
	j.mu.Lock()
	data, ok := j.seen[journalKey{kind, fp}]
	j.mu.Unlock()
	if !ok || data == nil {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// Restored is how many well-formed records were loaded from disk when the
// journal was opened for resumption.
func (j *Journal) Restored() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// CorruptLines is how many unparseable or wrong-version lines were
// skipped on load.
func (j *Journal) CorruptLines() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupt
}

// Appended is how many records this process added.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Fingerprint is the cell's stable identity within a scope (the experiment
// id plus run-shaping options): the workload's renamed label, the variant,
// a hash of the full machine configuration and the sampling granularity.
// Identical cells fingerprint identically — which is sound, because
// identical cells are deterministic and produce identical results — and
// any configuration or scale change misses the journal and re-runs, never
// resurrecting a stale result.
func (c Cell) Fingerprint(scope string) string {
	name := c.Make().Name()
	if c.Rename != nil {
		name = c.Rename(name)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|sample=%d|cfg=%+v", scope, name, c.Variant, c.SampleEvery, *c.Config)
	return fmt.Sprintf("%s/%s/%s[%s]#%016x", scope, name, c.Config.Design, c.Variant, h.Sum64())
}

// hangRecord is the payload journaled when the watchdog marks a cell hung:
// the attempt that hung and a dump of every goroutine's stack at detection
// time, for post-mortem debugging of the stuck workload.
type hangRecord struct {
	Label   string `json:"label"`
	Attempt int    `json:"attempt"`
	Stacks  string `json:"stacks"`
}
